examples/access_control.ml: Format List Printf Webdamlog
