examples/delegation_control.ml: Format List Rule Wdl_syntax Webdamlog
