examples/delegation_control.mli:
