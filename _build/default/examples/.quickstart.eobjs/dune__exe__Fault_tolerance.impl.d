examples/fault_tolerance.ml: Fact Filename Format List Printf String Sys Value Wdl_net Wdl_syntax Webdamlog
