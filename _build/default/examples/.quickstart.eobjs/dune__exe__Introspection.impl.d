examples/introspection.ml: Fact Format List Parser Program Rule String Value Wdl_syntax Webdamlog
