examples/introspection.mli:
