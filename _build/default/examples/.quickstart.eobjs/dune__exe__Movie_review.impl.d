examples/movie_review.ml: Format List Rule Wdl_syntax Wdl_wrappers Webdamlog
