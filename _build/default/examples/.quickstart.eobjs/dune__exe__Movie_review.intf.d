examples/movie_review.mli:
