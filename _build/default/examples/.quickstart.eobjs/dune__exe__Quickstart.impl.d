examples/quickstart.ml: Fact Format List Rule Value Wdl_syntax Webdamlog
