examples/quickstart.mli:
