examples/social_feed.ml: Format List String Wdl_feed
