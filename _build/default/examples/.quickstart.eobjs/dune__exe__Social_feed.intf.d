examples/social_feed.mli:
