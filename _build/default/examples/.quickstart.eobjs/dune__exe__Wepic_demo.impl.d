examples/wepic_demo.ml: Format List Wdl_net Wdl_syntax Wdl_wepic Wdl_wrappers Webdamlog
