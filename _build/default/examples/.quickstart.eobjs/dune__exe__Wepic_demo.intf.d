examples/wepic_demo.mli:
