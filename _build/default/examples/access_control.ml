(* The §2 access-control model, end to end: discretionary grants on
   stored relations, provenance-derived policies on views,
   declassification, and enforcement when delegations install.

   Run with: dune exec examples/access_control.exe *)

module Peer = Webdamlog.Peer
module Authz = Webdamlog.Authz

let ok = function Ok v -> v | Error e -> failwith e
let pf fmt = Format.printf fmt

let () =
  let sys = Webdamlog.System.create () in
  let jules = Webdamlog.System.add_peer sys "Jules" in
  let julia = Webdamlog.System.add_peer sys "Julia" in
  let emilien = Webdamlog.System.add_peer sys "Émilien" in

  (* Jules stores public pictures and private notes, and defines a view
     combining both. *)
  ok
    (Peer.load_string jules
       {|
       ext pictures@Jules(id, name);
       ext notes@Jules(id, text);
       int annotated@Jules(id, name, text);

       pictures@Jules(1, "hall.jpg");
       pictures@Jules(2, "talk.jpg");
       notes@Jules(1, "blurry, do not publish");

       annotated@Jules($id, $n, $t) :- pictures@Jules($id, $n), notes@Jules($id, $t);
       |});
  Peer.set_enforce_authz jules true;

  (* Discretionary policy: notes are only for Émilien. *)
  Authz.set_policy (Peer.authz jules) ~rel:"notes" (Authz.Only [ "Émilien" ]);

  pf "policies at Jules:@.";
  List.iter
    (fun rel -> pf "  %-10s -> %a@." rel Authz.pp_policy (Peer.readers jules rel))
    [ "pictures"; "notes"; "annotated" ];
  pf "(the view inherited the notes policy through provenance)@.";

  (* Julia and Émilien both try to read the view remotely. *)
  let collect name =
    ok
      (Peer.load_string
         (Webdamlog.System.peer sys name)
         (Printf.sprintf
            {|int got@%s(id, name, text);
              got@%s($i, $n, $t) :- annotated@Jules($i, $n, $t);|}
            name name))
  in
  collect "Julia";
  collect "Émilien";
  ignore (ok (Webdamlog.System.run sys));
  pf "@.Julia sees %d annotated picture(s) (delegation rejected)@."
    (List.length (Peer.query julia "got"));
  pf "Émilien sees %d annotated picture(s) (granted reader)@."
    (List.length (Peer.query emilien "got"));
  (match
     Webdamlog.Trace.find (Peer.trace jules) (function
       | Webdamlog.Trace.Delegation_rejected { src = "Julia"; _ } -> true
       | _ -> false)
   with
  | Some e -> pf "Jules' trace: %a@." Webdamlog.Trace.pp_event e
  | None -> pf "no rejection traced?!@.");

  (* Jules declassifies the view ("effectively declassifying some
     data", §2) and Julia's rule — re-sent automatically — installs. *)
  Authz.declassify (Peer.authz jules) ~rel:"annotated" Authz.Everyone;
  (* Nudge Julia's peer so it re-offers its delegation. *)
  ok
    (Peer.load_string julia
       {|got@Julia($i, $n, $t) :- annotated@Jules($i, $n, $t), $i >= 0;|});
  ignore (ok (Webdamlog.System.run sys));
  pf "@.after declassification Julia sees %d annotated picture(s)@."
    (List.length (Peer.query julia "got"));

  (* The state — policies included — survives a restart. *)
  let jules' = ok (Peer.restore (Peer.snapshot jules)) in
  pf "@.after restart, notes policy is still %a and enforcement is %b@."
    Authz.pp_policy
    (Authz.stored_policy (Peer.authz jules') "notes")
    (Peer.enforcing_authz jules')
