(* The Fig. 3 scenario: control of delegation. Julia writes a rule that
   must execute at Jules' peer; Jules' peer holds it pending until he
   approves it through the interface, and his running program changes
   once the approval is granted.

   Run with: dune exec examples/delegation_control.exe *)

open Wdl_syntax
module Peer = Webdamlog.Peer

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let sys = Webdamlog.System.create () in
  (* Jules trusts only the sigmod peer, as in the demo ("all peers
     except the sigmod peer will be considered untrusted"). *)
  let jules = Webdamlog.System.add_peer sys ~policy:Webdamlog.Acl.Closed "Jules" in
  Webdamlog.Acl.trust (Peer.acl jules) "sigmod";
  let julia = Webdamlog.System.add_peer sys "Julia" in
  let sigmod = Webdamlog.System.add_peer sys "sigmod" in

  ok
    (Peer.load_string jules
       {|
       ext pictures@Jules(id, name, owner, data);
       pictures@Jules(7, "hall.jpg", "Jules", "110...");
       |});

  (* Julia wants Jules' pictures in her own collection: her rule's body
     reads pictures@Jules, so evaluating it delegates the rule to
     Jules. *)
  ok
    (Peer.load_string julia
       {|
       int julesPictures@Julia(id, name, owner, data);
       julesPictures@Julia($id, $name, $owner, $data) :-
         pictures@Jules($id, $name, $owner, $data);
       |});

  ignore (ok (Webdamlog.System.run sys));
  Format.printf "Julia sees %d pictures (delegation pending)@."
    (List.length (Peer.query julia "julesPictures"));
  Format.printf "Jules' pending queue (the Fig. 3 notification):@.";
  List.iter
    (fun (src, rule) -> Format.printf "  %s asks to install: %a@." src Rule.pp rule)
    (Peer.pending_delegations jules);
  Format.printf "Jules currently runs %d delegated rule(s)@."
    (List.length (Peer.delegated_rules jules));

  (* Jules clicks "accept". *)
  let src, rule = List.hd (Peer.pending_delegations jules) in
  assert (Peer.accept_delegation jules ~src rule);
  ignore (ok (Webdamlog.System.run sys));
  Format.printf "@.after approval Jules runs %d delegated rule(s)@."
    (List.length (Peer.delegated_rules jules));
  Format.printf "Julia now sees %d picture(s)@."
    (List.length (Peer.query julia "julesPictures"));

  (* The sigmod peer is trusted: its delegations install silently. *)
  ok
    (Peer.load_string sigmod
       {|
       int report@sigmod(id);
       report@sigmod($id) :- pictures@Jules($id, $n, $o, $d);
       |});
  ignore (ok (Webdamlog.System.run sys));
  Format.printf "@.sigmod (trusted) delegated without approval; Jules runs %d rules, pending %d@."
    (List.length (Peer.delegated_rules jules))
    (List.length (Peer.pending_delegations jules))
