(* Introspection: the tools around the engine. Static analysis of a
   program (what delegates where), ad-hoc queries against a live peer,
   why-provenance of a derived fact, and a snapshot of the whole state.

   Run with: dune exec examples/introspection.exe *)

open Wdl_syntax
module Peer = Webdamlog.Peer

let ok = function Ok v -> v | Error e -> failwith e
let section fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

let program =
  {|
  ext pictures@Jules(id, name, owner);
  ext selectedAttendee@Jules(attendee);
  ext rate@Jules(id, stars);
  int attendeePictures@Jules(id, name, owner);
  int best@Jules(id, stars);

  pictures@Jules(1, "hall.jpg", "Jules");
  pictures@Jules(2, "talk.jpg", "Jules");
  selectedAttendee@Jules("Jules");
  rate@Jules(1, 3); rate@Jules(1, 5); rate@Jules(2, 4);

  attendeePictures@Jules($i, $n, $o) :-
    selectedAttendee@Jules($a), pictures@$a($i, $n, $o);

  best@Jules($i, max($s)) :- rate@Jules($i, $s);
  |}

let () =
  section "Static analysis (wdl analyze)";
  let parsed = ok (Parser.program program) in
  List.iter
    (fun rule ->
      let c =
        Webdamlog.Classify.classify ~self:"Jules"
          ~intensional:(fun r -> r = "attendeePictures" || r = "best")
          rule
      in
      Format.printf "%a@.  -> %s@.@." Rule.pp rule (Webdamlog.Classify.describe c))
    (Program.rules parsed);

  let jules = Peer.create "Jules" in
  Peer.set_track_provenance jules true;
  ok (Peer.load_string jules program);
  let rec settle () = if Peer.has_work jules then begin ignore (Peer.stage jules); settle () end in
  settle ();

  section "Ad-hoc query (the Query tab)";
  let answer =
    ok (Peer.ask jules "q@Jules($n, $s) :- attendeePictures@Jules($i, $n, $o), best@Jules($i, $s)")
  in
  Format.printf "%s@." (String.concat "\t" answer.Peer.columns);
  List.iter
    (fun row ->
      Format.printf "%s@." (String.concat "\t" (List.map Value.to_string row)))
    answer.Peer.rows;

  section "Why-provenance (.explain)";
  print_string
    (Peer.explain_to_string jules
       (Fact.make ~rel:"attendeePictures" ~peer:"Jules"
          [ Value.Int 1; Value.String "hall.jpg"; Value.String "Jules" ]));
  print_string
    (Peer.explain_to_string jules
       (Fact.make ~rel:"best" ~peer:"Jules" [ Value.Int 1; Value.Int 5 ]));

  section "Snapshot (what a restart would reload)";
  let snapshot = Peer.snapshot jules in
  Format.printf "%d bytes; first lines:@." (String.length snapshot);
  String.split_on_char '\n' snapshot
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter print_endline
