(* The paper's introduction scenario: Joe, "a typical Web user", has a
   blog on Wordpress, a Facebook account, a Dropbox folder, and a
   laptop. He posts a review of the movie he just watched on his blog,
   advertises it to his Facebook friends, and links the Dropbox folder
   where the movie is — all from four WebdamLog rules on his own peer,
   no centralised service involved.

   Run with: dune exec examples/movie_review.exe *)

open Wdl_syntax
module Peer = Webdamlog.Peer

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let sys = Webdamlog.System.create () in

  (* Joe's own peer: his laptop. *)
  let joe = Webdamlog.System.add_peer sys "joe" in

  (* His blog on Wordpress, through the blog wrapper. *)
  let wp = Wdl_wrappers.Wordpress.create () in
  let blog_wrapper, blog =
    Wdl_wrappers.Wordpress.blog_wrapper ~system:sys ~service:wp ~blog:"joeBlog"
      ~peer_name:"joeBlog"
  in

  (* A simulated Facebook with Joe's account and friends. *)
  let fb = Wdl_wrappers.Facebook.create () in
  Wdl_wrappers.Facebook.befriend fb "joe" "alice";
  Wdl_wrappers.Facebook.befriend fb "joe" "bob";
  let fb_wrapper, _fb_peer =
    Wdl_wrappers.Facebook.user_wrapper ~system:sys ~service:fb ~user:"joe"
      ~peer_name:"joeFB"
  in

  (* A simulated Dropbox holding the movie. *)
  let dbx = Wdl_wrappers.Dropbox.create () in
  Wdl_wrappers.Dropbox.put dbx ~user:"joe" ~path:"/movies/dream.mkv"
    ~content:"<binary>";
  let dbx_wrapper, _dbx_peer =
    Wdl_wrappers.Dropbox.folder_wrapper ~system:sys ~service:dbx ~user:"joe"
      ~peer_name:"joeDbx"
  in

  (* An email service to notify friends. *)
  let mail = Wdl_wrappers.Email.create () in
  let outbox =
    Wdl_wrappers.Email.outbox_wrapper ~service:mail ~peer:joe ~sender:"joe" ()
  in

  (* Joe's program. Note the delegations: the blog-link rule reads his
     Dropbox wrapper peer, the advertisement rule reads his Facebook
     wrapper peer — Joe's peer installs residual rules at both. *)
  ok
    (Peer.load_string joe
       {|
       ext reviews@joe(title, body);
       ext movieFile@joe(title, path);
       int friendsOfJoe@joe(name);

       // publish each review on the blog, linking the Dropbox file
       entries@joeBlog($title, $body, $path) :-
         reviews@joe($title, $body),
         movieFile@joe($title, $path),
         files@joeDbx($path, $content);

       // collect Facebook friends through the wrapper
       friendsOfJoe@joe($friend) :-
         friends@joeFB($user, $friend);

       // advertise the review to each friend by email
       email@joe($friend, $title, 0, "joe") :-
         reviews@joe($title, $body),
         friendsOfJoe@joe($friend);

       reviews@joe("Dream", "A movie about dreams. Five stars.");
       movieFile@joe("Dream", "/movies/dream.mkv");
       |});

  (* Sync wrappers and run until quiescent. *)
  let rec loop guard =
    let crossed =
      fb_wrapper.Wdl_wrappers.Wrapper.push ()
      + fb_wrapper.Wdl_wrappers.Wrapper.refresh ()
      + dbx_wrapper.Wdl_wrappers.Wrapper.push ()
      + dbx_wrapper.Wdl_wrappers.Wrapper.refresh ()
      + blog_wrapper.Wdl_wrappers.Wrapper.push ()
      + blog_wrapper.Wdl_wrappers.Wrapper.refresh ()
      + outbox.Wdl_wrappers.Wrapper.push ()
    in
    let rounds = ok (Webdamlog.System.run sys) in
    if (crossed > 0 || rounds > 0) && guard < 20 then loop (guard + 1)
  in
  loop 0;

  Format.printf "-- Joe's blog (via the Wordpress wrapper) --@.";
  List.iter
    (fun (p : Wdl_wrappers.Wordpress.post) ->
      Format.printf "  %s: %s [%s]@." p.title p.body p.link)
    (Wdl_wrappers.Wordpress.posts wp ~blog:"joeBlog");
  ignore (Peer.query blog "entries");
  Format.printf "-- Friends advertised by email --@.";
  List.iter
    (fun (m : Wdl_wrappers.Email.message) ->
      Format.printf "  to %s: %s@." m.recipient m.subject)
    (List.concat_map
       (fun friend -> Wdl_wrappers.Email.inbox mail friend)
       [ "alice"; "bob" ]);
  Format.printf "-- Rules installed at Joe's wrappers (delegations) --@.";
  List.iter
    (fun peer_name ->
      let p = Webdamlog.System.peer sys peer_name in
      List.iter
        (fun (src, r) ->
          Format.printf "  %s runs (from %s): %a@." peer_name src Rule.pp r)
        (Peer.delegated_rules p))
    [ "joeDbx"; "joeFB" ]
