(* Quickstart: two peers, one rule with a peer variable, delegation in
   action. Run with: dune exec examples/quickstart.exe *)

open Wdl_syntax

let ( let* ) r f = match r with Ok v -> f v | Error e -> failwith e

let () =
  (* A system wires peers through a transport (in-memory by default). *)
  let sys = Webdamlog.System.create () in
  let alice = Webdamlog.System.add_peer sys "alice" in
  let bob = Webdamlog.System.add_peer sys "bob" in

  (* Alice follows peers listed in follows@alice and collects their
     posts into a local view. [posts@$who] has a peer VARIABLE: WebdamLog
     evaluates bodies left to right and, when $who resolves to a remote
     peer, delegates the residual rule there. *)
  let* () =
    Webdamlog.Peer.load_string alice
      {|
      ext follows@alice(who);
      int timeline@alice(author, text);

      follows@alice("bob");

      timeline@alice($who, $text) :-
        follows@alice($who),
        posts@$who($text);
      |}
  in
  let* () =
    Webdamlog.Peer.load_string bob
      {|
      ext posts@bob(text);
      posts@bob("hello from bob");
      posts@bob("webdamlog is declarative");
      |}
  in

  (* Run rounds until no peer has work and no message is in flight. *)
  let* rounds = Webdamlog.System.run sys in
  Format.printf "quiescent in %d rounds@." rounds;

  (* Bob now holds a delegated rule installed by alice... *)
  List.iter
    (fun (src, rule) -> Format.printf "bob runs (from %s): %a@." src Rule.pp rule)
    (Webdamlog.Peer.delegated_rules bob);

  (* ...and alice's view contains bob's posts. *)
  List.iter
    (fun f -> Format.printf "%a@." Fact.pp f)
    (Webdamlog.Peer.query alice "timeline");

  (* Updates propagate incrementally: a new post appears on the
     timeline, unfollowing retracts the delegation and empties it. *)
  let* () =
    Webdamlog.Peer.load_string bob {| posts@bob("one more post"); |}
  in
  let* _ = Webdamlog.System.run sys in
  Format.printf "timeline now has %d entries@."
    (List.length (Webdamlog.Peer.query alice "timeline"));
  let* () =
    match
      Webdamlog.Peer.delete alice
        (Fact.make ~rel:"follows" ~peer:"alice" [ Value.String "bob" ])
    with
    | Ok () -> Ok ()
    | Error e -> Error e
  in
  let* _ = Webdamlog.System.run sys in
  Format.printf "after unfollow: %d entries, bob runs %d delegated rules@."
    (List.length (Webdamlog.Peer.query alice "timeline"))
    (List.length (Webdamlog.Peer.delegated_rules bob))
