(* Wefeed: the second application built from rules — a decentralised
   social reader (following, muting, topics, digests, suggestions,
   reshares) with no central service, exactly the introduction's
   motivation for WebdamLog.

   Run with: dune exec examples/social_feed.exe *)

module Feed = Wdl_feed.Feed

let ok = function Ok v -> v | Error e -> failwith e
let pf fmt = Format.printf fmt

let show_timeline t user =
  pf "@.%s's timeline:@." user;
  List.iter
    (fun (e : Feed.entry) -> pf "  #%d [%s] %s: %s@." e.id e.topic e.author e.text)
    (Feed.timeline t ~user)

let () =
  let t = Feed.create () in
  List.iter
    (fun u -> ignore (Feed.add_user t u))
    [ "joe"; "alice"; "bob"; "carol" ];

  (* The social graph lives at each peer, not on a platform. *)
  Feed.follow t ~user:"joe" ~whom:"alice";
  Feed.follow t ~user:"joe" ~whom:"bob";
  Feed.follow t ~user:"alice" ~whom:"carol";

  Feed.post t ~author:"alice" ~id:1 ~text:"declarative networking is back"
    ~topic:"databases";
  Feed.post t ~author:"bob" ~id:2 ~text:"lunch pics" ~topic:"food";
  Feed.post t ~author:"carol" ~id:3 ~text:"datalog tricks" ~topic:"databases";
  ignore (ok (Feed.run t));
  show_timeline t "joe";

  pf "@.joe mutes bob...@.";
  Feed.mute t ~user:"joe" ~whom:"bob";
  ignore (ok (Feed.run t));
  show_timeline t "joe";

  pf "@.digest (posts per author): ";
  List.iter (fun (a, n) -> pf "%s=%d " a n) (Feed.digest t ~user:"joe");
  pf "@.";

  pf "@.suggestions for joe (friends of friends he doesn't follow): %s@."
    (String.concat ", " (Feed.suggestions t ~user:"joe"));

  pf "@.alice reshares carol's post; joe follows only alice, yet...@.";
  Feed.reshare t ~user:"alice" ~id:3;
  ignore (ok (Feed.run t));
  show_timeline t "joe";

  pf "@.every peer runs the same 7 rules; the network is the application.@."
