(* The full demonstration of §4, scripted: the Fig. 2 topology (Émilien
   and Jules on their laptops, the sigmod peer in the Webdam cloud, the
   SigmodFB Facebook group), run over the simulated network.

   Run with: dune exec examples/wepic_demo.exe *)

module Wepic = Wdl_wepic.Wepic
module Fact = Wdl_syntax.Fact

let ok = function Ok v -> v | Error e -> failwith e
let section fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

let () =
  (* Simulated network: the two laptops are close (latency 1), the
     cloud peer is farther (latency 3). *)
  let transport =
    Wdl_net.Simnet.create ~sizer:Webdamlog.Message.size ~seed:2013
      ~latency:(fun ~src ~dst ->
        let cloud p = p = Wepic.sigmod_peer_name || p = Wepic.fb_peer_name in
        if cloud src || cloud dst then 3.0 else 1.0)
      ()
  in
  let env = Wepic.create ~transport () in
  let _emilien = Wepic.add_attendee env "Émilien" in
  let _jules = Wepic.add_attendee env "Jules" in

  section "Setup (Fig. 2)";
  Wepic.upload_picture env ~attendee:"Émilien" ~id:32 ~name:"sea.jpg" ~data:"100...";
  Wepic.upload_picture env ~attendee:"Émilien" ~id:33 ~name:"talk.jpg" ~data:"101...";
  Wepic.upload_picture env ~attendee:"Jules" ~id:71 ~name:"hall.jpg" ~data:"110...";
  let rounds = ok (Wepic.run env) in
  Format.printf "quiescent in %d rounds; pictures@sigmod holds %d pictures@."
    rounds
    (List.length (Wepic.pictures_at_sigmod env));

  section "Interaction via Facebook (§4)";
  Format.printf "before authorization the group has %d pictures@."
    (List.length (Wepic.pictures_on_facebook env));
  Wepic.authorize_facebook env ~attendee:"Émilien" ~id:32;
  ignore (ok (Wepic.run env));
  Format.printf "after Émilien authorizes #32: %d@."
    (List.length (Wepic.pictures_on_facebook env));
  (* Something posted directly on the Facebook group flows back. *)
  ignore
    (Wdl_wrappers.Facebook.post_group_picture (Wepic.facebook env)
       ~group:"sigmod2013"
       { Wdl_wrappers.Facebook.id = 99; name = "banquet.jpg";
         owner = "external"; data = "111..." });
  ignore (ok (Wepic.run env));
  Format.printf "after an external FB post, pictures@sigmod holds %d@."
    (List.length (Wepic.pictures_at_sigmod env));

  section "Viewing attendee pictures (Fig. 1)";
  Wepic.select_attendee env ~viewer:"Jules" ~attendee:"Émilien";
  ignore (ok (Wepic.run env));
  List.iter
    (fun f -> Format.printf "  %a@." Fact.pp f)
    (Wepic.attendee_pictures env ~viewer:"Jules");

  section "Customizing rules (§4)";
  Wepic.rate env ~rater:"Jules" ~owner:"Émilien" ~id:32 ~rating:5;
  ok
    (Wepic.customize_view env ~viewer:"Jules"
       (Wepic.min_rating_view_rule ~viewer:"Jules" ~min_rating:5));
  ignore (ok (Wepic.run env));
  Format.printf "with the rating-5 filter Jules sees %d picture(s)@."
    (List.length (Wepic.attendee_pictures env ~viewer:"Jules"));

  section "Transfer by preferred protocol (§3)";
  Wepic.set_protocol env ~attendee:"Émilien" ~protocol:"email";
  Wepic.select_picture env ~viewer:"Jules" ~name:"hall.jpg" ~id:71 ~owner:"Jules";
  ignore (ok (Wepic.run env));
  List.iter
    (fun (m : Wdl_wrappers.Email.message) ->
      Format.printf "  Émilien received mail: %s@." m.subject)
    (Wdl_wrappers.Email.inbox (Wepic.email env) "Émilien");

  Format.printf "@.total messages on the wire: %d@."
    (Webdamlog.System.messages_sent (Wepic.system env))
