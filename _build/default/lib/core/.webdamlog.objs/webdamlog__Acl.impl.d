lib/core/acl.ml: Hashtbl List Rule String Wdl_syntax
