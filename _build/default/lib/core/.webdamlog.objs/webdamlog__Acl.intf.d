lib/core/acl.mli: Rule Wdl_syntax
