lib/core/authz.ml: Atom Format Hashtbl List Literal Option Rule Set String Term Wdl_syntax
