lib/core/authz.mli: Format Wdl_syntax
