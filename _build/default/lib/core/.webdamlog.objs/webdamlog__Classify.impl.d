lib/core/classify.ml: Atom List Literal Printf Rule String Term Wdl_syntax
