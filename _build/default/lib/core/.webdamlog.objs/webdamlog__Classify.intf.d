lib/core/classify.mli: Wdl_syntax
