lib/core/message.ml: Fact Format List Rule String Wdl_syntax
