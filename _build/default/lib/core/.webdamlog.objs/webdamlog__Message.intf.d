lib/core/message.mli: Fact Format Rule Wdl_syntax
