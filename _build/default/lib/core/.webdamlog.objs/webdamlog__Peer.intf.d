lib/core/peer.mli: Acl Authz Fact Format Message Program Rule Trace Value Wdl_eval Wdl_store Wdl_syntax
