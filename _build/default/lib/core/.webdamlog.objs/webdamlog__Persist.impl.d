lib/core/persist.ml: Filename Fun List Peer Program Result Sys Wdl_store Wdl_syntax
