lib/core/persist.mli: Peer
