lib/core/persist.mli: Peer Wdl_store
