lib/core/system.ml: Hashtbl List Message Option Peer Printf Wdl_net
