lib/core/system.mli: Acl Message Peer Wdl_eval Wdl_net
