lib/core/trace.ml: Fact Format List Message Rule Wdl_eval Wdl_syntax
