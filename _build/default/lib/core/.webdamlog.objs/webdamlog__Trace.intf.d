lib/core/trace.mli: Fact Format Message Rule Wdl_eval Wdl_syntax
