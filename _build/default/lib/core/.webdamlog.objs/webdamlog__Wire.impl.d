lib/core/wire.ml: Buffer Fact List Message Option Parser Pp_util Program Result Rule String Value Wdl_net Wdl_syntax
