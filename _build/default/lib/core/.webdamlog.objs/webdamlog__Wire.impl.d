lib/core/wire.ml: Buffer Fact List Message Parser Pp_util Program Result Rule Value Wdl_net Wdl_syntax
