lib/core/wire.mli: Message Wdl_net
