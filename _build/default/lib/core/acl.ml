open Wdl_syntax

type policy = Open | Closed

type t = {
  mutable pol : policy;
  explicit_trust : (string, bool) Hashtbl.t;
      (* name -> true (trusted) / false (untrusted) *)
  mutable queue : (string * Rule.t) list;  (* newest first *)
}

let create ?(policy = Open) () =
  { pol = policy; explicit_trust = Hashtbl.create 8; queue = [] }

let policy t = t.pol
let set_policy t p = t.pol <- p
let trust t p = Hashtbl.replace t.explicit_trust p true
let untrust t p = Hashtbl.replace t.explicit_trust p false

let trusted t p =
  match Hashtbl.find_opt t.explicit_trust p with
  | Some b -> b
  | None -> ( match t.pol with Open -> true | Closed -> false)

let submit t ~src rule =
  if trusted t src then `Installed
  else begin
    if
      not
        (List.exists
           (fun (s, r) -> String.equal s src && Rule.equal r rule)
           t.queue)
    then t.queue <- (src, rule) :: t.queue;
    `Pending
  end

let remove t ~src rule =
  let found = ref false in
  t.queue <-
    List.filter
      (fun (s, r) ->
        let hit = String.equal s src && Rule.equal r rule in
        if hit then found := true;
        not hit)
      t.queue;
  !found

let retract_pending t ~src rule = remove t ~src rule
let pending t = List.rev t.queue
let accept t ~src rule = remove t ~src rule
let reject t ~src rule = remove t ~src rule

let accept_all t =
  let all = pending t in
  t.queue <- [];
  all

let explicit t =
  Hashtbl.fold (fun p b acc -> (p, b) :: acc) t.explicit_trust []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let enqueue t ~src rule =
  if
    not
      (List.exists
         (fun (s, r) -> String.equal s src && Rule.equal r rule)
         t.queue)
  then t.queue <- (src, rule) :: t.queue
