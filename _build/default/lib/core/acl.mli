(** Control of delegation (§2 "Access control", §4 demo scenario).

    The demo's simplified model: each delegation sent by an untrusted
    peer waits in a pending queue until the user explicitly accepts it;
    delegations from trusted peers install immediately. By default
    every peer is trusted ([`Open]); Wepic switches to
    [`Closed trusted] where only listed peers (the [sigmod] peer in the
    demo) bypass the queue. *)

open Wdl_syntax

type policy = Open | Closed

type t

val create : ?policy:policy -> unit -> t
val policy : t -> policy
val set_policy : t -> policy -> unit

val trust : t -> string -> unit
val untrust : t -> string -> unit
val trusted : t -> string -> bool
(** Under [Open], everyone is trusted except explicitly untrusted
    peers; under [Closed], only explicitly trusted peers are. *)

val submit : t -> src:string -> Rule.t -> [ `Installed | `Pending ]
(** Routes an incoming delegation: either it may install now, or it
    joins the pending queue. *)

val retract_pending : t -> src:string -> Rule.t -> bool
(** Removes a queued delegation (its source withdrew it); [true] if it
    was pending. *)

val pending : t -> (string * Rule.t) list
(** Oldest first. *)

val accept : t -> src:string -> Rule.t -> bool
(** Pops the delegation from the queue; [true] if it was there. The
    caller installs the rule. *)

val reject : t -> src:string -> Rule.t -> bool
val accept_all : t -> (string * Rule.t) list
(** Pops and returns everything pending, oldest first. *)

val explicit : t -> (string * bool) list
(** Explicit trust/untrust entries, sorted by peer (persistence). *)

val enqueue : t -> src:string -> Rule.t -> unit
(** Puts a delegation straight into the pending queue regardless of
    trust (used when restoring a snapshot). *)
