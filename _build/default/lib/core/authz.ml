open Wdl_syntax
module Sset = Set.Make (String)

type policy =
  | Everyone
  | Only of string list

let normalize = List.sort_uniq String.compare

let policy_equal a b =
  match a, b with
  | Everyone, Everyone -> true
  | Only x, Only y -> List.equal String.equal (normalize x) (normalize y)
  | Everyone, Only _ | Only _, Everyone -> false

let pp_policy ppf = function
  | Everyone -> Format.pp_print_string ppf "everyone"
  | Only [] -> Format.pp_print_string ppf "nobody"
  | Only l -> Format.fprintf ppf "only {%s}" (String.concat ", " (normalize l))

let meet a b =
  match a, b with
  | Everyone, p | p, Everyone -> p
  | Only x, Only y ->
    Only (Sset.elements (Sset.inter (Sset.of_list x) (Sset.of_list y)))

let allows p reader =
  match p with Everyone -> true | Only l -> List.mem reader l

type t = {
  stored : (string, policy) Hashtbl.t;
  overrides : (string, policy) Hashtbl.t;
}

let create () = { stored = Hashtbl.create 8; overrides = Hashtbl.create 4 }

let set_policy t ~rel p = Hashtbl.replace t.stored rel (
  match p with Everyone -> Everyone | Only l -> Only (normalize l))

let stored_policy t rel =
  Option.value ~default:Everyone (Hashtbl.find_opt t.stored rel)

let grant t ~rel peer =
  let p =
    match stored_policy t rel with
    | Everyone -> Only [ peer ]
    | Only l -> Only (normalize (peer :: l))
  in
  Hashtbl.replace t.stored rel p

let revoke t ~rel peer =
  match stored_policy t rel with
  | Everyone -> ()
  | Only l -> Hashtbl.replace t.stored rel (Only (List.filter (( <> ) peer) l))

let declassify t ~rel p = Hashtbl.replace t.overrides rel (
  match p with Everyone -> Everyone | Only l -> Only (normalize l))

let clear_declassification t ~rel = Hashtbl.remove t.overrides rel
let declassified t rel = Hashtbl.find_opt t.overrides rel

(* The local relations a rule reads before any definitely-remote atom,
   mirroring Stratify's notion of the locally-evaluated prefix. [None]
   in the list means "some relation, name unknown" (relation variable). *)
let local_reads ~self (rule : Rule.t) =
  let definitely_remote (a : Atom.t) =
    match Term.as_name a.Atom.peer with Some p -> p <> self | None -> false
  in
  let rec go acc = function
    | [] -> List.rev acc
    | (Literal.Cmp _ | Literal.Assign _) :: rest -> go acc rest
    | (Literal.Pos a | Literal.Neg a) :: rest ->
      if definitely_remote a then List.rev acc
      else go ((match Term.as_name a.Atom.rel with
                | Some c -> Some c
                | None -> None) :: acc) rest
  in
  go [] rule.Rule.body

(* Views a rule can derive into: Some names, or None = any view. *)
let head_views ~self ~intensional (rule : Rule.t) =
  match rule.Rule.head.Atom.rel, rule.Rule.head.Atom.peer with
  | Term.Var _, _ | _, Term.Var _ -> None
  | Term.Const _, Term.Const _ -> (
    match
      Term.as_name rule.Rule.head.Atom.peer, Term.as_name rule.Rule.head.Atom.rel
    with
    | Some p, Some c when p = self && intensional c -> Some [ c ]
    | _, _ -> Some [])

let derived_readers t ~self ~rules ~intensional =
  (* All view names mentioned anywhere. *)
  let views = Hashtbl.create 8 in
  let note rel = if intensional rel && not (Hashtbl.mem views rel) then
      Hashtbl.replace views rel Everyone
  in
  List.iter
    (fun (r : Rule.t) ->
      (match head_views ~self ~intensional r with
      | Some names -> List.iter note names
      | None -> ());
      List.iter (function Some c -> note c | None -> ()) (local_reads ~self r))
    rules;
  let current rel =
    match declassified t rel with
    | Some p -> p
    | None ->
      if intensional rel then
        Option.value ~default:Everyone (Hashtbl.find_opt views rel)
      else stored_policy t rel
  in
  (* Decreasing fixpoint: shrink every view's policy by each deriving
     rule's body reads until stable. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Rule.t) ->
        let body_policy =
          List.fold_left
            (fun acc read ->
              match read with
              | Some c -> meet acc (current c)
              | None ->
                (* relation variable: reads anything local, so meet with
                   every stored policy and every view policy *)
                let acc =
                  Hashtbl.fold
                    (fun rel _ a -> meet a (stored_policy t rel))
                    t.stored acc
                in
                Hashtbl.fold (fun _ p a -> meet a p) views acc)
            Everyone (local_reads ~self r)
        in
        let targets =
          match head_views ~self ~intensional r with
          | Some names -> names
          | None -> Hashtbl.fold (fun v _ acc -> v :: acc) views []
        in
        List.iter
          (fun v ->
            if declassified t v = None then begin
              let old = Option.value ~default:Everyone (Hashtbl.find_opt views v) in
              let next = meet old body_policy in
              if not (policy_equal old next) then begin
                Hashtbl.replace views v next;
                changed := true
              end
            end)
          targets)
      rules
  done;
  fun rel ->
    match declassified t rel with
    | Some p -> p
    | None ->
      if intensional rel then
        Option.value ~default:Everyone (Hashtbl.find_opt views rel)
      else stored_policy t rel

let readers t ~self ~rules ~intensional rel =
  derived_readers t ~self ~rules ~intensional rel

let can_read t ~self ~rules ~intensional ~reader rel =
  reader = self || allows (readers t ~self ~rules ~intensional rel) reader

let check_delegation t ~self ~rules ~intensional ~reader rule =
  if reader = self then Ok ()
  else
    let resolve = derived_readers t ~self ~rules ~intensional in
    let rec go = function
      | [] -> Ok ()
      | Some c :: rest ->
        if allows (resolve c) reader then go rest else Error c
      | None :: rest ->
        (* A relation variable reads anything: every known restriction
           must allow the reader. *)
        let all_ok =
          Hashtbl.fold
            (fun rel _ acc -> acc && allows (resolve rel) reader)
            t.stored true
        in
        if all_ok then go rest else Error "<any relation>"
    in
    go (local_reads ~self rule)

let entries t =
  let of_tbl kind tbl =
    Hashtbl.fold (fun rel p acc -> (rel, kind, p) :: acc) tbl []
  in
  List.sort compare (of_tbl `Stored t.stored @ of_tbl `Override t.overrides)
