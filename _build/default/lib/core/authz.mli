(** The access-control model of §2 "Access control".

    The paper describes a model "under active investigation" combining:

    - {e discretionary} control: users directly specify the
      accessibility of stored (extensional) relations they own;
    - {e mandatory/derived} control: a view's default policy is derived
      automatically from the {e provenance} of the base relations it is
      computed from — here at relation granularity: the readers of a
      view are the intersection of the readers of every relation any of
      its deriving rules reads, to a fixpoint through view-over-view
      definitions;
    - {e declassification}: the owner may override the derived policy
      of a view to grant wider access.

    Enforcement point: a delegated rule executes on behalf of its
    origin, so installing it requires the origin to be able to read
    every local relation the rule's locally-evaluated prefix mentions
    ({!check_delegation}; {!Peer.set_enforce_authz} turns this on). *)

type policy =
  | Everyone
  | Only of string list  (** sorted, duplicate-free peer names *)

val policy_equal : policy -> policy -> bool
val pp_policy : Format.formatter -> policy -> unit

val meet : policy -> policy -> policy
(** Intersection of reader sets. *)

val allows : policy -> string -> bool

type t

val create : unit -> t

(** {1 Discretionary policies on stored relations} *)

val set_policy : t -> rel:string -> policy -> unit
val grant : t -> rel:string -> string -> unit
(** Adds one reader. Granting on an [Everyone] relation first
    restricts it to the granted peer only. *)

val revoke : t -> rel:string -> string -> unit
val stored_policy : t -> string -> policy
(** Defaults to [Everyone] for relations never restricted. *)

(** {1 Declassification of views} *)

val declassify : t -> rel:string -> policy -> unit
val clear_declassification : t -> rel:string -> unit
val declassified : t -> string -> policy option

(** {1 Derived (provenance-based) policies} *)

val readers :
  t ->
  self:string ->
  rules:Wdl_syntax.Rule.t list ->
  intensional:(string -> bool) ->
  string ->
  policy
(** [readers t ~self ~rules ~intensional rel]: for an extensional
    relation, its stored policy; for a view, its declassified policy if
    any, otherwise the provenance-derived one. Conservative with the
    language's name variables: a body atom with a relation variable
    reads every local relation; a head with variables derives into
    every view. *)

val can_read :
  t ->
  self:string ->
  rules:Wdl_syntax.Rule.t list ->
  intensional:(string -> bool) ->
  reader:string ->
  string ->
  bool
(** The owner can always read its own relations. *)

val check_delegation :
  t ->
  self:string ->
  rules:Wdl_syntax.Rule.t list ->
  intensional:(string -> bool) ->
  reader:string ->
  Wdl_syntax.Rule.t ->
  (unit, string) result
(** [Error rel] names the first local relation in the rule's
    locally-evaluated prefix that [reader] may not read. *)

val entries : t -> (string * [ `Stored | `Override ] * policy) list
(** All explicit policies, sorted (persistence). *)
