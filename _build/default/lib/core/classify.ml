open Wdl_syntax

type body_locality =
  | All_local
  | Delegates_at of int
  | Dynamic_at of int

type head_target =
  | Local_view
  | Local_update
  | Remote of string
  | Dynamic_head

type t = {
  head : head_target;
  body : body_locality;
  reads_remote : string list;
}

let classify ~self ~intensional (rule : Rule.t) =
  let head =
    match
      Term.as_name rule.Rule.head.Atom.rel, Term.as_name rule.Rule.head.Atom.peer
    with
    | Some rel, Some peer ->
      if peer = self then
        if intensional rel then Local_view else Local_update
      else Remote peer
    | _, _ -> Dynamic_head
  in
  let body =
    let rec go i = function
      | [] -> All_local
      | (Literal.Cmp _ | Literal.Assign _) :: rest -> go (i + 1) rest
      | (Literal.Pos a | Literal.Neg a) :: rest -> (
        match a.Atom.peer with
        | Term.Var _ -> Dynamic_at i
        | Term.Const _ -> (
          match Term.as_name a.Atom.peer with
          | Some p when p = self -> go (i + 1) rest
          | Some _ -> Delegates_at i
          | None -> Delegates_at i))
    in
    go 0 rule.Rule.body
  in
  let reads_remote =
    List.filter_map
      (fun lit ->
        match lit with
        | Literal.Pos a | Literal.Neg a -> (
          match Term.as_name a.Atom.peer with
          | Some p when p <> self -> Some p
          | Some _ | None -> None)
        | Literal.Cmp _ | Literal.Assign _ -> None)
      rule.Rule.body
    |> List.sort_uniq String.compare
  in
  { head; body; reads_remote }

let describe t =
  let head =
    match t.head with
    | Local_view -> "view rule (deductive)"
    | Local_update -> "update rule (inductive, next stage)"
    | Remote p -> Printf.sprintf "messaging rule (sends facts to %s)" p
    | Dynamic_head -> "dynamic head (target known at run time)"
  in
  let body =
    match t.body with
    | All_local -> "fully local body"
    | Delegates_at i ->
      Printf.sprintf "delegates at literal %d (to %s)" (i + 1)
        (match t.reads_remote with p :: _ -> p | [] -> "?")
    | Dynamic_at i ->
      Printf.sprintf "delegation boundary dynamic from literal %d" (i + 1)
  in
  head ^ "; " ^ body
