(** Static classification of rules, from the peer [self]'s viewpoint.

    The paper distinguishes rules by where their evaluation touches
    other peers: fully local rules (deductive views or inductive
    updates), rules that only {e send} facts (local body, remote head),
    and rules that {e delegate} (their body reaches a remote peer).
    With the language's peer variables the boundary may only be known
    at run time; classification reports that too. Used by
    [wdl analyze] and by tests; the engine itself discovers the
    boundary dynamically during evaluation. *)

type body_locality =
  | All_local
      (** every body atom names [self] *)
  | Delegates_at of int
      (** the first definitely-remote atom's position (0-based) *)
  | Dynamic_at of int
      (** the first atom whose peer is a variable: locality depends on
          run-time bindings from that position on *)

type head_target =
  | Local_view        (** intensional relation at [self] *)
  | Local_update      (** extensional relation at [self]: inductive *)
  | Remote of string  (** named other peer: messaging *)
  | Dynamic_head      (** relation or peer variable in the head *)

type t = {
  head : head_target;
  body : body_locality;
  reads_remote : string list
      (** definitely-remote peers named anywhere in the body, sorted *);
}

val classify :
  self:string -> intensional:(string -> bool) -> Wdl_syntax.Rule.t -> t

val describe : t -> string
(** One-line human-readable summary, e.g.
    ["view rule; delegates to $attendee's peer at literal 2"]. *)
