open Wdl_syntax

type t = {
  src : string;
  dst : string;
  stage : int;
  facts : Fact.t list option;
  installs : Rule.t list;
  retracts : Rule.t list;
}

let make ~src ~dst ~stage ?(facts = None) ?(installs = []) ?(retracts = []) () =
  { src; dst; stage; facts; installs; retracts }

let is_empty m = m.facts = None && m.installs = [] && m.retracts = []

let size m =
  let fact_size f = String.length (Format.asprintf "%a" Fact.pp f) in
  let rule_size r = String.length (Format.asprintf "%a" Rule.pp r) in
  let facts = match m.facts with None -> 0 | Some fs -> List.fold_left (fun a f -> a + fact_size f) 0 fs in
  facts
  + List.fold_left (fun a r -> a + rule_size r) 0 m.installs
  + List.fold_left (fun a r -> a + rule_size r) 0 m.retracts
  + String.length m.src + String.length m.dst + 8

let pp ppf m =
  Format.fprintf ppf "@[<v 2>%s -> %s (stage %d):" m.src m.dst m.stage;
  (match m.facts with
  | None -> ()
  | Some fs ->
    List.iter (fun f -> Format.fprintf ppf "@ fact %a" Fact.pp f) fs);
  List.iter (fun r -> Format.fprintf ppf "@ install %a" Rule.pp r) m.installs;
  List.iter (fun r -> Format.fprintf ppf "@ retract %a" Rule.pp r) m.retracts;
  Format.fprintf ppf "@]"
