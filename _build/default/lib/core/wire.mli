(** Wire codec: {!Message} values as self-describing text frames.

    A frame is itself a parseable WebdamLog program: a [header@wire]
    fact carrying source, destination, stage and section counts,
    followed by the fact batch and the delegation install/retract
    rules in order. Re-using the language's own reader/printer keeps
    the codec total on every message the engine can produce.

    {!transport} lifts any byte transport (typically
    {!Wdl_net.Tcp}) into a {!Message} transport. *)

val encode : Message.t -> string
val decode : string -> (Message.t, string) result

val transport : string Wdl_net.Transport.t -> Message.t Wdl_net.Transport.t
(** Frames that fail to decode are dropped (counted nowhere: a
    malformed frame from the outside world must not kill the peer). *)
