(** Wire codec: {!Message} values as self-describing text frames.

    A frame is itself a parseable WebdamLog program: a [header@wire]
    fact carrying source, destination, stage and section counts,
    followed by the fact batch and the delegation install/retract
    rules in order. Re-using the language's own reader/printer keeps
    the codec total on every message the engine can produce.

    {!transport} lifts any byte transport (typically
    {!Wdl_net.Tcp}) into a {!Message} transport. *)

val encode : Message.t -> string
val decode : string -> (Message.t, string) result

val transport : string Wdl_net.Transport.t -> Message.t Wdl_net.Transport.t
(** Frames that fail to decode are dropped (counted nowhere: a
    malformed frame from the outside world must not kill the peer). *)

(** {1 Reliable-session envelopes}

    {!Wdl_net.Reliable} stamps messages with sequence/ack metadata;
    these frames carry it as one extra [envelope@wire] fact line ahead
    of the normal message frame (absent for a pure ack), keeping the
    whole envelope parseable WebdamLog text. *)

val encode_envelope : Message.t Wdl_net.Reliable.envelope -> string
val decode_envelope : string -> (Message.t Wdl_net.Reliable.envelope, string) result

val envelope_transport :
  string Wdl_net.Transport.t ->
  Message.t Wdl_net.Reliable.envelope Wdl_net.Transport.t
(** Lifts a byte transport (typically {!Wdl_net.Tcp}) to envelope
    frames, ready for {!Wdl_net.Reliable.wrap}:
    [Reliable.wrap (Wire.envelope_transport tcp)] is an exactly-once
    [Message.t] transport over real sockets. Undecodable frames are
    dropped. *)
