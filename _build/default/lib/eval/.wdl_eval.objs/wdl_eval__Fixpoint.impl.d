lib/eval/fixpoint.ml: Aggregate Array Atom Database Decl Fact Format Hashtbl List Literal Option Plan Relation Rule Runtime_error Stratify String Term Tuple Value Wdl_store Wdl_syntax
