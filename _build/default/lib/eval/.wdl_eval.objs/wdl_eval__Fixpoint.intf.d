lib/eval/fixpoint.mli: Fact Rule Runtime_error Stdlib Stratify Wdl_store Wdl_syntax
