lib/eval/plan.ml: Array Atom Expr Hashtbl List Literal Printf Result Rule Subst Term Value Wdl_syntax
