lib/eval/plan.mli: Atom Expr Literal Rule Subst Value Wdl_syntax
