lib/eval/reference.ml: Aggregate Array Atom Database Decl Expr Fact Fixpoint Format Hashtbl List Literal Relation Rule Runtime_error Stratify String Subst Term Tuple Value Wdl_store Wdl_syntax
