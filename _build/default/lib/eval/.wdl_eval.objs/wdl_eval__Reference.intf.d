lib/eval/reference.mli: Fixpoint Stratify Wdl_store Wdl_syntax
