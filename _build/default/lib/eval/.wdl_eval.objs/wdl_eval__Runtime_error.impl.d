lib/eval/runtime_error.ml: Atom Expr Format Literal Value Wdl_syntax
