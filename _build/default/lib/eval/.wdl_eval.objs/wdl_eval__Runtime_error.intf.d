lib/eval/runtime_error.mli: Atom Expr Format Literal Value Wdl_syntax
