lib/eval/stratify.ml: Array Atom Format Hashtbl List Literal Option Rule String Term Wdl_syntax
