lib/eval/stratify.mli: Format Rule Wdl_syntax
