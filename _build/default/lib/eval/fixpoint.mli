(** One-stage local evaluation: the middle step of the paper's
    three-step peer computation (load inputs → {e fixpoint} → emit).

    The evaluator runs the peer's current rules over its database,
    left-to-right. What a rule produces depends on where its terms
    resolve at run time:

    - a completed valuation whose head is a {e local intensional}
      relation is deduced immediately (visible within the fixpoint);
    - a head in a {e local extensional} relation is an inductive
      update, returned in [induced] and applied at the next stage;
    - a head on a {e remote peer} is an asynchronous message;
    - reaching a body atom whose peer resolves to a {e remote} name
      suspends the valuation: the residual rule (substitution applied,
      remaining literals kept) is returned in [suspensions] — these
      become the paper's delegations.

    Both semi-naive (default) and naive strategies implement identical
    semantics; naive is kept as the benchmark baseline (T1). *)

open Wdl_syntax

type strategy = Seminaive | Naive

type derivation = {
  fact : Fact.t;
  rule : Rule.t;
  premises : Fact.t list;
      (** the ground positive body atoms of one supporting valuation *)
}

type result = {
  deduced : Fact.t list;  (** new local intensional facts (also inserted) *)
  induced : Fact.t list;  (** local extensional insertions for next stage *)
  messages : Fact.t list; (** facts whose [peer] field is the destination *)
  suspensions : (string * Rule.t) list;
      (** (target peer, residual rule), deduplicated *)
  errors : Runtime_error.t list;
  iterations : int;       (** fixpoint iterations summed over strata *)
  derivations : int;      (** successful head instantiations, incl. dups *)
  provenance : derivation list;
      (** one why-provenance entry per deduced fact, when requested;
          aggregate-rule facts carry no premises *)
}

val statically_local : self:string -> Wdl_syntax.Rule.t -> bool
(** Whether every body atom's peer is the constant [self] — the
    precondition for aggregate rules, which may never suspend into a
    delegation. *)

val run :
  ?strategy:strategy ->
  ?record_provenance:bool ->
  self:string ->
  Wdl_store.Database.t ->
  Rule.t list ->
  (result, Stratify.error) Stdlib.result
(** Mutates the database's intensional relations. The caller is
    responsible for {!Wdl_store.Database.clear_intensional} at stage
    start and for applying [induced] at the next stage. *)
