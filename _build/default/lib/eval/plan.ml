open Wdl_syntax

type slot = int

type arg =
  | Const of Value.t
  | Slot of slot

type name_ref =
  | Fixed of string
  | Name_slot of slot

type cexpr =
  | CConst of Value.t
  | CSlot of slot
  | CAdd of cexpr * cexpr
  | CSub of cexpr * cexpr
  | CMul of cexpr * cexpr
  | CDiv of cexpr * cexpr

type match_step = {
  pos : int;
  neg : bool;
  rel : name_ref;
  peer : name_ref;
  args : arg array;
  atom : Atom.t;
}

type step =
  | Match of match_step
  | Cmp of Literal.cmpop * cexpr * cexpr * Literal.t
  | Assign of slot * cexpr * Literal.t

type t = {
  rule : Rule.t;
  steps : step list;
  head_rel : name_ref;
  head_peer : name_ref;
  head_args : arg array;
  nslots : int;
  slot_names : string array;
  premise_patterns : (name_ref * name_ref * arg array) list;
}

type compiler = {
  mutable names : string list;  (* reverse slot order *)
  mutable count : int;
  tbl : (string, int) Hashtbl.t;
}

let slot_of c x =
  match Hashtbl.find_opt c.tbl x with
  | Some s -> s
  | None ->
    let s = c.count in
    c.count <- c.count + 1;
    c.names <- x :: c.names;
    Hashtbl.replace c.tbl x s;
    s

let compile_term c = function
  | Term.Const v -> Const v
  | Term.Var x -> Slot (slot_of c x)

let compile_name c = function
  | Term.Const v -> (
    match Value.as_name v with
    | Some n -> Fixed n
    (* Safety rejects non-name constants; keep a total fallback. *)
    | None -> Fixed (Value.to_string v))
  | Term.Var x -> Name_slot (slot_of c x)

let rec compile_expr c = function
  | Expr.Const v -> CConst v
  | Expr.Var x -> CSlot (slot_of c x)
  | Expr.Add (a, b) -> CAdd (compile_expr c a, compile_expr c b)
  | Expr.Sub (a, b) -> CSub (compile_expr c a, compile_expr c b)
  | Expr.Mul (a, b) -> CMul (compile_expr c a, compile_expr c b)
  | Expr.Div (a, b) -> CDiv (compile_expr c a, compile_expr c b)

let compile_atom c (a : Atom.t) =
  ( compile_name c a.Atom.rel,
    compile_name c a.Atom.peer,
    Array.of_list (List.map (compile_term c) a.Atom.args) )

let compile (rule : Rule.t) =
  let c = { names = []; count = 0; tbl = Hashtbl.create 16 } in
  let steps =
    List.mapi
      (fun pos lit ->
        match lit with
        | Literal.Pos a ->
          let rel, peer, args = compile_atom c a in
          Match { pos; neg = false; rel; peer; args; atom = a }
        | Literal.Neg a ->
          let rel, peer, args = compile_atom c a in
          Match { pos; neg = true; rel; peer; args; atom = a }
        | Literal.Cmp (op, e1, e2) ->
          Cmp (op, compile_expr c e1, compile_expr c e2, lit)
        | Literal.Assign (x, e) ->
          (* Compile the expression first: safety guarantees its
             variables were bound earlier, so slot allocation order is
             irrelevant, but doing it first mirrors evaluation order. *)
          let ce = compile_expr c e in
          Assign (slot_of c x, ce, lit))
      rule.Rule.body
  in
  let head_rel, head_peer, head_args = compile_atom c rule.Rule.head in
  let premise_patterns =
    List.filter_map
      (function
        | Match { neg = false; rel; peer; args; _ } -> Some (rel, peer, args)
        | Match _ | Cmp _ | Assign _ -> None)
      steps
  in
  {
    rule;
    steps;
    head_rel;
    head_peer;
    head_args;
    nslots = c.count;
    slot_names = Array.of_list (List.rev c.names);
    premise_patterns;
  }

let subst_of_env plan env =
  let s = ref Subst.empty in
  Array.iteri
    (fun i v ->
      match v with
      | Some v -> s := Subst.bind_exn plan.slot_names.(i) v !s
      | None -> ())
    env;
  !s

let instantiate_args args env =
  let n = Array.length args in
  let out = Array.make n (Value.Int 0) in
  let ok = ref true in
  for i = 0 to n - 1 do
    match args.(i) with
    | Const v -> out.(i) <- v
    | Slot s -> (
      match env.(s) with
      | Some v -> out.(i) <- v
      | None -> ok := false)
  done;
  if !ok then Some out else None

let ( let* ) = Result.bind

let numeric op_name fi ff a b =
  match a, b with
  | Value.Int x, Value.Int y -> Ok (Value.Int (fi x y))
  | Value.Float x, Value.Float y -> Ok (Value.Float (ff x y))
  | Value.Int x, Value.Float y -> Ok (Value.Float (ff (float_of_int x) y))
  | Value.Float x, Value.Int y -> Ok (Value.Float (ff x (float_of_int y)))
  | a, b ->
    Error
      (Expr.Type_error
         (Printf.sprintf "%s expects numbers, got %s and %s" op_name
            (Value.type_name a) (Value.type_name b)))

let rec eval_cexpr e env ~slot_names =
  match e with
  | CConst v -> Ok v
  | CSlot s -> (
    match env.(s) with
    | Some v -> Ok v
    | None -> Error (Expr.Unbound_variable slot_names.(s)))
  | CAdd (a, b) -> (
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    match va, vb with
    | Value.String x, Value.String y -> Ok (Value.String (x ^ y))
    | va, vb -> numeric "+" ( + ) ( +. ) va vb)
  | CSub (a, b) ->
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    numeric "-" ( - ) ( -. ) va vb
  | CMul (a, b) ->
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    numeric "*" ( * ) ( *. ) va vb
  | CDiv (a, b) -> (
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    match vb with
    | Value.Int 0 -> Error (Expr.Type_error "division by zero")
    | Value.Float f when f = 0. -> Error (Expr.Type_error "division by zero")
    | vb -> numeric "/" ( / ) ( /. ) va vb)
