(** Reference evaluator: a deliberately simple, substitution-based
    implementation of exactly {!Fixpoint}'s semantics.

    {!Fixpoint} compiles rules to slot plans for speed; this module
    walks rule ASTs with persistent {!Wdl_syntax.Subst} maps — slower,
    shorter, and easy to audit against the paper. It exists as an
    oracle: the differential property tests run both engines on random
    programs and require identical results, and the A2' benchmark
    measures what plan compilation buys.

    Same contract as {!Fixpoint.run}: mutates the database's
    intensional relations, returns the same {!Fixpoint.result}. *)

val run :
  ?strategy:Fixpoint.strategy ->
  ?record_provenance:bool ->
  self:string ->
  Wdl_store.Database.t ->
  Wdl_syntax.Rule.t list ->
  (Fixpoint.result, Stratify.error) result
