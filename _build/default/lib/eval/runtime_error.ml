open Wdl_syntax

type t =
  | Not_a_name of { value : Value.t; atom : Atom.t }
  | Remote_negation of { peer : string; atom : Atom.t }
  | Unbound_at_eval of { var : string; where : string }
  | Expr_failed of { error : Expr.error; literal : Literal.t }
  | Store_error of { rel : string; message : string }

let pp ppf = function
  | Not_a_name { value; atom } ->
    Format.fprintf ppf "%a is not a relation/peer name (in %a)" Value.pp value
      Atom.pp atom
  | Remote_negation { peer; atom } ->
    Format.fprintf ppf
      "negated atom %a resolved to remote peer %s; negation is local-only"
      Atom.pp atom peer
  | Unbound_at_eval { var; where } ->
    Format.fprintf ppf "internal: $%s unbound during evaluation of %s" var where
  | Expr_failed { error; literal } ->
    Format.fprintf ppf "builtin %a failed: %a" Literal.pp literal Expr.pp_error
      error
  | Store_error { rel; message } ->
    Format.fprintf ppf "store error on %s: %s" rel message

let to_string e = Format.asprintf "%a" pp e
