(** Errors that can only be detected while evaluating a rule.

    Static {!Wdl_syntax.Safety} guarantees variables are bound in time,
    but the {e values} they receive are only known at run time: a peer
    variable may be bound to an integer, a negated atom's peer may
    resolve to a remote peer, an arity may clash. Offending valuations
    are dropped and reported, the rest of the stage proceeds (an
    autonomous peer must not crash because one rule misbehaves). *)

open Wdl_syntax

type t =
  | Not_a_name of { value : Value.t; atom : Atom.t }
      (** a relation/peer variable was bound to a non-name value *)
  | Remote_negation of { peer : string; atom : Atom.t }
      (** a negated atom resolved to a remote peer *)
  | Unbound_at_eval of { var : string; where : string }
      (** internal invariant breach: safety should prevent this *)
  | Expr_failed of { error : Expr.error; literal : Literal.t }
  | Store_error of { rel : string; message : string }

val pp : Format.formatter -> t -> unit
val to_string : t -> string
