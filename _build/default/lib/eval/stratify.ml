open Wdl_syntax

type error = Negative_cycle of string list

let pp_error ppf = function
  | Negative_cycle rels ->
    Format.fprintf ppf "negation cycle through relation(s) %s"
      (String.concat ", " rels)

type t = { strata : Rule.t list array }

type node = Rel of string | Star

(* Dependencies a rule contributes: the node its head derives into (if
   it can derive locally) and the nodes its locally-evaluated body
   prefix reads, with polarity. *)
type rule_deps = {
  head_node : node option;
  body_deps : (node * bool (* negated *)) list;
}

let head_node ~self ~intensional (head : Atom.t) =
  match head.rel, head.peer with
  | Term.Var _, _ | _, Term.Var _ -> Some Star
  | Term.Const _, Term.Const _ -> (
    match Term.as_name head.peer, Term.as_name head.rel with
    | Some p, Some c when p = self && intensional c -> Some (Rel c)
    | _, _ -> None)

let body_deps ~self ~intensional body =
  let dep_of (a : Atom.t) =
    match a.rel with
    | Term.Var _ -> Some Star
    | Term.Const _ -> (
      match Term.as_name a.rel with
      | Some c when intensional c -> Some (Rel c)
      | Some _ | None -> None)
  in
  let definitely_remote (a : Atom.t) =
    match a.peer with
    | Term.Var _ -> false
    | Term.Const _ -> (
      match Term.as_name a.peer with Some p -> p <> self | None -> false)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | (Literal.Cmp _ | Literal.Assign _) :: rest -> go acc rest
    | Literal.Pos a :: rest ->
      if definitely_remote a then List.rev acc
      else go (match dep_of a with Some n -> (n, false) :: acc | None -> acc) rest
    | Literal.Neg a :: rest ->
      if definitely_remote a then List.rev acc
      else go (match dep_of a with Some n -> (n, true) :: acc | None -> acc) rest
  in
  go [] body

let compute ~self ~intensional rules =
  let deps =
    List.map
      (fun (r : Rule.t) ->
        let body = body_deps ~self ~intensional r.body in
        (* An aggregate reads its body completely before emitting, so it
           behaves like negation for stratification purposes. *)
        let body =
          if Rule.is_aggregate r then List.map (fun (n, _) -> (n, true)) body
          else body
        in
        (r, { head_node = head_node ~self ~intensional r.head; body_deps = body }))
      rules
  in
  (* Collect the node universe. *)
  let node_ids = Hashtbl.create 16 in
  let nodes = ref [] in
  let intern n =
    match Hashtbl.find_opt node_ids n with
    | Some id -> id
    | None ->
      let id = Hashtbl.length node_ids in
      Hashtbl.add node_ids n id;
      nodes := n :: !nodes;
      id
  in
  List.iter
    (fun (_, d) ->
      Option.iter (fun n -> ignore (intern n)) d.head_node;
      List.iter (fun (n, _) -> ignore (intern n)) d.body_deps)
    deps;
  let n_nodes = Hashtbl.length node_ids in
  let all_ids = List.init n_nodes (fun i -> i) in
  (* Expand Star: Star stands for every node (including itself). *)
  let expand = function Star -> all_ids | Rel _ as n -> [ intern n ] in
  (* edges.(v) = list of (u, negated): v depends on u *)
  let edges = Array.make (max n_nodes 1) [] in
  List.iter
    (fun (_, d) ->
      match d.head_node with
      | None -> ()
      | Some h ->
        let targets =
          match h with Star -> all_ids | Rel _ -> expand h
        in
        List.iter
          (fun (dep, neg) ->
            let sources = expand dep in
            List.iter
              (fun v ->
                List.iter (fun u -> edges.(v) <- (u, neg) :: edges.(v)) sources)
              targets)
          d.body_deps)
    deps;
  (* Tarjan SCC on the dependency graph (edge u -> v when v depends on u,
     i.e. we traverse from v to its dependencies u). *)
  let index = Array.make (max n_nodes 1) (-1) in
  let lowlink = Array.make (max n_nodes 1) 0 in
  let on_stack = Array.make (max n_nodes 1) false in
  let stack = ref [] in
  let counter = ref 0 in
  let scc_of = Array.make (max n_nodes 1) (-1) in
  let scc_count = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (u, _) ->
        if index.(u) = -1 then begin
          strongconnect u;
          lowlink.(v) <- min lowlink.(v) lowlink.(u)
        end
        else if on_stack.(u) then lowlink.(v) <- min lowlink.(v) index.(u))
      edges.(v);
    if lowlink.(v) = index.(v) then begin
      let id = !scc_count in
      incr scc_count;
      let rec pop () =
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          on_stack.(u) <- false;
          scc_of.(u) <- id;
          if u <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n_nodes - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Reject negative edges inside an SCC. *)
  let cycle = ref None in
  Array.iteri
    (fun v deps ->
      List.iter
        (fun (u, neg) ->
          if neg && scc_of.(u) = scc_of.(v) && !cycle = None then begin
            let members =
              Hashtbl.fold
                (fun n id acc ->
                  if scc_of.(id) = scc_of.(v) then
                    (match n with Rel r -> r :: acc | Star -> "<any>" :: acc)
                  else acc)
                node_ids []
            in
            cycle := Some (List.sort String.compare members)
          end)
        deps)
    edges;
  match !cycle with
  | Some members -> Error (Negative_cycle members)
  | None ->
    (* Tarjan completes dependency SCCs first, so they receive smaller
       ids; iterating ids upward is topological order. *)
    let scc_stratum = Array.make (max !scc_count 1) 0 in
    for s = 0 to !scc_count - 1 do
      let m = ref 0 in
      for v = 0 to n_nodes - 1 do
        if scc_of.(v) = s then
          List.iter
            (fun (u, neg) ->
              if scc_of.(u) <> s then
                m := max !m (scc_stratum.(scc_of.(u)) + if neg then 1 else 0))
            edges.(v)
      done;
      scc_stratum.(s) <- !m
    done;
    let node_stratum n = scc_stratum.(scc_of.(intern n)) in
    let rule_stratum (d : rule_deps) =
      match d.head_node with
      | Some h -> node_stratum h
      | None ->
        List.fold_left
          (fun acc (dep, neg) ->
            max acc (node_stratum dep + if neg then 1 else 0))
          0 d.body_deps
    in
    let with_stratum = List.map (fun (r, d) -> (rule_stratum d, r)) deps in
    let max_stratum = List.fold_left (fun acc (s, _) -> max acc s) 0 with_stratum in
    let strata = Array.make (max_stratum + 1) [] in
    List.iter (fun (s, r) -> strata.(s) <- r :: strata.(s)) with_stratum;
    Array.iteri (fun i rs -> strata.(i) <- List.rev rs) strata;
    Ok { strata }
