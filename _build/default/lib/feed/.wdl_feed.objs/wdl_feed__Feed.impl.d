lib/feed/feed.ml: Fact Hashtbl List Printf String Value Wdl_syntax Webdamlog
