lib/feed/feed.mli: Wdl_net Webdamlog
