lib/net/inmem.ml: Hashtbl List Netstats Queue Transport
