lib/net/inmem.mli: Transport
