lib/net/netstats.ml: Format
