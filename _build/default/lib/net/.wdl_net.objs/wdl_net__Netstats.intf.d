lib/net/netstats.mli: Format
