lib/net/reliable.ml: Float Hashtbl List Netstats Random Transport
