lib/net/reliable.mli: Netstats Transport
