lib/net/simnet.ml: Float Hashtbl Int List Netstats Random String Transport
