lib/net/simnet.mli: Transport
