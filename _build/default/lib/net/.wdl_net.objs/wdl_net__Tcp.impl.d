lib/net/tcp.ml: Buffer Bytes Fun Hashtbl List Netstats Printf Queue String Transport Unix
