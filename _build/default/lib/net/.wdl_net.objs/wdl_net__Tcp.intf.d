lib/net/tcp.mli: Transport
