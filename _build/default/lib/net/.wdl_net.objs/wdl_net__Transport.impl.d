lib/net/transport.ml: Netstats
