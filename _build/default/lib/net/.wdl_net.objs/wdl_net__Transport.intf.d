lib/net/transport.mli: Netstats
