(** Synchronous in-memory transport: messages become deliverable
    immediately, per-link FIFO order is preserved.

    [sizer] estimates payload bytes for {!Netstats} (default: 0). *)

val create : ?sizer:('a -> int) -> unit -> 'a Transport.t
