type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable bytes : int;
  mutable retransmits : int;
  mutable dup_dropped : int;
  mutable send_failures : int;
  mutable acked : int;
}

let create () =
  {
    sent = 0;
    delivered = 0;
    bytes = 0;
    retransmits = 0;
    dup_dropped = 0;
    send_failures = 0;
    acked = 0;
  }

let reset t =
  t.sent <- 0;
  t.delivered <- 0;
  t.bytes <- 0;
  t.retransmits <- 0;
  t.dup_dropped <- 0;
  t.send_failures <- 0;
  t.acked <- 0

let pp ppf t =
  Format.fprintf ppf "sent=%d delivered=%d bytes=%d" t.sent t.delivered t.bytes;
  if t.retransmits > 0 || t.dup_dropped > 0 || t.send_failures > 0 || t.acked > 0
  then
    Format.fprintf ppf " retransmits=%d dup_dropped=%d send_failures=%d acked=%d"
      t.retransmits t.dup_dropped t.send_failures t.acked
