type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable bytes : int;
}

let create () = { sent = 0; delivered = 0; bytes = 0 }

let reset t =
  t.sent <- 0;
  t.delivered <- 0;
  t.bytes <- 0

let pp ppf t =
  Format.fprintf ppf "sent=%d delivered=%d bytes=%d" t.sent t.delivered t.bytes
