(** Message-level counters kept by every transport. *)

type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable bytes : int;  (** estimated payload bytes, when a sizer is set *)
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
