(** Discrete-event simulated network.

    Each message is stamped with a delivery time [now + latency] where
    latency is [base_latency ± jitter] for the link, drawn from a
    deterministic seeded generator; it becomes deliverable once the
    clock passes the stamp. With per-link jitter, messages from
    different sources interleave and reorder exactly as on the paper's
    LAN-plus-cloud topology (Fig. 2).

    [latency] overrides the per-link base latency; reflexive links
    (src = dst) are always instantaneous. *)

type control

val create :
  ?sizer:('a -> int) ->
  ?seed:int ->
  ?base_latency:float ->
  ?jitter:float ->
  ?duplicate:float ->
  ?latency:(src:string -> dst:string -> float) ->
  unit ->
  'a Transport.t
(** Defaults: [seed = 42], [base_latency = 1.0], [jitter = 0.25],
    [duplicate = 0.0]. [duplicate] is the probability that a message is
    delivered twice (with independent latencies) — at-least-once
    delivery, the failure mode the engine's idempotent batch/install
    semantics must absorb. *)

val create_with_control :
  ?sizer:('a -> int) ->
  ?seed:int ->
  ?base_latency:float ->
  ?jitter:float ->
  ?duplicate:float ->
  ?latency:(src:string -> dst:string -> float) ->
  unit ->
  'a Transport.t * control
(** Like {!create}, plus a handle for injecting partitions. *)

val partition : control -> between:string -> and_:string -> unit
(** Cuts both directions of the link: messages sent while the link is
    down are held (a disconnected laptop's TCP retries, not losses)
    and released when {!heal} is called. *)

val heal : control -> between:string -> and_:string -> unit
val partitioned : control -> between:string -> and_:string -> bool
