(** Discrete-event simulated network.

    Each message is stamped with a delivery time [now + latency] where
    latency is [base_latency ± jitter] for the link, drawn from a
    deterministic seeded generator; it becomes deliverable once the
    clock passes the stamp. With per-link jitter, messages from
    different sources interleave and reorder exactly as on the paper's
    LAN-plus-cloud topology (Fig. 2).

    [latency] overrides the per-link base latency; reflexive links
    (src = dst) are always instantaneous.

    Fault injection (all deterministic under the seed): [duplicate]
    delivers extra copies, [loss] silently drops copies, {!partition}
    holds a link, and {!crash} takes a whole peer down — the failure
    menu the {!Reliable} session layer is built to absorb. *)

type control

val create :
  ?sizer:('a -> int) ->
  ?seed:int ->
  ?base_latency:float ->
  ?jitter:float ->
  ?duplicate:float ->
  ?loss:float ->
  ?latency:(src:string -> dst:string -> float) ->
  unit ->
  'a Transport.t
(** Defaults: [seed = 42], [base_latency = 1.0], [jitter = 0.25],
    [duplicate = 0.0], [loss = 0.0]. [duplicate] is the probability
    that a message is delivered twice (with independent latencies) —
    at-least-once delivery, the failure mode the engine's idempotent
    batch/install semantics must absorb. [loss] is the independent
    probability that each enqueued copy (original or duplicate)
    vanishes — at-most-once delivery, which only a retransmitting
    layer above ({!Reliable}) can hide. *)

val create_with_control :
  ?sizer:('a -> int) ->
  ?seed:int ->
  ?base_latency:float ->
  ?jitter:float ->
  ?duplicate:float ->
  ?loss:float ->
  ?latency:(src:string -> dst:string -> float) ->
  unit ->
  'a Transport.t * control
(** Like {!create}, plus a handle for injecting partitions and
    crashes. *)

val partition : control -> between:string -> and_:string -> unit
(** Cuts both directions of the link: messages sent while the link is
    down are held (a disconnected laptop's TCP retries, not losses)
    and released when {!heal} is called. *)

val heal : control -> between:string -> and_:string -> unit
val partitioned : control -> between:string -> and_:string -> bool

val crash : control -> string -> unit
(** Takes a peer down: its undelivered inbox is lost, and until
    {!restart} every message to or from it is dropped (a dead process
    loses its kernel buffers; connections to it are refused). *)

val restart : control -> string -> unit
val crashed : control -> string -> bool

val messages_lost : control -> int
(** Copies dropped so far by loss injection and crashes. *)
