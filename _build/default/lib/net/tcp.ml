type endpoint = { host : string; port : int }

type control = {
  server : Unix.file_descr;
  actual_port : int;
  registry : (string, endpoint) Hashtbl.t;
  queues : (string, string Queue.t) Hashtbl.t;
  local : (string, unit) Hashtbl.t;  (* peers that drained here at least once *)
  mutable closed : bool;
}

(* Frame layout on one connection: "<dst-bytes>\n<payload-bytes>\n" as
   decimal lengths, then the two byte strings. *)
let write_frame fd ~dst payload =
  let header = Printf.sprintf "%d\n%d\n" (String.length dst) (String.length payload) in
  let all = header ^ dst ^ payload in
  let rec loop off =
    if off < String.length all then
      let n = Unix.write_substring fd all off (String.length all - off) in
      loop (off + n)
  in
  loop 0

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    end
  in
  (try loop () with Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
  Buffer.contents buf

let parse_frame data =
  match String.index_opt data '\n' with
  | None -> None
  | Some i -> (
    let rest_off = i + 1 in
    match String.index_from_opt data rest_off '\n' with
    | None -> None
    | Some j -> (
      match
        ( int_of_string_opt (String.sub data 0 i),
          int_of_string_opt (String.sub data rest_off (j - rest_off)) )
      with
      | Some dst_len, Some payload_len ->
        let body_off = j + 1 in
        if String.length data >= body_off + dst_len + payload_len then
          Some
            ( String.sub data body_off dst_len,
              String.sub data (body_off + dst_len) payload_len )
        else None
      | _, _ -> None))

let queue ctl name =
  match Hashtbl.find_opt ctl.queues name with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace ctl.queues name q;
    q

(* Accept every connection already pending and enqueue its frame. *)
let pump ctl =
  if not ctl.closed then
    let rec loop () =
      match Unix.select [ ctl.server ] [] [] 0.0 with
      | [ _ ], _, _ ->
        let client, _ = Unix.accept ctl.server in
        let data = read_all client in
        Unix.close client;
        (match parse_frame data with
        | Some (dst, payload) -> Queue.push payload (queue ctl dst)
        | None -> ());
        loop ()
      | _, _, _ -> ()
    in
    loop ()

let create ?(sizer = String.length) ?(port = 0) () =
  let server = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt server Unix.SO_REUSEADDR true;
  Unix.bind server (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen server 64;
  let actual_port =
    match Unix.getsockname server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let ctl =
    {
      server;
      actual_port;
      registry = Hashtbl.create 8;
      queues = Hashtbl.create 8;
      local = Hashtbl.create 8;
      closed = false;
    }
  in
  let stats = Netstats.create () in
  let send ~src:_ ~dst payload =
    stats.Netstats.sent <- stats.Netstats.sent + 1;
    stats.Netstats.bytes <- stats.Netstats.bytes + sizer payload;
    match Hashtbl.find_opt ctl.registry dst with
    | None ->
      (* No remote location: the peer lives in this process. *)
      Queue.push payload (queue ctl dst)
    | Some ep ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close sock)
        (fun () ->
          Unix.connect sock
            (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port));
          write_frame sock ~dst payload;
          Unix.shutdown sock Unix.SHUTDOWN_SEND)
  in
  let drain name =
    Hashtbl.replace ctl.local name ();
    pump ctl;
    let q = queue ctl name in
    let msgs = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    stats.Netstats.delivered <- stats.Netstats.delivered + List.length msgs;
    msgs
  in
  let pending () =
    pump ctl;
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) ctl.queues 0
  in
  let transport =
    {
      Transport.send;
      drain;
      pending;
      advance = (fun _ -> ());
      now = (fun () -> 0.);
      stats = (fun () -> stats);
    }
  in
  (transport, ctl)

let port ctl = ctl.actual_port
let register ctl ~peer ep = Hashtbl.replace ctl.registry peer ep

let close ctl =
  if not ctl.closed then begin
    ctl.closed <- true;
    Unix.close ctl.server
  end
