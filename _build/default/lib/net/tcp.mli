(** TCP transport: frames of bytes between processes over real sockets
    (the paper's deployment runs peers on two laptops and a cloud
    host; this transport is what {!Inmem}/{!Simnet} simulate).

    One {!create} per process: it listens on a local port and serves
    every peer hosted by the process. Remote peers are located through
    {!register}. A frame is sent over a fresh connection (sender
    closes after writing), so delivery per link is ordered and
    [drain] never blocks: it accepts whatever connections are already
    pending.

    Failure handling: a connect or write that fails (ECONNREFUSED,
    EHOSTUNREACH, timeout) never escapes as an exception — the send is
    counted in [Netstats.send_failures] and parked for retry with
    exponential backoff, re-attempted on every [drain]/[pending] until
    it succeeds (counted as a retransmit) or [max_retries] is
    exhausted. Connects are bounded by [connect_timeout]; reads of an
    accepted connection are bounded by [read_timeout], after which the
    partial frame is dropped. At-least/at-most-once gaps left by this
    best-effort discipline are what {!Reliable} (over
    {!Webdamlog.Wire.envelope_transport}) closes.

    The payload is an opaque string — the engine's message codec is
    {!Webdamlog.Wire}. *)

type endpoint = { host : string; port : int }

type control

val create :
  ?sizer:(string -> int) ->
  ?port:int ->
  ?connect_timeout:float ->
  ?read_timeout:float ->
  ?retry_delay:float ->
  ?max_retries:int ->
  unit ->
  string Transport.t * control
(** Listens on [127.0.0.1:port] (default [0]: ephemeral). Defaults:
    [connect_timeout = 5.0] s, [read_timeout = 5.0] s,
    [retry_delay = 0.05] s (doubling per attempt, capped),
    [max_retries = 24]. *)

val port : control -> int
val register : control -> peer:string -> endpoint -> unit
(** Where to connect for [peer]. A peer served by this same process
    needs no registration: frames to it short-circuit locally. *)

val parked_sends : control -> int
(** Failed sends currently awaiting a backoff retry. *)

val close : control -> unit
