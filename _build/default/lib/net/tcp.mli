(** TCP transport: frames of bytes between processes over real sockets
    (the paper's deployment runs peers on two laptops and a cloud
    host; this transport is what {!Inmem}/{!Simnet} simulate).

    One {!create} per process: it listens on a local port and serves
    every peer hosted by the process. Remote peers are located through
    {!register}. A frame is sent over a fresh connection (sender
    closes after writing), so delivery per link is ordered and
    [drain] never blocks: it accepts whatever connections are already
    pending.

    The payload is an opaque string — the engine's message codec is
    {!Webdamlog.Wire}. *)

type endpoint = { host : string; port : int }

type control

val create : ?sizer:(string -> int) -> ?port:int -> unit -> string Transport.t * control
(** Listens on [127.0.0.1:port] (default [0]: ephemeral). *)

val port : control -> int
val register : control -> peer:string -> endpoint -> unit
(** Where to connect for [peer]. A peer served by this same process
    needs no registration: frames to it short-circuit locally. *)

val close : control -> unit
