type 'a t = {
  send : src:string -> dst:string -> 'a -> unit;
  drain : string -> 'a list;
  pending : unit -> int;
  advance : float -> unit;
  now : unit -> float;
  stats : unit -> Netstats.t;
}

let send t = t.send
let drain t = t.drain
