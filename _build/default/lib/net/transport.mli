(** Transports: how peer-to-peer messages travel.

    A transport is a first-class record, generic in the payload type;
    the WebdamLog engine instantiates it with its message type. Two
    in-process implementations are provided ({!Inmem}, {!Simnet});
    {!Tcp} carries length-prefixed strings across real sockets.

    Delivery is per-link FIFO in {!Inmem}; {!Simnet} can delay and
    reorder across links, which is what a real WAN does to autonomous
    peers (§4 runs peers on two laptops and a cloud host). *)

type 'a t = {
  send : src:string -> dst:string -> 'a -> unit;
  drain : string -> 'a list;
      (** Messages currently deliverable to a peer, oldest first;
          removes them from the transport. *)
  pending : unit -> int;
      (** Messages accepted but not yet drained (in flight + queued). *)
  advance : float -> unit;
      (** Advances simulated time (no-op for non-simulated transports). *)
  now : unit -> float;
  stats : unit -> Netstats.t;
}

val send : 'a t -> src:string -> dst:string -> 'a -> unit
val drain : 'a t -> string -> 'a list
