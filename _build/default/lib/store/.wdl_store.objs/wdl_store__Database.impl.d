lib/store/database.ml: Decl Fact Format Hashtbl List Option Relation Result String Tuple Wdl_syntax
