lib/store/database.mli: Decl Format Relation Tuple Wdl_syntax
