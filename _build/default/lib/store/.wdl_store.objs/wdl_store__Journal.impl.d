lib/store/journal.ml: Decl Fact Format Fun List Parser Pp_util Printf Program Result String Sys Wdl_syntax
