lib/store/journal.mli: Decl Fact Format Wdl_syntax
