lib/store/relation.ml: Array Hashtbl Int List Printf Tuple Wdl_syntax
