lib/store/relation.mli: Tuple Wdl_syntax
