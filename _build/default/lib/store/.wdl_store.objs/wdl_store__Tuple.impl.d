lib/store/tuple.ml: Array Format Int Wdl_syntax
