lib/store/tuple.mli: Format Wdl_syntax
