(** A relation instance: a set of same-arity tuples with lazily built
    hash indexes on binding patterns.

    An index on positions [{i1 < … < ik}] maps the projection of a
    tuple on those positions to the set of matching tuples; it is
    created the first time a lookup with that binding pattern is
    attempted on a large-enough relation, and maintained incrementally
    afterwards. [~indexing:false] disables index creation (used by the
    T4 ablation benchmark). *)

type t

val create : ?indexing:bool -> arity:int -> unit -> t
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val insert : t -> Tuple.t -> bool
(** [true] iff the tuple was not already present.
    Raises [Invalid_argument] on arity mismatch. *)

val delete : t -> Tuple.t -> bool
(** [true] iff the tuple was present. *)

val mem : t -> Tuple.t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list
(** In unspecified order. *)

val to_sorted_list : t -> Tuple.t list

val lookup : t -> (int * Wdl_syntax.Value.t) list -> (Tuple.t -> unit) -> unit
(** [lookup rel bound f] calls [f] on every tuple agreeing with the
    [(position, value)] constraints. Uses (and possibly creates) an
    index on the bound positions. [bound] may be empty (full scan). *)

val clear : t -> unit
val copy : t -> t
val index_count : t -> int
(** Number of materialised indexes (observability for tests/bench). *)
