module Value = Wdl_syntax.Value

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  match Int.compare (Array.length a) (Array.length b) with
  | 0 ->
    let rec go i =
      if i >= Array.length a then 0
      else
        match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
    in
    go 0
  | c -> c

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (Array.to_list t)
