(** Tuples: the stored form of fact arguments. *)

type t = Wdl_syntax.Value.t array

val of_list : Wdl_syntax.Value.t list -> t
val to_list : t -> Wdl_syntax.Value.t list
val arity : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
