lib/syntax/aggregate.ml: Float Format List Printf Result Value
