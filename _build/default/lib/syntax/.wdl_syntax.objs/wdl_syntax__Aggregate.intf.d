lib/syntax/aggregate.mli: Format Value
