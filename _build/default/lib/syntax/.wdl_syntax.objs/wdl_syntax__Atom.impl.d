lib/syntax/atom.ml: Fact Format List Option Subst Term
