lib/syntax/atom.mli: Fact Format Subst Term
