lib/syntax/decl.ml: Fact Format List Stdlib
