lib/syntax/decl.mli: Format
