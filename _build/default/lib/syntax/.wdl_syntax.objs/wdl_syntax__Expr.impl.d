lib/syntax/expr.ml: Format List Printf Result Stdlib Subst Value
