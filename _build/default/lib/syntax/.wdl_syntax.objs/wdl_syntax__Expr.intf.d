lib/syntax/expr.mli: Format Subst Value
