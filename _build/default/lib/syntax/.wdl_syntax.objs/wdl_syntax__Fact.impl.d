lib/syntax/fact.ml: Format Hashtbl List String Term Value
