lib/syntax/fact.mli: Format Value
