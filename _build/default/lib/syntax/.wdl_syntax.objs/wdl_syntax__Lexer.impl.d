lib/syntax/lexer.ml: Buffer Char Format List Printf String
