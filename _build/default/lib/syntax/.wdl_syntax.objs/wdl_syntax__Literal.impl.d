lib/syntax/literal.ml: Atom Expr Float Format List Stdlib Value
