lib/syntax/literal.mli: Atom Expr Format Subst Value
