lib/syntax/parser.ml: Aggregate Atom Decl Expr Format Lexer List Literal Option Printf Program Result Rule Term Value
