lib/syntax/parser.mli: Atom Fact Lexer Literal Program Rule
