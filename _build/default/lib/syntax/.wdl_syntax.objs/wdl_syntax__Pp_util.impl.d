lib/syntax/pp_util.ml: Buffer Format String
