lib/syntax/pp_util.mli: Format
