lib/syntax/program.ml: Decl Fact Format List Rule
