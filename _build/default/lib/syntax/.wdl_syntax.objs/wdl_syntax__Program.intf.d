lib/syntax/program.mli: Decl Fact Format Rule
