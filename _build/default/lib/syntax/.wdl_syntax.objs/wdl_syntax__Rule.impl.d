lib/syntax/rule.ml: Aggregate Atom Expr Format Int List Literal Stdlib Term
