lib/syntax/rule.mli: Aggregate Atom Format Literal Subst
