lib/syntax/safety.ml: Atom Expr Fact Format List Literal Program Rule Set String Term Value
