lib/syntax/safety.mli: Atom Fact Format Literal Program Rule Value
