lib/syntax/subst.ml: Format List Map String Term Value
