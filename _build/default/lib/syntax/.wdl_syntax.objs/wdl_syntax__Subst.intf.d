lib/syntax/subst.mli: Format Term Value
