lib/syntax/term.ml: Char Format String Value
