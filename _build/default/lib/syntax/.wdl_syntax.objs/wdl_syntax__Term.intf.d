lib/syntax/term.mli: Format Value
