lib/syntax/value.ml: Bool Buffer Float Format Hashtbl Int Printf String
