lib/syntax/value.mli: Format
