type op = Count | Sum | Min | Max | Avg

type spec = {
  op : op;
  var : string;
}

let op_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

let op_of_name = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "min" -> Some Min
  | "max" -> Some Max
  | "avg" -> Some Avg
  | _ -> None

let pp ppf s = Format.fprintf ppf "%s($%s)" (op_name s.op) s.var

let numbers values =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Value.Int n :: rest -> go (float_of_int n :: acc) rest
    | Value.Float f :: rest -> go (f :: acc) rest
    | (Value.String _ | Value.Bool _) as v :: _ ->
      Error
        (Printf.sprintf "aggregate over non-numeric value %s" (Value.to_string v))
  in
  go [] values

let all_ints values =
  List.for_all (function Value.Int _ -> true | _ -> false) values

let apply op values =
  match op, values with
  | _, [] -> Error "aggregate over an empty group"
  | Count, _ -> Ok (Value.Int (List.length values))
  | Avg, _ ->
    Result.map
      (fun ns -> Value.Float (List.fold_left ( +. ) 0. ns /. float_of_int (List.length ns)))
      (numbers values)
  | Sum, _ ->
    Result.map
      (fun ns ->
        let total = List.fold_left ( +. ) 0. ns in
        if all_ints values then Value.Int (int_of_float total) else Value.Float total)
      (numbers values)
  | (Min | Max), first :: rest ->
    (* numeric coercion: compare as floats when int and float mix *)
    let cmp a b =
      match a, b with
      | Value.Int x, Value.Float y -> Float.compare (float_of_int x) y
      | Value.Float x, Value.Int y -> Float.compare x (float_of_int y)
      | a, b -> Value.compare a b
    in
    let wins = match op with Min -> fun c -> c < 0 | _ -> fun c -> c > 0 in
    Result.map
      (fun (_ : float list) ->
        List.fold_left (fun acc v -> if wins (cmp v acc) then v else acc) first rest)
      (numbers values)
