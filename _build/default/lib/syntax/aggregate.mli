(** Aggregation specs for rule heads.

    Aggregation is a substrate feature (Bud/Bloom has native
    aggregates; WebdamLog's 2011 core does not), surfaced as head
    syntax: {v rank@p($owner, count($id)) :- pics@p($id, $owner) v}
    A rule with aggregate positions groups its complete valuations by
    the remaining head arguments and emits one fact per group. Like
    negation, aggregation reads its body completely, so such rules are
    stratified below their consumers (see {!Wdl_eval.Stratify}). *)

type op = Count | Sum | Min | Max | Avg

type spec = {
  op : op;
  var : string;  (** the aggregated body variable *)
}

val op_name : op -> string
val op_of_name : string -> op option
val pp : Format.formatter -> spec -> unit

val apply : op -> Value.t list -> (Value.t, string) result
(** Aggregates a non-empty multiset. [Count] accepts any values;
    [Sum]/[Min]/[Max] need numbers (mixing int and float promotes to
    float); [Avg] is always a float. The [Error] carries a
    human-readable reason. *)
