type t = {
  rel : Term.t;
  peer : Term.t;
  args : Term.t list;
}

let make ~rel ~peer args = { rel; peer; args }
let app rel peer args = { rel = Term.str rel; peer = Term.str peer; args }
let arity a = List.length a.args

let compare a b =
  match Term.compare a.rel b.rel with
  | 0 -> (
    match Term.compare a.peer b.peer with
    | 0 -> List.compare Term.compare a.args b.args
    | c -> c)
  | c -> c

let equal a b = compare a b = 0

let vars a =
  let add acc t =
    List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) acc (Term.vars t)
  in
  List.rev (List.fold_left add [] (a.rel :: a.peer :: a.args))

let subst s a =
  {
    rel = Subst.apply s a.rel;
    peer = Subst.apply s a.peer;
    args = List.map (Subst.apply s) a.args;
  }

let is_ground a = vars a = []

let to_fact a =
  match Term.as_name a.rel, Term.as_name a.peer with
  | Some rel, Some peer ->
    let rec consts acc = function
      | [] -> Some (List.rev acc)
      | Term.Const v :: rest -> consts (v :: acc) rest
      | Term.Var _ :: _ -> None
    in
    Option.map (fun args -> Fact.make ~rel ~peer args) (consts [] a.args)
  | _, _ -> None

let of_fact (f : Fact.t) =
  {
    rel = Term.str f.rel;
    peer = Term.str f.peer;
    args = List.map (fun v -> Term.Const v) f.args;
  }

let pp ppf a =
  Format.fprintf ppf "@[<hov 2>%a@%a(%a)@]" Term.pp_name a.rel Term.pp_name
    a.peer
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Term.pp)
    a.args
