(** Atoms: [rel@peer(t1, …, tn)].

    Relation and peer positions hold terms, which is the paper's key
    syntactic novelty: [pictures@$attendee($id, $name)] has a peer
    variable, and [$protocol@$attendee(…)] has both relation and peer
    variables. *)

type t = {
  rel : Term.t;   (** relation-name term *)
  peer : Term.t;  (** peer-name term *)
  args : Term.t list;
}

val make : rel:Term.t -> peer:Term.t -> Term.t list -> t

val app : string -> string -> Term.t list -> t
(** [app rel peer args] builds an atom with constant relation and peer
    names. *)

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val vars : t -> string list
(** All variables, in position order (rel, peer, then args), each once. *)

val subst : Subst.t -> t -> t
val is_ground : t -> bool

val to_fact : t -> Fact.t option
(** [Some f] iff the atom is ground and its relation and peer terms are
    names. *)

val of_fact : Fact.t -> t
val pp : Format.formatter -> t -> unit
