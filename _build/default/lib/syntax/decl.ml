type kind = Extensional | Intensional

type t = {
  kind : kind;
  rel : string;
  peer : string;
  cols : string list;
}

let make ~kind ~rel ~peer cols =
  if rel = "" then invalid_arg "Decl.make: empty relation name";
  if peer = "" then invalid_arg "Decl.make: empty peer name";
  { kind; rel; peer; cols }

let arity d = List.length d.cols
let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp_kind ppf = function
  | Extensional -> Format.pp_print_string ppf "ext"
  | Intensional -> Format.pp_print_string ppf "int"

let pp ppf d =
  Format.fprintf ppf "@[<hov 2>%a %a@%a(%a)@]" pp_kind d.kind Fact.pp_bare_name
    d.rel Fact.pp_bare_name d.peer
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_string)
    d.cols
