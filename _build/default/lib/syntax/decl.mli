(** Relation declarations.

    WebdamLog distinguishes extensional relations (persistent, updated
    by insertions/deletions, the targets of inductive rules) from
    intensional relations (views, recomputed at every stage).
    Concrete syntax:
    {v ext pictures@Jules(id, name, owner, data)
       int attendeePictures@Jules(id, name, owner, data) v} *)

type kind = Extensional | Intensional

type t = {
  kind : kind;
  rel : string;
  peer : string;
  cols : string list;  (** column names; the arity is their number *)
}

val make : kind:kind -> rel:string -> peer:string -> string list -> t
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
