type t =
  | Const of Value.t
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

type error =
  | Unbound_variable of string
  | Type_error of string

let ( let* ) = Result.bind

let numeric op_name fi ff a b =
  match a, b with
  | Value.Int x, Value.Int y -> Ok (Value.Int (fi x y))
  | Value.Float x, Value.Float y -> Ok (Value.Float (ff x y))
  | Value.Int x, Value.Float y -> Ok (Value.Float (ff (float_of_int x) y))
  | Value.Float x, Value.Int y -> Ok (Value.Float (ff x (float_of_int y)))
  | a, b ->
    Error
      (Type_error
         (Printf.sprintf "%s expects numbers, got %s and %s" op_name
            (Value.type_name a) (Value.type_name b)))

let rec eval s = function
  | Const v -> Ok v
  | Var x -> (
    match Subst.find x s with
    | Some v -> Ok v
    | None -> Error (Unbound_variable x))
  | Add (a, b) -> (
    let* va = eval s a in
    let* vb = eval s b in
    match va, vb with
    | Value.String x, Value.String y -> Ok (Value.String (x ^ y))
    | va, vb -> numeric "+" ( + ) ( +. ) va vb)
  | Sub (a, b) ->
    let* va = eval s a in
    let* vb = eval s b in
    numeric "-" ( - ) ( -. ) va vb
  | Mul (a, b) ->
    let* va = eval s a in
    let* vb = eval s b in
    numeric "*" ( * ) ( *. ) va vb
  | Div (a, b) -> (
    let* va = eval s a in
    let* vb = eval s b in
    match vb with
    | Value.Int 0 -> Error (Type_error "division by zero")
    | Value.Float f when f = 0. -> Error (Type_error "division by zero")
    | vb -> numeric "/" ( / ) ( /. ) va vb)

let vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var x -> if List.mem x acc then acc else x :: acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> go (go acc a) b
  in
  List.rev (go [] e)

let rec subst s = function
  | Const _ as e -> e
  | Var x as e -> (
    match Subst.find x s with Some v -> Const v | None -> e)
  | Add (a, b) -> Add (subst s a, subst s b)
  | Sub (a, b) -> Sub (subst s a, subst s b)
  | Mul (a, b) -> Mul (subst s a, subst s b)
  | Div (a, b) -> Div (subst s a, subst s b)

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* Precedence: Add/Sub = 1, Mul/Div = 2, atoms = 3. *)
let rec pp_prec prec ppf e =
  let paren p fmt =
    if p < prec then Format.fprintf ppf ("(" ^^ fmt ^^ ")")
    else Format.fprintf ppf fmt
  in
  match e with
  | Const v -> Value.pp ppf v
  | Var x -> Format.fprintf ppf "$%s" x
  | Add (a, b) -> paren 1 "%a + %a" (pp_prec 1) a (pp_prec 2) b
  | Sub (a, b) -> paren 1 "%a - %a" (pp_prec 1) a (pp_prec 2) b
  | Mul (a, b) -> paren 2 "%a * %a" (pp_prec 2) a (pp_prec 3) b
  | Div (a, b) -> paren 2 "%a / %a" (pp_prec 2) a (pp_prec 3) b

let pp = pp_prec 0

let pp_error ppf = function
  | Unbound_variable x -> Format.fprintf ppf "unbound variable $%s" x
  | Type_error msg -> Format.pp_print_string ppf msg
