(** Arithmetic / string expressions used by builtin body literals.

    The 2013 system exposed comparisons and simple computation through
    Bud; we surface them as builtin literals: [$x < $y], [$z := $x + 1].
    Expressions are evaluated only when all their variables are bound
    (enforced by {!Safety}). *)

type t =
  | Const of Value.t
  | Var of string
  | Add of t * t  (** numeric addition, or string concatenation *)
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** integer division on ints; [Division_by_zero] -> error *)

type error =
  | Unbound_variable of string
  | Type_error of string  (** human-readable description *)

val eval : Subst.t -> t -> (Value.t, error) result
val vars : t -> string list
(** Free variables, each listed once, in first-occurrence order. *)

val subst : Subst.t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit
