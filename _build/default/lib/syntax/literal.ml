type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Pos of Atom.t
  | Neg of Atom.t
  | Cmp of cmpop * Expr.t * Expr.t
  | Assign of string * Expr.t

let atom = function Pos a | Neg a -> Some a | Cmp _ | Assign _ -> None

let dedup l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let vars = function
  | Pos a | Neg a -> Atom.vars a
  | Cmp (_, e1, e2) -> dedup (Expr.vars e1 @ Expr.vars e2)
  | Assign (x, e) -> dedup (x :: Expr.vars e)

let bound_vars = function
  | Pos a -> Atom.vars a
  | Neg _ | Cmp _ -> []
  | Assign (x, _) -> [ x ]

let subst s = function
  | Pos a -> Pos (Atom.subst s a)
  | Neg a -> Neg (Atom.subst s a)
  | Cmp (op, e1, e2) -> Cmp (op, Expr.subst s e1, Expr.subst s e2)
  | Assign (x, e) -> Assign (x, Expr.subst s e)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp_cmpop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "=="
    | Neq -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp ppf = function
  | Pos a -> Atom.pp ppf a
  | Neg a -> Format.fprintf ppf "not %a" Atom.pp a
  | Cmp (op, e1, e2) ->
    Format.fprintf ppf "%a %a %a" Expr.pp e1 pp_cmpop op Expr.pp e2
  | Assign (x, e) -> Format.fprintf ppf "$%s := %a" x Expr.pp e

(* Numeric comparisons coerce int to float; everything else uses the
   total order on values (so Eq/Neq work on any pair). *)
let eval_cmp op a b =
  let c =
    match a, b with
    | Value.Int x, Value.Float y -> Float.compare (float_of_int x) y
    | Value.Float x, Value.Int y -> Float.compare x (float_of_int y)
    | a, b -> Value.compare a b
  in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0
