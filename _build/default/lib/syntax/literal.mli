(** Body literals.

    A body is an ordered list of literals, evaluated left to right
    (order matters in WebdamLog, unlike plain Datalog — §2 of the
    paper): the position of the first atom whose peer resolves to a
    remote name is where delegation happens. *)

type cmpop = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Pos of Atom.t          (** positive relational atom *)
  | Neg of Atom.t          (** negated atom; must be local and bound *)
  | Cmp of cmpop * Expr.t * Expr.t  (** comparison builtin *)
  | Assign of string * Expr.t       (** [$x := expr] binds a fresh variable *)

val atom : t -> Atom.t option
val vars : t -> string list
(** Variables in occurrence order, each once. *)

val bound_vars : t -> string list
(** Variables the literal can bind: args of a positive atom (plus its
    rel/peer variables), or the assigned variable. Negations and
    comparisons bind nothing. *)

val subst : Subst.t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_cmpop : Format.formatter -> cmpop -> unit
val eval_cmp : cmpop -> Value.t -> Value.t -> bool
(** Total comparison using {!Value.compare}; numeric comparisons mix
    ints and floats. *)
