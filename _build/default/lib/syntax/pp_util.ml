let one_line pp v =
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1_000_000_000;
  Format.pp_set_max_indent ppf 999_999_999;
  pp ppf v;
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  String.map (function '\n' -> ' ' | c -> c) s
