(** Printing helpers shared by the line-oriented encoders (wire frames,
    journals, snapshots). *)

val one_line : (Format.formatter -> 'a -> unit) -> 'a -> string
(** Renders with break hints disabled (unbounded margin {e and} max
    indent — both matter: hints outside a box split at max-indent no
    matter the margin), so the result is guaranteed newline-free. *)
