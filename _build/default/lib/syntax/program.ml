type statement =
  | Decl of Decl.t
  | Fact of Fact.t
  | Rule of Rule.t

type t = statement list

let decls p =
  List.filter_map (function Decl d -> Some d | Fact _ | Rule _ -> None) p

let facts p =
  List.filter_map (function Fact f -> Some f | Decl _ | Rule _ -> None) p

let rules p =
  List.filter_map (function Rule r -> Some r | Decl _ | Fact _ -> None) p

let pp_statement ppf = function
  | Decl d -> Format.fprintf ppf "%a;" Decl.pp d
  | Fact f -> Format.fprintf ppf "%a;" Fact.pp f
  | Rule r -> Format.fprintf ppf "%a;" Rule.pp r

let pp ppf p =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
       pp_statement)
    p
