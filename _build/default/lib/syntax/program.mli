(** Programs: ordered lists of declarations, facts and rules, as they
    appear in a source file. *)

type statement =
  | Decl of Decl.t
  | Fact of Fact.t
  | Rule of Rule.t

type t = statement list

val decls : t -> Decl.t list
val facts : t -> Fact.t list
val rules : t -> Rule.t list
val pp_statement : Format.formatter -> statement -> unit
val pp : Format.formatter -> t -> unit
(** One statement per line, each terminated by [;]. Round-trips through
    {!Parser.parse_program}. *)
