type t = {
  head : Atom.t;
  body : Literal.t list;
  aggs : (int * Aggregate.spec) list;
}

let make_agg ~aggs ~head ~body =
  let aggs = List.sort (fun (a, _) (b, _) -> Int.compare a b) aggs in
  let arity = Atom.arity head in
  List.iter
    (fun (i, (spec : Aggregate.spec)) ->
      if i < 0 || i >= arity then
        invalid_arg "Rule.make: aggregate position out of range";
      match List.nth head.Atom.args i with
      | Term.Var v when v = spec.Aggregate.var -> ()
      | _ ->
        invalid_arg
          "Rule.make: aggregate position must hold the aggregated variable")
    aggs;
  { head; body; aggs }

let make ~head ~body = { head; body; aggs = [] }
let is_aggregate r = r.aggs <> []

let vars r =
  let add acc l =
    List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) acc l
  in
  List.rev
    (List.fold_left
       (fun acc lit -> add acc (Literal.vars lit))
       (add [] (Atom.vars r.head))
       r.body)

let head_vars r = Atom.vars r.head

let compare a b =
  match Atom.compare a.head b.head with
  | 0 -> (
    match List.compare Literal.compare a.body b.body with
    | 0 -> Stdlib.compare a.aggs b.aggs
    | c -> c)
  | c -> c

let equal a b = compare a b = 0

let subst s r =
  {
    head = Atom.subst s r.head;
    body = List.map (Literal.subst s) r.body;
    aggs = r.aggs;
  }

let rename ~suffix r =
  let rename_term = function
    | Term.Var x -> Term.Var (x ^ suffix)
    | Term.Const _ as t -> t
  in
  let rename_atom (a : Atom.t) =
    Atom.make ~rel:(rename_term a.rel) ~peer:(rename_term a.peer)
      (List.map rename_term a.args)
  in
  let rec rename_expr = function
    | Expr.Const _ as e -> e
    | Expr.Var x -> Expr.Var (x ^ suffix)
    | Expr.Add (a, b) -> Expr.Add (rename_expr a, rename_expr b)
    | Expr.Sub (a, b) -> Expr.Sub (rename_expr a, rename_expr b)
    | Expr.Mul (a, b) -> Expr.Mul (rename_expr a, rename_expr b)
    | Expr.Div (a, b) -> Expr.Div (rename_expr a, rename_expr b)
  in
  let rename_lit = function
    | Literal.Pos a -> Literal.Pos (rename_atom a)
    | Literal.Neg a -> Literal.Neg (rename_atom a)
    | Literal.Cmp (op, e1, e2) -> Literal.Cmp (op, rename_expr e1, rename_expr e2)
    | Literal.Assign (x, e) -> Literal.Assign (x ^ suffix, rename_expr e)
  in
  {
    head = rename_atom r.head;
    body = List.map rename_lit r.body;
    aggs =
      List.map
        (fun (i, (spec : Aggregate.spec)) ->
          (i, { spec with Aggregate.var = spec.Aggregate.var ^ suffix }))
        r.aggs;
  }

let pp_head ppf r =
  let (a : Atom.t) = r.head in
  let pp_arg ppf (i, term) =
    match List.assoc_opt i r.aggs with
    | Some spec -> Aggregate.pp ppf spec
    | None -> Term.pp ppf term
  in
  Format.fprintf ppf "@[<hov 2>%a@%a(%a)@]" Term.pp_name a.Atom.rel Term.pp_name
    a.Atom.peer
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       pp_arg)
    (List.mapi (fun i t -> (i, t)) a.Atom.args)

let pp ppf r =
  match r.body with
  | [] -> Format.fprintf ppf "%a :- " pp_head r
  | body ->
    Format.fprintf ppf "@[<hov 2>%a :-@ %a@]" pp_head r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Literal.pp)
      body
