(** Rules: [head :- lit1, …, litn].

    The body is an ordered list; evaluation is left to right (§2).

    [aggs] marks head argument positions that aggregate instead of
    copying a binding: at such a position [head.args] holds
    [Var spec.var] and the engine groups valuations by the remaining
    head arguments ({!Aggregate}). Aggregate rules must evaluate
    entirely locally (enforced at installation). *)

type t = {
  head : Atom.t;
  body : Literal.t list;
  aggs : (int * Aggregate.spec) list;  (** sorted by position *)
}

val make : head:Atom.t -> body:Literal.t list -> t
(** A plain (non-aggregate) rule. *)

val make_agg :
  aggs:(int * Aggregate.spec) list -> head:Atom.t -> body:Literal.t list -> t
(** Raises [Invalid_argument] if an aggregate position is out of range
    or does not hold [Var spec.var]. *)

val is_aggregate : t -> bool

val vars : t -> string list
(** All variables, head first then body, each once. *)

val head_vars : t -> string list
val compare : t -> t -> int
val equal : t -> t -> bool

val subst : Subst.t -> t -> t
(** Applies a substitution everywhere — this is how residual
    (delegated) rules are produced. *)

val rename : suffix:string -> t -> t
(** Alpha-renames every variable by appending [suffix]; used to avoid
    capture when combining rules from different origins. *)

val pp : Format.formatter -> t -> unit
