type error =
  | Unbound_in_head of string
  | Unbound_name_var of string * Atom.t
  | Unbound_in_negation of string * Atom.t
  | Unbound_in_builtin of string * Literal.t
  | Rebound_assignment of string * Literal.t
  | Invalid_name_constant of Value.t * Atom.t

let pp_error ppf = function
  | Unbound_in_head x ->
    Format.fprintf ppf "head variable $%s is not bound by the body" x
  | Unbound_name_var (x, a) ->
    Format.fprintf ppf
      "relation/peer variable $%s in %a is not bound by the preceding literals"
      x Atom.pp a
  | Unbound_in_negation (x, a) ->
    Format.fprintf ppf
      "variable $%s in negated atom %a is not bound by the preceding literals" x
      Atom.pp a
  | Unbound_in_builtin (x, l) ->
    Format.fprintf ppf
      "variable $%s in builtin %a is not bound by the preceding literals" x
      Literal.pp l
  | Rebound_assignment (x, l) ->
    Format.fprintf ppf "assignment %a rebinds already-bound variable $%s"
      Literal.pp l x
  | Invalid_name_constant (v, a) ->
    Format.fprintf ppf
      "constant %a cannot be a relation or peer name (in %a)" Value.pp v
      Atom.pp a

module Sset = Set.Make (String)

let name_errors (a : Atom.t) =
  let check = function
    | Term.Const v when Value.as_name v = None -> [ Invalid_name_constant (v, a) ]
    | Term.Const _ | Term.Var _ -> []
  in
  check a.rel @ check a.peer

let check_rule (r : Rule.t) =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  List.iter (fun e -> err e) (name_errors r.head);
  let bound = ref Sset.empty in
  let is_bound x = Sset.mem x !bound in
  let bind x = bound := Sset.add x !bound in
  let check_lit lit =
    match lit with
    | Literal.Pos a ->
      List.iter err (name_errors a);
      List.iter
        (fun x -> if not (is_bound x) then err (Unbound_name_var (x, a)))
        (Term.vars a.rel @ Term.vars a.peer);
      List.iter bind (Atom.vars a)
    | Literal.Neg a ->
      List.iter err (name_errors a);
      List.iter
        (fun x -> if not (is_bound x) then err (Unbound_in_negation (x, a)))
        (Atom.vars a)
    | Literal.Cmp (_, e1, e2) ->
      List.iter
        (fun x -> if not (is_bound x) then err (Unbound_in_builtin (x, lit)))
        (Expr.vars e1 @ Expr.vars e2)
    | Literal.Assign (x, e) ->
      List.iter
        (fun y -> if not (is_bound y) then err (Unbound_in_builtin (y, lit)))
        (Expr.vars e);
      if is_bound x then err (Rebound_assignment (x, lit)) else bind x
  in
  List.iter check_lit r.body;
  List.iter
    (fun x -> if not (is_bound x) then err (Unbound_in_head x))
    (Rule.head_vars r);
  match List.rev !errs with [] -> Ok () | l -> Error l

let check_fact (_ : Fact.t) = Ok ()

let check_program (p : Program.t) =
  let errs =
    List.concat_map
      (function
        | Program.Decl _ -> []
        | Program.Fact f -> (
          match check_fact f with Ok () -> [] | Error l -> l)
        | Program.Rule r -> (
          match check_rule r with Ok () -> [] | Error l -> l))
      p
  in
  match errs with [] -> Ok () | l -> Error l

let errors_to_string errs =
  String.concat "; " (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)
