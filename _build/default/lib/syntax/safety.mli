(** Static safety ("range restriction") checks for WebdamLog rules.

    Because bodies are evaluated left to right (§2), safety is
    positional: every variable used in relation/peer position, in a
    negated atom, or in a builtin must be bound by the {e preceding}
    positive literals; every head variable must be bound by the body.
    These checks are what make the dynamic delegation boundary
    well-defined: when evaluation reaches an atom, its peer term is
    guaranteed to be ground. *)

type error =
  | Unbound_in_head of string
      (** head variable not bound by the body *)
  | Unbound_name_var of string * Atom.t
      (** relation/peer variable not bound by the preceding prefix *)
  | Unbound_in_negation of string * Atom.t
  | Unbound_in_builtin of string * Literal.t
  | Rebound_assignment of string * Literal.t
      (** [$x := …] where [$x] is already bound *)
  | Invalid_name_constant of Value.t * Atom.t
      (** a constant in relation/peer position that is not a name *)

val pp_error : Format.formatter -> error -> unit

val check_rule : Rule.t -> (unit, error list) result
val check_fact : Fact.t -> (unit, error list) result
val check_program : Program.t -> (unit, error list) result
(** All errors from all statements, in order. *)

val errors_to_string : error list -> string
