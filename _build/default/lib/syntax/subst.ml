module M = Map.Make (String)

type t = Value.t M.t

let empty = M.empty
let is_empty = M.is_empty
let mem = M.mem
let find x s = M.find_opt x s
let cardinal = M.cardinal

let bind x v s =
  match M.find_opt x s with
  | None -> Some (M.add x v s)
  | Some v' -> if Value.equal v v' then Some s else None

let bind_exn x v s =
  match bind x v s with
  | Some s -> s
  | None -> invalid_arg ("Subst.bind_exn: conflicting binding for $" ^ x)

let of_list l =
  List.fold_left
    (fun acc (x, v) -> match acc with None -> None | Some s -> bind x v s)
    (Some empty) l

let to_list s = M.bindings s

let apply s = function
  | Term.Var x as t -> (match M.find_opt x s with Some v -> Term.Const v | None -> t)
  | Term.Const _ as t -> t

let compare = M.compare Value.compare
let equal = M.equal Value.equal

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (x, v) -> Format.fprintf ppf "$%s=%a" x Value.pp v))
    (M.bindings s)
