(** Substitutions: finite maps from variable names to ground values.

    Substitutions are produced by matching body atoms against stored
    facts and consumed when grounding heads and when computing the
    residual rules sent as delegations. *)

type t

val empty : t
val is_empty : t -> bool
val mem : string -> t -> bool
val find : string -> t -> Value.t option
val cardinal : t -> int

val bind : string -> Value.t -> t -> t option
(** [bind x v s] extends [s] with [x ↦ v]; [None] if [x] is already
    bound to a different value. *)

val bind_exn : string -> Value.t -> t -> t
(** Like {!bind} but raises [Invalid_argument] on conflict. *)

val of_list : (string * Value.t) list -> t option
val to_list : t -> (string * Value.t) list
(** In increasing variable-name order. *)

val apply : t -> Term.t -> Term.t
(** Replaces bound variables by their values; unbound variables are
    left in place (this is what makes residual delegated rules). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
