type t =
  | Var of string
  | Const of Value.t

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Var x -> Format.fprintf ppf "$%s" x
  | Const v -> Value.pp ppf v

(* Keep in sync with the lexer's notion of identifier. *)
let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || Char.code c >= 0x80

let is_ident s =
  String.length s > 0
  && (match s.[0] with '0' .. '9' -> false | _ -> true)
  && (match s with "not" | "true" | "false" | "ext" | "int" -> false | _ -> true)
  && String.for_all is_ident_char s

let pp_name ppf = function
  | Const (Value.String s) when is_ident s -> Format.pp_print_string ppf s
  | t -> pp ppf t

let var x = Var x
let int n = Const (Value.Int n)
let str s = Const (Value.String s)
let is_var = function Var _ -> true | Const _ -> false
let vars = function Var x -> [ x ] | Const _ -> []
let as_name = function Var _ -> None | Const v -> Value.as_name v
