(** Terms: the building blocks of atoms.

    A term is a variable ([$x] in concrete syntax) or a constant value.
    Relation and peer positions use the same term type; there a constant
    must be a string value denoting a name (checked by {!Safety}). *)

type t =
  | Var of string  (** variable name, without the leading [$] *)
  | Const of Value.t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val var : string -> t
val int : int -> t
val str : string -> t
(** [str s] is the string constant [s]; in relation/peer position it
    denotes the name [s]. *)

val is_var : t -> bool
val vars : t -> string list
(** [] or a singleton. *)

val as_name : t -> string option
(** The name denoted by a constant term, if it is one. *)

val is_ident : string -> bool
(** Whether [s] is lexically a bare identifier (and not a keyword). *)

val pp_name : Format.formatter -> t -> unit
(** Prints a term in relation/peer position: identifier-like string
    constants are printed bare ([pictures]), everything else as {!pp}. *)
