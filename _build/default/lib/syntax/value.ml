type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

let tag = function Int _ -> 0 | Float _ -> 1 | String _ -> 2 | Bool _ -> 3

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Int _ | Float _ | String _ | Bool _), _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Float x -> Hashtbl.hash (1, x)
  | String x -> Hashtbl.hash (2, x)
  | Bool x -> Hashtbl.hash (3, x)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal representation that parses back to the same float. *)
let float_repr x =
  let short = Printf.sprintf "%.12g" x in
  let s = if float_of_string short = x then short else Printf.sprintf "%.17g" x in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
     || String.contains s 'i'
  then s
  else s ^ "."

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.pp_print_string ppf (float_repr x)
  | String s -> Format.fprintf ppf "\"%s\"" (escape s)
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v

let as_name = function
  | String s when String.length s > 0 -> Some s
  | Int _ | Float _ | String _ | Bool _ -> None

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Bool _ -> "bool"
