(** Ground data values carried in WebdamLog facts.

    Peer and relation names are ordinary [String] values: when a data
    variable bound to ["Émilien"] is used in peer position (the paper's
    [pictures@$attendee]), the string is interpreted as a peer name. *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints in re-parseable concrete syntax (strings are quoted). *)

val to_string : t -> string

val as_name : t -> string option
(** [as_name v] is the peer/relation name denoted by [v], if any.
    Only non-empty strings denote names. *)

val type_name : t -> string
(** "int", "float", "string" or "bool" — used in error messages. *)
