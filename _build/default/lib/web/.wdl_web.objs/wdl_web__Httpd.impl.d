lib/web/httpd.ml: Buffer Bytes Char Fun List Option Printexc Printf Str_find String Unix
