lib/web/httpd.mli:
