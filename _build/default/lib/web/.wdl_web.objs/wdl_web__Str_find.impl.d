lib/web/str_find.ml: String
