lib/web/ui.ml: Buffer Fact Format Httpd List Printf Rule String Value Wdl_syntax Webdamlog
