lib/web/ui.mli: Httpd Webdamlog
