type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  body : string;
}

let html body = { status = 200; content_type = "text/html; charset=utf-8"; body }
let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let not_found = text ~status:404 "not found\n"

let redirect location =
  {
    status = 303;
    content_type = "text/plain; charset=utf-8";
    body = "see " ^ location ^ "\n" (* Location added at render time *);
  }

type t = {
  server : Unix.file_descr;
  actual_port : int;
  handler : request -> response;
  mutable redirects : (string * string) list;  (* body marker -> location *)
  mutable closed : bool;
}

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' -> Buffer.add_char buf ' '
      | '%' when i + 2 < n && hex_value s.[i + 1] >= 0 && hex_value s.[i + 2] >= 0
        ->
        Buffer.add_char buf
          (Char.chr ((hex_value s.[i + 1] * 16) + hex_value s.[i + 2]))
      | c -> Buffer.add_char buf c);
      match s.[i] with
      | '%' when i + 2 < n && hex_value s.[i + 1] >= 0 && hex_value s.[i + 2] >= 0
        ->
        go (i + 3)
      | _ -> go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let form_values body =
  String.split_on_char '&' body
  |> List.filter_map (fun pair ->
         match String.index_opt pair '=' with
         | Some i ->
           Some
             ( url_decode (String.sub pair 0 i),
               url_decode (String.sub pair (i + 1) (String.length pair - i - 1))
             )
         | None -> if pair = "" then None else Some (url_decode pair, ""))

let start ?(port = 0) handler =
  let server = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt server Unix.SO_REUSEADDR true;
  Unix.bind server (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen server 64;
  let actual_port =
    match Unix.getsockname server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  { server; actual_port; handler; redirects = []; closed = false }

let port t = t.actual_port

let status_text = function
  | 200 -> "OK"
  | 303 -> "See Other"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

(* Read until the end of headers, then Content-Length more bytes. *)
let read_request fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec until_headers () =
    let s = Buffer.contents buf in
    match Str_find.find s "\r\n\r\n" with
    | Some i -> Some i
    | None ->
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then None
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        until_headers ()
      end
  in
  match until_headers () with
  | None -> None
  | Some header_end ->
    let header_text = String.sub (Buffer.contents buf) 0 header_end in
    let content_length =
      String.split_on_char '\n' header_text
      |> List.find_map (fun line ->
             let line = String.trim line in
             let lower = String.lowercase_ascii line in
             if String.length lower >= 15 && String.sub lower 0 15 = "content-length:"
             then int_of_string_opt (String.trim (String.sub line 15 (String.length line - 15)))
             else None)
      |> Option.value ~default:0
    in
    let body_start = header_end + 4 in
    let rec until_body () =
      if Buffer.length buf >= body_start + content_length then ()
      else
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then ()
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          until_body ()
        end
    in
    until_body ();
    let all = Buffer.contents buf in
    let body =
      if String.length all >= body_start + content_length then
        String.sub all body_start content_length
      else String.sub all body_start (String.length all - body_start)
    in
    (match String.split_on_char ' ' (List.hd (String.split_on_char '\r' header_text)) with
    | meth :: target :: _ ->
      let path, query =
        match String.index_opt target '?' with
        | Some i ->
          ( String.sub target 0 i,
            form_values (String.sub target (i + 1) (String.length target - i - 1))
          )
        | None -> (target, [])
      in
      Some { meth; path = url_decode path; query; body }
    | _ -> None)

let write_response fd (r : response) =
  let location =
    if r.status = 303 then
      (* redirect bodies carry "see LOCATION\n" *)
      match String.split_on_char ' ' (String.trim r.body) with
      | [ "see"; loc ] -> Printf.sprintf "Location: %s\r\n" loc
      | _ -> ""
    else ""
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n%sContent-Length: %d\r\nConnection: close\r\n\r\n"
      r.status (status_text r.status) r.content_type location
      (String.length r.body)
  in
  let all = head ^ r.body in
  let rec loop off =
    if off < String.length all then
      let n = Unix.write_substring fd all off (String.length all - off) in
      loop (off + n)
  in
  loop 0

let poll t =
  if t.closed then 0
  else begin
    let served = ref 0 in
    let rec loop () =
      match Unix.select [ t.server ] [] [] 0.0 with
      | [ _ ], _, _ ->
        let client, _ = Unix.accept t.server in
        Fun.protect
          ~finally:(fun () -> Unix.close client)
          (fun () ->
            match read_request client with
            | None -> ()
            | Some req ->
              let resp =
                try t.handler req
                with e -> text ~status:500 (Printexc.to_string e ^ "\n")
              in
              write_response client resp;
              incr served);
        loop ()
      | _, _, _ -> ()
    in
    loop ();
    !served
  end

let stop t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.server
  end
