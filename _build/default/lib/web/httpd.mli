(** A minimal HTTP/1.1 server over plain sockets — the substrate for
    the demo's Web GUI (audience members drive their peer from a
    browser, §4). Poll-driven like {!Wdl_net.Tcp}: the host loop calls
    {!poll}, which accepts and answers every connection already
    pending; no threads. One request per connection. *)

type request = {
  meth : string;  (** "GET", "POST", … *)
  path : string;  (** decoded, without the query string *)
  query : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  body : string;
}

val html : string -> response
val text : ?status:int -> string -> response
val not_found : response

val redirect : string -> response
(** 303 See Other. *)

type t

val start : ?port:int -> (request -> response) -> t
(** Listens on [127.0.0.1:port] (default 0: ephemeral). *)

val port : t -> int
val poll : t -> int
(** Handles every pending connection; returns how many were served. *)

val stop : t -> unit

(** {1 Helpers} *)

val url_decode : string -> string
val html_escape : string -> string
val form_values : string -> (string * string) list
(** Parses an [application/x-www-form-urlencoded] body. *)
