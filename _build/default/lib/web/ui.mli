(** The Wepic-style Web interface (Figs. 1 and 3) over {!Httpd}.

    One page per peer: its relations, its program, its installed
    delegations, the pending-delegation notifications with
    accept/reject buttons, plus forms to add statements and run
    ad-hoc queries — exactly the demo's surfaces, server-rendered. *)

val handler :
  Webdamlog.System.t ->
  settle:(unit -> unit) ->
  Httpd.request ->
  Httpd.response
(** [settle] is called after every mutation (it should run the system
    to quiescence so the next page shows the converged state). *)
