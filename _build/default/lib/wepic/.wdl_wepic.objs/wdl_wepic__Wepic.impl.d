lib/wepic/wepic.ml: Atom Buffer Fact Format Hashtbl Int List Parser Printf Rule String Term Value Wdl_syntax Wdl_wrappers Webdamlog
