lib/wepic/wepic.mli: Fact Rule Wdl_net Wdl_syntax Wdl_wrappers Webdamlog
