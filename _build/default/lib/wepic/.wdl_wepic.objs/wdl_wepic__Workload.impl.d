lib/wepic/workload.ml: Char Hashtbl List Printf Random String Wepic
