lib/wepic/workload.mli: Wepic
