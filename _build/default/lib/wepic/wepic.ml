open Wdl_syntax
module Peer = Webdamlog.Peer
module System = Webdamlog.System
module Facebook = Wdl_wrappers.Facebook
module Email = Wdl_wrappers.Email
module Wrapper = Wdl_wrappers.Wrapper

let sigmod_peer_name = "sigmod"
let fb_peer_name = "SigmodFB"
let fb_group_name = "sigmod2013"

(* Peer/relation names are injected into generated rule text in quoted
   form, so arbitrary attendee names (accents, spaces) stay parseable. *)
let q name = Value.to_string (Value.String name)

type t = {
  system : System.t;
  sigmod : Peer.t;
  facebook : Facebook.t;
  email : Email.t;
  fb_group_wrapper : Wrapper.t;
  fb_group_peer : Peer.t;
  untrusted_by_default : bool;
  mutable wrappers : Wrapper.t list;
  attendee_peers : (string, Peer.t) Hashtbl.t;
  mutable attendee_order : string list;
}

let sigmod_program =
  Printf.sprintf
    {|
    ext attendees@%s(name);
    ext pictures@%s(id, name, owner, data);
    ext fbComments@%s(picId, author, text);
    ext news@%s(text);

    // conference-wide fanout: the head's peer comes from the registry
    announcements@$a($text) :- attendees@%s($a), news@%s($text);

    pictures@%s($id, $name, $owner, $data) :-
      pictures@%s($id, $name, $owner, $data),
      authorized@$owner("Facebook", $id, $owner);

    pictures@%s($id, $name, $owner, $data) :-
      pictures@%s($id, $name, $owner, $data);

    fbComments@%s($picId, $author, $text) :-
      comments@%s($picId, $author, $text);
    |}
    (q sigmod_peer_name) (q sigmod_peer_name) (q sigmod_peer_name)
    (q sigmod_peer_name)
    (q sigmod_peer_name) (q sigmod_peer_name)
    (q fb_peer_name) (q sigmod_peer_name)
    (q sigmod_peer_name) (q fb_peer_name)
    (q sigmod_peer_name) (q fb_peer_name)

let create ?transport ?(untrusted_by_default = false) () =
  (* Every Wepic peer lives in this process; facts owned by outsiders
     (e.g. pictures posted on Facebook by a non-attendee) must not
     block quiescence waiting for a peer that will never exist. *)
  let system = System.create ?transport ~drop_unknown:true () in
  let sigmod = System.add_peer system sigmod_peer_name in
  let facebook = Facebook.create () in
  let email = Email.create () in
  let fb_group_wrapper, fb_group_peer =
    Facebook.group_wrapper ~system ~service:facebook ~group:fb_group_name
      ~peer_name:fb_peer_name
  in
  (match Peer.load_string sigmod sigmod_program with
  | Ok () -> ()
  | Error e -> invalid_arg ("Wepic.create: sigmod program: " ^ e));
  {
    system;
    sigmod;
    facebook;
    email;
    fb_group_wrapper;
    fb_group_peer;
    untrusted_by_default;
    wrappers = [ fb_group_wrapper ];
    attendee_peers = Hashtbl.create 16;
    attendee_order = [];
  }

let system t = t.system
let sigmod t = t.sigmod
let facebook t = t.facebook
let email t = t.email
let fb_group_peer t = t.fb_group_peer

let standard_view_rule ~viewer =
  Parser.parse_rule
    (Printf.sprintf
       {|attendeePictures@%s($id, $name, $owner, $data) :-
           selectedAttendee@%s($attendee),
           pictures@$attendee($id, $name, $owner, $data)|}
       (q viewer) (q viewer))

let min_rating_view_rule ~viewer ~min_rating =
  Parser.parse_rule
    (Printf.sprintf
       {|attendeePictures@%s($id, $name, $owner, $data) :-
           selectedAttendee@%s($attendee),
           pictures@$attendee($id, $name, $owner, $data),
           rate@$owner($id, %d)|}
       (q viewer) (q viewer) min_rating)

let attendee_program name =
  Printf.sprintf
    {|
    ext pictures@%s(id, name, owner, data);
    ext selectedAttendee@%s(attendee);
    ext selectedPictures@%s(name, id, owner);
    ext communicate@%s(protocol);
    ext rate@%s(id, rating);
    ext tags@%s(id, who);
    ext comments@%s(id, author, text);
    ext authorized@%s(service, id, owner);
    ext wepic@%s(attendee, name, id, owner);
    ext email@%s(attendee, name, id, owner);
    int attendeePictures@%s(id, name, owner, data);
    int attendeeTags@%s(id, who);
    int bestRating@%s(id, rating);
    int ratedPictures@%s(id, name, owner, rating);

    attendeePictures@%s($id, $name, $owner, $data) :-
      selectedAttendee@%s($attendee),
      pictures@$attendee($id, $name, $owner, $data);

    // name tags of the pictures currently on screen (delegates to owners)
    attendeeTags@%s($id, $who) :-
      attendeePictures@%s($id, $name, $owner, $data),
      tags@$owner($id, $who);

    // one row per picture: its best rating so far (aggregate view)
    bestRating@%s($id, max($r)) :- rate@%s($id, $r);

    ratedPictures@%s($id, $name, $owner, $rating) :-
      attendeePictures@%s($id, $name, $owner, $data),
      bestRating@$owner($id, $rating);

    $protocol@$attendee($attendee, $name, $id, $owner) :-
      selectedAttendee@%s($attendee),
      communicate@$attendee($protocol),
      selectedPictures@%s($name, $id, $owner);

    pictures@%s($id, $name, $owner, $data) :-
      pictures@%s($id, $name, $owner, $data);
    |}
    (* declarations: 10 ext + 4 int *)
    (q name) (q name) (q name) (q name) (q name) (q name) (q name) (q name)
    (q name) (q name) (q name) (q name) (q name) (q name)
    (* attendeePictures, attendeeTags, bestRating, ratedPictures rules *)
    (q name) (q name)
    (q name) (q name)
    (q name) (q name)
    (q name) (q name)
    (* transfer rule *)
    (q name) (q name)
    (* publish-to-sigmod rule *)
    (q sigmod_peer_name) (q name)

let add_attendee t name =
  if name = sigmod_peer_name || name = fb_peer_name then
    invalid_arg (Printf.sprintf "Wepic.add_attendee: %s is reserved" name);
  if Hashtbl.mem t.attendee_peers name then
    invalid_arg (Printf.sprintf "Wepic.add_attendee: %s already exists" name);
  let policy = if t.untrusted_by_default then Webdamlog.Acl.Closed else Webdamlog.Acl.Open in
  let peer = System.add_peer t.system ~policy name in
  if t.untrusted_by_default then
    Webdamlog.Acl.trust (Peer.acl peer) sigmod_peer_name;
  (match Peer.load_string peer (attendee_program name) with
  | Ok () -> ()
  | Error e -> invalid_arg ("Wepic.add_attendee: " ^ e));
  (match
     Peer.insert t.sigmod
       (Fact.make ~rel:"attendees" ~peer:sigmod_peer_name [ Value.String name ])
   with
  | Ok () -> ()
  | Error e -> invalid_arg ("Wepic.add_attendee: " ^ e));
  let outbox = Email.outbox_wrapper ~service:t.email ~peer ~sender:name () in
  t.wrappers <- t.wrappers @ [ outbox ];
  Hashtbl.replace t.attendee_peers name peer;
  t.attendee_order <- name :: t.attendee_order;
  peer

let attendee t name =
  match Hashtbl.find_opt t.attendee_peers name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Wepic.attendee: unknown attendee %s" name)

let attendees t = List.rev t.attendee_order

(* {1 User operations} *)

let must = function
  | Ok () -> ()
  | Error e -> invalid_arg ("Wepic: " ^ e)

let upload_picture t ~attendee:name ~id ~name:pic_name ~data =
  must
    (Peer.insert (attendee t name)
       (Fact.make ~rel:"pictures" ~peer:name
          [ Value.Int id; Value.String pic_name; Value.String name;
            Value.String data ]))

let select_attendee t ~viewer ~attendee:target =
  must
    (Peer.insert (attendee t viewer)
       (Fact.make ~rel:"selectedAttendee" ~peer:viewer [ Value.String target ]))

let deselect_attendee t ~viewer ~attendee:target =
  must
    (Peer.delete (attendee t viewer)
       (Fact.make ~rel:"selectedAttendee" ~peer:viewer [ Value.String target ]))

let select_picture t ~viewer ~name ~id ~owner =
  must
    (Peer.insert (attendee t viewer)
       (Fact.make ~rel:"selectedPictures" ~peer:viewer
          [ Value.String name; Value.Int id; Value.String owner ]))

let set_protocol t ~attendee:name ~protocol =
  must
    (Peer.insert (attendee t name)
       (Fact.make ~rel:"communicate" ~peer:name [ Value.String protocol ]))

let rate t ~rater:_ ~owner ~id ~rating =
  must
    (Peer.insert (attendee t owner)
       (Fact.make ~rel:"rate" ~peer:owner [ Value.Int id; Value.Int rating ]))

let tag t ~owner ~id ~who =
  must
    (Peer.insert (attendee t owner)
       (Fact.make ~rel:"tags" ~peer:owner [ Value.Int id; Value.String who ]))

let comment t ~owner ~id ~author ~text =
  must
    (Peer.insert (attendee t owner)
       (Fact.make ~rel:"comments" ~peer:owner
          [ Value.Int id; Value.String author; Value.String text ]))

let announce t text =
  must
    (Peer.insert t.sigmod
       (Fact.make ~rel:"news" ~peer:sigmod_peer_name [ Value.String text ]))

let announcements t ~attendee:name =
  Peer.query (attendee t name) "announcements"
  |> List.filter_map (fun (f : Fact.t) ->
         match f.Fact.args with
         | [ Value.String text ] -> Some text
         | _ -> None)

let authorize_facebook t ~attendee:name ~id =
  must
    (Peer.insert (attendee t name)
       (Fact.make ~rel:"authorized" ~peer:name
          [ Value.String "Facebook"; Value.Int id; Value.String name ]))

(* {1 Running and views} *)

let sync_wrappers t =
  List.fold_left
    (fun n w -> n + w.Wrapper.push () + w.Wrapper.refresh ())
    0 t.wrappers

let run ?max_rounds t =
  (* Wrappers and rules feed each other (a pushed picture re-enters via
     refresh), so alternate until neither side moves. *)
  let rec go total guard =
    if guard > 100 then Error "wrapper synchronisation did not stabilise"
    else
      let crossed = sync_wrappers t in
      match System.run ?max_rounds t.system with
      | Error e -> Error e
      | Ok rounds ->
        if crossed = 0 && rounds = 0 then Ok total
        else go (total + rounds) (guard + 1)
  in
  go 0 0

let attendee_pictures t ~viewer = Peer.query (attendee t viewer) "attendeePictures"

let attendee_tags t ~viewer =
  Peer.query (attendee t viewer) "attendeeTags"
  |> List.filter_map (fun (f : Fact.t) ->
         match f.Fact.args with
         | [ Value.Int id; Value.String who ] -> Some (id, who)
         | _ -> None)

(* §3 item 3b: "get pictures from another Wepic peer": everything the
   attendeePictures frame shows is copied into the local collection. *)
let download_rule ~viewer =
  Parser.parse_rule
    (Printf.sprintf
       {|pictures@%s($id, $name, $owner, $data) :-
           attendeePictures@%s($id, $name, $owner, $data)|}
       (q viewer) (q viewer))

let enable_download t ~viewer = Peer.add_rule (attendee t viewer) (download_rule ~viewer)

let disable_download t ~viewer =
  ignore (Peer.remove_rule (attendee t viewer) (download_rule ~viewer))

let rated_pictures t ~viewer =
  let parse (f : Fact.t) =
    match f.Fact.args with
    | [ Value.Int id; Value.String name; Value.String owner; Value.Int rating ] ->
      Some (id, name, owner, rating)
    | _ -> None
  in
  Peer.query (attendee t viewer) "ratedPictures"
  |> List.filter_map parse
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Int.compare b a)

let pictures_at_sigmod t = Peer.query t.sigmod "pictures"
let pictures_on_facebook t = Facebook.group_pictures t.facebook ~group:fb_group_name

let render_ui t ~viewer =
  let peer = attendee t viewer in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let selected =
    List.filter_map
      (fun (f : Fact.t) ->
        match f.Fact.args with [ Value.String a ] -> Some a | _ -> None)
      (Peer.query peer "selectedAttendee")
  in
  line "+--- Wepic : %s ---" viewer;
  line "| Attendees:";
  List.iter
    (fun a ->
      if a <> viewer then
        line "|   [%s] %s" (if List.mem a selected then "x" else " ") a)
    (attendees t);
  line "| My pictures:";
  List.iter
    (fun (f : Fact.t) ->
      match f.Fact.args with
      | [ Value.Int id; Value.String name; _; _ ] -> line "|   %4d %s" id name
      | _ -> ())
    (Peer.query peer "pictures");
  line "| Attendee pictures:";
  let ratings =
    List.filter_map
      (fun (f : Fact.t) ->
        match f.Fact.args with
        | [ Value.Int id; _; _; Value.Int r ] -> Some (id, r)
        | _ -> None)
      (Peer.query peer "ratedPictures")
  in
  List.iter
    (fun (f : Fact.t) ->
      match f.Fact.args with
      | [ Value.Int id; Value.String name; Value.String owner; _ ] ->
        let stars =
          match List.assoc_opt id ratings with
          | Some r -> " " ^ String.make (max 0 (min 5 r)) '*'
          | None -> ""
        in
        line "|   %4d %s (%s)%s" id name owner stars
      | _ -> ())
    (attendee_pictures t ~viewer);
  (match Peer.pending_delegations peer with
  | [] -> ()
  | pending ->
    line "| Pending delegations (Fig. 3):";
    List.iter
      (fun (src, rule) ->
        line "|   %s asks to install: %s" src
          (Format.asprintf "%a" Wdl_syntax.Rule.pp rule))
      pending);
  line "+---";
  Buffer.contents buf

let customize_view t ~viewer rule =
  let peer = attendee t viewer in
  let is_view_rule (r : Rule.t) =
    match Term.as_name r.Rule.head.Atom.rel, Term.as_name r.Rule.head.Atom.peer with
    | Some "attendeePictures", Some p -> p = viewer
    | _, _ -> false
  in
  List.iter
    (fun r -> if is_view_rule r then ignore (Peer.remove_rule peer r))
    (Peer.rules peer);
  Peer.add_rule peer rule
