(** Wepic (§3): the conference picture manager demonstrated in the
    paper, assembled from WebdamLog rules over the core engine and the
    Facebook/email wrappers.

    Topology (Fig. 2): one [sigmod] peer (the Webdam cloud host), one
    Wepic peer per attendee (their laptops), the [SigmodFB] group
    wrapper, and an email service. Attendee peers run the paper's
    rules:

    {v
    attendeePictures@A($id,$nm,$ow,$d) :-
      selectedAttendee@A($att), pictures@$att($id,$nm,$ow,$d);

    $protocol@$att($att,$nm,$id,$ow) :-
      selectedAttendee@A($att), communicate@$att($protocol),
      selectedPictures@A($nm,$id,$ow);

    pictures@sigmod($id,$nm,$ow,$d) :- pictures@A($id,$nm,$ow,$d);
    v}

    and the sigmod peer runs the §4 Facebook rules:

    {v
    pictures@SigmodFB($id,$nm,$ow,$d) :-
      pictures@sigmod($id,$nm,$ow,$d), authorized@$ow("Facebook",$id,$ow);

    pictures@sigmod($id,$nm,$ow,$d) :- pictures@SigmodFB($id,$nm,$ow,$d);
    v} *)

open Wdl_syntax

type t

val sigmod_peer_name : string
val fb_peer_name : string

val create :
  ?transport:Webdamlog.Message.t Wdl_net.Transport.t ->
  ?untrusted_by_default:bool ->
  unit ->
  t
(** [untrusted_by_default] reproduces the demo's delegation-control
    setting: every peer except [sigmod] must be approved (default
    [false] so programmatic scenarios run unattended). *)

val system : t -> Webdamlog.System.t
val sigmod : t -> Webdamlog.Peer.t
val facebook : t -> Wdl_wrappers.Facebook.t
val email : t -> Wdl_wrappers.Email.t
val fb_group_peer : t -> Webdamlog.Peer.t

val add_attendee : t -> string -> Webdamlog.Peer.t
(** Creates the attendee's peer with the standard Wepic program,
    registers it at [sigmod], and attaches an email outbox wrapper. *)

val attendee : t -> string -> Webdamlog.Peer.t
val attendees : t -> string list

(** {1 User operations (the buttons of Fig. 1)} *)

val upload_picture :
  t -> attendee:string -> id:int -> name:string -> data:string -> unit

val select_attendee : t -> viewer:string -> attendee:string -> unit
val deselect_attendee : t -> viewer:string -> attendee:string -> unit
val select_picture : t -> viewer:string -> name:string -> id:int -> owner:string -> unit
val set_protocol : t -> attendee:string -> protocol:string -> unit
(** Protocols: ["wepic"] (deliver into the recipient's [wepic]
    relation), ["email"] (one mail per picture via the email wrapper),
    or any relation name of the recipient's choosing. *)

val rate : t -> rater:string -> owner:string -> id:int -> rating:int -> unit
(** Stored at the picture owner's peer, as in the paper's
    [rate@$owner($id, 5)]. *)

val tag : t -> owner:string -> id:int -> who:string -> unit
val comment : t -> owner:string -> id:int -> author:string -> text:string -> unit
val authorize_facebook : t -> attendee:string -> id:int -> unit

val announce : t -> string -> unit
(** Conference-wide announcement: a [news@sigmod] fact fans out to
    every registered attendee through a dynamic-head rule
    ([announcements@$a($text) :- attendees@sigmod($a), news@…]). *)

val announcements : t -> attendee:string -> string list

(** {1 Views} *)

val run : ?max_rounds:int -> t -> (int, string) result
(** Wrapper sync + rounds to quiescence. *)

val attendee_pictures : t -> viewer:string -> Fact.t list

val attendee_tags : t -> viewer:string -> (int * string) list
(** Name tags of the pictures currently in the frame: [(picture id,
    who appears)], collected from the owners by delegation. *)

val enable_download : t -> viewer:string -> (unit, string) result
(** §3 "download ... the pictures of others": while enabled, everything
    in the attendeePictures frame is copied into the viewer's own
    [pictures] collection (an inductive rule). Downloads already taken
    persist after {!disable_download}. *)

val disable_download : t -> viewer:string -> unit
val rated_pictures : t -> viewer:string -> (int * string * string * int) list
(** [(id, name, owner, rating)] sorted by decreasing rating — the §3
    "select and rank photos based on their annotations" feature. *)

val pictures_at_sigmod : t -> Fact.t list
val pictures_on_facebook : t -> Wdl_wrappers.Facebook.picture list

val render_ui : t -> viewer:string -> string
(** A textual rendering of the Fig. 1 interface for one attendee:
    the attendee list with selections, the viewer's own pictures, the
    "Attendee pictures" frame (with ratings where known) and the
    pending-delegation notifications of Fig. 3. *)

(** {1 Customisation (§4)} *)

val standard_view_rule : viewer:string -> Rule.t
val min_rating_view_rule : viewer:string -> min_rating:int -> Rule.t
(** The §4 customisation: only pictures rated exactly [min_rating]. *)

val customize_view : t -> viewer:string -> Rule.t -> (unit, string) result
(** Replaces the current [attendeePictures] rule with the given one. *)
