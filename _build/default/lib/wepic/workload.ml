type spec = {
  attendees : int;
  pictures_per_attendee : int;
  payload_bytes : int;
  rating_density : float;
  seed : int;
}

let default =
  {
    attendees = 5;
    pictures_per_attendee = 10;
    payload_bytes = 64;
    rating_density = 0.5;
    seed = 7;
  }

let attendee_name i = Printf.sprintf "attendee%d" i

let payload ~seed ~bytes =
  let rng = Random.State.make [| seed |] in
  String.init bytes (fun _ -> Char.chr (33 + Random.State.int rng 94))

let populate env spec =
  let rng = Random.State.make [| spec.seed |] in
  for i = 1 to spec.attendees do
    ignore (Wepic.add_attendee env (attendee_name i))
  done;
  for i = 1 to spec.attendees do
    let name = attendee_name i in
    Wepic.set_protocol env ~attendee:name ~protocol:"wepic";
    for j = 1 to spec.pictures_per_attendee do
      let id = (i * 10_000) + j in
      Wepic.upload_picture env ~attendee:name ~id
        ~name:(Printf.sprintf "pic_%d_%d.jpg" i j)
        ~data:(payload ~seed:(spec.seed + id) ~bytes:spec.payload_bytes);
      if Random.State.float rng 1.0 < spec.rating_density then
        Wepic.rate env ~rater:name ~owner:name ~id
          ~rating:(1 + Random.State.int rng 5)
    done
  done

let chain_edges ~n = List.init (max 0 (n - 1)) (fun i -> (i, i + 1))

let random_edges ~seed ~nodes ~edges =
  if nodes < 2 then []
  else begin
    let rng = Random.State.make [| seed |] in
    let seen = Hashtbl.create edges in
    let acc = ref [] in
    let attempts = ref 0 in
    let max_attempts = edges * 50 in
    while Hashtbl.length seen < edges && !attempts < max_attempts do
      incr attempts;
      let a = Random.State.int rng nodes and b = Random.State.int rng nodes in
      if a <> b && not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.replace seen (a, b) ();
        acc := (a, b) :: !acc
      end
    done;
    List.rev !acc
  end
