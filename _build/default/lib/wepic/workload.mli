(** Deterministic synthetic workloads.

    The demo's data (attendees uploading conference photos, rating and
    tagging each other's pictures) is replaced by a seeded generator —
    DESIGN.md documents the substitution. Also provides the generic
    graph/payload generators used by the engine benchmarks. *)

type spec = {
  attendees : int;
  pictures_per_attendee : int;
  payload_bytes : int;  (** size of the synthetic picture "content" *)
  rating_density : float;  (** fraction of pictures that get a rating *)
  seed : int;
}

val default : spec

val attendee_name : int -> string
(** ["attendee<i>"], stable across runs. *)

val populate : Wepic.t -> spec -> unit
(** Adds the attendees, uploads their pictures, sets every protocol to
    ["wepic"] and rates a [rating_density] fraction of pictures with a
    seeded rating in 1..5. Does not run the system. *)

val payload : seed:int -> bytes:int -> string
(** Printable pseudo-random payload. *)

val chain_edges : n:int -> (int * int) list
(** [(0,1); (1,2); …] — worst case depth for transitive closure. *)

val random_edges : seed:int -> nodes:int -> edges:int -> (int * int) list
(** Distinct directed edges, no self-loops. *)
