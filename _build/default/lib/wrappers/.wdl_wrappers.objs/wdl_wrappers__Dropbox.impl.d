lib/wrappers/dropbox.ml: Fact Hashtbl List Printf String Value Wdl_store Wdl_syntax Webdamlog Wrapper
