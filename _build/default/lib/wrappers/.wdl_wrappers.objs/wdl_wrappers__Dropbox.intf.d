lib/wrappers/dropbox.mli: Webdamlog Wrapper
