lib/wrappers/email.ml: Fact Format Hashtbl List Value Wdl_store Wdl_syntax Webdamlog Wrapper
