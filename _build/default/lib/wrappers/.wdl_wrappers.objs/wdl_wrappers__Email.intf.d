lib/wrappers/email.mli: Webdamlog Wrapper
