lib/wrappers/facebook.ml: Fact Hashtbl List Option Printf Value Wdl_store Wdl_syntax Webdamlog Wrapper
