lib/wrappers/facebook.mli: Webdamlog Wrapper
