lib/wrappers/wordpress.ml: Fact Hashtbl List Printf Value Wdl_store Wdl_syntax Webdamlog Wrapper
