lib/wrappers/wordpress.mli: Webdamlog Wrapper
