lib/wrappers/wrapper.ml: Hashtbl List Wdl_syntax Webdamlog
