lib/wrappers/wrapper.mli: Wdl_syntax Webdamlog
