open Wdl_syntax

type t = { folders : (string, (string, string) Hashtbl.t) Hashtbl.t }

let create () = { folders = Hashtbl.create 16 }

let folder t user =
  match Hashtbl.find_opt t.folders user with
  | Some f -> f
  | None ->
    let f = Hashtbl.create 16 in
    Hashtbl.replace t.folders user f;
    f

let put t ~user ~path ~content = Hashtbl.replace (folder t user) path content
let get t ~user ~path = Hashtbl.find_opt (folder t user) path

let files t ~user =
  Hashtbl.fold (fun path content acc -> (path, content) :: acc) (folder t user) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let value_string = function
  | Value.String s -> s
  | (Value.Int _ | Value.Float _ | Value.Bool _) as v -> Value.to_string v

let folder_wrapper ~system ~service ~user ~peer_name =
  let peer = Webdamlog.System.add_peer system peer_name in
  (match
     Webdamlog.Peer.load_string peer
       (Printf.sprintf "ext files@%s(path, content);" peer_name)
   with
  | Ok () -> ()
  | Error e -> invalid_arg ("Dropbox.folder_wrapper: " ^ e));
  let refresh () =
    let crossed = ref 0 in
    List.iter
      (fun (path, content) ->
        let fact =
          Fact.make ~rel:"files" ~peer:peer_name
            [ Value.String path; Value.String content ]
        in
        let db = Webdamlog.Peer.database peer in
        let tuple = Wdl_store.Tuple.of_list fact.Fact.args in
        if not (Wdl_store.Database.mem db ~rel:"files" tuple) then
          match Webdamlog.Peer.insert peer fact with
          | Ok () -> incr crossed
          | Error _ -> ())
      (files service ~user);
    !crossed
  in
  let push =
    Wrapper.watcher ~peer ~rel:"files" (fun fact ->
        match fact.Fact.args with
        | [ path; content ] ->
          put service ~user ~path:(value_string path)
            ~content:(value_string content)
        | _ -> ())
  in
  ({ Wrapper.label = "dropbox:" ^ user; refresh; push }, peer)
