(** A simulated Dropbox: folders of (path, content) files per user.

    Used by the intro scenario (Joe links his movie from his Dropbox
    folder) and by tests. {!folder_wrapper} exposes one user's folder
    as a two-way [files@peer(path, content)] relation. *)

type t

val create : unit -> t
val put : t -> user:string -> path:string -> content:string -> unit
(** Overwrites. *)

val get : t -> user:string -> path:string -> string option
val files : t -> user:string -> (string * string) list
(** Sorted by path. *)

val folder_wrapper :
  system:Webdamlog.System.t ->
  service:t ->
  user:string ->
  peer_name:string ->
  Wrapper.t * Webdamlog.Peer.t
