open Wdl_syntax

type message = {
  id : int;
  sender : string;
  recipient : string;
  subject : string;
  body : string;
}

type t = {
  mutable next_id : int;
  boxes : (string, message list ref) Hashtbl.t;  (* newest first *)
  mutable sent : int;
}

let create () = { next_id = 1; boxes = Hashtbl.create 16; sent = 0 }

let box t user =
  match Hashtbl.find_opt t.boxes user with
  | Some b -> b
  | None ->
    let b = ref [] in
    Hashtbl.replace t.boxes user b;
    b

let send t ~sender ~recipient ~subject ~body =
  let msg = { id = t.next_id; sender; recipient; subject; body } in
  t.next_id <- t.next_id + 1;
  t.sent <- t.sent + 1;
  let b = box t recipient in
  b := msg :: !b;
  msg

let inbox t user = List.rev !(box t user)
let total_sent t = t.sent

let value_string = function
  | Value.String s -> s
  | (Value.Int _ | Value.Float _ | Value.Bool _) as v -> Value.to_string v

let outbox_wrapper ~service ~peer ?(rel = "email") ~sender () =
  let push =
    Wrapper.watcher ~peer ~rel (fun fact ->
        let recipient, subject =
          match fact.Fact.args with
          | recipient :: name :: _ ->
            (value_string recipient, "wepic picture: " ^ value_string name)
          | [ recipient ] -> (value_string recipient, "wepic notification")
          | [] -> ("", "wepic notification")
        in
        if recipient <> "" then
          ignore
            (send service ~sender ~recipient ~subject
               ~body:(Format.asprintf "%a" Fact.pp fact)))
  in
  { Wrapper.label = "email-out:" ^ Webdamlog.Peer.name peer;
    refresh = (fun () -> 0);
    push }

let inbox_wrapper ~service ~peer ?(rel = "inbox") ~user () =
  let peer_name = Webdamlog.Peer.name peer in
  let refresh () =
    let crossed = ref 0 in
    List.iter
      (fun m ->
        let fact =
          Fact.make ~rel ~peer:peer_name
            [ Value.Int m.id; Value.String m.sender; Value.String m.subject;
              Value.String m.body ]
        in
        let db = Webdamlog.Peer.database peer in
        let tuple = Wdl_store.Tuple.of_list fact.Fact.args in
        if not (Wdl_store.Database.mem db ~rel tuple) then
          match Webdamlog.Peer.insert peer fact with
          | Ok () -> incr crossed
          | Error _ -> ())
      (inbox service user);
    !crossed
  in
  { Wrapper.label = "email-in:" ^ peer_name; refresh; push = (fun () -> 0) }
