(** A simulated email service: the demo's second standard wrapper.

    The Wepic transfer rule derives facts whose relation name comes
    from the [communicate] preference: when an attendee prefers
    ["email"], facts land in the attendee peer's [email] relation.
    {!outbox_wrapper} watches that relation and turns each new fact
    into one delivered message; {!inbox_wrapper} surfaces a user's
    mailbox as an [inbox@peer(id, from, subject, body)] relation. *)

type message = {
  id : int;
  sender : string;
  recipient : string;
  subject : string;
  body : string;
}

type t

val create : unit -> t
val send : t -> sender:string -> recipient:string -> subject:string -> body:string -> message
val inbox : t -> string -> message list
(** Oldest first. *)

val total_sent : t -> int

val outbox_wrapper :
  service:t ->
  peer:Webdamlog.Peer.t ->
  ?rel:string ->
  sender:string ->
  unit ->
  Wrapper.t
(** Watches [rel] (default ["email"]). A fact
    [email@p(recipient, name, id, owner)] is sent as one message whose
    subject names the picture and whose body carries the full fact.
    [refresh] is a no-op. *)

val inbox_wrapper :
  service:t ->
  peer:Webdamlog.Peer.t ->
  ?rel:string ->
  user:string ->
  unit ->
  Wrapper.t
(** Pulls [user]'s mailbox into [rel] (default ["inbox"], declared
    extensional on first refresh). [push] is a no-op. *)
