open Wdl_syntax

type picture = { id : int; name : string; owner : string; data : string }
type comment = { pic_id : int; author : string; text : string }

type group = {
  mutable g_members : string list;  (* reverse join order *)
  mutable g_pictures : picture list;
  mutable g_comments : comment list;
}

type t = {
  user_set : (string, unit) Hashtbl.t;
  mutable user_order : string list;
  friendship : (string, string list ref) Hashtbl.t;
  walls : (string, picture list ref) Hashtbl.t;
  groups : (string, group) Hashtbl.t;
}

let create () =
  {
    user_set = Hashtbl.create 16;
    user_order = [];
    friendship = Hashtbl.create 16;
    walls = Hashtbl.create 16;
    groups = Hashtbl.create 4;
  }

let add_user t u =
  if not (Hashtbl.mem t.user_set u) then begin
    Hashtbl.replace t.user_set u ();
    t.user_order <- u :: t.user_order
  end

let users t = List.rev t.user_order

let friend_list t u =
  match Hashtbl.find_opt t.friendship u with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.friendship u l;
    l

let befriend t a b =
  add_user t a;
  add_user t b;
  let la = friend_list t a and lb = friend_list t b in
  if not (List.mem b !la) then la := b :: !la;
  if not (List.mem a !lb) then lb := a :: !lb

let friends t u = List.rev !(friend_list t u)

let group t name =
  match Hashtbl.find_opt t.groups name with
  | Some g -> g
  | None ->
    let g = { g_members = []; g_pictures = []; g_comments = [] } in
    Hashtbl.replace t.groups name g;
    g

let create_group t name = ignore (group t name)

let join_group t ~user ~group:gname =
  add_user t user;
  let g = group t gname in
  if not (List.mem user g.g_members) then g.g_members <- user :: g.g_members

let members t ~group:gname = List.rev (group t gname).g_members

let post_group_picture t ~group:gname pic =
  let g = group t gname in
  if List.exists (fun p -> p.id = pic.id) g.g_pictures then false
  else begin
    g.g_pictures <- pic :: g.g_pictures;
    true
  end

let group_pictures t ~group:gname = List.rev (group t gname).g_pictures

let comment_group_picture t ~group:gname c =
  let g = group t gname in
  if List.mem c g.g_comments then false
  else begin
    g.g_comments <- c :: g.g_comments;
    true
  end

let group_comments t ~group:gname = List.rev (group t gname).g_comments

let wall t u =
  match Hashtbl.find_opt t.walls u with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.walls u l;
    l

let post_user_picture t ~user pic =
  add_user t user;
  let w = wall t user in
  if List.exists (fun p -> p.id = pic.id) !w then false
  else begin
    w := pic :: !w;
    true
  end

let user_pictures t ~user = List.rev !(wall t user)

(* {1 Wrappers} *)

let str s = Value.String s
let num n = Value.Int n

(* Insert, reporting whether the fact is new (refresh counts these). *)
let insert_new peer (fact : Fact.t) =
  let db = Webdamlog.Peer.database peer in
  let tuple = Wdl_store.Tuple.of_list fact.Fact.args in
  let existed = Wdl_store.Database.mem db ~rel:fact.Fact.rel tuple in
  match Webdamlog.Peer.insert peer fact with
  | Ok () -> not existed
  | Error _ -> false

let pic_fact ~rel ~peer pic =
  Fact.make ~rel ~peer [ num pic.id; str pic.name; str pic.owner; str pic.data ]

let as_string = function
  | Value.String s -> s
  | (Value.Int _ | Value.Float _ | Value.Bool _) as v -> Value.to_string v

let as_int = function Value.Int n -> Some n | Value.Float _ | Value.String _ | Value.Bool _ -> None

let pic_of_args = function
  | [ id; name; owner; data ] ->
    Option.map
      (fun id ->
        { id; name = as_string name; owner = as_string owner; data = as_string data })
      (as_int id)
  | _ -> None

let group_wrapper ~system ~service ~group:gname ~peer_name =
  create_group service gname;
  let peer = Webdamlog.System.add_peer system peer_name in
  (match
     Webdamlog.Peer.load_string peer
       (Printf.sprintf
          {|
          ext pictures@%s(id, name, owner, data);
          ext comments@%s(picId, author, text);
          ext members@%s(user);
          |}
          peer_name peer_name peer_name)
   with
  | Ok () -> ()
  | Error e -> invalid_arg ("Facebook.group_wrapper: " ^ e));
  let refresh () =
    let crossed = ref 0 in
    let pull fact = if insert_new peer fact then incr crossed in
    List.iter
      (fun pic -> pull (pic_fact ~rel:"pictures" ~peer:peer_name pic))
      (group_pictures service ~group:gname);
    List.iter
      (fun c ->
        pull
          (Fact.make ~rel:"comments" ~peer:peer_name
             [ num c.pic_id; str c.author; str c.text ]))
      (group_comments service ~group:gname);
    List.iter
      (fun m -> pull (Fact.make ~rel:"members" ~peer:peer_name [ str m ]))
      (members service ~group:gname);
    !crossed
  in
  let push_pictures =
    Wrapper.watcher ~peer ~rel:"pictures" (fun fact ->
        match pic_of_args fact.Fact.args with
        | Some pic -> ignore (post_group_picture service ~group:gname pic)
        | None -> ())
  in
  let push_comments =
    Wrapper.watcher ~peer ~rel:"comments" (fun fact ->
        match fact.Fact.args with
        | [ pic_id; author; text ] -> (
          match as_int pic_id with
          | Some pic_id ->
            ignore
              (comment_group_picture service ~group:gname
                 { pic_id; author = as_string author; text = as_string text })
          | None -> ())
        | _ -> ())
  in
  let push_members =
    Wrapper.watcher ~peer ~rel:"members" (fun fact ->
        match fact.Fact.args with
        | [ user ] -> join_group service ~user:(as_string user) ~group:gname
        | _ -> ())
  in
  let push () = push_pictures () + push_comments () + push_members () in
  ({ Wrapper.label = "facebook:" ^ gname; refresh; push }, peer)

let user_wrapper ~system ~service ~user ~peer_name =
  add_user service user;
  let peer = Webdamlog.System.add_peer system peer_name in
  (match
     Webdamlog.Peer.load_string peer
       (Printf.sprintf
          {|
          ext friends@%s(userID, friendName);
          ext pictures@%s(picID, owner, url);
          |}
          peer_name peer_name)
   with
  | Ok () -> ()
  | Error e -> invalid_arg ("Facebook.user_wrapper: " ^ e));
  let refresh () =
    let crossed = ref 0 in
    let pull fact = if insert_new peer fact then incr crossed in
    List.iter
      (fun f -> pull (Fact.make ~rel:"friends" ~peer:peer_name [ str user; str f ]))
      (friends service user);
    List.iter
      (fun pic ->
        pull
          (Fact.make ~rel:"pictures" ~peer:peer_name
             [ num pic.id; str pic.owner; str ("fb://" ^ pic.name) ]))
      (user_pictures service ~user);
    !crossed
  in
  let push =
    Wrapper.watcher ~peer ~rel:"pictures" (fun fact ->
        match fact.Fact.args with
        | [ id; owner; url ] -> (
          match as_int id with
          | Some id ->
            ignore
              (post_user_picture service ~user
                 { id; name = as_string url; owner = as_string owner; data = "" })
          | None -> ())
        | _ -> ())
  in
  ({ Wrapper.label = "facebook:" ^ user; refresh; push }, peer)
