(** A simulated Facebook: the demo's wrapper backend.

    The paper wraps a live Facebook account/group; the substitution
    (DESIGN.md) keeps the wrapper protocol identical — relations in,
    relations out — over a deterministic in-memory service with users,
    friendship, walls, and groups holding pictures and comments.

    Wrappers exported (the relations of §2):
    - {!group_wrapper}: [pictures@G(id, name, owner, data)],
      [comments@G(picId, author, text)], [members@G(user)] for a group
      [G] (the demo's [SigmodFB]); pictures and comments are two-way.
    - {!user_wrapper}: [friends@U(userID, friendName)] and
      [pictures@U(picID, owner, url)] for one user (the demo's
      [ÉmilienFB]); pictures are two-way, friends are read-only. *)

type picture = { id : int; name : string; owner : string; data : string }
type comment = { pic_id : int; author : string; text : string }

type t

val create : unit -> t
val add_user : t -> string -> unit
val users : t -> string list
val befriend : t -> string -> string -> unit
(** Symmetric; registers unknown users. *)

val friends : t -> string -> string list
val create_group : t -> string -> unit
val join_group : t -> user:string -> group:string -> unit
val members : t -> group:string -> string list

val post_group_picture : t -> group:string -> picture -> bool
(** [false] if a picture with that id is already in the group. *)

val group_pictures : t -> group:string -> picture list
val comment_group_picture : t -> group:string -> comment -> bool
val group_comments : t -> group:string -> comment list

val post_user_picture : t -> user:string -> picture -> bool
val user_pictures : t -> user:string -> picture list

(** {1 Wrappers} *)

val group_wrapper :
  system:Webdamlog.System.t ->
  service:t ->
  group:string ->
  peer_name:string ->
  Wrapper.t * Webdamlog.Peer.t

val user_wrapper :
  system:Webdamlog.System.t ->
  service:t ->
  user:string ->
  peer_name:string ->
  Wrapper.t * Webdamlog.Peer.t
