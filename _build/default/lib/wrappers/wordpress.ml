open Wdl_syntax

type post = { title : string; body : string; link : string }
type comment = { post_title : string; author : string; text : string }

type blog = {
  mutable b_posts : post list;  (* reverse publication order *)
  mutable b_comments : comment list;
}

type t = { blogs : (string, blog) Hashtbl.t }

let create () = { blogs = Hashtbl.create 4 }

let blog t name =
  match Hashtbl.find_opt t.blogs name with
  | Some b -> b
  | None ->
    let b = { b_posts = []; b_comments = [] } in
    Hashtbl.replace t.blogs name b;
    b

let publish t ~blog:name post =
  let b = blog t name in
  if List.exists (fun p -> p.title = post.title) b.b_posts then false
  else begin
    b.b_posts <- post :: b.b_posts;
    true
  end

let posts t ~blog:name = List.rev (blog t name).b_posts

let add_comment t ~blog:name c =
  let b = blog t name in
  if List.mem c b.b_comments then false
  else begin
    b.b_comments <- c :: b.b_comments;
    true
  end

let comments t ~blog:name = List.rev (blog t name).b_comments

let value_string = function
  | Value.String s -> s
  | (Value.Int _ | Value.Float _ | Value.Bool _) as v -> Value.to_string v

let insert_new peer (fact : Fact.t) =
  let db = Webdamlog.Peer.database peer in
  let tuple = Wdl_store.Tuple.of_list fact.Fact.args in
  let existed = Wdl_store.Database.mem db ~rel:fact.Fact.rel tuple in
  match Webdamlog.Peer.insert peer fact with
  | Ok () -> not existed
  | Error _ -> false

let blog_wrapper ~system ~service ~blog:blog_name ~peer_name =
  ignore (blog service blog_name);
  let peer = Webdamlog.System.add_peer system peer_name in
  (match
     Webdamlog.Peer.load_string peer
       (Printf.sprintf
          {|ext entries@%s(title, body, link);
            ext blogComments@%s(title, author, text);|}
          peer_name peer_name)
   with
  | Ok () -> ()
  | Error e -> invalid_arg ("Wordpress.blog_wrapper: " ^ e));
  let refresh () =
    let crossed = ref 0 in
    let pull fact = if insert_new peer fact then incr crossed in
    List.iter
      (fun p ->
        pull
          (Fact.make ~rel:"entries" ~peer:peer_name
             [ Value.String p.title; Value.String p.body; Value.String p.link ]))
      (posts service ~blog:blog_name);
    List.iter
      (fun c ->
        pull
          (Fact.make ~rel:"blogComments" ~peer:peer_name
             [ Value.String c.post_title; Value.String c.author;
               Value.String c.text ]))
      (comments service ~blog:blog_name);
    !crossed
  in
  let push =
    Wrapper.watcher ~peer ~rel:"entries" (fun fact ->
        match fact.Fact.args with
        | [ title; body; link ] ->
          ignore
            (publish service ~blog:blog_name
               { title = value_string title; body = value_string body;
                 link = value_string link })
        | _ -> ())
  in
  ({ Wrapper.label = "wordpress:" ^ blog_name; refresh; push }, peer)
