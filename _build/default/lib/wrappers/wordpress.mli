(** A simulated blog platform (the introduction's "blog on
    Wordpress.com").

    Joe "wants to post on his blog a review of the last movie he
    watched"; the wrapper turns that into WebdamLog relations. A blog
    holds posts (title, body, link) and per-post comments.

    {!blog_wrapper} exposes a two-way [entries@B(title, body, link)]
    relation (derive into it to publish; refresh pulls externally
    published posts) and a read-only [blogComments@B(title, author,
    text)] relation. *)

type post = { title : string; body : string; link : string }
type comment = { post_title : string; author : string; text : string }

type t

val create : unit -> t
val publish : t -> blog:string -> post -> bool
(** [false] when a post with that title already exists on the blog. *)

val posts : t -> blog:string -> post list
val add_comment : t -> blog:string -> comment -> bool
val comments : t -> blog:string -> comment list

val blog_wrapper :
  system:Webdamlog.System.t ->
  service:t ->
  blog:string ->
  peer_name:string ->
  Wrapper.t * Webdamlog.Peer.t
