type t = {
  label : string;
  refresh : unit -> int;
  push : unit -> int;
}

let sync t () =
  ignore (t.push ());
  ignore (t.refresh ())

module Fact_tbl = Hashtbl.Make (struct
  type t = Wdl_syntax.Fact.t

  let equal = Wdl_syntax.Fact.equal
  let hash = Wdl_syntax.Fact.hash
end)

let watcher ~peer ~rel action =
  let seen = Fact_tbl.create 64 in
  fun () ->
    let crossed = ref 0 in
    List.iter
      (fun fact ->
        if not (Fact_tbl.mem seen fact) then begin
          Fact_tbl.replace seen fact ();
          action fact;
          incr crossed
        end)
      (Webdamlog.Peer.query peer rel);
    !crossed
