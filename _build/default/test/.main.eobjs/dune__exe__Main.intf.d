test/main.mli:
