test/str_helper.ml: String
