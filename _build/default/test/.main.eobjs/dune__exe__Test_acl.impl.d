test/test_acl.ml: Acl Alcotest List Parser Wdl_syntax Webdamlog
