test/test_aggregate.ml: Aggregate Alcotest Fact Format List Parser Peer Result Rule System Value Wdl_syntax Webdamlog
