test/test_authz.ml: Alcotest Authz List Parser Peer Result System Trace Wdl_syntax Webdamlog
