test/test_classify.ml: Alcotest Classify Parser Str_helper Wdl_syntax Webdamlog
