test/test_database_more.ml: Alcotest Database Format List Parser Relation Tuple Value Wdl_store Wdl_syntax
