test/test_differential.ml: Database Decl Fact Fixpoint Format List Option Parser Printf QCheck QCheck_alcotest Reference Rule String Tuple Value Wdl_eval Wdl_store Wdl_syntax
