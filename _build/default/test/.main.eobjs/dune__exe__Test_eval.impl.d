test/test_eval.ml: Alcotest Buffer Database Fact Fixpoint Format List Parser Printf Program Relation Rule Runtime_error Stratify Tuple Value Wdl_eval Wdl_store Wdl_syntax
