test/test_expr.ml: Alcotest Expr Format List Literal Parser Result Subst Value Wdl_syntax
