test/test_feed.ml: Alcotest List Printf Wdl_feed Wdl_net Webdamlog
