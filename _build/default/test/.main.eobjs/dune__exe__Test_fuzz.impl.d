test/test_fuzz.ml: Atom Char Fact Format List Parser Peer Printf QCheck QCheck_alcotest Rule String System Term Value Wdl_eval Wdl_feed Wdl_net Wdl_syntax Webdamlog
