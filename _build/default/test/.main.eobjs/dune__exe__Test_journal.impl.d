test/test_journal.ml: Alcotest Array Decl Fact Filename List Peer Persist Printf Result String Sys System Unix Value Wdl_store Wdl_syntax Webdamlog
