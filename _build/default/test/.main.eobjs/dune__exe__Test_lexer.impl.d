test/test_lexer.ml: Alcotest Lexer List Wdl_syntax
