test/test_message.ml: Alcotest Fact Format List Message Parser Str_helper Value Wdl_syntax Webdamlog
