test/test_misc.ml: Alcotest Bytes Classify Fact Format Fun List Message Parser Peer Program Str_helper String System Unix Value Wdl_net Wdl_syntax Wdl_web Webdamlog Wire
