test/test_net.ml: Alcotest Inmem List Netstats Simnet Tcp Transport Unix Wdl_net
