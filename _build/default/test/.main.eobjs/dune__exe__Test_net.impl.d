test/test_net.ml: Alcotest Inmem List Netstats Simnet Transport Wdl_net
