test/test_parser.ml: Alcotest Atom Decl Fact Format List Literal Parser Program Rule String Term Value Wdl_syntax
