test/test_peer.ml: Alcotest Fact List Message Parser Peer Result String Trace Value Wdl_syntax Webdamlog
