test/test_persist.ml: Acl Alcotest Fact List Message Parser Peer Result String System Wdl_syntax Webdamlog
