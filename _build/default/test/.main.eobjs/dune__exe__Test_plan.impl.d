test/test_plan.ml: Alcotest Array List Parser Plan Subst Value Wdl_eval Wdl_syntax
