test/test_provenance.ml: Alcotest Fact List Peer Rule Str_helper String System Value Wdl_eval Wdl_syntax Webdamlog
