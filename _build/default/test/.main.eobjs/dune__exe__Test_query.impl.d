test/test_query.ml: Alcotest List Peer Result Value Wdl_syntax Webdamlog
