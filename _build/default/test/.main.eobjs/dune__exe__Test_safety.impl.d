test/test_safety.ml: Alcotest Atom List Literal Parser Rule Safety Term Value Wdl_syntax
