test/test_store.ml: Alcotest Database Decl List Relation Result Tuple Value Wdl_store Wdl_syntax
