test/test_stratify.ml: Alcotest Array Format List Parser Result Stratify Wdl_eval Wdl_syntax
