test/test_system.ml: Acl Alcotest Fact Format List Parser Peer Printf Rule System Trace Value Wdl_eval Wdl_net Wdl_syntax Webdamlog
