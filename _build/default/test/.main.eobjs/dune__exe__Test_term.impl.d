test/test_term.ml: Alcotest Atom Fact Format List Literal Parser Rule Subst Term Value Wdl_syntax
