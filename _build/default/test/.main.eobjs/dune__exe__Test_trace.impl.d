test/test_trace.ml: Alcotest Fact Format List Message Parser String Trace Value Wdl_eval Wdl_syntax Webdamlog
