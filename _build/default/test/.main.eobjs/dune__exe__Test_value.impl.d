test/test_value.ml: Alcotest Fact Format List Parser Value Wdl_syntax
