test/test_web.ml: Acl Alcotest Buffer Bytes Char Format Fun List Option Peer Printf Str_helper String System Unix Wdl_syntax Wdl_web Webdamlog
