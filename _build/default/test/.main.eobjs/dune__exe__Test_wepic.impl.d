test/test_wepic.ml: Alcotest Fact Format List Printf Str_helper Value Wdl_net Wdl_syntax Wdl_wepic Wdl_wrappers Webdamlog
