test/test_wire.ml: Alcotest Fact List Message Option Parser Peer Result Rule String System Value Wdl_net Wdl_syntax Webdamlog Wire
