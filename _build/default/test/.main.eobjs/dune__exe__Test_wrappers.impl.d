test/test_wrappers.ml: Alcotest Fact List Value Wdl_syntax Wdl_wrappers Webdamlog
