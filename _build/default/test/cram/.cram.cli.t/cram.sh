  $ wdl parse tc.wdl
  $ echo 'v@p($x) :- a@p($y);' > unsafe.wdl
  $ wdl parse unsafe.wdl
  $ wdl run --peer local tc.wdl
  $ wdl run --peer local --strategy naive tc.wdl
  $ wdl query --peer local tc.wdl 'q@local($y) :- tc@local(1, $y)'
  $ wdl simulate Jules=jules.wdl Emilien=emilien.wdl
  $ printf 'n@local(1);\nn@local(2);\nint v@local(x);\nv@local($x) :- n@local($x), $x > 1;\n.run\n.dump v\n.quit\n' | wdl repl
  $ wdl analyze --peer Jules jules.wdl
  $ printf 'e@local(1,2);\ne@local(2,3);\nint t@local(x,y);\nt@local($x,$y) :- e@local($x,$y);\nt@local($x,$z) :- t@local($x,$y), e@local($y,$z);\n.explain t@local(1,3);\n.quit\n' | wdl repl
  $ wdl fmt tc.wdl
  $ wdl run --peer local same_generation.wdl | grep -c 'sg@local'
  $ wdl run --peer local aggregates.wdl | sed -n '/perCity/,$p'
  $ wdl run --peer local negation.wdl | sed -n '/empty@local (/,/^$/p'
  $ wdl-bench ft-smoke
