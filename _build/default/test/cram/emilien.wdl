ext pictures@Emilien(id, name, owner, data);
pictures@Emilien(32, "sea.jpg", "Emilien", "100...");
