ext selectedAttendee@Jules(attendee);
int attendeePictures@Jules(id, name, owner, data);
selectedAttendee@Jules("Emilien");
attendeePictures@Jules($id, $name, $owner, $data) :-
  selectedAttendee@Jules($attendee),
  pictures@$attendee($id, $name, $owner, $data);
