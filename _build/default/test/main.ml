let () =
  Alcotest.run "webdamlog"
    [
      ("value", Test_value.suite);
      ("term-subst-atom-rule", Test_term.suite);
      ("expr", Test_expr.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("safety", Test_safety.suite);
      ("store", Test_store.suite);
      ("store-more", Test_database_more.suite);
      ("stratify", Test_stratify.suite);
      ("eval", Test_eval.suite);
      ("plan", Test_plan.suite);
      ("acl", Test_acl.suite);
      ("net", Test_net.suite);
      ("reliable", Test_reliable.suite);
      ("trace", Test_trace.suite);
      ("message", Test_message.suite);
      ("peer", Test_peer.suite);
      ("system", Test_system.suite);
      ("query", Test_query.suite);
      ("wire-tcp", Test_wire.suite);
      ("persist", Test_persist.suite);
      ("journal", Test_journal.suite);
      ("web", Test_web.suite);
      ("authz", Test_authz.suite);
      ("aggregate", Test_aggregate.suite);
      ("provenance", Test_provenance.suite);
      ("classify", Test_classify.suite);
      ("wrappers", Test_wrappers.suite);
      ("wepic", Test_wepic.suite);
      ("properties", Test_props.suite);
      ("fuzz", Test_fuzz.suite);
      ("feed", Test_feed.suite);
      ("differential", Test_differential.suite);
      ("misc", Test_misc.suite);
    ]
