(* Tiny test helper: substring search (Stdlib has none). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
    in
    go 0
