open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let r1 = Parser.parse_rule "a@p($x) :- b@p($x)"
let r2 = Parser.parse_rule "c@p($x) :- d@p($x)"

let suite =
  [
    tc "open policy trusts everyone" (fun () ->
        let acl = Acl.create () in
        check_bool "trusted" (Acl.trusted acl "anyone");
        check_bool "installed" (Acl.submit acl ~src:"anyone" r1 = `Installed));
    tc "closed policy trusts no one by default" (fun () ->
        let acl = Acl.create ~policy:Acl.Closed () in
        check_bool "untrusted" (not (Acl.trusted acl "anyone"));
        check_bool "pending" (Acl.submit acl ~src:"anyone" r1 = `Pending));
    tc "explicit trust overrides policy" (fun () ->
        let acl = Acl.create ~policy:Acl.Closed () in
        Acl.trust acl "sigmod";
        check_bool "trusted" (Acl.trusted acl "sigmod");
        let acl2 = Acl.create () in
        Acl.untrust acl2 "mallory";
        check_bool "untrusted" (not (Acl.trusted acl2 "mallory")));
    tc "pending queue is FIFO and deduplicated" (fun () ->
        let acl = Acl.create ~policy:Acl.Closed () in
        ignore (Acl.submit acl ~src:"a" r1);
        ignore (Acl.submit acl ~src:"b" r2);
        ignore (Acl.submit acl ~src:"a" r1);
        check_int "two" 2 (List.length (Acl.pending acl));
        match Acl.pending acl with
        | (s1, _) :: (s2, _) :: [] ->
          Alcotest.check Alcotest.string "first" "a" s1;
          Alcotest.check Alcotest.string "second" "b" s2
        | _ -> Alcotest.fail "unexpected queue");
    tc "accept pops exactly the matching entry" (fun () ->
        let acl = Acl.create ~policy:Acl.Closed () in
        ignore (Acl.submit acl ~src:"a" r1);
        ignore (Acl.submit acl ~src:"b" r1);
        check_bool "hit" (Acl.accept acl ~src:"a" r1);
        check_bool "miss" (not (Acl.accept acl ~src:"a" r1));
        check_int "one left" 1 (List.length (Acl.pending acl)));
    tc "reject and retract_pending remove entries" (fun () ->
        let acl = Acl.create ~policy:Acl.Closed () in
        ignore (Acl.submit acl ~src:"a" r1);
        check_bool "reject" (Acl.reject acl ~src:"a" r1);
        ignore (Acl.submit acl ~src:"a" r2);
        check_bool "retract" (Acl.retract_pending acl ~src:"a" r2);
        check_int "empty" 0 (List.length (Acl.pending acl)));
    tc "accept_all drains in order" (fun () ->
        let acl = Acl.create ~policy:Acl.Closed () in
        ignore (Acl.submit acl ~src:"a" r1);
        ignore (Acl.submit acl ~src:"b" r2);
        let all = Acl.accept_all acl in
        check_int "two" 2 (List.length all);
        check_int "drained" 0 (List.length (Acl.pending acl)));
    tc "policy can change at run time" (fun () ->
        let acl = Acl.create () in
        Acl.set_policy acl Acl.Closed;
        check_bool "now pending" (Acl.submit acl ~src:"x" r1 = `Pending));
  ]
