(* Aggregation: the substrate feature behind §3's "select and rank". *)
open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let peer_with src =
  let p = Peer.create "p" in
  ok' (Peer.load_string p src);
  ignore (Peer.stage p);
  p

let rows p rel =
  List.map (fun (f : Fact.t) -> f.Fact.args) (Peer.query p rel)

let suite =
  [
    tc "apply: count/sum/min/max/avg" (fun () ->
        let vs = [ Value.Int 3; Value.Int 1; Value.Int 2 ] in
        check_bool "count" (Aggregate.apply Aggregate.Count vs = Ok (Value.Int 3));
        check_bool "sum" (Aggregate.apply Aggregate.Sum vs = Ok (Value.Int 6));
        check_bool "min" (Aggregate.apply Aggregate.Min vs = Ok (Value.Int 1));
        check_bool "max" (Aggregate.apply Aggregate.Max vs = Ok (Value.Int 3));
        check_bool "avg" (Aggregate.apply Aggregate.Avg vs = Ok (Value.Float 2.)));
    tc "apply: mixed numerics promote, non-numerics error" (fun () ->
        check_bool "mixed sum"
          (Aggregate.apply Aggregate.Sum [ Value.Int 1; Value.Float 0.5 ]
          = Ok (Value.Float 1.5));
        check_bool "string rejected"
          (Result.is_error (Aggregate.apply Aggregate.Sum [ Value.String "x" ]));
        check_bool "count anything"
          (Aggregate.apply Aggregate.Count [ Value.String "x"; Value.Bool true ]
          = Ok (Value.Int 2));
        check_bool "empty group"
          (Result.is_error (Aggregate.apply Aggregate.Max [])));
    tc "parser: aggregate heads round-trip" (fun () ->
        let r =
          Parser.parse_rule
            "perOwner@p($o, count($id), max($r)) :- pics@p($id, $o, $r)"
        in
        check_int "two aggs" 2 (List.length r.Rule.aggs);
        let printed = Format.asprintf "%a" Rule.pp r in
        check_bool "round-trip" (Rule.equal r (Parser.parse_rule printed)));
    tc "parser: aggregates only in heads, never in facts" (fun () ->
        check_bool "fact rejected"
          (Result.is_error (Parser.fact "m@p(count($x))"));
        (* 'count' without parens stays an ordinary symbol *)
        let r = Parser.parse_rule "m@p(count) :- a@p($x)" in
        check_bool "plain symbol" (not (Rule.is_aggregate r)));
    tc "group-by counting" (fun () ->
        let p =
          peer_with
            {|int perOwner@p(owner, n);
              pics@p(1, "a"); pics@p(2, "a"); pics@p(3, "b");
              perOwner@p($o, count($id)) :- pics@p($id, $o);|}
        in
        check_bool "counts"
          (rows p "perOwner"
          = [ [ Value.String "a"; Value.Int 2 ]; [ Value.String "b"; Value.Int 1 ] ]));
    tc "global aggregate (no group-by columns)" (fun () ->
        let p =
          peer_with
            {|int total@p(n);
              pics@p(1); pics@p(2); pics@p(3);
              total@p(count($id)) :- pics@p($id);|}
        in
        check_bool "total" (rows p "total" = [ [ Value.Int 3 ] ]));
    tc "max rating per picture feeds a ranked view" (fun () ->
        let p =
          peer_with
            {|int best@p(id, r); int top@p(id);
              rate@p(1, 3); rate@p(1, 5); rate@p(2, 4);
              best@p($id, max($r)) :- rate@p($id, $r);
              top@p($id) :- best@p($id, $r), $r >= 5;|}
        in
        check_bool "best"
          (rows p "best"
          = [ [ Value.Int 1; Value.Int 5 ]; [ Value.Int 2; Value.Int 4 ] ]);
        check_bool "top built on top of the aggregate"
          (rows p "top" = [ [ Value.Int 1 ] ]));
    tc "aggregates see facts derived in lower strata" (fun () ->
        let p =
          peer_with
            {|int doubled@p(x); int total@p(n);
              n@p(1); n@p(2);
              doubled@p($y) :- n@p($x), $y := $x * 2;
              total@p(sum($y)) :- doubled@p($y);|}
        in
        check_bool "sum of the view" (rows p "total" = [ [ Value.Int 6 ] ]));
    tc "aggregate over an empty relation derives nothing" (fun () ->
        let p =
          peer_with
            {|int total@p(n); ext pics@p(id);
              total@p(count($id)) :- pics@p($id);|}
        in
        check_int "no groups" 0 (List.length (rows p "total")));
    tc "updates recompute aggregates" (fun () ->
        let p =
          peer_with
            {|int total@p(n); pics@p(1);
              total@p(count($id)) :- pics@p($id);|}
        in
        check_bool "one" (rows p "total" = [ [ Value.Int 1 ] ]);
        ok' (Peer.insert p (Fact.make ~rel:"pics" ~peer:"p" [ Value.Int 2 ]));
        ignore (Peer.stage p);
        check_bool "two" (rows p "total" = [ [ Value.Int 2 ] ]);
        ok' (Peer.delete p (Fact.make ~rel:"pics" ~peer:"p" [ Value.Int 1 ]));
        ignore (Peer.stage p);
        check_bool "back to one" (rows p "total" = [ [ Value.Int 1 ] ]));
    tc "aggregation through one's own aggregate is rejected (like negation)"
      (fun () ->
        let p = Peer.create "p" in
        ok' (Peer.load_string p "int v@p(n);");
        check_bool "cycle rejected"
          (Result.is_error
             (Peer.add_rule p (Parser.parse_rule "v@p(count($x)) :- v@p($x)"))));
    tc "non-local aggregate rules rejected at install" (fun () ->
        let p = Peer.create "p" in
        ok' (Peer.load_string p "int v@p(n);");
        check_bool "remote body"
          (Result.is_error
             (Peer.add_rule p
                (Parser.parse_rule "v@p(count($x)) :- pics@q($x)")));
        check_bool "peer variable"
          (Result.is_error
             (Peer.add_rule p
                (Parser.parse_rule
                   "v@p(count($x)) :- sel@p($a), pics@$a($x)"))));
    tc "delegated aggregate rules are refused and traced" (fun () ->
        let sys = System.create () in
        let p = System.add_peer sys "p" in
        let q = System.add_peer sys "q" in
        ok' (Peer.load_string q "ext pics@q(id); pics@q(1);");
        (* p's rule delegates a residual aggregate to q whose body reads
           p again — non-local at q, so q must refuse it. *)
        ok' (Peer.load_string p "ext sel@p(a); int v@p(n); sel@p(\"q\");");
        (match
           Peer.add_rule p
             (Parser.parse_rule "v@p(count($x)) :- pics@q($x), marks@p($x)")
         with
        | Ok () -> Alcotest.fail "p itself should reject: body starts remote"
        | Error _ -> ());
        check_bool "done" true);
    tc "rename preserves aggregate variables" (fun () ->
        let r = Parser.parse_rule "v@p($o, count($x)) :- pics@p($x, $o)" in
        let r' = Rule.rename ~suffix:"_9" r in
        match r'.Rule.aggs with
        | [ (1, { Aggregate.var = "x_9"; _ }) ] -> ()
        | _ -> Alcotest.fail "aggregate variable not renamed");
  ]
