(* The §2 access-control model: discretionary grants, provenance-derived
   view policies, declassification, and enforcement on delegations. *)
open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let policy = Alcotest.testable Authz.pp_policy Authz.policy_equal

let suite =
  [
    tc "meet is set intersection with Everyone as top" (fun () ->
        Alcotest.check policy "e/e" Authz.Everyone
          (Authz.meet Authz.Everyone Authz.Everyone);
        Alcotest.check policy "e/only" (Authz.Only [ "a" ])
          (Authz.meet Authz.Everyone (Authz.Only [ "a" ]));
        Alcotest.check policy "inter" (Authz.Only [ "b" ])
          (Authz.meet (Authz.Only [ "a"; "b" ]) (Authz.Only [ "b"; "c" ]));
        Alcotest.check policy "disjoint" (Authz.Only [])
          (Authz.meet (Authz.Only [ "a" ]) (Authz.Only [ "c" ])));
    tc "stored policies: grant and revoke" (fun () ->
        let a = Authz.create () in
        Alcotest.check policy "default" Authz.Everyone (Authz.stored_policy a "m");
        Authz.grant a ~rel:"m" "jules";
        Alcotest.check policy "after grant" (Authz.Only [ "jules" ])
          (Authz.stored_policy a "m");
        Authz.grant a ~rel:"m" "julia";
        Authz.revoke a ~rel:"m" "jules";
        Alcotest.check policy "after revoke" (Authz.Only [ "julia" ])
          (Authz.stored_policy a "m"));
    tc "view readers derive from base provenance" (fun () ->
        let p = Peer.create "p" in
        ok'
          (Peer.load_string p
             {|ext private@p(x); ext public@p(x); int v@p(x);
               v@p($x) :- private@p($x), public@p($x);|});
        Authz.set_policy (Peer.authz p) ~rel:"private" (Authz.Only [ "julia" ]);
        Alcotest.check policy "view policy" (Authz.Only [ "julia" ])
          (Peer.readers p "v");
        Alcotest.check policy "public stays open" Authz.Everyone
          (Peer.readers p "public"));
    tc "provenance flows through view-over-view chains" (fun () ->
        let p = Peer.create "p" in
        ok'
          (Peer.load_string p
             {|ext secret@p(x); int v1@p(x); int v2@p(x);
               v1@p($x) :- secret@p($x);
               v2@p($x) :- v1@p($x);|});
        Authz.set_policy (Peer.authz p) ~rel:"secret" (Authz.Only []);
        Alcotest.check policy "v2 inherits" (Authz.Only []) (Peer.readers p "v2"));
    tc "declassification overrides the derived policy" (fun () ->
        let p = Peer.create "p" in
        ok'
          (Peer.load_string p
             {|ext secret@p(x); int v@p(x); v@p($x) :- secret@p($x);|});
        Authz.set_policy (Peer.authz p) ~rel:"secret" (Authz.Only []);
        Authz.declassify (Peer.authz p) ~rel:"v" (Authz.Only [ "julia" ]);
        Alcotest.check policy "declassified" (Authz.Only [ "julia" ])
          (Peer.readers p "v");
        Authz.clear_declassification (Peer.authz p) ~rel:"v";
        Alcotest.check policy "back to derived" (Authz.Only [])
          (Peer.readers p "v"));
    tc "can_read: the owner always reads its own data" (fun () ->
        let p = Peer.create "p" in
        ok' (Peer.load_string p "ext secret@p(x);");
        Authz.set_policy (Peer.authz p) ~rel:"secret" (Authz.Only []);
        check_bool "owner" (Peer.can_read p ~reader:"p" "secret");
        check_bool "stranger" (not (Peer.can_read p ~reader:"q" "secret")));
    tc "enforcement rejects delegations reading protected relations" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys "Jules" in
        let julia = System.add_peer sys "Julia" in
        ok' (Peer.load_string jules "ext pictures@Jules(i); pictures@Jules(7);");
        Peer.set_enforce_authz jules true;
        Authz.set_policy (Peer.authz jules) ~rel:"pictures"
          (Authz.Only [ "Emilien" ]);
        ok'
          (Peer.load_string julia
             "int mine@Julia(i); mine@Julia($i) :- pictures@Jules($i);");
        ignore (ok' (System.run sys));
        check_int "nothing flows" 0 (List.length (Peer.query julia "mine"));
        check_int "not installed" 0 (List.length (Peer.delegated_rules jules));
        check_bool "rejection traced"
          (Trace.find (Peer.trace jules) (function
            | Trace.Delegation_rejected _ -> true
            | _ -> false)
          <> None));
    tc "enforcement admits granted readers" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys "Jules" in
        let julia = System.add_peer sys "Julia" in
        ok' (Peer.load_string jules "ext pictures@Jules(i); pictures@Jules(7);");
        Peer.set_enforce_authz jules true;
        Authz.set_policy (Peer.authz jules) ~rel:"pictures"
          (Authz.Only [ "Julia" ]);
        ok'
          (Peer.load_string julia
             "int mine@Julia(i); mine@Julia($i) :- pictures@Jules($i);");
        ignore (ok' (System.run sys));
        check_int "flows" 1 (List.length (Peer.query julia "mine")));
    tc "delegations with relation variables need access to everything" (fun () ->
        let a = Authz.create () in
        Authz.set_policy a ~rel:"secret" (Authz.Only []);
        let rules = [] in
        let intensional _ = false in
        let rule = Parser.parse_rule "out@q($r, $x) :- names@p($r), $r@p($x)" in
        (match
           Authz.check_delegation a ~self:"p" ~rules ~intensional ~reader:"q" rule
         with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected rejection");
        let open_a = Authz.create () in
        check_bool "all open -> fine"
          (Result.is_ok
             (Authz.check_delegation open_a ~self:"p" ~rules ~intensional
                ~reader:"q" rule)));
    tc "atoms after the delegation boundary are not charged" (fun () ->
        let a = Authz.create () in
        Authz.set_policy a ~rel:"secret" (Authz.Only []);
        (* secret is only read after the rule bounces to r: this peer
           must not enforce on r's behalf. *)
        let rule =
          Parser.parse_rule "out@q($x) :- visible@p($x), stuff@r($x), secret@p($x)"
        in
        check_bool "allowed"
          (Result.is_ok
             (Authz.check_delegation a ~self:"p" ~rules:[]
                ~intensional:(fun _ -> false) ~reader:"q" rule)));
    tc "authz state survives snapshot/restore" (fun () ->
        let p = Peer.create "p" in
        ok'
          (Peer.load_string p
             {|ext secret@p(x); int v@p(x); v@p($x) :- secret@p($x);|});
        Peer.set_enforce_authz p true;
        Authz.set_policy (Peer.authz p) ~rel:"secret" (Authz.Only [ "julia" ]);
        Authz.declassify (Peer.authz p) ~rel:"v" Authz.Everyone;
        let p' = ok' (Peer.restore (Peer.snapshot p)) in
        check_bool "enforce kept" (Peer.enforcing_authz p');
        Alcotest.check policy "stored kept" (Authz.Only [ "julia" ])
          (Authz.stored_policy (Peer.authz p') "secret");
        Alcotest.check policy "override kept" Authz.Everyone
          (Peer.readers p' "v"));
  ]
