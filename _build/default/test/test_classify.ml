open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true

let classify ?(intensional = fun _ -> false) src =
  Classify.classify ~self:"p" ~intensional (Parser.parse_rule src)

let suite =
  [
    tc "local view rule" (fun () ->
        let c = classify ~intensional:(fun r -> r = "v") "v@p($x) :- a@p($x)" in
        check_bool "head" (c.Classify.head = Classify.Local_view);
        check_bool "body" (c.Classify.body = Classify.All_local));
    tc "local update rule (inductive)" (fun () ->
        let c = classify "b@p($x) :- a@p($x)" in
        check_bool "head" (c.Classify.head = Classify.Local_update));
    tc "messaging rule" (fun () ->
        let c = classify "out@q($x) :- a@p($x)" in
        check_bool "head" (c.Classify.head = Classify.Remote "q");
        check_bool "body local" (c.Classify.body = Classify.All_local));
    tc "delegating rule: boundary at the first remote atom" (fun () ->
        let c = classify "v@p($x) :- a@p($x), data@q($x), more@p($x)" in
        check_bool "boundary" (c.Classify.body = Classify.Delegates_at 1);
        check_bool "remote reads" (c.Classify.reads_remote = [ "q" ]));
    tc "builtins do not move the boundary index" (fun () ->
        let c = classify "v@p($x) :- a@p($x), $x > 1, data@q($x)" in
        check_bool "boundary after builtin" (c.Classify.body = Classify.Delegates_at 2));
    tc "peer variables make the boundary dynamic" (fun () ->
        let c = classify "v@p($x) :- sel@p($a), data@$a($x)" in
        check_bool "dynamic" (c.Classify.body = Classify.Dynamic_at 1));
    tc "dynamic head (the transfer rule)" (fun () ->
        let c =
          classify
            {|$protocol@$att($att, $n) :- sel@p($att), communicate@$att($protocol), pics@p($n)|}
        in
        check_bool "head" (c.Classify.head = Classify.Dynamic_head);
        check_bool "body" (c.Classify.body = Classify.Dynamic_at 1));
    tc "reads_remote collects and sorts all named remote peers" (fun () ->
        let c = classify "v@p($x) :- a@zeta($x), b@alpha($x)" in
        check_bool "sorted" (c.Classify.reads_remote = [ "alpha"; "zeta" ]));
    tc "describe mentions the boundary" (fun () ->
        let c = classify "v@p($x) :- a@p($x), data@q($x)" in
        check_bool "text"
          (Str_helper.contains (Classify.describe c) "delegates at literal 2"));
  ]
