(* Differential testing: the compiled plan evaluator (Fixpoint) against
   the substitution-based oracle (Reference) on random local programs
   covering recursion, negation, builtins, aggregation, relation
   variables and delegation boundaries. *)
open Wdl_syntax
open Wdl_store
open Wdl_eval

(* {1 Random local programs} *)

type dspec = {
  facts : (string * int list) list;  (* relation, args (arity 1 or 2) *)
  names : string list;               (* contents of the names relation *)
  rules : string list;
}

let dspec_gen =
  QCheck.Gen.(
    let* facts =
      list_size (int_range 3 20)
        (let* rel = oneofl [ "e"; "r"; "s" ] in
         let* arity2 = bool in
         let* a = int_range 0 5 in
         let* b = int_range 0 5 in
         return (rel, if arity2 && rel = "e" then [ a; b ] else [ a ]))
    in
    let* names = list_size (int_range 0 2) (oneofl [ "r"; "s" ]) in
    let* rules =
      list_size (int_range 1 6)
        (oneofl
           [
             (* recursion *)
             "tc@p($x,$y) :- e@p($x,$y);";
             "tc@p($x,$z) :- tc@p($x,$y), e@p($y,$z);";
             (* negation over base data *)
             "only@p($x) :- r@p($x), not s@p($x);";
             (* negation over a view *)
             "vr@p($x) :- r@p($x);";
             "nots@p($x) :- s@p($x), not vr@p($x);";
             (* builtins *)
             "shift@p($y) :- r@p($x), $y := $x + 10;";
             "bigr@p($x) :- r@p($x), $x >= 3;";
             (* aggregation *)
             "counts@p(count($x)) :- r@p($x);";
             "ends@p($x, max($y)) :- e@p($x,$y);";
             (* relation variable *)
             "anyof@p($n, $x) :- names@p($n), $n@p($x);";
             (* delegation boundary (suspension output) *)
             "away@p($x) :- r@p($x), data@q($x);";
             (* inductive update *)
             "accum@p($x) :- r@p($x);";
             (* messaging *)
             "out@q($x) :- s@p($x);";
           ])
    in
    return { facts; names; rules })

let dspec_print s =
  Printf.sprintf "facts=[%s] names=[%s]\n%s"
    (String.concat "; "
       (List.map
          (fun (r, args) ->
            Printf.sprintf "%s(%s)" r
              (String.concat "," (List.map string_of_int args)))
          s.facts))
    (String.concat ";" s.names)
    (String.concat "\n" s.rules)

let dspec_arb = QCheck.make ~print:dspec_print dspec_gen

let views = [ "tc"; "only"; "vr"; "nots"; "shift"; "bigr"; "counts"; "ends"; "anyof"; "away" ]

let build_db spec =
  let db = Database.create () in
  List.iter
    (fun v ->
      ignore
        (Database.declare db
           (Decl.make ~kind:Decl.Intensional ~rel:v ~peer:"p"
              (List.init
                 (match v with "tc" | "ends" | "anyof" -> 2 | _ -> 1)
                 (Printf.sprintf "c%d")))))
    views;
  List.iter
    (fun (rel, args) ->
      ignore
        (Database.insert db ~rel
           (Tuple.of_list (List.map (fun n -> Value.Int n) args))))
    spec.facts;
  List.iter
    (fun n ->
      ignore (Database.insert db ~rel:"names" (Tuple.of_list [ Value.String n ])))
    spec.names;
  db

let canon_result (r : Fixpoint.result) =
  let facts l = List.sort Fact.compare l in
  let susp =
    List.sort compare
      (List.map
         (fun (d, rule) -> (d, Format.asprintf "%a" Rule.pp rule))
         r.Fixpoint.suspensions)
  in
  ( facts r.Fixpoint.deduced,
    facts r.Fixpoint.induced,
    facts r.Fixpoint.messages,
    susp )

let run_engine engine spec =
  let db = build_db spec in
  let rules =
    List.map Parser.parse_rule
      (List.map
         (fun s -> String.sub s 0 (String.length s - 1) (* drop ';' *))
         spec.rules)
  in
  match engine ~self:"p" db rules with
  | Ok r -> Some (canon_result r)
  | Error _ -> None

let tests =
  [
    QCheck.Test.make ~count:150
      ~name:"compiled evaluator agrees with the reference oracle" dspec_arb
      (fun spec ->
        run_engine (Fixpoint.run ?strategy:None ?record_provenance:None) spec
        = run_engine (Reference.run ?strategy:None ?record_provenance:None) spec);
    QCheck.Test.make ~count:80
      ~name:"both engines agree under the naive strategy too" dspec_arb
      (fun spec ->
        run_engine (Fixpoint.run ~strategy:Fixpoint.Naive ?record_provenance:None)
          spec
        = run_engine (Reference.run ~strategy:Fixpoint.Naive ?record_provenance:None)
            spec);
    QCheck.Test.make ~count:60
      ~name:"provenance premises agree on derived facts" dspec_arb
      (fun spec ->
        let prov engine =
          let db = build_db spec in
          let rules =
            List.map Parser.parse_rule
              (List.map (fun s -> String.sub s 0 (String.length s - 1)) spec.rules)
          in
          match engine ~self:"p" db rules with
          | Ok r ->
            Some
              (List.sort compare
                 (List.map
                    (fun (d : Fixpoint.derivation) ->
                      ( Format.asprintf "%a" Fact.pp d.Fixpoint.fact,
                        List.sort compare
                          (List.map (Format.asprintf "%a" Fact.pp)
                             d.Fixpoint.premises) ))
                    r.Fixpoint.provenance))
          | Error _ -> None
        in
        (* Premise sets can legitimately differ when a fact has several
           derivations (each engine records the first it finds), so
           compare only the covered fact sets. *)
        let facts_of = Option.map (List.map fst) in
        facts_of (prov (Fixpoint.run ~record_provenance:true ?strategy:None))
        = facts_of (prov (Reference.run ~record_provenance:true ?strategy:None)));
  ]

let suite = List.map QCheck_alcotest.to_alcotest tests
