open Wdl_syntax

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true

let eval_ok s e =
  match Expr.eval s e with
  | Ok v -> v
  | Error err -> Alcotest.fail (Format.asprintf "%a" Expr.pp_error err)

let sub = Subst.bind_exn "x" (Value.Int 10) (Subst.bind_exn "y" (Value.Int 4) Subst.empty)

let suite =
  [
    tc "integer arithmetic" (fun () ->
        check_bool "add" (eval_ok sub (Expr.Add (Var "x", Var "y")) = Value.Int 14);
        check_bool "sub" (eval_ok sub (Expr.Sub (Var "x", Var "y")) = Value.Int 6);
        check_bool "mul" (eval_ok sub (Expr.Mul (Var "x", Var "y")) = Value.Int 40);
        check_bool "div" (eval_ok sub (Expr.Div (Var "x", Var "y")) = Value.Int 2));
    tc "mixed int/float promotes to float" (fun () ->
        let s = Subst.bind_exn "f" (Value.Float 2.5) Subst.empty in
        check_bool "add"
          (eval_ok s (Expr.Add (Var "f", Const (Value.Int 1))) = Value.Float 3.5));
    tc "string concatenation via +" (fun () ->
        let s = Subst.bind_exn "a" (Value.String "foo") Subst.empty in
        check_bool "concat"
          (eval_ok s (Expr.Add (Var "a", Const (Value.String "bar")))
          = Value.String "foobar"));
    tc "division by zero is an error" (fun () ->
        check_bool "int"
          (Result.is_error (Expr.eval sub (Expr.Div (Var "x", Const (Value.Int 0)))));
        check_bool "float"
          (Result.is_error
             (Expr.eval sub (Expr.Div (Var "x", Const (Value.Float 0.))))));
    tc "type errors" (fun () ->
        let s = Subst.bind_exn "b" (Value.Bool true) Subst.empty in
        check_bool "bool + int"
          (Result.is_error (Expr.eval s (Expr.Add (Var "b", Const (Value.Int 1)))));
        check_bool "string - string"
          (Result.is_error
             (Expr.eval Subst.empty
                (Expr.Sub (Const (Value.String "a"), Const (Value.String "b"))))));
    tc "unbound variable is an error" (fun () ->
        match Expr.eval Subst.empty (Expr.Var "zz") with
        | Error (Expr.Unbound_variable "zz") -> ()
        | Error e -> Alcotest.fail (Format.asprintf "%a" Expr.pp_error e)
        | Ok _ -> Alcotest.fail "expected error");
    tc "vars: first-occurrence order, deduplicated" (fun () ->
        let e = Expr.Add (Expr.Mul (Var "b", Var "a"), Var "b") in
        Alcotest.check (Alcotest.list Alcotest.string) "vars" [ "b"; "a" ]
          (Expr.vars e));
    tc "subst grounds only bound variables" (fun () ->
        let e = Expr.Add (Var "x", Var "free") in
        check_bool "partial"
          (Expr.subst sub e = Expr.Add (Const (Value.Int 10), Var "free")));
    tc "pp respects precedence and parses back" (fun () ->
        let cases =
          [ "$x + $y * $z"; "($x + $y) * $z"; "$x - $y - $z"; "$x / ($y + 1)" ]
        in
        List.iter
          (fun src ->
            let lit = Parser.parse_literal (src ^ " == 0") in
            let printed = Format.asprintf "%a" Literal.pp lit in
            let lit' = Parser.parse_literal printed in
            check_bool src (Literal.equal lit lit'))
          cases);
    tc "eval_cmp: numeric coercion and total order" (fun () ->
        check_bool "int<float" (Literal.eval_cmp Literal.Lt (Value.Int 1) (Value.Float 1.5));
        check_bool "float=int" (Literal.eval_cmp Literal.Eq (Value.Float 2.) (Value.Int 2));
        check_bool "neq strings"
          (Literal.eval_cmp Literal.Neq (Value.String "a") (Value.String "b"));
        check_bool "ge" (Literal.eval_cmp Literal.Ge (Value.Int 3) (Value.Int 3)));
  ]
