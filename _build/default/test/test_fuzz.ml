(* Fuzzing the distributed engine: random multi-peer programs built
   from safe templates, checked against global invariants —
   quiescence, determinism, transport-independence (including
   duplicating networks), and snapshot stability. *)
open Wdl_syntax
open Webdamlog

(* {1 A random system specification} *)

type spec = {
  n_peers : int;
  facts : (int * string * int) list;  (* (peer, relation, value) *)
  selections : (int * int) list;      (* sel@p points at peer q *)
  rules : string list;                (* rendered with peer names inline *)
}

let peer_name i = Printf.sprintf "p%d" i

let spec_gen =
  QCheck.Gen.(
    let* n_peers = int_range 2 4 in
    let any_peer = int_range 0 (n_peers - 1) in
    let* facts =
      list_size (int_range 2 12)
        (let* p = any_peer in
         let* rel = oneofl [ "r"; "data"; "base" ] in
         let* v = int_range 0 4 in
         return (p, rel, v))
    in
    let* selections = list_size (int_range 0 4) (pair any_peer any_peer) in
    let rule_gen =
      let* p = any_peer in
      let* q = any_peer in
      let pn = peer_name p and qn = peer_name q in
      oneofl
        [
          (* local view *)
          Printf.sprintf "v@%s($x) :- r@%s($x);" pn pn;
          (* remote pull: delegation with a constant peer *)
          Printf.sprintf "pulled@%s($x) :- data@%s($x);" pn qn;
          (* dynamic delegation driven by sel facts *)
          Printf.sprintf "dyn@%s($x) :- sel@%s($a), data@$a($x);" pn pn;
          (* messaging: send local facts to q *)
          Printf.sprintf "inboxr@%s($x) :- base@%s($x);" qn pn;
          (* inductive local update *)
          Printf.sprintf "acc@%s($x) :- r@%s($x);" pn pn;
          (* builtin filter *)
          Printf.sprintf "big@%s($x) :- data@%s($x), $x >= 2;" pn pn;
          (* negation over extensional data *)
          Printf.sprintf "fresh@%s($x) :- data@%s($x), not r@%s($x);" pn pn pn;
          (* view chained on a view *)
          Printf.sprintf "vv@%s($x) :- v@%s($x);" pn pn;
        ]
    in
    let* rules = list_size (int_range 1 6) rule_gen in
    return { n_peers; facts; selections; rules })

let spec_print spec =
  Printf.sprintf "peers=%d facts=[%s] sels=[%s] rules:\n%s" spec.n_peers
    (String.concat "; "
       (List.map
          (fun (p, rel, v) -> Printf.sprintf "%s@%d=%d" rel p v)
          spec.facts))
    (String.concat "; "
       (List.map (fun (p, q) -> Printf.sprintf "%d->%d" p q) spec.selections))
    (String.concat "\n" spec.rules)

let spec_arb = QCheck.make ~print:spec_print spec_gen

(* Views must be declared intensional for the templates above. *)
let decls name =
  String.concat "\n"
    (List.map
       (fun rel -> Printf.sprintf "int %s@%s(x);" rel name)
       [ "v"; "pulled"; "dyn"; "big"; "fresh"; "vv" ])

let build ?strategy ?transport spec =
  let sys = System.create ?transport ~drop_unknown:true () in
  let peers =
    List.init spec.n_peers (fun i -> System.add_peer sys ?strategy (peer_name i))
  in
  List.iteri
    (fun i peer ->
      match Peer.load_string peer (decls (peer_name i)) with
      | Ok () -> ()
      | Error e -> failwith e)
    peers;
  List.iter
    (fun (p, rel, v) ->
      match
        Peer.insert (List.nth peers p)
          (Fact.make ~rel ~peer:(peer_name p) [ Value.Int v ])
      with
      | Ok () -> ()
      | Error e -> failwith e)
    spec.facts;
  List.iter
    (fun (p, q) ->
      match
        Peer.insert (List.nth peers p)
          (Fact.make ~rel:"sel" ~peer:(peer_name p)
             [ Value.String (peer_name q) ])
      with
      | Ok () -> ()
      | Error e -> failwith e)
    spec.selections;
  (* Rules are installed at the peer named in their head. *)
  List.iter
    (fun rule_src ->
      let rule =
        match Parser.rule rule_src with Ok r -> r | Error e -> failwith e
      in
      let owner =
        match Term.as_name rule.Rule.head.Atom.peer with
        | Some n -> n
        | None -> failwith "fuzz rules have constant head peers"
      in
      match Peer.add_rule (System.peer sys owner) rule with
      | Ok () -> ()
      | Error e -> failwith e)
    spec.rules;
  (sys, peers)

let dump peers =
  String.concat "\n"
    (List.map
       (fun p ->
         let facts =
           List.concat_map
             (fun rel ->
               List.map (Format.asprintf "%a" Fact.pp) (Peer.query p rel))
             (Peer.relation_names p)
         in
         let delegated =
           List.map
             (fun (src, r) -> src ^ ":" ^ Format.asprintf "%a" Rule.pp r)
             (Peer.delegated_rules p)
           |> List.sort String.compare
         in
         Peer.name p ^ "{" ^ String.concat ";" facts ^ "|"
         ^ String.concat ";" delegated ^ "}")
       peers)

let run_to_quiescence sys =
  match System.run ~max_rounds:500 sys with
  | Ok _ -> true
  | Error _ -> false

(* {1 Model-based check of the Wefeed application} *)

type feed_spec = {
  follows : (int * int) list;  (* user -> followee, over 4 users *)
  mutes : (int * int) list;
  posts : (int * int) list;  (* (author, id) *)
}

let feed_user i = Printf.sprintf "u%d" i

let feed_spec_gen =
  QCheck.Gen.(
    let u = int_range 0 3 in
    let* follows = list_size (int_range 0 6) (pair u u) in
    let* mutes = list_size (int_range 0 3) (pair u u) in
    let* posts = list_size (int_range 0 8) (pair u (int_range 1 50)) in
    return { follows; mutes; posts })

let feed_spec_print s =
  Printf.sprintf "follows=[%s] mutes=[%s] posts=[%s]"
    (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d>%d" a b) s.follows))
    (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d!%d" a b) s.mutes))
    (String.concat ";" (List.map (fun (a, i) -> Printf.sprintf "%d#%d" a i) s.posts))

let feed_model_test =
  QCheck.Test.make ~count:60
    ~name:"Wefeed timelines equal the relational model"
    (QCheck.make ~print:feed_spec_print feed_spec_gen)
    (fun spec ->
      let t = Wdl_feed.Feed.create () in
      for i = 0 to 3 do
        ignore (Wdl_feed.Feed.add_user t (feed_user i))
      done;
      List.iter
        (fun (a, b) ->
          if a <> b then
            Wdl_feed.Feed.follow t ~user:(feed_user a) ~whom:(feed_user b))
        spec.follows;
      List.iter
        (fun (a, b) -> Wdl_feed.Feed.mute t ~user:(feed_user a) ~whom:(feed_user b))
        spec.mutes;
      let posts = List.sort_uniq compare spec.posts in
      List.iter
        (fun (a, id) ->
          Wdl_feed.Feed.post t ~author:(feed_user a) ~id
            ~text:(Printf.sprintf "t%d" id) ~topic:"k")
        posts;
      (match Wdl_feed.Feed.run t with Ok _ -> () | Error e -> failwith e);
      (* The model: u sees post (a, id) iff u follows a, a <> u, and u
         has not muted a. *)
      List.for_all
        (fun u ->
          let expected =
            List.filter
              (fun (a, _) ->
                a <> u
                && List.mem (u, a) spec.follows
                && not (List.mem (u, feed_user a)
                          (List.map (fun (x, y) -> (x, feed_user y)) spec.mutes)))
              posts
            |> List.map (fun (a, id) -> (feed_user a, id))
            |> List.sort_uniq compare
          in
          let got =
            Wdl_feed.Feed.timeline t ~user:(feed_user u)
            |> List.map (fun (e : Wdl_feed.Feed.entry) -> (e.author, e.id))
            |> List.sort_uniq compare
          in
          expected = got)
        [ 0; 1; 2; 3 ])

let parser_total_test =
  QCheck.Test.make ~count:500 ~name:"the parser is total on arbitrary bytes"
    (QCheck.make
       ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 60)))
    (fun junk ->
      match Parser.program junk with Ok _ | Error _ -> true)

let tests =
  [
    feed_model_test;
    parser_total_test;
    QCheck.Test.make ~count:60 ~name:"random systems quiesce" spec_arb
      (fun spec ->
        let sys, _ = build spec in
        run_to_quiescence sys);
    QCheck.Test.make ~count:40 ~name:"final state is deterministic" spec_arb
      (fun spec ->
        let go () =
          let sys, peers = build spec in
          ignore (run_to_quiescence sys);
          dump peers
        in
        go () = go ());
    QCheck.Test.make ~count:40
      ~name:"simulated latency and jitter do not change the outcome" spec_arb
      (fun spec ->
        let base =
          let sys, peers = build spec in
          ignore (run_to_quiescence sys);
          dump peers
        in
        let sim =
          let transport =
            Wdl_net.Simnet.create ~seed:9 ~base_latency:2.0 ~jitter:1.5 ()
          in
          let sys, peers = build ~transport spec in
          ignore (run_to_quiescence sys);
          dump peers
        in
        base = sim);
    QCheck.Test.make ~count:40
      ~name:"a duplicating network does not change the outcome" spec_arb
      (fun spec ->
        let base =
          let sys, peers = build spec in
          ignore (run_to_quiescence sys);
          dump peers
        in
        let dup =
          let transport =
            Wdl_net.Simnet.create ~seed:3 ~duplicate:0.5 ()
          in
          let sys, peers = build ~transport spec in
          ignore (run_to_quiescence sys);
          dump peers
        in
        base = dup);
    QCheck.Test.make ~count:30
      ~name:"naive and semi-naive peers reach the same global state" spec_arb
      (fun spec ->
        let go strategy =
          let sys, peers = build ?strategy spec in
          ignore (run_to_quiescence sys);
          dump peers
        in
        go None = go (Some Wdl_eval.Fixpoint.Naive));
    QCheck.Test.make ~count:30
      ~name:"snapshot/restore after quiescence preserves every peer" spec_arb
      (fun spec ->
        let sys, peers = build spec in
        ignore (run_to_quiescence sys);
        List.for_all
          (fun p ->
            match Peer.restore (Peer.snapshot p) with
            | Error _ -> false
            | Ok p' ->
              ignore (Peer.stage p');
              List.for_all
                (fun rel ->
                  List.equal Fact.equal (Peer.query p rel) (Peer.query p' rel))
                (Peer.relation_names p))
          peers);
    QCheck.Test.make ~count:30
      ~name:"deleting all base facts drains derived state" spec_arb
      (fun spec ->
        let sys, peers = build spec in
        ignore (run_to_quiescence sys);
        (* Remove every original fact and selection. *)
        List.iter
          (fun (p, rel, v) ->
            ignore
              (Peer.delete (List.nth peers p)
                 (Fact.make ~rel ~peer:(peer_name p) [ Value.Int v ])))
          spec.facts;
        List.iter
          (fun (p, q) ->
            ignore
              (Peer.delete (List.nth peers p)
                 (Fact.make ~rel:"sel" ~peer:(peer_name p)
                    [ Value.String (peer_name q) ])))
          spec.selections;
        ignore (run_to_quiescence sys);
        (* All views empty; every DATA-DRIVEN delegation retracted. A
           rule whose body starts with a remote atom delegates
           unconditionally (the paper's Julia->Jules rule stays
           installed), so only the sel-driven residuals must drain.
           Extensional relations may retain messaged/inductive facts
           (updates persist, by design). *)
        List.for_all
          (fun p ->
            List.for_all
              (fun rel -> Peer.query p rel = [])
              [ "v"; "pulled"; "dyn"; "big"; "fresh"; "vv" ]
            && List.for_all
                 (fun (_, (r : Rule.t)) ->
                   Term.as_name r.Rule.head.Atom.rel <> Some "dyn")
                 (Peer.delegated_rules p))
          peers);
  ]

let suite = List.map QCheck_alcotest.to_alcotest tests
