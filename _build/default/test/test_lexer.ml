open Wdl_syntax

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let toks src = List.map fst (Lexer.tokenize src)

let suite =
  [
    tc "token inventory" (fun () ->
        check_bool "all tokens"
          (toks {|m $x 1 2.5 "s" true ext int not ( ) , @ ; :- := == != < <= > >= + - * /|}
          = Lexer.
              [ IDENT "m"; VAR "x"; INT 1; FLOAT 2.5; STRING "s"; BOOL true;
                KW_EXT; KW_INT; KW_NOT; LPAREN; RPAREN; COMMA; AT; SEMI;
                COLONDASH; ASSIGN; EQ2; NEQ; LT; LE; GT; GE; PLUS; MINUS;
                STAR; SLASH; EOF ]));
    tc "numbers: int, float, exponent, trailing dot" (fun () ->
        check_bool "forms"
          (toks "7 7. 7.5 7e2 7.5e-2 7E+1"
          = Lexer.
              [ INT 7; FLOAT 7.; FLOAT 7.5; FLOAT 700.; FLOAT 0.075; FLOAT 70.;
                EOF ]));
    tc "huge integer literal falls back to float" (fun () ->
        match toks "99999999999999999999999999" with
        | [ Lexer.FLOAT _; Lexer.EOF ] -> ()
        | _ -> Alcotest.fail "expected float fallback");
    tc "string escapes" (fun () ->
        check_bool "escapes"
          (toks {|"a\nb\tc\"d\\e\rf"|} = [ Lexer.STRING "a\nb\tc\"d\\e\rf"; Lexer.EOF ]));
    tc "comments of all three kinds" (fun () ->
        check_bool "stripped"
          (toks "1 // line\n2 # hash\n3 /* block\nstill */ 4"
          = Lexer.[ INT 1; INT 2; INT 3; INT 4; EOF ]));
    tc "division is not a comment" (fun () ->
        check_bool "slash" (toks "1 / 2" = Lexer.[ INT 1; SLASH; INT 2; EOF ]));
    tc "unicode identifiers" (fun () ->
        check_bool "accented" (toks "Émilien" = Lexer.[ IDENT "Émilien"; EOF ]));
    tc "positions: line and column" (fun () ->
        match Lexer.tokenize "m\n  $x" with
        | [ (Lexer.IDENT "m", p1); (Lexer.VAR "x", p2); (Lexer.EOF, _) ] ->
          check_int "line1" 1 p1.Lexer.line;
          check_int "col1" 1 p1.Lexer.col;
          check_int "line2" 2 p2.Lexer.line;
          check_int "col2" 3 p2.Lexer.col
        | _ -> Alcotest.fail "unexpected tokens");
    tc "errors carry positions" (fun () ->
        (try
           ignore (Lexer.tokenize "ok\n  \"unterminated");
           Alcotest.fail "expected error"
         with Lexer.Error (_, p) -> check_int "line" 2 p.Lexer.line);
        List.iter
          (fun src ->
            check_bool src
              (try ignore (Lexer.tokenize src); false with Lexer.Error _ -> true))
          [ "%"; "$"; "!x"; "/* open"; {|"bad \q"|} ]);
    tc "keywords only at full-word boundaries" (fun () ->
        check_bool "extra" (toks "extra" = Lexer.[ IDENT "extra"; EOF ]);
        check_bool "notx" (toks "notx" = Lexer.[ IDENT "notx"; EOF ]);
        check_bool "interned" (toks "internal" = Lexer.[ IDENT "internal"; EOF ]));
  ]
