open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true

let rule = Parser.parse_rule "a@p($x) :- b@p($x)"
let fact = Fact.make ~rel:"m" ~peer:"p" [ Value.String "payload" ]

let suite =
  [
    tc "is_empty: only a no-change message is empty" (fun () ->
        check_bool "empty" (Message.is_empty (Message.make ~src:"a" ~dst:"b" ~stage:1 ()));
        check_bool "empty batch is a change"
          (not (Message.is_empty
                  (Message.make ~src:"a" ~dst:"b" ~stage:1 ~facts:(Some []) ())));
        check_bool "installs"
          (not (Message.is_empty
                  (Message.make ~src:"a" ~dst:"b" ~stage:1 ~installs:[ rule ] ())));
        check_bool "retracts"
          (not (Message.is_empty
                  (Message.make ~src:"a" ~dst:"b" ~stage:1 ~retracts:[ rule ] ()))));
    tc "size grows with content" (fun () ->
        let base = Message.size (Message.make ~src:"a" ~dst:"b" ~stage:1 ()) in
        let with_fact =
          Message.size (Message.make ~src:"a" ~dst:"b" ~stage:1 ~facts:(Some [ fact ]) ())
        in
        let with_rule =
          Message.size (Message.make ~src:"a" ~dst:"b" ~stage:1 ~installs:[ rule ] ())
        in
        check_bool "fact adds" (with_fact > base);
        check_bool "rule adds" (with_rule > base));
    tc "pp renders all sections" (fun () ->
        let m =
          Message.make ~src:"a" ~dst:"b" ~stage:4 ~facts:(Some [ fact ])
            ~installs:[ rule ] ~retracts:[ rule ] ()
        in
        let s = Format.asprintf "%a" Message.pp m in
        List.iter
          (fun needle ->
            check_bool needle
              (Str_helper.contains s needle))
          [ "a -> b"; "stage 4"; "fact"; "install"; "retract" ]);
  ]
