(* Cross-cutting coverage: adapters, counters, small contracts. *)
open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let suite =
  [
    tc "wire transport adapter drops malformed frames" (fun () ->
        let bytes = Wdl_net.Inmem.create () in
        let msgs = Wire.transport bytes in
        bytes.Wdl_net.Transport.send ~src:"a" ~dst:"b" "not a frame at all";
        bytes.Wdl_net.Transport.send ~src:"a" ~dst:"b"
          (Wire.encode (Message.make ~src:"a" ~dst:"b" ~stage:1 ~facts:(Some []) ()));
        let delivered = msgs.Wdl_net.Transport.drain "b" in
        check_int "only the valid one" 1 (List.length delivered));
    tc "httpd turns handler exceptions into 500s" (fun () ->
        let server = Wdl_web.Httpd.start (fun _ -> failwith "boom") in
        Fun.protect
          ~finally:(fun () -> Wdl_web.Httpd.stop server)
          (fun () ->
            let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () -> Unix.close sock)
              (fun () ->
                Unix.connect sock
                  (Unix.ADDR_INET
                     (Unix.inet_addr_loopback, Wdl_web.Httpd.port server));
                let req = "GET / HTTP/1.1\r\nHost: x\r\n\r\n" in
                ignore (Unix.write_substring sock req 0 (String.length req));
                Unix.shutdown sock Unix.SHUTDOWN_SEND;
                ignore (Wdl_web.Httpd.poll server);
                let buf = Bytes.create 4096 in
                let n = Unix.read sock buf 0 4096 in
                let resp = Bytes.sub_string buf 0 n in
                check_bool "500" (Str_helper.contains resp "500"))));
    tc "system counters: rounds, sent, dropped" (fun () ->
        let sys = System.create () in
        let p = System.add_peer sys "p" in
        ok' (Peer.load_string p "a@p(1); out@ghost($x) :- a@p($x);");
        check_int "no rounds yet" 0 (System.rounds sys);
        ignore (ok' (System.run sys));
        check_bool "rounds advanced" (System.rounds sys > 0);
        check_int "nothing actually sent" 0 (System.messages_sent sys);
        check_int "ghost drop counted" 1 (System.messages_dropped sys));
    tc "adopt_peer refuses duplicates" (fun () ->
        let sys = System.create () in
        ignore (System.add_peer sys "p");
        let stray = Peer.create "p" in
        check_bool "raises"
          (try System.adopt_peer sys stray; false
           with Invalid_argument _ -> true));
    tc "simnet partition control is symmetric and idempotent" (fun () ->
        let _t, net = Wdl_net.Simnet.create_with_control () in
        Wdl_net.Simnet.partition net ~between:"a" ~and_:"b";
        Wdl_net.Simnet.partition net ~between:"b" ~and_:"a";
        check_bool "down both ways"
          (Wdl_net.Simnet.partitioned net ~between:"b" ~and_:"a");
        Wdl_net.Simnet.heal net ~between:"a" ~and_:"b";
        Wdl_net.Simnet.heal net ~between:"a" ~and_:"b";
        check_bool "up" (not (Wdl_net.Simnet.partitioned net ~between:"a" ~and_:"b")));
    tc "querying a view before any stage ran is empty, not an error" (fun () ->
        let p = Peer.create "p" in
        ok' (Peer.load_string p "int v@p(x); a@p(1); v@p($x) :- a@p($x);");
        check_int "empty" 0 (List.length (Peer.query p "v"));
        ignore (Peer.stage p);
        check_int "filled" 1 (List.length (Peer.query p "v")));
    tc "receive marks work; stage consumes it" (fun () ->
        let p = Peer.create "p" in
        ignore (Peer.stage p);
        check_bool "idle" (not (Peer.has_work p));
        Peer.receive p
          (Message.make ~src:"q" ~dst:"p" ~stage:1
             ~facts:(Some [ Fact.make ~rel:"m" ~peer:"p" [ Value.Int 1 ] ])
             ());
        check_bool "work" (Peer.has_work p);
        ignore (Peer.stage p);
        check_bool "consumed" (not (Peer.has_work p));
        check_int "fact landed" 1 (List.length (Peer.query p "m")));
    tc "classify describe covers every head/body shape" (fun () ->
        List.iter
          (fun (src, needle) ->
            let c =
              Classify.classify ~self:"p"
                ~intensional:(fun r -> r = "v")
                (Parser.parse_rule src)
            in
            check_bool needle (Str_helper.contains (Classify.describe c) needle))
          [ ("v@p($x) :- a@p($x)", "view rule");
            ("b@p($x) :- a@p($x)", "update rule");
            ("out@q($x) :- a@p($x)", "messaging rule");
            ("$r@$q($x) :- n@p($r), m@p($q), a@p($x)", "dynamic head");
            ("v@p($x) :- a@p($x), b@q($x)", "delegates at literal 2");
            ("v@p($x) :- n@p($a), b@$a($x)", "dynamic from literal 2") ]);
    tc "decl kinds print and parse" (fun () ->
        let p = Parser.parse_program "ext a@p(); int b@p(x);" in
        let printed = Format.asprintf "%a" Program.pp p in
        check_bool "roundtrip"
          (match Parser.program printed with
          | Ok p' -> List.length p' = 2
          | Error _ -> false));
    tc "peer stats count the whole lifecycle" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys "Jules" in
        let emilien = System.add_peer sys "Emilien" in
        ok'
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i); sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok' (Peer.load_string emilien "ext pics@Emilien(i); pics@Emilien(1);");
        ignore (ok' (System.run sys));
        let js = Peer.stats jules and es = Peer.stats emilien in
        check_bool "jules staged" (js.Peer.stages > 0);
        check_bool "jules sent the delegation" (js.Peer.messages_sent > 0);
        check_int "emilien installed once" 1 es.Peer.delegations_installed;
        check_bool "emilien received" (es.Peer.messages_received > 0);
        check_bool "derivations counted" (es.Peer.derivations > 0);
        check_int "no errors" 0 (js.Peer.runtime_errors + es.Peer.runtime_errors);
        (* Retraction counted too. *)
        ok'
          (Peer.delete jules
             (Fact.make ~rel:"sel" ~peer:"Jules" [ Value.String "Emilien" ]));
        ignore (ok' (System.run sys));
        check_int "retracted" 1 (Peer.stats emilien).Peer.delegations_retracted;
        check_bool "pp_stats prints"
          (String.length (Format.asprintf "%a" Peer.pp_stats js) > 0));
    tc "message wire frames include unicode peers" (fun () ->
        let m =
          Message.make ~src:"Émilien" ~dst:"Jules" ~stage:1
            ~facts:(Some [ Fact.make ~rel:"pictures" ~peer:"Jules" [ Value.String "café" ] ])
            ()
        in
        match Wire.decode (Wire.encode m) with
        | Ok m' -> Alcotest.check Alcotest.string "src" "Émilien" m'.Message.src
        | Error e -> Alcotest.fail e);
  ]
