open Wdl_net

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let suite =
  [
    tc "inmem: immediate FIFO delivery" (fun () ->
        let t = Inmem.create () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        t.Transport.send ~src:"a" ~dst:"b" 2;
        Alcotest.check (Alcotest.list Alcotest.int) "fifo" [ 1; 2 ]
          (t.Transport.drain "b");
        check_int "empty" 0 (List.length (t.Transport.drain "b")));
    tc "inmem: per-destination inboxes" (fun () ->
        let t = Inmem.create () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        t.Transport.send ~src:"a" ~dst:"c" 2;
        check_int "b" 1 (List.length (t.Transport.drain "b"));
        check_int "c" 1 (List.length (t.Transport.drain "c")));
    tc "inmem: stats and sizer" (fun () ->
        let t = Inmem.create ~sizer:(fun n -> n) () in
        t.Transport.send ~src:"a" ~dst:"b" 10;
        t.Transport.send ~src:"a" ~dst:"b" 5;
        let s = t.Transport.stats () in
        check_int "sent" 2 s.Netstats.sent;
        check_int "bytes" 15 s.Netstats.bytes;
        ignore (t.Transport.drain "b");
        check_int "delivered" 2 (t.Transport.stats ()).Netstats.delivered);
    tc "inmem: pending counts undrained messages" (fun () ->
        let t = Inmem.create () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        check_int "one" 1 (t.Transport.pending ());
        ignore (t.Transport.drain "b");
        check_int "zero" 0 (t.Transport.pending ()));
    tc "simnet: nothing delivered before latency elapses" (fun () ->
        let t = Simnet.create ~jitter:0. ~base_latency:2.0 () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        check_int "t0" 0 (List.length (t.Transport.drain "b"));
        t.Transport.advance 1.0;
        check_int "t1" 0 (List.length (t.Transport.drain "b"));
        t.Transport.advance 1.0;
        check_int "t2" 1 (List.length (t.Transport.drain "b")));
    tc "simnet: reflexive links are instantaneous" (fun () ->
        let t = Simnet.create ~base_latency:5.0 () in
        t.Transport.send ~src:"a" ~dst:"a" 1;
        check_int "self" 1 (List.length (t.Transport.drain "a")));
    tc "simnet: deterministic under a fixed seed" (fun () ->
        let run () =
          let t = Simnet.create ~seed:7 ~base_latency:1.0 ~jitter:0.5 () in
          for i = 0 to 9 do
            t.Transport.send ~src:"a" ~dst:"b" i
          done;
          t.Transport.advance 1.5;
          t.Transport.drain "b"
        in
        check_bool "same order" (run () = run ()));
    tc "simnet: per-link latency function" (fun () ->
        let t =
          Simnet.create ~jitter:0.
            ~latency:(fun ~src ~dst:_ -> if src = "far" then 10. else 1.)
            ()
        in
        t.Transport.send ~src:"far" ~dst:"b" 1;
        t.Transport.send ~src:"near" ~dst:"b" 2;
        t.Transport.advance 1.0;
        Alcotest.check (Alcotest.list Alcotest.int) "near only" [ 2 ]
          (t.Transport.drain "b");
        t.Transport.advance 9.0;
        Alcotest.check (Alcotest.list Alcotest.int) "far arrives" [ 1 ]
          (t.Transport.drain "b"));
    tc "simnet: equal stamps preserve send order" (fun () ->
        let t = Simnet.create ~jitter:0. ~base_latency:1.0 () in
        t.Transport.send ~src:"a" ~dst:"b" 1;
        t.Transport.send ~src:"a" ~dst:"b" 2;
        t.Transport.advance 1.0;
        Alcotest.check (Alcotest.list Alcotest.int) "fifo" [ 1; 2 ]
          (t.Transport.drain "b"));
  ]
