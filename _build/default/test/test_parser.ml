open Wdl_syntax

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true

let roundtrip_program src =
  let p = Parser.parse_program src in
  let printed = Format.asprintf "%a" Program.pp p in
  let p' = Parser.parse_program printed in
  check_bool ("round-trip: " ^ src)
    (List.equal
       (fun a b ->
         match a, b with
         | Program.Decl x, Program.Decl y -> Decl.equal x y
         | Program.Fact x, Program.Fact y -> Fact.equal x y
         | Program.Rule x, Program.Rule y -> Rule.equal x y
         | _, _ -> false)
       p p')

let fails src =
  match Parser.program src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail ("expected parse error: " ^ src)

let suite =
  [
    tc "facts with every value type" (fun () ->
        let f = Parser.parse_fact {|m@p(1, -2, 3.5, -0.25, "s", sym, true, false)|} in
        Alcotest.check Alcotest.int "arity" 8 (Fact.arity f);
        check_bool "neg int" (List.nth f.Fact.args 1 = Value.Int (-2));
        check_bool "neg float" (List.nth f.Fact.args 3 = Value.Float (-0.25));
        check_bool "bare symbol" (List.nth f.Fact.args 5 = Value.String "sym"));
    tc "unicode peer names" (fun () ->
        let f = Parser.parse_fact {|pictures@Émilien(32, "sea.jpg")|} in
        Alcotest.check Alcotest.string "peer" "Émilien" f.Fact.peer);
    tc "quoted names in relation/peer position" (fun () ->
        let f = Parser.parse_fact {|"my rel"@"peer 1"(1)|} in
        Alcotest.check Alcotest.string "rel" "my rel" f.Fact.rel;
        Alcotest.check Alcotest.string "peer" "peer 1" f.Fact.peer);
    tc "the paper's rules parse" (fun () ->
        List.iter
          (fun src -> ignore (Parser.parse_rule src))
          [
            {|attendeePictures@Jules($id, $name, $owner, $data) :-
                selectedAttendee@Jules($attendee),
                pictures@$attendee($id, $name, $owner, $data)|};
            {|$protocol@$attendee($attendee, $name, $id, $owner) :-
                selectedAttendee@Jules($attendee),
                communicate@$attendee($protocol),
                selectedPictures@Jules($name, $id, $owner)|};
            {|pictures@SigmodFB($id, $name, $owner, $data) :-
                pictures@sigmod($id, $name, $owner, $data),
                authorized@$owner("Facebook", $id, $owner)|};
            {|attendeePictures@Jules($id, $name, $owner, $data) :-
                selectedAttendee@Jules($attendee),
                pictures@$attendee($id, $name, $owner, $data),
                rate@$owner($id, 5)|};
          ]);
    tc "declarations" (fun () ->
        let p =
          Parser.parse_program
            "ext pictures@Jules(id, name); int view@Jules(id);"
        in
        match Program.decls p with
        | [ d1; d2 ] ->
          check_bool "ext" (d1.Decl.kind = Decl.Extensional);
          check_bool "int" (d2.Decl.kind = Decl.Intensional);
          Alcotest.check (Alcotest.list Alcotest.string) "cols"
            [ "id"; "name" ] d1.Decl.cols
        | _ -> Alcotest.fail "expected two declarations");
    tc "comments and optional semicolons" (fun () ->
        let p =
          Parser.parse_program
            {|// line comment
              # hash comment
              m@p(1) /* block
              comment */ ;;
              m@p(2)|}
        in
        Alcotest.check Alcotest.int "facts" 2 (List.length (Program.facts p)));
    tc "builtin literals" (fun () ->
        let r =
          Parser.parse_rule
            "out@p($x, $y) :- a@p($x), $y := $x * 2 + 1, $y > 5, $y != 7, not b@p($y)"
        in
        Alcotest.check Alcotest.int "body size" 5 (List.length r.Rule.body));
    tc "single = accepted as equality" (fun () ->
        match Parser.parse_literal "$x = 3" with
        | Literal.Cmp (Literal.Eq, _, _) -> ()
        | _ -> Alcotest.fail "expected equality");
    tc "empty body is a parse error" (fun () ->
        fails "m@p(1) :- ;");
    tc "non-ground facts rejected" (fun () -> fails "m@p($x);");
    tc "errors carry positions" (fun () ->
        match Parser.program "m@p(1);\nm@(2);" with
        | Error msg -> check_bool "line 2" (String.length msg > 0 &&
                                            String.sub msg 0 6 = "line 2")
        | Ok _ -> Alcotest.fail "expected error");
    tc "lexer errors" (fun () ->
        fails {|m@p("unterminated)|};
        fails {|m@p("bad \q escape")|};
        fails "m@p(1) %";
        fails "/* unterminated");
    tc "trailing garbage rejected" (fun () -> fails "m@p(1); )");
    tc "empty string name rejected" (fun () -> fails {|""@p(1)|});
    tc "program round-trips" (fun () ->
        List.iter roundtrip_program
          [
            "ext pictures@Jules(id, name, owner, data);";
            {|pictures@sigmod(32, "sea.jpg", "Émilien", "100");|};
            {|v@p($x) :- a@p($x), not b@p($x), $x > 1, $y := $x + 1;|};
            {|$r@$q($x) :- names@p($r), peers@p($q), data@p($x);|};
            {|m@p(-5, -2.5, true, "q\"uote");|};
          ]);
    tc "keywords cannot be bare names" (fun () ->
        fails "ext@p(1)";
        (* but quoted they can *)
        let f = Parser.parse_fact {|"ext"@p(1)|} in
        Alcotest.check Alcotest.string "rel" "ext" f.Fact.rel);
    tc "floats: forms" (fun () ->
        let f = Parser.parse_fact "m@p(1., 2.5, 1e3, 2.5e-2)" in
        check_bool "1." (List.nth f.Fact.args 0 = Value.Float 1.);
        check_bool "1e3" (List.nth f.Fact.args 2 = Value.Float 1000.);
        check_bool "2.5e-2" (List.nth f.Fact.args 3 = Value.Float 0.025));
    tc "parse_atom and parse_literal entry points" (fun () ->
        let a = Parser.parse_atom "m@$p($x)" in
        check_bool "peer var" (Term.is_var a.Atom.peer);
        match Parser.parse_literal "not m@p(1)" with
        | Literal.Neg _ -> ()
        | _ -> Alcotest.fail "expected negation");
  ]
