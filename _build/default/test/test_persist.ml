(* Snapshot / restore: a peer survives a restart. *)
open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let suite =
  [
    tc "snapshot round-trips a plain peer" (fun () ->
        let p = Peer.create "p" in
        ok'
          (Peer.load_string p
             {|ext m@p(a, b); int v@p(a);
               m@p(1, "x"); m@p(2, "Émilien");
               v@p($a) :- m@p($a, $b);|});
        ignore (Peer.stage p);
        let p' = ok' (Peer.restore (Peer.snapshot p)) in
        check_int "stage" (Peer.stage_number p) (Peer.stage_number p');
        check_bool "facts"
          (List.equal Fact.equal (Peer.query p "m") (Peer.query p' "m"));
        check_int "rules" 1 (List.length (Peer.rules p'));
        (* Views recompute on the first stage after restart. *)
        check_bool "needs a stage" (Peer.has_work p');
        ignore (Peer.stage p');
        check_int "view recomputed" 2 (List.length (Peer.query p' "v")));
    tc "snapshot is idempotent" (fun () ->
        let p = Peer.create "p" in
        ok' (Peer.load_string p "ext m@p(a); m@p(1); out@q($x) :- m@p($x);");
        ignore (Peer.stage p);
        let s1 = Peer.snapshot p in
        let s2 = Peer.snapshot (ok' (Peer.restore s1)) in
        Alcotest.check Alcotest.string "stable" s1 s2);
    tc "delegations and their origins survive" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys "Jules" in
        let emilien = System.add_peer sys "Emilien" in
        ok'
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i); sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok' (Peer.load_string emilien "ext pics@Emilien(i); pics@Emilien(1);");
        ignore (ok' (System.run sys));
        let emilien' = ok' (Peer.restore (Peer.snapshot emilien)) in
        (match Peer.delegated_rules emilien' with
        | [ (src, _) ] -> Alcotest.check Alcotest.string "origin" "Jules" src
        | _ -> Alcotest.fail "expected one delegation");
        (* The restarted peer still serves the delegation. *)
        ignore (Peer.stage emilien');
        check_bool "still derives for Jules" true);
    tc "remote view caches survive (views stay full after restart)" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys "Jules" in
        let emilien = System.add_peer sys "Emilien" in
        ok'
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i); sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok'
          (Peer.load_string emilien
             "ext pics@Emilien(i); pics@Emilien(1); pics@Emilien(2);");
        ignore (ok' (System.run sys));
        check_int "before" 2 (List.length (Peer.query jules "view"));
        let jules' = ok' (Peer.restore (Peer.snapshot jules)) in
        ignore (Peer.stage jules');
        check_int "after restart, no network needed" 2
          (List.length (Peer.query jules' "view")));
    tc "pending queue and ACL survive" (fun () ->
        let p = Peer.create ~policy:Acl.Closed "p" in
        Acl.trust (Peer.acl p) "sigmod";
        Acl.untrust (Peer.acl p) "mallory";
        let rule = Parser.parse_rule "a@p($x) :- b@p($x)" in
        Peer.receive p
          (Message.make ~src:"stranger" ~dst:"p" ~stage:1 ~installs:[ rule ] ());
        ignore (Peer.stage p);
        check_int "pending before" 1 (List.length (Peer.pending_delegations p));
        let p' = ok' (Peer.restore (Peer.snapshot p)) in
        check_int "pending after" 1 (List.length (Peer.pending_delegations p'));
        check_bool "policy" (Acl.policy (Peer.acl p') = Acl.Closed);
        check_bool "trusted kept" (Acl.trusted (Peer.acl p') "sigmod");
        check_bool "untrusted kept" (not (Acl.trusted (Peer.acl p') "mallory"));
        check_bool "accept still works"
          (Peer.accept_delegation p' ~src:"stranger" rule));
    tc "restored peer does not spuriously re-send unchanged batches" (fun () ->
        let p = Peer.create "p" in
        ok' (Peer.load_string p "ext m@p(a); m@p(1); out@q($x) :- m@p($x);");
        let first = Peer.stage p in
        check_int "first stage sends" 1 (List.length first);
        let p' = ok' (Peer.restore (Peer.snapshot p)) in
        let resent = Peer.stage p' in
        check_int "restart sends nothing new" 0 (List.length resent));
    tc "restore rejects corrupt input" (fun () ->
        check_bool "garbage" (Result.is_error (Peer.restore "garbage"));
        check_bool "no header" (Result.is_error (Peer.restore "m@p(1);"));
        let p = Peer.create "p" in
        ok' (Peer.load_string p "m@p(1);");
        let s = Peer.snapshot p in
        let truncated = String.sub s 0 (String.length s - 8) in
        check_bool "truncated" (Result.is_error (Peer.restore truncated)));
  ]
