(* Why-provenance: the §2 access-control model keeps provenance of
   derived relations; Peer.explain exposes it. *)
open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let tracked src =
  let p = Peer.create "p" in
  Peer.set_track_provenance p true;
  ok' (Peer.load_string p src);
  ignore (Peer.stage p);
  p

let fact rel args = Fact.make ~rel ~peer:"p" args

let suite =
  [
    tc "stored facts explain as Base" (fun () ->
        let p = tracked "m@p(1);" in
        check_bool "base" (Peer.explain p (fact "m" [ Value.Int 1 ]) = Peer.Base));
    tc "view facts explain with rule and premises" (fun () ->
        let p =
          tracked
            "int v@p(x); a@p(1); b@p(1); v@p($x) :- a@p($x), b@p($x);"
        in
        match Peer.explain p (fact "v" [ Value.Int 1 ]) with
        | Peer.Derived d ->
          check_int "two premises" 2 (List.length d.Wdl_eval.Fixpoint.premises);
          check_bool "premise a"
            (List.exists (Fact.equal (fact "a" [ Value.Int 1 ]))
               d.Wdl_eval.Fixpoint.premises)
        | _ -> Alcotest.fail "expected Derived");
    tc "recursive derivations chain through explain" (fun () ->
        let p =
          tracked
            {|int tc@p(x, y); e@p(1,2); e@p(2,3);
              tc@p($x,$y) :- e@p($x,$y);
              tc@p($x,$z) :- tc@p($x,$y), e@p($y,$z);|}
        in
        match Peer.explain p (fact "tc" [ Value.Int 1; Value.Int 3 ]) with
        | Peer.Derived d ->
          (* one premise is itself a tc fact, explainable in turn *)
          let tc_premise =
            List.find_opt
              (fun (f : Fact.t) -> f.Fact.rel = "tc")
              d.Wdl_eval.Fixpoint.premises
          in
          (match tc_premise with
          | Some f -> (
            match Peer.explain p f with
            | Peer.Derived _ -> ()
            | _ -> Alcotest.fail "premise not explained")
          | None -> Alcotest.fail "no tc premise")
        | _ -> Alcotest.fail "expected Derived");
    tc "explain_to_string renders a tree" (fun () ->
        let p =
          tracked
            "int v@p(x); a@p(1); v@p($x) :- a@p($x);"
        in
        let s = Peer.explain_to_string p (fact "v" [ Value.Int 1 ]) in
        check_bool "mentions rule" (Str_helper.contains s "v@p($x) :- a@p($x)");
        check_bool "mentions premise" (Str_helper.contains s "a@p(1) [stored]"));
    tc "explain_to_string is cycle-safe" (fun () ->
        (* mutually recursive views over the same tuples *)
        let p =
          tracked
            {|int a@p(x); int b@p(x); base@p(1);
              a@p($x) :- base@p($x);
              a@p($x) :- b@p($x);
              b@p($x) :- a@p($x);|}
        in
        let s =
          Peer.explain_to_string ~max_depth:30 p (fact "a" [ Value.Int 1 ])
        in
        check_bool "terminates" (String.length s > 0));
    tc "remote cached facts explain as Received" (fun () ->
        let sys = System.create () in
        let jules = System.add_peer sys "Jules" in
        Peer.set_track_provenance jules true;
        let emilien = System.add_peer sys "Emilien" in
        ok'
          (Peer.load_string jules
             {|ext sel@Jules(a); int view@Jules(i); sel@Jules("Emilien");
               view@Jules($i) :- sel@Jules($a), pics@$a($i);|});
        ok' (Peer.load_string emilien "ext pics@Emilien(i); pics@Emilien(7);");
        ignore (ok' (System.run sys));
        (match
           Peer.explain jules (Fact.make ~rel:"view" ~peer:"Jules" [ Value.Int 7 ])
         with
        | Peer.Received [ "Emilien" ] -> ()
        | Peer.Received l ->
          Alcotest.fail ("unexpected sources " ^ String.concat "," l)
        | Peer.Base | Peer.Derived _ | Peer.Unknown ->
          Alcotest.fail "expected Received"));
    tc "unknown facts explain as Unknown" (fun () ->
        let p = tracked "m@p(1);" in
        check_bool "unknown" (Peer.explain p (fact "m" [ Value.Int 99 ]) = Peer.Unknown);
        check_bool "other peer"
          (Peer.explain p (Fact.make ~rel:"m" ~peer:"q" [ Value.Int 1 ]) = Peer.Unknown));
    tc "tracking off records nothing" (fun () ->
        let p = Peer.create "p" in
        ok' (Peer.load_string p "int v@p(x); a@p(1); v@p($x) :- a@p($x);");
        ignore (Peer.stage p);
        check_bool "no derivation entry"
          (Peer.explain p (fact "v" [ Value.Int 1 ]) = Peer.Unknown));
    tc "aggregate facts carry the rule but no premises" (fun () ->
        let p =
          tracked
            "int total@p(n); x@p(1); x@p(2); total@p(count($i)) :- x@p($i);"
        in
        match Peer.explain p (fact "total" [ Value.Int 2 ]) with
        | Peer.Derived d ->
          check_bool "agg rule" (Rule.is_aggregate d.Wdl_eval.Fixpoint.rule);
          check_int "no premises" 0 (List.length d.Wdl_eval.Fixpoint.premises)
        | _ -> Alcotest.fail "expected Derived");
  ]
