(* The §4 Query tab: ad-hoc queries with Peer.ask. *)
open Wdl_syntax
open Webdamlog

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg
let ok' = function Ok v -> v | Error e -> Alcotest.fail e

let peer_with src =
  let p = Peer.create "p" in
  ok' (Peer.load_string p src);
  ignore (Peer.stage p);
  p

let suite =
  [
    tc "simple selection" (fun () ->
        let p = peer_with "n@p(1); n@p(5); n@p(10);" in
        let a = ok' (Peer.ask p "q@p($x) :- n@p($x), $x > 2") in
        Alcotest.check (Alcotest.list Alcotest.string) "columns" [ "$x" ] a.Peer.columns;
        check_int "rows" 2 (List.length a.Peer.rows));
    tc "joins across the peer's own relations" (fun () ->
        let p = peer_with {|pic@p(1, "a.jpg"); pic@p(2, "b.jpg"); rate@p(2, 5);|} in
        let a = ok' (Peer.ask p "q@p($n) :- pic@p($i, $n), rate@p($i, 5)") in
        check_bool "b.jpg" (a.Peer.rows = [ [ Value.String "b.jpg" ] ]));
    tc "queries see the program's views" (fun () ->
        let p =
          peer_with "int v@p(x); base@p(1); base@p(2); v@p($x) :- base@p($x);"
        in
        let a = ok' (Peer.ask p "q@p($x) :- v@p($x)") in
        check_int "rows" 2 (List.length a.Peer.rows));
    tc "queries never mutate live state" (fun () ->
        let p = peer_with "base@p(1);" in
        let before = List.length (Peer.relation_names p) in
        ignore (ok' (Peer.ask p "q@p($x) :- base@p($x)"));
        check_int "relations unchanged" before (List.length (Peer.relation_names p));
        check_bool "no new work" (not (Peer.has_work p)));
    tc "recursive ad-hoc query" (fun () ->
        let p = peer_with "e@p(1,2); e@p(2,3); e@p(3,4);" in
        (* The query head itself can be recursive through the program's
           views only; plain one-shot recursion needs a view. Check a
           two-hop join instead. *)
        let a = ok' (Peer.ask p "q@p($x, $z) :- e@p($x, $y), e@p($y, $z)") in
        check_int "two-hop pairs" 2 (List.length a.Peer.rows));
    tc "remote parts are reported, not evaluated" (fun () ->
        let p = peer_with {|sel@p("q");|} in
        let a = ok' (Peer.ask p "q@p($x) :- sel@p($a), data@$a($x)") in
        check_int "no rows" 0 (List.length a.Peer.rows);
        check_int "one delegation needed" 1 (List.length a.Peer.requires_delegation));
    tc "constants in the query head are echoed" (fun () ->
        let p = peer_with "n@p(1);" in
        let a = ok' (Peer.ask p {|q@p("label", $x) :- n@p($x)|}) in
        check_bool "row" (a.Peer.rows = [ [ Value.String "label"; Value.Int 1 ] ]));
    tc "unsafe queries are rejected" (fun () ->
        let p = peer_with "n@p(1);" in
        check_bool "rejected" (Result.is_error (Peer.ask p "q@p($y) :- n@p($x)")));
    tc "parse errors are reported" (fun () ->
        let p = peer_with "n@p(1);" in
        check_bool "rejected" (Result.is_error (Peer.ask p "q@p($x) :- ")));
    tc "ad-hoc aggregate queries" (fun () ->
        let p = peer_with "pics@p(1, \"a\"); pics@p(2, \"a\"); pics@p(3, \"b\");" in
        let a = ok' (Peer.ask p "q@p($o, count($i)) :- pics@p($i, $o)") in
        check_bool "grouped counts"
          (a.Peer.rows
          = [ [ Value.String "a"; Value.Int 2 ]; [ Value.String "b"; Value.Int 1 ] ]));
    tc "duplicate answers collapse" (fun () ->
        let p = peer_with "e@p(1, 10); e@p(2, 10);" in
        let a = ok' (Peer.ask p "q@p($y) :- e@p($x, $y)") in
        check_int "one row" 1 (List.length a.Peer.rows));
  ]
