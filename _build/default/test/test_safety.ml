open Wdl_syntax

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true

let safe src =
  match Safety.check_rule (Parser.parse_rule src) with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (src ^ ": " ^ Safety.errors_to_string errs)

let unsafe src =
  match Safety.check_rule (Parser.parse_rule src) with
  | Ok () -> Alcotest.fail ("expected unsafe: " ^ src)
  | Error errs -> errs

let suite =
  [
    tc "the paper's rules are safe" (fun () ->
        safe
          {|attendeePictures@Jules($id, $n, $o, $d) :-
              selectedAttendee@Jules($a), pictures@$a($id, $n, $o, $d)|};
        safe
          {|$protocol@$attendee($attendee, $n, $id, $o) :-
              selectedAttendee@Jules($attendee),
              communicate@$attendee($protocol),
              selectedPictures@Jules($n, $id, $o)|};
        safe
          {|pictures@SigmodFB($id, $n, $o, $d) :-
              pictures@sigmod($id, $n, $o, $d),
              authorized@$o("Facebook", $id, $o)|});
    tc "unbound head variable" (fun () ->
        match unsafe "out@p($x, $y) :- a@p($x)" with
        | [ Safety.Unbound_in_head "y" ] -> ()
        | errs -> Alcotest.fail (Safety.errors_to_string errs));
    tc "peer variable must be bound before use" (fun () ->
        match unsafe "out@p($x) :- pictures@$a($x), selected@p($a)" with
        | Safety.Unbound_name_var ("a", _) :: _ -> ()
        | errs -> Alcotest.fail (Safety.errors_to_string errs));
    tc "order matters: swapping body atoms fixes it" (fun () ->
        safe "out@p($x) :- selected@p($a), pictures@$a($x)");
    tc "relation variable must be bound before use" (fun () ->
        match unsafe "out@p($x) :- $r@p($x)" with
        | Safety.Unbound_name_var ("r", _) :: _ -> ()
        | errs -> Alcotest.fail (Safety.errors_to_string errs));
    tc "negated atoms need fully bound variables" (fun () ->
        (match unsafe "out@p($x) :- a@p($x), not b@p($y)" with
        | Safety.Unbound_in_negation ("y", _) :: _ -> ()
        | errs -> Alcotest.fail (Safety.errors_to_string errs));
        safe "out@p($x) :- a@p($x), not b@p($x)");
    tc "builtins need bound variables" (fun () ->
        (match unsafe "out@p($x) :- a@p($x), $y > 1" with
        | Safety.Unbound_in_builtin ("y", _) :: _ -> ()
        | errs -> Alcotest.fail (Safety.errors_to_string errs));
        safe "out@p($x) :- a@p($x), $x > 1");
    tc "assignment binds; rebinding rejected" (fun () ->
        safe "out@p($y) :- a@p($x), $y := $x + 1";
        match unsafe "out@p($x) :- a@p($x), $x := 1" with
        | Safety.Rebound_assignment ("x", _) :: _ -> ()
        | errs -> Alcotest.fail (Safety.errors_to_string errs));
    tc "assignment can feed later atoms" (fun () ->
        safe "out@p($z) :- a@p($x), $y := $x + 1, b@p($y, $z)");
    tc "non-name constants in name position" (fun () ->
        let rule =
          Rule.make
            ~head:(Atom.make ~rel:(Term.Const (Value.Int 1)) ~peer:(Term.str "p") [])
            ~body:[ Literal.Pos (Atom.app "a" "p" []) ]
        in
        match Safety.check_rule rule with
        | Error (Safety.Invalid_name_constant (Value.Int 1, _) :: _) -> ()
        | Error errs -> Alcotest.fail (Safety.errors_to_string errs)
        | Ok () -> Alcotest.fail "expected invalid name");
    tc "head peer variable bound by body is fine" (fun () ->
        safe "m@$q($x) :- peers@p($q), a@p($x)");
    tc "check_program aggregates errors in order" (fun () ->
        let p =
          Parser.parse_program
            "ok@p(1); bad@p($x) :- a@p($y); worse@$q() :- a@p($x);"
        in
        match Safety.check_program p with
        | Error errs -> check_bool "several" (List.length errs >= 2)
        | Ok () -> Alcotest.fail "expected errors");
  ]
