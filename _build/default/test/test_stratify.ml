open Wdl_syntax
open Wdl_eval

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let check_int msg = Alcotest.check Alcotest.int msg

let rules srcs = List.map Parser.parse_rule srcs

let compute ?(intensional = fun _ -> true) srcs =
  Stratify.compute ~self:"p" ~intensional (rules srcs)

let strata_count = function
  | Ok { Stratify.strata } -> Array.length strata
  | Error e -> Alcotest.fail (Format.asprintf "%a" Stratify.pp_error e)

let suite =
  [
    tc "positive recursion stays in one stratum" (fun () ->
        check_int "strata" 1
          (strata_count
             (compute
                [ "tc@p($x,$y) :- edge@p($x,$y)";
                  "tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z)" ]
                ~intensional:(fun r -> r = "tc"))));
    tc "negation forces a new stratum" (fun () ->
        let r =
          compute
            ~intensional:(fun r -> r = "a" || r = "b")
            [ "a@p($x) :- base@p($x)"; "b@p($x) :- base@p($x), not a@p($x)" ]
        in
        check_int "strata" 2 (strata_count r);
        match r with
        | Ok { Stratify.strata } ->
          check_int "first stratum rules" 1 (List.length strata.(0));
          check_int "second stratum rules" 1 (List.length strata.(1))
        | Error _ -> Alcotest.fail "unexpected");
    tc "negative cycle rejected" (fun () ->
        match
          compute
            ~intensional:(fun r -> r = "a" || r = "b")
            [ "a@p($x) :- base@p($x), not b@p($x)";
              "b@p($x) :- base@p($x), not a@p($x)" ]
        with
        | Error (Stratify.Negative_cycle members) ->
          check_bool "names" (List.mem "a" members && List.mem "b" members)
        | Ok _ -> Alcotest.fail "expected negative cycle");
    tc "self negation rejected" (fun () ->
        match
          compute ~intensional:(fun r -> r = "a")
            [ "a@p($x) :- base@p($x), not a@p($x)" ]
        with
        | Error (Stratify.Negative_cycle _) -> ()
        | Ok _ -> Alcotest.fail "expected negative cycle");
    tc "extensional negation needs no extra stratum" (fun () ->
        check_int "strata" 1
          (strata_count
             (compute
                ~intensional:(fun r -> r = "v")
                [ "v@p($x) :- base@p($x), not blocked@p($x)" ])));
    tc "atoms after a remote constant peer contribute nothing" (fun () ->
        (* The negation of v sits after a remote atom: never evaluated
           locally, so no cycle. *)
        check_bool "stratifies"
          (Result.is_ok
             (compute
                ~intensional:(fun r -> r = "v")
                [ "v@p($x) :- base@p($x), remote@q($x), not v@p($x)" ])));
    tc "peer variables are conservatively local" (fun () ->
        match
          compute
            ~intensional:(fun r -> r = "v")
            [ "v@p($x) :- peers@p($a), w@$a($x), not v@p($x)" ]
        with
        | Error (Stratify.Negative_cycle _) -> ()
        | Ok _ -> Alcotest.fail "expected negative cycle");
    tc "relation variable (star) reads everything" (fun () ->
        (* not $r@p(...) would negate over any relation incl. the head's:
           rejected. *)
        match
          compute
            ~intensional:(fun r -> r = "v")
            [ "v@p($x) :- names@p($r), $r@p($x), not v@p($x)" ]
        with
        | Error (Stratify.Negative_cycle _) -> ()
        | Ok _ -> Alcotest.fail "expected negative cycle");
    tc "variable head (star) derives everything" (fun () ->
        (* A star head with no intensional reads stratifies (it runs
           before the negation)... *)
        check_bool "benign star head"
          (Result.is_ok
             (compute
                ~intensional:(fun r -> r = "v" || r = "w")
                [ "$r@p($x) :- names@p($r), base@p($x)";
                  "w@p($x) :- base@p($x), not v@p($x)" ]));
        (* ...but a star head reading w while (potentially) deriving v
           closes a cycle through the negation. *)
        match
          compute
            ~intensional:(fun r -> r = "v" || r = "w")
            [ "$r@p($x) :- names@p($r), w@p($x)";
              "w@p($x) :- base@p($x), not v@p($x)" ]
        with
        | Error (Stratify.Negative_cycle _) -> ()
        | Ok _ -> Alcotest.fail "expected negative cycle (star head feeds v)");
    tc "rules with remote heads are scheduled after their negations" (fun () ->
        match
          compute
            ~intensional:(fun r -> r = "v")
            [ "v@p($x) :- base@p($x)";
              "out@q($x) :- base@p($x), not v@p($x)" ]
        with
        | Ok { Stratify.strata } ->
          check_int "strata" 2 (Array.length strata);
          check_int "remote-head rule in stratum 1" 1 (List.length strata.(1))
        | Error e -> Alcotest.fail (Format.asprintf "%a" Stratify.pp_error e));
    tc "empty rule set" (fun () ->
        check_int "strata" 1 (strata_count (compute [])));
  ]
