open Wdl_syntax

let tc name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.check Alcotest.bool msg true
let fmt f x = Format.asprintf "%a" f x

let suite =
  [
    tc "term pp: variables and constants" (fun () ->
        Alcotest.check Alcotest.string "var" "$x" (fmt Term.pp (Term.var "x"));
        Alcotest.check Alcotest.string "int" "5" (fmt Term.pp (Term.int 5));
        Alcotest.check Alcotest.string "str" "\"a\"" (fmt Term.pp (Term.str "a")));
    tc "pp_name prints identifier-like strings bare" (fun () ->
        Alcotest.check Alcotest.string "bare" "pictures"
          (fmt Term.pp_name (Term.str "pictures"));
        Alcotest.check Alcotest.string "unicode" "Émilien"
          (fmt Term.pp_name (Term.str "Émilien"));
        Alcotest.check Alcotest.string "quoted" "\"has space\""
          (fmt Term.pp_name (Term.str "has space"));
        Alcotest.check Alcotest.string "keyword quoted" "\"not\""
          (fmt Term.pp_name (Term.str "not")));
    tc "is_ident rejects keywords, digits-first and empties" (fun () ->
        check_bool "ok" (Term.is_ident "selectedAttendee");
        check_bool "underscore" (Term.is_ident "_x1");
        check_bool "digit-first" (not (Term.is_ident "1abc"));
        check_bool "keyword" (not (Term.is_ident "ext"));
        check_bool "empty" (not (Term.is_ident ""));
        check_bool "space" (not (Term.is_ident "a b")));
    tc "vars" (fun () ->
        Alcotest.check (Alcotest.list Alcotest.string) "var" [ "x" ]
          (Term.vars (Term.var "x"));
        Alcotest.check (Alcotest.list Alcotest.string) "const" []
          (Term.vars (Term.int 1)));
    tc "subst: empty and binding" (fun () ->
        check_bool "empty" (Subst.is_empty Subst.empty);
        let s = Subst.bind_exn "x" (Value.Int 1) Subst.empty in
        check_bool "mem" (Subst.mem "x" s);
        check_bool "find" (Subst.find "x" s = Some (Value.Int 1));
        Alcotest.check Alcotest.int "cardinal" 1 (Subst.cardinal s));
    tc "subst: conflicting bind returns None" (fun () ->
        let s = Subst.bind_exn "x" (Value.Int 1) Subst.empty in
        check_bool "conflict" (Subst.bind "x" (Value.Int 2) s = None);
        check_bool "same ok" (Subst.bind "x" (Value.Int 1) s <> None));
    tc "subst: bind_exn raises on conflict" (fun () ->
        let s = Subst.bind_exn "x" (Value.Int 1) Subst.empty in
        Alcotest.check_raises "raises"
          (Invalid_argument "Subst.bind_exn: conflicting binding for $x")
          (fun () -> ignore (Subst.bind_exn "x" (Value.Int 2) s)));
    tc "subst: of_list detects conflicts" (fun () ->
        check_bool "ok" (Subst.of_list [ ("a", Value.Int 1); ("b", Value.Int 2) ] <> None);
        check_bool "conflict"
          (Subst.of_list [ ("a", Value.Int 1); ("a", Value.Int 2) ] = None));
    tc "subst: apply replaces bound, keeps unbound" (fun () ->
        let s = Subst.bind_exn "x" (Value.String "v") Subst.empty in
        check_bool "bound" (Subst.apply s (Term.var "x") = Term.str "v");
        check_bool "unbound" (Subst.apply s (Term.var "y") = Term.var "y");
        check_bool "const" (Subst.apply s (Term.int 3) = Term.int 3));
    tc "atom: vars in position order, deduplicated" (fun () ->
        let a =
          Atom.make ~rel:(Term.var "r") ~peer:(Term.var "p")
            [ Term.var "x"; Term.var "p"; Term.var "x"; Term.int 1 ]
        in
        Alcotest.check (Alcotest.list Alcotest.string) "vars" [ "r"; "p"; "x" ]
          (Atom.vars a));
    tc "atom: to_fact on ground atoms only" (fun () ->
        let ground = Atom.app "m" "p" [ Term.int 1; Term.str "a" ] in
        check_bool "ground" (Atom.to_fact ground <> None);
        let open_atom = Atom.app "m" "p" [ Term.var "x" ] in
        check_bool "open" (Atom.to_fact open_atom = None);
        let bad_name =
          Atom.make ~rel:(Term.Const (Value.Int 3)) ~peer:(Term.str "p") []
        in
        check_bool "bad name" (Atom.to_fact bad_name = None));
    tc "atom: of_fact round-trips" (fun () ->
        let f = Fact.make ~rel:"m" ~peer:"p" [ Value.Int 1; Value.String "s" ] in
        check_bool "roundtrip" (Atom.to_fact (Atom.of_fact f) = Some f));
    tc "rule: vars and rename avoid capture" (fun () ->
        let r =
          Parser.parse_rule "out@p($x, $y) :- a@p($x), b@p($y), $z := $x + 1"
        in
        Alcotest.check (Alcotest.list Alcotest.string) "vars" [ "x"; "y"; "z" ]
          (Rule.vars r);
        let r' = Rule.rename ~suffix:"_1" r in
        Alcotest.check (Alcotest.list Alcotest.string) "renamed"
          [ "x_1"; "y_1"; "z_1" ] (Rule.vars r'));
    tc "rule: subst produces the paper's residual" (fun () ->
        let r =
          Parser.parse_rule
            {|attendeePictures@Jules($id, $n, $o, $d) :-
                selectedAttendee@Jules($att), pictures@$att($id, $n, $o, $d)|}
        in
        let s = Subst.bind_exn "att" (Value.String "Émilien") Subst.empty in
        let residual =
          Rule.make ~head:r.Rule.head
            ~body:(List.map (Literal.subst s) (List.tl r.Rule.body))
        in
        let expected =
          Parser.parse_rule
            {|attendeePictures@Jules($id, $n, $o, $d) :-
                pictures@Émilien($id, $n, $o, $d)|}
        in
        check_bool "residual" (Rule.equal residual expected));
    tc "fact: make validates names" (fun () ->
        Alcotest.check_raises "empty rel"
          (Invalid_argument "Fact.make: empty relation name") (fun () ->
            ignore (Fact.make ~rel:"" ~peer:"p" []));
        Alcotest.check_raises "empty peer"
          (Invalid_argument "Fact.make: empty peer name") (fun () ->
            ignore (Fact.make ~rel:"m" ~peer:"" [])));
    tc "fact: ordering is rel, peer, args" (fun () ->
        let f1 = Fact.make ~rel:"a" ~peer:"z" [ Value.Int 9 ] in
        let f2 = Fact.make ~rel:"b" ~peer:"a" [ Value.Int 0 ] in
        check_bool "rel first" (Fact.compare f1 f2 < 0);
        let g1 = Fact.make ~rel:"a" ~peer:"p" [ Value.Int 1 ] in
        let g2 = Fact.make ~rel:"a" ~peer:"p" [ Value.Int 2 ] in
        check_bool "args last" (Fact.compare g1 g2 < 0));
  ]
