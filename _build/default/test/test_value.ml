open Wdl_syntax

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let reparse_value v =
  (* Values round-trip through fact syntax. *)
  let src = Format.asprintf "m@p(%a)" Value.pp v in
  match (Parser.parse_fact src).Fact.args with
  | [ v' ] -> v'
  | _ -> Alcotest.fail ("unexpected parse of " ^ src)

let bool' = Alcotest.bool
let roundtrip v = check bool' "round-trip" true (Value.equal v (reparse_value v))

let suite =
  [
    tc "compare: same-type ordering" (fun () ->
        check Alcotest.int "int" (-1) (Value.compare (Int 1) (Int 2));
        check bool' "str" true (Value.compare (String "a") (String "b") < 0);
        check bool' "float" true (Value.compare (Float 1.5) (Float 2.5) < 0);
        check bool' "bool" true (Value.compare (Bool false) (Bool true) < 0));
    tc "compare: cross-type is a total order by tag" (fun () ->
        check bool' "int<float" true (Value.compare (Int 99) (Float 0.) < 0);
        check bool' "float<string" true (Value.compare (Float 9.) (String "") < 0);
        check bool' "string<bool" true (Value.compare (String "z") (Bool false) < 0));
    tc "equal and hash agree" (fun () ->
        let pairs =
          [ (Value.Int 42, Value.Int 42); (String "x", String "x");
            (Float 1.5, Float 1.5); (Bool true, Bool true) ]
        in
        List.iter
          (fun (a, b) ->
            check bool' "equal" true (Value.equal a b);
            check Alcotest.int "hash" (Value.hash a) (Value.hash b))
          pairs);
    tc "pp round-trips ints" (fun () ->
        (* min_int itself cannot round-trip: its absolute value overflows
           the positive literal the lexer sees after the unary minus. *)
        List.iter (fun n -> roundtrip (Int n)) [ 0; 1; -1; max_int; min_int + 1 ]);
    tc "pp round-trips strings with escapes" (fun () ->
        List.iter
          (fun s -> roundtrip (String s))
          [ ""; "plain"; "with \"quotes\""; "back\\slash"; "new\nline";
            "tab\tchar"; "Émilien" ]);
    tc "pp round-trips floats" (fun () ->
        List.iter
          (fun f -> roundtrip (Float f))
          [ 0.; 1.; -1.; 0.1; 3.14159; 1e100; -2.5e-8; 4. ]);
    tc "pp round-trips bools" (fun () ->
        roundtrip (Bool true);
        roundtrip (Bool false));
    tc "float repr keeps full precision" (fun () ->
        let f = 0.1 +. 0.2 in
        match reparse_value (Float f) with
        | Float f' -> check (Alcotest.float 0.) "exact" f f'
        | _ -> Alcotest.fail "not a float");
    tc "as_name accepts non-empty strings only" (fun () ->
        check bool' "name" true (Value.as_name (String "p") = Some "p");
        check bool' "empty" true (Value.as_name (String "") = None);
        check bool' "int" true (Value.as_name (Int 3) = None);
        check bool' "bool" true (Value.as_name (Bool true) = None));
    tc "type_name" (fun () ->
        check Alcotest.string "int" "int" (Value.type_name (Int 0));
        check Alcotest.string "float" "float" (Value.type_name (Float 0.));
        check Alcotest.string "string" "string" (Value.type_name (String ""));
        check Alcotest.string "bool" "bool" (Value.type_name (Bool false)));
  ]
