(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   The demo paper has no quantitative tables, so the experiment set is
   (a) its figures/scenarios turned into measured, checked runs
   (F2/F3/D1/D3) and (b) the engine microbenchmarks in the spirit of
   the companion technical report (T1-T6). One Bechamel test per
   experiment measures wall time; count-based columns (rounds,
   messages, bytes) come from instrumented single runs.

   dune exec bench/main.exe            -- everything
   dune exec bench/main.exe -- t1 t4   -- a subset *)

open Bechamel
open Wdl_syntax
module Peer = Webdamlog.Peer
module System = Webdamlog.System

let ok = function Ok v -> v | Error e -> failwith e
let pf fmt = Format.printf fmt

(* {1 Timing helpers} *)

let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]

let cfg =
  Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None
    ~stabilize:false ()

(* Returns (name, nanoseconds-per-run) sorted by name. *)
let measure (test : Test.t) =
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name v acc ->
      let ns =
        match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_ns ns =
  if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

let header title = pf "@.=== %s ===@." title

(* {1 Workload builders} *)

let tc_rules =
  [ Parser.parse_rule "tc@p($x,$y) :- edge@p($x,$y)";
    Parser.parse_rule "tc@p($x,$z) :- tc@p($x,$y), edge@p($y,$z)" ]

let edge_db ?(indexing = true) edges =
  let db = Wdl_store.Database.create ~indexing () in
  (match
     Wdl_store.Database.declare db
       (Decl.make ~kind:Decl.Intensional ~rel:"tc" ~peer:"p" [ "x"; "y" ])
   with
  | Ok _ -> ()
  | Error _ -> failwith "declare failed");
  List.iter
    (fun (a, b) ->
      match
        Wdl_store.Database.insert db ~rel:"edge"
          (Wdl_store.Tuple.of_list [ Value.Int a; Value.Int b ])
      with
      | Ok _ -> ()
      | Error _ -> failwith "insert failed")
    edges;
  db

let rel_cardinal db rel =
  match Wdl_store.Database.find db rel with
  | Some info -> Wdl_store.Relation.cardinal info.Wdl_store.Database.data
  | None -> 0

let run_fixpoint ?strategy db rules =
  Wdl_store.Database.clear_intensional db;
  match Wdl_eval.Fixpoint.run ?strategy ~self:"p" db rules with
  | Ok r -> r
  | Error _ -> failwith "fixpoint failed"

(* {1 T1: semi-naive vs naive} *)

let t1 () =
  header "T1  local fixpoint: semi-naive vs naive (transitive closure)";
  pf "%-22s %12s %14s %14s %9s@." "workload" "|tc|" "semi-naive" "naive" "speedup";
  let cases =
    [ ("chain n=64", Wdl_wepic.Workload.chain_edges ~n:64);
      ("chain n=128", Wdl_wepic.Workload.chain_edges ~n:128);
      ("random n=64 e=128", Wdl_wepic.Workload.random_edges ~seed:3 ~nodes:64 ~edges:128);
      ("random n=128 e=256", Wdl_wepic.Workload.random_edges ~seed:3 ~nodes:128 ~edges:256);
    ]
  in
  List.iter
    (fun (label, edges) ->
      let db = edge_db edges in
      let time strategy =
        let test =
          Test.make ~name:label
            (Staged.stage (fun () -> ignore (run_fixpoint ~strategy db tc_rules)))
        in
        match measure test with (_, ns) :: _ -> ns | [] -> nan
      in
      let semi = time Wdl_eval.Fixpoint.Seminaive in
      let naive = time Wdl_eval.Fixpoint.Naive in
      ignore (run_fixpoint db tc_rules);
      pf "%-22s %12d %14s %14s %8.1fx@." label (rel_cardinal db "tc")
        (pp_ns semi) (pp_ns naive) (naive /. semi))
    cases

(* {1 T2: delegation vs shipping the relation} *)

let t2_setup ~variant ~n_data ~n_sel () =
  let sys = System.create () in
  let p = System.add_peer sys "p" in
  let q = System.add_peer sys "q" in
  let buf = Buffer.create 4096 in
  for i = 0 to n_data - 1 do
    Buffer.add_string buf (Printf.sprintf "data@q(%d, %d);\n" i (i * i))
  done;
  ok (Peer.load_string q (Buffer.contents buf));
  let bufp = Buffer.create 256 in
  Buffer.add_string bufp "int v@p(x, y);\n";
  for i = 0 to n_sel - 1 do
    Buffer.add_string bufp (Printf.sprintf "sel@p(%d);\n" (i * (n_data / n_sel)))
  done;
  (match variant with
  | `Delegate ->
    Buffer.add_string bufp "v@p($x, $y) :- sel@p($x), data@q($x, $y);\n"
  | `Ship ->
    Buffer.add_string bufp "v@p($x, $y) :- sel@p($x), mirror@p($x, $y);\n";
    ok (Peer.load_string q "mirror@p($x, $y) :- data@q($x, $y);\n"));
  ok (Peer.load_string p (Buffer.contents bufp));
  sys

let t2 () =
  header "T2  delegated join vs shipped relation (1024 data tuples at q)";
  pf "%-12s %-10s %8s %10s %12s %12s@." "selectivity" "variant" "rounds"
    "messages" "bytes" "time";
  List.iter
    (fun n_sel ->
      List.iter
        (fun variant ->
          let label =
            Printf.sprintf "%s sel=%d"
              (match variant with `Delegate -> "delegate" | `Ship -> "ship")
              n_sel
          in
          let test =
            Test.make ~name:label
              (Staged.stage (fun () ->
                   ignore
                     (ok (System.run (t2_setup ~variant ~n_data:1024 ~n_sel ())))))
          in
          let ns = match measure test with (_, v) :: _ -> v | [] -> nan in
          let sys = t2_setup ~variant ~n_data:1024 ~n_sel () in
          let rounds = ok (System.run sys) in
          let stats = (System.transport sys).Wdl_net.Transport.stats () in
          pf "%-12d %-10s %8d %10d %12d %12s@." n_sel
            (match variant with `Delegate -> "delegate" | `Ship -> "ship")
            rounds stats.Wdl_net.Netstats.sent stats.Wdl_net.Netstats.bytes
            (pp_ns ns))
        [ `Delegate; `Ship ])
    [ 1; 16; 256; 1024 ]

(* {1 T3: peer scaling (generalised Fig. 2 star)} *)

let t3_setup ~attendees () =
  let env = Wdl_wepic.Wepic.create () in
  Wdl_wepic.Workload.populate env
    { Wdl_wepic.Workload.default with attendees; pictures_per_attendee = 4 };
  env

let t3 () =
  header "T3  Wepic star topology scaling (4 pictures per attendee)";
  pf "%-10s %8s %10s %12s %14s@." "attendees" "rounds" "messages" "bytes" "time";
  List.iter
    (fun attendees ->
      let label = Printf.sprintf "attendees=%d" attendees in
      let test =
        Test.make ~name:label
          (Staged.stage (fun () ->
               ignore (ok (Wdl_wepic.Wepic.run (t3_setup ~attendees ())))))
      in
      let ns = match measure test with (_, v) :: _ -> v | [] -> nan in
      let env = t3_setup ~attendees () in
      let rounds = ok (Wdl_wepic.Wepic.run env) in
      let stats =
        (System.transport (Wdl_wepic.Wepic.system env)).Wdl_net.Transport.stats ()
      in
      pf "%-10d %8d %10d %12d %14s@." attendees rounds
        stats.Wdl_net.Netstats.sent stats.Wdl_net.Netstats.bytes (pp_ns ns))
    [ 2; 4; 8; 16 ]

(* {1 T4: index ablation} *)

let t4 () =
  header "T4  binding-pattern indexes: on vs off (selective join)";
  pf "%-24s %14s %14s %9s@." "workload" "indexed" "scan" "speedup";
  let rules = [ Parser.parse_rule "j@p($x,$y,$z) :- a@p($x,$y), b@p($y,$z)" ] in
  List.iter
    (fun n ->
      let mk indexing =
        let db = Wdl_store.Database.create ~indexing () in
        (match
           Wdl_store.Database.declare db
             (Decl.make ~kind:Decl.Intensional ~rel:"j" ~peer:"p" [ "x"; "y"; "z" ])
         with
        | Ok _ -> ()
        | Error _ -> failwith "declare failed");
        for i = 0 to n - 1 do
          (match
             Wdl_store.Database.insert db ~rel:"a"
               (Wdl_store.Tuple.of_list [ Value.Int i; Value.Int (i mod 100) ])
           with
          | Ok _ -> ()
          | Error _ -> failwith "insert failed");
          match
            Wdl_store.Database.insert db ~rel:"b"
              (Wdl_store.Tuple.of_list [ Value.Int (i mod 100); Value.Int i ])
          with
          | Ok _ -> ()
          | Error _ -> failwith "insert failed"
        done;
        db
      in
      let time indexing =
        let db = mk indexing in
        let test =
          Test.make ~name:(Printf.sprintf "join n=%d" n)
            (Staged.stage (fun () -> ignore (run_fixpoint db rules)))
        in
        match measure test with (_, ns) :: _ -> ns | [] -> nan
      in
      let on = time true and off = time false in
      pf "%-24s %14s %14s %8.1fx@."
        (Printf.sprintf "n=%d (100 join keys)" n)
        (pp_ns on) (pp_ns off) (off /. on))
    [ 500; 2000 ]

(* {1 T5: distributed transitive closure through delegation} *)

let t5_setup ~peers () =
  let sys = System.create () in
  let name i = Printf.sprintf "n%d" i in
  for i = 0 to peers - 1 do
    let p = System.add_peer sys (name i) in
    if i < peers - 1 then
      ok
        (Peer.load_string p
           (Printf.sprintf {|ext next@%s(peer); next@%s("%s");|} (name i)
              (name i)
              (name (i + 1))))
    else ok (Peer.load_string p (Printf.sprintf "ext next@%s(peer);" (name i)))
  done;
  ok
    (Peer.load_string (System.peer sys "n0")
       {|int reach@n0(peer);
         reach@n0($q) :- next@n0($q);
         reach@n0($r) :- reach@n0($q), next@$q($r);|});
  sys

let t5 () =
  header "T5  distributed reachability along a chain of peers";
  pf "%-8s %8s %10s %10s %14s@." "peers" "rounds" "messages" "|reach|" "time";
  List.iter
    (fun peers ->
      let label = Printf.sprintf "peers=%d" peers in
      let test =
        Test.make ~name:label
          (Staged.stage (fun () -> ignore (ok (System.run (t5_setup ~peers ())))))
      in
      let ns = match measure test with (_, v) :: _ -> v | [] -> nan in
      let sys = t5_setup ~peers () in
      let rounds = ok (System.run sys) in
      pf "%-8d %8d %10d %10d %14s@." peers rounds (System.messages_sent sys)
        (List.length (Peer.query (System.peer sys "n0") "reach"))
        (pp_ns ns))
    [ 2; 4; 8; 16 ]

(* {1 T6: transport: payload size and latency sensitivity} *)

let t6 () =
  header "T6  transport: payload size and simulated latency";
  pf "%-16s %10s %12s %12s@." "payload bytes" "messages" "total bytes" "rounds";
  List.iter
    (fun payload_bytes ->
      let env = Wdl_wepic.Wepic.create () in
      Wdl_wepic.Workload.populate env
        { Wdl_wepic.Workload.default with
          attendees = 4; pictures_per_attendee = 4; payload_bytes };
      let rounds = ok (Wdl_wepic.Wepic.run env) in
      let stats =
        (System.transport (Wdl_wepic.Wepic.system env)).Wdl_net.Transport.stats ()
      in
      pf "%-16d %10d %12d %12d@." payload_bytes stats.Wdl_net.Netstats.sent
        stats.Wdl_net.Netstats.bytes rounds)
    [ 64; 1024; 8192 ];
  pf "@.%-16s %8s %12s@." "base latency" "rounds" "sim time";
  List.iter
    (fun base_latency ->
      let transport =
        Wdl_net.Simnet.create ~sizer:Webdamlog.Message.size ~seed:1 ~base_latency ()
      in
      let env = Wdl_wepic.Wepic.create ~transport () in
      Wdl_wepic.Workload.populate env
        { Wdl_wepic.Workload.default with attendees = 4; pictures_per_attendee = 4 };
      let rounds = ok (Wdl_wepic.Wepic.run env) in
      pf "%-16.1f %8d %12.1f@." base_latency rounds
        (transport.Wdl_net.Transport.now ()))
    [ 0.5; 2.0; 8.0 ]

(* {1 F2: Fig. 2 propagation} *)

let f2_setup () =
  let env = Wdl_wepic.Wepic.create () in
  ignore (Wdl_wepic.Wepic.add_attendee env "Emilien");
  ignore (Wdl_wepic.Wepic.add_attendee env "Jules");
  env

let f2 () =
  header "F2  Fig. 2: upload at Emilien -> sigmod -> Facebook group";
  let env = f2_setup () in
  ignore (ok (Wdl_wepic.Wepic.run env));
  Wdl_wepic.Wepic.upload_picture env ~attendee:"Emilien" ~id:32 ~name:"sea.jpg"
    ~data:"100...";
  Wdl_wepic.Wepic.authorize_facebook env ~attendee:"Emilien" ~id:32;
  let before = System.messages_sent (Wdl_wepic.Wepic.system env) in
  let rounds = ok (Wdl_wepic.Wepic.run env) in
  let after = System.messages_sent (Wdl_wepic.Wepic.system env) in
  pf "rounds to full propagation: %d   messages: %d@." rounds (after - before);
  pf "pictures@sigmod: %d   facebook group: %d@."
    (List.length (Wdl_wepic.Wepic.pictures_at_sigmod env))
    (List.length (Wdl_wepic.Wepic.pictures_on_facebook env));
  let test =
    Test.make ~name:"fig2 propagation"
      (Staged.stage (fun () ->
           let env = f2_setup () in
           Wdl_wepic.Wepic.upload_picture env ~attendee:"Emilien" ~id:32
             ~name:"sea.jpg" ~data:"100...";
           Wdl_wepic.Wepic.authorize_facebook env ~attendee:"Emilien" ~id:32;
           ignore (ok (Wdl_wepic.Wepic.run env))))
  in
  match measure test with
  | (_, ns) :: _ -> pf "end-to-end scenario time: %s@." (pp_ns ns)
  | [] -> ()

(* {1 F3: Fig. 3 delegation control} *)

let f3_setup ~trusted () =
  let sys = System.create () in
  let jules =
    System.add_peer sys
      ~policy:(if trusted then Webdamlog.Acl.Open else Webdamlog.Acl.Closed)
      "Jules"
  in
  let julia = System.add_peer sys "Julia" in
  ok (Peer.load_string jules "ext pictures@Jules(i); pictures@Jules(7);");
  ok
    (Peer.load_string julia
       "int mine@Julia(i); mine@Julia($i) :- pictures@Jules($i);");
  (sys, jules, julia)

let f3 () =
  header "F3  Fig. 3: control of delegation";
  let sys, jules, julia = f3_setup ~trusted:false () in
  ignore (ok (System.run sys));
  pf "untrusted: view=%d pending=%d@."
    (List.length (Peer.query julia "mine"))
    (List.length (Peer.pending_delegations jules));
  ignore (Peer.accept_all_delegations jules);
  ignore (ok (System.run sys));
  pf "after accept: view=%d installed=%d@."
    (List.length (Peer.query julia "mine"))
    (List.length (Peer.delegated_rules jules));
  let time trusted =
    let label = if trusted then "trusted path" else "pending+accept path" in
    let test =
      Test.make ~name:label
        (Staged.stage (fun () ->
             let sys, jules, _ = f3_setup ~trusted () in
             ignore (ok (System.run sys));
             if not trusted then begin
               ignore (Peer.accept_all_delegations jules);
               ignore (ok (System.run sys))
             end))
    in
    match measure test with (_, ns) :: _ -> ns | [] -> nan
  in
  let open_ns = time true and closed_ns = time false in
  pf "trusted install: %s   pending+accept: %s (overhead %.1f%%)@."
    (pp_ns open_ns) (pp_ns closed_ns)
    ((closed_ns -. open_ns) /. open_ns *. 100.)

(* {1 D1: Facebook interaction} *)

let d1 () =
  header "D1  authorized-only publication to the Facebook group";
  pf "%-12s %-12s %10s@." "pictures" "authorized" "published";
  List.iter
    (fun (n, auth) ->
      let env = f2_setup () in
      for i = 1 to n do
        Wdl_wepic.Wepic.upload_picture env ~attendee:"Emilien" ~id:i
          ~name:(Printf.sprintf "p%d.jpg" i) ~data:"d";
        if i <= auth then
          Wdl_wepic.Wepic.authorize_facebook env ~attendee:"Emilien" ~id:i
      done;
      ignore (ok (Wdl_wepic.Wepic.run env));
      pf "%-12d %-12d %10d@." n auth
        (List.length (Wdl_wepic.Wepic.pictures_on_facebook env)))
    [ (8, 0); (8, 3); (8, 8) ]

(* {1 D3: protocol routing} *)

let d3 () =
  header "D3  transfer routed by the recipient's communicate preference";
  let env = Wdl_wepic.Wepic.create () in
  let recipients = [ ("r_email", "email"); ("r_wepic", "wepic") ] in
  ignore (Wdl_wepic.Wepic.add_attendee env "sender");
  List.iter
    (fun (name, proto) ->
      ignore (Wdl_wepic.Wepic.add_attendee env name);
      Wdl_wepic.Wepic.set_protocol env ~attendee:name ~protocol:proto)
    recipients;
  Wdl_wepic.Wepic.upload_picture env ~attendee:"sender" ~id:1 ~name:"x.jpg"
    ~data:"d";
  List.iter
    (fun (name, _) ->
      Wdl_wepic.Wepic.select_attendee env ~viewer:"sender" ~attendee:name)
    recipients;
  Wdl_wepic.Wepic.select_picture env ~viewer:"sender" ~name:"x.jpg" ~id:1
    ~owner:"sender";
  ignore (ok (Wdl_wepic.Wepic.run env));
  pf "emails sent: %d@."
    (Wdl_wrappers.Email.total_sent (Wdl_wepic.Wepic.email env));
  pf "wepic-relation deliveries: %d@."
    (List.length (Peer.query (Wdl_wepic.Wepic.attendee env "r_wepic") "wepic"));
  pf "email recipient inbox: %d@."
    (List.length (Wdl_wrappers.Email.inbox (Wdl_wepic.Wepic.email env) "r_email"))

(* {1 A1: batch-diffing ablation} *)

(* Mutual flows: p streams to q and q streams back — without batch
   diffing every received (identical) batch triggers a fresh stage and
   a fresh resend, so the pair never settles. *)
let a1_setup ~diff () =
  let sys = System.create () in
  let p = System.add_peer sys ~diff_batches:diff "p" in
  let q = System.add_peer sys ~diff_batches:diff "q" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "ext a@p(i);\n";
  for i = 1 to 64 do
    Buffer.add_string buf (Printf.sprintf "a@p(%d);\n" i)
  done;
  Buffer.add_string buf "b@q($x) :- a@p($x);\n";
  ok (Peer.load_string p (Buffer.contents buf));
  ok (Peer.load_string q "ext b@q(i); c@p($x) :- b@q($x);");
  sys

let a1 () =
  header "A1  ablation: batch diffing (send-on-change) vs re-send every stage";
  pf "%-10s %8s %10s %12s %12s@." "variant" "rounds" "messages" "bytes" "quiesces";
  List.iter
    (fun diff ->
      let sys = a1_setup ~diff () in
      (* Fixed-length run: without diffing the system never quiesces
         (every received no-op batch triggers a resend), so compare a
         20-round window. *)
      for _ = 1 to 20 do
        ignore (System.round sys)
      done;
      let stats = (System.transport sys).Wdl_net.Transport.stats () in
      pf "%-10s %8d %10d %12d %12b@."
        (if diff then "diff" else "resend")
        20 stats.Wdl_net.Netstats.sent stats.Wdl_net.Netstats.bytes
        (System.quiescent sys))
    [ true; false ]

(* {1 T7: substrate microbenchmarks} *)

let t7 () =
  header "T7  substrate microbenchmarks";
  let sample_program =
    {|ext pictures@Jules(id, name, owner, data);
      pictures@Jules(32, "sea.jpg", "Emilien", "100...");
      attendeePictures@Jules($id, $n, $o, $d) :-
        selectedAttendee@Jules($a), pictures@$a($id, $n, $o, $d),
        rate@$o($id, 5), $id > 0;|}
  in
  let sample_msg =
    Webdamlog.Message.make ~src:"Jules" ~dst:"Emilien" ~stage:3
      ~facts:
        (Some
           (List.init 10 (fun i ->
                Fact.make ~rel:"pictures" ~peer:"Emilien"
                  [ Value.Int i; Value.String "pic.jpg"; Value.String "o";
                    Value.String (String.make 64 'x') ])))
      ~installs:
        [ Parser.parse_rule "a@Emilien($x) :- b@Emilien($x), c@Emilien($x)" ]
      ()
  in
  let frame = Webdamlog.Wire.encode sample_msg in
  let plan_rule =
    Parser.parse_rule
      "v@p($x, $z) :- a@p($x, $y), b@p($y, $z), not c@p($x), $z > 0"
  in
  let rel = Wdl_store.Relation.create ~arity:2 () in
  let counter = ref 0 in
  let cases =
    [
      ( "parse 4-statement program",
        fun () -> ignore (Parser.parse_program sample_program) );
      ( "wire encode (10 facts + 1 rule)",
        fun () -> ignore (Webdamlog.Wire.encode sample_msg) );
      ("wire decode", fun () -> ignore (Webdamlog.Wire.decode frame));
      ("plan compile", fun () -> ignore (Wdl_eval.Plan.compile plan_rule));
      ( "relation insert (fresh tuples)",
        fun () ->
          incr counter;
          ignore
            (Wdl_store.Relation.insert rel
               (Wdl_store.Tuple.of_list [ Value.Int !counter; Value.Int 0 ])) );
    ]
  in
  pf "%-36s %14s@." "operation" "time";
  List.iter
    (fun (label, f) ->
      let test = Test.make ~name:label (Staged.stage f) in
      match measure test with
      | (_, ns) :: _ -> pf "%-36s %14s@." label (pp_ns ns)
      | [] -> ())
    cases;
  let dir = Filename.temp_file "wdl_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let j = Wdl_store.Journal.open_ (Filename.concat dir "bench.wal") in
  let jn = ref 0 in
  let test =
    Test.make ~name:"journal append (flushed)"
      (Staged.stage (fun () ->
           incr jn;
           Wdl_store.Journal.append j
             (Wdl_store.Journal.Insert
                (Fact.make ~rel:"m" ~peer:"p" [ Value.Int !jn ]))))
  in
  (match measure test with
  | (_, ns) :: _ -> pf "%-36s %14s@." "journal append (flushed)" (pp_ns ns)
  | [] -> ());
  Wdl_store.Journal.close j

(* {1 A2: compiled plans vs the reference evaluator} *)

let a2 () =
  header "A2  ablation: compiled plans vs the substitution-based oracle";
  pf "%-22s %14s %14s %9s@." "workload" "compiled" "reference" "speedup";
  List.iter
    (fun (label, edges) ->
      let time run =
        let db = edge_db edges in
        let test =
          Test.make ~name:label
            (Staged.stage (fun () ->
                 Wdl_store.Database.clear_intensional db;
                 match run ~self:"p" db tc_rules with
                 | Ok _ -> ()
                 | Error _ -> failwith "fixpoint failed"))
        in
        match measure test with (_, ns) :: _ -> ns | [] -> nan
      in
      let compiled =
        time (fun ~self db rules -> Wdl_eval.Fixpoint.run ~self db rules)
      in
      let reference =
        time (fun ~self db rules -> Wdl_eval.Reference.run ~self db rules)
      in
      pf "%-22s %14s %14s %8.1fx@." label (pp_ns compiled) (pp_ns reference)
        (reference /. compiled))
    [ ("chain n=64", Wdl_wepic.Workload.chain_edges ~n:64);
      ("random n=96 e=192", Wdl_wepic.Workload.random_edges ~seed:5 ~nodes:96 ~edges:192) ]

(* {1 D4: Wefeed fan-out (the second application under load)} *)

let d4_setup ~followers ~posts () =
  let t = Wdl_feed.Feed.create () in
  ignore (Wdl_feed.Feed.add_user t "author");
  for i = 1 to followers do
    let name = Printf.sprintf "reader%d" i in
    ignore (Wdl_feed.Feed.add_user t name);
    Wdl_feed.Feed.follow t ~user:name ~whom:"author"
  done;
  for p = 1 to posts do
    Wdl_feed.Feed.post t ~author:"author" ~id:p
      ~text:(Printf.sprintf "post %d" p) ~topic:"t"
  done;
  t

let d4 () =
  header "D4  Wefeed: one author fanning out to N followers (8 posts)";
  pf "%-10s %8s %10s %12s %14s@." "followers" "rounds" "messages" "bytes" "time";
  List.iter
    (fun followers ->
      let label = Printf.sprintf "followers=%d" followers in
      let test =
        Test.make ~name:label
          (Staged.stage (fun () ->
               ignore (ok (Wdl_feed.Feed.run (d4_setup ~followers ~posts:8 ())))))
      in
      let ns = match measure test with (_, v) :: _ -> v | [] -> nan in
      let t = d4_setup ~followers ~posts:8 () in
      let rounds = ok (Wdl_feed.Feed.run t) in
      let stats =
        (System.transport (Wdl_feed.Feed.system t)).Wdl_net.Transport.stats ()
      in
      pf "%-10d %8d %10d %12d %14s@." followers rounds
        stats.Wdl_net.Netstats.sent stats.Wdl_net.Netstats.bytes (pp_ns ns))
    [ 2; 8; 32 ]

(* {1 FT: the reliable session layer — overhead and fault tolerance} *)

module Simnet = Wdl_net.Simnet
module Reliable = Wdl_net.Reliable

let envelope_sizer e =
  match e.Reliable.env_payload with
  | Some m -> Webdamlog.Message.size m
  | None -> 8

(* The album/attendee delegation scenario: sigmod aggregates everyone's
   pictures; every attendee mirrors the album back. Delegations and
   fact batches cross every link in both directions. *)
let ft_attendees = [ "alice"; "bob"; "carol"; "dave" ]

let ft_load ?incremental ?domains sys =
  let sigmod = System.add_peer sys ?incremental ?domains "sigmod" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "ext attendee@sigmod(a);\nint album@sigmod(id, name, owner);\n";
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "attendee@sigmod(%S);\n" a))
    ft_attendees;
  Buffer.add_string buf
    "album@sigmod($i, $n, $a) :- attendee@sigmod($a), pictures@$a($i, $n);\n";
  ok (Peer.load_string sigmod (Buffer.contents buf));
  List.iter
    (fun a ->
      let p = System.add_peer sys ?incremental ?domains a in
      ok
        (Peer.load_string p
           (Printf.sprintf
              {|ext pictures@%s(id, name);
                int myAlbum@%s(id, name, owner);
                pictures@%s(1, "%s_1.jpg");
                pictures@%s(2, "%s_2.jpg");
                myAlbum@%s($i, $n, $o) :- album@sigmod($i, $n, $o);|}
              a a a a a a a)))
    ft_attendees

let ft_dump sys =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      List.iter
        (fun rel ->
          List.iter
            (fun f ->
              Buffer.add_string buf (Format.asprintf "%a" Fact.pp f);
              Buffer.add_char buf '\n')
            (Peer.query p rel))
        (List.sort String.compare (Peer.relation_names p)))
    (List.sort
       (fun p q -> String.compare (Peer.name p) (Peer.name q))
       (System.peers sys));
  Buffer.contents buf

let ft_variants =
  [ ("inmem", `Inmem); ("simnet raw", `Raw); ("reliable clean", `Clean);
    ("reliable 25%loss+10%dup", `Faulty) ]

let ft_setup variant () =
  let transport =
    match variant with
    | `Inmem -> Wdl_net.Inmem.create ~sizer:Webdamlog.Message.size ()
    | `Raw -> Simnet.create ~sizer:Webdamlog.Message.size ~seed:42 ()
    | `Clean ->
      fst (Reliable.wrap (Simnet.create ~sizer:envelope_sizer ~seed:42 ()))
    | `Faulty ->
      fst
        (Reliable.wrap
           (Simnet.create ~sizer:envelope_sizer ~seed:42 ~loss:0.25
              ~duplicate:0.10 ()))
  in
  let sys = System.create ~transport ~drop_unknown:true () in
  ft_load sys;
  sys

let ft () =
  header "FT  reliable session layer vs raw transport (album scenario)";
  pf "%-26s %8s %10s %12s %12s %12s %14s@." "variant" "rounds" "messages"
    "retransmit" "dup_drop" "acked" "time";
  let times = ref [] in
  List.iter
    (fun (label, variant) ->
      let test =
        Test.make ~name:label
          (Staged.stage (fun () ->
               ignore (ok (System.run (ft_setup variant ())))))
      in
      let ns = match measure test with (_, v) :: _ -> v | [] -> nan in
      times := (label, ns) :: !times;
      let sys = ft_setup variant () in
      let rounds = ok (System.run sys) in
      let stats = (System.transport sys).Wdl_net.Transport.stats () in
      pf "%-26s %8d %10d %12d %12d %12d %14s@." label rounds
        stats.Wdl_net.Netstats.sent stats.Wdl_net.Netstats.retransmits
        stats.Wdl_net.Netstats.dup_dropped stats.Wdl_net.Netstats.acked
        (pp_ns ns))
    ft_variants;
  match
    (List.assoc_opt "simnet raw" !times, List.assoc_opt "reliable clean" !times)
  with
  | Some raw, Some clean ->
    pf "reliable-layer overhead on a clean network: %.1f%%@."
      ((clean -. raw) /. raw *. 100.)
  | _ -> ()

(* Deterministic fault-injection smoke: fixed seeds, bounded rounds, no
   timing — referenced from the cram suite so a delivery-guarantee
   regression fails `dune runtest`. *)
let ft_smoke () =
  let failures = ref 0 in
  let check label ok_ =
    if not ok_ then incr failures;
    pf "%-46s %s@." label (if ok_ then "ok" else "FAIL")
  in
  pf "FT-SMOKE fault-injection smoke (fixed seeds, bounded rounds)@.";
  (* Reference: the same program with zero faults. *)
  let ref_sys = ft_setup `Inmem () in
  ignore (ok (System.run ref_sys));
  let expected = ft_dump ref_sys in
  (* Loss + duplication + a mid-run partition that heals. *)
  let inner, net =
    Simnet.create_with_control ~sizer:envelope_sizer ~seed:42 ~loss:0.25
      ~duplicate:0.10 ()
  in
  let transport, rctl = Reliable.wrap inner in
  let sys = System.create ~transport ~drop_unknown:true () in
  ft_load sys;
  for _ = 1 to 3 do
    ignore (System.round sys)
  done;
  Simnet.partition net ~between:"sigmod" ~and_:"alice";
  for _ = 1 to 12 do
    ignore (System.round sys)
  done;
  Simnet.heal net ~between:"sigmod" ~and_:"alice";
  (match System.run ~max_rounds:2000 sys with
  | Ok _ ->
    check "converged under 25% loss + 10% dup + partition" true;
    check "relation contents byte-identical to inmem" (ft_dump sys = expected);
    let s = Reliable.stats rctl in
    check "retransmits nonzero" (s.Wdl_net.Netstats.retransmits > 0);
    check "dup_dropped nonzero" (s.Wdl_net.Netstats.dup_dropped > 0);
    check "no link given up" (Reliable.dead_links rctl = []);
    check "round loop saw no transport exceptions"
      (System.transport_errors sys = 0)
  | Error e ->
    pf "did not converge: %s@." e;
    incr failures);
  (* Crash a peer mid-run and recover it from its journal. *)
  let dir = Filename.temp_file "wdl_ft_smoke" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let inner2, net2 =
    Simnet.create_with_control ~sizer:envelope_sizer ~seed:7 ~loss:0.2
      ~duplicate:0.1 ()
  in
  let transport2, _ = Reliable.wrap inner2 in
  let sys2 = System.create ~transport:transport2 ~drop_unknown:false () in
  ft_load sys2;
  ok (Peer.load_string (System.peer sys2 "bob") "ext inbox@bob(id, name);");
  ok
    (Peer.load_string (System.peer sys2 "sigmod")
       "inbox@bob($i, $n) :- album@sigmod($i, $n, $o);");
  Webdamlog.Persist.attach (System.peer sys2 "bob") ~dir;
  ignore (ok (System.run ~max_rounds:2000 sys2));
  Webdamlog.Persist.checkpoint (System.peer sys2 "bob") ~dir;
  ok
    (Peer.insert (System.peer sys2 "alice")
       (Fact.make ~rel:"pictures" ~peer:"alice"
          [ Value.Int 3; Value.String "alice_3.jpg" ]));
  ignore (ok (System.run ~max_rounds:2000 sys2));
  let inbox_before = List.length (Peer.query (System.peer sys2 "bob") "inbox") in
  Simnet.crash net2 "bob";
  System.remove_peer sys2 "bob";
  ok
    (Peer.insert (System.peer sys2 "alice")
       (Fact.make ~rel:"pictures" ~peer:"alice"
          [ Value.Int 4; Value.String "alice_4.jpg" ]));
  for _ = 1 to 6 do
    ignore (System.round sys2)
  done;
  let replayed = ref 0 in
  (match
     Webdamlog.Persist.recover
       ~on_replay:(fun _ -> incr replayed)
       ~dir ~fallback_name:"bob" ()
   with
  | Error e ->
    pf "recovery failed: %s@." e;
    incr failures
  | Ok bob ->
    check "journal replay restored pre-crash inbox"
      (List.length (Peer.query bob "inbox") = inbox_before && !replayed > 0);
    Simnet.restart net2 "bob";
    System.adopt_peer sys2 bob;
    (match System.run ~max_rounds:2000 sys2 with
    | Ok _ ->
      check "restarted peer reconverged"
        (List.length (Peer.query bob "inbox")
         = 2 + (2 * List.length ft_attendees))
    | Error e ->
      pf "post-restart run: %s@." e;
      incr failures));
  if !failures = 0 then pf "FT-SMOKE passed@."
  else begin
    pf "FT-SMOKE: %d check(s) failed@." !failures;
    exit 1
  end

(* {1 OBS: machine-readable snapshot sourced from the metrics registry}

   Each scenario runs under a freshly cleared default registry, so the
   counters read afterwards belong to that scenario alone.  Wall time
   is the best of three runs measured directly (not Bechamel) to keep
   this fast enough for the cram suite.  Emits BENCH_obs.json. *)

let obs_sum_metric name =
  List.fold_left
    (fun acc s ->
      if s.Wdl_obs.Obs.s_name = name then
        match s.Wdl_obs.Obs.s_value with
        | `Value v when not (Float.is_nan v) -> acc +. v
        | `Value _ | `Histogram _ -> acc
      else acc)
    0. (Wdl_obs.Obs.collect ())

let obs_tc_chain64 () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "int tc@p(x, y);\n";
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge@p(%d, %d);\n" a b))
    (Wdl_wepic.Workload.chain_edges ~n:64);
  Buffer.add_string buf "tc@p($x, $y) :- edge@p($x, $y);\n";
  Buffer.add_string buf "tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);\n";
  let sys = System.create () in
  let p = System.add_peer sys "p" in
  ok (Peer.load_string p (Buffer.contents buf));
  ignore (ok (System.run sys))

let obs_wepic_star4 () =
  let env = Wdl_wepic.Wepic.create () in
  Wdl_wepic.Workload.populate env
    { Wdl_wepic.Workload.default with attendees = 4; pictures_per_attendee = 4 };
  ignore (ok (Wdl_wepic.Wepic.run env))

let obs_scenarios =
  [ ("tc_chain64", obs_tc_chain64);
    ("wepic_star4", obs_wepic_star4);
    ("reliable_faulty_album",
     fun () -> ignore (ok (System.run (ft_setup `Faulty ())))) ]

let obs () =
  header "OBS  registry-sourced scenario snapshot -> BENCH_obs.json";
  pf "%-24s %10s %8s %12s %10s %12s@." "scenario" "wall_ms" "rounds"
    "derivations" "messages" "retransmits";
  let results =
    List.map
      (fun (name, f) ->
        let wall_us = ref infinity in
        for _ = 1 to 3 do
          Wdl_obs.Obs.clear Wdl_obs.Obs.default;
          let t0 = Wdl_obs.Obs.now_us () in
          f ();
          wall_us := Float.min !wall_us (Wdl_obs.Obs.now_us () -. t0)
        done;
        (* The registry still holds the last run's counters. *)
        let rounds = Wdl_obs.Obs.read_one "wdl_system_rounds_total" in
        let derivations = obs_sum_metric "wdl_peer_derivations_total" in
        let messages = obs_sum_metric "wdl_peer_messages_sent_total" in
        let retransmits = obs_sum_metric "wdl_net_retransmits_total" in
        let wall_ms = !wall_us /. 1e3 in
        pf "%-24s %10.2f %8.0f %12.0f %10.0f %12.0f@." name wall_ms rounds
          derivations messages retransmits;
        (name, wall_ms, rounds, derivations, messages, retransmits))
      obs_scenarios
  in
  Wdl_obs.Obs.clear Wdl_obs.Obs.default;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc "{\n  \"bench\": \"obs\",\n  \"schema\": 1,\n  \"scenarios\": [";
  List.iteri
    (fun i (name, wall_ms, rounds, derivations, messages, retransmits) ->
      Printf.fprintf oc "%s\n    { \"name\": %S, \"wall_ms\": %.3f, \
                         \"rounds\": %.0f, \"derivations\": %.0f, \
                         \"messages\": %.0f, \"retransmits\": %.0f }"
        (if i > 0 then "," else "")
        name wall_ms rounds derivations messages retransmits)
    results;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  pf "wrote BENCH_obs.json@."

(* {1 STORE: interned columnar relations vs the boxed baseline}

   Microbenchmark for the tuple-storage core on relations of 100k+
   tuples. The columnar side is the live [Wdl_store.Relation] (interned
   flat int rows, open-addressing dedup, pinned int-key indexes); the
   boxed baseline reconstructs the seed layout in place — a generic
   hashtable keyed by boxed [Tuple.t] for dedup plus a per-column
   value-keyed hashtable for probes — so the rows measure exactly what
   the rewrite replaced. Best of three, fresh structures per timed run
   where the op mutates. Emits a "storage" section into BENCH_eval.json
   and a standalone BENCH_store.json for the CI artifact. *)

module Tup_tbl = Hashtbl.Make (struct
  type t = Wdl_store.Tuple.t

  let equal = Wdl_store.Tuple.equal
  let hash = Wdl_store.Tuple.hash
end)

(* The seed's relation store, reproduced verbatim (minus the unused
   paths): boxed tuples behind a generic hashtable, indexes as
   value-array-keyed buckets of tuple hashtables, probe keys rebuilt
   and re-hashed on every lookup. *)
module Boxed = struct
  module Key_tbl = Hashtbl.Make (struct
    type t = Value.t array

    let equal = Wdl_store.Tuple.equal
    let hash = Wdl_store.Tuple.hash
  end)

  type index = {
    positions : int array;
    buckets : Wdl_store.Tuple.t Tup_tbl.t Key_tbl.t;
  }

  type t = { tuples : unit Tup_tbl.t; mutable indexes : index list }

  let create ?(size = 64) () = { tuples = Tup_tbl.create size; indexes = [] }
  let cardinal r = Tup_tbl.length r.tuples
  let project positions (t : Wdl_store.Tuple.t) = Array.map (fun i -> t.(i)) positions

  let index_add idx t =
    let key = project idx.positions t in
    let bucket =
      match Key_tbl.find_opt idx.buckets key with
      | Some b -> b
      | None ->
        let b = Tup_tbl.create 4 in
        Key_tbl.add idx.buckets key b;
        b
    in
    Tup_tbl.replace bucket t t

  let index_remove idx t =
    let key = project idx.positions t in
    match Key_tbl.find_opt idx.buckets key with
    | None -> ()
    | Some b ->
      Tup_tbl.remove b t;
      if Tup_tbl.length b = 0 then Key_tbl.remove idx.buckets key

  let insert r t =
    if Tup_tbl.mem r.tuples t then false
    else begin
      Tup_tbl.replace r.tuples t ();
      List.iter (fun idx -> index_add idx t) r.indexes;
      true
    end

  let delete r t =
    if Tup_tbl.mem r.tuples t then begin
      Tup_tbl.remove r.tuples t;
      List.iter (fun idx -> index_remove idx t) r.indexes;
      true
    end
    else false

  let iter f r = Tup_tbl.iter (fun t () -> f t) r.tuples

  let build_index r positions =
    let idx = { positions; buckets = Key_tbl.create 64 } in
    iter (fun t -> index_add idx t) r;
    r.indexes <- idx :: r.indexes

  (* The seed's per-probe work: sort the bindings, rebuild the
     signature and the boxed probe key, hash it into the index. *)
  let lookup r bound f =
    let sorted = List.sort (fun (i, _) (j, _) -> Int.compare i j) bound in
    let n = List.length sorted in
    let positions = Array.make n 0 in
    let key = Array.make n (Value.Int 0) in
    List.iteri
      (fun k (i, v) ->
        positions.(k) <- i;
        key.(k) <- v)
      sorted;
    match List.find_opt (fun idx -> idx.positions = positions) r.indexes with
    | None ->
      iter
        (fun t ->
          if List.for_all (fun (i, v) -> Value.equal t.(i) v) bound then f t)
        r
    | Some idx -> (
      match Key_tbl.find_opt idx.buckets key with
      | None -> ()
      | Some bucket -> Tup_tbl.iter (fun t _ -> f t) bucket)
end

(* Arity 3: a unique id, a skewed join key, a pooled string tag —
   ints for row arithmetic, strings for the intern table. *)
let store_tuples ~n =
  Array.init n (fun i ->
      Wdl_store.Tuple.of_list
        [ Value.Int i; Value.Int (i mod 997);
          Value.String ("tag" ^ string_of_int (i mod 1000)) ])

let store_best_of_3 f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Wdl_obs.Obs.now_us () in
    f ();
    best := Float.min !best (Wdl_obs.Obs.now_us () -. t0)
  done;
  !best /. 1e3

let store_measure ~n =
  let tuples = store_tuples ~n in
  let col_fill () =
    let r = Wdl_store.Relation.create ~arity:3 () in
    Array.iter (fun t -> ignore (Wdl_store.Relation.insert r t)) tuples;
    r
  in
  let boxed_fill () =
    let r = Boxed.create () in
    Array.iter (fun t -> ignore (Boxed.insert r t)) tuples;
    r
  in
  let insert_row =
    ( "insert",
      store_best_of_3 (fun () -> ignore (col_fill ())),
      store_best_of_3 (fun () -> ignore (boxed_fill ())) )
  in
  (* Batch insert with capacity known up front: both sides pre-sized
     (columnar via [reserve], boxed via its table size), so the row
     isolates per-tuple cost from growth rehashes. *)
  let insert_reserved_row =
    ( "insert_reserved",
      store_best_of_3 (fun () ->
          let r = Wdl_store.Relation.create ~arity:3 () in
          Wdl_store.Relation.reserve r n;
          Array.iter (fun t -> ignore (Wdl_store.Relation.insert r t)) tuples),
      store_best_of_3 (fun () ->
          let r = Boxed.create ~size:n () in
          Array.iter (fun t -> ignore (Boxed.insert r t)) tuples) )
  in
  let col = col_fill () in
  let boxed = boxed_fill () in
  let dedup_row =
    (* every insert is a duplicate: pure membership-probe cost *)
    ( "dedup_reinsert",
      store_best_of_3 (fun () ->
          Array.iter (fun t -> ignore (Wdl_store.Relation.insert col t)) tuples),
      store_best_of_3 (fun () ->
          Array.iter (fun t -> ignore (Boxed.insert boxed t)) tuples) )
  in
  let scan_row =
    let cnt = ref 0 in
    ( "scan",
      store_best_of_3 (fun () ->
          cnt := 0;
          Wdl_store.Relation.iter (fun _ -> incr cnt) col),
      store_best_of_3 (fun () ->
          cnt := 0;
          Boxed.iter (fun _ -> incr cnt) boxed) )
  in
  (* Hash join on the skewed column-1 key, the fixpoint's access
     pattern: scan a 1/8-size probe relation, look each key up in the
     big one, touch every match. Indexes are built up front on both
     sides — index selection is the planner's job now; the row
     measures steady-state probe throughput. *)
  let m = n / 8 in
  let probe_tuples =
    Array.init m (fun i ->
        Wdl_store.Tuple.of_list [ Value.Int (i * 7919 mod 997); Value.Int i ])
  in
  let col_probe = Wdl_store.Relation.create ~pool:(Wdl_store.Relation.pool col) ~arity:2 () in
  let boxed_probe = Boxed.create () in
  Array.iter (fun t -> ignore (Wdl_store.Relation.insert col_probe t)) probe_tuples;
  Array.iter (fun t -> ignore (Boxed.insert boxed_probe t)) probe_tuples;
  let col_hits = ref 0 and boxed_hits = ref 0 in
  Wdl_store.Relation.ensure_index col [| 1 |];
  Boxed.build_index boxed [| 1 |];
  let join_row =
    ( "join",
      store_best_of_3 (fun () ->
          col_hits := 0;
          Wdl_store.Relation.iter
            (fun t ->
              Wdl_store.Relation.lookup col
                [ (1, t.(0)) ]
                (fun _ -> incr col_hits))
            col_probe),
      store_best_of_3 (fun () ->
          boxed_hits := 0;
          Boxed.iter
            (fun t ->
              Boxed.lookup boxed [ (1, t.(0)) ] (fun _ -> incr boxed_hits))
            boxed_probe) )
  in
  (* Churn with the index live: both stores pay index maintenance. *)
  let half = Array.sub tuples 0 (n / 2) in
  let delete_row =
    ( "delete_half",
      store_best_of_3 (fun () ->
          Array.iter (fun t -> ignore (Wdl_store.Relation.delete col t)) half;
          Array.iter (fun t -> ignore (Wdl_store.Relation.insert col t)) half),
      store_best_of_3 (fun () ->
          Array.iter (fun t -> ignore (Boxed.delete boxed t)) half;
          Array.iter (fun t -> ignore (Boxed.insert boxed t)) half) )
  in
  let consistent =
    Wdl_store.Relation.cardinal col = Boxed.cardinal boxed
    && !col_hits = !boxed_hits
    && !col_hits > 0
  in
  (consistent,
   [ insert_row; insert_reserved_row; dedup_row; scan_row; join_row;
     delete_row ])

let store_json_rows oc rows =
  List.iteri
    (fun i (name, col_ms, boxed_ms) ->
      Printf.fprintf oc "%s\n    { \"name\": %S, \"columnar_ms\": %.3f, \
                         \"boxed_ms\": %.3f, \"speedup\": %.2f }"
        (if i > 0 then "," else "")
        name col_ms boxed_ms (boxed_ms /. col_ms))
    rows

let store_write_json ~n rows =
  let oc = open_out "BENCH_store.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"store\",\n  \"schema\": 1,\n  \"tuples\": %d,\n\
    \  \"ops\": [" n;
  store_json_rows oc rows;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

(* {1 EVAL: incremental engine vs per-stage recompilation}

   The same scenarios under two engine variants: [incremental:true]
   (the default: compiled-program cache, delta-driven activation
   scheduling, quiescence fast path) and [incremental:false] (the
   pre-cache engine: restratify + recompile every stage, execute every
   plan at every delta position every iteration).  Three repeated-stage
   workloads per scenario:

   - quiescent: the system has settled; stages keep coming (the
     paper's timestep loop never stops) but carry no new inputs.
   - trickle: one extensional fact lands per round, then the system
     re-converges.
   - burst: a batch of facts lands per round.

   Wall time is measured directly ([Obs.now_us], best of three runs on
   fresh systems) rather than through Bechamel: each run mutates its
   system, so every repetition needs its own setup.  Emits
   BENCH_eval.json. *)

let eval_tc_setup ~n ~incremental () =
  let sys = System.create () in
  let p = System.add_peer sys ~incremental "p" in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "int tc@p(x, y);\n";
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge@p(%d, %d);\n" a b))
    (Wdl_wepic.Workload.chain_edges ~n);
  Buffer.add_string buf "tc@p($x, $y) :- edge@p($x, $y);\n";
  Buffer.add_string buf "tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);\n";
  ok (Peer.load_string p (Buffer.contents buf));
  ignore (ok (System.run sys));
  sys

let eval_album_setup ~incremental () =
  let sys = System.create () in
  ft_load ~incremental sys;
  ignore (ok (System.run sys));
  sys

(* Workloads.  Quiescent stages go through [Peer.stage] directly:
   [System.run] would skip idle peers via [has_work], but the timestep
   semantics stage peers regardless — that per-stage cost is exactly
   what the fast path removes. *)
let eval_quiescent ~rounds sys () =
  let peers = System.peers sys in
  for _ = 1 to rounds do
    List.iter (fun p -> ignore (p |> Peer.stage)) peers
  done

let eval_trickle ~rounds ~fresh_fact sys () =
  for i = 1 to rounds do
    ok (Peer.insert (System.peer sys (fst (fresh_fact i))) (snd (fresh_fact i)));
    ignore (ok (System.run sys))
  done

let eval_burst ~rounds ~batch ~fresh_fact sys () =
  for r = 1 to rounds do
    for j = 1 to batch do
      let who, f = fresh_fact (((r - 1) * batch) + j) in
      ok (Peer.insert (System.peer sys who) f)
    done;
    ignore (ok (System.run sys))
  done

let eval_tc_fact i =
  (* Extends the chain: each insert genuinely grows the closure. *)
  ("p", Fact.make ~rel:"edge" ~peer:"p" [ Value.Int (1000 + i - 1); Value.Int (1000 + i) ])

let eval_album_fact i =
  ( "alice",
    Fact.make ~rel:"pictures" ~peer:"alice"
      [ Value.Int (100 + i); Value.String (Printf.sprintf "alice_t%d.jpg" i) ] )

let eval_workloads ~tc_n ~rounds =
  let tc inc = eval_tc_setup ~n:tc_n ~incremental:inc in
  let album inc = eval_album_setup ~incremental:inc in
  [ ("tc_quiescent", tc, fun sys -> eval_quiescent ~rounds sys);
    ("tc_trickle", tc, fun sys -> eval_trickle ~rounds ~fresh_fact:eval_tc_fact sys);
    ("tc_burst", tc,
     fun sys -> eval_burst ~rounds:(max 1 (rounds / 4)) ~batch:8 ~fresh_fact:eval_tc_fact sys);
    ("album_quiescent", album, fun sys -> eval_quiescent ~rounds sys);
    ("album_trickle", album,
     fun sys -> eval_trickle ~rounds ~fresh_fact:eval_album_fact sys);
    ("album_burst", album,
     fun sys -> eval_burst ~rounds:(max 1 (rounds / 4)) ~batch:8 ~fresh_fact:eval_album_fact sys) ]

let eval_measure ~tc_n ~rounds =
  List.map
    (fun (name, setup, workload) ->
      let time incremental =
        let best = ref infinity in
        for _ = 1 to 3 do
          let sys = setup incremental () in
          let t0 = Wdl_obs.Obs.now_us () in
          workload sys ();
          best := Float.min !best (Wdl_obs.Obs.now_us () -. t0)
        done;
        !best /. 1e3
      in
      let incremental_ms = time true in
      let baseline_ms = time false in
      (name, incremental_ms, baseline_ms))
    (eval_workloads ~tc_n ~rounds)

let eval_write_json ?storage rows =
  let oc = open_out "BENCH_eval.json" in
  Printf.fprintf oc "{\n  \"bench\": \"eval\",\n  \"schema\": 2,\n  \"workloads\": [";
  List.iteri
    (fun i (name, inc_ms, base_ms) ->
      Printf.fprintf oc "%s\n    { \"name\": %S, \"incremental_ms\": %.3f, \
                         \"baseline_ms\": %.3f, \"speedup\": %.2f }"
        (if i > 0 then "," else "")
        name inc_ms base_ms (base_ms /. inc_ms))
    rows;
  Printf.fprintf oc "\n  ]";
  (match storage with
  | None -> ()
  | Some (n, srows) ->
    Printf.fprintf oc ",\n  \"storage\": {\n  \"tuples\": %d,\n  \"ops\": [" n;
    store_json_rows oc srows;
    Printf.fprintf oc "\n  ]\n  }");
  Printf.fprintf oc "\n}\n";
  close_out oc

let eval () =
  header "EVAL  incremental engine vs per-stage recompilation -> BENCH_eval.json";
  pf "%-20s %14s %14s %10s@." "workload" "incremental" "baseline" "speedup";
  let rows = eval_measure ~tc_n:64 ~rounds:60 in
  List.iter
    (fun (name, inc_ms, base_ms) ->
      pf "%-20s %12.3fms %12.3fms %9.1fx@." name inc_ms base_ms
        (base_ms /. inc_ms))
    rows;
  let store_n = 120_000 in
  let consistent, srows = store_measure ~n:store_n in
  if not consistent then failwith "storage microbench: stores diverged";
  pf "@.storage microbench (%d tuples)@." store_n;
  pf "%-20s %14s %14s %10s@." "op" "columnar" "boxed" "speedup";
  List.iter
    (fun (name, col_ms, boxed_ms) ->
      pf "%-20s %12.3fms %12.3fms %9.1fx@." name col_ms boxed_ms
        (boxed_ms /. col_ms))
    srows;
  eval_write_json ~storage:(store_n, srows) rows;
  store_write_json ~n:store_n srows;
  pf "wrote BENCH_eval.json, BENCH_store.json@."

(* Deterministic equivalence smoke for the incremental engine: the
   cached/scheduled/fast-path stage pipeline must be observationally
   identical to per-stage recompilation, including across cache
   invalidations (rule added, delegation installed mid-run).  Also
   writes BENCH_eval.json (reduced sizes) so the cram suite can check
   its schema without paying full measurement time. *)
let eval_smoke () =
  let failures = ref 0 in
  let check label ok_ =
    if not ok_ then incr failures;
    pf "%-46s %s@." label (if ok_ then "ok" else "FAIL")
  in
  pf "EVAL-SMOKE incremental-engine equivalence (deterministic)@.";
  let inc = eval_tc_setup ~n:32 ~incremental:true () in
  let base = eval_tc_setup ~n:32 ~incremental:false () in
  check "tc: engines byte-identical after settle" (ft_dump inc = ft_dump base);
  let p = System.peer inc "p" in
  let quiet = ref true in
  for _ = 1 to 3 do
    if Peer.stage p <> [] then quiet := false
  done;
  check "tc: quiescent stages emit nothing" !quiet;
  List.iter
    (fun sys ->
      ignore (ok (System.run sys));
      eval_trickle ~rounds:3 ~fresh_fact:eval_tc_fact sys ())
    [ inc; base ];
  check "tc: trickle updates stay identical" (ft_dump inc = ft_dump base);
  List.iter
    (fun sys ->
      ok
        (Peer.load_string (System.peer sys "p")
           "int sym@p(x, y);\nsym@p($y, $x) :- tc@p($x, $y);");
      ignore (ok (System.run sys)))
    [ inc; base ];
  check "tc: mid-run rule addition stays identical" (ft_dump inc = ft_dump base);
  List.iter
    (fun sys ->
      Peer.receive (System.peer sys "p")
        (Webdamlog.Message.make ~src:"q" ~dst:"p" ~stage:0
           ~installs:
             [ Wdl_syntax.Parser.parse_rule "mirror@q($x, $y) :- tc@p($x, $y)" ]
           ());
      ignore (ok (System.run sys)))
    [ inc; base ];
  check "tc: mid-run delegation install stays identical"
    (ft_dump inc = ft_dump base
    && Peer.delegated_rules (System.peer inc "p")
       = Peer.delegated_rules (System.peer base "p"));
  let ainc = eval_album_setup ~incremental:true () in
  let abase = eval_album_setup ~incremental:false () in
  check "album: engines byte-identical after settle" (ft_dump ainc = ft_dump abase);
  List.iter
    (fun sys -> eval_trickle ~rounds:2 ~fresh_fact:eval_album_fact sys ())
    [ ainc; abase ];
  check "album: trickle updates stay identical" (ft_dump ainc = ft_dump abase);
  let store_n = 100_000 in
  let consistent, srows = store_measure ~n:store_n in
  check "storage: columnar equals boxed baseline" consistent;
  let rows = eval_measure ~tc_n:24 ~rounds:10 in
  (* Regression guard: every update workload must still be at least as
     fast incrementally as with per-stage recompilation. Quiescent rows
     are excluded — their speedups are order-of-magnitude and noisy. *)
  check "perf: burst/trickle speedups stay above 1.0"
    (List.for_all
       (fun (name, inc_ms, base_ms) ->
         if
           Filename.check_suffix name "burst"
           || Filename.check_suffix name "trickle"
         then base_ms /. inc_ms >= 1.0
         else true)
       rows);
  eval_write_json ~storage:(store_n, srows) rows;
  store_write_json ~n:store_n srows;
  if !failures = 0 then pf "EVAL-SMOKE passed@."
  else begin
    pf "EVAL-SMOKE: %d check(s) failed@." !failures;
    exit 1
  end

(* {1 NET: batched transport + persistent connections -> BENCH_net.json}

   Replays the exact per-destination traffic of two scenarios — the
   album delegation exchange and a two-peer transitive-closure mirror —
   through each transport twice: message-at-a-time (the pre-batching
   path; over TCP additionally [~reuse:false], one connection per
   frame) and batched ([send_many]; over TCP one persistent connection
   carrying many frames).  The traffic is recorded from a real
   [System.run], so batch boundaries are the system's own per-round,
   per-destination flushes — the bench measures transport cost, not a
   synthetic firehose. *)

module Wire = Webdamlog.Wire

(* Run [load] over a recording inmem transport; returns the flushed
   per-destination groups, in flush order. *)
let net_record load =
  let inner = Wdl_net.Inmem.create ~sizer:Webdamlog.Message.size () in
  let groups = ref [] in
  let transport =
    { inner with
      Wdl_net.Transport.send =
        (fun ~src ~dst m ->
          groups := (dst, [ (src, m) ]) :: !groups;
          inner.Wdl_net.Transport.send ~src ~dst m);
      send_many =
        (fun ~dst items ->
          if items <> [] then groups := (dst, items) :: !groups;
          inner.Wdl_net.Transport.send_many ~dst items) }
  in
  let sys = System.create ~transport () in
  load sys;
  ignore (ok (System.run sys));
  List.rev !groups

(* Album plus a trickle of fresh pictures: each insert ripples
   attendee -> sigmod -> every attendee, so the recording spans many
   rounds of small cross-peer messages. *)
let net_album_load sys =
  ft_load sys;
  ignore (ok (System.run sys));
  List.iteri
    (fun i who ->
      ok
        (Peer.insert (System.peer sys who)
           (Fact.make ~rel:"pictures" ~peer:who
              [ Value.Int (500 + i);
                Value.String (Printf.sprintf "%s_late.jpg" who) ]));
      ignore (ok (System.run sys)))
    (ft_attendees @ ft_attendees)

(* Fan-in: many producers each maintain a local transitive closure and
   mirror it to one collector — every trickle round lands a whole group
   of small same-destination messages, the traffic shape batching
   exists for (the closure itself is kept tiny so framing and
   connection overhead, not codec volume, is what's measured). *)
let net_fanin_load ?(producers = 12) ?(rounds = 60) ~n sys =
  let q = System.add_peer sys "q" in
  ok (Peer.load_string q "ext mirror@q(src, x, y);");
  let names = List.init producers (fun i -> Printf.sprintf "p%d" (i + 1)) in
  List.iteri
    (fun i name ->
      let p = System.add_peer sys name in
      let buf = Buffer.create 2048 in
      Buffer.add_string buf (Printf.sprintf "int tc@%s(x, y);\n" name);
      List.iter
        (fun (a, b) ->
          Buffer.add_string buf (Printf.sprintf "edge@%s(%d, %d);\n" name a b))
        (Wdl_wepic.Workload.chain_edges ~n);
      Buffer.add_string buf
        (Printf.sprintf "tc@%s($x, $y) :- edge@%s($x, $y);\n" name name);
      Buffer.add_string buf
        (Printf.sprintf "tc@%s($x, $z) :- tc@%s($x, $y), edge@%s($y, $z);\n"
           name name name);
      Buffer.add_string buf
        (Printf.sprintf "mirror@q(%d, $x, $y) :- tc@%s($x, $y);\n" (i + 1) name);
      ok (Peer.load_string p (Buffer.contents buf)))
    names;
  ignore (ok (System.run sys));
  (* Rotate one side edge per round: remote-head relations are re-sent
     whole every stage, so the mirrored set must stay bounded for the
     per-message cost to be about framing, not payload growth. *)
  for r = 1 to rounds do
    List.iter
      (fun name ->
        let edge v =
          Fact.make ~rel:"edge" ~peer:name [ Value.Int v; Value.Int (v + 1) ]
        in
        if r > 1 then
          ok (Peer.delete (System.peer sys name) (edge (1000 + r - 1)));
        ok (Peer.insert (System.peer sys name) (edge (1000 + r))))
      names;
    ignore (ok (System.run sys))
  done

type net_target = Net_inmem | Net_simnet | Net_tcp

(* One timed replay over real [Wire] frames: send every recorded group,
   pumping the receiving side between groups (a receiver drains its
   socket between rounds), then wait for every message to land.
   Frames are pre-encoded — encoding work is byte-for-byte identical in
   both modes (a batch frame is the concatenated message encodings plus
   one header line), so the timed section isolates what batching
   changes: framing, connection handling, delivery, and the receiver's
   decode back to messages. *)
let net_replay target ~batched groups =
  let prepared =
    List.map
      (fun (dst, items) ->
        let msgs = List.map snd items in
        (dst, Wire.batch msgs, List.map Wire.encode msgs, List.length msgs))
      groups
  in
  let total = List.fold_left (fun n (_, _, _, k) -> n + k) 0 prepared in
  let dsts = List.sort_uniq String.compare (List.map fst groups) in
  let bytes_send, bytes_recv, cleanup =
    match target with
    | Net_inmem ->
      let t = Wdl_net.Inmem.create ~sizer:String.length () in
      (t, t, fun () -> ())
    | Net_simnet ->
      let t =
        Wdl_net.Simnet.create ~sizer:String.length ~jitter:0.
          ~base_latency:0.5 ()
      in
      (t, t, fun () -> ())
    | Net_tcp ->
      let sender, cs = Wdl_net.Tcp.create ~reuse:batched () in
      let receiver, cr = Wdl_net.Tcp.create () in
      List.iter
        (fun dst ->
          Wdl_net.Tcp.register cs ~peer:dst
            { Wdl_net.Tcp.host = "127.0.0.1"; port = Wdl_net.Tcp.port cr })
        dsts;
      ( sender, receiver,
        fun () ->
          Wdl_net.Tcp.close cs;
          Wdl_net.Tcp.close cr )
  in
  let received = ref 0 in
  let pump () =
    (match target with
    | Net_simnet -> bytes_recv.Wdl_net.Transport.advance 1.0
    | _ -> ());
    List.iter
      (fun dst ->
        List.iter
          (fun frame ->
            match Wire.unbatch frame with
            | Ok ms -> received := !received + List.length ms
            | Error _ -> ())
          (bytes_recv.Wdl_net.Transport.drain dst))
      dsts
  in
  let t0 = Wdl_obs.Obs.now_us () in
  List.iter
    (fun (dst, bframe, frames, _) ->
      (if batched then bytes_send.Wdl_net.Transport.send ~src:"bench" ~dst bframe
       else
         List.iter
           (fun f -> bytes_send.Wdl_net.Transport.send ~src:"bench" ~dst f)
           frames);
      pump ())
    prepared;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while !received < total && Unix.gettimeofday () < deadline do
    pump ()
  done;
  let ms = (Wdl_obs.Obs.now_us () -. t0) /. 1e3 in
  cleanup ();
  if !received <> total then
    failwith (Printf.sprintf "net replay lost messages: %d/%d" !received total);
  (ms, total)

let net_targets =
  [ ("inmem", Net_inmem); ("simnet", Net_simnet); ("tcp", Net_tcp) ]

let net_measure ?(reps = 3) ?(fanin_rounds = 60) ~n () =
  let scenarios =
    [ ("album", net_record net_album_load);
      ("tc_fanin", net_record (net_fanin_load ~rounds:fanin_rounds ~n)) ]
  in
  List.concat_map
    (fun (sname, groups) ->
      List.map
        (fun (tname, target) ->
          let time batched =
            let best = ref infinity and msgs = ref 0 in
            for _ = 1 to reps do
              let ms, n = net_replay target ~batched groups in
              msgs := n;
              best := Float.min !best ms
            done;
            (!best, !msgs)
          in
          let per_ms, msgs = time false in
          let bat_ms, _ = time true in
          (sname ^ "/" ^ tname, msgs, per_ms, bat_ms))
        net_targets)
    scenarios

let net_write_json rows =
  let oc = open_out "BENCH_net.json" in
  Printf.fprintf oc "{\n  \"bench\": \"net\",\n  \"schema\": 1,\n  \"scenarios\": [";
  List.iteri
    (fun i (name, msgs, per_ms, bat_ms) ->
      Printf.fprintf oc
        "%s\n    { \"name\": %S, \"messages\": %d, \"per_message_ms\": %.3f, \
         \"batched_ms\": %.3f, \"speedup\": %.2f }"
        (if i > 0 then "," else "")
        name msgs per_ms bat_ms (per_ms /. bat_ms))
    rows;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

let net () =
  header "NET  batched transport vs message-at-a-time -> BENCH_net.json";
  pf "%-22s %9s %14s %14s %9s@." "scenario/transport" "messages"
    "per-message" "batched" "speedup";
  let rows = net_measure ~n:2 () in
  List.iter
    (fun (name, msgs, per_ms, bat_ms) ->
      pf "%-22s %9d %12.3fms %12.3fms %8.1fx@." name msgs per_ms bat_ms
        (per_ms /. bat_ms))
    rows;
  net_write_json rows;
  pf "wrote BENCH_net.json@."

(* Deterministic equivalence smoke: a [~batch:true] system and a
   [~batch:false] system stepped in lockstep must expose identical
   peer states after {e every} round — batching may only change wire
   units, never the per-stage delivery schedule.  Referenced from the
   cram suite; also writes BENCH_net.json (reduced sizes) for the
   schema check. *)
let net_smoke () =
  let failures = ref 0 in
  let check label ok_ =
    if not ok_ then incr failures;
    pf "%-46s %s@." label (if ok_ then "ok" else "FAIL")
  in
  pf "NET-SMOKE batched-transport equivalence (deterministic)@.";
  let lockstep label mk_transport =
    let mk batch =
      let transport, cleanup = mk_transport () in
      let sys = System.create ~transport ~batch ~drop_unknown:true () in
      ft_load sys;
      (sys, cleanup)
    in
    let sysb, cleanb = mk true in
    let sysu, cleanu = mk false in
    let identical = ref true in
    let rounds = ref 0 in
    while
      (not (System.quiescent sysb && System.quiescent sysu)) && !rounds < 60
    do
      incr rounds;
      ignore (System.round sysb);
      ignore (System.round sysu);
      if ft_dump sysb <> ft_dump sysu then identical := false
    done;
    check (label ^ ": every per-round state identical")
      (!identical && !rounds < 60);
    let batches sys =
      ((System.transport sys).Wdl_net.Transport.stats ())
        .Wdl_net.Netstats.batches
    in
    check
      (label ^ ": batched run coalesced, ablation did not")
      (batches sysb > 0 && batches sysu = 0);
    cleanb ();
    cleanu ()
  in
  lockstep "inmem" (fun () ->
      (Wdl_net.Inmem.create ~sizer:Webdamlog.Message.size (), fun () -> ()));
  lockstep "simnet" (fun () ->
      ( Simnet.create ~sizer:Webdamlog.Message.size ~jitter:0. ~seed:42 (),
        fun () -> () ));
  lockstep "tcp+wire" (fun () ->
      let bytes, ctl = Wdl_net.Tcp.create () in
      (Wire.transport bytes, fun () -> Wdl_net.Tcp.close ctl));
  net_write_json (net_measure ~reps:1 ~fanin_rounds:6 ~n:4 ());
  if !failures = 0 then pf "NET-SMOKE passed@."
  else begin
    pf "NET-SMOKE: %d check(s) failed@." !failures;
    exit 1
  end

(* {1 CHAOS: peer lifecycle under churn, loss, crashes and overload}

   The album scenario run with the failure detector on and a reliable
   session layer wired into the system lifecycle, while a scripted
   deterministic schedule injects faults: two of five peers (40%
   churn) crash mid-run and recover from their journals, a partition
   opens and heals, messages are lost and duplicated, and inserts keep
   landing throughout — including on peers that are down (deferred to
   their rejoin, as a returning laptop's owner would).  The end state
   must be byte-identical to a fault-free in-memory oracle given the
   same inserts.  A second phase overloads a bounded-inbox consumer
   (shed policies) and a congested bounded-window link (block-sender
   backpressure).  Emits BENCH_chaos.json. *)

let chaos_attendee_dirs base = List.map (fun a -> (a, Filename.concat base a))

let chaos_load sys =
  ft_load sys;
  (* A queryable membership view, and a hub-owned rule feeding a dead
     peer's extensional relation (exercises dead-lettering: the hub
     keeps deriving inbox facts while bob is down). *)
  ok
    (Peer.load_string (System.peer sys "sigmod")
       "ext sys_peers@sigmod(name, status);");
  ok (Peer.load_string (System.peer sys "bob") "ext inbox@bob(id, name);");
  ok
    (Peer.load_string (System.peer sys "sigmod")
       "inbox@bob($i, $n) :- album@sigmod($i, $n, $o);")

let chaos_insert sys a id =
  ok
    (Peer.insert (System.peer sys a)
       (Fact.make ~rel:"pictures" ~peer:a
          [ Value.Int id; Value.String (Printf.sprintf "%s_%d.jpg" a id) ]))

(* Every insert the schedule performs, in schedule order: the oracle
   applies them all to a fault-free system. *)
let chaos_inserts =
  [ ("alice", 101); ("bob", 102); ("carol", 103); ("dave", 104);
    ("alice", 105); ("bob", 106); ("carol", 107); ("dave", 108);
    ("bob", 109) ]

let chaos_expected () =
  let sys =
    System.create
      ~transport:(Wdl_net.Inmem.create ~sizer:Webdamlog.Message.size ())
      ~drop_unknown:true ()
  in
  chaos_load sys;
  ignore (ok (System.run sys));
  List.iter (fun (a, id) -> chaos_insert sys a id) chaos_inserts;
  ignore (ok (System.run sys));
  System.sync_members sys;
  ignore (ok (System.run sys));
  ft_dump sys

type chaos_outcome = {
  co_converged : bool;
  co_matched : bool;
  co_rounds : int;
  co_evictions : int;
  co_dead_lettered : int;
  co_parked : int;  (* dead letters still parked at the end: must be 0 *)
  co_retransmits : int;
  co_dup_dropped : int;
  co_errors : int;
  co_wall_ms : float;
}

let chaos_churn ~seed ~loss ~duplicate () =
  let t0 = Wdl_obs.Obs.now_us () in
  let base = Filename.temp_file "wdl_chaos" "" in
  Sys.remove base;
  Sys.mkdir base 0o755;
  let dirs = chaos_attendee_dirs base ft_attendees in
  let dir_of a = List.assoc a dirs in
  let inner, net =
    Simnet.create_with_control ~sizer:envelope_sizer ~seed ~loss ~duplicate ()
  in
  let config =
    { Reliable.default_config with
      rto = 2.0; max_rto = 8.0; max_attempts = 5; max_window = 64;
      max_held = 256 }
  in
  let transport, rctl = Reliable.wrap ~config inner in
  let sys =
    System.create ~transport ~drop_unknown:false
      ~membership:
        { Webdamlog.Membership.suspect_after = 5; dead_after = 10;
          probe_every = 3 }
      ()
  in
  System.wire_reliable sys rctl;
  chaos_load sys;
  let run_ok n = match System.run ~max_rounds:n sys with
    | Ok _ -> true
    | Error _ -> false
  in
  let converged = ref (run_ok 2000) in
  (* Checkpoint every attendee once settled: crash recovery replays the
     journal on top of this snapshot. *)
  List.iter
    (fun a ->
      Webdamlog.Persist.attach (System.peer sys a) ~dir:(dir_of a);
      Webdamlog.Persist.checkpoint (System.peer sys a) ~dir:(dir_of a))
    ft_attendees;
  let down = Hashtbl.create 4 in
  let deferred : (string, int list) Hashtbl.t = Hashtbl.create 4 in
  let insert a id =
    if Hashtbl.mem down a then
      Hashtbl.replace deferred a
        (id :: Option.value ~default:[] (Hashtbl.find_opt deferred a))
    else chaos_insert sys a id
  in
  let crash a =
    Simnet.crash net a;
    System.remove_peer sys a;
    Hashtbl.replace down a ()
  in
  let recover a =
    match Webdamlog.Persist.recover ~dir:(dir_of a) ~fallback_name:a () with
    | Error e ->
      pf "chaos: recovery of %s failed: %s@." a e;
      converged := false
    | Ok p ->
      Simnet.restart net a;
      System.adopt_peer sys p;
      Hashtbl.remove down a;
      List.iter (insert a)
        (List.rev (Option.value ~default:[] (Hashtbl.find_opt deferred a)));
      Hashtbl.remove deferred a
  in
  let events =
    [ (2, fun () -> insert "alice" 101);
      (4, fun () -> crash "bob");
      (6, fun () -> insert "bob" 102);
      (8, fun () -> Simnet.partition net ~between:"sigmod" ~and_:"carol");
      (9, fun () -> insert "carol" 103);
      (10, fun () -> crash "dave");
      (12, fun () -> insert "dave" 104);
      (16, fun () -> insert "alice" 105);
      (18, fun () -> Simnet.heal net ~between:"sigmod" ~and_:"carol");
      (20, fun () -> insert "bob" 106);
      (24, fun () -> recover "bob");
      (26, fun () -> insert "carol" 107);
      (30, fun () -> recover "dave");
      (32, fun () -> insert "dave" 108);
      (34, fun () -> insert "bob" 109) ]
  in
  for s = 1 to 40 do
    List.iter (fun (r, f) -> if r = s then f ()) events;
    ignore (System.round sys)
  done;
  converged := !converged && run_ok 3000;
  System.sync_members sys;
  converged := !converged && run_ok 500;
  let stats = (System.transport sys).Wdl_net.Transport.stats () in
  {
    co_converged = !converged;
    co_matched = ft_dump sys = chaos_expected ();
    co_rounds = System.rounds sys;
    co_evictions = System.evictions sys;
    co_dead_lettered = System.dead_lettered sys;
    co_parked = System.dead_letters sys;
    co_retransmits = stats.Wdl_net.Netstats.retransmits;
    co_dup_dropped = stats.Wdl_net.Netstats.dup_dropped;
    co_errors = System.transport_errors sys;
    co_wall_ms = (Wdl_obs.Obs.now_us () -. t0) /. 1e3;
  }

type overload_outcome = {
  ov_sheds : int;
  ov_max_depth : int;
  ov_capacity : int;
  ov_producers : int;
  ov_quiesced : bool;
  ov_stalls : int;  (* block-sender: sends parked by the bounded window *)
  ov_burst : int;
  ov_burst_delivered : int;
}

(* Eight producers each push one message per round at a consumer whose
   inbox holds four: the excess is shed (Drop_oldest keeps the freshest)
   and the depth never exceeds the bound.  Then the third policy,
   block-sender: a burst through a reliable link with a two-envelope
   send window parks the excess instead of dropping it, and everything
   is still delivered once acks open the window. *)
let chaos_overload () =
  let capacity = 4 and producers = 8 in
  let sys = System.create () in
  let cons =
    System.add_peer sys ~inbox_capacity:capacity
      ~shed:Webdamlog.Peer.Drop_oldest "hub"
  in
  ok (Peer.load_string cons "ext seen@hub(src, x);");
  let prods =
    List.init producers (fun i ->
        let name = Printf.sprintf "p%d" i in
        let p = System.add_peer sys name in
        ok
          (Peer.load_string p
             (Printf.sprintf "ext src@%s(x);\nseen@hub(%S, $x) :- src@%s($x);"
                name name name));
        p)
  in
  let max_depth = ref 0 in
  for round = 1 to 12 do
    List.iteri
      (fun i p ->
        ok
          (Peer.insert p
             (Fact.make ~rel:"src" ~peer:(Peer.name p)
                [ Value.Int ((round * 100) + i) ])))
      prods;
    ignore (System.round sys);
    max_depth := max !max_depth (Peer.inbox_length cons)
  done;
  let quiesced = match System.run sys with Ok _ -> true | Error _ -> false in
  let inner = Wdl_net.Inmem.create ~sizer:envelope_sizer () in
  let config = { Reliable.default_config with rto = 2.0; max_window = 2 } in
  let transport, rctl = Reliable.wrap ~config inner in
  let burst = 10 in
  for i = 1 to burst do
    transport.Wdl_net.Transport.send ~src:"p" ~dst:"q"
      (Webdamlog.Message.make ~src:"p" ~dst:"q" ~stage:i ~facts:None
         ~installs:[] ~retracts:[] ())
  done;
  let delivered = ref 0 and steps = ref 0 in
  while transport.Wdl_net.Transport.pending () > 0 && !steps < 200 do
    incr steps;
    transport.Wdl_net.Transport.advance 1.0;
    delivered := !delivered + List.length (transport.Wdl_net.Transport.drain "q");
    ignore (transport.Wdl_net.Transport.drain "p")
  done;
  {
    ov_sheds = Peer.sheds cons;
    ov_max_depth = !max_depth;
    ov_capacity = capacity;
    ov_producers = producers;
    ov_quiesced = quiesced;
    ov_stalls = (Reliable.stats rctl).Wdl_net.Netstats.stalled;
    ov_burst = burst;
    ov_burst_delivered = !delivered;
  }

let chaos_write_json ~loss ~duplicate co ov =
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"chaos\",\n  \"schema\": 1,\n\
    \  \"churn\": { \"peers\": %d, \"crashed\": 2, \"churn_pct\": %.1f,\n\
    \             \"loss\": %.2f, \"duplicate\": %.2f, \"rounds\": %d,\n\
    \             \"converged\": %b, \"matched\": %b, \"evictions\": %d,\n\
    \             \"dead_lettered\": %d, \"dead_letters_parked\": %d,\n\
    \             \"retransmits\": %d, \"dup_dropped\": %d,\n\
    \             \"wall_ms\": %.3f },\n\
    \  \"overload\": { \"producers\": %d, \"inbox_capacity\": %d,\n\
    \                \"sheds\": %d, \"max_inbox_depth\": %d,\n\
    \                \"quiesced\": %b, \"window_stalls\": %d,\n\
    \                \"burst\": %d, \"burst_delivered\": %d }\n}\n"
    (1 + List.length ft_attendees)
    (200.0 /. float_of_int (1 + List.length ft_attendees))
    loss duplicate co.co_rounds co.co_converged co.co_matched co.co_evictions
    co.co_dead_lettered co.co_parked co.co_retransmits co.co_dup_dropped
    co.co_wall_ms ov.ov_producers ov.ov_capacity ov.ov_sheds ov.ov_max_depth
    ov.ov_quiesced ov.ov_stalls ov.ov_burst ov.ov_burst_delivered;
  close_out oc;
  pf "wrote BENCH_chaos.json@."

let chaos () =
  header "CHAOS  lifecycle robustness under churn/loss/crash/overload";
  pf "%-28s %8s %6s %8s %11s %9s %8s %12s@." "variant" "rounds" "evict"
    "deadltr" "retransmit" "dup_drop" "matched" "time";
  let outcomes =
    List.map
      (fun (label, seed, loss, duplicate) ->
        let co = chaos_churn ~seed ~loss ~duplicate () in
        pf "%-28s %8d %6d %8d %11d %9d %8b %10.1fms@." label co.co_rounds
          co.co_evictions co.co_dead_lettered co.co_retransmits
          co.co_dup_dropped co.co_matched co.co_wall_ms;
        (label, loss, duplicate, co))
      [ ("churn 25%loss+10%dup", 11, 0.25, 0.10);
        ("churn 40%loss", 23, 0.40, 0.0); ("churn clean", 5, 0.0, 0.0) ]
  in
  let ov = chaos_overload () in
  pf "overload: %d producers -> capacity %d inbox: shed %d, peak depth %d@."
    ov.ov_producers ov.ov_capacity ov.ov_sheds ov.ov_max_depth;
  pf "block-sender: burst %d through window 2: %d stalls, %d delivered@."
    ov.ov_burst ov.ov_stalls ov.ov_burst_delivered;
  match outcomes with
  | (_, loss, duplicate, co) :: _ -> chaos_write_json ~loss ~duplicate co ov
  | [] -> ()

(* Deterministic reduced run for the cram suite and CI: fixed seed, no
   timing in the output, exit 1 on any failed check. *)
let chaos_smoke () =
  let failures = ref 0 in
  let check label ok_ =
    if not ok_ then incr failures;
    pf "%-46s %s@." label (if ok_ then "ok" else "FAIL")
  in
  pf "CHAOS-SMOKE churn/crash/overload robustness (deterministic)@.";
  let loss = 0.25 and duplicate = 0.10 in
  let co = chaos_churn ~seed:11 ~loss ~duplicate () in
  check "40% churn + faults converged" co.co_converged;
  check "state byte-identical to fault-free oracle" co.co_matched;
  check "dead peers evicted" (co.co_evictions >= 2);
  check "messages to dead peers dead-lettered"
    (co.co_dead_lettered > 0);
  check "dead letters flushed on rejoin" (co.co_parked = 0);
  check "retransmits nonzero" (co.co_retransmits > 0);
  check "dup_dropped nonzero" (co.co_dup_dropped > 0);
  check "round loop saw no transport exceptions" (co.co_errors = 0);
  let ov = chaos_overload () in
  check "bounded inbox shed under overload" (ov.ov_sheds > 0);
  check "inbox depth stayed within capacity"
    (ov.ov_max_depth > 0 && ov.ov_max_depth <= ov.ov_capacity);
  check "overloaded system still quiesced" ov.ov_quiesced;
  check "bounded window stalled the sender"
    (ov.ov_stalls > 0);
  check "stalled burst fully delivered" (ov.ov_burst_delivered = ov.ov_burst);
  chaos_write_json ~loss ~duplicate co ov;
  if !failures = 0 then pf "CHAOS-SMOKE passed@."
  else begin
    pf "CHAOS-SMOKE: %d check(s) failed@." !failures;
    exit 1
  end

(* {1 STREAM: builtin relation modules under a feed replay ->
   BENCH_stream.json}

   A feed of [stream] post deliveries (ids drawn from [distinct]
   distinct posts, so roughly half the stream is re-deliveries)
   replayed through the two dedup strategies the wrapper layer
   offers — an exact seen-set and a Bloom filter sized for the
   stream — then a second replay through a peer whose sliding-window
   builtin feeds a top-k module and a count-aggregate view, checked
   against an exact recompute of the final window. *)

module Sketch = Wdl_builtin.Sketch

let stream_fpr = 0.01

let stream_topic rng =
  (* Zipf-ish: half the deliveries concentrate on seven hot topics. *)
  if Random.State.bool rng then Printf.sprintf "hot%d" (Random.State.int rng 7)
  else Printf.sprintf "t%d" (Random.State.int rng 97)

let stream_feed ~stream ~distinct =
  let rng = Random.State.make [| 97 |] in
  (* A post's topic is fixed at authoring time; re-deliveries repeat
     the identical tuple. *)
  let topics = Array.init distinct (fun _ -> stream_topic rng) in
  Array.init stream (fun _ ->
      let id = Random.State.int rng distinct in
      [| Value.Int id; Value.String topics.(id) |])

type dedup_outcome = {
  dd_novel : int;
  dd_wall_ms : float;
  dd_memory_bytes : int;
  dd_fp_rate : float; (* bloom only: measured on fresh probes *)
}

let stream_exact feed =
  let t0 = Wdl_obs.Obs.now_us () in
  let tbl : (Wdl_store.Tuple.t, unit) Hashtbl.t =
    Hashtbl.create (Array.length feed)
  in
  let novel = ref 0 in
  Array.iter
    (fun tu ->
      if not (Hashtbl.mem tbl tu) then begin
        incr novel;
        Hashtbl.replace tbl tu ()
      end)
    feed;
  {
    dd_novel = !novel;
    dd_wall_ms = (Wdl_obs.Obs.now_us () -. t0) /. 1e3;
    dd_memory_bytes = Obj.reachable_words (Obj.repr tbl) * (Sys.word_size / 8);
    dd_fp_rate = 0.0;
  }

let stream_bloom ~distinct ~probes feed =
  let t0 = Wdl_obs.Obs.now_us () in
  let bloom = Sketch.Bloom.for_capacity ~fpr:stream_fpr distinct in
  let novel = ref 0 in
  Array.iter (fun tu -> if not (Sketch.Bloom.add_mem bloom tu) then incr novel)
    feed;
  let wall_ms = (Wdl_obs.Obs.now_us () -. t0) /. 1e3 in
  (* False-positive rate, measured on ids the feed can never contain. *)
  let rng = Random.State.make [| 23 |] in
  let hits = ref 0 in
  for i = 0 to probes - 1 do
    let tu = [| Value.Int (distinct + i); Value.String (stream_topic rng) |] in
    if Sketch.Bloom.mem bloom tu then incr hits
  done;
  {
    dd_novel = !novel;
    dd_wall_ms = wall_ms;
    dd_memory_bytes = Sketch.Bloom.memory_bytes bloom;
    dd_fp_rate = float_of_int !hits /. float_of_int probes;
  }

type topk_outcome = {
  tk_wall_ms : float;
  tk_stages : int;
  tk_queue_entries : int;
  tk_memory_bytes : int;
  tk_matched : bool; (* top-k output = exact recompute of the window *)
  tk_window_matched : bool; (* window holds exactly the trailing stages *)
}

let rec stream_take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: stream_take (n - 1) rest

let stream_rank ~k totals =
  Hashtbl.fold (fun topic total acc -> (topic, total) :: acc) totals []
  |> List.sort (fun (t1, n1) (t2, n2) ->
         match compare (n2 : int) n1 with 0 -> compare (t1 : string) t2 | c -> c)
  |> stream_take k

let stream_topk ~rounds ~batch ~window ~k () =
  let sys = System.create () in
  let hub = System.add_peer sys "hub" in
  ok
    (Peer.load_string hub
       (Printf.sprintf
          "builtin window recent@hub(id, topic) with size=%d;\n\
           builtin topk hot@hub(topic, n) with k=%d, size=%d;\n\
           int trending@hub(topic, n);\n\
           trending@hub($k, count($id)) :- recent@hub($id, $k);"
          window k window));
  let rng = Random.State.make [| 7 |] in
  let history = ref [] in
  (* (visibility stamp, topic) per delivery *)
  let next_id = ref 0 in
  let t0 = Wdl_obs.Obs.now_us () in
  for _r = 1 to rounds do
    for _i = 1 to batch do
      let id = !next_id in
      incr next_id;
      let topic = stream_topic rng in
      ok
        (Peer.insert hub
           (Fact.make ~rel:"recent" ~peer:"hub"
              [ Value.Int id; Value.String topic ]));
      ok
        (Peer.insert hub
           (Fact.make ~rel:"hot" ~peer:"hub"
              [ Value.String topic; Value.Int 1 ]));
      history := (Peer.stage_number hub + 1, topic) :: !history
    done;
    ignore (System.round sys)
  done;
  (* One more round flushes the last batch; running to quiescence would
     instead keep sliding the window over an ended feed. *)
  ignore (System.round sys);
  let wall_ms = (Wdl_obs.Obs.now_us () -. t0) /. 1e3 in
  let cutoff = Peer.stage_number hub - window in
  let live = List.filter (fun (st, _) -> st > cutoff) !history in
  let totals : (string, int) Hashtbl.t = Hashtbl.create 128 in
  List.iter
    (fun (_, topic) ->
      Hashtbl.replace totals topic
        (1 + Option.value ~default:0 (Hashtbl.find_opt totals topic)))
    live;
  let got =
    Peer.query hub "hot"
    |> List.filter_map (fun (f : Fact.t) ->
           match f.Fact.args with
           | [ Value.String t; Value.Int n ] -> Some (t, n)
           | _ -> None)
    |> List.sort compare
  in
  let expected = List.sort compare (stream_rank ~k totals) in
  let queue_entries, memory_bytes =
    match Wdl_builtin.Builtin.Registry.find (Peer.builtins hub) "hot" with
    | Some inst ->
      let s = inst.Wdl_builtin.Builtin.stats () in
      (s.Wdl_builtin.Builtin.entries, s.Wdl_builtin.Builtin.memory_bytes)
    | None -> (0, 0)
  in
  {
    tk_wall_ms = wall_ms;
    tk_stages = Peer.stage_number hub;
    tk_queue_entries = queue_entries;
    tk_memory_bytes = memory_bytes;
    tk_matched = got = expected;
    tk_window_matched = List.length (Peer.query hub "recent") = List.length live;
  }

let stream_write_json ~stream:n ~distinct ~probes exact bloom ~rounds ~batch
    ~window ~k tk =
  let oc = open_out "BENCH_stream.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"stream\",\n  \"schema\": 1,\n\
    \  \"dedup\": { \"stream\": %d, \"distinct\": %d, \"probes\": %d,\n\
    \            \"configured_fpr\": %.2f,\n\
    \            \"exact\": { \"novel\": %d, \"wall_ms\": %.3f, \"memory_bytes\": %d },\n\
    \            \"bloom\": { \"novel\": %d, \"wall_ms\": %.3f, \"memory_bytes\": %d,\n\
    \                       \"fp_rate\": %.5f, \"fp_suppressed\": %d,\n\
    \                       \"memory_ratio\": %.1f } },\n\
    \  \"topk\": { \"facts\": %d, \"stages\": %d, \"batch\": %d, \"window\": %d,\n\
    \           \"k\": %d, \"wall_ms\": %.3f, \"queue_entries\": %d,\n\
    \           \"memory_bytes\": %d, \"matched\": %b, \"window_matched\": %b }\n}\n"
    n distinct probes stream_fpr exact.dd_novel exact.dd_wall_ms
    exact.dd_memory_bytes bloom.dd_novel bloom.dd_wall_ms bloom.dd_memory_bytes
    bloom.dd_fp_rate
    (exact.dd_novel - bloom.dd_novel)
    (float_of_int exact.dd_memory_bytes /. float_of_int bloom.dd_memory_bytes)
    (rounds * batch * 2) tk.tk_stages batch window k tk.tk_wall_ms
    tk.tk_queue_entries tk.tk_memory_bytes tk.tk_matched tk.tk_window_matched;
  close_out oc;
  pf "wrote BENCH_stream.json@."

let stream () =
  header "STREAM  builtin modules under a 100k-fact feed replay";
  let n = 100_000 and distinct = 50_000 and probes = 20_000 in
  let feed = stream_feed ~stream:n ~distinct in
  let exact = stream_exact feed in
  let bloom = stream_bloom ~distinct ~probes feed in
  pf "%-10s %10s %12s %10s %10s@." "dedup" "novel" "memory" "fp_rate" "time";
  pf "%-10s %10d %11dB %10s %8.1fms@." "exact" exact.dd_novel
    exact.dd_memory_bytes "-" exact.dd_wall_ms;
  pf "%-10s %10d %11dB %9.4f%% %8.1fms@." "bloom" bloom.dd_novel
    bloom.dd_memory_bytes (100. *. bloom.dd_fp_rate) bloom.dd_wall_ms;
  let rounds = 500 and batch = 100 and window = 64 and k = 5 in
  let tk = stream_topk ~rounds ~batch ~window ~k () in
  pf "topk: %d facts over %d stages, window %d: queue %d (%dB), \
      matched %b, %0.1fms@."
    (rounds * batch * 2) tk.tk_stages window tk.tk_queue_entries
    tk.tk_memory_bytes tk.tk_matched tk.tk_wall_ms;
  stream_write_json ~stream:n ~distinct ~probes exact bloom ~rounds ~batch
    ~window ~k tk

(* Deterministic reduced-topk run for the cram suite and CI: the dedup
   phase keeps the full 100k stream (it is cheap and the acceptance
   numbers are measured there); no timing in the output; exit 1 on any
   failed check. *)
let stream_smoke () =
  let failures = ref 0 in
  let check label ok_ =
    if not ok_ then incr failures;
    pf "%-46s %s@." label (if ok_ then "ok" else "FAIL")
  in
  pf "STREAM-SMOKE feed replay through builtin modules (deterministic)@.";
  let n = 100_000 and distinct = 50_000 and probes = 20_000 in
  let feed = stream_feed ~stream:n ~distinct in
  let truth : (Wdl_store.Tuple.t, unit) Hashtbl.t = Hashtbl.create n in
  Array.iter (fun tu -> Hashtbl.replace truth tu ()) feed;
  let exact = stream_exact feed in
  let bloom = stream_bloom ~distinct ~probes feed in
  check "exact dedup counts every distinct delivery once"
    (exact.dd_novel = Hashtbl.length truth);
  check "bloom never misses a duplicate" (bloom.dd_novel <= exact.dd_novel);
  check "bloom false-positive rate under 3x the bound"
    (bloom.dd_fp_rate < 3.0 *. stream_fpr);
  check "bloom memory at least 8x under exact"
    (exact.dd_memory_bytes > 8 * bloom.dd_memory_bytes);
  let rounds = 60 and batch = 25 and window = 16 and k = 5 in
  let tk = stream_topk ~rounds ~batch ~window ~k () in
  check "windowed top-k matches exact recompute of the window"
    tk.tk_matched;
  check "window holds exactly the trailing stages" tk.tk_window_matched;
  check "top-k queue bounded by the window"
    (tk.tk_queue_entries <= window * batch);
  stream_write_json ~stream:n ~distinct ~probes exact bloom ~rounds ~batch
    ~window ~k tk;
  if !failures = 0 then pf "STREAM-SMOKE passed@."
  else begin
    pf "STREAM-SMOKE: %d check(s) failed@." !failures;
    exit 1
  end

(* {1 PAR: multi-core parallel fixpoint -> BENCH_par.json}

   The sharded semi-naive engine (delta split by hash of each tuple's
   interned first column across worker domains, canonical merge at the
   iteration barrier) against the sequential ablation, on the two
   canonical scenarios: the 64-node transitive-closure chain and the
   album delegation exchange.  Every parallel end state is checked
   byte-identical to the [domains:1] run before its time is reported —
   the engine is only allowed to be fast if it is also exact.  The JSON
   records the host's hardware thread count: on a single-core box the
   scaling curve is flat by construction (domains time-slice one core
   and pay the barrier), so speedups are only meaningful when
   [hardware_threads] exceeds the domain count. *)

let par_domain_counts = [ 1; 2; 4; 8 ]

let par_tc_setup ~domains () =
  let sys = System.create () in
  let p = System.add_peer sys ~domains "p" in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "int tc@p(x, y);\n";
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "edge@p(%d, %d);\n" a b))
    (Wdl_wepic.Workload.chain_edges ~n:64);
  Buffer.add_string buf "tc@p($x, $y) :- edge@p($x, $y);\n";
  Buffer.add_string buf "tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);\n";
  ok (Peer.load_string p (Buffer.contents buf));
  sys

let par_album_setup ~domains () =
  let sys = System.create () in
  ft_load ~domains sys;
  sys

let par_scenarios =
  [ ("tc_chain64", par_tc_setup); ("album", par_album_setup) ]

(* One (scenario, domains) cell: best-of-3 run-to-quiescence wall time,
   the end-state dump, and the parallel engine's own counters from the
   last run. *)
let par_cell setup ~domains =
  let wall_us = ref infinity and dump = ref "" in
  let engaged0 = !Wdl_eval.Fixpoint.par_runs_total in
  for _ = 1 to 3 do
    Wdl_obs.Obs.clear Wdl_obs.Obs.default;
    let sys = setup ~domains () in
    let t0 = Wdl_obs.Obs.now_us () in
    ignore (ok (System.run sys));
    wall_us := Float.min !wall_us (Wdl_obs.Obs.now_us () -. t0);
    dump := ft_dump sys
  done;
  let engaged = !Wdl_eval.Fixpoint.par_runs_total > engaged0 in
  let iters = obs_sum_metric "wdl_par_iterations_total" in
  let rerouted = obs_sum_metric "wdl_par_rerouted_tuples_total" in
  Wdl_obs.Obs.clear Wdl_obs.Obs.default;
  (!wall_us /. 1e3, !dump, engaged, iters, rerouted)

let par_measure () =
  List.map
    (fun (name, setup) ->
      let seq_ms, seq_dump, seq_engaged, _, _ = par_cell setup ~domains:1 in
      if seq_engaged then
        failwith (name ^ ": domains:1 must take the sequential path");
      let cells =
        List.map
          (fun domains ->
            if domains = 1 then (1, seq_ms, true, 0., 0.)
            else begin
              let ms, dump, engaged, iters, rerouted =
                par_cell setup ~domains
              in
              if dump <> seq_dump then
                failwith
                  (Printf.sprintf "%s: %d-domain end state diverged" name
                     domains);
              if not engaged then
                failwith
                  (Printf.sprintf "%s: parallel engine never engaged at %d"
                     name domains);
              (domains, ms, true, iters, rerouted)
            end)
          par_domain_counts
      in
      (name, cells))
    par_scenarios

let par_write_json results =
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"par\",\n  \"schema\": 1,\n  \"hardware_threads\": %d,\n\
    \  \"scenarios\": ["
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (name, cells) ->
      let _, seq_ms, _, _, _ = List.hd cells in
      Printf.fprintf oc "%s\n    { \"name\": %S, \"runs\": ["
        (if i > 0 then "," else "")
        name;
      List.iteri
        (fun j (domains, ms, identical, iters, rerouted) ->
          Printf.fprintf oc
            "%s\n      { \"domains\": %d, \"wall_ms\": %.3f, \
             \"speedup_vs_seq\": %.2f, \"end_state_identical\": %b, \
             \"par_iterations\": %.0f, \"rerouted_tuples\": %.0f }"
            (if j > 0 then "," else "")
            domains ms (seq_ms /. ms) identical iters rerouted)
        cells;
      Printf.fprintf oc "\n    ] }")
    results;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

let par () =
  header "PAR  sharded parallel fixpoint vs sequential ablation -> BENCH_par.json";
  pf "hardware threads: %d@." (Domain.recommended_domain_count ());
  let results = par_measure () in
  List.iter
    (fun (name, cells) ->
      let _, seq_ms, _, _, _ = List.hd cells in
      pf "@.%-16s %8s %10s %10s %12s %10s@." name "domains" "wall_ms"
        "speedup" "iterations" "rerouted";
      List.iter
        (fun (domains, ms, _, iters, rerouted) ->
          pf "%-16s %8d %10.3f %9.2fx %12.0f %10.0f@." "" domains ms
            (seq_ms /. ms) iters rerouted)
        cells)
    results;
  par_write_json results;
  pf "@.wrote BENCH_par.json@."

(* Deterministic equivalence smoke for the cram suite and CI: parallel
   end states must be byte-identical to the sequential ablation, the
   engine must actually engage above one domain and must stay on the
   untouched sequential path at [domains:1].  No timing in the check
   lines; exit 1 on any failure.  Writes BENCH_par.json as the CI
   artifact (its wall numbers are whatever this host produced). *)
let par_smoke () =
  let failures = ref 0 in
  let check label ok_ =
    if not ok_ then incr failures;
    pf "%-46s %s@." label (if ok_ then "ok" else "FAIL")
  in
  pf "PAR-SMOKE parallel fixpoint equivalence (deterministic)@.";
  let results =
    try Some (par_measure ()) with
    | Failure msg ->
      pf "%s@." msg;
      None
  in
  (match results with
  | None -> check "parallel == sequential end state" false
  | Some results ->
    List.iter
      (fun (name, cells) ->
        List.iter
          (fun (domains, _, identical, _, _) ->
            if domains > 1 then
              check
                (Printf.sprintf "%s: %d-domain end state byte-identical" name
                   domains)
                identical)
          cells;
        check (name ^ ": domains:1 takes the sequential path") true)
      results;
    par_write_json results;
    pf "wrote BENCH_par.json@.");
  if !failures = 0 then pf "PAR-SMOKE passed@."
  else begin
    pf "PAR-SMOKE: %d check(s) failed@." !failures;
    exit 1
  end

let experiments =
  [ ("t1", t1); ("t2", t2); ("t3", t3); ("t4", t4); ("t5", t5); ("t6", t6);
    ("t7", t7); ("a1", a1); ("a2", a2); ("f2", f2); ("f3", f3); ("d1", d1);
    ("d3", d3); ("d4", d4); ("ft", ft); ("ft-smoke", ft_smoke); ("obs", obs);
    ("eval", eval); ("eval-smoke", eval_smoke); ("net", net);
    ("net-smoke", net_smoke); ("chaos", chaos); ("chaos-smoke", chaos_smoke);
    ("stream", stream); ("stream-smoke", stream_smoke); ("par", par);
    ("par-smoke", par_smoke) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.lowercase_ascii names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        pf "unknown experiment %s (known: %s)@." name
          (String.concat ", " (List.map fst experiments)))
    requested;
  pf "@.done.@."
