(* The wdl command-line interface: the demo's GUI surface, textual.

   wdl parse FILE            check + pretty-print a program
   wdl run FILE              single-peer fixpoint, dump relations
   wdl simulate P=FILE ...   multi-peer system to quiescence
   wdl wepic                 scripted Wepic scenario (Figs 1-3) *)

open Cmdliner

(* Not opening Wdl_syntax: its Term module would shadow Cmdliner.Term. *)
module Fact = Wdl_syntax.Fact
module Rule = Wdl_syntax.Rule
module Wparser = Wdl_syntax.Parser
module Safety = Wdl_syntax.Safety
module Program = Wdl_syntax.Program
module Analysis = Wdl_analysis.Analysis
module Diagnostic = Wdl_analysis.Diagnostic

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    exit 1

let pp_relation ppf (peer, rel) =
  let facts = Webdamlog.Peer.query peer rel in
  Format.fprintf ppf "@[<v 2>%s@%s (%d):@ %a@]@." rel
    (Webdamlog.Peer.name peer) (List.length facts)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
       Fact.pp)
    facts

let dump_peer peer =
  List.iter
    (fun rel -> Format.printf "%a" pp_relation (peer, rel))
    (Webdamlog.Peer.relation_names peer)

(* parse *)

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    match Wparser.program_located ~file (read_file file) with
    | Error err ->
      Format.eprintf "%s@."
        (Diagnostic.render_text [ Analysis.of_parse_error ~file err ]);
      exit 1
    | Ok located ->
      let program = Wdl_syntax.Located.strip located in
      let errors =
        Analysis.check_located located
        |> List.filter (fun (d : Diagnostic.t) ->
               d.severity = Diagnostic.Error)
      in
      if errors <> [] then begin
        Format.eprintf "%s@." (Diagnostic.render_text errors);
        exit 1
      end;
      Format.printf "%a@." Program.pp program
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse, safety-check and pretty-print a program")
    Term.(const run $ file)

(* check *)

let parse_all files =
  List.map
    (fun file -> (file, Wparser.program_located ~file (read_file file)))
    files

let parse_errors parsed =
  List.filter_map
    (fun (file, r) ->
      match r with
      | Error err -> Some (Analysis.of_parse_error ~file err)
      | Ok _ -> None)
    parsed

let parsed_ok parsed =
  List.filter_map
    (fun (file, r) ->
      match r with Ok located -> Some (file, located) | Error _ -> None)
    parsed

let check_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text), $(b,json) or $(b,sarif).")
  in
  let peer_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "peer" ] ~docv:"NAME"
          ~doc:
            "Analyze each file as a program of this peer (default: inferred \
             from the file's declarations and facts).")
  in
  let system =
    Arg.(
      value & flag
      & info [ "system" ]
          ~doc:
            "Check all FILEs as one distributed system: declaration and \
             usage tables are shared across files (a relation declared in \
             one program counts as reachable from another), and the \
             knowledge-flow diagnostics see every program's rules \
             (enables WDL064/WDL065).")
  in
  let pedantic =
    Arg.(
      value & flag
      & info [ "pedantic" ]
          ~doc:
            "Also emit style notes the evaluator already compensates for \
             (WDL031 body-order).")
  in
  let run format peer_name system pedantic files =
    let parsed = parse_all files in
    let diags =
      if system then
        match parse_errors parsed with
        | [] -> Analysis.check_system ~pedantic (parsed_ok parsed)
        | errs -> errs
      else
        List.concat_map
          (fun (file, r) ->
            match r with
            | Error err -> [ Analysis.of_parse_error ~file err ]
            | Ok located ->
              Analysis.check_located ?self:peer_name ~pedantic located)
          parsed
    in
    (match format with
    | `Text -> if diags <> [] then print_endline (Diagnostic.render_text diags)
    | `Json -> print_endline (Diagnostic.render_json diags)
    | `Sarif ->
      print_endline (Diagnostic.render_sarif ~rules:Analysis.codes diags));
    exit (Diagnostic.exit_code diags)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static analysis with coded diagnostics (see docs/ANALYSIS.md); \
          exits 0 when clean, 1 on warnings, 2 on errors")
    Term.(const run $ format $ peer_name $ system $ pedantic $ files)

(* flow *)

let flow_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("dot", `Dot) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text), $(b,json) or $(b,dot).")
  in
  let run format files =
    let parsed = parse_all files in
    (match parse_errors parsed with
    | [] -> ()
    | errs ->
      Format.eprintf "%s@." (Diagnostic.render_text errs);
      exit 2);
    let fl = Analysis.flow_of_system (parsed_ok parsed) in
    print_endline
      (match format with
      | `Text -> Wdl_analysis.Flow.render_text fl
      | `Json -> Wdl_analysis.Flow.render_json fl
      | `Dot -> Wdl_analysis.Flow.render_dot fl)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Knowledge-flow analysis over one or more programs checked as a \
          system: which peers may learn facts derived from each relation, \
          through which rule chains")
    Term.(const run $ format $ files)

(* run *)

let strategy_conv =
  Arg.enum
    [ ("seminaive", Wdl_eval.Fixpoint.Seminaive);
      ("naive", Wdl_eval.Fixpoint.Naive) ]

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Wdl_eval.Fixpoint.Seminaive
    & info [ "strategy" ] ~docv:"S")

let no_replan_arg =
  Arg.(
    value & flag
    & info [ "no-replan" ]
        ~doc:"Evaluate rule bodies exactly as written: disable \
              cost-based join ordering and cardinality-band \
              replanning")

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let peer_name =
    Arg.(value & opt string "local" & info [ "peer" ] ~docv:"NAME")
  in
  let run peer_name strategy no_replan file =
    let sys = Webdamlog.System.create () in
    let peer =
      Webdamlog.System.add_peer sys ~strategy ~replan:(not no_replan) peer_name
    in
    or_die (Webdamlog.Peer.load_string peer (read_file file));
    let rounds = or_die (Webdamlog.System.run sys) in
    Format.printf "fixpoint after %d round(s)@.@." rounds;
    dump_peer peer;
    match Webdamlog.Peer.last_errors peer with
    | [] -> ()
    | errors ->
      Format.printf "@.%d runtime error(s):@." (List.length errors);
      List.iter
        (fun e -> Format.printf "  %a@." Wdl_eval.Runtime_error.pp e)
        errors
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one peer's program to fixpoint and dump its relations")
    Term.(const run $ peer_name $ strategy_arg $ no_replan_arg $ file)

(* simulate *)

let binding_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i when i > 0 ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | Some _ | None -> Error (`Msg "expected PEER=FILE")
  in
  let print ppf (p, f) = Format.fprintf ppf "%s=%s" p f in
  Arg.conv (parse, print)

let simulate_cmd =
  let bindings =
    Arg.(non_empty & pos_all binding_conv [] & info [] ~docv:"PEER=FILE")
  in
  let trace_flag = Arg.(value & flag & info [ "trace" ] ~doc:"Print the event trace") in
  let metrics_flag =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print a metrics-registry snapshot after the run")
  in
  let latency =
    Arg.(value & opt (some float) None & info [ "latency" ]
           ~doc:"Use the simulated network with this base latency")
  in
  let run trace metrics latency bindings =
    let transport =
      Option.map
        (fun base_latency ->
          Wdl_net.Simnet.create ~sizer:Webdamlog.Message.size ~base_latency ())
        latency
    in
    (* All simulated peers live in this process: undeliverable messages
       are dropped rather than blocking quiescence. *)
    let sys = Webdamlog.System.create ?transport ~drop_unknown:true () in
    let peers =
      List.map
        (fun (name, file) ->
          let peer = Webdamlog.System.add_peer sys name in
          or_die (Webdamlog.Peer.load_string peer (read_file file));
          peer)
        bindings
    in
    let rounds = or_die (Webdamlog.System.run sys) in
    Format.printf "quiescent after %d round(s), %d message(s)@.@." rounds
      (Webdamlog.System.messages_sent sys);
    List.iter
      (fun peer ->
        Format.printf "=== peer %s ===@." (Webdamlog.Peer.name peer);
        dump_peer peer;
        let delegated = Webdamlog.Peer.delegated_rules peer in
        if delegated <> [] then begin
          Format.printf "delegated rules:@.";
          List.iter
            (fun (src, r) -> Format.printf "  from %s: %a@." src Rule.pp r)
            delegated
        end;
        Format.printf "stats: %a@.@." Webdamlog.Peer.pp_stats
          (Webdamlog.Peer.stats peer))
      peers;
    if trace then
      List.iter
        (fun peer ->
          List.iter
            (fun e -> Format.printf "%a@." Webdamlog.Trace.pp_event e)
            (Webdamlog.Trace.events (Webdamlog.Peer.trace peer)))
        peers;
    if metrics then
      Format.printf "=== metrics ===@.%s" (Wdl_obs.Obs.dump_string ())
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a system of peers to quiescence and dump their state")
    Term.(const run $ trace_flag $ metrics_flag $ latency $ bindings)

(* fmt *)

let fmt_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let in_place =
    Arg.(value & flag & info [ "i"; "in-place" ] ~doc:"Rewrite the file")
  in
  let run in_place file =
    let program = or_die (Wparser.program (read_file file)) in
    let formatted = Format.asprintf "%a@." Program.pp program in
    if in_place then begin
      let oc = open_out_bin file in
      output_string oc formatted;
      close_out oc
    end
    else print_string formatted
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Canonically format a program (parse + pretty-print)")
    Term.(const run $ in_place $ file)

(* analyze *)

let analyze_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let peer_name = Arg.(value & opt string "local" & info [ "peer" ] ~docv:"NAME") in
  let run peer_name file =
    let program = or_die (Wparser.program (read_file file)) in
    let intensional_rels =
      List.filter_map
        (fun (d : Wdl_syntax.Decl.t) ->
          if d.Wdl_syntax.Decl.kind = Wdl_syntax.Decl.Intensional then
            Some d.Wdl_syntax.Decl.rel
          else None)
        (Program.decls program)
    in
    let intensional rel = List.mem rel intensional_rels in
    let rules = Program.rules program in
    Format.printf "%d declaration(s), %d fact(s), %d rule(s)@.@."
      (List.length (Program.decls program))
      (List.length (Program.facts program))
      (List.length rules);
    List.iteri
      (fun i rule ->
        Format.printf "@[<v 2>rule %d: %a@]@." (i + 1) Rule.pp rule;
        (match Safety.check_rule rule with
        | Ok () -> ()
        | Error errs ->
          List.iter
            (fun d -> Format.printf "  %a@." Diagnostic.pp_text d)
            (Analysis.safety_diags errs));
        let c = Webdamlog.Classify.classify ~self:peer_name ~intensional rule in
        Format.printf "  %s@." (Webdamlog.Classify.describe c);
        (match c.Webdamlog.Classify.reads_remote with
        | [] -> ()
        | peers ->
          Format.printf "  reads remote peers: %s@." (String.concat ", " peers));
        Format.printf "@.")
      rules;
    match
      Wdl_eval.Stratify.compute ~self:peer_name ~intensional rules
    with
    | Ok { Wdl_eval.Stratify.strata } ->
      Format.printf "stratification: %d stratum(s)@." (Array.length strata)
    | Error e ->
      Format.printf "stratification FAILS: %a@." Wdl_eval.Stratify.pp_error e;
      exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static analysis: safety, rule classification, stratification")
    Term.(const run $ peer_name $ file)

(* query *)

let query_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let q = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY") in
  let peer_name = Arg.(value & opt string "local" & info [ "peer" ] ~docv:"NAME") in
  let run peer_name file q =
    let sys = Webdamlog.System.create () in
    let peer = Webdamlog.System.add_peer sys peer_name in
    or_die (Webdamlog.Peer.load_string peer (read_file file));
    ignore (or_die (Webdamlog.System.run sys));
    let answer = or_die (Webdamlog.Peer.ask peer q) in
    Format.printf "%s@." (String.concat "\t" answer.Webdamlog.Peer.columns);
    List.iter
      (fun row ->
        Format.printf "%s@."
          (String.concat "\t" (List.map Wdl_syntax.Value.to_string row)))
      answer.Webdamlog.Peer.rows;
    (match answer.Webdamlog.Peer.requires_delegation with
    | [] -> ()
    | ds ->
      Format.printf "@.this query needs delegation to run fully:@.";
      List.iter
        (fun (dst, r) -> Format.printf "  at %s: %a@." dst Rule.pp r)
        ds);
    List.iter
      (fun e -> Format.eprintf "warning: %a@." Wdl_eval.Runtime_error.pp e)
      answer.Webdamlog.Peer.errors
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run an ad-hoc query (the demo's Query tab) over a program")
    Term.(const run $ peer_name $ file $ q)

(* serve: one process hosting peers over real TCP *)

let endpoint_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ host; port ] -> (
      match int_of_string_opt port with
      | Some port -> Ok { Wdl_net.Tcp.host; port }
      | None -> Error (`Msg "expected HOST:PORT"))
    | _ -> Error (`Msg "expected HOST:PORT")
  in
  let print ppf (e : Wdl_net.Tcp.endpoint) =
    Format.fprintf ppf "%s:%d" e.Wdl_net.Tcp.host e.Wdl_net.Tcp.port
  in
  Arg.conv (parse, print)

let remote_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      let name = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      Result.map
        (fun ep -> (name, ep))
        (Arg.conv_parser endpoint_conv rest)
    | None -> Error (`Msg "expected NAME=HOST:PORT")
  in
  let print ppf (n, e) =
    Format.fprintf ppf "%s=%a" n (Arg.conv_printer endpoint_conv) e
  in
  Arg.conv (parse, print)

let serve_cmd =
  let bindings =
    Arg.(non_empty & pos_all binding_conv [] & info [] ~docv:"PEER=FILE")
  in
  let port = Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT") in
  let remotes =
    Arg.(value & opt_all remote_conv [] & info [ "remote" ] ~docv:"NAME=HOST:PORT")
  in
  let idle_exit =
    Arg.(value & opt float 5.0 & info [ "idle-exit" ] ~docv:"SECONDS"
           ~doc:"Exit after this long with no work (0 = run forever)")
  in
  let state_dir =
    Arg.(value & opt (some string) None & info [ "state" ] ~docv:"DIR"
           ~doc:"Durable state: recover each peer from DIR/<peer>/ (checkpoint \
                 + journal), keep journaling, checkpoint on exit. The program \
                 file is only loaded the first time.")
  in
  let run port remotes idle_exit state_dir bindings =
    let bytes, ctl = Wdl_net.Tcp.create ~port () in
    List.iter (fun (name, ep) -> Wdl_net.Tcp.register ctl ~peer:name ep) remotes;
    Format.printf "listening on 127.0.0.1:%d@." (Wdl_net.Tcp.port ctl);
    let sys =
      Webdamlog.System.create ~transport:(Webdamlog.Wire.transport bytes) ()
    in
    Option.iter
      (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
      state_dir;
    let peer_dir name =
      Option.map (fun dir -> Filename.concat dir name) state_dir
    in
    let peers =
      List.map
        (fun (name, file) ->
          match peer_dir name with
          | Some dir
            when Sys.file_exists (Filename.concat dir "snapshot.wdl")
                 || Sys.file_exists (Filename.concat dir "journal.wal") ->
            let peer = or_die (Webdamlog.Persist.recover ~dir ~fallback_name:name ()) in
            Webdamlog.System.adopt_peer sys peer;
            Format.printf "recovered %s from %s@." name dir;
            peer
          | Some dir ->
            let peer = Webdamlog.System.add_peer sys name in
            Webdamlog.Persist.attach peer ~dir;
            or_die (Webdamlog.Peer.load_string peer (read_file file));
            peer
          | None ->
            let peer = Webdamlog.System.add_peer sys name in
            or_die (Webdamlog.Peer.load_string peer (read_file file));
            peer)
        bindings
    in
    let idle_since = ref (Unix.gettimeofday ()) in
    let rec loop () =
      let progressed = Webdamlog.System.round sys > 0 in
      let busy =
        progressed
        || List.exists Webdamlog.Peer.has_work (Webdamlog.System.peers sys)
      in
      let now = Unix.gettimeofday () in
      if busy then begin
        idle_since := now;
        loop ()
      end
      else if idle_exit > 0. && now -. !idle_since >= idle_exit then ()
      else begin
        Unix.sleepf 0.02;
        loop ()
      end
    in
    loop ();
    Wdl_net.Tcp.close ctl;
    List.iter
      (fun peer ->
        (match peer_dir (Webdamlog.Peer.name peer) with
        | Some dir ->
          Webdamlog.Persist.checkpoint peer ~dir;
          Format.printf "checkpointed %s to %s@." (Webdamlog.Peer.name peer) dir
        | None -> ());
        Format.printf "=== peer %s ===@." (Webdamlog.Peer.name peer);
        dump_peer peer)
      peers
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Host peers in this process over TCP; peers in other processes \
             are reached via --remote")
    Term.(const run $ port $ remotes $ idle_exit $ state_dir $ bindings)

(* repl *)

let repl_help =
  {|statements end with ';' and may span lines:
  pictures@local(1, "a.jpg");          insert a fact
  v@local($x) :- pictures@local($x);   add a rule
  ext m@local(a, b);                   declare a relation
commands:
  ?HEAD :- BODY;        ad-hoc query (the demo's Query tab)
  .run                  run stages to fixpoint
  .dump [REL]           show relations (or one relation)
  .rules                show own and delegated rules
  .flow                 knowledge-flow graph of the current program
  .pending              show pending delegations
  .accept N             accept pending delegation number N (from .pending)
  .delete FACT;         delete a fact
  .explain FACT;        why-provenance of a derived fact
  .save FILE / .load FILE   snapshot to / restore from a file
  .help  .quit|}

let repl_cmd =
  let peer_name = Arg.(value & opt string "local" & info [ "peer" ] ~docv:"NAME") in
  let run peer_name =
    let peer = ref (Webdamlog.Peer.create peer_name) in
    Webdamlog.Peer.set_track_provenance !peer true;
    let settle () =
      let n = ref 0 in
      while Webdamlog.Peer.has_work !peer && !n < 1000 do
        ignore (Webdamlog.Peer.stage !peer);
        incr n
      done;
      List.iter
        (fun e -> Format.printf "warning: %a@." Wdl_eval.Runtime_error.pp e)
        (Webdamlog.Peer.last_errors !peer)
    in
    let dump_one rel =
      List.iter
        (fun f -> Format.printf "  %a@." Fact.pp f)
        (Webdamlog.Peer.query !peer rel)
    in
    let command line =
      match String.split_on_char ' ' (String.trim line) with
      | [ ".quit" ] | [ ".exit" ] -> raise Exit
      | [ ".help" ] -> print_endline repl_help
      | [ ".run" ] ->
        settle ();
        Format.printf "stage %d@." (Webdamlog.Peer.stage_number !peer)
      | [ ".dump" ] -> dump_peer !peer
      | [ ".dump"; rel ] -> dump_one rel
      | [ ".rules" ] ->
        List.iter
          (fun r -> Format.printf "  %a@." Rule.pp r)
          (Webdamlog.Peer.rules !peer);
        List.iter
          (fun (src, r) -> Format.printf "  (from %s) %a@." src Rule.pp r)
          (Webdamlog.Peer.delegated_rules !peer)
      | [ ".flow" ] ->
        print_string (Wdl_analysis.Flow.render_text (Webdamlog.Peer.flow !peer))
      | [ ".pending" ] ->
        List.iteri
          (fun i (src, r) -> Format.printf "  [%d] from %s: %a@." i src Rule.pp r)
          (Webdamlog.Peer.pending_delegations !peer)
      | [ ".accept"; n ] -> (
        match int_of_string_opt n with
        | None -> print_endline "usage: .accept N"
        | Some n -> (
          match List.nth_opt (Webdamlog.Peer.pending_delegations !peer) n with
          | None -> print_endline "no such pending delegation"
          | Some (src, rule) ->
            if Webdamlog.Peer.accept_delegation !peer ~src rule then settle ()))
      | ".delete" :: rest -> (
        match Wparser.fact (String.concat " " rest) with
        | Error msg -> print_endline msg
        | Ok f -> (
          match Webdamlog.Peer.delete !peer f with
          | Ok () -> settle ()
          | Error msg -> print_endline msg))
      | ".explain" :: rest -> (
        match Wparser.fact (String.concat " " rest) with
        | Error msg -> print_endline msg
        | Ok f -> print_string (Webdamlog.Peer.explain_to_string !peer f))
      | [ ".save"; file ] ->
        let oc = open_out_bin file in
        output_string oc (Webdamlog.Peer.snapshot !peer);
        close_out oc;
        Format.printf "saved %s@." file
      | [ ".load"; file ] -> (
        match Webdamlog.Peer.restore (read_file file) with
        | Ok p ->
          Webdamlog.Peer.set_track_provenance p true;
          peer := p;
          Format.printf "restored peer %s (stage %d)@."
            (Webdamlog.Peer.name p) (Webdamlog.Peer.stage_number p)
        | Error msg -> print_endline msg)
      | _ -> print_endline "unknown command; .help lists commands"
    in
    let statement text =
      if String.length text > 0 && text.[0] = '?' then begin
        let q = String.sub text 1 (String.length text - 1) in
        match Webdamlog.Peer.ask !peer q with
        | Error msg -> print_endline msg
        | Ok answer ->
          Format.printf "%s@."
            (String.concat "\t" answer.Webdamlog.Peer.columns);
          List.iter
            (fun row ->
              Format.printf "%s@."
                (String.concat "\t" (List.map Wdl_syntax.Value.to_string row)))
            answer.Webdamlog.Peer.rows;
          List.iter
            (fun (dst, r) ->
              Format.printf "(needs delegation at %s: %a)@." dst Rule.pp r)
            answer.Webdamlog.Peer.requires_delegation
      end
      else
        match Wparser.program_located ~file:"<repl>" text with
        | Error err ->
          print_endline
            (Diagnostic.render_text [ Analysis.of_parse_error ~file:"<repl>" err ])
        | Ok located ->
          let kind_of rel p =
            if p = Webdamlog.Peer.name !peer then
              Wdl_store.Database.kind (Webdamlog.Peer.database !peer) rel
            else None
          in
          let warnings =
            List.concat_map
              (Analysis.check_statement ~self:(Webdamlog.Peer.name !peer)
                 ~kind_of)
              located
            |> List.filter (fun (d : Diagnostic.t) ->
                   d.severity = Diagnostic.Warning)
          in
          (match
             Webdamlog.Peer.load_program !peer (Wdl_syntax.Located.strip located)
           with
          | Ok () -> settle ()
          | Error msg -> print_endline msg);
          if warnings <> [] then
            print_endline (Diagnostic.render_text warnings)
    in
    Format.printf "WebdamLog repl: peer %s (.help for commands)@." peer_name;
    let buf = Buffer.create 256 in
    (try
       while true do
         if Buffer.length buf = 0 then print_string "> " else print_string "| ";
         flush stdout;
         let line = input_line stdin in
         let trimmed = String.trim line in
         if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '.'
         then command trimmed
         else begin
           Buffer.add_string buf line;
           Buffer.add_char buf '\n';
           if String.contains line ';' then begin
             let text = Buffer.contents buf in
             Buffer.clear buf;
             statement text
           end
         end
       done
     with End_of_file | Exit -> ());
    Format.printf "@.bye@."
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive single-peer session")
    Term.(const run $ peer_name)

(* web: the demo's GUI *)

let web_cmd =
  let bindings =
    Arg.(non_empty & pos_all binding_conv [] & info [] ~docv:"PEER=FILE")
  in
  let port = Arg.(value & opt int 8080 & info [ "port" ] ~docv:"PORT") in
  let duration =
    Arg.(value & opt float 0. & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Stop after this long (0 = run until killed)")
  in
  let run port duration bindings =
    let sys = Webdamlog.System.create ~drop_unknown:true () in
    List.iter
      (fun (name, file) ->
        let peer = Webdamlog.System.add_peer sys name in
        or_die (Webdamlog.Peer.load_string peer (read_file file)))
      bindings;
    let settle () = ignore (Webdamlog.System.run sys) in
    settle ();
    let server = Wdl_web.Httpd.start ~port (Wdl_web.Ui.handler sys ~settle) in
    Format.printf "serving http://127.0.0.1:%d/@." (Wdl_web.Httpd.port server);
    let started = Unix.gettimeofday () in
    let rec loop () =
      let served = Wdl_web.Httpd.poll server in
      if served = 0 then Unix.sleepf 0.02;
      if duration > 0. && Unix.gettimeofday () -. started >= duration then ()
      else loop ()
    in
    loop ();
    Wdl_web.Httpd.stop server
  in
  Cmd.v
    (Cmd.info "web" ~doc:"Serve the Wepic-style Web interface for a system of peers")
    Term.(const run $ port $ duration $ bindings)

(* wepic *)

let wepic_cmd =
  let attendees = Arg.(value & opt int 3 & info [ "attendees" ] ~docv:"N") in
  let pictures = Arg.(value & opt int 4 & info [ "pictures" ] ~docv:"M") in
  let web =
    Arg.(value & opt (some int) None & info [ "web" ] ~docv:"PORT"
           ~doc:"After the scripted run, serve the Web interface for the \
                 whole Wepic system on this port (the demo's closing act)")
  in
  let run web n m =
    let env = Wdl_wepic.Wepic.create () in
    Wdl_wepic.Workload.populate env
      { Wdl_wepic.Workload.default with attendees = n; pictures_per_attendee = m };
    let rounds = or_die (Wdl_wepic.Wepic.run env) in
    Format.printf "wepic: %d attendees, %d pictures each, quiescent in %d rounds@."
      n m rounds;
    let viewer = Wdl_wepic.Workload.attendee_name 1 in
    List.iter
      (fun a ->
        if a <> viewer then
          Wdl_wepic.Wepic.select_attendee env ~viewer ~attendee:a)
      (Wdl_wepic.Wepic.attendees env);
    ignore (or_die (Wdl_wepic.Wepic.run env));
    Format.printf "@.%s" (Wdl_wepic.Wepic.render_ui env ~viewer);
    Format.printf "@.pictures@sigmod: %d   facebook group: %d   emails: %d@."
      (List.length (Wdl_wepic.Wepic.pictures_at_sigmod env))
      (List.length (Wdl_wepic.Wepic.pictures_on_facebook env))
      (Wdl_wrappers.Email.total_sent (Wdl_wepic.Wepic.email env));
    match web with
    | None -> ()
    | Some port ->
      let sys = Wdl_wepic.Wepic.system env in
      let settle () = ignore (Wdl_wepic.Wepic.run env) in
      let server = Wdl_web.Httpd.start ~port (Wdl_web.Ui.handler sys ~settle) in
      Format.printf "@.serving http://127.0.0.1:%d/ (ctrl-c to stop)@."
        (Wdl_web.Httpd.port server);
      let rec loop () =
        if Wdl_web.Httpd.poll server = 0 then Unix.sleepf 0.02;
        loop ()
      in
      loop ()
  in
  Cmd.v
    (Cmd.info "wepic" ~doc:"Run a scripted Wepic scenario and render its state")
    Term.(const run $ web $ attendees $ pictures)

let main =
  Cmd.group
    (Cmd.info "wdl" ~version:"1.0.0"
       ~doc:"WebdamLog: distributed datalog with delegation")
    [ parse_cmd; check_cmd; flow_cmd; fmt_cmd; analyze_cmd; run_cmd;
      simulate_cmd; query_cmd; serve_cmd; repl_cmd; web_cmd; wepic_cmd ]

let () = exit (Cmd.eval main)
