(* Reliable delivery under fault injection, end to end: the SIGMOD
   album scenario (§3) run over a simulated network that loses a
   quarter of its messages and duplicates a tenth, with a partition
   that heals and a peer that crashes mid-run and recovers from its
   write-ahead journal.

   The reliable session layer (lib/net/reliable.ml) wraps any
   transport with per-link sequence numbers, cumulative acks,
   retransmission with exponential backoff and receiver-side dedup —
   so the rule engine above it sees exactly-once, per-link-FIFO
   delivery and converges to the same state as on a perfect network.

   Run with: dune exec examples/fault_tolerance.exe *)

module Peer = Webdamlog.Peer
module System = Webdamlog.System
module Simnet = Wdl_net.Simnet
module Reliable = Wdl_net.Reliable
open Wdl_syntax

let ok = function Ok v -> v | Error e -> failwith e
let pf fmt = Format.printf fmt

let envelope_sizer e =
  match e.Reliable.env_payload with
  | Some m -> Webdamlog.Message.size m
  | None -> 8

let attendees = [ "alice"; "bob"; "carol" ]

(* sigmod aggregates everyone's pictures into the conference album;
   every attendee mirrors the album back home. *)
let load sys =
  let sigmod = System.add_peer sys "sigmod" in
  ok
    (Peer.load_string sigmod
       (String.concat "\n"
          ("ext attendee@sigmod(a);"
           :: "int album@sigmod(id, name, owner);"
           :: "album@sigmod($i, $n, $a) :- attendee@sigmod($a), \
               pictures@$a($i, $n);"
           :: List.map
                (fun a -> Printf.sprintf "attendee@sigmod(%S);" a)
                attendees)));
  List.iter
    (fun a ->
      let p = System.add_peer sys a in
      ok
        (Peer.load_string p
           (Printf.sprintf
              {|ext pictures@%s(id, name);
                int myAlbum@%s(id, name, owner);
                pictures@%s(1, "%s_1.jpg");
                myAlbum@%s($i, $n, $o) :- album@sigmod($i, $n, $o);|}
              a a a a a)))
    attendees

let () =
  (* A hostile network: 25% loss, 10% duplication, deterministic. *)
  let inner, net =
    Simnet.create_with_control ~sizer:envelope_sizer ~seed:11 ~loss:0.25
      ~duplicate:0.10 ()
  in
  let transport, rctl = Reliable.wrap inner in
  (* drop_unknown:false — a message addressed to a crashed (removed)
     peer must stay queued for retransmission, because fact batches
     are only re-sent when they change. *)
  let sys = System.create ~transport ~drop_unknown:false () in
  load sys;

  pf "running the album scenario over a network with 25%% loss and \
      10%% duplication...@.";
  for _ = 1 to 3 do
    ignore (System.round sys)
  done;

  pf "partitioning sigmod from alice mid-run...@.";
  Simnet.partition net ~between:"sigmod" ~and_:"alice";
  for _ = 1 to 10 do
    ignore (System.round sys)
  done;
  Simnet.heal net ~between:"sigmod" ~and_:"alice";
  pf "partition healed.@.";

  (* Crash bob after checkpointing: his journal is his memory. *)
  let dir = Filename.temp_file "wdl_ft_example" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Webdamlog.Persist.attach (System.peer sys "bob") ~dir;
  ignore (ok (System.run ~max_rounds:2000 sys));
  Webdamlog.Persist.checkpoint (System.peer sys "bob") ~dir;

  ok
    (Peer.insert (System.peer sys "bob")
       (Fact.make ~rel:"pictures" ~peer:"bob"
          [ Value.Int 2; Value.String "bob_2.jpg" ]));
  ignore (ok (System.run ~max_rounds:2000 sys));

  pf "@.crashing bob (journal at %s)...@." dir;
  Simnet.crash net "bob";
  System.remove_peer sys "bob";
  (* Life goes on while bob is down. *)
  ok
    (Peer.insert (System.peer sys "alice")
       (Fact.make ~rel:"pictures" ~peer:"alice"
          [ Value.Int 2; Value.String "alice_2.jpg" ]));
  for _ = 1 to 5 do
    ignore (System.round sys)
  done;

  pf "recovering bob from snapshot + journal...@.";
  let replayed = ref 0 in
  let bob =
    ok
      (Webdamlog.Persist.recover
         ~on_replay:(fun _ -> incr replayed)
         ~dir ~fallback_name:"bob" ())
  in
  pf "  %d journal entr%s replayed on top of the checkpoint@." !replayed
    (if !replayed = 1 then "y" else "ies");
  Simnet.restart net "bob";
  System.adopt_peer sys bob;
  ignore (ok (System.run ~max_rounds:2000 sys));

  pf "@.converged after %d rounds.@." (System.rounds sys);
  let album = List.length (Peer.query (System.peer sys "sigmod") "album") in
  pf "album@sigmod holds %d pictures (3 peers, alice and bob added one \
      each mid-run)@."
    album;
  List.iter
    (fun a ->
      pf "  myAlbum@%-6s mirrors %d@." a
        (List.length (Peer.query (System.peer sys a) "myAlbum")))
    attendees;

  let s = Reliable.stats rctl in
  pf "@.what the reliable layer absorbed:@.";
  pf "  %d message(s) lost or stuck in the partition (retransmitted)@."
    s.Wdl_net.Netstats.retransmits;
  pf "  %d duplicate(s) dropped at the receivers@."
    s.Wdl_net.Netstats.dup_dropped;
  pf "  %d lost by the simulated network in total@."
    (Simnet.messages_lost net);
  assert (album = 5);
  assert (Reliable.dead_links rctl = []);
  pf "@.the engine never saw any of it: exactly-once, in-order, \
      converged.@."
