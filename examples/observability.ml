(* Observability: drive a three-peer delegation chain, then look at
   everything the run left behind in the metrics registry — the same
   data `GET /metrics` serves in Prometheus text format and
   `GET /trace.json` renders for chrome://tracing.

   Run with: dune exec examples/observability.exe
   (cram-checked: the output is diffed against observability.expected) *)

module Obs = Wdl_obs.Obs
module Peer = Webdamlog.Peer
module System = Webdamlog.System

let ok = function Ok v -> v | Error e -> failwith e
let section fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

(* Alice aggregates over Bob, who mirrors from Carol: facts and
   delegations cross both links. *)
let () =
  Obs.clear Obs.default;
  let sys = System.create () in
  let alice = System.add_peer sys "Alice" in
  let bob = System.add_peer sys "Bob" in
  let carol = System.add_peer sys "Carol" in
  ok
    (Peer.load_string alice
       {|int album@Alice(id, name);
         ext friend@Alice(f);
         friend@Alice("Bob");
         album@Alice($i, $n) :- friend@Alice($f), pictures@$f($i, $n);|});
  ok
    (Peer.load_string bob
       {|int pictures@Bob(id, name);
         pictures@Bob($i, $n) :- originals@Carol($i, $n);|});
  ok
    (Peer.load_string carol
       {|ext originals@Carol(id, name);
         originals@Carol(1, "sea.jpg");
         originals@Carol(2, "hall.jpg");|});
  let rounds = ok (System.run sys) in
  Format.printf "quiescent after %d round(s), %d message(s)@." rounds
    (System.messages_sent sys);
  Format.printf "Alice's album: %d picture(s)@."
    (List.length (Peer.query alice "album"));

  section "Obs.dump snapshot (what `wdl simulate --metrics` prints)";
  print_string (Obs.dump_string ());

  section "Prometheus exposition (what GET /metrics serves)";
  (* Histogram sums are timings, so only the deterministic lines. *)
  let exposition = Wdl_obs.Prometheus.expose () in
  String.split_on_char '\n' exposition
  |> List.filter (fun line ->
         String.starts_with ~prefix:"# TYPE wdl_eval" line
         || String.starts_with ~prefix:"wdl_peer_derivations_total" line
         || String.starts_with ~prefix:"wdl_net_sent_total" line)
  |> List.iter print_endline;

  section "Chrome trace (what GET /trace.json serves)";
  let events =
    List.concat
      (List.mapi
         (fun i p -> Webdamlog.Trace.to_chrome ~tid:i (Peer.trace p))
         (System.peers sys))
  in
  let count ph =
    List.length
      (List.filter (fun e -> e.Wdl_obs.Chrome_trace.ph = ph) events)
  in
  Format.printf "%d trace events: %d stage begin/end pairs, %d instants@."
    (List.length events) (count "B") (count "i")
