// Emilien's peer: his local photo collection.
ext pictures@Emilien(id, name, owner, data);
pictures@Emilien(32, "sea.jpg", "Emilien", "100...");
pictures@Emilien(33, "talk.jpg", "Emilien", "101...");
