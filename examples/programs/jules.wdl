// Jules' peer: the paper's Section 3 view over selected attendees.
ext selectedAttendee@Jules(attendee);
ext pictures@Jules(id, name, owner, data);
int attendeePictures@Jules(id, name, owner, data);

selectedAttendee@Jules("Emilien");
pictures@Jules(7, "hall.jpg", "Jules", "110...");

attendeePictures@Jules($id, $name, $owner, $data) :-
  selectedAttendee@Jules($attendee),
  pictures@$attendee($id, $name, $owner, $data);
