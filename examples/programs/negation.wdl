// Stratified negation: conference sessions nobody registered for.
ext session@local(name);
ext registered@local(session, person);
int attended@local(session);
int empty@local(session);
session@local("datalog");
session@local("provenance");
session@local("crowdsourcing");
registered@local("datalog", "joe");
registered@local("provenance", "alice");
attended@local($s) :- registered@local($s, $w);
empty@local($s) :- session@local($s), not attended@local($s);
