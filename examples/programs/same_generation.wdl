// The classic same-generation program: relatives at equal depth.
ext parent@local(parent, child);
int sg@local(x, y);
parent@local("ann", "bob");
parent@local("ann", "carol");
parent@local("bob", "dave");
parent@local("carol", "erin");
sg@local($x, $y) :- parent@local($p, $x), parent@local($p, $y);
sg@local($x, $y) :- parent@local($px, $x), sg@local($px, $py), parent@local($py, $y);
