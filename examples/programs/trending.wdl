// Trending topics across three peers: the trends hub pulls every
// source's posts (delegation per source), mirrors them into a
// sliding-window builtin, and counts per topic over just that window.
// A top-k builtin ranks the hub's own lookup activity alongside.
// Run with the feeder peers:
//   wdl simulate trends=trending.wdl alice=trending_alice.wdl bob=trending_bob.wdl
ext source@trends(peer);
int posts@trends(id, topic);
builtin window recent@trends(id, topic) with size=16;
int trending@trends(topic, n);
builtin topk hot@trends(topic, n) with k=2, size=16;
int top@trends(topic, n);

source@trends("alice");
source@trends("bob");

// The hub's own lookups weight the hot ranking (facts write straight
// into the top-k module; it accumulates weights, not set membership).
hot@trends("cats", 2);
hot@trends("databases", 1);
hot@trends("ocaml", 1);

posts@trends($id, $k) :- source@trends($w), posts@$w($id, $k);

recent@trends($id, $k) :- posts@trends($id, $k);

trending@trends($k, count($id)) :- recent@trends($id, $k);

top@trends($k, $n) :- hot@trends($k, $n);
