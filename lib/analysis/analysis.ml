open Wdl_syntax

(* ------------------------------------------------------------------ *)
(* Catalogue                                                          *)
(* ------------------------------------------------------------------ *)

let codes : (string * Diagnostic.severity * string) list =
  [
    ("WDL000", Error, "parse error");
    ("WDL001", Error, "head variable not bound by the body");
    ("WDL002", Error, "relation/peer variable not bound by the prefix");
    ("WDL003", Error, "variable in negated atom not bound by the prefix");
    ("WDL004", Error, "variable in builtin not bound by the prefix");
    ("WDL005", Error, "assignment rebinds an already-bound variable");
    ("WDL006", Error, "constant in relation/peer position is not a name");
    ("WDL007", Error, "statement targets a peer other than the loading peer");
    ("WDL008", Error, "relation redeclared with a conflicting kind");
    ("WDL009", Error, "fact asserts into an intensional relation");
    ("WDL010", Error, "rule set has a cycle through negation/aggregation");
    ("WDL011", Error, "conflicting arity between declarations and facts");
    ("WDL012", Warning, "rule atom arity differs from the declared arity");
    ("WDL013", Error, "aggregate rule is not entirely local");
    ("WDL020", Warning, "relation used but never declared");
    ("WDL021", Warning, "relation declared but never used");
    ("WDL022", Warning, "rule can never fire (empty, underivable body atom)");
    ("WDL030", Info, "delegation boundary report");
    ("WDL031", Info, "pedantic: the compiler reorders this body for locality");
    ("WDL032", Warning, "delegation through an open-ended peer variable");
    ("WDL040", Warning, "duplicate rule (identical up to renaming)");
    ("WDL041", Warning, "rule subsumed by a more general rule");
    ("WDL050", Error, "write into a read-only builtin relation");
    ("WDL051", Error, "rule reads and writes the same builtin relation");
    ("WDL052", Warning, "builtin relation written but never read");
    ("WDL053", Error, "invalid builtin declaration");
    ("WDL054", Warning, "rule derives into a weight-accumulating builtin");
    ("WDL060", Warning, "fact leakage: local data reaches a foreign peer");
    ("WDL061", Warning, "delegation-amplification cycle");
    ("WDL062", Warning, "non-terminating relation/peer invention");
    ("WDL063", Warning, "write-after-hop into an ext/builtin relation");
    ("WDL064", Warning, "flow into a peer outside the file set");
    ("WDL065", Warning, "cross-file redeclaration shadows a relation");
  ]

(* ------------------------------------------------------------------ *)
(* Items: statements with optional spans                              *)
(* ------------------------------------------------------------------ *)

type item = {
  stmt : Program.statement;
  span : Span.t option;
  head_span : Span.t option;
  lit_spans : Span.t list;
}

let item_of_located : Located.statement -> item = function
  | Located.Decl { node; span } ->
    { stmt = Program.Decl node; span = Some span; head_span = None; lit_spans = [] }
  | Located.Fact { node; span } ->
    { stmt = Program.Fact node; span = Some span; head_span = None; lit_spans = [] }
  | Located.Rule r ->
    {
      stmt = Program.Rule r.Located.rule;
      span = Some r.Located.span;
      head_span = Some r.Located.head_span;
      lit_spans = r.Located.lit_spans;
    }

let item_of_plain stmt = { stmt; span = None; head_span = None; lit_spans = [] }

let lit_span it i =
  match List.nth_opt it.lit_spans i with
  | Some s -> Some s
  | None -> it.span

(* ------------------------------------------------------------------ *)
(* Small helpers                                                      *)
(* ------------------------------------------------------------------ *)

let one_line pp v =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf max_int;
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let var_set vars =
  match vars with
  | [] -> "nothing"
  | vs -> String.concat ", " (List.map (fun v -> "$" ^ v) vs)

let rel_at rel peer = Printf.sprintf "%s@%s" rel peer

let atom_key (a : Atom.t) =
  match Term.as_name a.Atom.rel, Term.as_name a.Atom.peer with
  | Some r, Some p -> Some (r, p)
  | _ -> None

let infer_self (prog : Program.t) =
  let decl =
    List.find_map
      (function Program.Decl d -> Some d.Decl.peer | _ -> None)
      prog
  in
  let fact () =
    List.find_map
      (function Program.Fact f -> Some f.Fact.peer | _ -> None)
      prog
  in
  let rule_head () =
    List.find_map
      (function
        | Program.Rule r -> Term.as_name r.Rule.head.Atom.peer
        | _ -> None)
      prog
  in
  match decl with
  | Some p -> Some p
  | None -> ( match fact () with Some p -> Some p | None -> rule_head ())

let safety_code = function
  | Safety.Unbound_in_head _ -> "WDL001"
  | Safety.Unbound_name_var _ -> "WDL002"
  | Safety.Unbound_in_negation _ -> "WDL003"
  | Safety.Unbound_in_builtin _ -> "WDL004"
  | Safety.Rebound_assignment _ -> "WDL005"
  | Safety.Invalid_name_constant _ -> "WDL006"

let safety_diags ?span errs =
  List.map
    (fun e ->
      Diagnostic.error ?span (safety_code e)
        (one_line Safety.pp_error e))
    errs

let aggregate_locality_error ~self ?span (r : Rule.t) =
  if Rule.is_aggregate r && not (Wdl_eval.Fixpoint.statically_local ~self r)
  then
    Some
      (Diagnostic.error ?span "WDL013"
         (Printf.sprintf
            "aggregate rules must be entirely local: every body atom's peer \
             must name %s"
            self))
  else None

(* ------------------------------------------------------------------ *)
(* Alpha-renaming (duplicate detection)                               *)
(* ------------------------------------------------------------------ *)

let map_term f = function Term.Var x -> Term.Var (f x) | t -> t

let map_atom f (a : Atom.t) =
  Atom.make ~rel:(map_term f a.Atom.rel) ~peer:(map_term f a.Atom.peer)
    (List.map (map_term f) a.Atom.args)

let rec map_expr f = function
  | Expr.Const _ as e -> e
  | Expr.Var x -> Expr.Var (f x)
  | Expr.Add (a, b) -> Expr.Add (map_expr f a, map_expr f b)
  | Expr.Sub (a, b) -> Expr.Sub (map_expr f a, map_expr f b)
  | Expr.Mul (a, b) -> Expr.Mul (map_expr f a, map_expr f b)
  | Expr.Div (a, b) -> Expr.Div (map_expr f a, map_expr f b)

let map_lit f = function
  | Literal.Pos a -> Literal.Pos (map_atom f a)
  | Literal.Neg a -> Literal.Neg (map_atom f a)
  | Literal.Cmp (op, e1, e2) -> Literal.Cmp (op, map_expr f e1, map_expr f e2)
  | Literal.Assign (x, e) -> Literal.Assign (f x, map_expr f e)

(* Canonical variable names in first-occurrence order: two rules equal
   up to variable renaming canonicalise to equal rules. *)
let canonical (r : Rule.t) : Rule.t =
  let order = Rule.vars r in
  let assoc = List.mapi (fun i x -> (x, Printf.sprintf "v%d" i)) order in
  let f x = match List.assoc_opt x assoc with Some y -> y | None -> x in
  {
    Rule.head = map_atom f r.Rule.head;
    body = List.map (map_lit f) r.Rule.body;
    aggs =
      List.map
        (fun (i, (s : Aggregate.spec)) ->
          (i, { s with Aggregate.var = f s.Aggregate.var }))
        r.Rule.aggs;
  }

(* ------------------------------------------------------------------ *)
(* Subsumption: does [general] derive at least what [specific] does?  *)
(* ------------------------------------------------------------------ *)

let bind_term theta x t =
  match List.assoc_opt x theta with
  | Some t' -> if Term.equal t t' then Some theta else None
  | None -> Some ((x, t) :: theta)

let match_term theta tb ta =
  match tb with
  | Term.Const _ -> if Term.equal tb ta then Some theta else None
  | Term.Var x -> bind_term theta x ta

let match_atom theta (b : Atom.t) (a : Atom.t) =
  if List.length b.Atom.args <> List.length a.Atom.args then None
  else
    List.fold_left2
      (fun acc tb ta -> Option.bind acc (fun th -> match_term th tb ta))
      (Some theta)
      (b.Atom.rel :: b.Atom.peer :: b.Atom.args)
      (a.Atom.rel :: a.Atom.peer :: a.Atom.args)

let rec match_expr theta eb ea =
  match eb, ea with
  | Expr.Const _, Expr.Const _ ->
    if Expr.equal eb ea then Some theta else None
  | Expr.Var x, Expr.Var y -> bind_term theta x (Term.Var y)
  | Expr.Var x, Expr.Const v -> bind_term theta x (Term.Const v)
  | Expr.Add (a, b), Expr.Add (c, d)
  | Expr.Sub (a, b), Expr.Sub (c, d)
  | Expr.Mul (a, b), Expr.Mul (c, d)
  | Expr.Div (a, b), Expr.Div (c, d) ->
    Option.bind (match_expr theta a c) (fun th -> match_expr th b d)
  | _ -> None

let match_lit theta lb la =
  match lb, la with
  | Literal.Pos b, Literal.Pos a | Literal.Neg b, Literal.Neg a ->
    match_atom theta b a
  | Literal.Cmp (ob, b1, b2), Literal.Cmp (oa, a1, a2) when ob = oa ->
    Option.bind (match_expr theta b1 a1) (fun th -> match_expr th b2 a2)
  | _ -> None

(* [subsumes ~self general specific]: a substitution of [general]'s
   variables maps its head onto [specific]'s head and its body into a
   subset of [specific]'s body. Restricted to fully-local,
   aggregate-free rules (delegation and assignments make body order
   semantically significant, so we stay out of their way). *)
let subsumes ~self (general : Rule.t) (specific : Rule.t) =
  let plain r =
    r.Rule.aggs = []
    && Boundary.analyze ~self r = None
    && List.for_all
         (function Literal.Assign _ -> false | _ -> true)
         r.Rule.body
  in
  if not (plain general && plain specific) then false
  else
    match match_atom [] general.Rule.head specific.Rule.head with
    | None -> false
    | Some theta ->
      let rec cover theta = function
        | [] -> true
        | lb :: rest ->
          List.exists
            (fun la ->
              match match_lit theta lb la with
              | Some th -> cover th rest
              | None -> false)
            specific.Rule.body
      in
      cover theta general.Rule.body

(* ------------------------------------------------------------------ *)
(* Boundary diagnostics (shared between file and live checks)         *)
(* ------------------------------------------------------------------ *)

let pp_body ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Literal.pp ppf body

let boundary_diags ~self ~kind_of ?(with_info = true) ?(pedantic = false) it
    (r : Rule.t) =
  match Boundary.analyze ~self r with
  | None -> []
  | Some rep ->
    let span = lit_span it rep.Boundary.index in
    let target_desc =
      match rep.Boundary.target with
      | Boundary.Remote p -> Printf.sprintf "peer %s" p
      | Boundary.Dynamic x -> Printf.sprintf "the peer bound to $%s" x
    in
    let info =
      if not with_info then []
      else
        [
          Diagnostic.info ?span "WDL030"
            (Printf.sprintf
               "delegation boundary at body literal %d: evaluation suspends \
                here and ships the residual rule to %s, carrying bindings of \
                %s"
               (rep.Boundary.index + 1)
               target_desc
               (var_set rep.Boundary.shipped_vars));
        ]
    in
    (* Pedantic only: since the planner ([Plan.order_body]) performs
       this reorder itself at compile time, the note is informational —
       it tells the author what the compiler will actually evaluate,
       not something they must fix. With a constant [stats] the
       planner's order is exactly the profitable-locality reorder. *)
    let reorder =
      if not pedantic then []
      else
        let planned =
          Wdl_eval.Plan.order_body ~self ~stats:(fun _ -> 0) r
        in
        if Rule.equal planned r then []
        else
          match Boundary.improve ~self r with
          | None -> []
          | Some imp ->
            let notes =
              Diagnostic.note
                (Printf.sprintf
                   "shipped bindings: %s as written, %s as evaluated"
                   (var_set rep.Boundary.shipped_vars)
                   (var_set imp.Boundary.new_shipped))
              ::
              (match imp.Boundary.single_peer_residual with
              | Some p ->
                [
                  Diagnostic.note
                    (Printf.sprintf
                       "in the planned order the residual mentions only %s, \
                        so it evaluates there without further delegation"
                       p);
                ]
              | None -> [])
            in
            [
              Diagnostic.info ?span ~notes "WDL031"
                (Printf.sprintf
                   "body order as written ships %d literal(s) that %s can \
                    evaluate locally; the compiler plans this body as `%s`"
                   imp.Boundary.moved self
                   (one_line pp_body planned.Rule.body));
            ]
    in
    let escape =
      match rep.Boundary.target with
      | Boundary.Remote _ -> []
      | Boundary.Dynamic x -> (
        let warn ?binder_idx reason =
          let notes =
            match binder_idx with
            | Some i ->
              [
                Diagnostic.note ?span:(lit_span it i)
                  "the peer variable is bound here";
              ]
            | None -> []
          in
          [
            Diagnostic.warning ?span ~notes "WDL032"
              (Printf.sprintf
                 "delegation target $%s is open-ended: %s; any peer it names \
                  receives the residual rule and the bindings it carries"
                 x reason);
          ]
        in
        match rep.Boundary.binder with
        | Some (i, Literal.Pos a) -> (
          match atom_key a with
          | Some (rel, p) when p = self -> (
            match kind_of rel p with
            | Some Decl.Extensional -> []
            | Some Decl.Intensional ->
              warn ~binder_idx:i
                (Printf.sprintf "it is bound by the derived view %s"
                   (rel_at rel p))
            | None ->
              warn ~binder_idx:i
                (Printf.sprintf "it is bound by the undeclared relation %s"
                   (rel_at rel p)))
          | Some (rel, p) ->
            warn ~binder_idx:i
              (Printf.sprintf "it is bound by the remote relation %s"
                 (rel_at rel p))
          | None ->
            warn ~binder_idx:i
              "it is bound by an atom with a variable relation or peer")
        | Some (i, Literal.Assign _) ->
          warn ~binder_idx:i "it is computed by an assignment"
        | Some (_, (Literal.Neg _ | Literal.Cmp _)) | None ->
          warn "it is not bound by a positive local atom")
    in
    info @ reorder @ escape

(* ------------------------------------------------------------------ *)
(* Duplicate / subsumption over a rule list                           *)
(* ------------------------------------------------------------------ *)

let duplicate_diags ~self (rules : (item * Rule.t) list) =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let canon = Array.map (fun (_, r) -> canonical r) arr in
  let flagged = Array.make n false in
  let out = ref [] in
  let describe (it, r) =
    match it.span with
    | Some s -> Diagnostic.note ~span:s "the earlier rule is here"
    | None ->
      Diagnostic.note
        (Printf.sprintf "the earlier rule is `%s`" (one_line Rule.pp r))
  in
  for j = 1 to n - 1 do
    let itj, rj = arr.(j) in
    if not flagged.(j) then begin
      (try
         for i = 0 to j - 1 do
           if Rule.equal canon.(i) canon.(j) then begin
             flagged.(j) <- true;
             out :=
               Diagnostic.warning ?span:itj.span
                 ~notes:[ describe arr.(i) ]
                 "WDL040"
                 "duplicate rule: identical to an earlier rule up to \
                  variable renaming"
               :: !out;
             raise Exit
           end
         done
       with Exit -> ());
      if not flagged.(j) then
        try
          for i = 0 to j - 1 do
            let _, ri = arr.(i) in
            if subsumes ~self ri rj then begin
              flagged.(j) <- true;
              out :=
                Diagnostic.warning ?span:itj.span
                  ~notes:[ describe arr.(i) ]
                  "WDL041"
                  "redundant rule: an earlier, more general rule already \
                   derives everything this rule derives"
                :: !out;
              raise Exit
            end
          done
        with Exit -> ()
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The whole-program (or whole-system) check                          *)
(* ------------------------------------------------------------------ *)

(* A group is one program file analyzed from its own peer's point of
   view. Several groups checked together form a multi-peer system:
   declaration/fact tables, relation-usage and knowledge-flow passes
   run over the union, while per-rule, stratification and redundancy
   passes keep each file's own [self]. *)
type group = { g_self : string; g_file : string option; g_items : item list }

let check_groups ?(peer_mode = false) ?(pedantic = false)
    (groups : group list) =
  let multi = List.length groups > 1 in
  let items = List.concat_map (fun g -> g.g_items) groups in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let decl_tbl : (string * string, Decl.kind * int * Span.t option) Hashtbl.t =
    Hashtbl.create 16
  in
  let fact_tbl : (string * string, int * Span.t option) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Builtin declarations: (kind, full config, span of the defining
     declaration), keyed like [decl_tbl]. *)
  let builtin_tbl :
      (string * string, string * Decl.builtin * Span.t option) Hashtbl.t =
    Hashtbl.create 4
  in
  let derived : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let star_derived = ref false in
  let covered : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun g -> Hashtbl.replace covered g.g_self ()) groups;
  (* Peers the file says something about: only their relations are
     fair game for whole-program checks; references to peers the file
     never defines are assumed to live elsewhere. *)
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Decl d -> Hashtbl.replace covered d.Decl.peer ()
      | Program.Fact f -> Hashtbl.replace covered f.Fact.peer ()
      | Program.Rule r -> (
        match Term.as_name r.Rule.head.Atom.peer with
        | Some p ->
          (match Term.as_name r.Rule.head.Atom.rel with
          | Some rel -> Hashtbl.replace derived (rel, p) ()
          | None -> star_derived := true)
        | None -> star_derived := true))
    items;

  (* -- pass 1: statement-order consistency, building the tables ---- *)
  List.iter (fun { g_self = self; g_items; _ } ->
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Decl d ->
        let key = (d.Decl.rel, d.Decl.peer) in
        let name = rel_at d.Decl.rel d.Decl.peer in
        if peer_mode && d.Decl.peer <> self then
          emit
            (Diagnostic.error ?span:it.span "WDL007"
               (Printf.sprintf
                  "declaration of %s targets peer %s; a program loaded at %s \
                   may only declare relations at %s"
                  name d.Decl.peer self self));
        (match Hashtbl.find_opt decl_tbl key with
        | Some (k0, a0, sp0) ->
          let note =
            match sp0 with
            | Some s -> [ Diagnostic.note ~span:s "first declared here" ]
            | None -> []
          in
          if k0 <> d.Decl.kind then
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL008"
                 (Printf.sprintf "relation %s redeclared as %s (it is %s)"
                    name
                    (one_line Decl.pp_kind d.Decl.kind)
                    (one_line Decl.pp_kind k0)))
          else if a0 <> Decl.arity d then
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL011"
                 (Printf.sprintf
                    "relation %s redeclared with arity %d (it has arity %d)"
                    name (Decl.arity d) a0))
          else if multi then (
            (* WDL065: a compatible redeclaration is legal within one
               file but ambiguous across a system — two files both
               reading as the owner of the relation shadow each
               other. *)
            match sp0, it.span with
            | Some s0, Some s1 when s0.Span.file <> s1.Span.file ->
              emit
                (Diagnostic.warning ?span:it.span ~notes:note "WDL065"
                   (Printf.sprintf
                      "relation %s is redeclared in a different file of the \
                       system; the declarations shadow each other, so no \
                       single file owns %s"
                      name name))
            | _ -> ())
        | None ->
          (match Hashtbl.find_opt fact_tbl key with
          | Some (fa, fsp) ->
            let note =
              match fsp with
              | Some s -> [ Diagnostic.note ~span:s "the fact is here" ]
              | None -> []
            in
            if d.Decl.kind = Decl.Intensional then
              emit
                (Diagnostic.error ?span:it.span ~notes:note "WDL009"
                   (Printf.sprintf
                      "relation %s is declared intensional, but an earlier \
                       fact asserts into it"
                      name))
            else if fa <> Decl.arity d then
              emit
                (Diagnostic.error ?span:it.span ~notes:note "WDL011"
                   (Printf.sprintf
                      "relation %s is declared with arity %d, but an earlier \
                       fact has arity %d"
                      name (Decl.arity d) fa))
          | None -> ());
          Hashtbl.add decl_tbl key (d.Decl.kind, Decl.arity d, it.span));
        (* WDL053: builtin declaration discipline *)
        (match d.Decl.builtin with
        | None -> (
          match Hashtbl.find_opt builtin_tbl key with
          | Some (bkind, _, sp0) ->
            let note =
              match sp0 with
              | Some s -> [ Diagnostic.note ~span:s "declared as a builtin here" ]
              | None -> []
            in
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL053"
                 (Printf.sprintf
                    "relation %s was declared as a builtin %s relation; it \
                     cannot be redeclared as a plain relation"
                    name bkind))
          | None -> ())
        | Some b ->
          (match Wdl_builtin.Builtin.validate d with
          | Ok () -> ()
          | Error msg -> emit (Diagnostic.error ?span:it.span "WDL053" msg));
          (match Hashtbl.find_opt builtin_tbl key with
          | Some (_, b0, sp0) ->
            if b0 <> b then
              let note =
                match sp0 with
                | Some s -> [ Diagnostic.note ~span:s "first declared here" ]
                | None -> []
              in
              emit
                (Diagnostic.error ?span:it.span ~notes:note "WDL053"
                   (Printf.sprintf
                      "relation %s is redeclared with a different builtin \
                       configuration"
                      name))
          | None ->
            let defining =
              match Hashtbl.find_opt decl_tbl key with
              | Some (_, _, sp) -> sp = it.span
              | None -> true
            in
            if (not defining) || Hashtbl.mem fact_tbl key then
              emit
                (Diagnostic.error ?span:it.span "WDL053"
                   (Printf.sprintf
                      "relation %s was already declared or asserted into as \
                       a plain relation; builtin configuration must come \
                       with its first declaration"
                      name))
            else Hashtbl.add builtin_tbl key (b.Decl.bkind, b, it.span)))
      | Program.Fact f ->
        let key = (f.Fact.rel, f.Fact.peer) in
        let name = rel_at f.Fact.rel f.Fact.peer in
        if peer_mode && f.Fact.peer <> self then
          emit
            (Diagnostic.error ?span:it.span "WDL007"
               (Printf.sprintf
                  "fact targets peer %s; a program loaded at %s may only \
                   assert facts at %s"
                  f.Fact.peer self self));
        (match Safety.check_fact f with
        | Ok () -> ()
        | Error errs -> List.iter emit (safety_diags ?span:it.span errs));
        (match Hashtbl.find_opt decl_tbl key with
        | Some (Decl.Intensional, _, dsp) ->
          let note =
            match dsp with
            | Some s ->
              [ Diagnostic.note ~span:s "declared intensional here" ]
            | None -> []
          in
          emit
            (Diagnostic.error ?span:it.span ~notes:note "WDL009"
               (Printf.sprintf
                  "fact asserts into the intensional relation %s (a view \
                   recomputed from its rules)"
                  name))
        | Some (Decl.Extensional, a0, dsp) when a0 <> Fact.arity f ->
          let note =
            match dsp with
            | Some s -> [ Diagnostic.note ~span:s "declared here" ]
            | None -> []
          in
          emit
            (Diagnostic.error ?span:it.span ~notes:note "WDL011"
               (Printf.sprintf
                  "fact has arity %d, but %s is declared with arity %d"
                  (Fact.arity f) name a0))
        | Some _ -> ()
        | None -> (
          match Hashtbl.find_opt fact_tbl key with
          | Some (fa, fsp) when fa <> Fact.arity f ->
            let note =
              match fsp with
              | Some s -> [ Diagnostic.note ~span:s "the first fact is here" ]
              | None -> []
            in
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL011"
                 (Printf.sprintf
                    "fact has arity %d, but an earlier fact for %s has arity \
                     %d"
                    (Fact.arity f) name fa))
          | _ -> ()));
        if not (Hashtbl.mem fact_tbl key) then
          Hashtbl.add fact_tbl key (Fact.arity f, it.span)
      | Program.Rule _ -> ())
    g_items) groups;

  (* -- pass 1b: facts into read-only builtin relations -------------- *)
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Fact f -> (
        let key = (f.Fact.rel, f.Fact.peer) in
        match Hashtbl.find_opt builtin_tbl key with
        | Some (bkind, _, _) when not (Wdl_builtin.Builtin.writable_kind bkind)
          ->
          emit
            (Diagnostic.error ?span:it.span "WDL050"
               (Printf.sprintf
                  "fact asserts into %s, a read-only builtin %s relation \
                   that only the runtime writes"
                  (rel_at f.Fact.rel f.Fact.peer)
                  bkind))
        | _ -> ())
      | _ -> ())
    items;

  let kind_of rel peer =
    match Hashtbl.find_opt decl_tbl (rel, peer) with
    | Some (k, _, _) -> Some k
    | None -> None
  in
  let declared_arity key =
    match Hashtbl.find_opt decl_tbl key with
    | Some (_, a, sp) -> Some (a, sp, "declared here")
    | None -> (
      match Hashtbl.find_opt fact_tbl key with
      | Some (a, sp) -> Some (a, sp, "a fact asserts it here")
      | None -> None)
  in

  (* -- pass 2: per-rule checks (each group's own self) -------------- *)
  let group_rules =
    List.map
      (fun g ->
        ( g,
          List.filter_map
            (fun it ->
              match it.stmt with Program.Rule r -> Some (it, r) | _ -> None)
            g.g_items ))
      groups
  in
  List.iter (fun ({ g_self = self; _ }, rule_items) ->
  List.iter
    (fun (it, r) ->
      (match Safety.check_rule r with
      | Ok () -> ()
      | Error errs -> List.iter emit (safety_diags ?span:it.span errs));
      Option.iter emit (aggregate_locality_error ~self ?span:it.span r);
      (* WDL012: atom arity vs. declarations/facts *)
      let arity_check span (a : Atom.t) =
        match atom_key a with
        | None -> ()
        | Some key -> (
          match declared_arity key with
          | Some (a0, sp0, what) when a0 <> List.length a.Atom.args ->
            let note =
              match sp0 with
              | Some s -> [ Diagnostic.note ~span:s what ]
              | None -> []
            in
            emit
              (Diagnostic.warning ?span ~notes:note "WDL012"
                 (Printf.sprintf
                    "atom %s is used with arity %d, but the relation has \
                     arity %d; this atom can never match"
                    (rel_at (fst key) (snd key))
                    (List.length a.Atom.args) a0))
          | _ -> ())
      in
      arity_check it.head_span r.Rule.head;
      List.iteri
        (fun i l ->
          match l with
          | Literal.Pos a | Literal.Neg a -> arity_check (lit_span it i) a
          | Literal.Cmp _ | Literal.Assign _ -> ())
        r.Rule.body;
      (* WDL050/051: builtin write discipline *)
      (match atom_key r.Rule.head with
      | None -> ()
      | Some key -> (
        match Hashtbl.find_opt builtin_tbl key with
        | None -> ()
        | Some (bkind, _, sp0) ->
          let hspan =
            match it.head_span with Some s -> Some s | None -> it.span
          in
          let note =
            match sp0 with
            | Some s -> [ Diagnostic.note ~span:s "declared as a builtin here" ]
            | None -> []
          in
          if not (Wdl_builtin.Builtin.writable_kind bkind) then
            emit
              (Diagnostic.error ?span:hspan ~notes:note "WDL050"
                 (Printf.sprintf
                    "rule head writes %s, a read-only builtin %s relation \
                     that only the runtime writes"
                    (rel_at (fst key) (snd key))
                    bkind))
          else if
            List.exists
              (fun l ->
                match l with
                | Literal.Pos a | Literal.Neg a -> atom_key a = Some key
                | Literal.Cmp _ | Literal.Assign _ -> false)
              r.Rule.body
          then
            emit
              (Diagnostic.error ?span:hspan ~notes:note "WDL051"
                 (Printf.sprintf
                    "rule reads builtin relation %s in its body and writes \
                     it in its head; a builtin relation is not a plain set, \
                     so this feedback loop never stabilizes"
                    (rel_at (fst key) (snd key))))
          else if bkind = "topk" || bkind = "cms" then
            (* Derived facts are deduplicated as a set before they reach
               the builtin: N valuations producing the same tuple write
               it once, and a tuple already present is never re-written.
               A weight-accumulating builtin therefore sees each
               distinct tuple's weight exactly once, not once per
               derivation. *)
            emit
              (Diagnostic.warning ?span:hspan ~notes:note "WDL054"
                 (Printf.sprintf
                    "rule head derives into %s, a weight-accumulating \
                     builtin %s relation; derivations pass through set \
                     deduplication, so the same tuple derived many times \
                     contributes its weight only once — assert weighted \
                     observations as facts or messages instead"
                    (rel_at (fst key) (snd key))
                    bkind))));
      (* WDL022: a positive body atom that nothing can ever populate *)
      (try
         List.iteri
           (fun i l ->
             match l with
             | Literal.Pos a -> (
               match atom_key a with
               | Some ((rel, p) as key)
                 when Hashtbl.mem covered p
                      && (not (Hashtbl.mem decl_tbl key))
                      && (not (Hashtbl.mem fact_tbl key))
                      && (not (Hashtbl.mem derived key))
                      && not !star_derived ->
                 emit
                   (Diagnostic.warning ?span:(lit_span it i) "WDL022"
                      (Printf.sprintf
                         "rule can never fire: %s is never declared, \
                          asserted or derived, so this atom matches nothing"
                         (rel_at rel p)));
                 raise Exit
               | _ -> ())
             | _ -> ())
           r.Rule.body
       with Exit -> ());
      List.iter emit (boundary_diags ~self ~kind_of ~pedantic it r))
    rule_items) group_rules;

  (* -- pass 3: relation-level checks ------------------------------- *)
  let used : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let use_order = ref [] in
  let record_use key span =
    if not (Hashtbl.mem used key) then begin
      Hashtbl.add used key ();
      use_order := (key, span) :: !use_order
    end
  in
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Fact f -> record_use (f.Fact.rel, f.Fact.peer) it.span
      | Program.Rule r ->
        Option.iter
          (fun k -> record_use k it.head_span)
          (atom_key r.Rule.head);
        List.iteri
          (fun i l ->
            match l with
            | Literal.Pos a | Literal.Neg a ->
              Option.iter (fun k -> record_use k (lit_span it i)) (atom_key a)
            | _ -> ())
          r.Rule.body
      | Program.Decl _ -> ())
    items;
  if not peer_mode then begin
    List.iter
      (fun (((rel, p) as key), span) ->
        if Hashtbl.mem covered p && not (Hashtbl.mem decl_tbl key) then
          emit
            (Diagnostic.warning ?span "WDL020"
               (Printf.sprintf
                  "relation %s is never declared; it will be auto-created as \
                   extensional on first insertion"
                  (rel_at rel p))))
      (List.rev !use_order);
    List.iter
      (fun it ->
        match it.stmt with
        | Program.Decl d ->
          let key = (d.Decl.rel, d.Decl.peer) in
          (* report only at the defining (first) declaration *)
          let defining =
            match Hashtbl.find_opt decl_tbl key with
            | Some (_, _, sp) -> sp = it.span
            | None -> false
          in
          if defining && not (Hashtbl.mem used key) then
            emit
              (Diagnostic.warning ?span:it.span "WDL021"
                 (Printf.sprintf
                    "relation %s is declared but never used by any fact or \
                     rule"
                    (rel_at d.Decl.rel d.Decl.peer)))
        | _ -> ())
      items;
    (* WDL052: a builtin relation that is fed but feeds nothing — its
       materialization is dead state. (A builtin never used at all is
       WDL021 territory.) *)
    let builtin_read : (string * string, unit) Hashtbl.t = Hashtbl.create 4 in
    let builtin_written : (string * string, unit) Hashtbl.t =
      Hashtbl.create 4
    in
    List.iter
      (fun it ->
        match it.stmt with
        | Program.Fact f ->
          Hashtbl.replace builtin_written (f.Fact.rel, f.Fact.peer) ()
        | Program.Rule r ->
          Option.iter
            (fun k -> Hashtbl.replace builtin_written k ())
            (atom_key r.Rule.head);
          List.iter
            (fun l ->
              match l with
              | Literal.Pos a | Literal.Neg a ->
                Option.iter
                  (fun k -> Hashtbl.replace builtin_read k ())
                  (atom_key a)
              | Literal.Cmp _ | Literal.Assign _ -> ())
            r.Rule.body
        | Program.Decl _ -> ())
      items;
    Hashtbl.iter
      (fun key (bkind, _, sp) ->
        if Hashtbl.mem builtin_written key && not (Hashtbl.mem builtin_read key)
        then
          emit
            (Diagnostic.warning ?span:sp "WDL052"
               (Printf.sprintf
                  "builtin %s relation %s is written but never read by any \
                   rule; the runtime maintains its materialization for \
                   nothing"
                  bkind
                  (rel_at (fst key) (snd key)))))
      builtin_tbl
  end;

  (* -- pass 4: stratification (per group) --------------------------- *)
  List.iter (fun ({ g_self = self; _ }, rule_items) ->
  let intensional rel = kind_of rel self = Some Decl.Intensional in
  let rules = List.map snd rule_items in
  (match Wdl_eval.Stratify.compute ~self ~intensional rules with
  | Ok _ -> ()
  | Error (Wdl_eval.Stratify.Negative_cycle members as err) ->
    let node_name = function
      | Wdl_eval.Stratify.Rel r -> r
      | Wdl_eval.Stratify.Star -> "<any>"
    in
    let in_cycle n = List.mem (node_name n) members in
    let contributing =
      List.filter_map
        (fun (it, r) ->
          match
            Wdl_eval.Stratify.head_node ~self ~intensional r.Rule.head
          with
          | Some hn when in_cycle hn ->
            let deps =
              Wdl_eval.Stratify.body_deps ~self ~intensional r.Rule.body
            in
            let deps =
              if Rule.is_aggregate r then
                List.map (fun (n, _) -> (n, true)) deps
              else deps
            in
            let deps = List.filter (fun (n, _) -> in_cycle n) deps in
            if deps = [] then None else Some (it, hn, deps)
          | _ -> None)
        rule_items
    in
    let notes =
      List.map
        (fun (it, hn, deps) ->
          let dep_desc =
            String.concat ", "
              (List.map
                 (fun (n, neg) ->
                   if neg then "not " ^ node_name n else node_name n)
                 deps)
          in
          Diagnostic.note ?span:it.span
            (Printf.sprintf "this rule derives %s and reads %s"
               (node_name hn) dep_desc))
        contributing
    in
    let span =
      List.find_map (fun (it, _, _) -> it.span) contributing
    in
    emit
      (Diagnostic.error ?span ~notes "WDL010"
         (Printf.sprintf "rules do not stratify: %s"
            (one_line Wdl_eval.Stratify.pp_error err)))))
    group_rules;

  (* -- pass 5: duplicates / subsumption (per group) ------------------ *)
  List.iter
    (fun ({ g_self = self; _ }, rule_items) ->
      List.iter emit (duplicate_diags ~self rule_items))
    group_rules;

  (* -- pass 6: knowledge flow (WDL060-064) --------------------------- *)
  if not peer_mode then begin
    let fl =
      Flow.build
        (List.map
           (fun g ->
             {
               Flow.src_self = g.g_self;
               src_file = g.g_file;
               src_rules =
                 List.filter_map
                   (fun it ->
                     match it.stmt with
                     | Program.Rule r -> Some (r, it.span)
                     | _ -> None)
                   g.g_items;
             })
           groups)
    in
    (* Mirrors WDL032's suppression: a peer variable bound by a
       locally-declared extensional relation is an owner-curated
       address book, not an open door. *)
    let curated_any (info : Flow.rule_info) =
      match Boundary.analyze ~self:info.Flow.r_self info.Flow.r_rule with
      | Some
          {
            Boundary.target = Boundary.Dynamic _;
            binder = Some (_, Literal.Pos a);
            _;
          } -> (
        match atom_key a with
        | Some (rel, p) ->
          p = info.Flow.r_self && kind_of rel p = Some Decl.Extensional
        | None -> false)
      | _ -> false
    in
    let escaping_any (info : Flow.rule_info) =
      (info.Flow.r_head.Flow.n_peer = Flow.Any
      || List.exists (fun (_, p) -> p = Flow.Any) info.Flow.r_hops)
      && not (curated_any info)
    in
    let any_escapes_on path =
      List.exists
        (fun (e : Flow.edge) ->
          (e.Flow.e_dst.Flow.n_peer = Flow.Any
          || List.mem Flow.Any e.Flow.e_via)
          &&
          match Flow.rule_info fl e.Flow.e_rule with
          | Some info -> escaping_any info
          | None -> false)
        path
    in
    let chain path = String.concat " -> " (Flow.path_ids path) in
    (* WDL060: a declared relation whose facts can transitively (>= 2
       rule applications — a single application is already visible in
       the rule text and its WDL030 report) reach a foreign peer or an
       unbounded delegation target. *)
    List.iter
      (fun it ->
        match it.stmt with
        | Program.Decl d ->
          let key = (d.Decl.rel, d.Decl.peer) in
          let defining =
            match Hashtbl.find_opt decl_tbl key with
            | Some (_, _, sp) -> sp = it.span
            | None -> false
          in
          if defining then begin
            let r =
              Flow.reachable fl
                {
                  Flow.n_rel = Some d.Decl.rel;
                  n_peer = Flow.Named d.Decl.peer;
                }
            in
            let leaks =
              List.filter_map
                (fun (n, path) ->
                  match n.Flow.n_peer with
                  | Flow.Named q
                    when q <> d.Decl.peer && List.length path >= 2 ->
                    Some (Printf.sprintf "peer %s" q, path)
                  | Flow.Any
                    when List.length path >= 2 && any_escapes_on path ->
                    Some ("an unbounded set of peers", path)
                  | _ -> None)
                r.Flow.reached
              @ List.filter_map
                  (fun (p, path) ->
                    match p with
                    | Flow.Named q
                      when q <> d.Decl.peer && List.length path >= 2 ->
                      Some
                        ( Printf.sprintf "peer %s (as a delegation target)" q,
                          path )
                    | Flow.Any
                      when List.length path >= 2 && any_escapes_on path ->
                      Some ("an unbounded set of peers", path)
                    | _ -> None)
                  r.Flow.via_peers
            in
            match leaks with
            | [] -> ()
            | (desc0, _) :: _ ->
              let notes =
                List.map
                  (fun (desc, path) ->
                    Diagnostic.note
                      (Printf.sprintf "reaches %s via rule chain %s" desc
                         (chain path)))
                  leaks
              in
              emit
                (Diagnostic.warning ?span:it.span ~notes "WDL060"
                   (Printf.sprintf
                      "facts derived from %s can reach %s through a chain \
                       of rules; nothing in this program marks %s as shared"
                      (rel_at d.Decl.rel d.Decl.peer)
                      desc0
                      (rel_at d.Decl.rel d.Decl.peer)))
          end
        | _ -> ())
      items;
    (* WDL061: the head of a delegating rule (transitively) refeeds
       the relation that binds its delegation target — every round of
       evaluation can then install the residual at peers discovered in
       the previous round, so the install set is bounded only by the
       data the cycle itself generates. *)
    List.iter
      (fun (info : Flow.rule_info) ->
        match Boundary.analyze ~self:info.Flow.r_self info.Flow.r_rule with
        | Some
            {
              Boundary.target = Boundary.Dynamic x;
              binder = Some (_, Literal.Pos a);
              _;
            } ->
          let bn = Flow.node_of_atom a in
          let feeds =
            Flow.node_matches info.Flow.r_head bn
            ||
            let r = Flow.reachable fl info.Flow.r_head in
            List.exists (fun (n, _) -> Flow.node_matches n bn) r.Flow.reached
          in
          if feeds then
            emit
              (Diagnostic.warning ?span:info.Flow.r_span "WDL061"
                 (Printf.sprintf
                    "delegation-amplification cycle: this rule delegates to \
                     the peer bound to $%s, and its head feeds %s — the \
                     relation binding $%s — so each round can install the \
                     residual at peers discovered by the previous round"
                    x (Flow.node_name bn) x))
        | _ -> ())
      fl.Flow.rules;
    (* WDL062: a rule inventing relation or peer names in its head
       whose derivations can feed its own body — fresh names can beget
       fresh names, so the fixpoint may never terminate. *)
    List.iter
      (fun (info : Flow.rule_info) ->
        if info.Flow.r_invents then begin
          let reach = lazy (Flow.reachable fl info.Flow.r_head) in
          let feeds bn =
            Flow.node_matches info.Flow.r_head bn
            || List.exists
                 (fun (n, _) -> Flow.node_matches n bn)
                 (Lazy.force reach).Flow.reached
          in
          let body_nodes =
            List.filter_map
              (function
                | Literal.Pos a -> Some (Flow.node_of_atom a)
                | _ -> None)
              info.Flow.r_rule.Rule.body
          in
          if List.exists feeds body_nodes then
            emit
              (Diagnostic.warning ?span:info.Flow.r_span "WDL062"
                 "rule invents relation or peer names in its head, and its \
                  derivations can flow back into its own body; each round \
                  can mint names that trigger the next, so evaluation may \
                  never terminate")
        end)
      fl.Flow.rules;
    (* WDL063: after a delegation hop the rule's head writes a base
       (extensional or builtin) relation on a foreign peer; the write
       persists there even after the delegated residual is retracted. *)
    List.iter
      (fun (info : Flow.rule_info) ->
        if info.Flow.r_hops <> [] then
          match info.Flow.r_head.Flow.n_rel, info.Flow.r_head.Flow.n_peer with
          | Some rel, Flow.Named q when q <> info.Flow.r_self -> (
            let base =
              if Hashtbl.mem builtin_tbl (rel, q) then Some "builtin"
              else
                match Hashtbl.find_opt decl_tbl (rel, q) with
                | Some (Decl.Extensional, _, _) -> Some "extensional"
                | _ -> None
            in
            match base with
            | Some what ->
              emit
                (Diagnostic.warning ?span:info.Flow.r_span "WDL063"
                   (Printf.sprintf
                      "after a delegation hop this rule writes into %s, a \
                       %s relation at foreign peer %s; the write persists \
                       there even if the delegated rule is later retracted"
                      (rel_at rel q) what q))
            | None -> ())
          | _ -> ())
      fl.Flow.rules;
    (* WDL064: in a multi-file system, flow into a peer none of the
       files says anything about. *)
    if multi then begin
      let outside : (string, unit) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun (e : Flow.edge) ->
          let check = function
            | Flow.Named q when not (Hashtbl.mem covered q) ->
              if not (Hashtbl.mem outside q) then begin
                Hashtbl.add outside q ();
                let span =
                  Option.bind (Flow.rule_info fl e.Flow.e_rule) (fun i ->
                      i.Flow.r_span)
                in
                emit
                  (Diagnostic.warning ?span "WDL064"
                     (Printf.sprintf
                        "facts flow to peer %s, but no file in this system \
                         declares or asserts anything about %s; if it is \
                         part of the system, include its program in the \
                         check"
                        q q))
              end
            | _ -> ()
          in
          check e.Flow.e_dst.Flow.n_peer;
          List.iter check e.Flow.e_via)
        fl.Flow.edges
    end
  end;

  List.stable_sort Diagnostic.compare (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let self_of ?self (p : Program.t) =
  match self with
  | Some s -> s
  | None -> ( match infer_self p with Some s -> s | None -> "local")

let check_located ?peer_mode ?pedantic ?self (p : Located.program) =
  let self = self_of ?self (Located.strip p) in
  check_groups ?peer_mode ?pedantic
    [ { g_self = self; g_file = None; g_items = List.map item_of_located p } ]

let check_plain ?peer_mode ?pedantic ~self (p : Program.t) =
  check_groups ?peer_mode ?pedantic
    [ { g_self = self; g_file = None; g_items = List.map item_of_plain p } ]

let check_system ?pedantic (files : (string * Located.program) list) =
  check_groups ?pedantic
    (List.map
       (fun (file, p) ->
         {
           g_self = self_of (Located.strip p);
           g_file = Some file;
           g_items = List.map item_of_located p;
         })
       files)

(* The same graph the WDL060-064 pass sees, for [wdl flow] and live
   peers: one source per file, selves inferred the same way. *)
let flow_of_system (files : (string * Located.program) list) =
  Flow.build
    (List.map
       (fun (file, p) ->
         {
           Flow.src_self = self_of (Located.strip p);
           src_file = Some file;
           src_rules =
             List.filter_map
               (function
                 | Located.Rule r -> Some (r.Located.rule, Some r.Located.span)
                 | _ -> None)
               p;
         })
       files)

let check_statement ~self ?(kind_of = fun _ _ -> None)
    (s : Located.statement) =
  let it = item_of_located s in
  match it.stmt with
  | Program.Decl d ->
    if d.Decl.peer <> self then
      [
        Diagnostic.error ?span:it.span "WDL007"
          (Printf.sprintf
             "declaration of %s targets peer %s; declarations may only \
              target %s"
             (rel_at d.Decl.rel d.Decl.peer)
             d.Decl.peer self);
      ]
    else []
  | Program.Fact f -> (
    match Safety.check_fact f with
    | Ok () -> []
    | Error errs -> safety_diags ?span:it.span errs)
  | Program.Rule r ->
    let safety =
      match Safety.check_rule r with
      | Ok () -> []
      | Error errs -> safety_diags ?span:it.span errs
    in
    let agg =
      Option.to_list (aggregate_locality_error ~self ?span:it.span r)
    in
    safety @ agg @ boundary_diags ~self ~kind_of ~with_info:false it r

let added_rule_warnings ~self ?(kind_of = fun _ _ -> None)
    ~(existing : Rule.t list) (r : Rule.t) =
  let it = item_of_plain (Program.Rule r) in
  let boundary =
    boundary_diags ~self ~kind_of ~with_info:false it r
    |> List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Warning)
  in
  let cr = canonical r in
  let describe other =
    [
      Diagnostic.note
        (Printf.sprintf "the existing rule is `%s`" (one_line Rule.pp other));
    ]
  in
  let dups =
    match List.find_opt (fun r' -> Rule.equal cr (canonical r')) existing with
    | Some other ->
      [
        Diagnostic.warning ~notes:(describe other) "WDL040"
          "duplicate rule: identical to an installed rule up to variable \
           renaming";
      ]
    | None -> (
      match List.find_opt (fun r' -> subsumes ~self r' r) existing with
      | Some other ->
        [
          Diagnostic.warning ~notes:(describe other) "WDL041"
            "redundant rule: an installed, more general rule already derives \
             everything this rule derives";
        ]
      | None -> [])
  in
  boundary @ dups

let of_parse_error ~file (msg, (pos : Lexer.pos)) =
  Diagnostic.error
    ~span:(Span.point ~file ~line:pos.Lexer.line ~col:pos.Lexer.col)
    "WDL000" msg
