open Wdl_syntax

(* ------------------------------------------------------------------ *)
(* Catalogue                                                          *)
(* ------------------------------------------------------------------ *)

let codes : (string * Diagnostic.severity * string) list =
  [
    ("WDL000", Error, "parse error");
    ("WDL001", Error, "head variable not bound by the body");
    ("WDL002", Error, "relation/peer variable not bound by the prefix");
    ("WDL003", Error, "variable in negated atom not bound by the prefix");
    ("WDL004", Error, "variable in builtin not bound by the prefix");
    ("WDL005", Error, "assignment rebinds an already-bound variable");
    ("WDL006", Error, "constant in relation/peer position is not a name");
    ("WDL007", Error, "statement targets a peer other than the loading peer");
    ("WDL008", Error, "relation redeclared with a conflicting kind");
    ("WDL009", Error, "fact asserts into an intensional relation");
    ("WDL010", Error, "rule set has a cycle through negation/aggregation");
    ("WDL011", Error, "conflicting arity between declarations and facts");
    ("WDL012", Warning, "rule atom arity differs from the declared arity");
    ("WDL013", Error, "aggregate rule is not entirely local");
    ("WDL020", Warning, "relation used but never declared");
    ("WDL021", Warning, "relation declared but never used");
    ("WDL022", Warning, "rule can never fire (empty, underivable body atom)");
    ("WDL030", Info, "delegation boundary report");
    ("WDL031", Warning, "body reorder would keep more evaluation local");
    ("WDL032", Warning, "delegation through an open-ended peer variable");
    ("WDL040", Warning, "duplicate rule (identical up to renaming)");
    ("WDL041", Warning, "rule subsumed by a more general rule");
    ("WDL050", Error, "write into a read-only builtin relation");
    ("WDL051", Error, "rule reads and writes the same builtin relation");
    ("WDL052", Warning, "builtin relation written but never read");
    ("WDL053", Error, "invalid builtin declaration");
    ("WDL054", Warning, "rule derives into a weight-accumulating builtin");
  ]

(* ------------------------------------------------------------------ *)
(* Items: statements with optional spans                              *)
(* ------------------------------------------------------------------ *)

type item = {
  stmt : Program.statement;
  span : Span.t option;
  head_span : Span.t option;
  lit_spans : Span.t list;
}

let item_of_located : Located.statement -> item = function
  | Located.Decl { node; span } ->
    { stmt = Program.Decl node; span = Some span; head_span = None; lit_spans = [] }
  | Located.Fact { node; span } ->
    { stmt = Program.Fact node; span = Some span; head_span = None; lit_spans = [] }
  | Located.Rule r ->
    {
      stmt = Program.Rule r.Located.rule;
      span = Some r.Located.span;
      head_span = Some r.Located.head_span;
      lit_spans = r.Located.lit_spans;
    }

let item_of_plain stmt = { stmt; span = None; head_span = None; lit_spans = [] }

let lit_span it i =
  match List.nth_opt it.lit_spans i with
  | Some s -> Some s
  | None -> it.span

(* ------------------------------------------------------------------ *)
(* Small helpers                                                      *)
(* ------------------------------------------------------------------ *)

let one_line pp v =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf max_int;
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let var_set vars =
  match vars with
  | [] -> "nothing"
  | vs -> String.concat ", " (List.map (fun v -> "$" ^ v) vs)

let rel_at rel peer = Printf.sprintf "%s@%s" rel peer

let atom_key (a : Atom.t) =
  match Term.as_name a.Atom.rel, Term.as_name a.Atom.peer with
  | Some r, Some p -> Some (r, p)
  | _ -> None

let infer_self (prog : Program.t) =
  let decl =
    List.find_map
      (function Program.Decl d -> Some d.Decl.peer | _ -> None)
      prog
  in
  let fact () =
    List.find_map
      (function Program.Fact f -> Some f.Fact.peer | _ -> None)
      prog
  in
  let rule_head () =
    List.find_map
      (function
        | Program.Rule r -> Term.as_name r.Rule.head.Atom.peer
        | _ -> None)
      prog
  in
  match decl with
  | Some p -> Some p
  | None -> ( match fact () with Some p -> Some p | None -> rule_head ())

let safety_code = function
  | Safety.Unbound_in_head _ -> "WDL001"
  | Safety.Unbound_name_var _ -> "WDL002"
  | Safety.Unbound_in_negation _ -> "WDL003"
  | Safety.Unbound_in_builtin _ -> "WDL004"
  | Safety.Rebound_assignment _ -> "WDL005"
  | Safety.Invalid_name_constant _ -> "WDL006"

let safety_diags ?span errs =
  List.map
    (fun e ->
      Diagnostic.error ?span (safety_code e)
        (one_line Safety.pp_error e))
    errs

let aggregate_locality_error ~self ?span (r : Rule.t) =
  if Rule.is_aggregate r && not (Wdl_eval.Fixpoint.statically_local ~self r)
  then
    Some
      (Diagnostic.error ?span "WDL013"
         (Printf.sprintf
            "aggregate rules must be entirely local: every body atom's peer \
             must name %s"
            self))
  else None

(* ------------------------------------------------------------------ *)
(* Alpha-renaming (duplicate detection)                               *)
(* ------------------------------------------------------------------ *)

let map_term f = function Term.Var x -> Term.Var (f x) | t -> t

let map_atom f (a : Atom.t) =
  Atom.make ~rel:(map_term f a.Atom.rel) ~peer:(map_term f a.Atom.peer)
    (List.map (map_term f) a.Atom.args)

let rec map_expr f = function
  | Expr.Const _ as e -> e
  | Expr.Var x -> Expr.Var (f x)
  | Expr.Add (a, b) -> Expr.Add (map_expr f a, map_expr f b)
  | Expr.Sub (a, b) -> Expr.Sub (map_expr f a, map_expr f b)
  | Expr.Mul (a, b) -> Expr.Mul (map_expr f a, map_expr f b)
  | Expr.Div (a, b) -> Expr.Div (map_expr f a, map_expr f b)

let map_lit f = function
  | Literal.Pos a -> Literal.Pos (map_atom f a)
  | Literal.Neg a -> Literal.Neg (map_atom f a)
  | Literal.Cmp (op, e1, e2) -> Literal.Cmp (op, map_expr f e1, map_expr f e2)
  | Literal.Assign (x, e) -> Literal.Assign (f x, map_expr f e)

(* Canonical variable names in first-occurrence order: two rules equal
   up to variable renaming canonicalise to equal rules. *)
let canonical (r : Rule.t) : Rule.t =
  let order = Rule.vars r in
  let assoc = List.mapi (fun i x -> (x, Printf.sprintf "v%d" i)) order in
  let f x = match List.assoc_opt x assoc with Some y -> y | None -> x in
  {
    Rule.head = map_atom f r.Rule.head;
    body = List.map (map_lit f) r.Rule.body;
    aggs =
      List.map
        (fun (i, (s : Aggregate.spec)) ->
          (i, { s with Aggregate.var = f s.Aggregate.var }))
        r.Rule.aggs;
  }

(* ------------------------------------------------------------------ *)
(* Subsumption: does [general] derive at least what [specific] does?  *)
(* ------------------------------------------------------------------ *)

let bind_term theta x t =
  match List.assoc_opt x theta with
  | Some t' -> if Term.equal t t' then Some theta else None
  | None -> Some ((x, t) :: theta)

let match_term theta tb ta =
  match tb with
  | Term.Const _ -> if Term.equal tb ta then Some theta else None
  | Term.Var x -> bind_term theta x ta

let match_atom theta (b : Atom.t) (a : Atom.t) =
  if List.length b.Atom.args <> List.length a.Atom.args then None
  else
    List.fold_left2
      (fun acc tb ta -> Option.bind acc (fun th -> match_term th tb ta))
      (Some theta)
      (b.Atom.rel :: b.Atom.peer :: b.Atom.args)
      (a.Atom.rel :: a.Atom.peer :: a.Atom.args)

let rec match_expr theta eb ea =
  match eb, ea with
  | Expr.Const _, Expr.Const _ ->
    if Expr.equal eb ea then Some theta else None
  | Expr.Var x, Expr.Var y -> bind_term theta x (Term.Var y)
  | Expr.Var x, Expr.Const v -> bind_term theta x (Term.Const v)
  | Expr.Add (a, b), Expr.Add (c, d)
  | Expr.Sub (a, b), Expr.Sub (c, d)
  | Expr.Mul (a, b), Expr.Mul (c, d)
  | Expr.Div (a, b), Expr.Div (c, d) ->
    Option.bind (match_expr theta a c) (fun th -> match_expr th b d)
  | _ -> None

let match_lit theta lb la =
  match lb, la with
  | Literal.Pos b, Literal.Pos a | Literal.Neg b, Literal.Neg a ->
    match_atom theta b a
  | Literal.Cmp (ob, b1, b2), Literal.Cmp (oa, a1, a2) when ob = oa ->
    Option.bind (match_expr theta b1 a1) (fun th -> match_expr th b2 a2)
  | _ -> None

(* [subsumes ~self general specific]: a substitution of [general]'s
   variables maps its head onto [specific]'s head and its body into a
   subset of [specific]'s body. Restricted to fully-local,
   aggregate-free rules (delegation and assignments make body order
   semantically significant, so we stay out of their way). *)
let subsumes ~self (general : Rule.t) (specific : Rule.t) =
  let plain r =
    r.Rule.aggs = []
    && Boundary.analyze ~self r = None
    && List.for_all
         (function Literal.Assign _ -> false | _ -> true)
         r.Rule.body
  in
  if not (plain general && plain specific) then false
  else
    match match_atom [] general.Rule.head specific.Rule.head with
    | None -> false
    | Some theta ->
      let rec cover theta = function
        | [] -> true
        | lb :: rest ->
          List.exists
            (fun la ->
              match match_lit theta lb la with
              | Some th -> cover th rest
              | None -> false)
            specific.Rule.body
      in
      cover theta general.Rule.body

(* ------------------------------------------------------------------ *)
(* Boundary diagnostics (shared between file and live checks)         *)
(* ------------------------------------------------------------------ *)

let pp_body ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Literal.pp ppf body

let boundary_diags ~self ~kind_of ?(with_info = true) it (r : Rule.t) =
  match Boundary.analyze ~self r with
  | None -> []
  | Some rep ->
    let span = lit_span it rep.Boundary.index in
    let target_desc =
      match rep.Boundary.target with
      | Boundary.Remote p -> Printf.sprintf "peer %s" p
      | Boundary.Dynamic x -> Printf.sprintf "the peer bound to $%s" x
    in
    let info =
      if not with_info then []
      else
        [
          Diagnostic.info ?span "WDL030"
            (Printf.sprintf
               "delegation boundary at body literal %d: evaluation suspends \
                here and ships the residual rule to %s, carrying bindings of \
                %s"
               (rep.Boundary.index + 1)
               target_desc
               (var_set rep.Boundary.shipped_vars));
        ]
    in
    let reorder =
      match Boundary.improve ~self r with
      | None -> []
      | Some imp ->
        let notes =
          Diagnostic.note
            (Printf.sprintf "shipped bindings: %s now, %s after reordering"
               (var_set rep.Boundary.shipped_vars)
               (var_set imp.Boundary.new_shipped))
          ::
          (match imp.Boundary.single_peer_residual with
          | Some p ->
            [
              Diagnostic.note
                (Printf.sprintf
                   "after reordering the residual mentions only %s, so it \
                    evaluates there without further delegation"
                   p);
            ]
          | None -> [])
        in
        [
          Diagnostic.warning ?span ~notes "WDL031"
            (Printf.sprintf
               "body order ships %d literal(s) that %s could evaluate \
                locally; reorder the body as `%s`"
               imp.Boundary.moved self
               (one_line pp_body imp.Boundary.reordered.Rule.body));
        ]
    in
    let escape =
      match rep.Boundary.target with
      | Boundary.Remote _ -> []
      | Boundary.Dynamic x -> (
        let warn ?binder_idx reason =
          let notes =
            match binder_idx with
            | Some i ->
              [
                Diagnostic.note ?span:(lit_span it i)
                  "the peer variable is bound here";
              ]
            | None -> []
          in
          [
            Diagnostic.warning ?span ~notes "WDL032"
              (Printf.sprintf
                 "delegation target $%s is open-ended: %s; any peer it names \
                  receives the residual rule and the bindings it carries"
                 x reason);
          ]
        in
        match rep.Boundary.binder with
        | Some (i, Literal.Pos a) -> (
          match atom_key a with
          | Some (rel, p) when p = self -> (
            match kind_of rel p with
            | Some Decl.Extensional -> []
            | Some Decl.Intensional ->
              warn ~binder_idx:i
                (Printf.sprintf "it is bound by the derived view %s"
                   (rel_at rel p))
            | None ->
              warn ~binder_idx:i
                (Printf.sprintf "it is bound by the undeclared relation %s"
                   (rel_at rel p)))
          | Some (rel, p) ->
            warn ~binder_idx:i
              (Printf.sprintf "it is bound by the remote relation %s"
                 (rel_at rel p))
          | None ->
            warn ~binder_idx:i
              "it is bound by an atom with a variable relation or peer")
        | Some (i, Literal.Assign _) ->
          warn ~binder_idx:i "it is computed by an assignment"
        | Some (_, (Literal.Neg _ | Literal.Cmp _)) | None ->
          warn "it is not bound by a positive local atom")
    in
    info @ reorder @ escape

(* ------------------------------------------------------------------ *)
(* Duplicate / subsumption over a rule list                           *)
(* ------------------------------------------------------------------ *)

let duplicate_diags ~self (rules : (item * Rule.t) list) =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let canon = Array.map (fun (_, r) -> canonical r) arr in
  let flagged = Array.make n false in
  let out = ref [] in
  let describe (it, r) =
    match it.span with
    | Some s -> Diagnostic.note ~span:s "the earlier rule is here"
    | None ->
      Diagnostic.note
        (Printf.sprintf "the earlier rule is `%s`" (one_line Rule.pp r))
  in
  for j = 1 to n - 1 do
    let itj, rj = arr.(j) in
    if not flagged.(j) then begin
      (try
         for i = 0 to j - 1 do
           if Rule.equal canon.(i) canon.(j) then begin
             flagged.(j) <- true;
             out :=
               Diagnostic.warning ?span:itj.span
                 ~notes:[ describe arr.(i) ]
                 "WDL040"
                 "duplicate rule: identical to an earlier rule up to \
                  variable renaming"
               :: !out;
             raise Exit
           end
         done
       with Exit -> ());
      if not flagged.(j) then
        try
          for i = 0 to j - 1 do
            let _, ri = arr.(i) in
            if subsumes ~self ri rj then begin
              flagged.(j) <- true;
              out :=
                Diagnostic.warning ?span:itj.span
                  ~notes:[ describe arr.(i) ]
                  "WDL041"
                  "redundant rule: an earlier, more general rule already \
                   derives everything this rule derives"
                :: !out;
              raise Exit
            end
          done
        with Exit -> ()
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The whole-program check                                            *)
(* ------------------------------------------------------------------ *)

let check_items ?(peer_mode = false) ~self (items : item list) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let decl_tbl : (string * string, Decl.kind * int * Span.t option) Hashtbl.t =
    Hashtbl.create 16
  in
  let fact_tbl : (string * string, int * Span.t option) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Builtin declarations: (kind, full config, span of the defining
     declaration), keyed like [decl_tbl]. *)
  let builtin_tbl :
      (string * string, string * Decl.builtin * Span.t option) Hashtbl.t =
    Hashtbl.create 4
  in
  let derived : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let star_derived = ref false in
  let covered : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace covered self ();
  (* Peers the file says something about: only their relations are
     fair game for whole-program checks; references to peers the file
     never defines are assumed to live elsewhere. *)
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Decl d -> Hashtbl.replace covered d.Decl.peer ()
      | Program.Fact f -> Hashtbl.replace covered f.Fact.peer ()
      | Program.Rule r -> (
        match Term.as_name r.Rule.head.Atom.peer with
        | Some p ->
          (match Term.as_name r.Rule.head.Atom.rel with
          | Some rel -> Hashtbl.replace derived (rel, p) ()
          | None -> star_derived := true)
        | None -> star_derived := true))
    items;

  (* -- pass 1: statement-order consistency, building the tables ---- *)
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Decl d ->
        let key = (d.Decl.rel, d.Decl.peer) in
        let name = rel_at d.Decl.rel d.Decl.peer in
        if peer_mode && d.Decl.peer <> self then
          emit
            (Diagnostic.error ?span:it.span "WDL007"
               (Printf.sprintf
                  "declaration of %s targets peer %s; a program loaded at %s \
                   may only declare relations at %s"
                  name d.Decl.peer self self));
        (match Hashtbl.find_opt decl_tbl key with
        | Some (k0, a0, sp0) ->
          let note =
            match sp0 with
            | Some s -> [ Diagnostic.note ~span:s "first declared here" ]
            | None -> []
          in
          if k0 <> d.Decl.kind then
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL008"
                 (Printf.sprintf "relation %s redeclared as %s (it is %s)"
                    name
                    (one_line Decl.pp_kind d.Decl.kind)
                    (one_line Decl.pp_kind k0)))
          else if a0 <> Decl.arity d then
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL011"
                 (Printf.sprintf
                    "relation %s redeclared with arity %d (it has arity %d)"
                    name (Decl.arity d) a0))
        | None ->
          (match Hashtbl.find_opt fact_tbl key with
          | Some (fa, fsp) ->
            let note =
              match fsp with
              | Some s -> [ Diagnostic.note ~span:s "the fact is here" ]
              | None -> []
            in
            if d.Decl.kind = Decl.Intensional then
              emit
                (Diagnostic.error ?span:it.span ~notes:note "WDL009"
                   (Printf.sprintf
                      "relation %s is declared intensional, but an earlier \
                       fact asserts into it"
                      name))
            else if fa <> Decl.arity d then
              emit
                (Diagnostic.error ?span:it.span ~notes:note "WDL011"
                   (Printf.sprintf
                      "relation %s is declared with arity %d, but an earlier \
                       fact has arity %d"
                      name (Decl.arity d) fa))
          | None -> ());
          Hashtbl.add decl_tbl key (d.Decl.kind, Decl.arity d, it.span));
        (* WDL053: builtin declaration discipline *)
        (match d.Decl.builtin with
        | None -> (
          match Hashtbl.find_opt builtin_tbl key with
          | Some (bkind, _, sp0) ->
            let note =
              match sp0 with
              | Some s -> [ Diagnostic.note ~span:s "declared as a builtin here" ]
              | None -> []
            in
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL053"
                 (Printf.sprintf
                    "relation %s was declared as a builtin %s relation; it \
                     cannot be redeclared as a plain relation"
                    name bkind))
          | None -> ())
        | Some b ->
          (match Wdl_builtin.Builtin.validate d with
          | Ok () -> ()
          | Error msg -> emit (Diagnostic.error ?span:it.span "WDL053" msg));
          (match Hashtbl.find_opt builtin_tbl key with
          | Some (_, b0, sp0) ->
            if b0 <> b then
              let note =
                match sp0 with
                | Some s -> [ Diagnostic.note ~span:s "first declared here" ]
                | None -> []
              in
              emit
                (Diagnostic.error ?span:it.span ~notes:note "WDL053"
                   (Printf.sprintf
                      "relation %s is redeclared with a different builtin \
                       configuration"
                      name))
          | None ->
            let defining =
              match Hashtbl.find_opt decl_tbl key with
              | Some (_, _, sp) -> sp = it.span
              | None -> true
            in
            if (not defining) || Hashtbl.mem fact_tbl key then
              emit
                (Diagnostic.error ?span:it.span "WDL053"
                   (Printf.sprintf
                      "relation %s was already declared or asserted into as \
                       a plain relation; builtin configuration must come \
                       with its first declaration"
                      name))
            else Hashtbl.add builtin_tbl key (b.Decl.bkind, b, it.span)))
      | Program.Fact f ->
        let key = (f.Fact.rel, f.Fact.peer) in
        let name = rel_at f.Fact.rel f.Fact.peer in
        if peer_mode && f.Fact.peer <> self then
          emit
            (Diagnostic.error ?span:it.span "WDL007"
               (Printf.sprintf
                  "fact targets peer %s; a program loaded at %s may only \
                   assert facts at %s"
                  f.Fact.peer self self));
        (match Safety.check_fact f with
        | Ok () -> ()
        | Error errs -> List.iter emit (safety_diags ?span:it.span errs));
        (match Hashtbl.find_opt decl_tbl key with
        | Some (Decl.Intensional, _, dsp) ->
          let note =
            match dsp with
            | Some s ->
              [ Diagnostic.note ~span:s "declared intensional here" ]
            | None -> []
          in
          emit
            (Diagnostic.error ?span:it.span ~notes:note "WDL009"
               (Printf.sprintf
                  "fact asserts into the intensional relation %s (a view \
                   recomputed from its rules)"
                  name))
        | Some (Decl.Extensional, a0, dsp) when a0 <> Fact.arity f ->
          let note =
            match dsp with
            | Some s -> [ Diagnostic.note ~span:s "declared here" ]
            | None -> []
          in
          emit
            (Diagnostic.error ?span:it.span ~notes:note "WDL011"
               (Printf.sprintf
                  "fact has arity %d, but %s is declared with arity %d"
                  (Fact.arity f) name a0))
        | Some _ -> ()
        | None -> (
          match Hashtbl.find_opt fact_tbl key with
          | Some (fa, fsp) when fa <> Fact.arity f ->
            let note =
              match fsp with
              | Some s -> [ Diagnostic.note ~span:s "the first fact is here" ]
              | None -> []
            in
            emit
              (Diagnostic.error ?span:it.span ~notes:note "WDL011"
                 (Printf.sprintf
                    "fact has arity %d, but an earlier fact for %s has arity \
                     %d"
                    (Fact.arity f) name fa))
          | _ -> ()));
        if not (Hashtbl.mem fact_tbl key) then
          Hashtbl.add fact_tbl key (Fact.arity f, it.span)
      | Program.Rule _ -> ())
    items;

  (* -- pass 1b: facts into read-only builtin relations -------------- *)
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Fact f -> (
        let key = (f.Fact.rel, f.Fact.peer) in
        match Hashtbl.find_opt builtin_tbl key with
        | Some (bkind, _, _) when not (Wdl_builtin.Builtin.writable_kind bkind)
          ->
          emit
            (Diagnostic.error ?span:it.span "WDL050"
               (Printf.sprintf
                  "fact asserts into %s, a read-only builtin %s relation \
                   that only the runtime writes"
                  (rel_at f.Fact.rel f.Fact.peer)
                  bkind))
        | _ -> ())
      | _ -> ())
    items;

  let kind_of rel peer =
    match Hashtbl.find_opt decl_tbl (rel, peer) with
    | Some (k, _, _) -> Some k
    | None -> None
  in
  let declared_arity key =
    match Hashtbl.find_opt decl_tbl key with
    | Some (_, a, sp) -> Some (a, sp, "declared here")
    | None -> (
      match Hashtbl.find_opt fact_tbl key with
      | Some (a, sp) -> Some (a, sp, "a fact asserts it here")
      | None -> None)
  in

  (* -- pass 2: per-rule checks ------------------------------------- *)
  let rule_items =
    List.filter_map
      (fun it ->
        match it.stmt with Program.Rule r -> Some (it, r) | _ -> None)
      items
  in
  List.iter
    (fun (it, r) ->
      (match Safety.check_rule r with
      | Ok () -> ()
      | Error errs -> List.iter emit (safety_diags ?span:it.span errs));
      Option.iter emit (aggregate_locality_error ~self ?span:it.span r);
      (* WDL012: atom arity vs. declarations/facts *)
      let arity_check span (a : Atom.t) =
        match atom_key a with
        | None -> ()
        | Some key -> (
          match declared_arity key with
          | Some (a0, sp0, what) when a0 <> List.length a.Atom.args ->
            let note =
              match sp0 with
              | Some s -> [ Diagnostic.note ~span:s what ]
              | None -> []
            in
            emit
              (Diagnostic.warning ?span ~notes:note "WDL012"
                 (Printf.sprintf
                    "atom %s is used with arity %d, but the relation has \
                     arity %d; this atom can never match"
                    (rel_at (fst key) (snd key))
                    (List.length a.Atom.args) a0))
          | _ -> ())
      in
      arity_check it.head_span r.Rule.head;
      List.iteri
        (fun i l ->
          match l with
          | Literal.Pos a | Literal.Neg a -> arity_check (lit_span it i) a
          | Literal.Cmp _ | Literal.Assign _ -> ())
        r.Rule.body;
      (* WDL050/051: builtin write discipline *)
      (match atom_key r.Rule.head with
      | None -> ()
      | Some key -> (
        match Hashtbl.find_opt builtin_tbl key with
        | None -> ()
        | Some (bkind, _, sp0) ->
          let hspan =
            match it.head_span with Some s -> Some s | None -> it.span
          in
          let note =
            match sp0 with
            | Some s -> [ Diagnostic.note ~span:s "declared as a builtin here" ]
            | None -> []
          in
          if not (Wdl_builtin.Builtin.writable_kind bkind) then
            emit
              (Diagnostic.error ?span:hspan ~notes:note "WDL050"
                 (Printf.sprintf
                    "rule head writes %s, a read-only builtin %s relation \
                     that only the runtime writes"
                    (rel_at (fst key) (snd key))
                    bkind))
          else if
            List.exists
              (fun l ->
                match l with
                | Literal.Pos a | Literal.Neg a -> atom_key a = Some key
                | Literal.Cmp _ | Literal.Assign _ -> false)
              r.Rule.body
          then
            emit
              (Diagnostic.error ?span:hspan ~notes:note "WDL051"
                 (Printf.sprintf
                    "rule reads builtin relation %s in its body and writes \
                     it in its head; a builtin relation is not a plain set, \
                     so this feedback loop never stabilizes"
                    (rel_at (fst key) (snd key))))
          else if bkind = "topk" || bkind = "cms" then
            (* Derived facts are deduplicated as a set before they reach
               the builtin: N valuations producing the same tuple write
               it once, and a tuple already present is never re-written.
               A weight-accumulating builtin therefore sees each
               distinct tuple's weight exactly once, not once per
               derivation. *)
            emit
              (Diagnostic.warning ?span:hspan ~notes:note "WDL054"
                 (Printf.sprintf
                    "rule head derives into %s, a weight-accumulating \
                     builtin %s relation; derivations pass through set \
                     deduplication, so the same tuple derived many times \
                     contributes its weight only once — assert weighted \
                     observations as facts or messages instead"
                    (rel_at (fst key) (snd key))
                    bkind))));
      (* WDL022: a positive body atom that nothing can ever populate *)
      (try
         List.iteri
           (fun i l ->
             match l with
             | Literal.Pos a -> (
               match atom_key a with
               | Some ((rel, p) as key)
                 when Hashtbl.mem covered p
                      && (not (Hashtbl.mem decl_tbl key))
                      && (not (Hashtbl.mem fact_tbl key))
                      && (not (Hashtbl.mem derived key))
                      && not !star_derived ->
                 emit
                   (Diagnostic.warning ?span:(lit_span it i) "WDL022"
                      (Printf.sprintf
                         "rule can never fire: %s is never declared, \
                          asserted or derived, so this atom matches nothing"
                         (rel_at rel p)));
                 raise Exit
               | _ -> ())
             | _ -> ())
           r.Rule.body
       with Exit -> ());
      List.iter emit (boundary_diags ~self ~kind_of it r))
    rule_items;

  (* -- pass 3: relation-level checks ------------------------------- *)
  let used : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let use_order = ref [] in
  let record_use key span =
    if not (Hashtbl.mem used key) then begin
      Hashtbl.add used key ();
      use_order := (key, span) :: !use_order
    end
  in
  List.iter
    (fun it ->
      match it.stmt with
      | Program.Fact f -> record_use (f.Fact.rel, f.Fact.peer) it.span
      | Program.Rule r ->
        Option.iter
          (fun k -> record_use k it.head_span)
          (atom_key r.Rule.head);
        List.iteri
          (fun i l ->
            match l with
            | Literal.Pos a | Literal.Neg a ->
              Option.iter (fun k -> record_use k (lit_span it i)) (atom_key a)
            | _ -> ())
          r.Rule.body
      | Program.Decl _ -> ())
    items;
  if not peer_mode then begin
    List.iter
      (fun (((rel, p) as key), span) ->
        if Hashtbl.mem covered p && not (Hashtbl.mem decl_tbl key) then
          emit
            (Diagnostic.warning ?span "WDL020"
               (Printf.sprintf
                  "relation %s is never declared; it will be auto-created as \
                   extensional on first insertion"
                  (rel_at rel p))))
      (List.rev !use_order);
    List.iter
      (fun it ->
        match it.stmt with
        | Program.Decl d ->
          let key = (d.Decl.rel, d.Decl.peer) in
          (* report only at the defining (first) declaration *)
          let defining =
            match Hashtbl.find_opt decl_tbl key with
            | Some (_, _, sp) -> sp = it.span
            | None -> false
          in
          if defining && not (Hashtbl.mem used key) then
            emit
              (Diagnostic.warning ?span:it.span "WDL021"
                 (Printf.sprintf
                    "relation %s is declared but never used by any fact or \
                     rule"
                    (rel_at d.Decl.rel d.Decl.peer)))
        | _ -> ())
      items;
    (* WDL052: a builtin relation that is fed but feeds nothing — its
       materialization is dead state. (A builtin never used at all is
       WDL021 territory.) *)
    let builtin_read : (string * string, unit) Hashtbl.t = Hashtbl.create 4 in
    let builtin_written : (string * string, unit) Hashtbl.t =
      Hashtbl.create 4
    in
    List.iter
      (fun it ->
        match it.stmt with
        | Program.Fact f ->
          Hashtbl.replace builtin_written (f.Fact.rel, f.Fact.peer) ()
        | Program.Rule r ->
          Option.iter
            (fun k -> Hashtbl.replace builtin_written k ())
            (atom_key r.Rule.head);
          List.iter
            (fun l ->
              match l with
              | Literal.Pos a | Literal.Neg a ->
                Option.iter
                  (fun k -> Hashtbl.replace builtin_read k ())
                  (atom_key a)
              | Literal.Cmp _ | Literal.Assign _ -> ())
            r.Rule.body
        | Program.Decl _ -> ())
      items;
    Hashtbl.iter
      (fun key (bkind, _, sp) ->
        if Hashtbl.mem builtin_written key && not (Hashtbl.mem builtin_read key)
        then
          emit
            (Diagnostic.warning ?span:sp "WDL052"
               (Printf.sprintf
                  "builtin %s relation %s is written but never read by any \
                   rule; the runtime maintains its materialization for \
                   nothing"
                  bkind
                  (rel_at (fst key) (snd key)))))
      builtin_tbl
  end;

  (* -- pass 4: stratification --------------------------------------- *)
  let intensional rel = kind_of rel self = Some Decl.Intensional in
  let rules = List.map snd rule_items in
  (match Wdl_eval.Stratify.compute ~self ~intensional rules with
  | Ok _ -> ()
  | Error (Wdl_eval.Stratify.Negative_cycle members as err) ->
    let node_name = function
      | Wdl_eval.Stratify.Rel r -> r
      | Wdl_eval.Stratify.Star -> "<any>"
    in
    let in_cycle n = List.mem (node_name n) members in
    let contributing =
      List.filter_map
        (fun (it, r) ->
          match
            Wdl_eval.Stratify.head_node ~self ~intensional r.Rule.head
          with
          | Some hn when in_cycle hn ->
            let deps =
              Wdl_eval.Stratify.body_deps ~self ~intensional r.Rule.body
            in
            let deps =
              if Rule.is_aggregate r then
                List.map (fun (n, _) -> (n, true)) deps
              else deps
            in
            let deps = List.filter (fun (n, _) -> in_cycle n) deps in
            if deps = [] then None else Some (it, hn, deps)
          | _ -> None)
        rule_items
    in
    let notes =
      List.map
        (fun (it, hn, deps) ->
          let dep_desc =
            String.concat ", "
              (List.map
                 (fun (n, neg) ->
                   if neg then "not " ^ node_name n else node_name n)
                 deps)
          in
          Diagnostic.note ?span:it.span
            (Printf.sprintf "this rule derives %s and reads %s"
               (node_name hn) dep_desc))
        contributing
    in
    let span =
      List.find_map (fun (it, _, _) -> it.span) contributing
    in
    emit
      (Diagnostic.error ?span ~notes "WDL010"
         (Printf.sprintf "rules do not stratify: %s"
            (one_line Wdl_eval.Stratify.pp_error err))));

  (* -- pass 5: duplicates / subsumption ----------------------------- *)
  List.iter emit (duplicate_diags ~self rule_items);

  List.stable_sort Diagnostic.compare (List.rev !diags)

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let check_located ?peer_mode ?self (p : Located.program) =
  let self =
    match self with
    | Some s -> s
    | None -> (
      match infer_self (Located.strip p) with
      | Some s -> s
      | None -> "local")
  in
  check_items ?peer_mode ~self (List.map item_of_located p)

let check_plain ?peer_mode ~self (p : Program.t) =
  check_items ?peer_mode ~self (List.map item_of_plain p)

let check_statement ~self ?(kind_of = fun _ _ -> None)
    (s : Located.statement) =
  let it = item_of_located s in
  match it.stmt with
  | Program.Decl d ->
    if d.Decl.peer <> self then
      [
        Diagnostic.error ?span:it.span "WDL007"
          (Printf.sprintf
             "declaration of %s targets peer %s; declarations may only \
              target %s"
             (rel_at d.Decl.rel d.Decl.peer)
             d.Decl.peer self);
      ]
    else []
  | Program.Fact f -> (
    match Safety.check_fact f with
    | Ok () -> []
    | Error errs -> safety_diags ?span:it.span errs)
  | Program.Rule r ->
    let safety =
      match Safety.check_rule r with
      | Ok () -> []
      | Error errs -> safety_diags ?span:it.span errs
    in
    let agg =
      Option.to_list (aggregate_locality_error ~self ?span:it.span r)
    in
    safety @ agg @ boundary_diags ~self ~kind_of ~with_info:false it r

let added_rule_warnings ~self ?(kind_of = fun _ _ -> None)
    ~(existing : Rule.t list) (r : Rule.t) =
  let it = item_of_plain (Program.Rule r) in
  let boundary =
    boundary_diags ~self ~kind_of ~with_info:false it r
    |> List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Warning)
  in
  let cr = canonical r in
  let describe other =
    [
      Diagnostic.note
        (Printf.sprintf "the existing rule is `%s`" (one_line Rule.pp other));
    ]
  in
  let dups =
    match List.find_opt (fun r' -> Rule.equal cr (canonical r')) existing with
    | Some other ->
      [
        Diagnostic.warning ~notes:(describe other) "WDL040"
          "duplicate rule: identical to an installed rule up to variable \
           renaming";
      ]
    | None -> (
      match List.find_opt (fun r' -> subsumes ~self r' r) existing with
      | Some other ->
        [
          Diagnostic.warning ~notes:(describe other) "WDL041"
            "redundant rule: an installed, more general rule already derives \
             everything this rule derives";
        ]
      | None -> [])
  in
  boundary @ dups

let of_parse_error ~file (msg, (pos : Lexer.pos)) =
  Diagnostic.error
    ~span:(Span.point ~file ~line:pos.Lexer.line ~col:pos.Lexer.col)
    "WDL000" msg
