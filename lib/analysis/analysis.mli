(** Whole-program static analysis: the engine behind [wdl check].

    Checks a parsed program — ideally the located form, so diagnostics
    carry [file:line:col] spans — for consistency (declarations, kinds,
    arities), safety, stratifiability, delegation hygiene (boundary
    reports, profitable reorders, open-ended peer variables) and
    redundancy (dead, duplicate, subsumed rules). Every finding is a
    {!Diagnostic.t} with a stable [WDLnnn] code; the catalogue lives in
    docs/ANALYSIS.md and, in machine-readable form, in {!codes}.

    Error-severity diagnostics coincide with what {!Webdamlog.Peer}'s
    loader rejects: a program the loader accepts produces no errors
    (property-tested in test/test_analysis.ml). Warnings are accepted
    by the loader but indicate likely mistakes. *)

open Wdl_syntax

val codes : (string * Diagnostic.severity * string) list
(** [(code, default severity, one-line summary)] for every code the
    analyzer can emit, in catalogue order. *)

val safety_diags : ?span:Span.t -> Safety.error list -> Diagnostic.t list
(** Map {!Safety} errors to their WDL001–WDL006 diagnostics. *)

val infer_self : Program.t -> string option
(** The peer a file most plausibly belongs to: the first declaration's
    peer, else the first fact's peer, else the first constant rule-head
    peer. *)

val check_located :
  ?peer_mode:bool ->
  ?pedantic:bool ->
  ?self:string ->
  Located.program ->
  Diagnostic.t list
(** Analyze a located program. [self] defaults to {!infer_self} (or
    ["local"]); [peer_mode] (default false) additionally enforces the
    loader's restriction that declarations and facts target [self]
    (WDL007) and drops the file-scoped WDL020/021 and flow-based
    WDL060–064 warnings, matching what a live [Peer.load_program]
    would accept. [pedantic] (default false) adds the WDL031 note
    describing the body reorder the compiler performs anyway.
    Diagnostics come back in source order. *)

val check_plain :
  ?peer_mode:bool -> ?pedantic:bool -> self:string -> Program.t ->
  Diagnostic.t list
(** Same checks over a span-free program (wire rules, snapshots);
    diagnostics carry no spans. *)

val check_system :
  ?pedantic:bool -> (string * Located.program) list -> Diagnostic.t list
(** Analyze several program files as one multi-peer system:
    declaration/fact/usage tables and the knowledge-flow pass run over
    the union (so cross-file WDL020 and the system-scoped WDL064/065
    become reachable), while per-rule, stratification and redundancy
    checks keep each file's own inferred [self]. The [(file, program)]
    pairs keep their file names for cross-file shadowing reports. *)

val flow_of_system : (string * Located.program) list -> Flow.t
(** The knowledge-flow graph over a file set, selves inferred per file
    exactly as {!check_system} does — the engine behind [wdl flow]. *)

val check_statement :
  self:string ->
  ?kind_of:(string -> string -> Decl.kind option) ->
  Located.statement ->
  Diagnostic.t list
(** Statement-local checks for interactive use (the REPL): safety,
    aggregate locality, decl targeting, and delegation warnings for
    rules. [kind_of rel peer] should answer from the live database so
    WDL032 can recognise owner-curated extensional address books. *)

val added_rule_warnings :
  self:string ->
  ?kind_of:(string -> string -> Decl.kind option) ->
  existing:Rule.t list ->
  Rule.t ->
  Diagnostic.t list
(** Warnings (never errors) about a rule being installed into a live
    peer: delegation reorder hints (WDL031), open-ended peer variables
    (WDL032), and duplication/subsumption against the already-installed
    rules (WDL040/041). *)

val of_parse_error : file:string -> string * Lexer.pos -> Diagnostic.t
(** Wrap a parser/lexer error as a WDL000 diagnostic with a point
    span. *)
