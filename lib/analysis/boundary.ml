open Wdl_syntax

type target =
  | Remote of string
  | Dynamic of string

type report = {
  index : int;
  target : target;
  prefix_vars : string list;
  shipped_vars : string list;
  binder : (int * Literal.t) option;
}

let target_to_string = function
  | Remote p -> Format.asprintf "%a" Fact.pp_bare_name p
  | Dynamic x -> "$" ^ x

(* Mirrors the evaluator's runtime rule (fixpoint.ml [match_pos]): the
   first positive-or-negative atom whose peer does not resolve to
   [self] suspends the valuation. Builtins never suspend. *)
let analyze ~self (r : Rule.t) =
  let bound = ref [] in
  let bind x = if not (List.mem x !bound) then bound := x :: !bound in
  let rec go i = function
    | [] -> None
    | Literal.Cmp _ :: rest -> go (i + 1) rest
    | Literal.Assign (x, _) :: rest ->
      bind x;
      go (i + 1) rest
    | ((Literal.Pos a | Literal.Neg a) as lit) :: rest -> (
      match a.Atom.peer with
      | Term.Var x -> Some (i, Dynamic x)
      | Term.Const _ -> (
        match Term.as_name a.Atom.peer with
        | Some p when p = self ->
          (match lit with
          | Literal.Pos _ -> List.iter bind (Atom.vars a)
          | _ -> ());
          go (i + 1) rest
        | Some p -> Some (i, Remote p)
        | None -> Some (i, Remote (Format.asprintf "%a" Term.pp a.Atom.peer))))
  in
  match go 0 r.Rule.body with
  | None -> None
  | Some (index, target) ->
    let prefix_vars = List.rev !bound in
    let residual = List.filteri (fun i _ -> i >= index) r.Rule.body in
    let residual_vars =
      List.concat_map Literal.vars residual @ Rule.head_vars r
    in
    let shipped_vars =
      List.filter (fun x -> List.mem x residual_vars) prefix_vars
    in
    let binder =
      match target with
      | Remote _ -> None
      | Dynamic x ->
        List.filteri (fun i _ -> i < index) r.Rule.body
        |> List.mapi (fun i l -> (i, l))
        |> List.find_opt (fun (_, l) ->
               match l with
               | Literal.Pos a -> List.mem x (Atom.vars a)
               | Literal.Assign (y, _) -> y = x
               | Literal.Neg _ | Literal.Cmp _ -> false)
    in
    Some { index; target; prefix_vars; shipped_vars; binder }

type improvement = {
  reordered : Rule.t;
  moved : int;
  new_index : int;
  new_shipped : string list;
  single_peer_residual : string option;
}

let improve ~self (r : Rule.t) =
  if Rule.is_aggregate r then None
  else
    match analyze ~self r with
    | None -> None
    | Some rep ->
      let lits = Array.of_list r.Rule.body in
      let n = Array.length lits in
      let used = Array.make n false in
      let bound = ref [] in
      let is_bound x = List.mem x !bound in
      let bind x = if not (is_bound x) then bound := x :: !bound in
      let eligible = function
        | Literal.Cmp (_, e1, e2) ->
          List.for_all is_bound (Expr.vars e1 @ Expr.vars e2)
        | Literal.Assign (x, e) ->
          (not (is_bound x)) && List.for_all is_bound (Expr.vars e)
        | Literal.Pos a ->
          Term.as_name a.Atom.peer = Some self
          && List.for_all is_bound (Term.vars a.Atom.rel)
        | Literal.Neg a ->
          Term.as_name a.Atom.peer = Some self
          && List.for_all is_bound (Atom.vars a)
      in
      (* Greedy maximal local prefix, preferring the original order:
         repeatedly take the earliest unused literal that can evaluate
         locally with the bindings made so far. *)
      let picked = ref [] in
      let progress = ref true in
      while !progress do
        progress := false;
        (try
           for i = 0 to n - 1 do
             if (not used.(i)) && eligible lits.(i) then begin
               used.(i) <- true;
               (match lits.(i) with
               | Literal.Pos a -> List.iter bind (Atom.vars a)
               | Literal.Assign (x, _) -> bind x
               | Literal.Neg _ | Literal.Cmp _ -> ());
               picked := i :: !picked;
               progress := true;
               raise Exit
             end
           done
         with Exit -> ())
      done;
      let picked = List.rev !picked in
      let moved = List.length picked - rep.index in
      if moved <= 0 then None
      else
        let remaining =
          List.init n Fun.id |> List.filter (fun i -> not used.(i))
        in
        let body = List.map (fun i -> lits.(i)) (picked @ remaining) in
        let reordered = Rule.make ~head:r.Rule.head ~body in
        (* The construction preserves safety (prefix literals only run
           once their inputs are bound; the residual keeps its relative
           order), but verify rather than trust the argument. *)
        match Safety.check_rule reordered, analyze ~self reordered with
        | Ok (), Some rep' ->
          let single_peer_residual =
            let residual =
              List.filteri (fun i _ -> i >= rep'.index) reordered.Rule.body
            in
            let peers =
              List.filter_map
                (fun l ->
                  match l with
                  | Literal.Pos a | Literal.Neg a ->
                    Some (Term.as_name a.Atom.peer)
                  | Literal.Cmp _ | Literal.Assign _ -> None)
                residual
            in
            match peers with
            | Some p :: rest
              when List.for_all (fun q -> q = Some p) rest && p <> self ->
              Some p
            | _ -> None
          in
          Some
            {
              reordered;
              moved;
              new_index = rep'.index;
              new_shipped = rep'.shipped_vars;
              single_peer_residual;
            }
        | _, _ -> None
