(** Delegation-boundary analysis.

    WebdamLog bodies evaluate left to right; the first atom whose peer
    is not the evaluating peer is where the valuation suspends and the
    residual rule is shipped (paper §2, and [Wdl_eval.Fixpoint] at run
    time). This module computes that boundary statically and looks for
    body orders that provably keep more evaluation local. *)

open Wdl_syntax

type target =
  | Remote of string   (** constant remote peer name *)
  | Dynamic of string  (** peer variable (without the [$]) *)

type report = {
  index : int;                       (** body index of the boundary literal *)
  target : target;
  prefix_vars : string list;         (** bound by the local prefix, in order *)
  shipped_vars : string list;
      (** prefix vars the residual (or head) mentions — the valuation
          actually serialized into each delegated rule *)
  binder : (int * Literal.t) option;
      (** for [Dynamic]: the first prefix literal binding the peer var *)
}

val target_to_string : target -> string

val analyze : self:string -> Rule.t -> report option
(** [None] when the rule evaluates entirely at [self]. *)

type improvement = {
  reordered : Rule.t;     (** same literals, local-first order *)
  moved : int;            (** how many more literals evaluate locally *)
  new_index : int;
  new_shipped : string list;
  single_peer_residual : string option;
      (** set when the reordered residual mentions exactly one remote
          peer — it then evaluates there without further delegation *)
}

val improve : self:string -> Rule.t -> improvement option
(** Greedy reorder: repeatedly hoist the earliest literal that can
    evaluate at [self] with the bindings made so far. Returns [Some]
    only when this strictly grows the local prefix and the reordered
    rule still passes {!Safety.check_rule}; aggregate rules are left
    alone. *)
