open Wdl_syntax

type severity = Error | Warning | Info

type note = {
  note_span : Span.t option;
  note_message : string;
}

type t = {
  code : string;
  severity : severity;
  span : Span.t option;
  message : string;
  notes : note list;
}

let make ?span ?(notes = []) ~code ~severity message =
  { code; severity; span; message; notes }

let error ?span ?notes code message =
  make ?span ?notes ~code ~severity:Error message

let warning ?span ?notes code message =
  make ?span ?notes ~code ~severity:Warning message

let info ?span ?notes code message =
  make ?span ?notes ~code ~severity:Info message

let note ?span message = { note_span = span; note_message = message }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

(* Spanned diagnostics first, in source order; span-less ones keep
   their emission order at the end. *)
let compare a b =
  match a.span, b.span with
  | Some sa, Some sb -> (
    match Span.compare sa sb with
    | 0 -> String.compare a.code b.code
    | c -> c)
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> 0

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
        Some (if severity_rank d.severity > severity_rank s then d.severity else s))
    None diags

let exit_code diags =
  match max_severity diags with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Info | None -> 0

let pp_note ppf n =
  match n.note_span with
  | Some s -> Format.fprintf ppf "  note: %a: %s" Span.pp s n.note_message
  | None -> Format.fprintf ppf "  note: %s" n.note_message

let pp_text ppf d =
  (match d.span with
  | Some s ->
    Format.fprintf ppf "%a: %s[%s]: %s" Span.pp s
      (severity_to_string d.severity) d.code d.message
  | None ->
    Format.fprintf ppf "%s[%s]: %s" (severity_to_string d.severity) d.code
      d.message);
  List.iter (fun n -> Format.fprintf ppf "@\n%a" pp_note n) d.notes

let render_text diags =
  Format.asprintf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
       pp_text)
    diags

(* Hand-rolled JSON: the repo carries no JSON dependency (same choice
   as lib/obs's chrome-trace writer). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json = function
  | None -> "null"
  | Some (s : Span.t) ->
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d}"
      (json_escape s.Span.file) s.Span.start_line s.Span.start_col
      s.Span.end_line s.Span.end_col

let note_to_json n =
  Printf.sprintf "{\"span\":%s,\"message\":\"%s\"}" (span_to_json n.note_span)
    (json_escape n.note_message)

let to_json d =
  (* A top-level "file" duplicates the span's file so consumers that
     mix diagnostics from several inputs (wdl check a.wdl b.wdl) can
     attribute each record without digging into the span. *)
  let file =
    match d.span with
    | Some s -> Printf.sprintf "\"%s\"" (json_escape s.Span.file)
    | None -> "null"
  in
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"file\":%s,\"span\":%s,\"message\":\"%s\",\"notes\":[%s]}"
    (json_escape d.code)
    (severity_to_string d.severity)
    file
    (span_to_json d.span) (json_escape d.message)
    (String.concat "," (List.map note_to_json d.notes))

let render_json diags =
  match diags with
  | [] -> "[]"
  | _ ->
    "[\n  " ^ String.concat ",\n  " (List.map to_json diags) ^ "\n]"

(* Minimal SARIF 2.1.0: one run, one result per diagnostic, rule
   metadata supplied by the caller (the analyzer's catalogue). Enough
   for GitHub code scanning to annotate PRs. *)
let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let render_sarif ~rules diags =
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let rule_json (code, severity, summary) =
    Printf.sprintf
      "{\"id\":%s,\"shortDescription\":{\"text\":%s},\"defaultConfiguration\":{\"level\":%s}}"
      (str code) (str summary)
      (str (sarif_level severity))
  in
  let location (s : Span.t) =
    Printf.sprintf
      "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\"region\":{\"startLine\":%d,\"startColumn\":%d,\"endLine\":%d,\"endColumn\":%d}}}"
      (str s.Span.file) s.Span.start_line
      (max 1 s.Span.start_col)
      s.Span.end_line
      (max 1 s.Span.end_col)
  in
  let result d =
    let message =
      match d.notes with
      | [] -> d.message
      | notes ->
        d.message ^ "\n"
        ^ String.concat "\n"
            (List.map (fun n -> "note: " ^ n.note_message) notes)
    in
    Printf.sprintf
      "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[%s]}"
      (str d.code)
      (str (sarif_level d.severity))
      (str message)
      (match d.span with Some s -> location s | None -> "")
  in
  Printf.sprintf
    "{\n\
    \  \"$schema\": \
     \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\"driver\": {\"name\": \"wdl\", \"rules\": [%s]}},\n\
    \      \"results\": [%s]\n\
    \    }\n\
    \  ]\n\
     }"
    (String.concat "," (List.map rule_json rules))
    (String.concat "," (List.map result diags))
