open Wdl_syntax

type severity = Error | Warning | Info

type note = {
  note_span : Span.t option;
  note_message : string;
}

type t = {
  code : string;
  severity : severity;
  span : Span.t option;
  message : string;
  notes : note list;
}

let make ?span ?(notes = []) ~code ~severity message =
  { code; severity; span; message; notes }

let error ?span ?notes code message =
  make ?span ?notes ~code ~severity:Error message

let warning ?span ?notes code message =
  make ?span ?notes ~code ~severity:Warning message

let info ?span ?notes code message =
  make ?span ?notes ~code ~severity:Info message

let note ?span message = { note_span = span; note_message = message }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

(* Spanned diagnostics first, in source order; span-less ones keep
   their emission order at the end. *)
let compare a b =
  match a.span, b.span with
  | Some sa, Some sb -> (
    match Span.compare sa sb with
    | 0 -> String.compare a.code b.code
    | c -> c)
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> 0

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
        Some (if severity_rank d.severity > severity_rank s then d.severity else s))
    None diags

let exit_code diags =
  match max_severity diags with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Info | None -> 0

let pp_note ppf n =
  match n.note_span with
  | Some s -> Format.fprintf ppf "  note: %a: %s" Span.pp s n.note_message
  | None -> Format.fprintf ppf "  note: %s" n.note_message

let pp_text ppf d =
  (match d.span with
  | Some s ->
    Format.fprintf ppf "%a: %s[%s]: %s" Span.pp s
      (severity_to_string d.severity) d.code d.message
  | None ->
    Format.fprintf ppf "%s[%s]: %s" (severity_to_string d.severity) d.code
      d.message);
  List.iter (fun n -> Format.fprintf ppf "@\n%a" pp_note n) d.notes

let render_text diags =
  Format.asprintf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
       pp_text)
    diags

(* Hand-rolled JSON: the repo carries no JSON dependency (same choice
   as lib/obs's chrome-trace writer). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json = function
  | None -> "null"
  | Some (s : Span.t) ->
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d}"
      (json_escape s.Span.file) s.Span.start_line s.Span.start_col
      s.Span.end_line s.Span.end_col

let note_to_json n =
  Printf.sprintf "{\"span\":%s,\"message\":\"%s\"}" (span_to_json n.note_span)
    (json_escape n.note_message)

let to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"span\":%s,\"message\":\"%s\",\"notes\":[%s]}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (span_to_json d.span) (json_escape d.message)
    (String.concat "," (List.map note_to_json d.notes))

let render_json diags =
  match diags with
  | [] -> "[]"
  | _ ->
    "[\n  " ^ String.concat ",\n  " (List.map to_json diags) ^ "\n]"
