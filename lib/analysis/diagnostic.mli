(** Spanned, coded diagnostics — the currency of [wdl check], the
    loader's warning surface and the CLI's error rendering.

    Every diagnostic carries a stable code ([WDL000]–[WDL041], see
    docs/ANALYSIS.md for the catalogue), a severity, an optional source
    {!Wdl_syntax.Span} ([None] for rules that arrived without source
    text, e.g. over the wire), a message and related-position notes. *)

open Wdl_syntax

type severity = Error | Warning | Info

type note = {
  note_span : Span.t option;
  note_message : string;
}

type t = {
  code : string;         (** stable, e.g. ["WDL001"] *)
  severity : severity;
  span : Span.t option;
  message : string;
  notes : note list;     (** related positions, e.g. the other declaration *)
}

val make :
  ?span:Span.t -> ?notes:note list -> code:string -> severity:severity ->
  string -> t

val error : ?span:Span.t -> ?notes:note list -> string -> string -> t
(** [error code message]. *)

val warning : ?span:Span.t -> ?notes:note list -> string -> string -> t
val info : ?span:Span.t -> ?notes:note list -> string -> string -> t
val note : ?span:Span.t -> string -> note

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Source order (spanned before span-less), then code. *)

val max_severity : t list -> severity option

val exit_code : t list -> int
(** The [wdl check] contract: 2 if any error, 1 if any warning (but no
    error), 0 otherwise — info never fails a run. *)

val pp_text : Format.formatter -> t -> unit
(** [file:line:col: severity[CODE]: message] with indented
    [  note: …] lines. *)

val render_text : t list -> string

val to_json : t -> string
val render_json : t list -> string
(** A JSON array of [{code, severity, file, span, message, notes}]
    objects; spans are [null] or [{file, line, col, end_line,
    end_col}]. The top-level [file] duplicates the span's file (or is
    [null]) so multi-file reports stay attributable per record. *)

val render_sarif :
  rules:(string * severity * string) list -> t list -> string
(** A minimal SARIF 2.1.0 document (one run, tool name ["wdl"]) with
    the given rule catalogue as [tool.driver.rules] — enough for
    GitHub code scanning to annotate PRs. *)
