open Wdl_syntax

(* ------------------------------------------------------------------ *)
(* The abstract domain                                                *)
(* ------------------------------------------------------------------ *)

type peer = Named of string | Any

type node = { n_rel : string option; n_peer : peer }

type edge = {
  e_src : node;
  e_dst : node;
  e_via : peer list;
  e_rule : string;
}

type rule_info = {
  r_id : string;
  r_self : string;
  r_file : string option;
  r_rule : Rule.t;
  r_span : Span.t option;
  r_hops : (int * peer) list;
  r_head : node;
  r_invents : bool;
}

type t = {
  edges : edge list;
  rules : rule_info list;
  selves : string list;
}

type source = {
  src_self : string;
  src_file : string option;
  src_rules : (Rule.t * Span.t option) list;
}

let peer_name = function Named p -> p | Any -> "<any>"

let peer_equal a b =
  match a, b with
  | Named x, Named y -> String.equal x y
  | Any, Any -> true
  | _ -> false

let peers_match a b =
  match a, b with Any, _ | _, Any -> true | Named x, Named y -> String.equal x y

let rels_match a b =
  match a, b with
  | None, _ | _, None -> true
  | Some x, Some y -> String.equal x y

let node_matches a b = rels_match a.n_rel b.n_rel && peers_match a.n_peer b.n_peer

let node_name n =
  Printf.sprintf "%s@%s"
    (match n.n_rel with Some r -> r | None -> "<any>")
    (peer_name n.n_peer)

(* ------------------------------------------------------------------ *)
(* Graph construction                                                 *)
(* ------------------------------------------------------------------ *)

let peer_of_term t =
  match Term.as_name t with
  | Some p -> Named p
  | None -> Any (* variable, or a non-name constant from the wire *)

let node_of_atom (a : Atom.t) =
  { n_rel = Term.as_name a.Atom.rel; n_peer = peer_of_term a.Atom.peer }

(* The evaluation locus walks the body left to right (the paper's
   semantics, [Wdl_eval.Fixpoint.match_pos] at run time): the first
   positive atom whose peer differs from the current locus suspends
   the valuation and ships the residual rule there. A peer variable
   ships to a peer bound only at run time — the [Any] abstraction.
   Two consecutive atoms over the same peer variable stay at the same
   (unknown) locus, so the hop is recorded once. *)
type locus = LNamed of string | LVar of string

let hops ~self (r : Rule.t) =
  let loc = ref (LNamed self) in
  List.concat
    (List.mapi
       (fun i lit ->
         match lit with
         | Literal.Pos a -> (
           match a.Atom.peer with
           | Term.Var v ->
             if !loc = LVar v then []
             else begin
               loc := LVar v;
               [ (i, Any) ]
             end
           | Term.Const _ -> (
             match Term.as_name a.Atom.peer with
             | Some q ->
               if !loc = LNamed q then []
               else begin
                 loc := LNamed q;
                 [ (i, Named q) ]
               end
             | None ->
               (* non-name constant: the evaluator reports an error and
                  derives nothing; no flow *)
               []))
         | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ ->
           (* negation and builtins evaluate against the local database
              at the current locus; they never ship a residual *)
           [])
       r.Rule.body)

let dedup_peers ps =
  List.rev
    (List.fold_left
       (fun acc p -> if List.exists (peer_equal p) acc then acc else p :: acc)
       [] ps)

let info_of_rule ~self ~file ~id (r : Rule.t) span =
  let head = r.Rule.head in
  let head_node = node_of_atom head in
  {
    r_id = id;
    r_self = self;
    r_file = file;
    r_rule = r;
    r_span = span;
    r_hops = hops ~self r;
    r_head = head_node;
    r_invents =
      (match head.Atom.rel, head.Atom.peer with
      | Term.Var _, _ | _, Term.Var _ -> true
      | _ -> false);
  }

let edges_of_info (info : rule_info) =
  List.concat
    (List.mapi
       (fun i lit ->
         match lit with
         | Literal.Pos a ->
           (* Bindings of atom [i] ship with every residual created at a
              later boundary, and flow into the head. *)
           let via =
             dedup_peers
               (List.filter_map
                  (fun (j, p) -> if j > i then Some p else None)
                  info.r_hops)
           in
           [ { e_src = node_of_atom a; e_dst = info.r_head; e_via = via;
               e_rule = info.r_id } ]
         | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ -> [])
       info.r_rule.Rule.body)

let build (sources : source list) =
  let rules =
    List.concat_map
      (fun s ->
        List.mapi
          (fun i (r, span) ->
            info_of_rule ~self:s.src_self ~file:s.src_file
              ~id:(Printf.sprintf "%s#%d" s.src_self (i + 1))
              r span)
          s.src_rules)
      sources
  in
  {
    edges = List.concat_map edges_of_info rules;
    rules;
    selves = List.sort_uniq String.compare (List.map (fun s -> s.src_self) sources);
  }

let of_rules ~self rules =
  build
    [ { src_self = self; src_file = None;
        src_rules = List.map (fun r -> (r, None)) rules } ]

let of_labeled ~self labeled =
  let rules =
    List.map
      (fun (id, r) -> info_of_rule ~self ~file:None ~id r None)
      labeled
  in
  {
    edges = List.concat_map edges_of_info rules;
    rules;
    selves = [ self ];
  }

let rule_info t id = List.find_opt (fun i -> i.r_id = id) t.rules

(* ------------------------------------------------------------------ *)
(* Reachability                                                       *)
(* ------------------------------------------------------------------ *)

type reach = {
  start : node;
  reached : (node * edge list) list;
  via_peers : (peer * edge list) list;
}

(* BFS over edge activations: an edge fires when its source pattern
   matches any node reached so far ([Any]/variable positions match in
   both directions — the over-approximation the runtime oracle checks).
   The witness for each reached node is the chain of rules that
   carries facts there. *)
let reachable t start =
  let reached = ref [ (start, []) ] in
  let via = ref [] in
  let fired = Array.make (List.length t.edges) false in
  let edges = Array.of_list t.edges in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iteri
      (fun k e ->
        if not fired.(k) then
          match
            List.find_opt (fun (n, _) -> node_matches e.e_src n) !reached
          with
          | None -> ()
          | Some (_, path) ->
            fired.(k) <- true;
            progress := true;
            let path = path @ [ e ] in
            if
              not
                (List.exists
                   (fun (n, _) ->
                     n.n_rel = e.e_dst.n_rel && peer_equal n.n_peer e.e_dst.n_peer)
                   !reached)
            then reached := !reached @ [ (e.e_dst, path) ];
            List.iter
              (fun p ->
                if not (List.exists (fun (p', _) -> peer_equal p p') !via)
                then via := !via @ [ (p, path) ])
              e.e_via)
      edges
  done;
  {
    start;
    reached = List.filter (fun (n, path) -> path <> [] || n <> start) !reached;
    via_peers = !via;
  }

(* The peers that may learn facts derived from the start relation:
   every reached node's peer plus every delegation-hop target on the
   way (residual rules carry the bindings accumulated so far). *)
let reach_peers (r : reach) =
  let named = ref [] and any = ref false in
  let add = function
    | Any -> any := true
    | Named p -> if not (List.mem p !named) then named := p :: !named
  in
  List.iter (fun (n, _) -> add n.n_peer) r.reached;
  List.iter (fun (p, _) -> add p) r.via_peers;
  (List.sort String.compare !named, !any)

let witness (r : reach) ~peer =
  match
    List.find_opt (fun (n, _) -> peer_equal n.n_peer peer) r.reached
  with
  | Some (_, path) -> Some path
  | None ->
    Option.map snd (List.find_opt (fun (p, _) -> peer_equal p peer) r.via_peers)

(* Peers a single rule's execution may deliver messages to: the head's
   peer and every delegation-hop target — residuals shipped at a hop
   evaluate remotely on this rule's behalf, so their deliveries are
   still attributed to this rule's id. *)
let rule_sends t id =
  match rule_info t id with
  | None -> ([], false)
  | Some info ->
    let named = ref [] and any = ref false in
    let add = function
      | Any -> any := true
      | Named p -> if not (List.mem p !named) then named := p :: !named
    in
    add info.r_head.n_peer;
    List.iter (fun (_, p) -> add p) info.r_hops;
    (* A variable head relation or peer can also be delivered locally
       under an invented name; [Any] already covers remote cases. *)
    (List.sort String.compare !named, !any)

(* ------------------------------------------------------------------ *)
(* Queries used by the renderers and diagnostics                      *)
(* ------------------------------------------------------------------ *)

(* Concrete relations appearing in the graph, sorted: the rows of the
   flow report. *)
let relations t =
  let nodes =
    List.concat_map (fun e -> [ e.e_src; e.e_dst ]) t.edges
    |> List.filter_map (fun n ->
           match n.n_rel, n.n_peer with
           | Some r, Named p -> Some (r, p)
           | _ -> None)
  in
  List.sort_uniq compare nodes

let path_ids path = List.map (fun e -> e.e_rule) path

(* ------------------------------------------------------------------ *)
(* Renderers                                                          *)
(* ------------------------------------------------------------------ *)

let one_line pp v =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf max_int;
  pp ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_text t =
  let buf = Buffer.create 1024 in
  let rel_rows = relations t in
  List.iter
    (fun (rel, p) ->
      let r = reachable t { n_rel = Some rel; n_peer = Named p } in
      let named, any = reach_peers r in
      let foreign = List.filter (fun q -> q <> p) named in
      let peers_desc =
        match foreign, any with
        | [], false -> "stays at " ^ p
        | _ ->
          "reaches "
          ^ String.concat ", "
              (foreign @ if any then [ "<any> (delegation-bound peers)" ] else [])
      in
      Buffer.add_string buf (Printf.sprintf "%s@%s: %s\n" rel p peers_desc);
      List.iter
        (fun (n, path) ->
          Buffer.add_string buf
            (Printf.sprintf "  -> %s  [%s]\n" (node_name n)
               (String.concat " -> " (path_ids path))))
        r.reached;
      List.iter
        (fun (pv, path) ->
          Buffer.add_string buf
            (Printf.sprintf "  ~> bindings ship to %s  [%s]\n"
               (match pv with Named q -> "peer " ^ q | Any -> "<any> peer")
               (String.concat " -> " (path_ids path))))
        r.via_peers)
    rel_rows;
  if rel_rows <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "rules:\n";
  List.iter
    (fun info ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s\n" info.r_id
           (one_line Rule.pp info.r_rule)))
    t.rules;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json t =
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let list xs = "[" ^ String.concat "," xs ^ "]" in
  let peer_json = function Named p -> str p | Any -> str "<any>" in
  let node_json n =
    Printf.sprintf "{\"rel\":%s,\"peer\":%s}"
      (match n.n_rel with Some r -> str r | None -> "null")
      (peer_json n.n_peer)
  in
  let edge_json e =
    Printf.sprintf
      "{\"src\":%s,\"dst\":%s,\"via\":%s,\"rule\":%s}"
      (node_json e.e_src) (node_json e.e_dst)
      (list (List.map peer_json e.e_via))
      (str e.e_rule)
  in
  let rel_json (rel, p) =
    let r = reachable t { n_rel = Some rel; n_peer = Named p } in
    let named, any = reach_peers r in
    Printf.sprintf
      "{\"relation\":%s,\"peer\":%s,\"reachable_peers\":%s,\"any\":%b,\"witnesses\":%s}"
      (str rel) (str p)
      (list (List.map str named))
      any
      (list
         (List.map
            (fun (n, path) ->
              Printf.sprintf "{\"node\":%s,\"rules\":%s}" (node_json n)
                (list (List.map str (path_ids path))))
            r.reached))
  in
  let rule_json info =
    Printf.sprintf "{\"id\":%s,\"peer\":%s,\"rule\":%s}"
      (str info.r_id) (str info.r_self)
      (str (one_line Rule.pp info.r_rule))
  in
  Printf.sprintf
    "{\n  \"relations\": %s,\n  \"edges\": %s,\n  \"rules\": %s\n}"
    (list (List.map rel_json (relations t)))
    (list (List.map edge_json t.edges))
    (list (List.map rule_json t.rules))

let render_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph flow {\n  rankdir=LR;\n";
  let seen = Hashtbl.create 16 in
  let declare n =
    let name = node_name n in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      let shape =
        match n.n_peer with Any -> "doubleoctagon" | Named _ -> "box"
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=%s];\n" name shape)
    end
  in
  List.iter
    (fun e ->
      declare e.e_src;
      declare e.e_dst)
    t.edges;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n"
           (node_name e.e_src) (node_name e.e_dst) e.e_rule);
      List.iter
        (fun p ->
          let pname = Printf.sprintf "peer:%s" (peer_name p) in
          if not (Hashtbl.mem seen pname) then begin
            Hashtbl.add seen pname ();
            Buffer.add_string buf
              (Printf.sprintf "  \"%s\" [shape=ellipse,style=dotted];\n" pname)
          end;
          Buffer.add_string buf
            (Printf.sprintf
               "  \"%s\" -> \"%s\" [label=\"%s\",style=dashed];\n"
               (node_name e.e_src) pname e.e_rule))
        e.e_via)
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
