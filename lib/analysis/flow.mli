(** Whole-system knowledge-flow analysis.

    Builds a cross-peer dataflow graph whose nodes are [relation@peer]
    and whose edges come from rule body→head flow, with delegation
    hops (residual rules shipped at an evaluation boundary) recorded
    on each edge. Peers bound only by a peer {e variable} are
    abstracted as the ⊤ peer [Any]; transitive reachability over the
    graph answers "which peers may learn facts derived from relation
    X, and via which rule chain". The abstraction over-approximates
    the runtime delegation semantics — checked by the QCheck
    differential in [test_flow.ml] against live [Peer] origin tags. *)

open Wdl_syntax

type peer = Named of string | Any

type node = { n_rel : string option; n_peer : peer }
(** [n_rel = None] abstracts a relation-variable head. *)

type edge = {
  e_src : node;
  e_dst : node;
  e_via : peer list;  (** delegation hop targets the bindings ship through *)
  e_rule : string;  (** id of the rule inducing this edge *)
}

type rule_info = {
  r_id : string;  (** ["self#k"], [k] 1-based in program order *)
  r_self : string;
  r_file : string option;
  r_rule : Rule.t;
  r_span : Span.t option;
  r_hops : (int * peer) list;
      (** body index at which evaluation hops to a new peer *)
  r_head : node;
  r_invents : bool;  (** head relation or peer is a variable *)
}

type t = { edges : edge list; rules : rule_info list; selves : string list }

type source = {
  src_self : string;
  src_file : string option;
  src_rules : (Rule.t * Span.t option) list;
}

val build : source list -> t
(** One source per program file; rule ids are assigned ["self#k"] in
    order, matching the ids a live [Peer] assigns at install time. *)

val of_rules : self:string -> Rule.t list -> t
(** Single anonymous source. *)

val of_labeled : self:string -> (string * Rule.t) list -> t
(** Rules with caller-chosen ids, all executing at [self] — how a live
    [Peer] exposes its program (own rules plus installed delegations,
    which keep the id of the origin rule that shipped them). *)

val rule_info : t -> string -> rule_info option

type reach = {
  start : node;
  reached : (node * edge list) list;
      (** each reached node with a witness rule path (BFS order;
          excludes the start itself) *)
  via_peers : (peer * edge list) list;
      (** delegation-hop targets encountered, with witness *)
}

val reachable : t -> node -> reach

val reach_peers : reach -> string list * bool
(** Sorted named peers that may learn the data, and whether the ⊤ peer
    (an unbounded, run-time-determined set) is among them. *)

val witness : reach -> peer:peer -> edge list option

val rule_sends : t -> string -> string list * bool
(** Peers a single rule's execution may deliver messages to: head peer
    plus all delegation-hop targets. [(named, any)]. The runtime
    oracle checks every observed [(origin_rule, dst_peer)] delivery
    against this set. *)

val relations : t -> (string * string) list
(** Concrete [relation, peer] nodes mentioned in the graph, sorted. *)

val node_of_atom : Atom.t -> node
val node_matches : node -> node -> bool
val node_name : node -> string
val peer_name : peer -> string
val path_ids : edge list -> string list

val render_text : t -> string
val render_json : t -> string
val render_dot : t -> string
