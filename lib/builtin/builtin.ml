open Wdl_syntax
open Wdl_store

type op = Insert | Delete

type tick_result = {
  changed : bool;
  expired : Tuple.t list;
}

type stats = {
  entries : int;
  memory_bytes : int;
  writes : int;
  dropped : int;
  evictions : int;
}

type instance = {
  decl : Decl.t;
  bkind : string;
  writable : bool;
  write : stage:int -> now:float -> op -> Tuple.t -> (bool, string) result;
  tick : stage:int -> now:float -> tick_result;
  flush : unit -> bool;
  stats : unit -> stats;
}

let kinds = [ "bloom"; "cms"; "time"; "topk"; "ttl"; "window" ]
let is_kind k = List.mem k kinds
let writable_kind = function "time" -> false | _ -> true

(* {1 Declaration-time configuration} *)

let ( let* ) = Result.bind

let err bkind fmt =
  Printf.ksprintf (fun s -> Error (Printf.sprintf "builtin %s: %s" bkind s)) fmt

let check_params bkind ~allowed params =
  let rec go = function
    | [] -> Ok ()
    | (k, _) :: rest ->
      if List.mem_assoc k rest then err bkind "duplicate parameter %s" k
      else if not (List.mem k allowed) then
        err bkind "unknown parameter %s (allowed: %s)" k
          (String.concat ", " allowed)
      else go rest
  in
  if allowed = [] && params <> [] then err bkind "takes no parameters"
  else go params

let int_param bkind params k =
  match List.assoc_opt k params with
  | None -> Ok None
  | Some (Value.Int n) when n > 0 -> Ok (Some n)
  | Some v ->
    err bkind "parameter %s must be a positive integer, got %s" k
      (Value.to_string v)

let seconds_param bkind params k =
  match List.assoc_opt k params with
  | None -> Ok None
  | Some (Value.Int n) when n > 0 -> Ok (Some (float_of_int n))
  | Some (Value.Float f) when f > 0. -> Ok (Some f)
  | Some v ->
    err bkind "parameter %s must be a positive number, got %s" k
      (Value.to_string v)

let fpr_param bkind params =
  match List.assoc_opt "fpr" params with
  | None -> Ok None
  | Some (Value.Float f) when f > 0. && f < 1. -> Ok (Some f)
  | Some v ->
    err bkind "parameter fpr must be a float in (0, 1), got %s"
      (Value.to_string v)

(* Trailing horizon of a windowed module: the last N evaluation stages
   or the last T wall-clock seconds. Entries are stamped at write time
   and expire when the stamp falls at or below the cutoff. *)
type horizon = Stages of int | Seconds of float

let horizon bkind ~stages_key params =
  let* n = int_param bkind params stages_key in
  let* s = seconds_param bkind params "seconds" in
  match n, s with
  | Some n, None -> Ok (Stages n)
  | None, Some s -> Ok (Seconds s)
  | Some _, Some _ ->
    err bkind "parameters %s and seconds are mutually exclusive" stages_key
  | None, None -> err bkind "one of %s=N or seconds=T is required" stages_key

let stamp h ~stage ~now =
  match h with Stages _ -> float_of_int stage | Seconds _ -> now

let cutoff h ~stage ~now =
  match h with
  | Stages n -> float_of_int (stage - n)
  | Seconds s -> now -. s

type bloom_config =
  | Bloom_bits of { bits : int; hashes : int }
  | Bloom_capacity of { capacity : int; fpr : float }

type config =
  | Time
  | Window of horizon
  | Topk of { k : int; h : horizon }
  | Ttl of horizon
  | Bloom of bloom_config
  | Cms of { width : int; depth : int; k : int }

let parse (d : Decl.t) =
  match d.Decl.builtin with
  | None -> Ok None
  | Some { Decl.bkind; params } ->
    let arity = Decl.arity d in
    let* cfg =
      match bkind with
      | "time" ->
        let* () = check_params "time" ~allowed:[] params in
        if arity <> 2 then
          err "time" "arity must be 2 (stage, seconds), got %d" arity
        else Ok Time
      | "window" ->
        let* () = check_params "window" ~allowed:[ "size"; "seconds" ] params in
        if arity < 1 then err "window" "arity must be at least 1"
        else
          let* h = horizon "window" ~stages_key:"size" params in
          Ok (Window h)
      | "topk" ->
        let* () =
          check_params "topk" ~allowed:[ "k"; "size"; "seconds" ] params
        in
        if arity < 2 then
          err "topk" "arity must be at least 2 (key…, weight), got %d" arity
        else
          let* k = int_param "topk" params "k" in
          let* k =
            match k with
            | Some k -> Ok k
            | None -> err "topk" "parameter k=K is required"
          in
          let* h = horizon "topk" ~stages_key:"size" params in
          Ok (Topk { k; h })
      | "ttl" ->
        let* () = check_params "ttl" ~allowed:[ "ttl"; "seconds" ] params in
        if arity < 1 then err "ttl" "arity must be at least 1"
        else
          let* h = horizon "ttl" ~stages_key:"ttl" params in
          Ok (Ttl h)
      | "bloom" ->
        let* () =
          check_params "bloom"
            ~allowed:[ "bits"; "hashes"; "capacity"; "fpr" ] params
        in
        if arity < 1 then err "bloom" "arity must be at least 1"
        else
          let* bits = int_param "bloom" params "bits" in
          let* hashes = int_param "bloom" params "hashes" in
          let* capacity = int_param "bloom" params "capacity" in
          let* fpr = fpr_param "bloom" params in
          (match bits, capacity with
          | Some _, Some _ ->
            err "bloom" "parameters bits and capacity are mutually exclusive"
          | Some bits, None -> (
            match fpr with
            | Some _ -> err "bloom" "parameter fpr only applies with capacity"
            | None ->
              Ok
                (Bloom
                   (Bloom_bits
                      { bits; hashes = Option.value hashes ~default:4 })))
          | None, Some capacity -> (
            match hashes with
            | Some _ -> err "bloom" "parameter hashes only applies with bits"
            | None ->
              Ok
                (Bloom
                   (Bloom_capacity
                      { capacity; fpr = Option.value fpr ~default:0.01 })))
          | None, None -> err "bloom" "one of bits=B or capacity=N is required")
      | "cms" ->
        let* () =
          check_params "cms" ~allowed:[ "k"; "width"; "depth" ] params
        in
        if arity < 2 then
          err "cms" "arity must be at least 2 (key…, weight), got %d" arity
        else
          let* k = int_param "cms" params "k" in
          let* k =
            match k with
            | Some k -> Ok k
            | None -> err "cms" "parameter k=K is required"
          in
          let* width = int_param "cms" params "width" in
          let* depth = int_param "cms" params "depth" in
          Ok
            (Cms
               {
                 width = Option.value width ~default:1024;
                 depth = Option.value depth ~default:4;
                 k;
               })
      | other ->
        Error
          (Printf.sprintf "unknown builtin kind %s (known: %s)" other
             (String.concat ", " kinds))
    in
    Ok (Some cfg)

let validate d = Result.map ignore (parse d)

(* {1 Instances} *)

let check_arity (d : Decl.t) tuple k =
  let expected = Decl.arity d in
  if Array.length tuple <> expected then
    Error
      (Printf.sprintf "builtin %s: tuple has arity %d, but %s is declared \
                       with arity %d"
         (match d.Decl.builtin with Some b -> b.Decl.bkind | None -> "?")
         (Array.length tuple) d.Decl.rel expected)
  else k ()

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* window and ttl share mechanics: a set of stamped tuples, written
   straight into the materialization and retracted when the stamp
   leaves the horizon. A re-write refreshes the stamp. *)
let make_stamped ~bkind ~(decl : Decl.t) ~data h =
  let tbl : (Tuple.t, float) Hashtbl.t = Hashtbl.create 64 in
  let writes = ref 0 and evictions = ref 0 in
  let write ~stage ~now op tuple =
    check_arity decl tuple @@ fun () ->
    match op with
    | Insert ->
      incr writes;
      Hashtbl.replace tbl tuple (stamp h ~stage ~now);
      Ok (Relation.insert data tuple)
    | Delete ->
      Hashtbl.remove tbl tuple;
      Ok (Relation.delete data tuple)
  in
  let tick ~stage ~now =
    let c = cutoff h ~stage ~now in
    let doomed =
      Hashtbl.fold (fun tu st acc -> if st <= c then tu :: acc else acc) tbl []
      |> List.sort Tuple.compare
    in
    List.iter
      (fun tu ->
        Hashtbl.remove tbl tu;
        ignore (Relation.delete data tu))
      doomed;
    evictions := !evictions + List.length doomed;
    { changed = doomed <> []; expired = doomed }
  in
  let stats () =
    {
      entries = Hashtbl.length tbl;
      memory_bytes = Hashtbl.length tbl * (Decl.arity decl + 3) * 8;
      writes = !writes;
      dropped = 0;
      evictions = !evictions;
    }
  in
  { decl; bkind; writable = true; write; tick; flush = (fun () -> false);
    stats }

let make_time ~(decl : Decl.t) ~data =
  let write ~stage:_ ~now:_ _op _tuple =
    Error "builtin time: read-only relation (the runtime writes it at every \
           stage)"
  in
  let tick ~stage ~now =
    Relation.clear data;
    ignore (Relation.insert data [| Value.Int stage; Value.Float now |]);
    { changed = true; expired = [] }
  in
  let stats () =
    { entries = 1; memory_bytes = 48; writes = 0; dropped = 0; evictions = 0 }
  in
  { decl; bkind = "time"; writable = false; write; tick;
    flush = (fun () -> false); stats }

(* Bloom dedup materializes a written tuple only when the filter calls
   it novel, and only for the stage it arrived in — a size-1 stage
   window over first sightings. Memory is the filter plus one stage's
   novel tuples, never the stream. *)
let make_bloom ~(decl : Decl.t) ~data cfg =
  let bloom =
    match cfg with
    | Bloom_bits { bits; hashes } -> Sketch.Bloom.create ~hashes ~bits ()
    | Bloom_capacity { capacity; fpr } -> Sketch.Bloom.for_capacity ~fpr capacity
  in
  let tbl : (Tuple.t, int) Hashtbl.t = Hashtbl.create 64 in
  let writes = ref 0 and dropped = ref 0 and evictions = ref 0 in
  let write ~stage ~now:_ op tuple =
    check_arity decl tuple @@ fun () ->
    match op with
    | Delete -> Error "builtin bloom: deletion is not supported"
    | Insert ->
      if Sketch.Bloom.add_mem bloom tuple then begin
        incr dropped;
        Ok false
      end
      else begin
        incr writes;
        Hashtbl.replace tbl tuple stage;
        Ok (Relation.insert data tuple)
      end
  in
  let tick ~stage ~now:_ =
    let doomed =
      Hashtbl.fold
        (fun tu st acc -> if st < stage then tu :: acc else acc)
        tbl []
      |> List.sort Tuple.compare
    in
    List.iter
      (fun tu ->
        Hashtbl.remove tbl tu;
        ignore (Relation.delete data tu))
      doomed;
    evictions := !evictions + List.length doomed;
    { changed = doomed <> []; expired = doomed }
  in
  let stats () =
    {
      entries = Hashtbl.length tbl;
      memory_bytes =
        Sketch.Bloom.memory_bytes bloom
        + (Hashtbl.length tbl * (Decl.arity decl + 3) * 8);
      writes = !writes;
      dropped = !dropped;
      evictions = !evictions;
    }
  in
  { decl; bkind = "bloom"; writable = true; write; tick;
    flush = (fun () -> false); stats }

(* Shared by topk and cms: materialize a ranked [(key…, total)] output
   and only touch the relation when the ranking actually changed. *)
let ranked_materializer ~data ~k totals_list =
  let last_out = ref [] in
  fun () ->
    let out =
      totals_list ()
      |> List.sort (fun (k1, t1) (k2, t2) ->
             match Int.compare t2 t1 with
             | 0 -> Tuple.compare k1 k2
             | c -> c)
      |> take k
      |> List.map (fun (key, total) ->
             Array.append key [| Value.Int total |])
      |> List.sort Tuple.compare
    in
    if List.equal Tuple.equal out !last_out then false
    else begin
      Relation.clear data;
      List.iter (fun tu -> ignore (Relation.insert data tu)) out;
      last_out := out;
      true
    end

let make_topk ~(decl : Decl.t) ~data ~k h =
  let arity = Decl.arity decl in
  let q : (float * Tuple.t * int) Queue.t = Queue.create () in
  let totals : (Tuple.t, int) Hashtbl.t = Hashtbl.create 64 in
  let writes = ref 0 and evictions = ref 0 in
  let dirty = ref false in
  let bump key w =
    let next = Option.value ~default:0 (Hashtbl.find_opt totals key) + w in
    if next = 0 then Hashtbl.remove totals key
    else Hashtbl.replace totals key next
  in
  let rematerialize =
    ranked_materializer ~data ~k (fun () ->
        Hashtbl.fold (fun key total acc -> (key, total) :: acc) totals [])
  in
  let write ~stage ~now op tuple =
    check_arity decl tuple @@ fun () ->
    match op with
    | Delete ->
      Error "builtin topk: deletion is not supported (weights expire out of \
             the window)"
    | Insert -> (
      match tuple.(arity - 1) with
      | Value.Int w ->
        incr writes;
        let key = Array.sub tuple 0 (arity - 1) in
        Queue.push (stamp h ~stage ~now, key, w) q;
        bump key w;
        dirty := true;
        Ok false
      | v ->
        Error
          (Printf.sprintf
             "builtin topk: last column must be an integer weight, got %s"
             (Value.to_string v)))
  in
  let flush () =
    if !dirty then begin
      dirty := false;
      rematerialize ()
    end
    else false
  in
  let tick ~stage ~now =
    let c = cutoff h ~stage ~now in
    let rec drop () =
      match Queue.peek_opt q with
      | Some (st, key, w) when st <= c ->
        ignore (Queue.pop q);
        bump key (-w);
        incr evictions;
        dirty := true;
        drop ()
      | _ -> ()
    in
    drop ();
    { changed = flush (); expired = [] }
  in
  let stats () =
    {
      entries = Queue.length q;
      memory_bytes = Queue.length q * (arity + 4) * 8;
      writes = !writes;
      dropped = 0;
      evictions = !evictions;
    }
  in
  { decl; bkind = "topk"; writable = true; write; tick; flush; stats }

let make_cms ~(decl : Decl.t) ~data ~width ~depth ~k =
  let arity = Decl.arity decl in
  let cms = Sketch.Cms.create ~width ~depth () in
  (* Bounded candidate set: the sketch alone cannot enumerate keys, so
     heavy-hitter candidates are remembered exactly, pruned to the
     heaviest when over capacity. A pruned key that keeps arriving
     re-enters with its current (cumulative) estimate. *)
  let cap = max (4 * k) 64 in
  let candidates : (Tuple.t, int) Hashtbl.t = Hashtbl.create 64 in
  let writes = ref 0 in
  let dirty = ref false in
  let prune () =
    if Hashtbl.length candidates > cap then begin
      let keep =
        Hashtbl.fold (fun key est acc -> (key, est) :: acc) candidates []
        |> List.sort (fun (k1, e1) (k2, e2) ->
               match Int.compare e2 e1 with
               | 0 -> Tuple.compare k1 k2
               | c -> c)
        |> take (max (2 * k) 32)
      in
      Hashtbl.reset candidates;
      List.iter (fun (key, est) -> Hashtbl.replace candidates key est) keep
    end
  in
  let rematerialize =
    ranked_materializer ~data ~k (fun () ->
        (* Re-read the sketch at materialization time: estimates only
           grow, and stale candidate entries would under-rank keys. *)
        Hashtbl.fold
          (fun key _ acc -> (key, Sketch.Cms.estimate cms key) :: acc)
          candidates [])
  in
  let write ~stage:_ ~now:_ op tuple =
    check_arity decl tuple @@ fun () ->
    match op with
    | Delete -> Error "builtin cms: deletion is not supported"
    | Insert -> (
      match tuple.(arity - 1) with
      | Value.Int w ->
        incr writes;
        let key = Array.sub tuple 0 (arity - 1) in
        let est = Sketch.Cms.add cms ~count:w key in
        Hashtbl.replace candidates key est;
        prune ();
        dirty := true;
        Ok false
      | v ->
        Error
          (Printf.sprintf
             "builtin cms: last column must be an integer weight, got %s"
             (Value.to_string v)))
  in
  let flush () =
    if !dirty then begin
      dirty := false;
      rematerialize ()
    end
    else false
  in
  let tick ~stage:_ ~now:_ = { changed = flush (); expired = [] } in
  let stats () =
    {
      entries = Hashtbl.length candidates;
      memory_bytes =
        Sketch.Cms.memory_bytes cms
        + (Hashtbl.length candidates * (arity + 3) * 8);
      writes = !writes;
      dropped = 0;
      evictions = 0;
    }
  in
  { decl; bkind = "cms"; writable = true; write; tick; flush; stats }

let instantiate ~decl ~data =
  let* cfg = parse decl in
  match cfg with
  | None ->
    Error
      (Printf.sprintf "relation %s has no builtin configuration" decl.Decl.rel)
  | Some Time -> Ok (make_time ~decl ~data)
  | Some (Window h) -> Ok (make_stamped ~bkind:"window" ~decl ~data h)
  | Some (Ttl h) -> Ok (make_stamped ~bkind:"ttl" ~decl ~data h)
  | Some (Topk { k; h }) -> Ok (make_topk ~decl ~data ~k h)
  | Some (Bloom cfg) -> Ok (make_bloom ~decl ~data cfg)
  | Some (Cms { width; depth; k }) -> Ok (make_cms ~decl ~data ~width ~depth ~k)

(* {1 Per-peer registry} *)

module Registry = struct
  type nonrec t = (string, instance) Hashtbl.t

  let create () = Hashtbl.create 8

  let register t ~decl ~data =
    let* inst = instantiate ~decl ~data in
    Hashtbl.replace t decl.Decl.rel inst;
    Ok inst

  let find t rel = Hashtbl.find_opt t rel
  let mem t rel = Hashtbl.mem t rel
  let is_empty t = Hashtbl.length t = 0

  let to_list t =
    Hashtbl.fold (fun _ inst acc -> inst :: acc) t []
    |> List.sort (fun a b -> String.compare a.decl.Decl.rel b.decl.Decl.rel)

  let tick_all t ~stage ~now =
    List.fold_left
      (fun (changed, expired) inst ->
        let r = inst.tick ~stage ~now in
        ( changed || r.changed,
          expired
          @ List.map (fun tu -> (inst.decl.Decl.rel, tu)) r.expired ))
      (false, []) (to_list t)

  let flush_all t =
    List.fold_left (fun acc inst -> inst.flush () || acc) false (to_list t)

  let totals t =
    List.fold_left
      (fun acc inst ->
        let s = inst.stats () in
        {
          entries = acc.entries + s.entries;
          memory_bytes = acc.memory_bytes + s.memory_bytes;
          writes = acc.writes + s.writes;
          dropped = acc.dropped + s.dropped;
          evictions = acc.evictions + s.evictions;
        })
      { entries = 0; memory_bytes = 0; writes = 0; dropped = 0; evictions = 0 }
      (to_list t)
end
