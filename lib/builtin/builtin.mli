(** Builtin relation modules: relations whose storage and update
    semantics come from the runtime instead of plain set semantics.

    A builtin relation is declared with
    [builtin <kind> rel@peer(cols) with k=v, …] and behaves like an
    extensional relation to the evaluator: rules read it like any
    relation, rule heads write it inductively, remote facts for it are
    updates. The module owns the private state (ring of stamped
    entries, expiry map, sketch bits) and keeps the relation's
    ordinary {!Wdl_store.Relation.t} — the {e materialization} — in
    sync, so the fixpoint needs no changes to consume it.

    Kinds:
    - [time] (arity 2, no parameters, read-only): one tuple
      [(stage, seconds)], rewritten at every tick.
    - [window] ([size=N] stages xor [seconds=T]): the distinct tuples
      written within the trailing window; expired tuples auto-retract.
    - [topk] ([k=K] plus [size=N] xor [seconds=T], arity ≥ 2): written
      tuples carry an integer weight in the last column; materializes
      the K heaviest keys of the window as [(key…, total)].
    - [ttl] ([ttl=N] stages xor [seconds=T]): like [window], but a
      re-write refreshes the expiry — facts auto-retract through the
      revocation-style deletion path.
    - [bloom] ([bits=B] with optional [hashes=H], xor [capacity=N]
      with optional [fpr=P]): approximate dedup. A written tuple is
      materialized only if the Bloom filter considers it novel, and
      only for the stage it arrived in; memory stays bounded by the
      filter, not the stream.
    - [cms] ([k=K] plus optional [width=W], [depth=D], arity ≥ 2):
      count-min heavy hitters. Writes carry an integer weight in the
      last column; materializes the K largest estimates as
      [(key…, estimate)].

    Ticks run at stage boundaries (the peer calls {!Registry.tick_all}
    as the stage opens, then {!Registry.flush_all} once the stage's
    inputs are applied), so stages stay deterministic: stage-indexed
    horizons advance only when the peer actually runs a stage, and
    wall-clock horizons read the peer's injectable clock. *)

open Wdl_syntax
open Wdl_store

type op = Insert | Delete

type tick_result = {
  changed : bool;  (** the materialized relation changed *)
  expired : Tuple.t list;  (** tuples retracted by this tick, sorted *)
}

type stats = {
  entries : int;  (** live private-state entries *)
  memory_bytes : int;  (** approximate private-state footprint *)
  writes : int;  (** accepted writes since creation *)
  dropped : int;  (** writes dropped as duplicates (bloom) *)
  evictions : int;  (** tuples expired since creation *)
}

type instance = {
  decl : Decl.t;
  bkind : string;
  writable : bool;
  write : stage:int -> now:float -> op -> Tuple.t -> (bool, string) result;
      (** Guarded write path. [Ok true] iff the materialized relation
          changed. [Error _] on read-only modules, arity mismatches and
          malformed weights; deletion is only supported by [window] and
          [ttl]. *)
  tick : stage:int -> now:float -> tick_result;
      (** Stage-boundary advance: expiry, time refresh. *)
  flush : unit -> bool;
      (** Rematerializes pending aggregate output ([topk], [cms]);
          [true] iff the relation changed. No-op for other kinds. *)
  stats : unit -> stats;
}

val kinds : string list
(** Sorted list of known kind names. *)

val is_kind : string -> bool

val writable_kind : string -> bool
(** [false] for kinds whose relation only the runtime may write
    ([time]). Unknown kinds are reported writable (the error surfaces
    at validation instead). *)

val validate : Decl.t -> (unit, string) result
(** Checks a declaration's kind, parameters and arity without
    allocating any storage — the static analyzer's entry point.
    [Ok ()] for declarations with no builtin config. *)

val instantiate : decl:Decl.t -> data:Relation.t -> (instance, string) result
(** Validates and builds an instance materializing into [data] (the
    relation registered for [decl] in the peer's database). *)

(** Per-peer registry, keyed by relation name. *)
module Registry : sig
  type t

  val create : unit -> t

  val register : t -> decl:Decl.t -> data:Relation.t -> (instance, string) result
  (** Re-registering a relation name replaces the old instance (used
      by snapshot restore); the caller is responsible for clearing the
      materialization if needed. *)

  val find : t -> string -> instance option
  val mem : t -> string -> bool
  val is_empty : t -> bool

  val to_list : t -> instance list
  (** Sorted by relation name — tick order, hence deterministic. *)

  val tick_all : t -> stage:int -> now:float -> bool * (string * Tuple.t) list
  (** Ticks every instance in relation-name order; returns whether any
      materialization changed and the expired [(rel, tuple)]s. *)

  val flush_all : t -> bool

  val totals : t -> stats
  (** Sums over instances (for metrics). *)
end
