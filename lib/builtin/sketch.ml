(* Double hashing over OCaml's structural seeded hash: two independent
   30-bit hashes h1, h2 generate the k probe positions h1 + i·h2. The
   classic Kirsch–Mitzenmacher construction keeps the asymptotic
   false-positive rate of k independent hashes. *)

let h1 x = Hashtbl.seeded_hash 0x2545 x
let h2 x = Hashtbl.seeded_hash 0x9e37 x lor 1 (* odd: hits every residue *)

module Bloom = struct
  type t = {
    bits : Bytes.t;
    m : int;  (* number of bits *)
    k : int;  (* hashes per element *)
    mutable set_bits : int;
    mutable inserts : int;
  }

  let create ?(hashes = 4) ~bits () =
    if bits <= 0 then invalid_arg "Bloom.create: bits must be positive";
    if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
    let m = max 64 bits in
    { bits = Bytes.make ((m + 7) / 8) '\000'; m; k = hashes; set_bits = 0;
      inserts = 0 }

  let for_capacity ?(fpr = 0.01) n =
    if n <= 0 then invalid_arg "Bloom.for_capacity: capacity must be positive";
    if not (fpr > 0. && fpr < 1.) then
      invalid_arg "Bloom.for_capacity: fpr must be in (0, 1)";
    let ln2 = log 2. in
    let m =
      int_of_float (ceil (-.float_of_int n *. log fpr /. (ln2 *. ln2)))
    in
    let k = max 1 (int_of_float (Float.round (float_of_int m /. float_of_int n *. ln2))) in
    create ~hashes:k ~bits:m ()

  let get t i =
    Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set t i =
    let byte = i lsr 3 in
    let mask = 1 lsl (i land 7) in
    let c = Char.code (Bytes.unsafe_get t.bits byte) in
    if c land mask = 0 then begin
      Bytes.unsafe_set t.bits byte (Char.unsafe_chr (c lor mask));
      t.set_bits <- t.set_bits + 1
    end

  let probe t x f =
    let a = h1 x and b = h2 x in
    let rec go i acc =
      if i >= t.k then acc
      else
        let pos = abs (a + (i * b)) mod t.m in
        go (i + 1) (f pos acc)
    in
    go 0 true

  let mem t x = probe t x (fun pos acc -> acc && get t pos)

  let add_mem t x =
    t.inserts <- t.inserts + 1;
    probe t x (fun pos acc ->
        let was = get t pos in
        if not was then set t pos;
        acc && was)

  let add t x = ignore (add_mem t x)
  let inserts t = t.inserts
  let bits t = t.m
  let hashes t = t.k
  let memory_bytes t = Bytes.length t.bits
  let fill_ratio t = float_of_int t.set_bits /. float_of_int t.m
  let fpr_estimate t = fill_ratio t ** float_of_int t.k

  (* n ≈ -(m/k) ln(1 - fill): inverts the expected fill ratio. *)
  let cardinal_estimate t =
    let fill = fill_ratio t in
    if fill >= 1. then max_int
    else
      int_of_float
        (Float.round
           (-.(float_of_int t.m /. float_of_int t.k) *. log (1. -. fill)))
end

module Cms = struct
  type t = {
    width : int;
    depth : int;
    rows : int array array;
    mutable total : int;
  }

  let create ?(width = 1024) ?(depth = 4) () =
    if width <= 0 then invalid_arg "Cms.create: width must be positive";
    if depth <= 0 then invalid_arg "Cms.create: depth must be positive";
    { width; depth; rows = Array.init depth (fun _ -> Array.make width 0);
      total = 0 }

  let fold_cells t x f init =
    let a = h1 x and b = h2 x in
    let acc = ref init in
    for row = 0 to t.depth - 1 do
      let col = abs (a + (row * b)) mod t.width in
      acc := f !acc t.rows.(row) col
    done;
    !acc

  let add t ?(count = 1) x =
    t.total <- t.total + count;
    fold_cells t x
      (fun est row col ->
        row.(col) <- row.(col) + count;
        min est row.(col))
      max_int

  let estimate t x = fold_cells t x (fun est row col -> min est row.(col)) max_int
  let total t = t.total
  let width t = t.width
  let depth t = t.depth
  let memory_bytes t = t.width * t.depth * 8
end
