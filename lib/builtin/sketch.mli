(** Probabilistic sketches with bounded memory: a Bloom filter
    (approximate set membership, no false negatives) and a count-min
    sketch (frequency over-estimates). Both hash arbitrary OCaml
    values structurally, so they work directly on {!Wdl_store.Tuple}s.

    These back the [bloom] and [cms] builtin relation modules and are
    exposed separately so tests and benchmarks can exercise them
    against exact references. *)

module Bloom : sig
  type t

  val create : ?hashes:int -> bits:int -> unit -> t
  (** [bits] is rounded up to at least 64; [hashes] defaults to 4.
      Raises [Invalid_argument] on non-positive arguments. *)

  val for_capacity : ?fpr:float -> int -> t
  (** Sizes the filter for [n] insertions at false-positive rate
      [fpr] (default 0.01): [m = -n ln fpr / (ln 2)²] bits and the
      matching optimal hash count. *)

  val add : t -> 'a -> unit
  val mem : t -> 'a -> bool

  val add_mem : t -> 'a -> bool
  (** Adds and returns whether the element was (possibly) already
      present — one hash pass instead of [mem] + [add]. *)

  val cardinal_estimate : t -> int
  (** Estimated number of distinct insertions, from the fill ratio. *)

  val inserts : t -> int
  (** Exact number of [add]/[add_mem] calls. *)

  val bits : t -> int
  val hashes : t -> int
  val memory_bytes : t -> int
  val fill_ratio : t -> float
  (** Fraction of bits set, in [0, 1]. *)

  val fpr_estimate : t -> float
  (** Current expected false-positive probability, [fill_ratio ^ hashes]. *)
end

module Cms : sig
  type t

  val create : ?width:int -> ?depth:int -> unit -> t
  (** Width defaults to 1024 counters per row, depth to 4 rows.
      Raises [Invalid_argument] on non-positive arguments. *)

  val add : t -> ?count:int -> 'a -> int
  (** Increments the element's counters by [count] (default 1) and
      returns the new estimate. *)

  val estimate : t -> 'a -> int
  (** Over-approximates the true count: never under the truth, over it
      by at most [e·total/width] with probability [1 - e^(-depth)]. *)

  val total : t -> int
  (** Sum of all increments. *)

  val width : t -> int
  val depth : t -> int
  val memory_bytes : t -> int
end
