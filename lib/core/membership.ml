(* Per-system membership view driven by piggy-backed liveness: any
   message drained from a peer counts as a heartbeat, peers hosted by
   this system are refreshed every round, and silence beyond the
   configured thresholds moves a name through alive -> suspect -> dead.
   The module is pure bookkeeping — the [System] round loop feeds it
   and acts on the transitions it reports. *)

type status = Alive | Suspect | Dead

let status_string = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

type config = {
  suspect_after : int;
  dead_after : int;
  probe_every : int;
}

(* Detection off: silence alone never demotes anyone.  Explicit death
   signals (Reliable give-up, eviction) still work — this keeps the
   long-lived [wdl serve] deployment safe by default, where a remote
   peer that has not started yet must not be declared dead. *)
let default_config =
  { suspect_after = max_int; dead_after = max_int; probe_every = 0 }

type entry = {
  mutable last_heard : int;
  mutable last_probed : int;
  mutable e_status : status;
  mutable registered : bool;
}

type t = {
  config : config;
  members : (string, entry) Hashtbl.t;
  mutable transitions : int;  (* monotone, for the metrics registry *)
}

let create ?(config = default_config) () =
  { config; members = Hashtbl.create 16; transitions = 0 }

let config t = t.config
let transitions t = t.transitions

let entry t ~round name =
  match Hashtbl.find_opt t.members name with
  | Some e -> e
  | None ->
    let e =
      { last_heard = round; last_probed = round; e_status = Alive;
        registered = false }
    in
    Hashtbl.add t.members name e;
    e

let track t ~round ?(registered = false) name =
  let e = entry t ~round name in
  if registered then e.registered <- true

let set_registered t name b =
  match Hashtbl.find_opt t.members name with
  | Some e -> e.registered <- b
  | None -> ()

let forget t name = Hashtbl.remove t.members name

let status t name =
  Option.map (fun e -> e.e_status) (Hashtbl.find_opt t.members name)

let view t =
  Hashtbl.fold (fun name e acc -> (name, e.e_status) :: acc) t.members []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let count t st =
  Hashtbl.fold
    (fun _ e acc -> if e.e_status = st then acc + 1 else acc)
    t.members 0

let transition t name e st =
  e.e_status <- st;
  t.transitions <- t.transitions + 1;
  (name, st)

(* A message (or registration) from [name] proves it alive; returns the
   transition when that revives a suspect or dead entry. *)
let heard t ~round name =
  let e = entry t ~round name in
  e.last_heard <- round;
  if e.e_status <> Alive then Some (transition t name e Alive) else None

(* An out-of-band death signal (reliable link give-up, explicit
   eviction).  Registered peers are hosted in-process and demonstrably
   alive, so a dead *link* to one only makes it suspect. *)
let mark_dead t ~round name =
  let e = entry t ~round name in
  match e.e_status with
  | Dead -> None
  | Suspect when e.registered -> None
  | Alive when e.registered -> Some (transition t name e Suspect)
  | Alive | Suspect -> Some (transition t name e Dead)

(* One round of the failure detector: refresh registered (in-process)
   peers, demote silent remote names past their thresholds, and pick
   the names due a heartbeat probe. *)
let tick t ~round =
  let changed = ref [] in
  let probes = ref [] in
  Hashtbl.iter
    (fun name e ->
      if e.registered then e.last_heard <- round
      else begin
        let silence = round - e.last_heard in
        (match e.e_status with
        | Dead -> ()
        | Alive when silence >= t.config.dead_after ->
          changed := transition t name e Dead :: !changed
        | Suspect when silence >= t.config.dead_after ->
          changed := transition t name e Dead :: !changed
        | Alive when silence >= t.config.suspect_after ->
          changed := transition t name e Suspect :: !changed
        | Alive | Suspect -> ());
        if
          t.config.probe_every > 0
          && e.e_status <> Dead
          && silence >= t.config.probe_every
          && round - e.last_probed >= t.config.probe_every
        then begin
          e.last_probed <- round;
          probes := name :: !probes
        end
      end)
    t.members;
  (List.rev !changed, List.rev !probes)
