(** Failure detection and membership: the per-system view of which
    peer names are believed [Alive], [Suspect] or [Dead].

    Liveness is piggy-backed on existing traffic — any message drained
    from a peer is a heartbeat, and peers hosted by the local system
    are refreshed every round — so detection costs nothing on the wire
    until [probe_every] asks for explicit empty-message probes.
    Silence beyond [suspect_after]/[dead_after] rounds demotes a name;
    out-of-band death signals ({!Wdl_net.Reliable.on_dead} via
    {!System.wire_reliable}, or an explicit {!System.evict_peer})
    force the transition immediately.

    This module is pure bookkeeping; {!System} drives it from the
    round loop, reacts to the transitions it reports (delegation
    retraction, dead-lettering, [sys_peers] sync, trace events) and
    exposes the view. *)

type status = Alive | Suspect | Dead

val status_string : status -> string
(** ["alive"], ["suspect"], ["dead"] — the rendering used by the
    [sys_peers] relation and [Peer_status] trace events. *)

type config = {
  suspect_after : int;
      (** rounds of silence before a remote name turns [Suspect] *)
  dead_after : int;
      (** rounds of silence before a remote name turns [Dead] —
          triggering eviction in {!System} *)
  probe_every : int;
      (** send a heartbeat probe to a remote name silent this many
          rounds; [0] disables probing *)
}

val default_config : config
(** Detection off ([max_int] thresholds, no probes): silence alone
    never demotes anyone, so a slow or late-starting remote peer is
    safe by default. Explicit death signals still transition. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config

val track : t -> round:int -> ?registered:bool -> string -> unit
(** Ensure a name is in the view (first sight counts as heard, so a
    fresh name gets a full grace period). [registered] marks it as
    hosted by this system: refreshed every {!tick}, never probed. *)

val set_registered : t -> string -> bool -> unit
val forget : t -> string -> unit
(** Drop a name from the view entirely. *)

val heard : t -> round:int -> string -> (string * status) option
(** Evidence of life; returns the transition if it revived a suspect
    or dead entry. *)

val mark_dead : t -> round:int -> string -> (string * status) option
(** Out-of-band death signal. A registered (in-process, demonstrably
    alive) peer is only demoted to [Suspect]; anything else goes
    [Dead]. Returns the transition, if any. *)

val tick : t -> round:int -> (string * status) list * string list
(** One detector round: refreshes registered peers, applies the
    silence thresholds, and returns [(transitions, names to probe)]. *)

val status : t -> string -> status option
val view : t -> (string * status) list
(** Sorted by name. *)

val count : t -> status -> int
val transitions : t -> int
(** Monotone transition counter (for the metrics registry). *)
