open Wdl_syntax

type t = {
  src : string;
  dst : string;
  stage : int;
  facts : Fact.t list option;
  installs : Rule.t list;
  retracts : Rule.t list;
  fact_origins : string list;
  install_origins : string list;
}

let make ~src ~dst ~stage ?(facts = None) ?(installs = []) ?(retracts = [])
    ?(fact_origins = []) ?(install_origins = []) () =
  { src; dst; stage; facts; installs; retracts; fact_origins; install_origins }

let is_empty m = m.facts = None && m.installs = [] && m.retracts = []

(* Wire size of a fact: the length of its one-line rendering, computed
   arithmetically. The sizer runs on every transport send, and
   [Format.asprintf "%a" Fact.pp] there — a scratch formatter plus a
   rendered string per fact per send — dominated message-heavy stage
   profiles. The arithmetic mirrors [Fact.pp]/[Value.pp] exactly:
   bare names when [Term.is_ident], quoted-and-escaped otherwise,
   ", " between arguments. *)
let escaped_len s =
  let n = ref 0 in
  String.iter
    (fun c ->
      n := !n + (match c with '"' | '\\' | '\n' | '\t' | '\r' -> 2 | _ -> 1))
    s;
  !n

let name_len s = if Term.is_ident s then String.length s else 2 + escaped_len s

let int_len x =
  (* [n / 10] truncates toward zero, so the loop also terminates on
     [min_int], whose negation overflows. *)
  let rec go n acc = if n = 0 then acc else go (n / 10) (acc + 1) in
  if x = 0 then 1 else (if x < 0 then 1 else 0) + go x 0

let value_len = function
  | Value.Int x -> int_len x
  | Value.Float _ as v -> String.length (Value.to_string v)
  | Value.String s -> 2 + escaped_len s
  | Value.Bool b -> if b then 4 else 5

let fact_size f =
  let args =
    List.fold_left (fun acc v -> acc + 2 + value_len v) (-2) f.Fact.args
  in
  name_len f.Fact.rel + 1 + name_len f.Fact.peer + 1 + max 0 args + 1

let size m =
  (* One-line rendering, like the wire: [Format.asprintf] at its
     default margin wraps long rules, and the inserted newline+indent
     made the sizer overcount what the transport actually frames. *)
  let rule_size r = String.length (Pp_util.one_line Rule.pp r) in
  let facts = match m.facts with None -> 0 | Some fs -> List.fold_left (fun a f -> a + fact_size f) 0 fs in
  facts
  + List.fold_left (fun a r -> a + rule_size r) 0 m.installs
  + List.fold_left (fun a r -> a + rule_size r) 0 m.retracts
  + String.length m.src + String.length m.dst + 8

let pp ppf m =
  Format.fprintf ppf "@[<v 2>%s -> %s (stage %d):" m.src m.dst m.stage;
  (match m.facts with
  | None -> ()
  | Some fs ->
    List.iter (fun f -> Format.fprintf ppf "@ fact %a" Fact.pp f) fs);
  List.iter (fun r -> Format.fprintf ppf "@ install %a" Rule.pp r) m.installs;
  List.iter (fun r -> Format.fprintf ppf "@ retract %a" Rule.pp r) m.retracts;
  Format.fprintf ppf "@]"
