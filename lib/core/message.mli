(** Inter-peer messages: the third step of a peer's stage sends facts
    (updates) and rules (delegations) to other peers (§2).

    One message per (source, destination, stage) carries:

    - [facts]: the {e complete} batch of facts currently derived by the
      source for the destination, or [None] when the batch is unchanged
      since the last one sent (the destination then keeps its cached
      copy). The destination persists facts aimed at its extensional
      relations and treats facts aimed at intensional relations as
      valid only while the source keeps them in its batch — the PODS'11
      "one stage at the receiver" semantics made quiescence-friendly.
    - [installs]/[retracts]: the delegation diff — residual rules that
      appeared/disappeared at the source since its previous stage.
    - [fact_origins]/[install_origins]: diagnostic metadata — ids of
      the source's rules whose evaluation produced the fact batch
      (resp. one id per install, index-aligned). They feed the
      knowledge-flow oracle ({!Wdl_analysis.Flow}) and cost nothing
      when empty: the wire encodes them only when present. *)

open Wdl_syntax

type t = {
  src : string;
  dst : string;
  stage : int;  (** source's stage counter when emitted *)
  facts : Fact.t list option;
  installs : Rule.t list;
  retracts : Rule.t list;
  fact_origins : string list;
      (** sorted ids of rules contributing to [facts] *)
  install_origins : string list;
      (** index-aligned with [installs]; [[]] when unknown *)
}

val make :
  src:string ->
  dst:string ->
  stage:int ->
  ?facts:Fact.t list option ->
  ?installs:Rule.t list ->
  ?retracts:Rule.t list ->
  ?fact_origins:string list ->
  ?install_origins:string list ->
  unit ->
  t

val is_empty : t -> bool

val fact_size : Fact.t -> int
(** Exact byte length of the fact's one-line wire rendering
    ([String.length (Fact.to_string f)]), computed arithmetically —
    no formatter, no intermediate string. The equality is enforced by
    a QCheck property over arbitrary facts. *)

val size : t -> int
(** Estimated wire size in bytes (used by transport statistics):
    one-line renderings of facts and rules plus a small fixed header
    overhead. Origin metadata is deliberately excluded — it is
    diagnostic, optional on the wire, and must not perturb
    backpressure accounting. *)

val pp : Format.formatter -> t -> unit
