open Wdl_syntax
open Wdl_store
module Builtin = Wdl_builtin.Builtin

module Deleg_tbl = Hashtbl.Make (struct
  type t = string * Rule.t

  let equal (s1, r1) (s2, r2) = String.equal s1 s2 && Rule.equal r1 r2
  let hash x = Hashtbl.hash_param 64 128 x
end)

module Fact_tbl = Hashtbl.Make (struct
  type t = Fact.t

  let equal = Fact.equal
  let hash = Fact.hash
end)

module Sset = Set.Make (String)

type shed_policy = Drop_newest | Drop_oldest

let shed_policy_string = function
  | Drop_newest -> "drop-newest"
  | Drop_oldest -> "drop-oldest"

type t = {
  name : string;
  db : Database.t;
  acl : Acl.t;
  authz : Authz.t;
  mutable enforce_authz : bool;
  trace : Trace.t;
  strategy : Wdl_eval.Fixpoint.strategy;
  domains : int;  (* fixpoint worker domains; 1 = sequential ablation *)
  diff_batches : bool;
  mutable track_provenance : bool;
  prov : Wdl_eval.Fixpoint.derivation Fact_tbl.t;
  mutable journal : Journal.t option;
  (* monotone counters *)
  mutable n_stages : int;
  mutable n_iterations : int;
  mutable n_derivations : int;
  mutable n_sent : int;
  mutable n_received : int;
  mutable n_installed : int;
  mutable n_retracted : int;
  mutable n_rejected : int;
  mutable n_errors : int;
  mutable n_analysis_warnings : int;
  inbox : Message.t Queue.t;
  inbox_capacity : int;
  shed : shed_policy;
  mutable n_shed : int;
  delegated : int Deleg_tbl.t;  (* (origin, rule) -> installation order *)
  mutable delegated_seq : int;
  mutable own_rules : Rule.t list;  (* reverse addition order *)
  mutable induced_pending : Fact.t list;
  remote_cache : (string, Fact.t list) Hashtbl.t;  (* src -> last batch *)
  last_batches : (string, Fact.t list) Hashtbl.t;  (* dst -> sorted batch *)
  batch_origins : (string, Sset.t) Hashtbl.t;
      (* dst -> ids of the rules whose evaluation fed that batch *)
  deleg_origins : string Deleg_tbl.t;
      (* (origin, rule) -> the origin's id for the rule that shipped
         the delegation, taken from the install's origin metadata *)
  mutable last_delegations : unit Deleg_tbl.t;  (* (target, rule) sent *)
  mutable stage_no : int;
  mutable dirty : bool;
  mutable last_errors : Wdl_eval.Runtime_error.t list;
  (* Incremental-evaluation state.  [rules_version] counts every change
     that can affect stratification or the compiled plans: rule
     added/removed, delegation installed/retracted, relation declared.
     [program] caches the compiled program for the version it was built
     at; a stale version forces recompilation. *)
  incremental : bool;
  mutable rules_version : int;
  mutable program : Wdl_eval.Program.t option;
  mutable n_cache_hits : int;
  mutable n_fastpath : int;
  (* Cost-based join planning.  [replan] (default true) lets the
     compiler reorder rule bodies by live relation cardinalities; the
     cached program stays valid while every relation's cardinality
     stays within the power-of-two band it was compiled against
     ([program_bands]).  Crossing a band re-runs the planner even
     though the rule set is unchanged — counted by [n_replans]. *)
  replan : bool;
  mutable program_bands : (string * int) array;
  mutable n_replans : int;
  (* Delta staging.  [stage_adds = Some facts] means every base-data
     change since the last completed stage is exactly those fresh
     insertions — then, for a monotone rule set with purely additive
     inbox batches, the stage keeps the previous intensional state and
     seeds semi-naive with just the delta.  Any deletion, rule change,
     cache eviction or restore sets [None], forcing the next stage to
     recompute from scratch.  [mono]/[mono_version] cache "is the rule
     set negation- and aggregate-free" per rule-set version. *)
  mutable stage_adds : Fact.t list option;
  mutable n_delta_stages : int;
  mutable mono : bool;
  mutable mono_version : int;
  eval_handles : Wdl_eval.Fixpoint.handles;
  (* Builtin relation modules (time, windows, TTL, sketches): private
     state keyed by relation name, ticked at every stage boundary.
     [clock] feeds wall-clock horizons and the time module; tests and
     benchmarks inject a deterministic one. *)
  builtins : Builtin.Registry.t;
  mutable clock : unit -> float;
  mutable n_builtin_ticks : int;
  mutable n_builtin_expired : int;
}

(* Re-export the monotone counters through the metrics registry as
   per-peer callback series, sampled at scrape time.  A later peer
   created with the same name replaces the callbacks. *)
let register_metrics t =
  let labels = [ ("peer", t.name) ] in
  let field name help read =
    Wdl_obs.Obs.on_collect ~help ~labels ~kind:`Counter name (fun () ->
        float_of_int (read ()))
  in
  field "wdl_peer_stages_total" "Stages run by this peer" (fun () ->
      t.n_stages);
  field "wdl_peer_iterations_total" "Fixpoint iterations across all stages"
    (fun () -> t.n_iterations);
  field "wdl_peer_derivations_total" "Head derivations across all stages"
    (fun () -> t.n_derivations);
  field "wdl_peer_messages_sent_total" "Messages this peer sent" (fun () ->
      t.n_sent);
  field "wdl_peer_messages_received_total" "Messages this peer consumed"
    (fun () -> t.n_received);
  field "wdl_peer_delegations_installed_total" "Delegations installed"
    (fun () -> t.n_installed);
  field "wdl_peer_delegations_retracted_total" "Delegations retracted"
    (fun () -> t.n_retracted);
  field "wdl_peer_delegations_rejected_total" "Delegations rejected"
    (fun () -> t.n_rejected);
  field "wdl_peer_runtime_errors_total" "Runtime errors reported by stages"
    (fun () -> t.n_errors);
  field "wdl_analysis_warnings_total"
    "Static-analysis warnings on rules accepted by this peer" (fun () ->
      t.n_analysis_warnings);
  field "wdl_peer_trace_events_total"
    "Trace events recorded (including ones beyond the ring's capacity)"
    (fun () -> Trace.count t.trace);
  field "wdl_eval_program_cache_hits_total"
    "Stages served by the cached compiled program (no restratification)"
    (fun () -> t.n_cache_hits);
  field "wdl_eval_stage_fastpath_total"
    "Quiescent stages that skipped the fixpoint entirely" (fun () ->
      t.n_fastpath);
  field "wdl_eval_replans_total"
    "Program recompilations forced by a relation crossing a \
     cardinality band (rule set unchanged)" (fun () -> t.n_replans);
  field "wdl_eval_delta_stages_total"
    "Stages evaluated by delta staging (retained fixpoint + seeded \
     semi-naive pass) instead of full recomputation" (fun () ->
      t.n_delta_stages);
  Wdl_obs.Obs.on_collect
    ~help:"Distinct values interned by this peer's store pool" ~labels
    ~kind:`Gauge "wdl_store_interned_values" (fun () ->
      float_of_int (Database.interned_count t.db));
  Wdl_obs.Obs.on_collect
    ~help:"Approximate heap footprint of this peer's tuple store" ~labels
    ~kind:`Gauge "wdl_store_memory_bytes" (fun () ->
      float_of_int (Database.memory_bytes t.db));
  field "wdl_sys_inbox_shed_total"
    "Messages dropped because this peer's bounded inbox was full"
    (fun () -> t.n_shed);
  Wdl_obs.Obs.on_collect ~help:"Messages waiting in this peer's inbox"
    ~labels ~kind:`Gauge "wdl_sys_inbox_depth" (fun () ->
      float_of_int (Queue.length t.inbox));
  let builtin_field ~kind name help read =
    Wdl_obs.Obs.on_collect ~help ~labels ~kind name (fun () ->
        float_of_int (read (Builtin.Registry.totals t.builtins)))
  in
  field "wdl_builtin_ticks_total"
    "Stage-boundary builtin-module ticks that changed a materialization"
    (fun () -> t.n_builtin_ticks);
  field "wdl_builtin_expired_total"
    "Tuples auto-retracted by builtin-module expiry (windows, TTL)"
    (fun () -> t.n_builtin_expired);
  builtin_field ~kind:`Counter "wdl_builtin_writes_total"
    "Writes accepted by this peer's builtin relation modules"
    (fun (s : Builtin.stats) -> s.Builtin.writes);
  builtin_field ~kind:`Counter "wdl_builtin_dropped_total"
    "Writes dropped as duplicates by sketch modules (bloom)"
    (fun s -> s.Builtin.dropped);
  builtin_field ~kind:`Gauge "wdl_builtin_entries"
    "Live private-state entries across this peer's builtin modules"
    (fun s -> s.Builtin.entries);
  builtin_field ~kind:`Gauge "wdl_builtin_memory_bytes"
    "Approximate private-state footprint of this peer's builtin modules"
    (fun s -> s.Builtin.memory_bytes)

let create ?(strategy = Wdl_eval.Fixpoint.Seminaive) ?policy ?indexing
    ?trace_capacity ?(diff_batches = true) ?(incremental = true)
    ?(replan = true) ?(inbox_capacity = max_int) ?(shed = Drop_newest)
    ?domains name =
  if name = "" then invalid_arg "Peer.create: empty name";
  if inbox_capacity < 1 then
    invalid_arg "Peer.create: inbox_capacity must be at least 1";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Peer.create: domains must be at least 1"
    | None -> Wdl_eval.Parallel.default_domains ()
  in
  let t = {
    name;
    db = Database.create ?indexing ();
    acl = Acl.create ?policy ();
    authz = Authz.create ();
    enforce_authz = false;
    trace = Trace.create ?capacity:trace_capacity ();
    strategy;
    domains;
    diff_batches;
    track_provenance = false;
    prov = Fact_tbl.create 64;
    journal = None;
    n_stages = 0;
    n_iterations = 0;
    n_derivations = 0;
    n_sent = 0;
    n_received = 0;
    n_installed = 0;
    n_retracted = 0;
    n_rejected = 0;
    n_errors = 0;
    n_analysis_warnings = 0;
    inbox = Queue.create ();
    inbox_capacity;
    shed;
    n_shed = 0;
    delegated = Deleg_tbl.create 16;
    delegated_seq = 0;
    own_rules = [];
    induced_pending = [];
    remote_cache = Hashtbl.create 8;
    last_batches = Hashtbl.create 8;
    batch_origins = Hashtbl.create 8;
    deleg_origins = Deleg_tbl.create 16;
    last_delegations = Deleg_tbl.create 16;
    stage_no = 0;
    dirty = false;
    last_errors = [];
    incremental;
    rules_version = 0;
    program = None;
    n_cache_hits = 0;
    n_fastpath = 0;
    replan;
    program_bands = [||];
    n_replans = 0;
    (* The first stage of any peer (fresh or restored) is a full one. *)
    stage_adds = None;
    n_delta_stages = 0;
    mono = false;
    mono_version = -1;
    eval_handles = Wdl_eval.Fixpoint.handles ~self:name;
    builtins = Builtin.Registry.create ();
    clock = (fun () -> Wdl_obs.Obs.now_us () /. 1e6);
    n_builtin_ticks = 0;
    n_builtin_expired = 0;
  }
  in
  register_metrics t;
  t

let name t = t.name
let database t = t.db

(* Any change that can alter stratification or the compiled plans must
   go through here so the cached program is recompiled at next stage.
   Rule-set changes also end the current additive run: a new (or
   retracted) rule can derive facts no seeded pass would find. *)
let invalidate_program t =
  t.rules_version <- t.rules_version + 1;
  t.stage_adds <- None
let set_journal t j = t.journal <- j
let journal t = t.journal
let journal_entry t e = Option.iter (fun j -> Journal.append j e) t.journal

(* Every trace event also feeds the monotone counters. *)
let record_event t e =
  (match e with
  | Trace.Message_sent _ -> t.n_sent <- t.n_sent + 1
  | Trace.Message_received _ -> t.n_received <- t.n_received + 1
  | Trace.Delegation_installed _ -> t.n_installed <- t.n_installed + 1
  | Trace.Delegation_retracted _ -> t.n_retracted <- t.n_retracted + 1
  | Trace.Delegation_rejected _ -> t.n_rejected <- t.n_rejected + 1
  | Trace.Stage_end { derivations; iterations; _ } ->
    t.n_stages <- t.n_stages + 1;
    t.n_derivations <- t.n_derivations + derivations;
    t.n_iterations <- t.n_iterations + iterations
  | Trace.Runtime_errors { errors; _ } ->
    t.n_errors <- t.n_errors + List.length errors
  | Trace.Analysis_warning _ ->
    t.n_analysis_warnings <- t.n_analysis_warnings + 1
  | Trace.Builtin_tick { expired; _ } ->
    t.n_builtin_ticks <- t.n_builtin_ticks + 1;
    t.n_builtin_expired <- t.n_builtin_expired + expired
  | Trace.Stage_start _ | Trace.Fact_inserted _ | Trace.Fact_deleted _
  | Trace.Delegation_pending _ | Trace.Rule_added _ | Trace.Rule_removed _
  | Trace.Link_dead _ | Trace.Peer_status _ | Trace.Inbox_shed _
  | Trace.Dead_lettered _ ->
    ());
  Trace.record t.trace e

let acl t = t.acl
let authz t = t.authz
let builtins t = t.builtins
let set_clock t f = t.clock <- f
let set_enforce_authz t b = t.enforce_authz <- b
let enforcing_authz t = t.enforce_authz
let trace t = t.trace
let stage_number t = t.stage_no
let rules t = List.rev t.own_rules

let delegated_rules t =
  Deleg_tbl.fold (fun k seq acc -> (seq, k) :: acc) t.delegated []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let all_rules t = rules t @ List.map snd (delegated_rules t)

(* Diagnostic rule ids. Own rules are ["name#k"] by current program
   position, which matches {!Wdl_analysis.Flow.build}'s file-order ids
   for a peer loaded from one program. A delegated rule keeps the id
   of the origin rule whose evaluation shipped it (sent alongside the
   install); origin ids are not persisted, so a restored peer falls
   back to ["src#?"]. *)
let deleg_origin_id t (src, rule) =
  match Deleg_tbl.find_opt t.deleg_origins (src, rule) with
  | Some id -> id
  | None -> src ^ "#?"

let rule_id t rule =
  let rec own k = function
    | [] -> None
    | r :: rest ->
      if Rule.equal r rule then Some (Printf.sprintf "%s#%d" t.name k)
      else own (k + 1) rest
  in
  match own 1 (rules t) with
  | Some id -> Some id
  | None ->
    List.find_map
      (fun (src, r) ->
        if Rule.equal r rule then Some (deleg_origin_id t (src, r)) else None)
      (delegated_rules t)

let flow t =
  Wdl_analysis.Flow.of_labeled ~self:t.name
    (List.mapi
       (fun i r -> (Printf.sprintf "%s#%d" t.name (i + 1), r))
       (rules t)
    @ List.map
        (fun (src, r) -> (deleg_origin_id t (src, r), r))
        (delegated_rules t))

let intensional t rel =
  match Database.kind t.db rel with
  | Some Decl.Intensional -> true
  | Some Decl.Extensional | None -> false

(* A candidate rule set must stratify; rejecting at install time keeps
   every stage's fixpoint well-defined. *)
let stratifies t candidate =
  match
    Wdl_eval.Stratify.compute ~self:t.name ~intensional:(intensional t)
      (all_rules t @ [ candidate ])
  with
  | Ok _ -> Ok ()
  | Error e -> Error (Format.asprintf "%a" Wdl_eval.Stratify.pp_error e)

(* A rule head naming a read-only builtin relation (time) would fail
   on every derivation; reject it at install time instead. *)
let builtin_head_error t (rule : Rule.t) =
  let head = rule.Rule.head in
  match head.Atom.rel, head.Atom.peer with
  | Term.Const (Value.String rel), Term.Const (Value.String peer)
    when peer = t.name -> (
    match Builtin.Registry.find t.builtins rel with
    | Some inst when not inst.Builtin.writable ->
      Some
        (Printf.sprintf
           "rule head writes the read-only builtin relation %s (builtin %s)"
           rel inst.Builtin.bkind)
    | Some _ | None -> None)
  | _ -> None

let aggregate_local_error t rule =
  if Rule.is_aggregate rule && not (Wdl_eval.Fixpoint.statically_local ~self:t.name rule)
  then
    Some
      "aggregate rules must be entirely local: every body atom's peer must \
       name this peer"
  else None

(* Accepted rules still get a static look: delegation hygiene and
   redundancy warnings land in the trace (and the
   wdl_analysis_warnings_total counter), never block installation. *)
let analysis_warnings t rule =
  let kind_of rel peer =
    if peer = t.name then Database.kind t.db rel else None
  in
  Wdl_analysis.Analysis.added_rule_warnings ~self:t.name ~kind_of
    ~existing:(all_rules t) rule

let add_rule t rule =
  match Safety.check_rule rule with
  | Error errs -> Error (Safety.errors_to_string errs)
  | Ok () -> (
    match aggregate_local_error t rule with
    | Some msg -> Error msg
    | None ->
    match builtin_head_error t rule with
    | Some msg -> Error msg
    | None ->
    match stratifies t rule with
    | Error msg -> Error msg
    | Ok () ->
      let warnings = analysis_warnings t rule in
      t.own_rules <- rule :: t.own_rules;
      t.dirty <- true;
      invalidate_program t;
      record_event t (Trace.Rule_added { peer = t.name; rule });
      List.iter
        (fun (d : Wdl_analysis.Diagnostic.t) ->
          record_event t
            (Trace.Analysis_warning
               { peer = t.name; code = d.code; message = d.message }))
        warnings;
      Ok ())

let remove_rule t rule =
  let had = List.exists (Rule.equal rule) t.own_rules in
  if had then begin
    t.own_rules <- List.filter (fun r -> not (Rule.equal r rule)) t.own_rules;
    t.dirty <- true;
    invalidate_program t;
    record_event t (Trace.Rule_removed { peer = t.name; rule })
  end;
  had

(* Guarded write path for builtin relations. Deliberately not
   journaled: module state is time-dependent and restarts rebuild it
   empty (expiry stamps and sketch bits cannot be replayed). The stage
   stamp is the stage the write becomes visible at — the next one. *)
let builtin_write t (inst : Builtin.instance) op (fact : Fact.t) =
  let tuple = Tuple.of_list fact.Fact.args in
  match
    inst.Builtin.write ~stage:(t.stage_no + 1) ~now:(t.clock ()) op tuple
  with
  | Error e -> Error e
  | Ok changed ->
    (* topk and cms defer materialization to the stage's flush, so any
       accepted write is work for them; other kinds report the change
       directly (a ttl stamp refresh is not work — expiry is handled
       by the tick, which runs before the quiescence check). *)
    (match inst.Builtin.bkind with
    | "topk" | "cms" -> t.dirty <- true
    | _ -> if changed then t.dirty <- true);
    if changed then
      record_event t
        (match op with
        | Builtin.Insert -> Trace.Fact_inserted { peer = t.name; fact }
        | Builtin.Delete -> Trace.Fact_deleted { peer = t.name; fact });
    Ok ()

let insert t (fact : Fact.t) =
  if fact.Fact.peer <> t.name then
    Error
      (Printf.sprintf "fact %s targets peer %s, not this peer (%s)"
         (Format.asprintf "%a" Fact.pp fact)
         fact.Fact.peer t.name)
  else
    match Builtin.Registry.find t.builtins fact.Fact.rel with
    | Some inst -> builtin_write t inst Builtin.Insert fact
    | None ->
  if intensional t fact.Fact.rel then
    Error
      (Printf.sprintf "relation %s is intensional (a view); it cannot be updated"
         fact.Fact.rel)
  else
    let tuple = Tuple.of_list fact.Fact.args in
    match Database.insert t.db ~rel:fact.Fact.rel tuple with
    | Error e -> Error (Format.asprintf "%a" Database.pp_error e)
    | Ok fresh ->
      if fresh then begin
        t.dirty <- true;
        (match t.stage_adds with
        | Some adds -> t.stage_adds <- Some (fact :: adds)
        | None -> ());
        journal_entry t (Journal.Insert fact);
        record_event t (Trace.Fact_inserted { peer = t.name; fact })
      end;
      Ok ()

let delete t (fact : Fact.t) =
  if fact.Fact.peer <> t.name then
    Error
      (Printf.sprintf "fact targets peer %s, not this peer (%s)" fact.Fact.peer
         t.name)
  else
    match Builtin.Registry.find t.builtins fact.Fact.rel with
    | Some inst -> builtin_write t inst Builtin.Delete fact
    | None ->
  if intensional t fact.Fact.rel then
    Error
      (Printf.sprintf "relation %s is intensional (a view); it cannot be updated"
         fact.Fact.rel)
  else
    let tuple = Tuple.of_list fact.Fact.args in
    match Database.delete t.db ~rel:fact.Fact.rel tuple with
    | Error e -> Error (Format.asprintf "%a" Database.pp_error e)
    | Ok removed ->
      if removed then begin
        t.dirty <- true;
        t.stage_adds <- None;  (* deletions are not additive *)
        journal_entry t (Journal.Delete fact);
        record_event t (Trace.Fact_deleted { peer = t.name; fact })
      end;
      Ok ()

let load_program t (program : Program.t) =
  let step i stmt =
    let where msg =
      Error (Format.asprintf "statement %d (%a): %s" (i + 1) Program.pp_statement stmt msg)
    in
    match stmt with
    | Program.Decl d ->
      if d.Decl.peer <> t.name then
        where (Printf.sprintf "declaration targets peer %s" d.Decl.peer)
      else if
        (* A declaration arriving after rules can flip a relation to
           intensional and silently close a cycle through negation the
           rules were checked without. Re-check stratification against
           the candidate kind map before committing the declaration. *)
        d.Decl.kind = Decl.Intensional && not (intensional t d.Decl.rel)
        &&
        match
          Wdl_eval.Stratify.compute ~self:t.name
            ~intensional:(fun rel ->
              rel = d.Decl.rel || intensional t rel)
            (all_rules t)
        with
        | Ok _ -> false
        | Error _ -> true
      then
        where
          (Format.asprintf "declaring %s intensional would break \
                            stratification of the installed rules"
             d.Decl.rel)
      else (
        match Builtin.validate d with
        | Error msg -> where msg
        | Ok () ->
          let existed = Database.find t.db d.Decl.rel <> None in
          (match Database.declare t.db d with
          | Ok info -> (
            (* A declaration can turn a name intensional, which changes
               stratification for rules mentioning it. *)
            invalidate_program t;
            match d.Decl.builtin with
            | None ->
              if Builtin.Registry.mem t.builtins d.Decl.rel then
                where
                  (Printf.sprintf
                     "%s is a builtin relation; redeclare it with its \
                      builtin form"
                     d.Decl.rel)
              else begin
                journal_entry t (Journal.Declare d);
                Ok ()
              end
            | Some _ -> (
              match Builtin.Registry.find t.builtins d.Decl.rel with
              | Some inst when Decl.equal inst.Builtin.decl d ->
                (* Idempotent re-declaration keeps the module state. *)
                Ok ()
              | Some inst ->
                where
                  (Format.asprintf
                     "conflicts with the installed builtin declaration \
                      %a" Decl.pp inst.Builtin.decl)
              | None ->
                if existed then
                  where
                    (Printf.sprintf
                       "%s already exists as a plain relation; builtin \
                        configuration must come with its first \
                        declaration"
                       d.Decl.rel)
                else (
                  match
                    Builtin.Registry.register t.builtins ~decl:d
                      ~data:info.Database.data
                  with
                  | Error msg -> where msg
                  | Ok _ ->
                    journal_entry t (Journal.Declare d);
                    Ok ())))
          | Error e -> where (Format.asprintf "%a" Database.pp_error e)))
    | Program.Fact f -> (
      match insert t f with Ok () -> Ok () | Error msg -> where msg)
    | Program.Rule r -> (
      match add_rule t r with Ok () -> Ok () | Error msg -> where msg)
  in
  let rec go i = function
    | [] -> Ok ()
    | stmt :: rest -> (
      match step i stmt with Ok () -> go (i + 1) rest | Error _ as e -> e)
  in
  go 0 program

let load_string t src =
  match Parser.program src with
  | Error msg -> Error msg
  | Ok program -> load_program t program

let query t rel =
  match Database.find t.db rel with
  | None -> []
  | Some info ->
    List.map
      (fun tuple -> Fact.make ~rel ~peer:t.name (Tuple.to_list tuple))
      (Relation.to_sorted_list info.Database.data)

let relation_names t =
  List.map (fun (i : Database.info) -> i.Database.name) (Database.relations t.db)

type answer = {
  columns : string list;
  rows : Value.t list list;
  requires_delegation : (string * Rule.t) list;
  errors : Wdl_eval.Runtime_error.t list;
}

let ask t src =
  match Parser.rule src with
  | Error msg -> Error msg
  | Ok rule -> (
    match Safety.check_rule rule with
    | Error errs -> Error (Safety.errors_to_string errs)
    | Ok () ->
      let columns =
        List.mapi
          (fun i term ->
            match List.assoc_opt i rule.Rule.aggs with
            | Some spec -> Format.asprintf "%a" Wdl_syntax.Aggregate.pp spec
            | None -> Format.asprintf "%a" Term.pp term)
          rule.Rule.head.Atom.args
      in
      let db = Database.copy t.db in
      (* A result relation name no program can clash with. *)
      let rec fresh_name i =
        let name = Printf.sprintf "query result #%d" i in
        if Database.find db name = None then name else fresh_name (i + 1)
      in
      let qrel = fresh_name 0 in
      (match
         Database.declare db
           (Decl.make ~kind:Decl.Intensional ~rel:qrel ~peer:t.name
              (List.map (Printf.sprintf "c%d")
                 (List.init (List.length columns) Fun.id)))
       with
      | Ok _ -> ()
      | Error _ -> assert false);
      let qrule =
        Rule.make_agg ~aggs:rule.Rule.aggs
          ~head:(Atom.app qrel t.name rule.Rule.head.Atom.args)
          ~body:rule.Rule.body
      in
      match
        Wdl_eval.Fixpoint.run ~strategy:t.strategy ~self:t.name db
          (all_rules t @ [ qrule ])
      with
      | Error e -> Error (Format.asprintf "%a" Wdl_eval.Stratify.pp_error e)
      | Ok result ->
        let rows =
          match Database.find db qrel with
          | None -> []
          | Some info ->
            List.map Tuple.to_list
              (Relation.to_sorted_list info.Database.data)
        in
        Ok
          {
            columns;
            rows;
            requires_delegation = result.Wdl_eval.Fixpoint.suspensions;
            errors = result.Wdl_eval.Fixpoint.errors;
          })

(* {1 Delegation control} *)

let authz_allows t ~src rule =
  (not t.enforce_authz)
  ||
  match
    Authz.check_delegation t.authz ~self:t.name ~rules:(all_rules t)
      ~intensional:(intensional t) ~reader:src rule
  with
  | Ok () -> true
  | Error rel ->
    record_event t
      (Trace.Delegation_rejected
         {
           peer = t.name;
           src;
           rule;
           reason = Printf.sprintf "%s may not read %s" src rel;
         });
    false

let install_delegation t ~src rule =
  if Deleg_tbl.mem t.delegated (src, rule) then false
  else if not (authz_allows t ~src rule) then false
  else
    match aggregate_local_error t rule with
    | Some reason ->
      record_event t
        (Trace.Delegation_rejected { peer = t.name; src; rule; reason });
      false
    | None ->
    match builtin_head_error t rule with
    | Some reason ->
      record_event t
        (Trace.Delegation_rejected { peer = t.name; src; rule; reason });
      false
    | None ->
    match stratifies t rule with
    | Error reason ->
      record_event t
        (Trace.Delegation_rejected { peer = t.name; src; rule; reason });
      false
    | Ok () ->
      t.delegated_seq <- t.delegated_seq + 1;
      Deleg_tbl.replace t.delegated (src, rule) t.delegated_seq;
      t.dirty <- true;
      invalidate_program t;
      record_event t (Trace.Delegation_installed { peer = t.name; src; rule });
      true

(* {1 Peer lifecycle}

   [forget_origin] is the receiver-side half of a peer's death: drop
   everything the dead peer pushed here — installed delegations,
   pending-approval entries, and its cached per-stage batch (whose
   facts were only live while the source maintained them).
   Extensional facts it sent are genuine updates and persist.

   [forget_destination] is the sender-side half: drop the diff
   protocol's memory of what was sent to a name, so the next stage
   re-sends current state from scratch — required both for name reuse
   and for reconciling with a peer that rejoined empty-handed.

   [reset_session] is [forget_destination] towards everyone: the
   rejoining peer itself calls this so its own delegations and batches
   are re-announced to a world that may have evicted it. *)

let forget_origin t ~src =
  let doomed =
    Deleg_tbl.fold
      (fun (s, r) _ acc -> if s = src then (s, r) :: acc else acc)
      t.delegated []
  in
  List.iter
    (fun (s, r) ->
      Deleg_tbl.remove t.delegated (s, r);
      record_event t
        (Trace.Delegation_retracted { peer = t.name; src = s; rule = r }))
    doomed;
  List.iter
    (fun (s, r) ->
      if s = src then ignore (Acl.retract_pending t.acl ~src:s r))
    (Acl.pending t.acl);
  Deleg_tbl.fold
    (fun (s, r) _ acc -> if s = src then (s, r) :: acc else acc)
    t.deleg_origins []
  |> List.iter (Deleg_tbl.remove t.deleg_origins);
  let had_cache = Hashtbl.mem t.remote_cache src in
  Hashtbl.remove t.remote_cache src;
  if doomed <> [] then invalidate_program t;
  if doomed <> [] || had_cache then begin
    t.dirty <- true;
    (* Evicting a cache removes the intensional facts it carried. *)
    t.stage_adds <- None
  end;
  List.length doomed

let forget_destination t ~dst =
  let had_batch = Hashtbl.mem t.last_batches dst in
  Hashtbl.remove t.last_batches dst;
  Hashtbl.remove t.batch_origins dst;
  let sent =
    Deleg_tbl.fold
      (fun (d, r) () acc -> if d = dst then (d, r) :: acc else acc)
      t.last_delegations []
  in
  List.iter (Deleg_tbl.remove t.last_delegations) sent;
  if had_batch || sent <> [] then begin
    t.dirty <- true;
    (* A delta stage can only extend the last sent batch; with that
       memory dropped, the next stage must rebuild it from scratch. *)
    t.stage_adds <- None
  end

let reset_session t =
  Hashtbl.reset t.last_batches;
  Hashtbl.reset t.batch_origins;
  t.last_delegations <- Deleg_tbl.create 16;
  t.dirty <- true;
  t.stage_adds <- None

(* {1 Why-provenance} *)

type explanation =
  | Base
  | Derived of Wdl_eval.Fixpoint.derivation
  | Received of string list
  | Unknown

(* Toggling provenance marks the peer dirty: the next stage must run
   the fixpoint for real to (re)populate or drop the derivation table,
   rather than taking the quiescence fast path. *)
let set_track_provenance t b =
  if b <> t.track_provenance then t.dirty <- true;
  t.track_provenance <- b
let tracking_provenance t = t.track_provenance

let explain t (fact : Fact.t) =
  if fact.Fact.peer <> t.name then Unknown
  else
    match Fact_tbl.find_opt t.prov fact with
    | Some d -> Derived d
    | None ->
      let stored =
        (not (intensional t fact.Fact.rel))
        && Database.mem t.db ~rel:fact.Fact.rel (Tuple.of_list fact.Fact.args)
      in
      if stored then Base
      else
        let sources =
          Hashtbl.fold
            (fun src batch acc ->
              if List.exists (Fact.equal fact) batch then src :: acc else acc)
            t.remote_cache []
          |> List.sort String.compare
        in
        if sources <> [] then Received sources else Unknown

let explain_to_string ?(max_depth = 8) t fact =
  let buf = Buffer.create 256 in
  let rec go depth visited fact =
    let indent = String.make (depth * 2) ' ' in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (indent ^ s ^ "\n")) fmt in
    let fact_s = Format.asprintf "%a" Fact.pp fact in
    if List.exists (Fact.equal fact) visited then line "%s [cycle]" fact_s
    else if depth > max_depth then line "%s [...]" fact_s
    else
      match explain t fact with
      | Base -> line "%s [stored]" fact_s
      | Unknown -> line "%s [unknown]" fact_s
      | Received sources ->
        line "%s [received from %s]" fact_s (String.concat ", " sources)
      | Derived d ->
        line "%s" fact_s;
        line "  by %s" (Format.asprintf "%a" Rule.pp d.Wdl_eval.Fixpoint.rule);
        List.iter
          (fun premise -> go (depth + 1) (fact :: visited) premise)
          d.Wdl_eval.Fixpoint.premises
  in
  go 0 [] fact;
  Buffer.contents buf

let readers t rel =
  Authz.readers t.authz ~self:t.name ~rules:(all_rules t)
    ~intensional:(intensional t) rel

let can_read t ~reader rel =
  Authz.can_read t.authz ~self:t.name ~rules:(all_rules t)
    ~intensional:(intensional t) ~reader rel

let pending_delegations t = Acl.pending t.acl

let accept_delegation t ~src rule =
  Acl.accept t.acl ~src rule && install_delegation t ~src rule

let reject_delegation t ~src rule =
  let was = Acl.reject t.acl ~src rule in
  if was then
    record_event t
      (Trace.Delegation_rejected
         { peer = t.name; src; rule; reason = "rejected by user" });
  was

let accept_all_delegations t =
  List.fold_left
    (fun n (src, rule) -> if install_delegation t ~src rule then n + 1 else n)
    0
    (Acl.accept_all t.acl)

(* {1 Persistence}

   The snapshot is one parseable program: a counted [meta@snapshot]
   header followed by sections in a fixed order. Marker facts carry the
   non-program state (trust entries, delegation origins, cached remote
   batches, already-sent state). *)

let one_line = Pp_util.one_line

let snapshot t =
  let buf = Buffer.create 4096 in
  let stmt pp v =
    Buffer.add_string buf (one_line pp v);
    Buffer.add_string buf ";\n"
  in
  let marker rel args = stmt Fact.pp (Fact.make ~rel ~peer:"snapshot" args) in
  let trust_entries = Acl.explicit t.acl in
  let decls =
    List.map
      (fun (info : Database.info) ->
        let cols =
          if info.Database.cols = [] then
            List.init info.Database.arity (Printf.sprintf "c%d")
          else info.Database.cols
        in
        (* Re-attach the builtin configuration so the declaration
           round-trips through the parser on restore. *)
        match Builtin.Registry.find t.builtins info.Database.name with
        | Some inst ->
          Decl.make ?builtin:inst.Builtin.decl.Decl.builtin
            ~kind:info.Database.kind ~rel:info.Database.name ~peer:t.name cols
        | None ->
          Decl.make ~kind:info.Database.kind ~rel:info.Database.name
            ~peer:t.name cols)
      (Database.relations t.db)
  in
  let ext_facts =
    List.concat_map
      (fun (info : Database.info) ->
        match info.Database.kind with
        | Decl.Intensional -> []
        | Decl.Extensional ->
          (* Builtin materializations are not dumped: their private
             state (stamps, sketch bits) cannot be replayed, so a
             restored module starts empty, like after a crash. *)
          if Builtin.Registry.mem t.builtins info.Database.name then []
          else
            List.map
              (fun tuple ->
                Fact.make ~rel:info.Database.name ~peer:t.name
                  (Tuple.to_list tuple))
              (Relation.to_sorted_list info.Database.data))
      (Database.relations t.db)
  in
  let own = rules t in
  let delegated = delegated_rules t in
  let pending = Acl.pending t.acl in
  let sorted_tbl tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let cache = sorted_tbl t.remote_cache in
  let sent =
    Deleg_tbl.fold (fun s () acc -> s :: acc) t.last_delegations []
    |> List.sort (fun (a, r1) (b, r2) ->
           match String.compare a b with
           | 0 -> Rule.compare r1 r2
           | c -> c)
  in
  let batches = sorted_tbl t.last_batches in
  let authz_entries = Authz.entries t.authz in
  marker "meta"
    [
      Value.String t.name;
      Value.Int t.stage_no;
      Value.String (match Acl.policy t.acl with Acl.Open -> "open" | Acl.Closed -> "closed");
      Value.Bool t.enforce_authz;
      Value.Int (List.length authz_entries);
      Value.Int (List.length trust_entries);
      Value.Int (List.length decls);
      Value.Int (List.length ext_facts);
      Value.Int (List.length own);
      Value.Int (List.length delegated);
      Value.Int (List.length pending);
      Value.Int (List.length cache);
      Value.Int (List.length sent);
      Value.Int (List.length batches);
    ];
  List.iter
    (fun (rel, kind, policy) ->
      let kind_s = match kind with `Stored -> "stored" | `Override -> "override" in
      let tail =
        match policy with
        | Authz.Everyone -> [ Value.Bool true ]
        | Authz.Only l -> Value.Bool false :: List.map (fun p -> Value.String p) l
      in
      marker "authz" (Value.String rel :: Value.String kind_s :: tail))
    authz_entries;
  List.iter
    (fun (p, b) -> marker "trust" [ Value.String p; Value.Bool b ])
    trust_entries;
  List.iter (fun d -> stmt Decl.pp d) decls;
  List.iter (fun f -> stmt Fact.pp f) ext_facts;
  List.iter (fun r -> stmt Rule.pp r) own;
  List.iter
    (fun (src, r) ->
      marker "from" [ Value.String src ];
      stmt Rule.pp r)
    delegated;
  List.iter
    (fun (src, r) ->
      marker "from" [ Value.String src ];
      stmt Rule.pp r)
    pending;
  List.iter
    (fun (src, batch) ->
      marker "batch" [ Value.String src; Value.Int (List.length batch) ];
      List.iter (fun f -> stmt Fact.pp f) batch)
    cache;
  List.iter
    (fun (dst, r) ->
      marker "sent" [ Value.String dst ];
      stmt Rule.pp r)
    sent;
  List.iter
    (fun (dst, batch) ->
      marker "batch" [ Value.String dst; Value.Int (List.length batch) ];
      List.iter (fun f -> stmt Fact.pp f) batch)
    batches;
  Buffer.contents buf

(* Counted-section reader over the parsed statement stream. *)
module Restore_reader = struct
  type nonrec state = { mutable stmts : Program.statement list }

  let ( let* ) = Result.bind

  let next st what =
    match st.stmts with
    | [] -> Error (Printf.sprintf "snapshot truncated: expected %s" what)
    | s :: rest ->
      st.stmts <- rest;
      Ok s

  let fact st what =
    let* s = next st what in
    match s with
    | Program.Fact f -> Ok f
    | Program.Decl _ | Program.Rule _ ->
      Error (Printf.sprintf "snapshot corrupt: expected %s" what)

  let rule st what =
    let* s = next st what in
    match s with
    | Program.Rule r -> Ok r
    | Program.Decl _ | Program.Fact _ ->
      Error (Printf.sprintf "snapshot corrupt: expected %s" what)

  let decl st what =
    let* s = next st what in
    match s with
    | Program.Decl d -> Ok d
    | Program.Fact _ | Program.Rule _ ->
      Error (Printf.sprintf "snapshot corrupt: expected %s" what)

  let marker st rel what =
    let* f = fact st what in
    if f.Fact.rel = rel && f.Fact.peer = "snapshot" then Ok f.Fact.args
    else Error (Printf.sprintf "snapshot corrupt: expected %s marker" what)

  let rec times n f acc st =
    if n <= 0 then Ok (List.rev acc)
    else
      let* x = f st in
      times (n - 1) f (x :: acc) st

  let sourced_rule st =
    let* args = marker st "from" "a from marker" in
    let* r = rule st "a delegated rule" in
    match args with
    | [ Value.String src ] -> Ok (src, r)
    | _ -> Error "snapshot corrupt: bad from marker"

  let batch st =
    let* args = marker st "batch" "a batch marker" in
    match args with
    | [ Value.String src; Value.Int k ] ->
      let* facts = times k (fun st -> fact st "a cached fact") [] st in
      Ok (src, facts)
    | _ -> Error "snapshot corrupt: bad batch marker"

  let sent_rule st =
    let* args = marker st "sent" "a sent marker" in
    let* r = rule st "a sent delegation" in
    match args with
    | [ Value.String dst ] -> Ok (dst, r)
    | _ -> Error "snapshot corrupt: bad sent marker"
end

let restore text =
  let open Restore_reader in
  let ( let* ) = Result.bind in
  let* program = Parser.program text in
  let st = { stmts = program } in
  let* meta = marker st "meta" "the snapshot header" in
  match meta with
  | [ Value.String name; Value.Int stage_no; Value.String policy;
      Value.Bool enforce_authz; Value.Int n_authz;
      Value.Int n_trust; Value.Int n_decl; Value.Int n_fact; Value.Int n_rule;
      Value.Int n_deleg; Value.Int n_pending; Value.Int n_cache;
      Value.Int n_sent; Value.Int n_batch ] ->
    let* policy =
      match policy with
      | "open" -> Ok Acl.Open
      | "closed" -> Ok Acl.Closed
      | other -> Error ("snapshot corrupt: unknown policy " ^ other)
    in
    let t = create ~policy name in
    t.enforce_authz <- enforce_authz;
    let* authz_entries =
      times n_authz (fun st -> marker st "authz" "an authz entry") [] st
    in
    let* () =
      List.fold_left
        (fun acc args ->
          let* () = acc in
          match args with
          | Value.String rel :: Value.String kind :: Value.Bool everyone :: peers ->
            let* policy =
              if everyone then Ok Authz.Everyone
              else
                List.fold_left
                  (fun acc v ->
                    let* l = acc in
                    match v with
                    | Value.String p -> Ok (p :: l)
                    | _ -> Error "snapshot corrupt: bad authz peer")
                  (Ok []) peers
                |> Result.map (fun l -> Authz.Only l)
            in
            (match kind with
            | "stored" -> Authz.set_policy t.authz ~rel policy; Ok ()
            | "override" -> Authz.declassify t.authz ~rel policy; Ok ()
            | _ -> Error "snapshot corrupt: bad authz kind")
          | _ -> Error "snapshot corrupt: bad authz entry")
        (Ok ()) authz_entries
    in
    let* trust_entries =
      times n_trust (fun st -> marker st "trust" "a trust entry") [] st
    in
    let* () =
      List.fold_left
        (fun acc args ->
          let* () = acc in
          match args with
          | [ Value.String p; Value.Bool b ] ->
            if b then Acl.trust t.acl p else Acl.untrust t.acl p;
            Ok ()
          | _ -> Error "snapshot corrupt: bad trust entry")
        (Ok ()) trust_entries
    in
    let* decls = times n_decl (fun st -> decl st "a declaration") [] st in
    let* () =
      List.fold_left
        (fun acc (d : Decl.t) ->
          let* () = acc in
          match Database.declare t.db d with
          | Ok info -> (
            match d.Decl.builtin with
            | None -> Ok ()
            | Some _ -> (
              (* Modules restart empty: stamps and sketch bits cannot
                 be reconstructed from a materialization dump. *)
              match
                Builtin.Registry.register t.builtins ~decl:d
                  ~data:info.Database.data
              with
              | Ok _ -> Ok ()
              | Error msg -> Error msg))
          | Error e -> Error (Format.asprintf "%a" Database.pp_error e))
        (Ok ()) decls
    in
    let* facts = times n_fact (fun st -> fact st "an extensional fact") [] st in
    let* () =
      List.fold_left
        (fun acc (f : Fact.t) ->
          let* () = acc in
          match Database.insert t.db ~rel:f.Fact.rel (Tuple.of_list f.Fact.args) with
          | Ok _ -> Ok ()
          | Error e -> Error (Format.asprintf "%a" Database.pp_error e))
        (Ok ()) facts
    in
    let* own = times n_rule (fun st -> rule st "an own rule") [] st in
    t.own_rules <- List.rev own;
    let* delegated = times n_deleg sourced_rule [] st in
    List.iter
      (fun (src, r) ->
        t.delegated_seq <- t.delegated_seq + 1;
        Deleg_tbl.replace t.delegated (src, r) t.delegated_seq)
      delegated;
    let* pending = times n_pending sourced_rule [] st in
    List.iter (fun (src, r) -> Acl.enqueue t.acl ~src r) pending;
    let* cache = times n_cache batch [] st in
    List.iter (fun (src, b) -> Hashtbl.replace t.remote_cache src b) cache;
    let* sent = times n_sent sent_rule [] st in
    List.iter (fun s -> Deleg_tbl.replace t.last_delegations s ()) sent;
    let* batches = times n_batch batch [] st in
    List.iter (fun (dst, b) -> Hashtbl.replace t.last_batches dst b) batches;
    if st.stmts <> [] then Error "snapshot corrupt: trailing statements"
    else begin
      t.stage_no <- stage_no;
      (* The first stage after a restart recomputes all views. *)
      t.dirty <- true;
      Ok t
    end
  | _ -> Error "snapshot corrupt: bad header"

(* {1 The stage loop} *)

(* Bounded inbox: when full, shed per policy instead of growing without
   bound. Shedding loses that message's content permanently at this
   peer (the transport already considers it delivered) — senders using
   the diff protocol re-send their current batch on the next change, so
   extensional state reconverges; use {!shed_policy} Drop_oldest when
   freshest-wins matters. *)
let receive t msg =
  if Queue.length t.inbox >= t.inbox_capacity then begin
    (match t.shed with
    | Drop_newest -> ()  (* the arriving message is the casualty *)
    | Drop_oldest ->
      ignore (Queue.pop t.inbox);
      Queue.push msg t.inbox);
    t.n_shed <- t.n_shed + 1;
    record_event t
      (Trace.Inbox_shed { peer = t.name; policy = shed_policy_string t.shed })
  end
  else Queue.push msg t.inbox

let inbox_length t = Queue.length t.inbox
let sheds t = t.n_shed
let last_errors t = t.last_errors

type stats = {
  stages : int;
  fixpoint_iterations : int;
  derivations : int;
  messages_sent : int;
  messages_received : int;
  delegations_installed : int;
  delegations_retracted : int;
  delegations_rejected : int;
  runtime_errors : int;
}

let stats t =
  {
    stages = t.n_stages;
    fixpoint_iterations = t.n_iterations;
    derivations = t.n_derivations;
    messages_sent = t.n_sent;
    messages_received = t.n_received;
    delegations_installed = t.n_installed;
    delegations_retracted = t.n_retracted;
    delegations_rejected = t.n_rejected;
    runtime_errors = t.n_errors;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "stages=%d iterations=%d derivations=%d sent=%d received=%d \
     installed=%d retracted=%d rejected=%d errors=%d"
    s.stages s.fixpoint_iterations s.derivations s.messages_sent
    s.messages_received s.delegations_installed s.delegations_retracted
    s.delegations_rejected s.runtime_errors

let has_work t =
  t.dirty || t.induced_pending <> [] || not (Queue.is_empty t.inbox)

let apply_extensional t fact =
  match Builtin.Registry.find t.builtins fact.Fact.rel with
  | Some inst -> (
    (* Induced heads and remote updates for a builtin relation go
       through its guarded write path, like local inserts. *)
    match builtin_write t inst Builtin.Insert fact with
    | Ok () -> ()
    | Error msg ->
      t.last_errors <-
        Wdl_eval.Runtime_error.Store_error { rel = fact.Fact.rel; message = msg }
        :: t.last_errors)
  | None -> (
    let tuple = Tuple.of_list fact.Fact.args in
    match Database.insert t.db ~rel:fact.Fact.rel tuple with
    | Ok fresh ->
      if fresh then begin
        (match t.stage_adds with
        | Some adds -> t.stage_adds <- Some (fact :: adds)
        | None -> ());
        journal_entry t (Journal.Insert fact);
        record_event t (Trace.Fact_inserted { peer = t.name; fact })
      end
    | Error e ->
      t.last_errors <-
        Wdl_eval.Runtime_error.Store_error
          { rel = fact.Fact.rel; message = Format.asprintf "%a" Database.pp_error e }
        :: t.last_errors)

let process_message t (msg : Message.t) =
  record_event t (Trace.Message_received { msg });
  (match msg.Message.facts with
  | None -> ()
  | Some batch ->
    Hashtbl.replace t.remote_cache msg.Message.src batch;
    (* Facts for extensional relations are updates: they persist.
       Facts for intensional relations live in the cache and are
       re-installed at every stage start while the source maintains
       them in its batch. Unknown relations auto-create extensional. *)
    List.iter
      (fun fact ->
        if not (intensional t fact.Fact.rel) then apply_extensional t fact)
      batch);
  (* Origin metadata rides index-aligned with the installs; record it
     before the approval gate so a later [accept_delegation] still
     finds it. A mismatched count means a sender without the metadata
     (or a truncated frame) — ids then fall back to ["src#?"]. *)
  if
    msg.Message.install_origins <> []
    && List.compare_lengths msg.Message.install_origins msg.Message.installs = 0
  then
    List.iter2
      (fun rule id -> Deleg_tbl.replace t.deleg_origins (msg.Message.src, rule) id)
      msg.Message.installs msg.Message.install_origins;
  List.iter
    (fun rule ->
      (* Re-announced installs (rejoin reconciliation, retransmission
         across a crash) must not re-queue an already-installed rule
         for approval. *)
      if Deleg_tbl.mem t.delegated (msg.Message.src, rule) then ()
      else
        match Acl.submit t.acl ~src:msg.Message.src rule with
        | `Installed -> ignore (install_delegation t ~src:msg.Message.src rule)
        | `Pending ->
          record_event t
            (Trace.Delegation_pending { peer = t.name; src = msg.Message.src; rule }))
    msg.Message.installs;
  List.iter
    (fun rule ->
      Deleg_tbl.remove t.deleg_origins (msg.Message.src, rule);
      if Deleg_tbl.mem t.delegated (msg.Message.src, rule) then begin
        Deleg_tbl.remove t.delegated (msg.Message.src, rule);
        t.dirty <- true;
        invalidate_program t;
        record_event t
          (Trace.Delegation_retracted { peer = t.name; src = msg.Message.src; rule })
      end
      else ignore (Acl.retract_pending t.acl ~src:msg.Message.src rule))
    msg.Message.retracts

let refill_intensional t =
  Database.clear_intensional t.db;
  (* Pre-size each target relation for the whole refill: one growth
     step per relation instead of a log-series of rehashes when the
     cached batches are large. *)
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _src batch ->
      List.iter
        (fun (fact : Fact.t) ->
          if intensional t fact.Fact.rel then
            Hashtbl.replace counts fact.Fact.rel
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts fact.Fact.rel)))
        batch)
    t.remote_cache;
  Hashtbl.iter
    (fun rel extra ->
      match Database.find t.db rel with
      | Some info -> Relation.reserve info.Database.data extra
      | None -> ())
    counts;
  Hashtbl.iter
    (fun _src batch ->
      List.iter
        (fun fact ->
          if intensional t fact.Fact.rel then
            let tuple = Tuple.of_list fact.Fact.args in
            match Database.insert t.db ~rel:fact.Fact.rel tuple with
            | Ok _ -> ()
            | Error e ->
              t.last_errors <-
                Wdl_eval.Runtime_error.Store_error
                  {
                    rel = fact.Fact.rel;
                    message = Format.asprintf "%a" Database.pp_error e;
                  }
                :: t.last_errors)
        batch)
    t.remote_cache

let group_facts_by_dst facts =
  let by_dst = Hashtbl.create 8 in
  List.iter
    (fun (f : Fact.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_dst f.Fact.peer) in
      Hashtbl.replace by_dst f.Fact.peer (f :: cur))
    facts;
  by_dst

(* Power-of-two cardinality band: bit length of the cardinal (0 for an
   empty relation). The planner's join order only depends on coarse
   relative sizes, so a compiled program stays valid while every
   relation sits inside the band it was planned against; a relation
   doubling (or emptying) past a band edge forces a replan. *)
let card_band n =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits n 0

let band_signature db =
  let a =
    Array.of_list
      (List.map
         (fun (i : Database.info) ->
           (i.Database.name, card_band (Relation.cardinal i.Database.data)))
         (Database.relations db))
  in
  Array.sort compare a;
  a

let live_cardinal t rel =
  match Database.find t.db rel with
  | Some i -> Relation.cardinal i.Database.data
  | None -> 0

let order_fn t =
  if t.replan then
    Some (Wdl_eval.Plan.order_body ~self:t.name ~stats:(live_cardinal t))
  else None

(* Return the cached compiled program if it is still valid for the
   current rule set, recompiling otherwise.  Valid means: same rule-set
   version AND (with replanning on) no relation has crossed a
   cardinality band since compilation — crossing one recompiles with
   fresh statistics and counts as a replan.  [None] on stratification
   errors — [Fixpoint.run] then recomputes and reports the error
   itself. *)
let compiled_program t =
  let bands = if t.replan then band_signature t.db else [||] in
  match t.program with
  | Some p
    when Wdl_eval.Program.version p = t.rules_version
         && bands = t.program_bands ->
    t.n_cache_hits <- t.n_cache_hits + 1;
    Some p
  | prev -> (
    (match prev with
    | Some p when Wdl_eval.Program.version p = t.rules_version ->
      t.n_replans <- t.n_replans + 1
    | _ -> ());
    match
      Wdl_eval.Program.compile ~version:t.rules_version ?order:(order_fn t)
        ~self:t.name ~intensional:(intensional t) (all_rules t)
    with
    | Ok p ->
      t.program <- Some p;
      t.program_bands <- bands;
      Some p
    | Error _ ->
      t.program <- None;
      None)

(* A rule set is monotone when no rule negates a body atom or
   aggregates: derived facts then only accumulate as base facts do, so
   a previous stage's fixpoint stays valid under purely additive
   inputs. (Stratification only splits strata at negative and
   aggregate edges, so a monotone program is also single-stratum —
   what {!Wdl_eval.Fixpoint.run}'s [seed] requires.) *)
let monotone_rules t =
  if t.mono_version <> t.rules_version then begin
    t.mono_version <- t.rules_version;
    t.mono <-
      List.for_all
        (fun (r : Rule.t) ->
          (not (Rule.is_aggregate r))
          && List.for_all
               (function
                 | Literal.Neg _ -> false
                 | Literal.Pos _ | Literal.Cmp _ | Literal.Assign _ -> true)
               r.Rule.body)
        (all_rules t)
  end;
  t.mono

(* The facts a message's batch adds over the cached batch from the
   same source, accumulated onto [acc] — or [None] when the message is
   not purely additive: it carries installs or retracts, or drops a
   cached fact. Both batches are sorted by [Fact.compare] (the sender
   sorts before caching and sending), so one linear merge walk
   decides; unsorted input merely falls back to [None], which costs a
   full stage but never an unsound delta one. *)
let batch_additions t (msg : Message.t) acc =
  if msg.Message.installs <> [] || msg.Message.retracts <> [] then None
  else
    match msg.Message.facts with
    | None -> Some acc
    | Some batch ->
      let cached =
        Option.value ~default:[]
          (Hashtbl.find_opt t.remote_cache msg.Message.src)
      in
      let rec walk old batch acc =
        match (old, batch) with
        | [], rest -> Some (List.rev_append rest acc)
        | _ :: _, [] -> None
        | (o :: os as old), b :: bs ->
          let c = Fact.compare b o in
          if c = 0 then walk os bs acc
          else if c < 0 then walk old bs (b :: acc)
          else None
      in
      walk cached batch acc

(* The static half of the delta-staging gate: engine configuration and
   rule-set shape. The dynamic half — were this stage's inputs purely
   additive? — is [stage_adds] plus the inbox walk in [stage]. *)
let delta_capable t =
  t.incremental && t.diff_batches
  && (not t.track_provenance)
  && t.strategy = Wdl_eval.Fixpoint.Seminaive
  && Builtin.Registry.is_empty t.builtins
  && monotone_rules t

let stage t =
  let stage_no = t.stage_no + 1 in
  (* Builtin modules tick as the stage opens: time refresh, window and
     TTL expiry. Deliberately before the quiescence check below — an
     expiry or a clock refresh is work, and stage-indexed horizons must
     only advance when the peer actually runs a stage. *)
  if not (Builtin.Registry.is_empty t.builtins) then begin
    let changed, expired =
      Builtin.Registry.tick_all t.builtins ~stage:stage_no ~now:(t.clock ())
    in
    List.iter
      (fun (rel, tuple) ->
        record_event t
          (Trace.Fact_deleted
             {
               peer = t.name;
               fact = Fact.make ~rel ~peer:t.name (Tuple.to_list tuple);
             }))
      expired;
    if changed then begin
      record_event t
        (Trace.Builtin_tick
           { peer = t.name; stage = stage_no; expired = List.length expired });
      t.dirty <- true
    end
  end;
  (* Quiescence fast path: the fixpoint is a deterministic function of
     (extensional db, remote cache, rules).  When none of those changed
     since the previous stage, its outputs are identical, so every
     diffed batch and delegation diff is empty — skip the whole thing.
     Requires [diff_batches]: with diffing off, identical non-empty
     batches are legitimately resent every stage.  [last_errors] is
     deliberately left as-is: re-running would reproduce the same
     errors. *)
  if
    t.incremental && t.diff_batches && (not t.dirty)
    && t.induced_pending = []
    && Queue.is_empty t.inbox
  then begin
    t.n_fastpath <- t.n_fastpath + 1;
    record_event t (Trace.Stage_start { peer = t.name; stage = stage_no });
    record_event t
      (Trace.Stage_end
         { peer = t.name; stage = stage_no; derivations = 0; iterations = 0 });
    t.stage_no <- stage_no;
    []
  end
  else begin
  t.last_errors <- [];
  record_event t (Trace.Stage_start { peer = t.name; stage = stage_no });
  (* Step 1: load inputs. The monotone-inbox walk reads each source's
     cached batch just before [process_message] replaces it, so batch
     additions are extracted in the same pass. *)
  List.iter (apply_extensional t) t.induced_pending;
  t.induced_pending <- [];
  let inbox_adds = ref (Some []) in
  Queue.iter
    (fun msg ->
      (match !inbox_adds with
      | Some acc -> inbox_adds := batch_additions t msg acc
      | None -> ());
      process_message t msg)
    t.inbox;
  Queue.clear t.inbox;
  (* Delta staging: when every change since the last completed stage
     is purely additive — only fresh local/induced insertions
     ([stage_adds]) and inbox batches that are supersets of the cached
     ones — and the rule set is monotone, the previous fixpoint is a
     sub-fixpoint of the next one. Keep the intensional store as-is,
     insert just the new facts, and seed semi-naive with exactly that
     delta. Everything else takes the full path: clear intensional
     state, reload the caches, evaluate from scratch. *)
  let seed =
    if delta_capable t then
      match (t.stage_adds, !inbox_adds) with
      | Some local, Some inbox ->
        (* New intensional facts held in remote caches enter the store
           here; the full path instead reloads every cached fact in
           [refill_intensional]. *)
        let pairs = ref [] in
        List.iter
          (fun (f : Fact.t) ->
            pairs := (f.Fact.rel, Tuple.of_list f.Fact.args) :: !pairs)
          local;
        List.iter
          (fun (f : Fact.t) ->
            if intensional t f.Fact.rel then
              let tuple = Tuple.of_list f.Fact.args in
              match Database.insert t.db ~rel:f.Fact.rel tuple with
              | Ok true -> pairs := (f.Fact.rel, tuple) :: !pairs
              | Ok false -> ()
              | Error e ->
                t.last_errors <-
                  Wdl_eval.Runtime_error.Store_error
                    {
                      rel = f.Fact.rel;
                      message = Format.asprintf "%a" Database.pp_error e;
                    }
                  :: t.last_errors)
          inbox;
        Some !pairs
      | _, _ -> None
    else None
  in
  (match seed with
  | Some _ -> t.n_delta_stages <- t.n_delta_stages + 1
  | None -> refill_intensional t);
  (* Aggregate builtins (topk, cms) rematerialize once the stage's
     inputs are all applied, so the fixpoint reads one consistent
     snapshot. *)
  ignore (Builtin.Registry.flush_all t.builtins : bool);
  (* Step 2: fixpoint, against the cached compiled program when the
     rule set is unchanged. *)
  let program =
    if t.incremental then compiled_program t
    else
      (* The baseline engine caches nothing, but it must apply the same
         join ordering as the incremental one — the two engines are
         checked for step-equivalence, and ordering changes which
         delegation a mixed body produces. *)
      match
        Wdl_eval.Program.compile ~version:t.rules_version
          ?order:(order_fn t) ~self:t.name ~intensional:(intensional t)
          (all_rules t)
      with
      | Ok p -> Some p
      | Error _ -> None
  in
  let outbound =
    match
      Wdl_eval.Fixpoint.run ~strategy:t.strategy
        ~record_provenance:t.track_provenance ~schedule:t.incremental
        ~domains:t.domains ?seed ?program ~handles:t.eval_handles
        ~self:t.name t.db (all_rules t)
    with
    | Error e ->
      (* The fixpoint did not run: retained intensional state is not a
         fixpoint of anything, so the next stage must be a full one. *)
      t.stage_adds <- None;
      t.last_errors <-
        Wdl_eval.Runtime_error.Store_error
          { rel = "<program>"; message = Format.asprintf "%a" Wdl_eval.Stratify.pp_error e }
        :: t.last_errors;
      record_event t
        (Trace.Stage_end
           { peer = t.name; stage = stage_no; derivations = 0; iterations = 0 });
      []
    | Ok result ->
      if t.track_provenance then begin
        Fact_tbl.reset t.prov;
        List.iter
          (fun (d : Wdl_eval.Fixpoint.derivation) ->
            Fact_tbl.replace t.prov d.Wdl_eval.Fixpoint.fact d)
          result.Wdl_eval.Fixpoint.provenance
      end;
      t.last_errors <- result.Wdl_eval.Fixpoint.errors @ t.last_errors;
      if t.last_errors <> [] then
        record_event t
          (Trace.Runtime_errors { peer = t.name; errors = t.last_errors });
      (* Inductive updates: only genuinely new facts carry to the next
         stage, otherwise a stable program would never quiesce. *)
      t.induced_pending <-
        List.filter
          (fun (f : Fact.t) ->
            not (Database.mem t.db ~rel:f.Fact.rel (Tuple.of_list f.Fact.args)))
          result.Wdl_eval.Fixpoint.induced;
      (* A completed stage starts a fresh additive run. *)
      t.stage_adds <- Some [];
      (* Re-anchor the band reference to the post-fixpoint store. A
         delta-capable peer's next compile measures retained state
         (delta staging keeps intensional contents), so leaving the
         reference where [compiled_program] took it — before this
         stage's derivations — would read every in-fixpoint growth
         spurt as a band crossing and replan on the spot. Inter-stage
         changes still cross bands against this reference. Other peers
         keep the compile-time reference: their next compile measures
         the post-[refill_intensional] store it was taken against. *)
      if t.replan && delta_capable t then begin
        match t.program with
        | Some p when Wdl_eval.Program.version p = t.rules_version ->
          t.program_bands <- band_signature t.db
        | _ -> ()
      end;
      let delta_mode = seed <> None in
      (* Step 3: emit. Fact batches are diffed against the last batch
         sent to each destination; delegations are diffed as a set. A
         delta stage derived only *new* facts and suspensions, so its
         batches merge into the last sent ones (the wire protocol
         sends full replacement batches) and its delegations are pure
         additions — nothing previously sent can have lapsed. *)
      let by_dst = group_facts_by_dst result.Wdl_eval.Fixpoint.messages in
      let current_dsts =
        Hashtbl.fold (fun dst _ acc -> Sset.add dst acc) by_dst Sset.empty
      in
      let previous_dsts =
        (* Under monotone growth a destination with no new derivations
           keeps its batch unchanged; only the full recompute must
           revisit every previously non-empty destination in case its
           batch shrank or emptied. *)
        if delta_mode then Sset.empty
        else
          Hashtbl.fold
            (fun dst batch acc -> if batch <> [] then Sset.add dst acc else acc)
            t.last_batches Sset.empty
      in
      (* Origin attribution for this stage's emissions: which rules fed
         each destination's batch, and which rule's evaluation shipped
         each suspension. Both are diagnostic — they tag outbound
         messages for the knowledge-flow oracle and never affect what
         is sent. *)
      let stage_origins =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (dst, rule) ->
            match rule_id t rule with
            | None -> ()
            | Some id ->
              let cur =
                Option.value ~default:Sset.empty (Hashtbl.find_opt tbl dst)
              in
              Hashtbl.replace tbl dst (Sset.add id cur))
          result.Wdl_eval.Fixpoint.origins;
        fun dst ->
          Option.value ~default:Sset.empty (Hashtbl.find_opt tbl dst)
      in
      let susp_origin =
        let tbl =
          Deleg_tbl.create
            (2 * List.length result.Wdl_eval.Fixpoint.susp_sources)
        in
        List.iter
          (fun (key, src_rule) -> Deleg_tbl.replace tbl key src_rule)
          result.Wdl_eval.Fixpoint.susp_sources;
        fun key ->
          match Deleg_tbl.find_opt tbl key with
          | Some src_rule -> (
            match rule_id t src_rule with
            | Some id -> id
            | None -> t.name ^ "#?")
          | None -> t.name ^ "#?"
      in
      let fact_part dst =
        let last = Option.value ~default:[] (Hashtbl.find_opt t.last_batches dst) in
        if delta_mode then
          match Hashtbl.find_opt by_dst dst with
          | None -> None
          | Some fresh ->
            let merged =
              List.sort_uniq Fact.compare (List.rev_append fresh last)
            in
            (* [merged] is a superset of [last]: same length = no change. *)
            if List.compare_lengths merged last = 0 then None
            else begin
              Hashtbl.replace t.last_batches dst merged;
              (* A delta stage only extends the batch, so its origin
                 set unions into the remembered one. *)
              let prev =
                Option.value ~default:Sset.empty
                  (Hashtbl.find_opt t.batch_origins dst)
              in
              Hashtbl.replace t.batch_origins dst
                (Sset.union prev (stage_origins dst));
              Some merged
            end
        else
          let batch =
            List.sort Fact.compare
              (Option.value ~default:[] (Hashtbl.find_opt by_dst dst))
          in
          if t.diff_batches && List.equal Fact.equal batch last then None
          else begin
            Hashtbl.replace t.last_batches dst batch;
            Hashtbl.replace t.batch_origins dst (stage_origins dst);
            if batch = [] && last = [] then None else Some batch
          end
      in
      let susp = result.Wdl_eval.Fixpoint.suspensions in
      let installs =
        List.filter (fun s -> not (Deleg_tbl.mem t.last_delegations s)) susp
      in
      let retracts =
        if delta_mode then []
        else
          let susp_set = Deleg_tbl.create (List.length susp * 2) in
          List.iter (fun s -> Deleg_tbl.replace susp_set s ()) susp;
          let retracts =
            Deleg_tbl.fold
              (fun s () acc -> if Deleg_tbl.mem susp_set s then acc else s :: acc)
              t.last_delegations []
          in
          t.last_delegations <- susp_set;
          retracts
      in
      if delta_mode then
        List.iter (fun s -> Deleg_tbl.replace t.last_delegations s ()) installs;
      let deleg_dsts =
        List.fold_left (fun acc (d, _) -> Sset.add d acc) Sset.empty
          (installs @ retracts)
      in
      let all_dsts = Sset.union (Sset.union current_dsts previous_dsts) deleg_dsts in
      let messages =
        Sset.fold
          (fun dst acc ->
            let facts = fact_part dst in
            let installs_for =
              List.filter_map
                (fun (d, r) -> if d = dst then Some r else None)
                installs
            in
            let msg =
              Message.make ~src:t.name ~dst ~stage:stage_no ~facts
                ~installs:installs_for
                ~retracts:
                  (List.filter_map
                     (fun (d, r) -> if d = dst then Some r else None)
                     retracts)
                ~fact_origins:
                  (match facts with
                  | None -> []
                  | Some _ ->
                    Sset.elements
                      (Option.value ~default:Sset.empty
                         (Hashtbl.find_opt t.batch_origins dst)))
                ~install_origins:
                  (List.map (fun r -> susp_origin (dst, r)) installs_for)
                ()
            in
            if Message.is_empty msg then acc else msg :: acc)
          all_dsts []
      in
      List.iter
        (fun msg -> record_event t (Trace.Message_sent { msg }))
        messages;
      record_event t
        (Trace.Stage_end
           {
             peer = t.name;
             stage = stage_no;
             derivations = result.Wdl_eval.Fixpoint.derivations;
             iterations = result.Wdl_eval.Fixpoint.iterations;
           });
      messages
  in
  t.stage_no <- stage_no;
  t.dirty <- false;
  outbound
  end
