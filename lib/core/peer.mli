(** A WebdamLog peer: named state (a database), a program (rules), an
    inbox, and the stage loop of §2:

    + load the inputs received from remote peers since the previous
      stage (facts and delegation installs/retracts);
    + run a fixpoint computation of the current program;
    + send facts (updates) and rules (delegation diffs) to other peers.

    Peers are fully autonomous: a peer never reads another peer's
    state; everything crosses through {!Message}. *)

open Wdl_syntax

type t

type shed_policy = Drop_newest | Drop_oldest
(** What a full bounded inbox sheds: the arriving message
    ([Drop_newest]) or the oldest queued one ([Drop_oldest]). The
    third classic policy, block-sender, lives at the transport layer:
    {!Wdl_net.Reliable.config}[.max_window] parks a congested link's
    sends instead of dropping anything. *)

val shed_policy_string : shed_policy -> string

val create :
  ?strategy:Wdl_eval.Fixpoint.strategy ->
  ?policy:Acl.policy ->
  ?indexing:bool ->
  ?trace_capacity:int ->
  ?diff_batches:bool ->
  ?incremental:bool ->
  ?replan:bool ->
  ?inbox_capacity:int ->
  ?shed:shed_policy ->
  ?domains:int ->
  string ->
  t
(** [inbox_capacity] (default unbounded) bounds {!receive}'s queue:
    beyond it, messages are shed per [shed] (default [Drop_newest]),
    counted in [wdl_sys_inbox_shed_total{peer=...}] and traced as
    [Inbox_shed] — one hot sender cannot OOM a slow peer.
    Raises [Invalid_argument] on an empty name. [diff_batches] (default
    true) sends per-destination fact batches only when they changed;
    turning it off re-sends on every stage — the naive messaging
    discipline measured by the A1 ablation benchmark. [incremental]
    (default true) enables the incremental evaluation engine: the
    compiled program is cached across stages (invalidated by rule
    changes, delegation installs/retracts, and declarations),
    semi-naive iterations skip plans whose delta relations are empty,
    and quiescent stages (no new facts, messages, or rule changes)
    skip the fixpoint entirely. Turning it off restores full
    per-stage recompilation and exhaustive plan execution — the
    baseline measured by the eval benchmark. [replan] (default true)
    enables cost-based join ordering: rule bodies are reordered at
    compile time by live relation cardinalities (the WDL031 greedy
    reorder promoted into the planner), and the cached program is
    recompiled when any relation's cardinality crosses a power-of-two
    band, counted in [wdl_eval_replans_total{peer=...}]. Turning it
    off evaluates bodies exactly as written — the mode the WDL031
    lint hint still targets. [domains] (default: the [WDL_DOMAINS]
    environment variable, else 1) runs this peer's fixpoints on that
    many worker domains over first-column-sharded deltas
    (see {!Wdl_eval.Fixpoint.run}); 1 is the sequential ablation.
    Raises [Invalid_argument] below 1. *)

val name : t -> string
val database : t -> Wdl_store.Database.t
val acl : t -> Acl.t
val trace : t -> Trace.t
val stage_number : t -> int

(** {1 Builtin relation modules} *)

val builtins : t -> Wdl_builtin.Builtin.Registry.t
(** Modules behind [builtin <kind> rel\@peer(...)] declarations. They
    tick as each stage opens (time refresh, window/TTL expiry — traced
    as {!Trace.Builtin_tick} plus one {!Trace.Fact_deleted} per expired
    tuple) and aggregate kinds rematerialize after the stage's inputs
    are applied. {!insert}/{!delete} and received facts for a builtin
    relation are routed through the module's guarded write path;
    builtin writes are never journaled, so a restored peer's modules
    start empty. *)

val set_clock : t -> (unit -> float) -> unit
(** Clock (seconds, may be virtual) read at stage boundaries and on
    builtin writes; wall-clock horizons ([seconds=T]) compare these
    stamps. Defaults to {!Wdl_obs.Obs.now_us} scaled to seconds.
    Injecting a deterministic clock makes time-based expiry
    reproducible in tests and simulations. *)

(** {1 Access control (§2 model)} *)

val authz : t -> Authz.t
(** Discretionary policies and declassifications live here; derived
    view policies are computed against the peer's current rules. *)

val set_enforce_authz : t -> bool -> unit
(** When on, installing a delegation from [src] additionally requires
    [src] to be able to read every local relation the rule's
    locally-evaluated prefix mentions. Off by default (the 2013 demo
    enforced only the pending-queue model). *)

val enforcing_authz : t -> bool

val readers : t -> string -> Authz.policy
(** Effective policy of a relation: stored for extensional relations,
    declassified or provenance-derived for views. *)

val can_read : t -> reader:string -> string -> bool

(** {1 Program management} *)

val load_program : t -> Program.t -> (unit, string) result
(** Declarations, then facts (which must target this peer's extensional
    relations), then rules (safety-checked, then checked for a negation
    cycle against the current rule set). Partial failure leaves earlier
    statements applied; the message says which statement failed. *)

val load_string : t -> string -> (unit, string) result
(** Parse + {!load_program}. *)

val add_rule : t -> Rule.t -> (unit, string) result
val remove_rule : t -> Rule.t -> bool
val rules : t -> Rule.t list
(** Own rules, in addition order. *)

val delegated_rules : t -> (string * Rule.t) list
(** Installed delegations as [(origin, rule)], oldest first. *)

val rule_id : t -> Rule.t -> string option
(** Diagnostic id of an installed rule, or [None] if unknown. Own
    rules are ["name#k"], [k] 1-based by current program position —
    the ids {!Wdl_analysis.Flow.build} assigns to a file's rules.
    Delegated rules answer with the id of the origin rule whose
    evaluation shipped them (carried by the install's origin
    metadata); after a restore that metadata is gone and they fall
    back to ["origin#?"]. Outbound messages are tagged with these ids
    ({!Message.t}[.fact_origins]/[.install_origins]). *)

val flow : t -> Wdl_analysis.Flow.t
(** Knowledge-flow graph of the peer's current program — own rules
    plus installed delegations, labeled with the same ids {!rule_id}
    returns. The static half of the runtime oracle: for every tagged
    delivery [(origin, dst)] this peer emits,
    {!Wdl_analysis.Flow.rule_sends} on [origin] must cover [dst]. *)

(** {1 Data management (the GUI's surface)} *)

val insert : t -> Fact.t -> (unit, string) result
(** A local update to an extensional relation; visible at the next
    stage the peer runs. Rejects facts for other peers and for views. *)

val delete : t -> Fact.t -> (unit, string) result

val query : t -> string -> Fact.t list
(** Current contents of a relation, sorted; empty if unknown. Views
    reflect the last completed stage. *)

val relation_names : t -> string list

(** {1 Why-provenance}

    When tracking is on, every stage records one supporting derivation
    per view fact; the paper's access-control model (§2) motivates
    keeping provenance around, and it doubles as a debugger for rule
    programs. *)

type explanation =
  | Base  (** stored extensional fact *)
  | Derived of Wdl_eval.Fixpoint.derivation
  | Received of string list
      (** remote per-stage fact, cached from these sources *)
  | Unknown

val set_track_provenance : t -> bool -> unit
val tracking_provenance : t -> bool

val explain : t -> Fact.t -> explanation
(** One step; premises of a [Derived] answer can be explained in turn. *)

val explain_to_string : ?max_depth:int -> t -> Fact.t -> string
(** Recursive rendering of the derivation tree (default depth 8),
    cycle-safe. *)

type answer = {
  columns : string list;  (** printed head argument terms, in order *)
  rows : Value.t list list;  (** sorted, duplicate-free *)
  requires_delegation : (string * Rule.t) list;
      (** residuals an installed version of this query would send *)
  errors : Wdl_eval.Runtime_error.t list;
}

val ask : t -> string -> (answer, string) result
(** The demo's Query tab (§4): evaluates an ad-hoc rule — e.g.
    [q@Jules($n) :- pictures@Jules($i,$n,$o,$d), rate@Jules($i,5)] —
    against a {e snapshot} of the peer's state, together with the
    peer's current program. Live state, delegations and messages are
    untouched; body atoms that resolve to remote peers are reported in
    [requires_delegation] instead of being evaluated. *)

(** {1 Delegation control (§4)} *)

val pending_delegations : t -> (string * Rule.t) list
val accept_delegation : t -> src:string -> Rule.t -> bool
val reject_delegation : t -> src:string -> Rule.t -> bool
val accept_all_delegations : t -> int
(** Returns how many were installed. *)

(** {1 The stage loop} *)

val receive : t -> Message.t -> unit
(** Queues a message for the next stage; sheds it (or the oldest
    queued one) when the bounded inbox is full. *)

val inbox_length : t -> int
val sheds : t -> int
(** Messages shed by the bounded inbox since creation. *)

(** {1 Peer lifecycle}

    The two halves of "death is a transition, not a leak"
    ({!System.evict_peer} calls them; they are exposed for custom
    runtimes). *)

val forget_origin : t -> src:string -> int
(** Receiver-side cleanup when [src] dies: retracts every delegation
    it installed here (traced, counted), drops its pending-approval
    entries and its cached per-stage batch. Extensional facts it sent
    are genuine updates and persist. Returns the number of delegations
    retracted. *)

val forget_destination : t -> dst:string -> unit
(** Sender-side cleanup: drops the diff protocol's memory of what was
    sent to [dst] (last fact batch, delegation set), so the next stage
    re-sends current state from scratch — receivers apply it
    idempotently. Needed both for name reuse and to reconcile with a
    peer that rejoined without its session state. *)

val reset_session : t -> unit
(** {!forget_destination} towards every destination: a rejoining peer
    calls this so its delegations and batches are re-announced to a
    world that may have evicted it while it was down. *)

(** {1 Persistence}

    A peer is someone's laptop (§4): it stops and restarts. A snapshot
    captures everything needed to resume — declarations, extensional
    facts, own rules, installed delegations with their origins, the
    pending-approval queue, the cached remote view batches and the
    stage counter — as a parseable text file in the wire format. *)

val journal : t -> Wdl_store.Journal.t option
val set_journal : t -> Wdl_store.Journal.t option -> unit
(** Attaches a write-ahead journal: every subsequent base-data change
    (declarations, extensional inserts/deletes — local, inductive or
    received) is appended. {!Persist} composes this with snapshots into
    checkpoint + WAL durability. *)

val snapshot : t -> string

(** Rebuilds a peer from {!snapshot} output. Intensional contents are
    not stored: the first stage after restore recomputes them. *)
val restore : string -> (t, string) result
val has_work : t -> bool
(** Whether running a stage could change anything: non-empty inbox,
    pending inductive updates, or local edits since the last stage. *)

val stage : t -> Message.t list
(** Runs one stage and returns the outbound messages. *)

val last_errors : t -> Wdl_eval.Runtime_error.t list
(** Runtime errors of the last stage. *)

(** {1 Metrics} *)

type stats = {
  stages : int;
  fixpoint_iterations : int;  (** summed over stages *)
  derivations : int;          (** head instantiations, incl. duplicates *)
  messages_sent : int;
  messages_received : int;
  delegations_installed : int;
  delegations_retracted : int;
  delegations_rejected : int;
  runtime_errors : int;
}

val stats : t -> stats
(** Monotone counters since creation (not persisted by snapshots). *)

val pp_stats : Format.formatter -> stats -> unit
