open Wdl_syntax
module Journal = Wdl_store.Journal

let snapshot_file dir = Filename.concat dir "snapshot.wdl"
let journal_file dir = Filename.concat dir "journal.wal"

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let attach peer ~dir =
  ensure_dir dir;
  Peer.set_journal peer (Some (Journal.open_ (journal_file dir)))

let checkpoint peer ~dir =
  ensure_dir dir;
  let tmp = snapshot_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Peer.snapshot peer));
  Sys.rename tmp (snapshot_file dir);
  match Peer.journal peer with
  | Some j -> Journal.truncate j
  | None -> if Sys.file_exists (journal_file dir) then Sys.remove (journal_file dir)

let ( let* ) = Result.bind

let apply_entry peer entry =
  match entry with
  | Journal.Declare d ->
    Result.map_error
      (fun e -> "journal declaration: " ^ e)
      (Peer.load_program peer [ Program.Decl d ])
  | Journal.Insert f ->
    Result.map_error (fun e -> "journal insert: " ^ e) (Peer.insert peer f)
  | Journal.Delete f ->
    Result.map_error (fun e -> "journal delete: " ^ e) (Peer.delete peer f)

let recover ?(on_replay = fun _ -> ()) ~dir ~fallback_name () =
  let* peer =
    if Sys.file_exists (snapshot_file dir) then
      Peer.restore (read_file (snapshot_file dir))
    else Ok (Peer.create fallback_name)
  in
  (* repair, not replay: a torn tail must be cut off before [attach]
     reopens the file for appending, or the next entry would be
     concatenated onto the partial line and both lost. *)
  let* entries = Journal.repair (journal_file dir) in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        on_replay entry;
        apply_entry peer entry)
      (Ok ()) entries
  in
  attach peer ~dir;
  Ok peer
