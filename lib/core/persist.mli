(** Durable peers: checkpoint + write-ahead journal in a directory.

    A peer is someone's laptop (§4): it stops, crashes and restarts.
    {!attach} starts journaling base-data changes to [dir/journal.wal];
    {!checkpoint} writes the full state to [dir/snapshot.wdl] and
    truncates the journal; {!recover} rebuilds the peer from the last
    checkpoint plus the journal's tail, tolerating the torn final line
    a crash leaves behind {e and} cutting it off the file
    ({!Wdl_store.Journal.repair}) so post-recovery appends replay
    cleanly.

    What the journal covers is local base data. Rules, delegations,
    pending approvals, caches and ACL state recover to the last
    checkpoint; the delegation diff protocol re-converges them as peers
    exchange their next stages — so checkpoint on clean shutdown, and
    rely on the journal for what a crash would otherwise lose. *)

val attach : Peer.t -> dir:string -> unit
(** Creates [dir] if needed and starts journaling. *)

val checkpoint : Peer.t -> dir:string -> unit
(** Atomic: the snapshot is written to a temporary file and renamed
    over [dir/snapshot.wdl] before the journal truncates. *)

val recover :
  ?on_replay:(Wdl_store.Journal.entry -> unit) ->
  dir:string ->
  fallback_name:string ->
  unit ->
  (Peer.t, string) result
(** Loads [dir/snapshot.wdl] if present (otherwise a fresh peer named
    [fallback_name]), replays [dir/journal.wal], and re-attaches the
    journal so the peer keeps journaling. [on_replay] observes each
    journal entry as it is applied (crash-recovery logging). *)
