type t = {
  transport : Message.t Wdl_net.Transport.t;
  batch : bool;  (* coalesce each round's outbox per destination *)
  drop_unknown : bool;
  peers : (string, Peer.t) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
  mutable rounds : int;
  mutable dropped : int;  (* messages to peers the system doesn't know *)
  mutable transport_errors : int;  (* exceptions swallowed at send/drain *)
  mutable hooks : (unit -> unit) list;  (* run before each round's stages *)
  round_hist : Wdl_obs.Obs.histogram;
}

let create ?transport ?(batch = true) ?drop_unknown () =
  (* With the default in-process transport a message to an unknown peer
     can never be delivered, so it is dropped; with an explicit
     transport (TCP across processes) unknown peers may live elsewhere
     and everything is sent. *)
  let drop_unknown =
    match drop_unknown with Some b -> b | None -> Option.is_none transport
  in
  let transport =
    match transport with
    | Some tr -> tr
    | None -> Wdl_net.Inmem.create ~sizer:Message.size ()
  in
  let t =
    {
      transport;
      batch;
      drop_unknown;
      peers = Hashtbl.create 8;
      order = [];
      rounds = 0;
      dropped = 0;
      transport_errors = 0;
      hooks = [];
      round_hist =
        Wdl_obs.Obs.histogram ~help:"Wall time of one System.round"
          ~buckets:Wdl_obs.Obs.latency_buckets
          "wdl_system_round_duration_microseconds";
    }
  in
  (* Callback counters: sampled at scrape, nothing on the round path.
     A later System replaces the series (last one wins). *)
  Wdl_obs.Obs.on_collect ~help:"Rounds executed" ~kind:`Counter
    "wdl_system_rounds_total" (fun () -> float_of_int t.rounds);
  Wdl_obs.Obs.on_collect ~help:"Messages dropped for unknown peers"
    ~kind:`Counter "wdl_system_messages_dropped_total" (fun () ->
      float_of_int t.dropped);
  Wdl_obs.Obs.on_collect ~help:"Transport exceptions absorbed by the round loop"
    ~kind:`Counter "wdl_system_transport_errors_total" (fun () ->
      float_of_int t.transport_errors);
  Wdl_obs.Obs.on_collect ~help:"Registered peers" ~kind:`Gauge
    "wdl_system_peers" (fun () -> float_of_int (Hashtbl.length t.peers));
  t

let on_round t hook = t.hooks <- t.hooks @ [ hook ]

let adopt_peer t p =
  let name = Peer.name p in
  if Hashtbl.mem t.peers name then
    invalid_arg (Printf.sprintf "System.adopt_peer: peer %s already exists" name);
  Hashtbl.replace t.peers name p;
  t.order <- name :: t.order

let add_peer t ?strategy ?policy ?indexing ?diff_batches ?incremental name =
  if Hashtbl.mem t.peers name then
    invalid_arg (Printf.sprintf "System.add_peer: peer %s already exists" name);
  let p = Peer.create ?strategy ?policy ?indexing ?diff_batches ?incremental name in
  Hashtbl.replace t.peers name p;
  t.order <- name :: t.order;
  p

let remove_peer t name =
  if Hashtbl.mem t.peers name then begin
    Hashtbl.remove t.peers name;
    t.order <- List.filter (fun n -> n <> name) t.order
  end

let peer t name = Hashtbl.find t.peers name
let find_peer t name = Hashtbl.find_opt t.peers name
let peers t = List.rev_map (fun n -> Hashtbl.find t.peers n) t.order
let transport t = t.transport
let rounds t = t.rounds

let round t =
  Wdl_obs.Obs.time t.round_hist @@ fun () ->
  t.rounds <- t.rounds + 1;
  List.iter (fun hook -> hook ()) t.hooks;
  let sent = ref 0 in
  (* Stage every peer first, coalescing the round's outbox per
     destination (in first-appearance order): one transport batch per
     peer instead of one wire unit per message. *)
  let outbox : (string, (string * Message.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let dsts = ref [] in
  List.iter
    (fun p ->
      if Peer.has_work p then
        List.iter
          (fun (msg : Message.t) ->
            if t.drop_unknown && not (Hashtbl.mem t.peers msg.Message.dst) then
              t.dropped <- t.dropped + 1
            else begin
              incr sent;
              let dst = msg.Message.dst in
              match Hashtbl.find_opt outbox dst with
              | Some l -> l := (msg.Message.src, msg) :: !l
              | None ->
                Hashtbl.add outbox dst (ref [ (msg.Message.src, msg) ]);
                dsts := dst :: !dsts
            end)
          (Peer.stage p))
    (peers t);
  (* An unreachable peer must not kill everyone else's round: the
     transport is expected to park-and-retry (Tcp) or retransmit
     (Reliable); anything that still escapes is counted and the batch
     (or message) abandoned. *)
  List.iter
    (fun dst ->
      let items = List.rev !(Hashtbl.find outbox dst) in
      if t.batch then (
        try t.transport.Wdl_net.Transport.send_many ~dst items
        with _ -> t.transport_errors <- t.transport_errors + 1)
      else
        List.iter
          (fun (src, msg) ->
            try t.transport.Wdl_net.Transport.send ~src ~dst msg
            with _ -> t.transport_errors <- t.transport_errors + 1)
          items)
    (List.rev !dsts);
  t.transport.Wdl_net.Transport.advance 1.0;
  List.iter
    (fun p ->
      let inbox =
        try t.transport.Wdl_net.Transport.drain (Peer.name p)
        with _ ->
          t.transport_errors <- t.transport_errors + 1;
          []
      in
      List.iter (Peer.receive p) inbox)
    (peers t);
  !sent

let quiescent t =
  t.transport.Wdl_net.Transport.pending () = 0
  && List.for_all (fun p -> not (Peer.has_work p)) (peers t)

let run ?(max_rounds = 10_000) t =
  let start = t.rounds in
  let rec go () =
    if quiescent t then Ok (t.rounds - start)
    else if t.rounds - start >= max_rounds then
      Error
        (Printf.sprintf "system did not quiesce within %d rounds" max_rounds)
    else begin
      ignore (round t);
      go ()
    end
  in
  go ()

let messages_sent t = (t.transport.Wdl_net.Transport.stats ()).Wdl_net.Netstats.sent
let messages_dropped t = t.dropped
let transport_errors t = t.transport_errors
