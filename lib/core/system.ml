type t = {
  transport : Message.t Wdl_net.Transport.t;
  batch : bool;  (* coalesce each round's outbox per destination *)
  drop_unknown : bool;
  peers : (string, Peer.t) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
  mutable rounds : int;
  mutable dropped : int;  (* messages to peers the system doesn't know *)
  mutable transport_errors : int;  (* exceptions swallowed at send/drain *)
  mutable hooks : (unit -> unit) list;  (* run before each round's stages *)
  round_hist : Wdl_obs.Obs.histogram;
  (* Peer lifecycle: the failure detector's view, the system-level
     event trace, messages parked for destinations believed dead, and
     the cleanup callbacks run when a name is removed (e.g. purging
     reliable-link state via [wire_reliable]). *)
  membership : Membership.t;
  sys_trace : Trace.t;
  dead_letters : (string * Message.t) Queue.t;  (* (dst, message) *)
  dead_letter_capacity : int;
  mutable dead_lettered : int;  (* total parked *)
  mutable dead_letters_dropped : int;  (* overflowed the parking buffer *)
  mutable evictions : int;  (* dead transitions applied *)
  mutable purgers : (string -> unit) list;
}

let create ?transport ?(batch = true) ?drop_unknown ?membership
    ?(dead_letter_capacity = 256) () =
  (* With the default in-process transport a message to an unknown peer
     can never be delivered, so it is dropped; with an explicit
     transport (TCP across processes) unknown peers may live elsewhere
     and everything is sent. *)
  let drop_unknown =
    match drop_unknown with Some b -> b | None -> Option.is_none transport
  in
  let transport =
    match transport with
    | Some tr -> tr
    | None -> Wdl_net.Inmem.create ~sizer:Message.size ()
  in
  let t =
    {
      transport;
      batch;
      drop_unknown;
      peers = Hashtbl.create 8;
      order = [];
      rounds = 0;
      dropped = 0;
      transport_errors = 0;
      hooks = [];
      round_hist =
        Wdl_obs.Obs.histogram ~help:"Wall time of one System.round"
          ~buckets:Wdl_obs.Obs.latency_buckets
          "wdl_system_round_duration_microseconds";
      membership = Membership.create ?config:membership ();
      sys_trace = Trace.create ();
      dead_letters = Queue.create ();
      dead_letter_capacity;
      dead_lettered = 0;
      dead_letters_dropped = 0;
      evictions = 0;
      purgers = [];
    }
  in
  (* Callback counters: sampled at scrape, nothing on the round path.
     A later System replaces the series (last one wins). *)
  Wdl_obs.Obs.on_collect ~help:"Rounds executed" ~kind:`Counter
    "wdl_system_rounds_total" (fun () -> float_of_int t.rounds);
  Wdl_obs.Obs.on_collect ~help:"Messages dropped for unknown peers"
    ~kind:`Counter "wdl_system_messages_dropped_total" (fun () ->
      float_of_int t.dropped);
  Wdl_obs.Obs.on_collect ~help:"Transport exceptions absorbed by the round loop"
    ~kind:`Counter "wdl_system_transport_errors_total" (fun () ->
      float_of_int t.transport_errors);
  Wdl_obs.Obs.on_collect ~help:"Registered peers" ~kind:`Gauge
    "wdl_system_peers" (fun () -> float_of_int (Hashtbl.length t.peers));
  List.iter
    (fun st ->
      Wdl_obs.Obs.on_collect ~help:"Membership view by status"
        ~labels:[ ("status", Membership.status_string st) ]
        ~kind:`Gauge "wdl_sys_members" (fun () ->
          float_of_int (Membership.count t.membership st)))
    [ Membership.Alive; Membership.Suspect; Membership.Dead ];
  Wdl_obs.Obs.on_collect ~help:"Membership status transitions"
    ~kind:`Counter "wdl_sys_member_transitions_total" (fun () ->
      float_of_int (Membership.transitions t.membership));
  Wdl_obs.Obs.on_collect ~help:"Messages parked for dead destinations"
    ~kind:`Counter "wdl_sys_dead_letters_total" (fun () ->
      float_of_int t.dead_lettered);
  Wdl_obs.Obs.on_collect
    ~help:"Dead letters discarded because the parking buffer was full"
    ~kind:`Counter "wdl_sys_dead_letters_dropped_total" (fun () ->
      float_of_int t.dead_letters_dropped);
  Wdl_obs.Obs.on_collect ~help:"Dead letters currently parked" ~kind:`Gauge
    "wdl_sys_dead_letter_queue" (fun () ->
      float_of_int (Queue.length t.dead_letters));
  Wdl_obs.Obs.on_collect ~help:"Dead-peer evictions applied" ~kind:`Counter
    "wdl_sys_evictions_total" (fun () -> float_of_int t.evictions);
  t

let on_round t hook = t.hooks <- t.hooks @ [ hook ]
let peer t name = Hashtbl.find t.peers name
let find_peer t name = Hashtbl.find_opt t.peers name
let peers t = List.rev_map (fun n -> Hashtbl.find t.peers n) t.order
let transport t = t.transport
let rounds t = t.rounds
let trace t = t.sys_trace
let membership_view t = Membership.view t.membership
let membership_status t name = Membership.status t.membership name
let dead_letters t = Queue.length t.dead_letters
let dead_lettered t = t.dead_lettered
let evictions t = t.evictions

(* {1 The queryable membership view}

   Any registered peer that declares an extensional [sys_peers]
   relation gets the membership view materialised into it — one
   [(name, status)] fact per known name — so rules can react to
   failures ("notify me when a friend's peer dies").  Synced on every
   transition and on demand. *)

let sys_peers_rel = "sys_peers"

let declares_sys_peers p =
  Wdl_store.Database.kind (Peer.database p) sys_peers_rel
  = Some Wdl_syntax.Decl.Extensional

let sync_members t =
  let open Wdl_syntax in
  let view = Membership.view t.membership in
  List.iter
    (fun p ->
      if declares_sys_peers p then begin
        let desired =
          List.map
            (fun (name, st) ->
              Fact.make ~rel:sys_peers_rel ~peer:(Peer.name p)
                [ Value.String name;
                  Value.String (Membership.status_string st) ])
            view
        in
        let current = Peer.query p sys_peers_rel in
        List.iter
          (fun f ->
            if not (List.exists (Fact.equal f) desired) then
              ignore (Peer.delete p f))
          current;
        List.iter
          (fun f ->
            if not (List.exists (Fact.equal f) current) then
              ignore (Peer.insert p f))
          desired
      end)
    (peers t)

let flush_dead_letters t name =
  let keep = Queue.create () in
  Queue.iter
    (fun (dst, msg) ->
      if dst = name then begin
        try t.transport.Wdl_net.Transport.send ~src:msg.Message.src ~dst msg
        with _ -> t.transport_errors <- t.transport_errors + 1
      end
      else Queue.push (dst, msg) keep)
    t.dead_letters;
  Queue.clear t.dead_letters;
  Queue.transfer keep t.dead_letters

(* Act on membership transitions.  Death is a transition, not a leak:
   every remaining peer retracts the delegations the dead peer
   installed and drops its cached batch.  Revival (a name heard from
   again, or re-adopted) makes every sender forget its diff-protocol
   state towards the name, so current state is re-announced, and
   replays any parked dead letters. *)
let apply_transitions t changes =
  if changes <> [] then begin
    List.iter
      (fun (name, st) ->
        Trace.record t.sys_trace
          (Trace.Peer_status
             { peer = name; status = Membership.status_string st });
        match st with
        | Membership.Dead ->
          t.evictions <- t.evictions + 1;
          List.iter (fun p -> ignore (Peer.forget_origin p ~src:name)) (peers t)
        | Membership.Alive ->
          List.iter
            (fun p ->
              if Peer.name p <> name then Peer.forget_destination p ~dst:name)
            (peers t);
          flush_dead_letters t name
        | Membership.Suspect -> ())
      changes;
    sync_members t
  end

let adopt_peer t p =
  let name = Peer.name p in
  if Hashtbl.mem t.peers name then
    invalid_arg (Printf.sprintf "System.adopt_peer: peer %s already exists" name);
  (* Any session state parked under this name belongs to a previous
     incarnation; purge it before the newcomer takes over. *)
  List.iter (fun purge -> purge name) t.purgers;
  Hashtbl.replace t.peers name p;
  t.order <- name :: t.order;
  Membership.track t.membership ~round:t.rounds ~registered:true name;
  (match Membership.heard t.membership ~round:t.rounds name with
  | Some tr -> apply_transitions t [ tr ]
  | None -> ());
  (* Rejoin reconciliation, even when the detector never noticed the
     absence: the world may have evicted this peer (its delegations
     retracted elsewhere) and the peer's own snapshot believes its
     delegations are already installed.  Both sides re-announce. *)
  Peer.reset_session p;
  List.iter
    (fun q -> if Peer.name q <> name then Peer.forget_destination q ~dst:name)
    (peers t);
  flush_dead_letters t name

let add_peer t ?strategy ?policy ?indexing ?diff_batches ?incremental ?replan
    ?inbox_capacity ?shed ?domains name =
  if Hashtbl.mem t.peers name then
    invalid_arg (Printf.sprintf "System.add_peer: peer %s already exists" name);
  let p =
    Peer.create ?strategy ?policy ?indexing ?diff_batches ?incremental ?replan
      ?inbox_capacity ?shed ?domains name
  in
  Hashtbl.replace t.peers name p;
  t.order <- name :: t.order;
  Membership.track t.membership ~round:t.rounds ~registered:true name;
  (* A reused name revives its membership entry like a rejoin. *)
  (match Membership.heard t.membership ~round:t.rounds name with
  | Some tr -> apply_transitions t [ tr ]
  | None -> ());
  p

let remove_peer t name =
  if Hashtbl.mem t.peers name then begin
    Hashtbl.remove t.peers name;
    t.order <- List.filter (fun n -> n <> name) t.order;
    Membership.set_registered t.membership name false;
    (* Sender-side cleanup so the name can be reused: every remaining
       peer forgets what it sent there (re-announcing to a future
       incarnation), and purgers drop transport session state (reliable
       windows, dedup counters) keyed under the name. *)
    List.iter (fun p -> Peer.forget_destination p ~dst:name) (peers t);
    List.iter (fun purge -> purge name) t.purgers
  end

let evict_peer t name =
  remove_peer t name;
  Membership.track t.membership ~round:t.rounds name;
  match Membership.mark_dead t.membership ~round:t.rounds name with
  | Some tr -> apply_transitions t [ tr ]
  | None -> ()

let note_link_dead t ~src ~dst =
  Trace.record t.sys_trace (Trace.Link_dead { src; dst });
  Membership.track t.membership ~round:t.rounds dst;
  match Membership.mark_dead t.membership ~round:t.rounds dst with
  | Some tr -> apply_transitions t [ tr ]
  | None -> ()

let wire_reliable t ctl =
  Wdl_net.Reliable.on_dead ctl (fun ~src ~dst -> note_link_dead t ~src ~dst);
  t.purgers <- t.purgers @ [ (fun name -> Wdl_net.Reliable.forget ctl name) ]

let dead_letter t (msg : Message.t) =
  if Queue.length t.dead_letters >= t.dead_letter_capacity then begin
    ignore (Queue.pop t.dead_letters);
    t.dead_letters_dropped <- t.dead_letters_dropped + 1
  end;
  Queue.push (msg.Message.dst, msg) t.dead_letters;
  t.dead_lettered <- t.dead_lettered + 1;
  Trace.record t.sys_trace
    (Trace.Dead_lettered { src = msg.Message.src; dst = msg.Message.dst })

let heartbeat ~src ~dst =
  Message.make ~src ~dst ~stage:0 ~facts:None ~installs:[] ~retracts:[] ()

let round t =
  Wdl_obs.Obs.time t.round_hist @@ fun () ->
  t.rounds <- t.rounds + 1;
  List.iter (fun hook -> hook ()) t.hooks;
  (* Failure detector: refresh in-process peers, demote silent remote
     names, and probe the quiet ones with empty heartbeat messages
     (piggy-backed liveness needs no probes while real traffic flows).
     Probing only makes sense when unknown names are actually sent. *)
  let transitions, probes = Membership.tick t.membership ~round:t.rounds in
  apply_transitions t transitions;
  (if not t.drop_unknown then
     match List.rev t.order with
     | probe_src :: _ ->
       List.iter
         (fun dst ->
           try
             t.transport.Wdl_net.Transport.send ~src:probe_src ~dst
               (heartbeat ~src:probe_src ~dst)
           with _ -> t.transport_errors <- t.transport_errors + 1)
         probes
     | [] -> ());
  let sent = ref 0 in
  (* Stage every peer first, coalescing the round's outbox per
     destination (in first-appearance order): one transport batch per
     peer instead of one wire unit per message. *)
  let outbox : (string, (string * Message.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let dsts = ref [] in
  List.iter
    (fun p ->
      if Peer.has_work p then
        List.iter
          (fun (msg : Message.t) ->
            let dst = msg.Message.dst in
            if t.drop_unknown && not (Hashtbl.mem t.peers dst) then
              t.dropped <- t.dropped + 1
            else begin
              Membership.track t.membership ~round:t.rounds dst;
              if Membership.status t.membership dst = Some Membership.Dead
              then dead_letter t msg
              else begin
                incr sent;
                match Hashtbl.find_opt outbox dst with
                | Some l -> l := (msg.Message.src, msg) :: !l
                | None ->
                  Hashtbl.add outbox dst (ref [ (msg.Message.src, msg) ]);
                  dsts := dst :: !dsts
              end
            end)
          (Peer.stage p))
    (peers t);
  (* An unreachable peer must not kill everyone else's round: the
     transport is expected to park-and-retry (Tcp) or retransmit
     (Reliable); anything that still escapes is counted and the batch
     (or message) abandoned. *)
  List.iter
    (fun dst ->
      let items = List.rev !(Hashtbl.find outbox dst) in
      match items with
      | [ (src, msg) ] when t.batch ->
        (* Size-1 fast path: a singleton group gains nothing from the
           batch frame, so skip the batching bookkeeping entirely. *)
        (try t.transport.Wdl_net.Transport.send ~src ~dst msg
         with _ -> t.transport_errors <- t.transport_errors + 1)
      | _ ->
        if t.batch then (
          try t.transport.Wdl_net.Transport.send_many ~dst items
          with _ -> t.transport_errors <- t.transport_errors + 1)
        else
          List.iter
            (fun (src, msg) ->
              try t.transport.Wdl_net.Transport.send ~src ~dst msg
              with _ -> t.transport_errors <- t.transport_errors + 1)
            items)
    (List.rev !dsts);
  t.transport.Wdl_net.Transport.advance 1.0;
  let revived = ref [] in
  List.iter
    (fun p ->
      let inbox =
        try t.transport.Wdl_net.Transport.drain (Peer.name p)
        with _ ->
          t.transport_errors <- t.transport_errors + 1;
          []
      in
      List.iter
        (fun (msg : Message.t) ->
          (* Every drained message is a piggy-backed heartbeat from its
             source; an empty one is *only* that and is absorbed here,
             never waking the peer's stage loop. *)
          (match
             Membership.heard t.membership ~round:t.rounds msg.Message.src
           with
          | Some tr -> revived := tr :: !revived
          | None -> ());
          if not (Message.is_empty msg) then Peer.receive p msg)
        inbox)
    (peers t);
  apply_transitions t (List.rev !revived);
  !sent

let quiescent t =
  t.transport.Wdl_net.Transport.pending () = 0
  && List.for_all (fun p -> not (Peer.has_work p)) (peers t)

let run ?(max_rounds = 10_000) t =
  let start = t.rounds in
  let rec go () =
    if quiescent t then Ok (t.rounds - start)
    else if t.rounds - start >= max_rounds then
      Error
        (Printf.sprintf "system did not quiesce within %d rounds" max_rounds)
    else begin
      ignore (round t);
      go ()
    end
  in
  go ()

let messages_sent t = (t.transport.Wdl_net.Transport.stats ()).Wdl_net.Netstats.sent
let messages_dropped t = t.dropped
let transport_errors t = t.transport_errors
