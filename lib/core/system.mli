(** A system of peers wired through a transport — the runtime used to
    reproduce the paper's topologies (Fig. 2: Émilien's and Jules'
    laptops plus the sigmod cloud peer).

    Time advances in {e rounds}: in each round every peer that has work
    runs one stage, its messages enter the transport, the clock
    advances by one unit, and deliverable messages land in inboxes.
    Peers remain autonomous — a peer with nothing to do skips the
    round, exactly like an idle laptop. *)

type t

val create :
  ?transport:Message.t Wdl_net.Transport.t ->
  ?batch:bool ->
  ?drop_unknown:bool ->
  unit ->
  t
(** Default transport: {!Wdl_net.Inmem} sized with {!Message.size}.
    [batch] (default [true]) coalesces each round's outbox per
    destination into one [send_many] — the delivery schedule is
    unchanged (everything still lands in the same round; per-stage
    observability is preserved), only the number of wire units drops.
    Set [false] for the per-message ablation. [drop_unknown] controls
    messages to peers this system doesn't host: dropped when using the
    default in-process transport (they could never be delivered), sent
    otherwise (over TCP the peer may live in another process). *)

val add_peer :
  t ->
  ?strategy:Wdl_eval.Fixpoint.strategy ->
  ?policy:Acl.policy ->
  ?indexing:bool ->
  ?diff_batches:bool ->
  ?incremental:bool ->
  string ->
  Peer.t
(** Raises [Invalid_argument] if the name is already taken. All
    optional flags are forwarded to {!Peer.create}. *)

val adopt_peer : t -> Peer.t -> unit
(** Registers an existing peer (e.g. one rebuilt by {!Persist.recover})
    instead of creating a fresh one. Raises [Invalid_argument] if the
    name is taken. *)

val remove_peer : t -> string -> unit
(** Unregisters a peer: it stops staging and stops draining its inbox
    — the system-level half of a crash. Unknown names are ignored.
    Re-register the recovered peer with {!adopt_peer}. *)

val peer : t -> string -> Peer.t
(** Raises [Not_found]. *)

val find_peer : t -> string -> Peer.t option
val peers : t -> Peer.t list
(** In registration order. *)

val transport : t -> Message.t Wdl_net.Transport.t
val rounds : t -> int

val on_round : t -> (unit -> unit) -> unit
(** Registers a hook run at the start of every round, before stages —
    wrappers use this to synchronise with their backing service. *)

val round : t -> int
(** Runs one round; returns the number of messages sent in it. *)

val quiescent : t -> bool
(** No peer has work and no message is in flight. *)

val run : ?max_rounds:int -> t -> (int, string) result
(** Rounds until {!quiescent}; [Ok n] is the number of rounds used.
    Default [max_rounds] is 10_000; exceeding it returns [Error]. *)

val messages_sent : t -> int
(** Transport-level counter since creation. *)

val messages_dropped : t -> int
(** Messages addressed to peers this system does not know. *)

val transport_errors : t -> int
(** Exceptions that escaped the transport during send or drain and
    were swallowed by the round loop (the message or inbox read is
    abandoned; well-behaved transports park and retry internally
    instead, so this stays 0). *)
