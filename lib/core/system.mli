(** A system of peers wired through a transport — the runtime used to
    reproduce the paper's topologies (Fig. 2: Émilien's and Jules'
    laptops plus the sigmod cloud peer).

    Time advances in {e rounds}: in each round every peer that has work
    runs one stage, its messages enter the transport, the clock
    advances by one unit, and deliverable messages land in inboxes.
    Peers remain autonomous — a peer with nothing to do skips the
    round, exactly like an idle laptop. *)

type t

val create :
  ?transport:Message.t Wdl_net.Transport.t ->
  ?batch:bool ->
  ?drop_unknown:bool ->
  ?membership:Membership.config ->
  ?dead_letter_capacity:int ->
  unit ->
  t
(** Default transport: {!Wdl_net.Inmem} sized with {!Message.size}.
    [batch] (default [true]) coalesces each round's outbox per
    destination into one [send_many] — the delivery schedule is
    unchanged (everything still lands in the same round; per-stage
    observability is preserved), only the number of wire units drops;
    singleton groups skip the batch frame entirely. Set [false] for
    the per-message ablation. [drop_unknown] controls messages to
    peers this system doesn't host: dropped when using the default
    in-process transport (they could never be delivered), sent
    otherwise (over TCP the peer may live in another process).

    [membership] configures the failure detector
    ({!Membership.default_config}: detection off — explicit signals
    only). [dead_letter_capacity] (default 256) bounds the buffer
    parking messages addressed to dead destinations; beyond it the
    oldest letter is discarded. *)

val add_peer :
  t ->
  ?strategy:Wdl_eval.Fixpoint.strategy ->
  ?policy:Acl.policy ->
  ?indexing:bool ->
  ?diff_batches:bool ->
  ?incremental:bool ->
  ?replan:bool ->
  ?inbox_capacity:int ->
  ?shed:Peer.shed_policy ->
  ?domains:int ->
  string ->
  Peer.t
(** Raises [Invalid_argument] if the name is already taken. All
    optional flags are forwarded to {!Peer.create}. *)

val adopt_peer : t -> Peer.t -> unit
(** Registers an existing peer (e.g. one rebuilt by {!Persist.recover})
    instead of creating a fresh one, and reconciles the rejoin: stale
    transport session state under the name is purged, the peer's own
    diff-protocol memory is reset (its delegations and batches are
    re-announced — receivers apply them idempotently), every other
    peer re-announces towards it, parked dead letters are replayed,
    and a dead membership entry revives. Raises [Invalid_argument] if
    the name is taken. *)

val remove_peer : t -> string -> unit
(** Unregisters a peer: it stops staging and stops draining its inbox
    — the system-level half of a crash. Unknown names are ignored.
    The name is safe to reuse: remaining peers forget their
    diff-protocol state towards it and purgers (see {!wire_reliable})
    drop its transport session state. Its membership entry remains,
    unregistered — the failure detector (or an explicit
    {!evict_peer}) decides whether the silence means death.
    Re-register the recovered peer with {!adopt_peer}. *)

val evict_peer : t -> string -> unit
(** {!remove_peer} plus an immediate death transition: every remaining
    peer retracts the delegations the evicted peer installed and drops
    its cached batch; future messages to it are dead-lettered. A later
    {!adopt_peer} (or, for remote names, hearing from the peer again)
    revives it and re-announces state both ways. *)

val peer : t -> string -> Peer.t
(** Raises [Not_found]. *)

val find_peer : t -> string -> Peer.t option
val peers : t -> Peer.t list
(** In registration order. *)

val transport : t -> Message.t Wdl_net.Transport.t
val rounds : t -> int

(** {1 Peer lifecycle}

    Liveness is piggy-backed on existing traffic: every drained
    message refreshes its source in the membership view, peers hosted
    here are refreshed every round, and (when
    {!Membership.config}[.probe_every] asks for it) silent remote
    names are probed with empty heartbeat messages — absorbed by the
    receiving system without waking any peer. Any registered peer
    declaring an extensional [sys_peers] relation gets the view
    materialised into it as [(name, status)] facts. *)

val membership_view : t -> (string * Membership.status) list
(** Sorted by name; registered peers plus every name messages were
    addressed to or heard from. *)

val membership_status : t -> string -> Membership.status option

val sync_members : t -> unit
(** Forces the [sys_peers] materialisation (it otherwise happens on
    every membership transition). *)

val wire_reliable : t -> Message.t Wdl_net.Reliable.control -> unit
(** Wires a reliable session layer into the lifecycle: its give-ups
    ({!Wdl_net.Reliable.on_dead}) are traced as [Link_dead] and mark
    the destination dead in the membership view (suspect, for a
    registered — demonstrably alive — peer), and removing a peer
    purges its link state ({!Wdl_net.Reliable.forget}) so the name can
    be reused. *)

val note_link_dead : t -> src:string -> dst:string -> unit
(** The {!wire_reliable} callback, exposed for custom wiring. *)

val evictions : t -> int
(** Death transitions applied (each retracts the dead peer's
    delegations everywhere). *)

val dead_letters : t -> int
(** Messages currently parked for dead destinations (replayed when the
    destination revives; parked letters do not block {!quiescent}). *)

val dead_lettered : t -> int
(** Total messages ever parked. *)

val trace : t -> Trace.t
(** The system-level event ring: [Peer_status], [Link_dead] and
    [Dead_lettered] events land here (peer-level events stay in each
    peer's own trace). *)

val on_round : t -> (unit -> unit) -> unit
(** Registers a hook run at the start of every round, before stages —
    wrappers use this to synchronise with their backing service. *)

val round : t -> int
(** Runs one round; returns the number of messages sent in it. *)

val quiescent : t -> bool
(** No peer has work and no message is in flight. *)

val run : ?max_rounds:int -> t -> (int, string) result
(** Rounds until {!quiescent}; [Ok n] is the number of rounds used.
    Default [max_rounds] is 10_000; exceeding it returns [Error]. *)

val messages_sent : t -> int
(** Transport-level counter since creation. *)

val messages_dropped : t -> int
(** Messages addressed to peers this system does not know. *)

val transport_errors : t -> int
(** Exceptions that escaped the transport during send or drain and
    were swallowed by the round loop (the message or inbox read is
    abandoned; well-behaved transports park and retry internally
    instead, so this stays 0). *)
