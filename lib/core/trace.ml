open Wdl_syntax

type event =
  | Stage_start of { peer : string; stage : int }
  | Stage_end of { peer : string; stage : int; derivations : int; iterations : int }
  | Fact_inserted of { peer : string; fact : Fact.t }
  | Fact_deleted of { peer : string; fact : Fact.t }
  | Message_sent of { msg : Message.t }
  | Message_received of { msg : Message.t }
  | Delegation_installed of { peer : string; src : string; rule : Rule.t }
  | Delegation_pending of { peer : string; src : string; rule : Rule.t }
  | Delegation_retracted of { peer : string; src : string; rule : Rule.t }
  | Delegation_rejected of { peer : string; src : string; rule : Rule.t; reason : string }
  | Rule_added of { peer : string; rule : Rule.t }
  | Rule_removed of { peer : string; rule : Rule.t }
  | Analysis_warning of { peer : string; code : string; message : string }
  | Runtime_errors of { peer : string; errors : Wdl_eval.Runtime_error.t list }
  | Link_dead of { src : string; dst : string }
  | Peer_status of { peer : string; status : string }
  | Inbox_shed of { peer : string; policy : string }
  | Dead_lettered of { src : string; dst : string }
  | Builtin_tick of { peer : string; stage : int; expired : int }

type t = {
  capacity : int;
  mutable events : (float * event) list;  (* (µs timestamp, event), newest first *)
  mutable stored : int;
  mutable total : int;
}

let create ?(capacity = 10_000) () = { capacity; events = []; stored = 0; total = 0 }

let record t e =
  t.total <- t.total + 1;
  if t.stored < t.capacity then begin
    t.events <- (Wdl_obs.Obs.now_us (), e) :: t.events;
    t.stored <- t.stored + 1
  end

let timed_events t = List.rev t.events
let events t = List.rev_map snd t.events
let count t = t.total

let clear t =
  t.events <- [];
  t.stored <- 0;
  t.total <- 0

let find t pred = List.find_opt pred (events t)

let pp_event ppf = function
  | Stage_start { peer; stage } ->
    Format.fprintf ppf "[%s] stage %d begins" peer stage
  | Stage_end { peer; stage; derivations; iterations } ->
    Format.fprintf ppf "[%s] stage %d ends (%d derivations, %d iterations)"
      peer stage derivations iterations
  | Fact_inserted { peer; fact } ->
    Format.fprintf ppf "[%s] + %a" peer Fact.pp fact
  | Fact_deleted { peer; fact } ->
    Format.fprintf ppf "[%s] - %a" peer Fact.pp fact
  | Message_sent { msg } -> Format.fprintf ppf "sent %a" Message.pp msg
  | Message_received { msg } -> Format.fprintf ppf "recv %a" Message.pp msg
  | Delegation_installed { peer; src; rule } ->
    Format.fprintf ppf "[%s] installed from %s: %a" peer src Rule.pp rule
  | Delegation_pending { peer; src; rule } ->
    Format.fprintf ppf "[%s] pending approval from %s: %a" peer src Rule.pp rule
  | Delegation_retracted { peer; src; rule } ->
    Format.fprintf ppf "[%s] retracted from %s: %a" peer src Rule.pp rule
  | Delegation_rejected { peer; src; rule; reason } ->
    Format.fprintf ppf "[%s] rejected from %s (%s): %a" peer src reason Rule.pp
      rule
  | Rule_added { peer; rule } ->
    Format.fprintf ppf "[%s] rule added: %a" peer Rule.pp rule
  | Rule_removed { peer; rule } ->
    Format.fprintf ppf "[%s] rule removed: %a" peer Rule.pp rule
  | Analysis_warning { peer; code; message } ->
    Format.fprintf ppf "[%s] warning[%s]: %s" peer code message
  | Runtime_errors { peer; errors } ->
    Format.fprintf ppf "[%s] %d runtime error(s): %a" peer (List.length errors)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         Wdl_eval.Runtime_error.pp)
      errors
  | Link_dead { src; dst } ->
    Format.fprintf ppf "link %s -> %s given up (dead)" src dst
  | Peer_status { peer; status } ->
    Format.fprintf ppf "[%s] now %s" peer status
  | Inbox_shed { peer; policy } ->
    Format.fprintf ppf "[%s] inbox full: shed one message (%s)" peer policy
  | Dead_lettered { src; dst } ->
    Format.fprintf ppf "dead-lettered %s -> %s (destination dead)" src dst
  | Builtin_tick { peer; stage; expired } ->
    Format.fprintf ppf "[%s] builtin tick at stage %d (%d expired)" peer stage
      expired

(* Chrome trace-event export.  Stage_start/Stage_end become a "B"/"E"
   duration pair on the peer's thread lane; everything else is an
   instant event whose pretty-printed rendering rides in the args. *)
let to_chrome ?(pid = 0) ~tid t =
  List.map
    (fun (ts, ev) ->
      let open Wdl_obs.Chrome_trace in
      match ev with
      | Stage_start { peer; stage } ->
        { name = "stage"; cat = "eval"; ph = "B"; ts; pid; tid;
          args = [ ("peer", peer); ("stage", string_of_int stage) ] }
      | Stage_end { peer; stage; derivations; iterations } ->
        { name = "stage"; cat = "eval"; ph = "E"; ts; pid; tid;
          args =
            [ ("peer", peer); ("stage", string_of_int stage);
              ("derivations", string_of_int derivations);
              ("iterations", string_of_int iterations) ] }
      | ev ->
        let name =
          match ev with
          | Stage_start _ | Stage_end _ -> assert false
          | Fact_inserted _ -> "fact_inserted"
          | Fact_deleted _ -> "fact_deleted"
          | Message_sent _ -> "message_sent"
          | Message_received _ -> "message_received"
          | Delegation_installed _ -> "delegation_installed"
          | Delegation_pending _ -> "delegation_pending"
          | Delegation_retracted _ -> "delegation_retracted"
          | Delegation_rejected _ -> "delegation_rejected"
          | Rule_added _ -> "rule_added"
          | Rule_removed _ -> "rule_removed"
          | Analysis_warning _ -> "analysis_warning"
          | Runtime_errors _ -> "runtime_errors"
          | Link_dead _ -> "link_dead"
          | Peer_status _ -> "peer_status"
          | Inbox_shed _ -> "inbox_shed"
          | Dead_lettered _ -> "dead_lettered"
          | Builtin_tick _ -> "builtin_tick"
        in
        { name; cat = "engine"; ph = "i"; ts; pid; tid;
          args = [ ("detail", Format.asprintf "%a" pp_event ev) ] })
    (timed_events t)
