(** Event trace: the observable history of a peer or a system.

    Used by tests (asserting that a delegation was held pending), by
    the CLI (rendering Fig. 3's notifications) and by benchmarks
    (counting rounds and messages). Bounded: beyond [capacity] events
    only counters advance. *)

open Wdl_syntax

type event =
  | Stage_start of { peer : string; stage : int }
  | Stage_end of { peer : string; stage : int; derivations : int; iterations : int }
  | Fact_inserted of { peer : string; fact : Fact.t }
  | Fact_deleted of { peer : string; fact : Fact.t }
  | Message_sent of { msg : Message.t }
  | Message_received of { msg : Message.t }
  | Delegation_installed of { peer : string; src : string; rule : Rule.t }
  | Delegation_pending of { peer : string; src : string; rule : Rule.t }
  | Delegation_retracted of { peer : string; src : string; rule : Rule.t }
  | Delegation_rejected of { peer : string; src : string; rule : Rule.t; reason : string }
  | Rule_added of { peer : string; rule : Rule.t }
  | Rule_removed of { peer : string; rule : Rule.t }
  | Analysis_warning of { peer : string; code : string; message : string }
  | Runtime_errors of { peer : string; errors : Wdl_eval.Runtime_error.t list }
  | Link_dead of { src : string; dst : string }
      (** a reliable link crossed its give-up threshold *)
  | Peer_status of { peer : string; status : string }
      (** membership transition: ["alive"], ["suspect"] or ["dead"] *)
  | Inbox_shed of { peer : string; policy : string }
      (** a bounded inbox dropped one message under the named policy *)
  | Dead_lettered of { src : string; dst : string }
      (** a message to a dead destination was parked instead of sent *)
  | Builtin_tick of { peer : string; stage : int; expired : int }
      (** a stage-boundary builtin-module tick changed some
          materialization; [expired] tuples were auto-retracted (each
          also traced as [Fact_deleted]) *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 10_000 events. *)

val record : t -> event -> unit
(** Stamps the event with {!Wdl_obs.Obs.now_us}. *)

val events : t -> event list
(** Oldest first; at most [capacity]. *)

val timed_events : t -> (float * event) list
(** Oldest first, with the µs wall-clock timestamp of each [record]. *)

val count : t -> int
(** Total events recorded, including dropped ones. *)

val clear : t -> unit
val find : t -> (event -> bool) -> event option
val pp_event : Format.formatter -> event -> unit

val to_chrome : ?pid:int -> tid:int -> t -> Wdl_obs.Chrome_trace.event list
(** Chrome trace-event rendering: [Stage_start]/[Stage_end] become a
    "B"/"E" duration pair, every other event an instant ("i") carrying
    its {!pp_event} text in [args].  [tid] separates peers into lanes
    in the viewer. *)
