open Wdl_syntax

let header_rel = "header"
let header_peer = "wire"

let one_line = Pp_util.one_line

let origins_rel = "origins"

let encode (m : Message.t) =
  let buf = Buffer.create 512 in
  let facts, nf =
    match m.Message.facts with None -> ([], -1) | Some fs -> (fs, List.length fs)
  in
  let fo = m.Message.fact_origins and io = m.Message.install_origins in
  (* A message without origin metadata encodes as the historical 6-arg
     header, byte for byte, so old receivers (and size-pinned tests)
     see unchanged frames. Origins extend the header with two counts
     and one extra [origins@wire] fact carrying the ids. *)
  let header_args =
    [
      Value.String m.Message.src;
      Value.String m.Message.dst;
      Value.Int m.Message.stage;
      Value.Int nf;
      Value.Int (List.length m.Message.installs);
      Value.Int (List.length m.Message.retracts);
    ]
    @
    if fo = [] && io = [] then []
    else [ Value.Int (List.length fo); Value.Int (List.length io) ]
  in
  Buffer.add_string buf
    (one_line Fact.pp (Fact.make ~rel:header_rel ~peer:header_peer header_args));
  Buffer.add_string buf ";\n";
  if fo <> [] || io <> [] then begin
    Buffer.add_string buf
      (one_line Fact.pp
         (Fact.make ~rel:origins_rel ~peer:header_peer
            (List.map (fun s -> Value.String s) (fo @ io))));
    Buffer.add_string buf ";\n"
  end;
  List.iter
    (fun f ->
      Buffer.add_string buf (one_line Fact.pp f);
      Buffer.add_string buf ";\n")
    facts;
  List.iter
    (fun r ->
      Buffer.add_string buf (one_line Rule.pp r);
      Buffer.add_string buf ";\n")
    (m.Message.installs @ m.Message.retracts);
  Buffer.contents buf

let take_facts n statements =
  let rec go acc n = function
    | rest when n = 0 -> Ok (List.rev acc, rest)
    | Program.Fact f :: rest -> go (f :: acc) (n - 1) rest
    | _ -> Error "expected a fact"
  in
  go [] n statements

let take_rules n statements =
  let rec go acc n = function
    | rest when n = 0 -> Ok (List.rev acc, rest)
    | Program.Rule r :: rest -> go (r :: acc) (n - 1) rest
    | _ -> Error "expected a rule"
  in
  go [] n statements

let ( let* ) = Result.bind

(* Consume one message (header + its counted statements) off the front
   of a parsed statement list — the building block shared by {!decode}
   (exactly one message) and {!unbatch} (a counted run of them). *)
let decode_one statements =
  match statements with
  | Program.Fact header :: rest
    when header.Fact.rel = header_rel && header.Fact.peer = header_peer -> (
    let decode_body ~src ~dst ~stage ~nf ~ni ~nr ~nfo ~nio rest =
      let* fact_origins, install_origins, rest =
        if nfo = 0 && nio = 0 then Ok ([], [], rest)
        else
          match rest with
          | Program.Fact o :: rest
            when o.Fact.rel = origins_rel && o.Fact.peer = header_peer ->
            let* ids =
              List.fold_right
                (fun v acc ->
                  let* acc = acc in
                  match v with
                  | Value.String s -> Ok (s :: acc)
                  | _ -> Error "malformed origins fact")
                o.Fact.args (Ok [])
            in
            if List.length ids <> nfo + nio then
              Error "origins count mismatch"
            else
              let rec split n xs =
                if n = 0 then ([], xs)
                else
                  match xs with
                  | x :: rest ->
                    let a, b = split (n - 1) rest in
                    (x :: a, b)
                  | [] -> ([], [])
              in
              let fo, io = split nfo ids in
              Ok (fo, io, rest)
          | _ -> Error "missing origins fact"
      in
      let* facts, rest =
        if nf < 0 then Ok ([], rest)
        else take_facts nf rest
      in
      let* installs, rest = take_rules ni rest in
      let* retracts, rest = take_rules nr rest in
      Ok
        ( Message.make ~src ~dst ~stage
            ~facts:(if nf < 0 then None else Some facts)
            ~installs ~retracts ~fact_origins ~install_origins (),
          rest )
    in
    match header.Fact.args with
    | [ Value.String src; Value.String dst; Value.Int stage; Value.Int nf;
        Value.Int ni; Value.Int nr ] ->
      decode_body ~src ~dst ~stage ~nf ~ni ~nr ~nfo:0 ~nio:0 rest
    | [ Value.String src; Value.String dst; Value.Int stage; Value.Int nf;
        Value.Int ni; Value.Int nr; Value.Int nfo; Value.Int nio ] ->
      decode_body ~src ~dst ~stage ~nf ~ni ~nr ~nfo ~nio rest
    | _ -> Error "malformed wire header")
  | _ -> Error "missing wire header"

let decode text =
  let* program = Parser.program text in
  let* m, rest = decode_one program in
  if rest <> [] then Error "trailing statements in frame" else Ok m

let batch_rel = "batch"
let batch_version = 1

let batch msgs =
  match msgs with
  | [ m ] ->
    (* A singleton rides as a plain single-message frame, so a new
       sender stays readable by an old receiver. *)
    encode m
  | _ ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (one_line Fact.pp
         (Fact.make ~rel:batch_rel ~peer:header_peer
            [ Value.Int batch_version; Value.Int (List.length msgs) ]));
    Buffer.add_string buf ";\n";
    List.iter (fun m -> Buffer.add_string buf (encode m)) msgs;
    Buffer.contents buf

let unbatch text =
  let* program = Parser.program text in
  match program with
  | Program.Fact b :: rest
    when b.Fact.rel = batch_rel && b.Fact.peer = header_peer -> (
    match b.Fact.args with
    | [ Value.Int version; Value.Int n ] ->
      if version <> batch_version then
        Error (Printf.sprintf "unsupported batch version %d" version)
      else
        let rec go acc n rest =
          if n = 0 then
            if rest = [] then Ok (List.rev acc)
            else Error "trailing statements in batch"
          else
            let* m, rest = decode_one rest in
            go (m :: acc) (n - 1) rest
        in
        go [] n rest
    | _ -> Error "malformed batch header")
  | _ ->
    (* Old format: a bare single-message frame. *)
    let* m, rest = decode_one program in
    if rest <> [] then Error "trailing statements in frame" else Ok [ m ]

let envelope_rel = "envelope"

let encode_envelope (e : Message.t Wdl_net.Reliable.envelope) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (one_line Fact.pp
       (Fact.make ~rel:envelope_rel ~peer:header_peer
          [
            Value.String e.Wdl_net.Reliable.env_src;
            Value.Int e.Wdl_net.Reliable.env_seq;
            Value.Int e.Wdl_net.Reliable.env_ack;
            Value.Bool (Option.is_some e.Wdl_net.Reliable.env_payload);
          ]));
  Buffer.add_string buf ";\n";
  (match e.Wdl_net.Reliable.env_payload with
  | Some m -> Buffer.add_string buf (encode m)
  | None -> ());
  Buffer.contents buf

let decode_envelope text =
  match String.index_opt text '\n' with
  | None -> Error "missing envelope header"
  | Some i -> (
    let first = String.sub text 0 i in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    let* header = Parser.program first in
    match header with
    | [ Program.Fact f ]
      when f.Fact.rel = envelope_rel && f.Fact.peer = header_peer -> (
      match f.Fact.args with
      | [ Value.String src; Value.Int seq; Value.Int ack; Value.Bool has ] ->
        let* payload =
          if has then Result.map Option.some (decode rest)
          else if String.trim rest = "" then Ok None
          else Error "trailing statements after a pure ack"
        in
        Ok
          {
            Wdl_net.Reliable.env_src = src;
            env_seq = seq;
            env_ack = ack;
            env_payload = payload;
          }
      | _ -> Error "malformed envelope header")
    | _ -> Error "missing envelope header")

let transport (bytes : string Wdl_net.Transport.t) =
  let batch_size = Wdl_net.Netstats.batch_hist ~transport:"wire" () in
  {
    Wdl_net.Transport.send =
      (fun ~src ~dst msg -> bytes.Wdl_net.Transport.send ~src ~dst (encode msg));
    send_many =
      (fun ~dst items ->
        (* The whole round's worth for one destination becomes ONE
           frame (a batch envelope); the byte transport sees a single
           send so connection reuse and one-write delivery apply.  The
           coalescing happens here, so the batch is counted here — into
           the byte transport's live stats record. *)
        match items with
        | [] -> ()
        | (src0, _) :: _ ->
          let s = bytes.Wdl_net.Transport.stats () in
          s.Wdl_net.Netstats.batches <- s.Wdl_net.Netstats.batches + 1;
          Wdl_obs.Obs.observe batch_size (float_of_int (List.length items));
          bytes.Wdl_net.Transport.send ~src:src0 ~dst
            (batch (List.map snd items)));
    drain =
      (fun name ->
        (* unbatch accepts both batch frames and old single-message
           frames, so mixed-version traffic drains uniformly. *)
        List.concat_map
          (fun frame ->
            match unbatch frame with Ok ms -> ms | Error _ -> [])
          (bytes.Wdl_net.Transport.drain name));
    pending = bytes.Wdl_net.Transport.pending;
    advance = bytes.Wdl_net.Transport.advance;
    now = bytes.Wdl_net.Transport.now;
    stats = bytes.Wdl_net.Transport.stats;
  }

let envelope_transport (bytes : string Wdl_net.Transport.t) =
  {
    Wdl_net.Transport.send =
      (fun ~src ~dst env ->
        bytes.Wdl_net.Transport.send ~src ~dst (encode_envelope env));
    send_many =
      (fun ~dst items ->
        (* Each envelope keeps its own frame (it owns a sequence
           number), but the run of frames is handed down as one batch —
           over {!Wdl_net.Tcp} that is one write on one connection. *)
        bytes.Wdl_net.Transport.send_many ~dst
          (List.map (fun (src, e) -> (src, encode_envelope e)) items));
    drain =
      (fun name ->
        List.filter_map
          (fun frame ->
            match decode_envelope frame with Ok e -> Some e | Error _ -> None)
          (bytes.Wdl_net.Transport.drain name));
    pending = bytes.Wdl_net.Transport.pending;
    advance = bytes.Wdl_net.Transport.advance;
    now = bytes.Wdl_net.Transport.now;
    stats = bytes.Wdl_net.Transport.stats;
  }
