(** Wire codec: {!Message} values as self-describing text frames.

    A frame is itself a parseable WebdamLog program: a [header@wire]
    fact carrying source, destination, stage and section counts,
    followed by the fact batch and the delegation install/retract
    rules in order. Re-using the language's own reader/printer keeps
    the codec total on every message the engine can produce.

    {!transport} lifts any byte transport (typically
    {!Wdl_net.Tcp}) into a {!Message} transport. *)

val encode : Message.t -> string
val decode : string -> (Message.t, string) result

(** {1 Batch frames}

    Everything queued for one destination in a round can ride as one
    frame: a [batch@wire(version, count)] fact followed by [count]
    ordinary message sections. The version tag keeps the format
    evolvable; a singleton batch is emitted as a plain single-message
    frame, and {!unbatch} accepts both shapes — so old and new
    processes interoperate in either direction. *)

val batch : Message.t list -> string

val unbatch : string -> (Message.t list, string) result
(** Inverse of {!batch}; a bare single-message frame (the pre-batching
    format) decodes as a singleton list. *)

val transport : string Wdl_net.Transport.t -> Message.t Wdl_net.Transport.t
(** Frames that fail to decode are dropped (counted nowhere: a
    malformed frame from the outside world must not kill the peer).
    [send_many] coalesces the batch into one {!batch} frame — one byte
    send, one wire unit. *)

(** {1 Reliable-session envelopes}

    {!Wdl_net.Reliable} stamps messages with sequence/ack metadata;
    these frames carry it as one extra [envelope@wire] fact line ahead
    of the normal message frame (absent for a pure ack), keeping the
    whole envelope parseable WebdamLog text. *)

val encode_envelope : Message.t Wdl_net.Reliable.envelope -> string
val decode_envelope : string -> (Message.t Wdl_net.Reliable.envelope, string) result

val envelope_transport :
  string Wdl_net.Transport.t ->
  Message.t Wdl_net.Reliable.envelope Wdl_net.Transport.t
(** Lifts a byte transport (typically {!Wdl_net.Tcp}) to envelope
    frames, ready for {!Wdl_net.Reliable.wrap}:
    [Reliable.wrap (Wire.envelope_transport tcp)] is an exactly-once
    [Message.t] transport over real sockets. Undecodable frames are
    dropped. *)
