(* Bound before [open Wdl_syntax], which has its own [Program] (the
   parsed-statement list); this one is the compiled-plan cache. *)
module Prog = Program

open Wdl_syntax
open Wdl_store

type strategy = Seminaive | Naive

type derivation = {
  fact : Fact.t;
  rule : Rule.t;
  premises : Fact.t list;
}

type result = {
  deduced : Fact.t list;
  induced : Fact.t list;
  messages : Fact.t list;
  suspensions : (string * Rule.t) list;
  origins : (string * Rule.t) list;
  susp_sources : ((string * Rule.t) * Rule.t) list;
  errors : Runtime_error.t list;
  iterations : int;
  derivations : int;
  provenance : derivation list;
}

module Fact_tbl = Hashtbl.Make (struct
  type t = Fact.t

  let equal = Fact.equal
  let hash = Fact.hash
end)

(* Hot-path key: derived heads stay (rel, peer, tuple) triples; Fact
   values (with their lists) are only built when assembling results. *)
module Head_key = struct
  type t = { rel : string; peer : string; tuple : Tuple.t }

  let equal a b =
    String.equal a.rel b.rel && String.equal a.peer b.peer
    && Tuple.equal a.tuple b.tuple

  let hash k =
    (Hashtbl.hash k.rel * 31) + (Hashtbl.hash k.peer * 17) + Tuple.hash k.tuple

  let to_fact k = Fact.make ~rel:k.rel ~peer:k.peer (Tuple.to_list k.tuple)
end

module Head_tbl = Hashtbl.Make (Head_key)

module Susp_tbl = Hashtbl.Make (struct
  type t = string * Rule.t

  let equal (t1, r1) (t2, r2) = String.equal t1 t2 && Rule.equal r1 r2
  let hash x = Hashtbl.hash_param 64 128 x
end)

(* Evaluation state shared across a whole run. *)
type state = {
  self : string;
  db : Database.t;
  (* delta.(rel) = intensional tuples new as of the previous iteration *)
  mutable delta : (string, Relation.t) Hashtbl.t;
  mutable delta_next : (string, Relation.t) Hashtbl.t;
  deduced : unit Head_tbl.t;
  induced : unit Head_tbl.t;
  messages : unit Head_tbl.t;
  suspensions : unit Susp_tbl.t;
  (* Origin tagging for the knowledge-flow oracle: which source rule
     (as written) produced each remote delivery / delegation. *)
  origins : unit Susp_tbl.t;  (* key = (dst peer, source rule) *)
  susp_src : Rule.t Susp_tbl.t;  (* (dst, residual) -> source rule *)
  provenance : derivation Fact_tbl.t option;
  mutable errors : Runtime_error.t list;
  mutable error_count : int;
  mutable derivations : int;
  mutable iterations : int;
  schedule : bool;  (* skip (plan, pos) pairs whose delta is absent *)
  ro : bool;
      (* read-only store discipline: this state is a parallel worker,
         shared db relations must be probed without index builds *)
  delta_hist : Wdl_obs.Obs.histogram;
  skipped_ctr : Wdl_obs.Obs.counter;
}

let max_errors = 1000

let report st e =
  st.error_count <- st.error_count + 1;
  if st.error_count <= max_errors then st.errors <- e :: st.errors

let delta_add st rel tuple =
  let r =
    match Hashtbl.find_opt st.delta_next rel with
    | Some r -> r
    | None ->
      (* Deltas are discarded after one iteration: auto-building
         binding-pattern indexes on them is pure waste. They share the
         database's intern pool so delta probes stay id comparisons
         and never re-intern values the store already holds. *)
      let r =
        Relation.create ~pool:(Database.pool st.db) ~indexing:false
          ~arity:(Tuple.arity tuple) ()
      in
      Hashtbl.add st.delta_next rel r;
      r
  in
  ignore (Relation.insert r tuple)

(* [src] is the rule as the user wrote it. When two written rules
   produce the same residual for the same target, keep the smallest by
   [Rule.compare] — an order-independent tie-break, so the sequential
   and parallel engines attribute identically. *)
let suspend ?src st target rule =
  Susp_tbl.replace st.suspensions (target, rule) ();
  match src with
  | None -> ()
  | Some s -> (
    match Susp_tbl.find_opt st.susp_src (target, rule) with
    | Some s0 when Rule.compare s0 s <= 0 -> ()
    | Some _ | None -> Susp_tbl.replace st.susp_src (target, rule) s)

(* The relations an atom position reads, given the source: the full
   store or the previous iteration's delta. *)
let readable_relations st ~use_delta ~rel_name ~arity =
  if use_delta then
    match rel_name with
    | Some c -> (
      match Hashtbl.find_opt st.delta c with
      | Some r when Relation.arity r = arity -> [ (c, r) ]
      | Some _ | None -> [])
    | None ->
      Hashtbl.fold
        (fun name r acc -> if Relation.arity r = arity then (name, r) :: acc else acc)
        st.delta []
  else
    match rel_name with
    | Some c -> (
      match Database.find st.db c with
      | Some info when info.Database.arity = arity -> [ (c, info.Database.data) ]
      | Some _ -> []
      | None -> [])
    | None ->
      List.filter_map
        (fun (info : Database.info) ->
          if info.arity = arity then Some (info.name, info.data) else None)
        (Database.relations st.db)

(* Provenance: instantiate the plan's positive body atoms. *)
let premises_of_env (plan : Plan.t) env =
  List.filter_map
    (fun (rel, peer, args) ->
      let name = function
        | Plan.Fixed n -> Some n
        | Plan.Name_slot s -> Option.bind env.(s) Value.as_name
      in
      match name rel, name peer, Plan.instantiate_args args env with
      | Some rel, Some peer, Some values ->
        Some (Fact.make ~rel ~peer (Array.to_list values))
      | _, _, _ -> None)
    plan.Plan.premise_patterns

(* Route a ground, locally produced head. [prov] lazily builds the
   provenance entry when a new view fact is stored. *)
let dispatch_head ?src st ~prov ~rel ~peer (tuple : Tuple.t) =
  st.derivations <- st.derivations + 1;
  if not (String.equal peer st.self) then begin
    Head_tbl.replace st.messages { Head_key.rel; peer; tuple } ();
    match src with
    | Some r -> Susp_tbl.replace st.origins (peer, r) ()
    | None -> ()
  end
  else
    match Database.ensure st.db ~rel ~arity:(Tuple.arity tuple) with
    | Error e ->
      report st
        (Runtime_error.Store_error
           { rel; message = Format.asprintf "%a" Database.pp_error e })
    | Ok info -> (
      match info.Database.kind with
      | Decl.Extensional ->
        Head_tbl.replace st.induced { Head_key.rel; peer; tuple } ()
      | Decl.Intensional ->
        if Relation.insert info.Database.data tuple then begin
          Head_tbl.replace st.deduced { Head_key.rel; peer; tuple } ();
          delta_add st rel tuple;
          match st.provenance with
          | Some tbl ->
            let fact = Fact.make ~rel ~peer (Tuple.to_list tuple) in
            Fact_tbl.replace tbl fact (prov fact)
          | None -> ()
        end)

(* Resolve a compiled name reference under the environment. *)
type resolved =
  | RName of string
  | RUnbound of string  (* the variable's name *)
  | RBad of Value.t

let resolve plan env = function
  | Plan.Fixed n -> RName n
  | Plan.Name_slot s -> (
    match env.(s) with
    | None -> RUnbound plan.Plan.slot_names.(s)
    | Some v -> (
      match Value.as_name v with Some n -> RName n | None -> RBad v))

(* Residual rule shipped at a delegation point: the instantiated head
   plus the substituted body suffix starting at [pos]. *)
let residual_rule (plan : Plan.t) env pos =
  let sigma = Plan.subst_of_env plan env in
  let body =
    List.filteri (fun i _ -> i >= pos) plan.Plan.rule.Rule.body
    |> List.map (Literal.subst sigma)
  in
  Rule.make ~head:(Atom.subst sigma plan.Plan.rule.Rule.head) ~body

let head_key st (plan : Plan.t) env =
  match
    ( resolve plan env plan.Plan.head_rel,
      resolve plan env plan.Plan.head_peer,
      Plan.instantiate_args plan.Plan.head_args env )
  with
  | RName rel, RName peer, Some values -> Some (rel, peer, values)
  | RBad v, _, _ | _, RBad v, _ ->
    report st (Runtime_error.Not_a_name { value = v; atom = plan.Plan.rule.Rule.head });
    None
  | RUnbound x, _, _ | _, RUnbound x, _ ->
    report st (Runtime_error.Unbound_at_eval { var = x; where = "rule head" });
    None
  | RName _, RName _, None ->
    report st
      (Runtime_error.Unbound_at_eval
         { var = String.concat "," (Atom.vars plan.Plan.rule.Rule.head);
           where = "rule head" });
    None

(* Execute a compiled plan. [emit env] is called on every complete
   valuation; [delta_pos] marks the literal that reads the delta. *)
let exec_plan st (plan : Plan.t) ~delta_pos ~emit =
  let env = Array.make (max plan.Plan.nslots 1) None in
  let slot_names = plan.Plan.slot_names in
  let rec step steps =
    match steps with
    | [] -> emit env
    | Plan.Cmp (op, e1, e2, lit) :: rest -> (
      match
        Plan.eval_cexpr e1 env ~slot_names, Plan.eval_cexpr e2 env ~slot_names
      with
      | Ok v1, Ok v2 -> if Literal.eval_cmp op v1 v2 then step rest
      | Error e, _ | _, Error e ->
        report st (Runtime_error.Expr_failed { error = e; literal = lit }))
    | Plan.Assign (s, e, lit) :: rest -> (
      match Plan.eval_cexpr e env ~slot_names with
      | Error e -> report st (Runtime_error.Expr_failed { error = e; literal = lit })
      | Ok v -> (
        match env.(s) with
        | Some v' -> if Value.equal v v' then step rest
        | None ->
          env.(s) <- Some v;
          step rest;
          env.(s) <- None))
    | Plan.Match m :: rest ->
      if m.Plan.neg then (if neg_holds m then step rest) else match_pos m rest

  and neg_holds (m : Plan.match_step) =
    match resolve plan env m.Plan.peer with
    | RBad v ->
      report st (Runtime_error.Not_a_name { value = v; atom = m.Plan.atom });
      false
    | RUnbound x ->
      report st (Runtime_error.Unbound_at_eval { var = x; where = "negated atom" });
      false
    | RName p when p <> st.self ->
      report st (Runtime_error.Remote_negation { peer = p; atom = m.Plan.atom });
      false
    | RName _ -> (
      match resolve plan env m.Plan.rel with
      | RBad v ->
        report st (Runtime_error.Not_a_name { value = v; atom = m.Plan.atom });
        false
      | RUnbound x ->
        report st
          (Runtime_error.Unbound_at_eval { var = x; where = "negated atom" });
        false
      | RName c -> (
        match Plan.instantiate_args m.Plan.args env with
        | None ->
          report st
            (Runtime_error.Unbound_at_eval { var = "?"; where = "negated atom" });
          false
        | Some values -> (
          match Database.find st.db c with
          | None -> true
          | Some info ->
            info.Database.arity <> Array.length values
            || not (Relation.mem info.Database.data values))))

  and match_pos (m : Plan.match_step) rest =
    match resolve plan env m.Plan.peer with
    | RBad v -> report st (Runtime_error.Not_a_name { value = v; atom = m.Plan.atom })
    | RUnbound x ->
      report st (Runtime_error.Unbound_at_eval { var = x; where = "peer position" })
    | RName p when p <> st.self ->
      (* Delegation boundary: ship the residual rule to [p]. *)
      suspend ~src:plan.Plan.source st p (residual_rule plan env m.Plan.pos)
    | RName _ ->
      let use_delta = delta_pos = Some m.Plan.pos in
      let arity = Array.length m.Plan.args in
      (* The binding pattern is static (plan.bpos/bsrc): fill the flat
         probe key from constants and bound slots, then let the store
         walk the matching tuples — no per-call association list, no
         per-tuple trail. *)
      let np = Array.length m.Plan.bpos in
      let key = Array.make np (Value.Int 0) in
      (* [shared] sources live in the database and may be probed by
         several worker domains at once; a worker state ([st.ro])
         must use the read-only probe. Delta sources are private to
         this state, so the normal path is always safe there. *)
      let run_source ~shared relation =
        let lookup =
          if st.ro && shared then Relation.lookup_key_ro
          else Relation.lookup_key
        in
        for k = 0 to np - 1 do
          match m.Plan.bsrc.(k) with
          | Plan.Const v -> key.(k) <- v
          | Plan.Slot s -> (
            match env.(s) with
            | Some v -> key.(k) <- v
            | None ->
              (* Statically bound: a linear plan binds deterministically. *)
              assert false)
        done;
        lookup relation m.Plan.bpos key (fun tuple ->
            let binds = m.Plan.out_binds in
            let nb = Array.length binds in
            for j = 0 to nb - 1 do
              let i, s = binds.(j) in
              env.(s) <- Some tuple.(i)
            done;
            let checks = m.Plan.out_checks in
            let nc = Array.length checks in
            let ok = ref true in
            for j = 0 to nc - 1 do
              let i, s = checks.(j) in
              match env.(s) with
              | Some v -> if not (Value.equal v tuple.(i)) then ok := false
              | None -> assert false
            done;
            if !ok then step rest;
            for j = 0 to nb - 1 do
              env.(snd binds.(j)) <- None
            done)
      in
      (match resolve plan env m.Plan.rel with
      | RBad v ->
        report st (Runtime_error.Not_a_name { value = v; atom = m.Plan.atom })
      | RName c ->
        (* Fixed (or bound) relation name: exactly one source, looked
           up directly — no intermediate list. *)
        if use_delta then (
          match Hashtbl.find_opt st.delta c with
          | Some r when Relation.arity r = arity -> run_source ~shared:false r
          | Some _ | None -> ())
        else (
          match Database.find st.db c with
          | Some info when info.Database.arity = arity ->
            run_source ~shared:true info.Database.data
          | Some _ | None -> ())
      | RUnbound _ ->
        let enum_slot =
          match m.Plan.rel with Plan.Name_slot s -> Some s | Plan.Fixed _ -> None
        in
        List.iter
          (fun (name, relation) ->
            (match enum_slot with
            | Some s -> env.(s) <- Some (Value.String name)
            | None -> ());
            run_source ~shared:(not use_delta) relation;
            match enum_slot with Some s -> env.(s) <- None | None -> ())
          (readable_relations st ~use_delta ~rel_name:None ~arity))
  in
  step plan.Plan.steps

let emit_rule st (plan : Plan.t) env =
  match head_key st plan env with
  | None -> ()
  | Some (rel, peer, tuple) ->
    (* Provenance names the rule as the user wrote it, not the
       planner's reordered body. *)
    let prov fact =
      { fact; rule = plan.Plan.source; premises = premises_of_env plan env }
    in
    dispatch_head ~src:plan.Plan.source st ~prov ~rel ~peer tuple

let eval_plan st ~delta_pos (plan : Plan.t) =
  exec_plan st plan ~delta_pos ~emit:(fun env -> emit_rule st plan env)

(* {1 Aggregate rules} *)

let statically_local ~self (rule : Rule.t) =
  List.for_all
    (fun lit ->
      match lit with
      | Literal.Pos a | Literal.Neg a -> Term.as_name a.Atom.peer = Some self
      | Literal.Cmp _ | Literal.Assign _ -> true)
    rule.Rule.body

let eval_agg_plan st (plan : Plan.t) =
  let rule = plan.Plan.rule in
  if not (statically_local ~self:st.self rule) then
    report st
      (Runtime_error.Store_error
         {
           rel = "<aggregate rule>";
           message =
             "aggregate rules must be entirely local (every body atom's peer \
              must be this peer)";
         })
  else begin
    (* Collect distinct complete valuations as environment snapshots. *)
    let sigmas = Hashtbl.create 64 in
    exec_plan st plan ~delta_pos:None ~emit:(fun env ->
        let snapshot = Array.copy env in
        Hashtbl.replace sigmas snapshot ());
    let groups = Hashtbl.create 16 in
    Hashtbl.iter
      (fun env () ->
        match
          ( resolve plan env plan.Plan.head_rel,
            resolve plan env plan.Plan.head_peer )
        with
        | RName rel, RName peer ->
          (* key_args: Some v at grouping positions, None at aggregate
             positions. Safety guarantees grouping slots are bound. *)
          let valid = ref true in
          let key_args =
            Array.to_list
              (Array.mapi
                 (fun i a ->
                   if List.mem_assoc i rule.Rule.aggs then None
                   else
                     match a with
                     | Plan.Const v -> Some v
                     | Plan.Slot s ->
                       (match env.(s) with None -> valid := false | Some _ -> ());
                       env.(s))
                 plan.Plan.head_args)
          in
          if !valid then begin
            let key = (rel, peer, key_args) in
            let agg_values =
              List.map
                (fun (i, (_ : Aggregate.spec)) ->
                  let v =
                    match plan.Plan.head_args.(i) with
                    | Plan.Slot s -> env.(s)
                    | Plan.Const v -> Some v
                  in
                  (i, v))
                rule.Rule.aggs
            in
            match Hashtbl.find_opt groups key with
            | None -> Hashtbl.replace groups key (ref [ agg_values ])
            | Some l -> l := agg_values :: !l
          end
          else
            report st
              (Runtime_error.Unbound_at_eval
                 { var = "?"; where = "aggregate head" })
        | _, _ ->
          report st
            (Runtime_error.Unbound_at_eval
               { var = "?"; where = "aggregate head" }))
      sigmas;
    Hashtbl.iter
      (fun (rel, peer, key_args) collected ->
        let computed =
          List.fold_left
            (fun acc (i, (spec : Aggregate.spec)) ->
              match acc with
              | Error _ as e -> e
              | Ok assoc -> (
                let values =
                  List.filter_map
                    (fun row ->
                      List.find_map (fun (j, v) -> if i = j then v else None) row)
                    !collected
                in
                match Aggregate.apply spec.Aggregate.op values with
                | Ok v -> Ok ((i, v) :: assoc)
                | Error msg -> Error msg))
            (Ok []) rule.Rule.aggs
        in
        match computed with
        | Error msg ->
          report st
            (Runtime_error.Store_error { rel = "<aggregate>"; message = msg })
        | Ok assoc ->
          let args =
            List.mapi
              (fun i slot ->
                match slot with
                | Some v -> v
                | None -> List.assoc i assoc)
              key_args
          in
          let prov fact = { fact; rule; premises = [] } in
          dispatch_head ~src:plan.Plan.source st ~prov ~rel ~peer
            (Tuple.of_list args))
      groups
  end

(* {1 Strata} *)

(* Positions of positive atoms in a plan (candidate delta spots). *)
let pos_atom_positions (plan : Plan.t) =
  List.filter_map
    (function
      | Plan.Match { neg = false; pos; _ } -> Some pos
      | Plan.Match _ | Plan.Cmp _ | Plan.Assign _ -> None)
    plan.Plan.steps

(* One semi-naive iteration over the stratum's activations. With
   scheduling on, only (plan, pos) pairs whose delta relation received
   tuples last iteration execute — running the others costs the full
   enumeration of the body prefix before [pos] just to find an empty
   delta. Wildcard positions (relation variables) may read any delta,
   so they always run. *)
let seminaive_iteration st (stratum : Prog.stratum) =
  if not st.schedule then
    List.iter
      (fun p ->
        List.iter
          (fun pos -> eval_plan st ~delta_pos:(Some pos) p)
          (pos_atom_positions p))
      stratum.Prog.plans
  else begin
    let executed = ref 0 in
    Hashtbl.iter
      (fun name _delta ->
        match Hashtbl.find_opt stratum.Prog.by_rel name with
        | None -> ()
        | Some acts ->
          List.iter
            (fun (a : Prog.activation) ->
              incr executed;
              eval_plan st ~delta_pos:(Some a.Prog.pos) a.Prog.plan)
            acts)
      st.delta;
    List.iter
      (fun (a : Prog.activation) ->
        incr executed;
        eval_plan st ~delta_pos:(Some a.Prog.pos) a.Prog.plan)
      stratum.Prog.wildcard;
    let skipped = stratum.Prog.n_activations - !executed in
    if skipped > 0 then Wdl_obs.Obs.inc ~by:skipped st.skipped_ctr
  end

(* {1 Parallel semi-naive iterations}

   Work unit: the same (plan, delta position) activations the
   sequential scheduler runs, with each worker's view of the delta
   restricted to the shards it owns (shard = hash of the interned
   first column; worker = shard mod domains — the dynamic-data-exchange
   scheme). Workers never touch the database or the observability
   registry: they evaluate against a frozen snapshot and park derived
   heads in per-worker outboxes; the master replays every outbox
   through [dispatch_head] at the merge barrier in canonical order
   (worker 0 first, push order within a worker), so the database,
   delta, journal and trace contents are independent of thread timing.

   Relative to the sequential engine the only semantic difference is
   mid-iteration visibility: a head derived by an earlier activation
   of the same iteration becomes probe-visible in the *next* iteration
   rather than the current one. The fixpoint (and every result set) is
   identical; programs where a rule's non-delta atom reads a relation
   written in the same stratum may take extra iterations to converge.
   Single-recursive-atom programs (tc, the album views) keep identical
   iteration and derivation counts, which is what keeps trace events
   byte-identical on the benchmark workloads. *)

let par_runs_total = ref 0

type par = {
  p_domains : int;
  p_shards : int;
  p_workers : state array;  (* p_workers.(w) drives worker w *)
  p_outboxes : Shard.Outbox.t array;
  p_busy : float array;  (* microseconds busy, by worker, per iteration *)
  p_barrier_hist : Wdl_obs.Obs.histogram;
  p_util_hist : Wdl_obs.Obs.histogram;
  p_rerouted : Wdl_obs.Obs.counter;
  p_iters : Wdl_obs.Obs.counter;
}

let par_metrics ~self =
  let peer_labels = [ ("peer", self) ] in
  ( Wdl_obs.Obs.histogram ~labels:peer_labels
      ~help:
        "Master wait at the parallel fixpoint merge barrier (time \
         between the master finishing its own shard work and the \
         slowest worker finishing)"
      ~buckets:Wdl_obs.Obs.latency_buckets "wdl_par_barrier_wait_microseconds",
    Wdl_obs.Obs.histogram ~labels:peer_labels
      ~help:
        "Domain utilization per parallel iteration: summed worker \
         busy time over (domains * wall time), 0..1"
      ~buckets:[| 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 |]
      "wdl_par_domain_utilization",
    Wdl_obs.Obs.counter ~labels:peer_labels
      ~help:
        "Derived tuples whose owning shard belongs to a different \
         worker than the one that derived them (crossed the exchange \
         at the merge barrier)"
      "wdl_par_rerouted_tuples_total",
    Wdl_obs.Obs.counter ~labels:peer_labels
      ~help:"Semi-naive iterations executed by the parallel engine"
      "wdl_par_iterations_total" )

let worker_state (st : state) =
  {
    self = st.self;
    db = st.db;
    delta = Hashtbl.create 1;
    delta_next = Hashtbl.create 1;
    (* Workers route heads through their outbox, not these tables;
       they exist only to satisfy the state shape. *)
    deduced = Head_tbl.create 1;
    induced = Head_tbl.create 1;
    messages = Head_tbl.create 1;
    suspensions = Susp_tbl.create 8;
    origins = Susp_tbl.create 8;
    susp_src = Susp_tbl.create 8;
    provenance = None;
    errors = [];
    error_count = 0;
    derivations = 0;
    iterations = 0;
    schedule = st.schedule;
    ro = true;
    delta_hist = st.delta_hist;
    skipped_ctr = st.skipped_ctr;
  }

let make_par ~domains ~shards st =
  let barrier, util, rerouted, iters = par_metrics ~self:st.self in
  {
    p_domains = domains;
    p_shards = shards;
    p_workers = Array.init domains (fun _ -> worker_state st);
    p_outboxes = Array.init domains (fun _ -> Shard.Outbox.create ());
    p_busy = Array.make domains 0.;
    p_barrier_hist = barrier;
    p_util_hist = util;
    p_rerouted = rerouted;
    p_iters = iters;
  }

(* The activation list for this iteration, in a canonical order
   (sorted delta relation names, source order within a relation,
   wildcards last) — every worker walks the same list. *)
let materialize_activations st (stratum : Prog.stratum) =
  let rels =
    Hashtbl.fold (fun name _ acc -> name :: acc) st.delta []
    |> List.sort String.compare
  in
  let keyed =
    List.concat_map
      (fun name ->
        match Hashtbl.find_opt stratum.Prog.by_rel name with
        | None -> []
        | Some acts -> List.map (fun a -> (Some name, a)) acts)
      rels
  in
  keyed @ List.map (fun a -> (None, a)) stratum.Prog.wildcard

(* Pre-build (and pin) the binding-pattern indexes every plan's
   database reads will probe, so read-only workers never fall back to
   scans on relations that deserve an index. *)
let prebuild_indexes db (prog : Prog.t) =
  Array.iter
    (fun (stratum : Prog.stratum) ->
      List.iter
        (fun (p : Plan.t) ->
          List.iter
            (function
              | Plan.Match m when not m.Plan.neg -> (
                match m.Plan.rel with
                | Plan.Fixed c -> (
                  match Database.find db c with
                  | Some info
                    when info.Database.arity = Array.length m.Plan.args
                         && Array.length m.Plan.bpos > 0 ->
                    Relation.ensure_index info.Database.data m.Plan.bpos
                  | Some _ | None -> ())
                | Plan.Name_slot _ -> ())
              | Plan.Match _ | Plan.Cmp _ | Plan.Assign _ -> ())
            p.Plan.steps)
        stratum.Prog.plans)
    prog.Prog.strata

(* One parallel semi-naive iteration: split the delta, fan activations
   out over the pool, then replay outboxes through the master's
   dispatch in canonical order. *)
let par_iteration st par (stratum : Prog.stratum) =
  Wdl_obs.Obs.inc par.p_iters;
  let acts = materialize_activations st stratum in
  let executed = ref 0 in
  List.iter (fun _ -> incr executed) acts;
  let skipped = stratum.Prog.n_activations - !executed in
  if st.schedule && skipped > 0 then Wdl_obs.Obs.inc ~by:skipped st.skipped_ctr;
  let parts =
    Shard.split_delta
      ~pool:(Database.pool st.db)
      ~shards:par.p_shards ~domains:par.p_domains st.delta
  in
  let wall0 = Wdl_obs.Obs.now_us () in
  let master_done = ref wall0 in
  ignore
    (Parallel.run ~domains:par.p_domains (fun w ->
         let t0 = Wdl_obs.Obs.now_us () in
         let wst = par.p_workers.(w) in
         wst.delta <- parts.(w);
         let ob = par.p_outboxes.(w) in
         List.iter
           (fun ((rel, a) : string option * Prog.activation) ->
             let relevant =
               match rel with
               | None -> true  (* wildcard: may read any delta *)
               | Some r -> Hashtbl.mem wst.delta r
             in
             if relevant then
               exec_plan wst a.Prog.plan ~delta_pos:(Some a.Prog.pos)
                 ~emit:(fun env ->
                   match head_key wst a.Prog.plan env with
                   | None -> ()
                   | Some (rel, peer, tuple) ->
                     (* Outbox items carry no rule; the worker records
                        the remote-head origin locally and the barrier
                        folds it into the master. The origin *set* is
                        valuation-determined, so it is identical to the
                        sequential engine's regardless of sharding. *)
                     if not (String.equal peer wst.self) then
                       Susp_tbl.replace wst.origins
                         (peer, a.Prog.plan.Plan.source) ();
                     Shard.Outbox.push ob { Shard.rel; peer; tuple }))
           acts;
         let t1 = Wdl_obs.Obs.now_us () in
         par.p_busy.(w) <- t1 -. t0;
         if w = 0 then master_done := t1));
  let wall1 = Wdl_obs.Obs.now_us () in
  Wdl_obs.Obs.observe par.p_barrier_hist (max 0. (wall1 -. !master_done));
  let busy = Array.fold_left ( +. ) 0. par.p_busy in
  let wall = wall1 -. wall0 in
  if wall > 0. then
    Wdl_obs.Obs.observe par.p_util_hist
      (busy /. (float_of_int par.p_domains *. wall));
  (* Merge barrier: canonical replay — worker index order, push order
     within each outbox. Heads re-enter the exact sequential routing
     (db insert, delta staging, induced/message tables). Provenance is
     off in parallel mode (gated in [run]), so [prov] is never forced. *)
  let no_prov _ = assert false in
  let pool = Database.pool st.db in
  Array.iteri
    (fun w ob ->
      Shard.Outbox.iter
        (fun ({ rel; peer; tuple } : Shard.emission) ->
          dispatch_head st ~prov:no_prov ~rel ~peer tuple;
          if
            String.equal peer st.self
            && Tuple.arity tuple > 0
            && Database.kind st.db rel = Some Decl.Intensional
          then
            match Intern.find pool tuple.(0) with
            | Some id
              when Shard.worker_of ~shards:par.p_shards
                     ~domains:par.p_domains id
                   <> w ->
              Wdl_obs.Obs.inc par.p_rerouted
            | Some _ | None -> ())
        ob;
      (* Reset the outbox for the next iteration. *)
      par.p_outboxes.(w) <- Shard.Outbox.create ())
    par.p_outboxes;
  (* Fold worker-side errors and delegation suspensions into the
     master, in worker order. *)
  Array.iter
    (fun wst ->
      List.iter (report st) (List.rev wst.errors);
      wst.errors <- [];
      wst.error_count <- 0;
      Susp_tbl.iter
        (fun k () -> Susp_tbl.replace st.suspensions k ())
        wst.suspensions;
      Susp_tbl.reset wst.suspensions;
      Susp_tbl.iter (fun k () -> Susp_tbl.replace st.origins k ()) wst.origins;
      Susp_tbl.reset wst.origins;
      (* Same min-rule tie-break as [suspend], so attribution is
         independent of which worker saw the residual first. *)
      Susp_tbl.iter
        (fun k s ->
          match Susp_tbl.find_opt st.susp_src k with
          | Some s0 when Rule.compare s0 s <= 0 -> ()
          | Some _ | None -> Susp_tbl.replace st.susp_src k s)
        wst.susp_src;
      Susp_tbl.reset wst.susp_src)
    par.p_workers

let run_stratum ?seed ?par st strategy (stratum : Prog.stratum) =
  st.delta <- Hashtbl.create 8;
  st.delta_next <- Hashtbl.create 8;
  let iteration () =
    match par with
    | Some p -> par_iteration st p stratum
    | None -> seminaive_iteration st stratum
  in
  (* Aggregate rules read complete lower strata, so they run once, up
     front; their outputs then feed the stratum's fixpoint normally. *)
  List.iter (fun p -> eval_agg_plan st p) stratum.Prog.agg_plans;
  (match seed with
  | None ->
    (* Iteration 1: full evaluation of every rule. Stays on the master
       even in parallel mode — the full pass relies on mid-pass
       visibility (plan k reads heads plan j < k just stored), which a
       frozen snapshot cannot honour; iterations after it are driven
       purely by deltas and fan out. *)
    List.iter (fun p -> eval_plan st ~delta_pos:None p) stratum.Prog.plans
  | Some pairs ->
    (* Delta staging: the database already holds the previous fixpoint
       and the seed tuples; the first iteration is one semi-naive pass
       driven by exactly the new tuples. *)
    List.iter (fun (rel, tuple) -> delta_add st rel tuple) pairs;
    st.delta <- st.delta_next;
    st.delta_next <- Hashtbl.create 8;
    iteration ());
  st.iterations <- st.iterations + 1;
  let rec loop () =
    if Hashtbl.length st.delta_next = 0 then ()
    else begin
      Wdl_obs.Obs.observe st.delta_hist
        (float_of_int
           (Hashtbl.fold
              (fun _ r acc -> acc + Relation.cardinal r)
              st.delta_next 0));
      st.delta <- st.delta_next;
      st.delta_next <- Hashtbl.create 8;
      st.iterations <- st.iterations + 1;
      (match strategy with
      | Naive ->
        List.iter
          (fun p -> eval_plan st ~delta_pos:None p)
          stratum.Prog.plans
      | Seminaive -> iteration ());
      loop ()
    end
  in
  loop ()

(* Per-peer instrument handles. Resolving an instrument is a labelled
   hashtable lookup — cheap, but measurable on small stages when done
   four times per run. Callers that run many stages ([Peer]) resolve
   once and pass the bundle in; [run] without one resolves per call so
   a registry [clear] between runs just re-creates the families. *)
type handles = {
  stage_hist : Wdl_obs.Obs.histogram;
  iter_hist : Wdl_obs.Obs.histogram;
  h_delta_hist : Wdl_obs.Obs.histogram;
  h_skipped_ctr : Wdl_obs.Obs.counter;
}

let handles ~self =
  let peer_labels = [ ("peer", self) ] in
  {
    stage_hist =
      Wdl_obs.Obs.histogram ~labels:peer_labels
        ~help:"Wall time of one fixpoint evaluation (all strata)"
        ~buckets:Wdl_obs.Obs.latency_buckets
        "wdl_eval_stage_duration_microseconds";
    iter_hist =
      Wdl_obs.Obs.histogram ~labels:peer_labels
        ~help:"Semi-naive iterations per fixpoint run"
        ~buckets:Wdl_obs.Obs.iteration_buckets "wdl_eval_iterations";
    h_delta_hist =
      Wdl_obs.Obs.histogram ~labels:peer_labels
        ~help:"Tuples in the delta at each semi-naive iteration"
        ~buckets:Wdl_obs.Obs.size_buckets "wdl_eval_delta_size";
    h_skipped_ctr =
      Wdl_obs.Obs.counter ~labels:peer_labels
        ~help:
          "(plan, delta position) pairs skipped by activation \
           scheduling because their delta relation was empty"
        "wdl_eval_plans_skipped_total";
  }

let run ?(strategy = Seminaive) ?(record_provenance = false) ?(schedule = true)
    ?(domains = 1) ?shards ?seed ?program ?handles:h ~self db rules =
  let compiled =
    match program with
    | Some p -> Ok p
    | None ->
      let intensional rel =
        match Database.kind db rel with
        | Some Decl.Intensional -> true
        | Some Decl.Extensional | None -> false
      in
      Prog.compile ~self ~intensional rules
  in
  match compiled with
  | Error e -> Error e
  | Ok prog ->
    let h = match h with Some h -> h | None -> handles ~self in
    let st =
      {
        self;
        db;
        delta = Hashtbl.create 8;
        delta_next = Hashtbl.create 8;
        deduced = Head_tbl.create 64;
        induced = Head_tbl.create 64;
        messages = Head_tbl.create 64;
        suspensions = Susp_tbl.create 32;
        origins = Susp_tbl.create 16;
        susp_src = Susp_tbl.create 16;
        provenance =
          (if record_provenance then Some (Fact_tbl.create 64) else None);
        errors = [];
        error_count = 0;
        derivations = 0;
        iterations = 0;
        schedule;
        ro = false;
        delta_hist = h.h_delta_hist;
        skipped_ctr = h.h_skipped_ctr;
      }
    in
    (* The parallel engine requires semi-naive activation scheduling
       (its work unit) and no provenance (derivation envs never cross
       the barrier); anything else — including [?domains:1], the
       sequential ablation — takes the unmodified sequential path. *)
    let par =
      if
        domains <= 1 || record_provenance || strategy <> Seminaive
        || not schedule
      then None
      else begin
        incr par_runs_total;
        prebuild_indexes db prog;
        let shards = match shards with Some s -> max s domains | None -> domains in
        Some (make_par ~domains ~shards st)
      end
    in
    (* Seeding is only meaningful for a single-stratum (monotone)
       program — a higher stratum reads complete lower strata, which a
       seeded pass does not rebuild. *)
    let seed =
      if Array.length prog.Prog.strata > 1 then None else seed
    in
    Wdl_obs.Obs.time h.stage_hist (fun () ->
        Array.iter (run_stratum ?seed ?par st strategy) prog.Prog.strata);
    Wdl_obs.Obs.observe h.iter_hist (float_of_int st.iterations);
    (* Canonical result assembly: both engines sort derived sets the
       same way, so journal writes, snapshots and trace fact order are
       a function of the result *sets* alone — never of hash-table or
       thread-arrival order. *)
    let to_list tbl =
      Head_tbl.fold (fun k () acc -> Head_key.to_fact k :: acc) tbl []
      |> List.sort Fact.compare
    in
    Ok
      {
        deduced = to_list st.deduced;
        induced = to_list st.induced;
        messages = to_list st.messages;
        suspensions =
          Susp_tbl.fold (fun s () acc -> s :: acc) st.suspensions []
          |> List.sort (fun (p1, r1) (p2, r2) ->
                 match String.compare p1 p2 with
                 | 0 -> Rule.compare r1 r2
                 | c -> c);
        origins =
          Susp_tbl.fold (fun s () acc -> s :: acc) st.origins []
          |> List.sort (fun (p1, r1) (p2, r2) ->
                 match String.compare p1 p2 with
                 | 0 -> Rule.compare r1 r2
                 | c -> c);
        susp_sources =
          Susp_tbl.fold (fun k v acc -> (k, v) :: acc) st.susp_src []
          |> List.sort (fun ((p1, r1), _) ((p2, r2), _) ->
                 match String.compare p1 p2 with
                 | 0 -> Rule.compare r1 r2
                 | c -> c);
        errors = List.rev st.errors;
        iterations = st.iterations;
        derivations = st.derivations;
        provenance =
          (match st.provenance with
          | None -> []
          | Some tbl ->
            Fact_tbl.fold (fun _ d acc -> d :: acc) tbl []
            |> List.sort (fun d1 d2 -> Fact.compare d1.fact d2.fact));
      }
