(** One-stage local evaluation: the middle step of the paper's
    three-step peer computation (load inputs → {e fixpoint} → emit).

    The evaluator runs the peer's current rules over its database,
    left-to-right. What a rule produces depends on where its terms
    resolve at run time:

    - a completed valuation whose head is a {e local intensional}
      relation is deduced immediately (visible within the fixpoint);
    - a head in a {e local extensional} relation is an inductive
      update, returned in [induced] and applied at the next stage;
    - a head on a {e remote peer} is an asynchronous message;
    - reaching a body atom whose peer resolves to a {e remote} name
      suspends the valuation: the residual rule (substitution applied,
      remaining literals kept) is returned in [suspensions] — these
      become the paper's delegations.

    Both semi-naive (default) and naive strategies implement identical
    semantics; naive is kept as the benchmark baseline (T1). *)

(* No [open Wdl_syntax] here: it would shadow this library's [Program]
   module with the syntax-level one of the same name. *)

type strategy = Seminaive | Naive

type derivation = {
  fact : Wdl_syntax.Fact.t;
  rule : Wdl_syntax.Rule.t;
  premises : Wdl_syntax.Fact.t list;
      (** the ground positive body atoms of one supporting valuation *)
}

type result = {
  deduced : Wdl_syntax.Fact.t list;
      (** new local intensional facts (also inserted) *)
  induced : Wdl_syntax.Fact.t list;
      (** local extensional insertions for next stage *)
  messages : Wdl_syntax.Fact.t list;
      (** facts whose [peer] field is the destination *)
  suspensions : (string * Wdl_syntax.Rule.t) list;
      (** (target peer, residual rule), deduplicated *)
  origins : (string * Wdl_syntax.Rule.t) list;
      (** (destination peer, source rule as written) for every remote
          head emission — the attribution behind message origin tags
          and the knowledge-flow runtime oracle *)
  susp_sources : ((string * Wdl_syntax.Rule.t) * Wdl_syntax.Rule.t) list;
      (** per suspension key, the source rule (as written) whose
          evaluation shipped the residual; ties broken toward the
          smallest rule by [Rule.compare], so both engines agree *)
  errors : Runtime_error.t list;
  iterations : int;       (** fixpoint iterations summed over strata *)
  derivations : int;      (** successful head instantiations, incl. dups *)
  provenance : derivation list;
      (** one why-provenance entry per deduced fact, when requested;
          aggregate-rule facts carry no premises *)
}

val statically_local : self:string -> Wdl_syntax.Rule.t -> bool
(** Whether every body atom's peer is the constant [self] — the
    precondition for aggregate rules, which may never suspend into a
    delegation. *)

type handles
(** Pre-resolved per-peer metric instruments. *)

val handles : self:string -> handles
(** Resolve the evaluator's instruments for one peer once; pass the
    bundle to {!run} to keep registry lookups off the per-stage path.
    After a registry clear, resolve a fresh bundle. *)

val par_runs_total : int ref
(** Runs that actually engaged the parallel engine (mirrors
    [wdl_par_iterations_total] at run granularity). Lets tests assert
    that [?domains:1] — the sequential ablation — and the default take
    the identical code path: the counter must not move. *)

val run :
  ?strategy:strategy ->
  ?record_provenance:bool ->
  ?schedule:bool ->
  ?domains:int ->
  ?shards:int ->
  ?seed:(string * Wdl_store.Tuple.t) list ->
  ?program:Program.t ->
  ?handles:handles ->
  self:string ->
  Wdl_store.Database.t ->
  Wdl_syntax.Rule.t list ->
  (result, Stratify.error) Stdlib.result
(** Mutates the database's intensional relations. The caller is
    responsible for {!Wdl_store.Database.clear_intensional} at stage
    start and for applying [induced] at the next stage.

    [seed] switches the run to {e delta staging}: instead of clearing
    intensional state and evaluating every rule from scratch, the
    database is taken to already hold a fixpoint of the program minus
    the seed tuples (which the caller has just inserted), and
    evaluation starts with one semi-naive pass over exactly that
    delta. The [result] then contains only facts, messages and
    suspensions derivable from the new tuples — everything previously
    derived is retained in the database untouched. Sound only for a
    monotone (negation- and aggregate-free, hence single-stratum)
    program under purely additive input changes; the caller is
    responsible for that gate (see [Peer.stage]). A multi-stratum
    program ignores [seed] and falls back to full evaluation.

    [program], when given, must have been compiled (see
    {!Program.compile}) from exactly [rules] against a database whose
    relation kinds match [db]'s — the [rules] argument is then ignored
    and the cached stratification and plans are used directly, saving
    the per-call [Stratify.compute] + [Plan.compile] work. [Peer]
    caches one program per rule-set version.

    [schedule] (default true) enables rule-activation scheduling:
    semi-naive iterations after the first execute only the
    [(plan, delta position)] pairs whose delta relation is non-empty.
    Scheduling never changes results — a skipped pair reads an empty
    delta and derives nothing — only which no-op plan executions are
    paid for; [~schedule:false] restores exhaustive execution (the
    pre-optimization engine, kept as the bench baseline).

    [domains] (default 1) runs semi-naive iterations on a pool of
    worker domains: each relation's delta is sharded by the hash of
    its interned first column ([shards] shards, default [domains];
    worker = shard mod domains), workers evaluate the iteration's
    activations against a frozen snapshot, and derived heads are
    replayed through the master's dispatch at a merge barrier in
    canonical (worker, push) order. Result sets are identical to the
    sequential engine and both engines sort result lists canonically,
    so journals, snapshots and trace fact order are byte-identical;
    programs whose rules read same-stratum relations at non-delta
    positions may report more [iterations] (never different facts).
    [?domains:1] is the sequential ablation — it takes the unmodified
    sequential path, as do provenance recording, [Naive] strategy and
    [~schedule:false]. *)
