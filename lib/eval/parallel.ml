(* A tiny fork-join pool over OCaml 5 domains.

   Domains are expensive to spawn (~hundreds of microseconds) and the
   runtime caps how many may ever exist, so the pool keeps its workers
   for the life of the process and grows on demand. The calling domain
   participates as worker 0 — [run ~domains:n f] therefore spawns at
   most [n - 1] domains.

   Only the main domain drives stages (peers are staged sequentially
   by [System.round]), so [run] assumes one caller at a time; a
   re-entrant call from inside a worker falls back to sequential
   execution rather than deadlocking the pool. *)

type pool = {
  m : Mutex.t;
  work : Condition.t;  (* jobs arrived, or shutdown *)
  idle : Condition.t;  (* a job finished *)
  mutable jobs : (unit -> unit) list;
  mutable pending : int;  (* queued + running jobs *)
  mutable stop : bool;
  mutable spawned : int;
  mutable domains : unit Domain.t list;
  mutable in_run : bool;
}

let pool =
  {
    m = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    jobs = [];
    pending = 0;
    stop = false;
    spawned = 0;
    domains = [];
    in_run = false;
  }

let rec worker_loop () =
  Mutex.lock pool.m;
  while pool.jobs = [] && not pool.stop do
    Condition.wait pool.work pool.m
  done;
  match pool.jobs with
  | job :: rest ->
    pool.jobs <- rest;
    Mutex.unlock pool.m;
    (* Jobs are wrapped by [run]; they never raise. *)
    job ();
    Mutex.lock pool.m;
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.broadcast pool.idle;
    Mutex.unlock pool.m;
    worker_loop ()
  | [] -> Mutex.unlock pool.m (* stop *)

(* Caller holds [pool.m]. *)
let ensure_workers n =
  while pool.spawned < n do
    pool.domains <- Domain.spawn worker_loop :: pool.domains;
    pool.spawned <- pool.spawned + 1
  done

let shutdown () =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  let doms = pool.domains in
  pool.domains <- [];
  pool.spawned <- 0;
  Mutex.unlock pool.m;
  List.iter Domain.join doms;
  Mutex.lock pool.m;
  pool.stop <- false;
  Mutex.unlock pool.m

let () = at_exit shutdown

let spawned () = pool.spawned

let run ~domains (f : int -> 'a) : 'a array =
  if domains <= 1 then [| f 0 |]
  else if pool.in_run then
    (* Re-entrant (called from a worker): degrade to sequential. *)
    Array.init domains f
  else begin
    let n = domains in
    let results : 'a option array = Array.make n None in
    let failures : exn option array = Array.make n None in
    let wrap i () =
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some e
    in
    Mutex.lock pool.m;
    pool.in_run <- true;
    ensure_workers (n - 1);
    pool.jobs <- List.init (n - 1) (fun k -> wrap (k + 1));
    pool.pending <- n - 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    wrap 0 ();
    Mutex.lock pool.m;
    while pool.pending > 0 do
      Condition.wait pool.idle pool.m
    done;
    pool.in_run <- false;
    Mutex.unlock pool.m;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let default_domains =
  let parsed =
    lazy
      (match Sys.getenv_opt "WDL_DOMAINS" with
      | None -> 1
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | Some _ | None -> 1))
  in
  fun () -> Lazy.force parsed
