(** A persistent fork-join pool over OCaml 5 domains.

    The calling domain participates as worker 0, so [run ~domains:n f]
    spawns at most [n - 1] domains; workers persist for the life of
    the process and are joined at exit. One caller at a time (stages
    run on the main domain); a re-entrant call degrades to sequential
    execution. *)

val run : domains:int -> (int -> 'a) -> 'a array
(** [run ~domains f] evaluates [f 0 .. f (domains - 1)] concurrently
    and returns the results in index order. Re-raises the first worker
    exception (by index) after the barrier. [domains <= 1] calls [f 0]
    inline with no pool involvement. *)

val spawned : unit -> int
(** Worker domains currently alive (excludes the caller). *)

val shutdown : unit -> unit
(** Stop and join all workers. The pool respawns on the next [run];
    also registered [at_exit]. *)

val default_domains : unit -> int
(** The [WDL_DOMAINS] environment variable (>= 1), default [1] — the
    knob CI's parallel matrix leg sets to route every peer's stage
    through the parallel engine. *)
