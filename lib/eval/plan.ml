open Wdl_syntax

type slot = int

type arg =
  | Const of Value.t
  | Slot of slot

type name_ref =
  | Fixed of string
  | Name_slot of slot

type cexpr =
  | CConst of Value.t
  | CSlot of slot
  | CAdd of cexpr * cexpr
  | CSub of cexpr * cexpr
  | CMul of cexpr * cexpr
  | CDiv of cexpr * cexpr

type match_step = {
  pos : int;
  neg : bool;
  rel : name_ref;
  peer : name_ref;
  args : arg array;
  atom : Atom.t;
  (* Static probe spec: which argument positions are constrained when
     this step runs (constants + slots bound by earlier steps), and
     what each remaining position does to the environment. Boundness
     at a step is static — a plan is a linear sequence — so the
     evaluator fills a flat key instead of re-deriving the binding
     pattern per candidate tuple. Empty for negated steps (they use
     full instantiation). *)
  bpos : int array;  (* constrained positions, ascending *)
  bsrc : arg array;  (* aligned key sources *)
  out_binds : (int * slot) array;  (* free positions: first occurrence *)
  out_checks : (int * slot) array;  (* repeated free slots: equality *)
}

type step =
  | Match of match_step
  | Cmp of Literal.cmpop * cexpr * cexpr * Literal.t
  | Assign of slot * cexpr * Literal.t

type t = {
  rule : Rule.t;  (** the body the plan executes (possibly reordered) *)
  source : Rule.t;  (** the rule as the user wrote it *)
  steps : step list;
  head_rel : name_ref;
  head_peer : name_ref;
  head_args : arg array;
  nslots : int;
  slot_names : string array;
  premise_patterns : (name_ref * name_ref * arg array) list;
}

type compiler = {
  mutable names : string list;  (* reverse slot order *)
  mutable count : int;
  tbl : (string, int) Hashtbl.t;
}

let slot_of c x =
  match Hashtbl.find_opt c.tbl x with
  | Some s -> s
  | None ->
    let s = c.count in
    c.count <- c.count + 1;
    c.names <- x :: c.names;
    Hashtbl.replace c.tbl x s;
    s

let compile_term c = function
  | Term.Const v -> Const v
  | Term.Var x -> Slot (slot_of c x)

let compile_name c = function
  | Term.Const v -> (
    match Value.as_name v with
    | Some n -> Fixed n
    (* Safety rejects non-name constants; keep a total fallback. *)
    | None -> Fixed (Value.to_string v))
  | Term.Var x -> Name_slot (slot_of c x)

let rec compile_expr c = function
  | Expr.Const v -> CConst v
  | Expr.Var x -> CSlot (slot_of c x)
  | Expr.Add (a, b) -> CAdd (compile_expr c a, compile_expr c b)
  | Expr.Sub (a, b) -> CSub (compile_expr c a, compile_expr c b)
  | Expr.Mul (a, b) -> CMul (compile_expr c a, compile_expr c b)
  | Expr.Div (a, b) -> CDiv (compile_expr c a, compile_expr c b)

let compile_atom c (a : Atom.t) =
  ( compile_name c a.Atom.rel,
    compile_name c a.Atom.peer,
    Array.of_list (List.map (compile_term c) a.Atom.args) )

let no_probe = ([||], [||], [||], [||])

(* Classify a positive atom's argument positions against the set of
   slots bound before this step. The relation/peer name slots count as
   bound during the match: a name slot is either bound already or gets
   its value before any tuple is probed (peer resolution, relation
   enumeration). *)
let probe_spec bound (rel : name_ref) (peer : name_ref) (args : arg array) =
  (match rel with Name_slot s -> Hashtbl.replace bound s () | Fixed _ -> ());
  (match peer with Name_slot s -> Hashtbl.replace bound s () | Fixed _ -> ());
  let bpos = ref [] and bsrc = ref [] in
  let binds = ref [] and checks = ref [] in
  let fresh = Hashtbl.create 4 in
  Array.iteri
    (fun i a ->
      match a with
      | Const _ ->
        bpos := i :: !bpos;
        bsrc := a :: !bsrc
      | Slot s ->
        if Hashtbl.mem bound s then begin
          bpos := i :: !bpos;
          bsrc := a :: !bsrc
        end
        else if Hashtbl.mem fresh s then checks := (i, s) :: !checks
        else begin
          Hashtbl.replace fresh s ();
          binds := (i, s) :: !binds
        end)
    args;
  Hashtbl.iter (fun s () -> Hashtbl.replace bound s ()) fresh;
  ( Array.of_list (List.rev !bpos),
    Array.of_list (List.rev !bsrc),
    Array.of_list (List.rev !binds),
    Array.of_list (List.rev !checks) )

let compile ?source (rule : Rule.t) =
  let c = { names = []; count = 0; tbl = Hashtbl.create 16 } in
  let bound = Hashtbl.create 16 in
  let steps =
    List.mapi
      (fun pos lit ->
        match lit with
        | Literal.Pos a ->
          let rel, peer, args = compile_atom c a in
          let bpos, bsrc, out_binds, out_checks =
            probe_spec bound rel peer args
          in
          Match
            { pos; neg = false; rel; peer; args; atom = a; bpos; bsrc;
              out_binds; out_checks }
        | Literal.Neg a ->
          let rel, peer, args = compile_atom c a in
          let bpos, bsrc, out_binds, out_checks = no_probe in
          Match
            { pos; neg = true; rel; peer; args; atom = a; bpos; bsrc;
              out_binds; out_checks }
        | Literal.Cmp (op, e1, e2) ->
          Cmp (op, compile_expr c e1, compile_expr c e2, lit)
        | Literal.Assign (x, e) ->
          (* Compile the expression first: safety guarantees its
             variables were bound earlier, so slot allocation order is
             irrelevant, but doing it first mirrors evaluation order. *)
          let ce = compile_expr c e in
          let s = slot_of c x in
          Hashtbl.replace bound s ();
          Assign (s, ce, lit))
      rule.Rule.body
  in
  let head_rel, head_peer, head_args = compile_atom c rule.Rule.head in
  let premise_patterns =
    List.filter_map
      (function
        | Match { neg = false; rel; peer; args; _ } -> Some (rel, peer, args)
        | Match _ | Cmp _ | Assign _ -> None)
      steps
  in
  {
    rule;
    source = (match source with Some s -> s | None -> rule);
    steps;
    head_rel;
    head_peer;
    head_args;
    nslots = c.count;
    slot_names = Array.of_list (List.rev c.names);
    premise_patterns;
  }

(* {1 Cost-based body ordering}

   The WDL031 lint (Boundary.improve in the analysis library) computes
   a greedy maximal-local-prefix reorder and reports it as a hint.
   This is the same construction promoted into the compiler, with one
   change: among the literals eligible at each step, pick the {e
   cheapest} (estimated enumeration cost under current boundness)
   instead of the earliest. With no cardinality signal every literal
   costs the same and ties break toward source order, which makes the
   result exactly the WDL031 hint.

   Eligibility mirrors the evaluator's runtime rules: a positive atom
   needs a self peer and a bound (or constant) relation name; negation
   and comparisons need every variable bound; an assignment needs its
   expression bound and its target fresh. Anything never eligible —
   the delegation suffix — keeps its source order, preserving the
   paper's left-to-right delegation semantics on the residual. *)

let order_body ~self ~stats (r : Rule.t) =
  if Rule.is_aggregate r then r
  else
    let lits = Array.of_list r.Rule.body in
    let n = Array.length lits in
    if n <= 1 then r
    else begin
      let used = Array.make n false in
      let bound = ref [] in
      let is_bound x = List.mem x !bound in
      let bind x = if not (is_bound x) then bound := x :: !bound in
      let eligible = function
        | Literal.Cmp (_, e1, e2) ->
          List.for_all is_bound (Expr.vars e1 @ Expr.vars e2)
        | Literal.Assign (x, e) ->
          (not (is_bound x)) && List.for_all is_bound (Expr.vars e)
        | Literal.Pos a ->
          Term.as_name a.Atom.peer = Some self
          && List.for_all is_bound (Term.vars a.Atom.rel)
        | Literal.Neg a ->
          Term.as_name a.Atom.peer = Some self
          && List.for_all is_bound (Atom.vars a)
      in
      (* Filters are free; a negated atom is one membership probe; a
         positive atom enumerates its relation shrunk by a nominal
         selectivity of 4 per constrained position. *)
      let cost i =
        match lits.(i) with
        | Literal.Cmp _ | Literal.Assign _ -> 0.
        | Literal.Neg _ -> 0.5
        | Literal.Pos a ->
          let card =
            match Term.as_name a.Atom.rel with
            | Some rel -> float_of_int (stats rel)
            | None -> 1e9  (* relation variable: enumerates every relation *)
          in
          let constrained =
            List.fold_left
              (fun acc t ->
                match t with
                | Term.Const _ -> acc + 1
                | Term.Var x -> if is_bound x then acc + 1 else acc)
              0 a.Atom.args
          in
          Float.max 1. (card /. (4. ** float_of_int constrained))
      in
      let order = ref [] in
      let progress = ref true in
      while !progress do
        progress := false;
        let best = ref (-1) and best_cost = ref infinity in
        (* [downto] with [<=]: equal costs resolve to the smallest
           index — source order, the WDL031 tie-break. *)
        for i = n - 1 downto 0 do
          if (not used.(i)) && eligible lits.(i) then begin
            let ci = cost i in
            if ci <= !best_cost then begin
              best := i;
              best_cost := ci
            end
          end
        done;
        if !best >= 0 then begin
          let i = !best in
          used.(i) <- true;
          (match lits.(i) with
          | Literal.Pos a -> List.iter bind (Atom.vars a)
          | Literal.Assign (x, _) -> bind x
          | Literal.Neg _ | Literal.Cmp _ -> ());
          order := i :: !order;
          progress := true
        end
      done;
      let perm =
        List.rev !order @ (List.init n Fun.id |> List.filter (fun i -> not used.(i)))
      in
      if List.for_all2 ( = ) perm (List.init n Fun.id) then r
      else
        let body = List.map (fun i -> lits.(i)) perm in
        let reordered = Rule.make ~head:r.Rule.head ~body in
        (* The construction preserves safety (a literal only runs once
           its inputs are bound; the residual keeps its relative
           order), but verify rather than trust the argument. *)
        match Safety.check_rule reordered with
        | Ok () -> reordered
        | Error _ -> r
    end

let subst_of_env plan env =
  let s = ref Subst.empty in
  Array.iteri
    (fun i v ->
      match v with
      | Some v -> s := Subst.bind_exn plan.slot_names.(i) v !s
      | None -> ())
    env;
  !s

let instantiate_args args env =
  let n = Array.length args in
  let out = Array.make n (Value.Int 0) in
  let ok = ref true in
  for i = 0 to n - 1 do
    match args.(i) with
    | Const v -> out.(i) <- v
    | Slot s -> (
      match env.(s) with
      | Some v -> out.(i) <- v
      | None -> ok := false)
  done;
  if !ok then Some out else None

let ( let* ) = Result.bind

let numeric op_name fi ff a b =
  match a, b with
  | Value.Int x, Value.Int y -> Ok (Value.Int (fi x y))
  | Value.Float x, Value.Float y -> Ok (Value.Float (ff x y))
  | Value.Int x, Value.Float y -> Ok (Value.Float (ff (float_of_int x) y))
  | Value.Float x, Value.Int y -> Ok (Value.Float (ff x (float_of_int y)))
  | a, b ->
    Error
      (Expr.Type_error
         (Printf.sprintf "%s expects numbers, got %s and %s" op_name
            (Value.type_name a) (Value.type_name b)))

let rec eval_cexpr e env ~slot_names =
  match e with
  | CConst v -> Ok v
  | CSlot s -> (
    match env.(s) with
    | Some v -> Ok v
    | None -> Error (Expr.Unbound_variable slot_names.(s)))
  | CAdd (a, b) -> (
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    match va, vb with
    | Value.String x, Value.String y -> Ok (Value.String (x ^ y))
    | va, vb -> numeric "+" ( + ) ( +. ) va vb)
  | CSub (a, b) ->
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    numeric "-" ( - ) ( -. ) va vb
  | CMul (a, b) ->
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    numeric "*" ( * ) ( *. ) va vb
  | CDiv (a, b) -> (
    let* va = eval_cexpr a env ~slot_names in
    let* vb = eval_cexpr b env ~slot_names in
    match vb with
    | Value.Int 0 -> Error (Expr.Type_error "division by zero")
    | Value.Float f when f = 0. -> Error (Expr.Type_error "division by zero")
    | vb -> numeric "/" ( / ) ( /. ) va vb)
