(** Compiled rule plans.

    Interpreting a rule walks its AST for every candidate tuple,
    substituting atoms and threading persistent maps. A plan compiles
    the rule once per fixpoint: variables become integer {e slots} in a
    mutable environment, atoms become argument-pattern arrays, and
    relation/peer terms become resolved names or slot references. The
    evaluator ({!Fixpoint}) executes plans with a binding trail, so a
    tuple match costs array reads and writes instead of allocations.

    Compilation is purely structural — the paper's left-to-right
    semantics, dynamic delegation boundary and safety guarantees are
    untouched. *)

open Wdl_syntax

type slot = int

type arg =
  | Const of Value.t
  | Slot of slot

type name_ref =
  | Fixed of string   (** constant relation/peer name *)
  | Name_slot of slot (** variable: resolved (or bound) at run time *)

type cexpr =
  | CConst of Value.t
  | CSlot of slot
  | CAdd of cexpr * cexpr
  | CSub of cexpr * cexpr
  | CMul of cexpr * cexpr
  | CDiv of cexpr * cexpr

type match_step = {
  pos : int;  (** literal index in the plan's body (delta position) *)
  neg : bool;
  rel : name_ref;
  peer : name_ref;
  args : arg array;
  atom : Atom.t;  (** the source atom, for error reports *)
  bpos : int array;
      (** statically constrained argument positions, ascending: a plan
          is a linear step sequence, so which slots are bound when a
          step runs is known at compile time *)
  bsrc : arg array;  (** key sources aligned with [bpos] *)
  out_binds : (int * slot) array;
      (** free positions binding a slot (first occurrence in the atom) *)
  out_checks : (int * slot) array;
      (** repeated free slots: equality checks against [out_binds] *)
}

type step =
  | Match of match_step
  | Cmp of Literal.cmpop * cexpr * cexpr * Literal.t
  | Assign of slot * cexpr * Literal.t

type t = {
  rule : Rule.t;  (** the body the plan executes (possibly reordered) *)
  source : Rule.t;
      (** the rule as written — provenance and diagnostics show this *)
  steps : step list;
  head_rel : name_ref;
  head_peer : name_ref;
  head_args : arg array;
  nslots : int;
  slot_names : string array;  (** slot -> source variable name *)
  premise_patterns : (name_ref * name_ref * arg array) list;
      (** positive body atoms, for provenance instantiation *)
}

val compile : ?source:Rule.t -> Rule.t -> t
(** [source] (default: the rule itself) is the rule as the user wrote
    it, kept for provenance when the compiled body was reordered. *)

val order_body :
  self:string -> stats:(string -> int) -> Rule.t -> Rule.t
(** Cost-based join ordering: the WDL031 greedy local-prefix reorder
    promoted from lint hint to compiler, picking the cheapest eligible
    literal at each step using [stats] (live relation cardinalities,
    0 for unknown relations) and bound-position selectivity. Ties
    resolve to source order, so with a constant [stats] the result is
    exactly the WDL031 hint. Aggregate rules and rules whose reorder
    fails the safety check are returned unchanged. *)

val subst_of_env : t -> Value.t option array -> Subst.t
(** The bound slots as a substitution (used to build residual rules at
    delegation points — rare, so allocation there is fine). *)

val instantiate_args : arg array -> Value.t option array -> Value.t array option
(** [None] if any slot is unbound. *)

val eval_cexpr :
  cexpr -> Value.t option array -> slot_names:string array -> (Value.t, Expr.error) result
