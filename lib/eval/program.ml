open Wdl_syntax

type activation = { plan : Plan.t; pos : int }

type stratum = {
  agg_plans : Plan.t list;
  plans : Plan.t list;
  by_rel : (string, activation list) Hashtbl.t;
  wildcard : activation list;
  n_activations : int;
}

type t = {
  version : int;
  rules : Rule.t list;
  strata : stratum array;
}

(* Positive body atoms of a plan with the statically-known relation
   name read at each, or None for a relation variable. A variable may
   have been bound by an earlier literal at run time, but scheduling is
   static: anything not provably tied to one relation is a wildcard. *)
let delta_reads (plan : Plan.t) =
  List.filter_map
    (function
      | Plan.Match { neg = false; pos; rel; _ } ->
        Some (pos, match rel with Plan.Fixed n -> Some n | Plan.Name_slot _ -> None)
      | Plan.Match _ | Plan.Cmp _ | Plan.Assign _ -> None)
    plan.Plan.steps

let compile_stratum ?order rules =
  let all_plans =
    List.map
      (fun r ->
        match order with
        | None -> Plan.compile r
        | Some f ->
          let r' = f r in
          if r' == r then Plan.compile r else Plan.compile ~source:r r')
      rules
  in
  let agg_plans, plans =
    List.partition (fun p -> Rule.is_aggregate p.Plan.rule) all_plans
  in
  let by_rel = Hashtbl.create 8 in
  let wildcard = ref [] in
  let n = ref 0 in
  List.iter
    (fun plan ->
      List.iter
        (fun (pos, rel) ->
          incr n;
          let a = { plan; pos } in
          match rel with
          | None -> wildcard := a :: !wildcard
          | Some name ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt by_rel name) in
            Hashtbl.replace by_rel name (a :: cur))
        (delta_reads plan))
    plans;
  (* Restore source order inside each bucket: scheduling must not
     change which derivation an evaluator finds first. *)
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) by_rel;
  {
    agg_plans;
    plans;
    by_rel;
    wildcard = List.rev !wildcard;
    n_activations = !n;
  }

let compile ?(version = 0) ?order ~self ~intensional rules =
  match Stratify.compute ~self ~intensional rules with
  | Error e -> Error e
  | Ok { Stratify.strata } ->
    Ok { version; rules; strata = Array.map (compile_stratum ?order) strata }

let version t = t.version
let rules t = t.rules

let plan_count t =
  Array.fold_left
    (fun acc s -> acc + List.length s.agg_plans + List.length s.plans)
    0 t.strata
