(** A compiled rule program: stratification and compiled plans, cached
    so repeated stages stop paying [Stratify.compute] + [Plan.compile]
    for an unchanged rule set.

    A [t] is immutable once built. Callers that cache one (notably
    [Peer]) key it on a {e rule-set version counter}: any change to the
    rule set (rule added/removed, delegation installed/retracted) or to
    the relation-kind map (a declaration can turn a name intensional,
    which changes stratification) must bump the version, so a cached
    program whose [version] no longer matches is recompiled.

    Each stratum also carries the {e activation index} driving
    semi-naive scheduling: an inverted index from body-relation name to
    the [(plan, body position)] pairs reading that relation at that
    position. During iterations 2+, only activations whose delta
    relation actually received tuples need to run — a plan whose delta
    position reads relation [c] can derive nothing new when the
    previous iteration produced no [c] tuples, yet executing it still
    costs the full enumeration of the body prefix before that position.
    Positions whose relation is a {e variable} may read any delta and
    live in [wildcard]; they run every iteration. *)

open Wdl_syntax

type activation = {
  plan : Plan.t;
  pos : int;  (** body position of the positive atom reading the delta *)
}

type stratum = {
  agg_plans : Plan.t list;  (** aggregate rules, run once before the fixpoint *)
  plans : Plan.t list;      (** non-aggregate plans, iteration-1 order *)
  by_rel : (string, activation list) Hashtbl.t;
      (** delta-relation name -> activations statically reading it *)
  wildcard : activation list;
      (** activations whose relation position is a variable *)
  n_activations : int;  (** total (plan, pos) pairs in this stratum *)
}

type t = {
  version : int;
  rules : Rule.t list;     (** the rules this program was compiled from *)
  strata : stratum array;  (** bottom-up stratification order *)
}

val compile :
  ?version:int ->
  ?order:(Rule.t -> Rule.t) ->
  self:string ->
  intensional:(string -> bool) ->
  Rule.t list ->
  (t, Stratify.error) result
(** Stratify and compile [rules]. [intensional] must be the same
    relation-kind predicate the evaluating database will answer;
    [version] (default 0) is stored verbatim for cache keying.
    [order] (typically {!Plan.order_body} partially applied to live
    cardinalities) rewrites each rule body before plan compilation;
    plans keep the original rule as their [source]. *)

val version : t -> int
val rules : t -> Rule.t list

val plan_count : t -> int
(** Total compiled plans across strata (observability/tests). *)
