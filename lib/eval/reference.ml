open Wdl_syntax
open Wdl_store

module Fact_tbl = Hashtbl.Make (struct
  type t = Fact.t

  let equal = Fact.equal
  let hash = Fact.hash
end)

module Susp_tbl = Hashtbl.Make (struct
  type t = string * Rule.t

  let equal (t1, r1) (t2, r2) = String.equal t1 t2 && Rule.equal r1 r2
  let hash x = Hashtbl.hash_param 64 128 x
end)

type state = {
  self : string;
  db : Database.t;
  mutable delta : (string, Relation.t) Hashtbl.t;
  mutable delta_next : (string, Relation.t) Hashtbl.t;
  deduced : unit Fact_tbl.t;
  induced : unit Fact_tbl.t;
  messages : unit Fact_tbl.t;
  suspensions : unit Susp_tbl.t;
  provenance : Fixpoint.derivation Fact_tbl.t option;
  mutable errors : Runtime_error.t list;
  mutable error_count : int;
  mutable derivations : int;
  mutable iterations : int;
}

let max_errors = 1000

let report st e =
  st.error_count <- st.error_count + 1;
  if st.error_count <= max_errors then st.errors <- e :: st.errors

let delta_add st rel tuple =
  let r =
    match Hashtbl.find_opt st.delta_next rel with
    | Some r -> r
    | None ->
      let r = Relation.create ~arity:(Tuple.arity tuple) () in
      Hashtbl.add st.delta_next rel r;
      r
  in
  ignore (Relation.insert r tuple)

let readable st ~use_delta ~rel_name ~arity =
  if use_delta then
    match rel_name with
    | Some c -> (
      match Hashtbl.find_opt st.delta c with
      | Some r when Relation.arity r = arity -> [ (c, r) ]
      | Some _ | None -> [])
    | None ->
      Hashtbl.fold
        (fun name r acc -> if Relation.arity r = arity then (name, r) :: acc else acc)
        st.delta []
  else
    match rel_name with
    | Some c -> (
      match Database.find st.db c with
      | Some info when info.Database.arity = arity -> [ (c, info.Database.data) ]
      | Some _ | None -> [])
    | None ->
      List.filter_map
        (fun (info : Database.info) ->
          if info.arity = arity then Some (info.name, info.data) else None)
        (Database.relations st.db)

let premises_of (rule : Rule.t) sigma =
  List.filter_map
    (function
      | Literal.Pos a -> Atom.to_fact (Atom.subst sigma a)
      | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ -> None)
    rule.Rule.body

let dispatch st (rule : Rule.t) sigma_opt (fact : Fact.t) =
  st.derivations <- st.derivations + 1;
  if fact.Fact.peer <> st.self then Fact_tbl.replace st.messages fact ()
  else
    let tuple = Tuple.of_list fact.Fact.args in
    match Database.ensure st.db ~rel:fact.Fact.rel ~arity:(Tuple.arity tuple) with
    | Error e ->
      report st
        (Runtime_error.Store_error
           { rel = fact.Fact.rel; message = Format.asprintf "%a" Database.pp_error e })
    | Ok info -> (
      match info.Database.kind with
      | Decl.Extensional -> Fact_tbl.replace st.induced fact ()
      | Decl.Intensional ->
        if Relation.insert info.Database.data tuple then begin
          Fact_tbl.replace st.deduced fact ();
          delta_add st fact.Fact.rel tuple;
          match st.provenance with
          | Some tbl ->
            let premises =
              match sigma_opt with
              | Some sigma -> premises_of rule sigma
              | None -> []
            in
            Fact_tbl.replace tbl fact { Fixpoint.fact; rule; premises }
          | None -> ()
        end)

(* Match one (already substituted) atom against a relation's tuples. *)
let match_tuple sigma (args : Term.t list) (tuple : Tuple.t) =
  let n = Array.length tuple in
  if List.length args <> n then None
  else
    let rec go sigma i = function
      | [] -> Some sigma
      | Term.Const v :: rest ->
        if Value.equal v tuple.(i) then go sigma (i + 1) rest else None
      | Term.Var x :: rest -> (
        match Subst.bind x tuple.(i) sigma with
        | Some sigma -> go sigma (i + 1) rest
        | None -> None)
    in
    go sigma 0 args

let bound_positions (args : Term.t list) =
  List.concat (List.mapi (fun i t -> match t with Term.Const v -> [ (i, v) ] | Term.Var _ -> []) args)

let rec walk st rule ~emit ~delta_pos pos sigma lits =
  match lits with
  | [] -> emit sigma
  | lit :: rest -> (
    match lit with
    | Literal.Cmp (op, e1, e2) -> (
      match Expr.eval sigma e1, Expr.eval sigma e2 with
      | Ok v1, Ok v2 ->
        if Literal.eval_cmp op v1 v2 then
          walk st rule ~emit ~delta_pos (pos + 1) sigma rest
      | Error e, _ | _, Error e ->
        report st (Runtime_error.Expr_failed { error = e; literal = lit }))
    | Literal.Assign (x, e) -> (
      match Expr.eval sigma e with
      | Ok v -> (
        match Subst.bind x v sigma with
        | Some sigma -> walk st rule ~emit ~delta_pos (pos + 1) sigma rest
        | None -> ())
      | Error e ->
        report st (Runtime_error.Expr_failed { error = e; literal = lit }))
    | Literal.Neg a ->
      if neg_holds st sigma a then walk st rule ~emit ~delta_pos (pos + 1) sigma rest
    | Literal.Pos a -> (
      let a = Atom.subst sigma a in
      match a.Atom.peer with
      | Term.Var x ->
        report st (Runtime_error.Unbound_at_eval { var = x; where = "peer position" })
      | Term.Const pv -> (
        match Value.as_name pv with
        | None -> report st (Runtime_error.Not_a_name { value = pv; atom = a })
        | Some p when p <> st.self ->
          let residual =
            Rule.make
              ~head:(Atom.subst sigma rule.Rule.head)
              ~body:(List.map (Literal.subst sigma) (lit :: rest))
          in
          Susp_tbl.replace st.suspensions (p, residual) ()
        | Some _ ->
          let arity = Atom.arity a in
          let use_delta = delta_pos = Some pos in
          let sources, enum_var =
            match a.Atom.rel with
            | Term.Const rv -> (
              match Value.as_name rv with
              | Some c -> (readable st ~use_delta ~rel_name:(Some c) ~arity, None)
              | None ->
                report st (Runtime_error.Not_a_name { value = rv; atom = a });
                ([], None))
            | Term.Var x -> (readable st ~use_delta ~rel_name:None ~arity, Some x)
          in
          List.iter
            (fun (name, relation) ->
              let sigma =
                match enum_var with
                | None -> Some sigma
                | Some x -> Subst.bind x (Value.String name) sigma
              in
              match sigma with
              | None -> ()
              | Some sigma ->
                Relation.lookup relation (bound_positions a.Atom.args)
                  (fun tuple ->
                    match match_tuple sigma a.Atom.args tuple with
                    | Some sigma ->
                      walk st rule ~emit ~delta_pos (pos + 1) sigma rest
                    | None -> ()))
            sources)))

and neg_holds st sigma a =
  let a = Atom.subst sigma a in
  match a.Atom.peer with
  | Term.Var x ->
    report st (Runtime_error.Unbound_at_eval { var = x; where = "negated atom" });
    false
  | Term.Const pv -> (
    match Value.as_name pv with
    | None ->
      report st (Runtime_error.Not_a_name { value = pv; atom = a });
      false
    | Some p when p <> st.self ->
      report st (Runtime_error.Remote_negation { peer = p; atom = a });
      false
    | Some _ -> (
      match Atom.to_fact a with
      | None ->
        report st
          (Runtime_error.Unbound_at_eval { var = "?"; where = "negated atom" });
        false
      | Some f ->
        not (Database.mem st.db ~rel:f.Fact.rel (Tuple.of_list f.Fact.args))))

let complete st rule sigma =
  let head = Atom.subst sigma rule.Rule.head in
  match Atom.to_fact head with
  | Some fact -> dispatch st rule (Some sigma) fact
  | None -> (
    match head.Atom.rel, head.Atom.peer with
    | Term.Const v, _ when Value.as_name v = None ->
      report st (Runtime_error.Not_a_name { value = v; atom = head })
    | _, Term.Const v when Value.as_name v = None ->
      report st (Runtime_error.Not_a_name { value = v; atom = head })
    | _, _ ->
      report st
        (Runtime_error.Unbound_at_eval
           { var = String.concat "," (Atom.vars head); where = "rule head" }))

let eval_rule st ~delta_pos (rule : Rule.t) =
  walk st rule
    ~emit:(fun sigma -> complete st rule sigma)
    ~delta_pos 0 Subst.empty rule.Rule.body

let eval_agg_rule st (rule : Rule.t) =
  if not (Fixpoint.statically_local ~self:st.self rule) then
    report st
      (Runtime_error.Store_error
         {
           rel = "<aggregate rule>";
           message =
             "aggregate rules must be entirely local (every body atom's peer \
              must be this peer)";
         })
  else begin
    let sigmas = Hashtbl.create 64 in
    walk st rule
      ~emit:(fun sigma -> Hashtbl.replace sigmas (Subst.to_list sigma) sigma)
      ~delta_pos:None 0 Subst.empty rule.Rule.body;
    let groups = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ sigma ->
        let head = Atom.subst sigma rule.Rule.head in
        match Term.as_name head.Atom.rel, Term.as_name head.Atom.peer with
        | Some rel, Some peer ->
          let key_args =
            List.mapi
              (fun i t ->
                if List.mem_assoc i rule.Rule.aggs then None
                else match t with Term.Const v -> Some v | Term.Var _ -> None)
              head.Atom.args
          in
          let key = (rel, peer, key_args) in
          let agg_values =
            List.map
              (fun (i, (spec : Aggregate.spec)) ->
                (i, Subst.find spec.Aggregate.var sigma))
              rule.Rule.aggs
          in
          (match Hashtbl.find_opt groups key with
          | None -> Hashtbl.replace groups key (ref [ agg_values ])
          | Some l -> l := agg_values :: !l)
        | _, _ ->
          report st
            (Runtime_error.Unbound_at_eval { var = "?"; where = "aggregate head" }))
      sigmas;
    Hashtbl.iter
      (fun (rel, peer, key_args) collected ->
        let computed =
          List.fold_left
            (fun acc (i, (spec : Aggregate.spec)) ->
              match acc with
              | Error _ as e -> e
              | Ok assoc -> (
                let values =
                  List.filter_map
                    (fun row ->
                      List.find_map (fun (j, v) -> if i = j then v else None) row)
                    !collected
                in
                match Aggregate.apply spec.Aggregate.op values with
                | Ok v -> Ok ((i, v) :: assoc)
                | Error msg -> Error msg))
            (Ok []) rule.Rule.aggs
        in
        match computed with
        | Error msg ->
          report st
            (Runtime_error.Store_error { rel = "<aggregate>"; message = msg })
        | Ok assoc ->
          let args =
            List.mapi
              (fun i slot ->
                match slot with Some v -> v | None -> List.assoc i assoc)
              key_args
          in
          dispatch st rule None (Fact.make ~rel ~peer args))
      groups
  end

let pos_positions (rule : Rule.t) =
  List.concat
    (List.mapi
       (fun i lit ->
         match lit with
         | Literal.Pos _ -> [ i ]
         | Literal.Neg _ | Literal.Cmp _ | Literal.Assign _ -> [])
       rule.Rule.body)

let run_stratum st strategy all_rules =
  let agg_rules, rules = List.partition Rule.is_aggregate all_rules in
  st.delta <- Hashtbl.create 8;
  st.delta_next <- Hashtbl.create 8;
  List.iter (eval_agg_rule st) agg_rules;
  List.iter (fun r -> eval_rule st ~delta_pos:None r) rules;
  st.iterations <- st.iterations + 1;
  let rec loop () =
    if Hashtbl.length st.delta_next = 0 then ()
    else begin
      st.delta <- st.delta_next;
      st.delta_next <- Hashtbl.create 8;
      st.iterations <- st.iterations + 1;
      (match strategy with
      | Fixpoint.Naive -> List.iter (fun r -> eval_rule st ~delta_pos:None r) rules
      | Fixpoint.Seminaive ->
        List.iter
          (fun r ->
            List.iter (fun p -> eval_rule st ~delta_pos:(Some p) r) (pos_positions r))
          rules);
      loop ()
    end
  in
  loop ()

let run ?(strategy = Fixpoint.Seminaive) ?(record_provenance = false) ~self db
    rules =
  let intensional rel =
    match Database.kind db rel with
    | Some Decl.Intensional -> true
    | Some Decl.Extensional | None -> false
  in
  match Stratify.compute ~self ~intensional rules with
  | Error e -> Error e
  | Ok { Stratify.strata } ->
    let st =
      {
        self;
        db;
        delta = Hashtbl.create 8;
        delta_next = Hashtbl.create 8;
        deduced = Fact_tbl.create 64;
        induced = Fact_tbl.create 64;
        messages = Fact_tbl.create 64;
        suspensions = Susp_tbl.create 32;
        provenance =
          (if record_provenance then Some (Fact_tbl.create 64) else None);
        errors = [];
        error_count = 0;
        derivations = 0;
        iterations = 0;
      }
    in
    Array.iter (fun rules -> run_stratum st strategy rules) strata;
    let to_list tbl = Fact_tbl.fold (fun f () acc -> f :: acc) tbl [] in
    Ok
      {
        Fixpoint.deduced = to_list st.deduced;
        induced = to_list st.induced;
        messages = to_list st.messages;
        suspensions = Susp_tbl.fold (fun s () acc -> s :: acc) st.suspensions [];
        (* The reference model does not attribute deliveries to rules;
           differentials compare the semantic fields, not these. *)
        origins = [];
        susp_sources = [];
        errors = List.rev st.errors;
        iterations = st.iterations;
        derivations = st.derivations;
        provenance =
          (match st.provenance with
          | None -> []
          | Some tbl -> Fact_tbl.fold (fun _ d acc -> d :: acc) tbl []);
      }
