open Wdl_store

(* Sharded-delta machinery for the parallel fixpoint.

   Partitioning follows the dynamic-data-exchange scheme from the
   distributed-RDF-stores literature: a tuple is owned by the shard of
   its first column's interned id. With [shards >= domains], shard [s]
   is evaluated by worker [s mod domains]; keeping the shard count
   independent of the domain count lets tests vary one without the
   other and keeps ownership stable if the pool grows. *)

let owner = Shard_view.owner

(* The worker evaluating shard [s] out of [shards] on [domains] workers. *)
let worker_of ~shards ~domains id = owner ~shards id mod domains

(* A derived head captured on a worker: the same (rel, peer, tuple)
   triple the sequential engine routes through [dispatch_head], parked
   until the merge barrier. *)
type emission = { rel : string; peer : string; tuple : Tuple.t }

(* Per-worker ordered emission buffer — the batch envelope a worker
   hands the master at the barrier. Push order is replay order. *)
module Outbox = struct
  type t = { mutable items : emission array; mutable n : int }

  let dummy = { rel = ""; peer = ""; tuple = [||] }
  let create () = { items = [||]; n = 0 }

  let push b e =
    if b.n >= Array.length b.items then begin
      let bigger = Array.make (max 16 (2 * b.n)) dummy in
      Array.blit b.items 0 bigger 0 b.n;
      b.items <- bigger
    end;
    b.items.(b.n) <- e;
    b.n <- b.n + 1

  let length b = b.n

  let iter f b =
    for i = 0 to b.n - 1 do
      f b.items.(i)
    done
end

(* Split a delta table into [domains] per-worker delta tables by
   first-column ownership. Worker relations share the pool and skip
   indexing, exactly like the deltas they partition. *)
let split_delta ~pool ~shards ~domains (delta : (string, Relation.t) Hashtbl.t) =
  let parts : (string, Relation.t) Hashtbl.t array =
    Array.init domains (fun _ -> Hashtbl.create 8)
  in
  Hashtbl.iter
    (fun rel r ->
      Relation.iter_first_id
        (fun tuple id ->
          let w = worker_of ~shards ~domains id in
          let pr =
            match Hashtbl.find_opt parts.(w) rel with
            | Some pr -> pr
            | None ->
              let pr =
                Relation.create ~pool ~indexing:false
                  ~arity:(Relation.arity r) ()
              in
              Hashtbl.add parts.(w) rel pr;
              pr
          in
          ignore (Relation.insert pr tuple))
        r)
    delta;
  parts
