(** Sharded-delta machinery for the parallel fixpoint: first-column
    ownership, per-worker emission envelopes, and delta splitting. *)

open Wdl_store

val owner : shards:int -> int -> int
(** Shard owning an interned first-column id (see
    {!Wdl_store.Shard_view.owner}). *)

val worker_of : shards:int -> domains:int -> int -> int
(** Worker evaluating that shard: [owner ~shards id mod domains]. *)

type emission = { rel : string; peer : string; tuple : Tuple.t }
(** A derived head captured on a worker, replayed through the master's
    dispatch at the merge barrier. *)

module Outbox : sig
  type t

  val create : unit -> t
  val push : t -> emission -> unit
  val length : t -> int

  val iter : (emission -> unit) -> t -> unit
  (** In push order — replay order at the barrier. *)
end

val split_delta :
  pool:Intern.t ->
  shards:int ->
  domains:int ->
  (string, Relation.t) Hashtbl.t ->
  (string, Relation.t) Hashtbl.t array
(** Partition a delta table into per-worker delta tables by
    first-column ownership. Length [domains]; relations share [pool]
    and skip indexing. *)
