(** Stratification of a peer's current rule set.

    Rules change at run time (delegation installs/retracts them), so
    stratification is recomputed whenever the rule set changes. The
    analysis is conservative in the presence of the paper's relation
    and peer variables:

    - an atom whose relation is a variable may read {e any} local
      intensional relation;
    - a head whose relation or peer is a variable may derive into
      {e any} local intensional relation;
    - body literals at or after the first atom whose peer is a constant
      remote name never run locally and contribute no dependencies.

    A rule set whose dependency graph has a cycle through negation is
    rejected (the demo system did not implement negation at all; we
    implement the standard stratified semantics). *)

open Wdl_syntax

type error =
  | Negative_cycle of string list
      (** intensional relation names involved in the cycle *)

val pp_error : Format.formatter -> error -> unit

type t = {
  strata : Rule.t list array;  (** rules grouped by stratum, in order *)
}

val compute :
  self:string ->
  intensional:(string -> bool) ->
  Rule.t list ->
  (t, error) result
(** [intensional rel] must say whether a local relation name is (or
    would be) intensional; unknown relations auto-create as extensional
    and should answer [false]. *)

(** {1 Dependency introspection}

    The nodes a rule contributes to the stratification graph, exposed
    so diagnostics (the [WDL010] negative-cycle trace in
    [Wdl_analysis]) can point at the specific rules closing a cycle
    instead of only listing the relations involved. *)

type node =
  | Rel of string  (** one local intensional relation *)
  | Star           (** a variable relation/peer: any of them *)

val head_node : self:string -> intensional:(string -> bool) -> Atom.t -> node option
(** The node a rule head derives into, or [None] when it cannot derive
    locally (remote constant head, or a non-intensional relation). *)

val body_deps :
  self:string ->
  intensional:(string -> bool) ->
  Literal.t list ->
  (node * bool) list
(** Nodes read by the locally-evaluated body prefix (literals past a
    definitely-remote atom never run locally), with [true] marking a
    dependency under negation. *)
