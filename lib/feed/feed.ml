open Wdl_syntax
module Peer = Webdamlog.Peer
module System = Webdamlog.System

type t = {
  system : System.t;
  peers : (string, Peer.t) Hashtbl.t;
  mutable order : string list;
}

let q name = Value.to_string (Value.String name)

let user_program name =
  Printf.sprintf
    {|
    ext posts@%s(id, author, text, topic);
    ext follows@%s(who);
    ext muted@%s(who);
    ext topics@%s(topic);
    ext reshared@%s(id);
    int incoming@%s(id, author, text, topic);
    int timeline@%s(id, author, text, topic);
    int topicline@%s(id, author, text, topic);
    int digest@%s(author, n);
    int fof@%s(who);
    int suggestion@%s(who);
    builtin window recent@%s(id, author, text, topic) with size=8;
    builtin topk hot@%s(topic, n) with k=3, size=8;
    int trending@%s(topic, n);

    incoming@%s($id, $a, $t, $k) :-
      follows@%s($w), posts@$w($id, $a, $t, $k);

    timeline@%s($id, $a, $t, $k) :-
      incoming@%s($id, $a, $t, $k), not muted@%s($a);

    topicline@%s($id, $a, $t, $k) :-
      timeline@%s($id, $a, $t, $k), topics@%s($k);

    digest@%s($a, count($id)) :- timeline@%s($id, $a, $t, $k);

    fof@%s($w2) :- follows@%s($w), follows@$w($w2);

    suggestion@%s($w2) :-
      fof@%s($w2), not follows@%s($w2), $w2 != %s;

    posts@%s($id, $a, $t, $k) :-
      reshared@%s($id), incoming@%s($id, $a, $t, $k);

    recent@%s($id, $a, $t, $k) :- timeline@%s($id, $a, $t, $k);

    trending@%s($k, count($id)) :- recent@%s($id, $a, $t, $k);
    |}
    (q name) (q name) (q name) (q name) (q name) (q name) (q name) (q name)
    (q name) (q name) (q name)
    (q name) (q name) (q name)
    (q name) (q name)
    (q name) (q name) (q name)
    (q name) (q name) (q name)
    (q name) (q name)
    (q name) (q name)
    (q name) (q name) (q name) (q name)
    (q name) (q name) (q name)
    (q name) (q name)
    (q name) (q name)

let create ?transport () =
  {
    system = System.create ?transport ~drop_unknown:true ();
    peers = Hashtbl.create 16;
    order = [];
  }

let system t = t.system

let add_user t name =
  if Hashtbl.mem t.peers name then
    invalid_arg (Printf.sprintf "Feed.add_user: %s already exists" name);
  let peer = System.add_peer t.system name in
  (match Peer.load_string peer (user_program name) with
  | Ok () -> ()
  | Error e -> invalid_arg ("Feed.add_user: " ^ e));
  Hashtbl.replace t.peers name peer;
  t.order <- name :: t.order;
  peer

let user t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Feed.user: unknown user %s" name)

let users t = List.rev t.order

let must = function Ok () -> () | Error e -> invalid_arg ("Feed: " ^ e)

let post t ~author ~id ~text ~topic =
  must
    (Peer.insert (user t author)
       (Fact.make ~rel:"posts" ~peer:author
          [ Value.Int id; Value.String author; Value.String text;
            Value.String topic ]));
  (* The author's hot-topics sketch counts every post action, even
     re-posts of an existing id: it tracks activity, not content. *)
  must
    (Peer.insert (user t author)
       (Fact.make ~rel:"hot" ~peer:author
          [ Value.String topic; Value.Int 1 ]))

let one_string_fact rel ~user:name v =
  Fact.make ~rel ~peer:name [ Value.String v ]

let follow t ~user:name ~whom =
  must (Peer.insert (user t name) (one_string_fact "follows" ~user:name whom))

let unfollow t ~user:name ~whom =
  must (Peer.delete (user t name) (one_string_fact "follows" ~user:name whom))

let mute t ~user:name ~whom =
  must (Peer.insert (user t name) (one_string_fact "muted" ~user:name whom))

let unmute t ~user:name ~whom =
  must (Peer.delete (user t name) (one_string_fact "muted" ~user:name whom))

let subscribe t ~user:name ~topic =
  must (Peer.insert (user t name) (one_string_fact "topics" ~user:name topic))

let reshare t ~user:name ~id =
  must
    (Peer.insert (user t name)
       (Fact.make ~rel:"reshared" ~peer:name [ Value.Int id ]))

let run ?max_rounds t = System.run ?max_rounds t.system

type entry = { id : int; author : string; text : string; topic : string }

let entries_of rel t ~user:name =
  Peer.query (user t name) rel
  |> List.filter_map (fun (f : Fact.t) ->
         match f.Fact.args with
         | [ Value.Int id; Value.String author; Value.String text;
             Value.String topic ] ->
           Some { id; author; text; topic }
         | _ -> None)

let timeline = entries_of "timeline"
let topicline = entries_of "topicline"
let recent = entries_of "recent"

let weighted rel t ~user:name =
  Peer.query (user t name) rel
  |> List.filter_map (fun (f : Fact.t) ->
         match f.Fact.args with
         | [ Value.String topic; Value.Int n ] -> Some (topic, n)
         | _ -> None)

let trending t ~user:name = List.sort compare (weighted "trending" t ~user:name)

let hot_topics t ~user:name =
  weighted "hot" t ~user:name
  |> List.sort (fun (k1, n1) (k2, n2) ->
         match Int.compare n2 n1 with
         | 0 -> String.compare k1 k2
         | c -> c)

let digest t ~user:name =
  Peer.query (user t name) "digest"
  |> List.filter_map (fun (f : Fact.t) ->
         match f.Fact.args with
         | [ Value.String author; Value.Int n ] -> Some (author, n)
         | _ -> None)
  |> List.sort compare

let suggestions t ~user:name =
  Peer.query (user t name) "suggestion"
  |> List.filter_map (fun (f : Fact.t) ->
         match f.Fact.args with
         | [ Value.String who ] -> Some who
         | _ -> None)
  |> List.sort_uniq String.compare
