(** Wefeed: a decentralised social reader, the second application.

    The paper's thesis is that casual users can build distributed
    applications from a handful of rules; Wepic (pictures) is its demo.
    Wefeed applies the same method to the introduction's other
    motivation — Joe following friends' posts without a central
    service. Each user's peer runs seven rules:

    {v
    // pull the posts of everyone you follow (delegation per followee)
    incoming@U($id,$a,$t,$k)  :- follows@U($w), posts@$w($id,$a,$t,$k);

    // mute locally — negation cannot cross peers, so filtering happens
    // after the facts arrive, in a second view
    timeline@U($id,$a,$t,$k)  :- incoming@U($id,$a,$t,$k), not muted@U($a);

    // focus on subscribed topics
    topicline@U($id,$a,$t,$k) :- timeline@U($id,$a,$t,$k), topics@U($k);

    // per-author digest (aggregation)
    digest@U($a, count($id))  :- timeline@U($id,$a,$t,$k);

    // friends-of-friends (chained delegation), then local filtering
    fof@U($w2)        :- follows@U($w), follows@$w($w2);
    suggestion@U($w2) :- fof@U($w2), not follows@U($w2), $w2 != "U";

    // resharing republishes into your own posts (inductive update)
    posts@U($id,$a,$t,$k) :- reshared@U($id), incoming@U($id,$a,$t,$k);

    // recent-items: timeline entries flow into a sliding window
    // (builtin module, last 8 stages), and an aggregate view counts
    // posts per topic over just that window
    builtin window recent@U(id, author, text, topic) with size=8;
    recent@U($id,$a,$t,$k)    :- timeline@U($id,$a,$t,$k);
    trending@U($k, count($id)) :- recent@U($id,$a,$t,$k);

    // hot: a top-k module fed by the post action itself
    builtin topk hot@U(topic, n) with k=3, size=8;
    v} *)

type t

val create : ?transport:Webdamlog.Message.t Wdl_net.Transport.t -> unit -> t
val system : t -> Webdamlog.System.t
val add_user : t -> string -> Webdamlog.Peer.t
val user : t -> string -> Webdamlog.Peer.t
val users : t -> string list

(** {1 Actions} *)

val post : t -> author:string -> id:int -> text:string -> topic:string -> unit
val follow : t -> user:string -> whom:string -> unit
val unfollow : t -> user:string -> whom:string -> unit
val mute : t -> user:string -> whom:string -> unit
val unmute : t -> user:string -> whom:string -> unit
val subscribe : t -> user:string -> topic:string -> unit
val reshare : t -> user:string -> id:int -> unit

val run : ?max_rounds:int -> t -> (int, string) result

(** {1 Views} *)

type entry = { id : int; author : string; text : string; topic : string }

val timeline : t -> user:string -> entry list
val topicline : t -> user:string -> entry list
val digest : t -> user:string -> (string * int) list
(** [(author, how many timeline posts)], sorted by author. *)

val suggestions : t -> user:string -> string list
(** Friends-of-friends not yet followed, sorted. *)

val recent : t -> user:string -> entry list
(** The sliding-window view: timeline entries that flowed in within
    the trailing 8 evaluation stages. An entry whose window slot
    expires re-enters one stage later while it is still derived by
    [timeline], so with a live system this tracks recent activity
    rather than a strict suffix. *)

val trending : t -> user:string -> (string * int) list
(** [(topic, posts in the recent window)], an aggregate view computed
    over the [recent] builtin, sorted by topic. *)

val hot_topics : t -> user:string -> (string * int) list
(** The top-3 topics the user posted into over the trailing window,
    heaviest first — maintained by a builtin top-k module written by
    {!post} itself. *)
