let create ?(sizer = fun _ -> 0) () =
  let inboxes : (string, 'a Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let stats = Netstats.create () in
  let inbox dst =
    match Hashtbl.find_opt inboxes dst with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add inboxes dst q;
      q
  in
  let send ~src:_ ~dst msg =
    stats.Netstats.sent <- stats.Netstats.sent + 1;
    stats.Netstats.bytes <- stats.Netstats.bytes + sizer msg;
    Queue.push msg (inbox dst)
  in
  let batch_size = Netstats.batch_hist ~transport:"inmem" () in
  let send_many ~dst items =
    stats.Netstats.batches <- stats.Netstats.batches + 1;
    Wdl_obs.Obs.observe batch_size (float_of_int (List.length items));
    List.iter (fun (src, msg) -> send ~src ~dst msg) items
  in
  let drain dst =
    let q = inbox dst in
    let msgs = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    stats.Netstats.delivered <- stats.Netstats.delivered + List.length msgs;
    msgs
  in
  let pending () =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) inboxes 0
  in
  Netstats.register ~transport:"inmem" stats;
  Netstats.register_pending ~transport:"inmem" pending;
  {
    Transport.send;
    send_many;
    drain;
    pending;
    advance = (fun _ -> ());
    now = (fun () -> 0.);
    stats = (fun () -> stats);
  }
