type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable bytes : int;
  mutable retransmits : int;
  mutable dup_dropped : int;
  mutable send_failures : int;
  mutable acked : int;
  mutable batches : int;
  mutable stalled : int;
  mutable reorder_dropped : int;
}

let create () =
  {
    sent = 0;
    delivered = 0;
    bytes = 0;
    retransmits = 0;
    dup_dropped = 0;
    send_failures = 0;
    acked = 0;
    batches = 0;
    stalled = 0;
    reorder_dropped = 0;
  }

let reset t =
  t.sent <- 0;
  t.delivered <- 0;
  t.bytes <- 0;
  t.retransmits <- 0;
  t.dup_dropped <- 0;
  t.send_failures <- 0;
  t.acked <- 0;
  t.batches <- 0;
  t.stalled <- 0;
  t.reorder_dropped <- 0

(* Re-export every field through the metrics registry as callback
   counters: sampled at scrape time, zero cost on the send/drain path.
   Creating a second transport with the same label replaces the
   callbacks (last one wins). *)
let register ?registry ~transport t =
  let labels = [ ("transport", transport) ] in
  let field name help read =
    Wdl_obs.Obs.on_collect ?registry ~help ~labels ~kind:`Counter name
      (fun () -> float_of_int (read ()))
  in
  field "wdl_net_sent_total" "Messages handed to the transport" (fun () ->
      t.sent);
  field "wdl_net_delivered_total" "Messages drained by receivers" (fun () ->
      t.delivered);
  field "wdl_net_bytes_total" "Estimated payload bytes sent" (fun () ->
      t.bytes);
  field "wdl_net_retransmits_total"
    "Copies re-sent by a reliability layer after a timeout" (fun () ->
      t.retransmits);
  field "wdl_net_dup_dropped_total"
    "Received copies discarded by receiver-side dedup" (fun () ->
      t.dup_dropped);
  field "wdl_net_send_failures_total"
    "Sends that failed at the transport" (fun () -> t.send_failures);
  field "wdl_net_acked_total"
    "Messages confirmed delivered by a cumulative ack" (fun () -> t.acked);
  field "wdl_net_batches_total"
    "Coalesced per-destination batches handed to the transport" (fun () ->
      t.batches);
  field "wdl_net_window_stalls_total"
    "Sends parked because the per-link send window was full" (fun () ->
      t.stalled);
  field "wdl_net_reorder_dropped_total"
    "Received frames dropped because the reorder buffer was full" (fun () ->
      t.reorder_dropped)

(* Messages per coalesced per-destination flush; one observation per
   send_many call. *)
let batch_hist ?registry ~transport () =
  Wdl_obs.Obs.histogram ?registry
    ~labels:[ ("transport", transport) ]
    ~help:"Messages per coalesced per-destination batch"
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]
    "wdl_net_batch_size"

let register_pending ?registry ~transport read =
  Wdl_obs.Obs.on_collect ?registry
    ~help:"Messages queued or in flight in the transport"
    ~labels:[ ("transport", transport) ]
    ~kind:`Gauge "wdl_net_pending" (fun () -> float_of_int (read ()))

let pp ppf t =
  Format.fprintf ppf "sent=%d delivered=%d bytes=%d" t.sent t.delivered t.bytes;
  if t.retransmits > 0 || t.dup_dropped > 0 || t.send_failures > 0 || t.acked > 0
  then
    Format.fprintf ppf " retransmits=%d dup_dropped=%d send_failures=%d acked=%d"
      t.retransmits t.dup_dropped t.send_failures t.acked
