(** Message-level counters kept by every transport. *)

type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable bytes : int;  (** estimated payload bytes, when a sizer is set *)
  mutable retransmits : int;
      (** copies re-sent by a reliability layer after a timeout *)
  mutable dup_dropped : int;
      (** received copies discarded by receiver-side dedup *)
  mutable send_failures : int;
      (** sends that failed at the transport (connect/write errors,
          links given up on) — the message may still be retried *)
  mutable acked : int;
      (** messages confirmed delivered by a cumulative ack *)
  mutable batches : int;
      (** coalesced per-destination batches handed to the transport
          (one [send_many] call = one batch) *)
  mutable stalled : int;
      (** sends parked in the overflow queue because the per-link send
          window was full (block-sender backpressure) *)
  mutable reorder_dropped : int;
      (** received frames discarded because they landed beyond the
          receiver's bounded reorder buffer — the sender retransmits *)
}

val create : unit -> t
val reset : t -> unit

val register : ?registry:Wdl_obs.Obs.t -> transport:string -> t -> unit
(** Re-export every field through the metrics registry as
    [wdl_net_*_total{transport=...}] callback counters, sampled at
    scrape time — nothing is added to the send/drain path.  A second
    transport registering the same label replaces the callbacks. *)

val register_pending :
  ?registry:Wdl_obs.Obs.t -> transport:string -> (unit -> int) -> unit
(** Export a queue-depth reader as the gauge
    [wdl_net_pending{transport=...}]. *)

val batch_hist :
  ?registry:Wdl_obs.Obs.t ->
  transport:string ->
  unit ->
  Wdl_obs.Obs.histogram
(** The [wdl_net_batch_size{transport=...}] histogram: messages per
    coalesced per-destination batch, one observation per [send_many]. *)

val pp : Format.formatter -> t -> unit
(** Prints the base counters; the reliability counters are appended
    only when at least one of them is nonzero, so transports that never
    retransmit keep their historical rendering. *)
