type 'a envelope = {
  env_src : string;
  env_seq : int;  (* 0 for a pure ack *)
  env_ack : int;
  env_payload : 'a option;
}

let data ~src ~seq ~ack payload =
  { env_src = src; env_seq = seq; env_ack = ack; env_payload = Some payload }

let pure_ack ~src ~ack =
  { env_src = src; env_seq = 0; env_ack = ack; env_payload = None }

type config = {
  rto : float;
  backoff : float;
  max_rto : float;
  rto_jitter : float;
  max_attempts : int;
  max_window : int;
  max_held : int;
}

let default_config =
  {
    rto = 4.0;
    backoff = 2.0;
    max_rto = 64.0;
    rto_jitter = 0.25;
    max_attempts = 30;
    max_window = max_int;
    max_held = max_int;
  }

(* Sender side of one directed link. *)
type 'a outstanding = {
  o_seq : int;
  o_payload : 'a;
  o_sent : float;  (* clock time of the first transmission *)
  mutable o_next : float;  (* clock time of the next retransmission *)
  mutable o_rto : float;
  mutable o_attempts : int;
}

type 'a link_send = {
  mutable next_seq : int;
  mutable window : 'a outstanding list;  (* unacked, oldest first *)
  mutable window_len : int;
  overflow : 'a Queue.t;
      (* payloads accepted while the window was full: unstamped,
         promoted in order as acks free window slots (block-sender
         backpressure — nothing is lost, the link just stops
         amplifying into a congested path) *)
  mutable given_up : bool;
}

(* Receiver side of one directed link: the dedup window plus the
   out-of-order buffer that restores per-link FIFO. *)
type 'a link_recv = {
  mutable delivered : int;  (* highest contiguous seq handed to the app *)
  mutable held : (int * 'a) list;  (* buffered out of order, seq > delivered *)
  mutable last_acked : int;
  mutable need_ack : bool;
}

type 'a control = {
  c_sends : (string * string, 'a link_send) Hashtbl.t;
  c_recvs : (string * string, 'a link_recv) Hashtbl.t;
  mutable c_dead : (string * string) list;
  mutable c_on_dead : src:string -> dst:string -> unit;
  c_stats : Netstats.t;
}

let dead_links ctl = List.rev ctl.c_dead
let on_dead ctl f = ctl.c_on_dead <- f
let stats ctl = ctl.c_stats

let unacked ctl =
  Hashtbl.fold (fun _ ls acc -> acc + ls.window_len) ctl.c_sends 0

let queued ctl =
  Hashtbl.fold (fun _ ls acc -> acc + Queue.length ls.overflow) ctl.c_sends 0

let delivered_from ctl ~src ~dst =
  match Hashtbl.find_opt ctl.c_recvs (src, dst) with
  | Some r -> r.delivered
  | None -> 0

let revive ctl ~src ~dst =
  ctl.c_dead <- List.filter (fun l -> l <> (src, dst)) ctl.c_dead;
  match Hashtbl.find_opt ctl.c_sends (src, dst) with
  | Some ls -> ls.given_up <- false
  | None -> ()

(* Drop every directed link touching [peer], both sides: a reborn peer
   restarts its sequence numbers at 1, so stale dedup counters or
   half-open windows keyed under the old incarnation would silently
   swallow (or retransmit into) the new one. *)
let forget ctl peer =
  let involves (src, dst) = src = peer || dst = peer in
  let doomed tbl =
    Hashtbl.fold (fun k _ acc -> if involves k then k :: acc else acc) tbl []
  in
  List.iter (Hashtbl.remove ctl.c_sends) (doomed ctl.c_sends);
  List.iter (Hashtbl.remove ctl.c_recvs) (doomed ctl.c_recvs);
  ctl.c_dead <- List.filter (fun l -> not (involves l)) ctl.c_dead

let wrap ?(config = default_config) ?(seed = 11)
    (inner : 'a envelope Transport.t) : 'a Transport.t * 'a control =
  let rng = Random.State.make [| seed |] in
  let stats = Netstats.create () in
  Netstats.register ~transport:"reliable" stats;
  (* Transport-clock units, not µs: delays scale with the RTO. *)
  let ack_delay =
    Wdl_obs.Obs.histogram
      ~labels:[ ("transport", "reliable") ]
      ~help:"Transport-clock delay between first transmission and its ack"
      ~buckets:[| 0.5; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
      "wdl_net_ack_delay"
  in
  let dead_links =
    Wdl_obs.Obs.counter
      ~labels:[ ("transport", "reliable") ]
      ~help:"Links given up on after max_attempts expiries"
      "wdl_net_dead_links_total"
  in
  let ctl =
    {
      c_sends = Hashtbl.create 16;
      c_recvs = Hashtbl.create 16;
      c_dead = [];
      c_on_dead = (fun ~src:_ ~dst:_ -> ());
      c_stats = stats;
    }
  in
  (* The wrapper keeps its own clock fed by [advance] so retransmission
     works over transports whose [now] never moves (Tcp). *)
  let clock = ref (inner.Transport.now ()) in
  let link_send src dst =
    match Hashtbl.find_opt ctl.c_sends (src, dst) with
    | Some ls -> ls
    | None ->
      let ls =
        {
          next_seq = 0;
          window = [];
          window_len = 0;
          overflow = Queue.create ();
          given_up = false;
        }
      in
      Hashtbl.add ctl.c_sends (src, dst) ls;
      ls
  in
  let link_recv src dst =
    match Hashtbl.find_opt ctl.c_recvs (src, dst) with
    | Some r -> r
    | None ->
      let r = { delivered = 0; held = []; last_acked = 0; need_ack = false } in
      Hashtbl.add ctl.c_recvs (src, dst) r;
      r
  in
  (* Cumulative ack piggybacked on anything [me] sends to [peer]:
     everything [me] has contiguously delivered on the reverse link. *)
  let ack_for ~me ~peer =
    let r = link_recv peer me in
    r.last_acked <- r.delivered;
    r.need_ack <- false;
    r.delivered
  in
  let jittered rto =
    rto *. (1.0 +. (config.rto_jitter *. (Random.State.float rng 2.0 -. 1.0)))
  in
  (* Stamp one payload: allocate its sequence number and record it in
     the retransmission window. *)
  let stamp ~src ~dst payload =
    let ls = link_send src dst in
    ls.next_seq <- ls.next_seq + 1;
    let o =
      {
        o_seq = ls.next_seq;
        o_payload = payload;
        o_sent = !clock;
        o_next = !clock +. jittered config.rto;
        o_rto = config.rto;
        o_attempts = 1;
      }
    in
    ls.window <- ls.window @ [ o ];
    ls.window_len <- ls.window_len + 1;
    stats.Netstats.sent <- stats.Netstats.sent + 1;
    o
  in
  (* Block-sender backpressure: a full window parks the payload in the
     link's overflow queue instead of amplifying into a path that is
     not acking. Parked payloads are promoted, in order, as acks free
     slots ([promote], called from [drain]). *)
  let has_room ls = ls.window_len < config.max_window in
  let promote ~src ~dst ls =
    let moved = ref [] in
    while has_room ls && not (Queue.is_empty ls.overflow) do
      let payload = Queue.pop ls.overflow in
      let o = stamp ~src ~dst payload in
      moved :=
        (src, data ~src ~seq:o.o_seq ~ack:(ack_for ~me:src ~peer:dst) payload)
        :: !moved
    done;
    match List.rev !moved with
    | [] -> ()
    | [ (src, env) ] -> inner.Transport.send ~src ~dst env
    | envs -> inner.Transport.send_many ~dst envs
  in
  let send ~src ~dst payload =
    let ls = link_send src dst in
    if has_room ls then
      let o = stamp ~src ~dst payload in
      inner.Transport.send ~src ~dst
        (data ~src ~seq:o.o_seq ~ack:(ack_for ~me:src ~peer:dst) payload)
    else begin
      Queue.push payload ls.overflow;
      stats.Netstats.stalled <- stats.Netstats.stalled + 1
    end
  in
  let batch_size = Netstats.batch_hist ~transport:"reliable" () in
  let send_many ~dst items =
    if items <> [] then begin
      stats.Netstats.batches <- stats.Netstats.batches + 1;
      Wdl_obs.Obs.observe batch_size (float_of_int (List.length items));
      (* Every payload keeps its own sequence number (per-link windows
         are untouched by batching), but the stamped envelopes travel
         as one coalesced inner batch — and the receiver's single
         cumulative ack covers all of them. Payloads that hit a full
         window are parked rather than stamped. *)
      let stamped =
        List.filter_map
          (fun (src, payload) ->
            let ls = link_send src dst in
            if has_room ls then
              let o = stamp ~src ~dst payload in
              Some
                ( src,
                  data ~src ~seq:o.o_seq ~ack:(ack_for ~me:src ~peer:dst)
                    payload )
            else begin
              Queue.push payload ls.overflow;
              stats.Netstats.stalled <- stats.Netstats.stalled + 1;
              None
            end)
          items
      in
      if stamped <> [] then inner.Transport.send_many ~dst stamped
    end
  in
  let drain me =
    let ready = ref [] in
    List.iter
      (fun env ->
        let from = env.env_src in
        (* Cumulative ack: prune our window towards [from]. *)
        let ls = link_send me from in
        let acked, live =
          List.partition (fun o -> o.o_seq <= env.env_ack) ls.window
        in
        if acked <> [] then begin
          ls.window <- live;
          ls.window_len <- List.length live;
          List.iter
            (fun o -> Wdl_obs.Obs.observe ack_delay (!clock -. o.o_sent))
            acked;
          stats.Netstats.acked <- stats.Netstats.acked + List.length acked;
          promote ~src:me ~dst:from ls
        end;
        match env.env_payload with
        | None -> ()
        | Some payload ->
          let r = link_recv from me in
          if env.env_seq <= r.delivered || List.mem_assoc env.env_seq r.held
          then begin
            stats.Netstats.dup_dropped <- stats.Netstats.dup_dropped + 1;
            (* The sender retransmitted, so our previous ack was
               probably lost: re-ack even though nothing new landed. *)
            r.need_ack <- true
          end
          else if env.env_seq - r.delivered > config.max_held then begin
            (* Beyond the bounded reorder buffer: drop it and let the
               sender retransmit once the gap has closed.  The re-ack
               tells the sender where the contiguous frontier is. *)
            stats.Netstats.reorder_dropped <-
              stats.Netstats.reorder_dropped + 1;
            r.need_ack <- true
          end
          else begin
            r.held <- (env.env_seq, payload) :: r.held;
            (* Flush the contiguous prefix. *)
            let continue = ref true in
            while !continue do
              let next = r.delivered + 1 in
              match List.assoc_opt next r.held with
              | Some p ->
                r.held <- List.remove_assoc next r.held;
                r.delivered <- next;
                ready := p :: !ready
              | None -> continue := false
            done;
            r.need_ack <- true
          end)
      (inner.Transport.drain me);
    (* Ack what this drain taught us: one cumulative frame per peer
       that needs one. *)
    Hashtbl.iter
      (fun (from, to_) r ->
        if to_ = me && r.need_ack then
          inner.Transport.send ~src:me ~dst:from
            (pure_ack ~src:me ~ack:(ack_for ~me ~peer:from)))
      ctl.c_recvs;
    let ready = List.rev !ready in
    stats.Netstats.delivered <- stats.Netstats.delivered + List.length ready;
    ready
  in
  let check_retransmits () =
    Hashtbl.iter
      (fun (src, dst) ls ->
        if (not ls.given_up) && ls.window <> [] then
          if
            List.exists
              (fun o ->
                o.o_next <= !clock && o.o_attempts >= config.max_attempts)
              ls.window
          then begin
            (* Give up on the whole link: drop the window (and anything
               parked behind it) so the system can quiesce, and surface
               the dead peer instead of blocking forever.  The metric
               fires whether or not a callback is installed — a dead
               link is never silent. *)
            stats.Netstats.send_failures <-
              stats.Netstats.send_failures + ls.window_len
              + Queue.length ls.overflow;
            ls.window <- [];
            ls.window_len <- 0;
            Queue.clear ls.overflow;
            ls.given_up <- true;
            ctl.c_dead <- (src, dst) :: ctl.c_dead;
            Wdl_obs.Obs.inc dead_links;
            ctl.c_on_dead ~src ~dst
          end
          else begin
            let due = List.filter (fun o -> o.o_next <= !clock) ls.window in
            if due <> [] then begin
              List.iter
                (fun o ->
                  o.o_attempts <- o.o_attempts + 1;
                  o.o_rto <-
                    Float.min config.max_rto (o.o_rto *. config.backoff);
                  o.o_next <- !clock +. jittered o.o_rto;
                  stats.Netstats.retransmits <- stats.Netstats.retransmits + 1)
                due;
              (* One coalesced re-send per link instead of one wire
                 unit per overdue message: retransmission amplification
                 drops to a single batch the receiver acks once. *)
              let ack = ack_for ~me:src ~peer:dst in
              match due with
              | [ o ] ->
                inner.Transport.send ~src ~dst
                  (data ~src ~seq:o.o_seq ~ack o.o_payload)
              | _ ->
                inner.Transport.send_many ~dst
                  (List.map
                     (fun o -> (src, data ~src ~seq:o.o_seq ~ack o.o_payload))
                     due)
            end
          end)
      ctl.c_sends
  in
  let advance dt =
    inner.Transport.advance dt;
    clock := !clock +. dt;
    check_retransmits ()
  in
  (* Parked overflow counts as pending: those payloads were accepted
     for delivery, they just have not been stamped yet — quiescence
     must wait for them. *)
  let pending () = inner.Transport.pending () + unacked ctl + queued ctl in
  Netstats.register_pending ~transport:"reliable" pending;
  ( {
      Transport.send;
      send_many;
      drain;
      pending;
      advance;
      now = (fun () -> !clock);
      stats = (fun () -> stats);
    },
    ctl )
