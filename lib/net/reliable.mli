(** Reliable session layer: exactly-once, per-link-FIFO delivery over
    any lossy, duplicating, reordering or partitioned transport.

    WebdamLog's semantics make remote head derivations asynchronous
    messages between autonomous peers (§4); the engine above assumes
    they eventually arrive, once, in the order each link sent them.
    {!wrap} upgrades a best-effort ['a envelope Transport.t] to that
    contract:

    - every data message carries a per-(src,dst) {e sequence number};
    - the receiver dedups against its cumulative delivery counter and
      an out-of-order buffer, restoring per-link FIFO;
    - {e cumulative acks} ride on every data frame and on a pure-ack
      frame emitted by [drain] when something new (or a duplicate —
      evidence of a lost ack) landed;
    - unacked messages are retransmitted on [advance] with exponential
      backoff and jitter, driven by the transport clock;
    - after [max_attempts] expiries of one message the whole link is
      {e given up}: its window is dropped (so the system can quiesce)
      and the dead peer is surfaced through {!on_dead}/{!dead_links}.

    The wrapper's [pending] includes unacked messages, so
    [System.quiescent] only holds once every message is acknowledged —
    convergence really is convergence. Counters land in the wrapper's
    own {!Netstats} ([retransmits], [dup_dropped], [acked],
    [send_failures] for given-up windows). *)

type 'a envelope = {
  env_src : string;  (** sending peer — [drain] hides it, so it rides inside *)
  env_seq : int;  (** 1-based per-(src,dst) sequence; 0 for a pure ack *)
  env_ack : int;
      (** cumulative: highest contiguous seq the sender has delivered
          on the reverse link *)
  env_payload : 'a option;  (** [None] for a pure ack *)
}

type config = {
  rto : float;  (** initial retransmission timeout, in clock units *)
  backoff : float;  (** multiplier applied per expiry *)
  max_rto : float;  (** backoff ceiling *)
  rto_jitter : float;
      (** each deadline is scattered by [±rto_jitter] (fraction) to
          de-synchronise retransmission bursts *)
  max_attempts : int;
      (** give-up threshold: attempts per message before the link is
          declared dead *)
  max_window : int;
      (** per-link send-window bound (block-sender backpressure): once
          this many messages are in flight unacked, further sends are
          parked in an overflow queue and promoted in order as acks
          free slots.  Parked messages count as [pending]; the
          [wdl_net_window_stalls_total] counter tracks parks. *)
  max_held : int;
      (** receiver reorder-buffer bound: a frame arriving more than
          this far beyond the contiguous frontier is dropped
          ([wdl_net_reorder_dropped_total]) and recovered by the
          sender's retransmission once the gap closes *)
}

val default_config : config
(** [rto = 4.0] (four {!Webdamlog.System} rounds), [backoff = 2.0],
    [max_rto = 64.0], [rto_jitter = 0.25], [max_attempts = 30] — long
    enough patience to ride out a multi-hundred-round partition.
    [max_window] and [max_held] default to [max_int]: unbounded, the
    pre-backpressure behaviour. *)

type 'a control

val wrap :
  ?config:config ->
  ?seed:int ->
  'a envelope Transport.t ->
  'a Transport.t * 'a control
(** [wrap inner] returns the upgraded transport plus a handle for
    inspection. The inner transport carries {!envelope}s: use
    {!Wdl_net.Simnet.create}/{!Wdl_net.Inmem.create} directly (they
    are payload-generic), or {!Webdamlog.Wire.envelope_transport} to
    run over {!Tcp} bytes. [seed] (default 11) drives deadline
    jitter deterministically. *)

val unacked : 'a control -> int
(** Messages sent but not yet covered by a cumulative ack. *)

val queued : 'a control -> int
(** Messages parked in overflow queues behind full send windows. *)

val delivered_from : 'a control -> src:string -> dst:string -> int
(** Highest contiguous sequence delivered on a directed link. *)

val dead_links : 'a control -> (string * string) list
(** Directed [(src, dst)] links given up on, oldest first. *)

val on_dead : 'a control -> (src:string -> dst:string -> unit) -> unit
(** Replaces the dead-peer callback. Fired once per link, at the
    [advance] that crossed the give-up threshold. Even without a
    callback a dead link is never silent: the give-up always
    increments [wdl_net_dead_links_total{transport="reliable"}] and
    lands in {!dead_links}; {!Webdamlog.System.wire_reliable}
    additionally routes it into the system's membership view and
    trace. *)

val forget : 'a control -> string -> unit
(** Drops every directed link (send windows, overflow queues, receiver
    dedup/reorder state, dead-link entries) whose source or destination
    is the named peer. Call when a peer is removed so its name can be
    reused: a reborn peer restarts its sequences at 1, which stale
    receiver counters would otherwise swallow as duplicates. *)

val revive : 'a control -> src:string -> dst:string -> unit
(** Clears the given-up state of a link (e.g. after the operator
    restarted the peer); messages sent from then on retransmit
    normally again. The dropped window is gone — re-send at the
    application layer if needed. *)

val stats : 'a control -> Netstats.t
(** Same counters the wrapped transport's [stats] returns. *)
