type 'a envelope = {
  seq : int;  (** tie-break so per-link FIFO survives equal stamps *)
  src : string;
  mutable deliver_at : float;  (** infinity while the link is down *)
  payload : 'a;
}

type control = {
  mutable down : (string * string) list;  (* normalised pairs *)
  mutable crashed : string list;  (* peers currently down *)
  mutable lost : int;  (* messages dropped by loss injection or crashes *)
  mutable on_heal : string -> string -> unit;
  mutable on_crash : string -> unit;
}

let norm a b = if String.compare a b <= 0 then (a, b) else (b, a)

let partition ctl ~between ~and_ =
  let link = norm between and_ in
  if not (List.mem link ctl.down) then ctl.down <- link :: ctl.down

let partitioned ctl ~between ~and_ = List.mem (norm between and_) ctl.down

let heal ctl ~between ~and_ =
  let link = norm between and_ in
  if List.mem link ctl.down then begin
    ctl.down <- List.filter (fun l -> l <> link) ctl.down;
    ctl.on_heal between and_
  end

let crash ctl peer =
  if not (List.mem peer ctl.crashed) then begin
    ctl.crashed <- peer :: ctl.crashed;
    ctl.on_crash peer
  end

let restart ctl peer = ctl.crashed <- List.filter (fun p -> p <> peer) ctl.crashed
let crashed ctl peer = List.mem peer ctl.crashed
let messages_lost ctl = ctl.lost

let create_with_control ?(sizer = fun _ -> 0) ?(seed = 42) ?(base_latency = 1.0)
    ?(jitter = 0.25) ?(duplicate = 0.0) ?(loss = 0.0) ?latency () =
  let rng = Random.State.make [| seed |] in
  let clock = ref 0. in
  let seq = ref 0 in
  let stats = Netstats.create () in
  let inboxes : (string, 'a envelope list ref) Hashtbl.t = Hashtbl.create 16 in
  let ctl =
    { down = []; crashed = []; lost = 0;
      on_heal = (fun _ _ -> ()); on_crash = (fun _ -> ()) }
  in
  let inbox dst =
    match Hashtbl.find_opt inboxes dst with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add inboxes dst l;
      l
  in
  let link_latency ~src ~dst =
    if src = dst then 0.
    else
      let base =
        match latency with Some f -> f ~src ~dst | None -> base_latency
      in
      let j = if jitter > 0. then Random.State.float rng (2. *. jitter) -. jitter else 0. in
      Float.max 0. (base +. j)
  in
  (* Healing re-stamps every held message on the link. *)
  ctl.on_heal <-
    (fun a b ->
      Hashtbl.iter
        (fun dst l ->
          List.iter
            (fun e ->
              if
                e.deliver_at = Float.infinity
                && (norm e.src dst = norm a b)
              then e.deliver_at <- !clock +. link_latency ~src:e.src ~dst)
            !l)
        inboxes);
  (* A crash loses whatever sat undelivered in the peer's inbox (the
     kernel buffers of a dead process). *)
  ctl.on_crash <-
    (fun peer ->
      match Hashtbl.find_opt inboxes peer with
      | None -> ()
      | Some l ->
        ctl.lost <- ctl.lost + List.length !l;
        l := []);
  let enqueue ~src ~dst msg =
    incr seq;
    let deliver_at =
      if List.mem (norm src dst) ctl.down then Float.infinity
      else !clock +. link_latency ~src ~dst
    in
    let env = { seq = !seq; src; deliver_at; payload = msg } in
    let l = inbox dst in
    l := env :: !l
  in
  (* Each enqueued copy is lost independently; a crashed endpoint
     neither sends nor receives. *)
  let offer ~src ~dst msg =
    if List.mem dst ctl.crashed || List.mem src ctl.crashed then
      ctl.lost <- ctl.lost + 1
    else if loss > 0. && Random.State.float rng 1.0 < loss then
      ctl.lost <- ctl.lost + 1
    else enqueue ~src ~dst msg
  in
  let send ~src ~dst msg =
    stats.Netstats.sent <- stats.Netstats.sent + 1;
    stats.Netstats.bytes <- stats.Netstats.bytes + sizer msg;
    offer ~src ~dst msg;
    if duplicate > 0. && Random.State.float rng 1.0 < duplicate then
      offer ~src ~dst msg
  in
  (* A coalesced (src, dst) group is one wire unit: a single loss,
     duplicate, and latency draw covers the whole group, so it either
     arrives intact (in order, together) or not at all — exactly what
     one batched envelope on a real link does. *)
  let send_group ~src ~dst msgs =
    let n = List.length msgs in
    stats.Netstats.sent <- stats.Netstats.sent + n;
    List.iter
      (fun m -> stats.Netstats.bytes <- stats.Netstats.bytes + sizer m)
      msgs;
    let offer_group () =
      if List.mem dst ctl.crashed || List.mem src ctl.crashed then
        ctl.lost <- ctl.lost + n
      else if loss > 0. && Random.State.float rng 1.0 < loss then
        ctl.lost <- ctl.lost + n
      else begin
        let deliver_at =
          if List.mem (norm src dst) ctl.down then Float.infinity
          else !clock +. link_latency ~src ~dst
        in
        List.iter
          (fun msg ->
            incr seq;
            let env = { seq = !seq; src; deliver_at; payload = msg } in
            let l = inbox dst in
            l := env :: !l)
          msgs
      end
    in
    offer_group ();
    if duplicate > 0. && Random.State.float rng 1.0 < duplicate then
      offer_group ()
  in
  let batch_size = Netstats.batch_hist ~transport:"simnet" () in
  let send_many ~dst items =
    stats.Netstats.batches <- stats.Netstats.batches + 1;
    Wdl_obs.Obs.observe batch_size (float_of_int (List.length items));
    (* Consecutive same-source runs share an envelope; distinct sources
       stay distinct wire units even inside one round's flush. *)
    let flush src msgs = if msgs <> [] then send_group ~src ~dst (List.rev msgs) in
    let last_src, run =
      List.fold_left
        (fun (cur, run) (src, msg) ->
          match cur with
          | Some s when s = src -> (cur, msg :: run)
          | Some s ->
            flush s run;
            (Some src, [ msg ])
          | None -> (Some src, [ msg ]))
        (None, []) items
    in
    match last_src with None -> () | Some s -> flush s run
  in
  let drain dst =
    if List.mem dst ctl.crashed then []
    else begin
      let l = inbox dst in
      let ready, waiting =
        List.partition (fun e -> e.deliver_at <= !clock) !l
      in
      l := waiting;
      let ready =
        List.sort
          (fun a b ->
            match Float.compare a.deliver_at b.deliver_at with
            | 0 -> Int.compare a.seq b.seq
            | c -> c)
          ready
      in
      stats.Netstats.delivered <- stats.Netstats.delivered + List.length ready;
      List.map (fun e -> e.payload) ready
    end
  in
  let pending () = Hashtbl.fold (fun _ l acc -> acc + List.length !l) inboxes 0 in
  Netstats.register ~transport:"simnet" stats;
  Netstats.register_pending ~transport:"simnet" pending;
  ( {
      Transport.send;
      send_many;
      drain;
      pending;
      advance = (fun dt -> clock := !clock +. dt);
      now = (fun () -> !clock);
      stats = (fun () -> stats);
    },
    ctl )

let create ?sizer ?seed ?base_latency ?jitter ?duplicate ?loss ?latency () =
  fst
    (create_with_control ?sizer ?seed ?base_latency ?jitter ?duplicate ?loss
       ?latency ())
