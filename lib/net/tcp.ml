type endpoint = { host : string; port : int }

(* A send that could not be delivered yet — connect/write failure, or a
   destination with no route — parked for retry with exponential
   backoff (wall-clock driven: real sockets, real time). *)
type parked = {
  p_dst : string;
  p_payload : string;
  p_seq : int;  (** arrival order: FIFO tie-break under equal deadlines *)
  mutable p_attempts : int;
  mutable p_next : float;
}

(* Deadline-ordered binary min-heap. Replaces the O(n²) list-append
   parking: push/pop are O(log n) however many sends are parked. *)
module Pheap = struct
  type t = { mutable a : parked array; mutable n : int }

  let create () = { a = [||]; n = 0 }
  let size h = h.n

  let before x y =
    x.p_next < y.p_next || (x.p_next = y.p_next && x.p_seq < y.p_seq)

  let swap h i j =
    let t = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- t

  let rec up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if before h.a.(i) h.a.(p) then begin
        swap h i p;
        up h p
      end
    end

  let rec down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let s = ref i in
    if l < h.n && before h.a.(l) h.a.(!s) then s := l;
    if r < h.n && before h.a.(r) h.a.(!s) then s := r;
    if !s <> i then begin
      swap h i !s;
      down h !s
    end

  let push h x =
    if h.n = Array.length h.a then begin
      let a' = Array.make (max 16 (2 * h.n)) x in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    up h (h.n - 1)

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    let x = h.a.(0) in
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.a.(0) <- h.a.(h.n);
      down h 0
    end;
    x

  (* Rare path (a parked destination turned out to be in-process):
     filter the backing array, re-heapify what stays, hand back the
     extracted entries in arrival order. *)
  let take_dst h dst =
    let mine = ref [] and keep = ref [] in
    for i = 0 to h.n - 1 do
      if h.a.(i).p_dst = dst then mine := h.a.(i) :: !mine
      else keep := h.a.(i) :: !keep
    done;
    let kept = Array.of_list !keep in
    h.a <- kept;
    h.n <- Array.length kept;
    for i = (h.n / 2) - 1 downto 0 do
      down h i
    done;
    List.sort (fun a b -> Int.compare a.p_seq b.p_seq) !mine

  let clear h =
    h.a <- [||];
    h.n <- 0
end

(* An accepted connection that stays open across frames: bytes
   accumulate in [ibuf] until complete frames can be cut out. *)
type inconn = {
  fd : Unix.file_descr;
  ibuf : Buffer.t;
  mutable last : float;  (** last time bytes arrived — stall detection *)
}

type control = {
  server : Unix.file_descr;
  actual_port : int;
  registry : (string, endpoint) Hashtbl.t;
  queues : (string, string Queue.t) Hashtbl.t;
  local : (string, unit) Hashtbl.t;  (* peers that drained here at least once *)
  conns : (string, Unix.file_descr) Hashtbl.t;  (* outbound, by host:port *)
  inbound : (Unix.file_descr, inconn) Hashtbl.t;
  reuse : bool;
  connect_timeout : float;
  read_timeout : float;
  retry_delay : float;
  max_retries : int;
  parked : Pheap.t;
  mutable park_seq : int;
  mutable conns_opened : int;
  mutable conns_reused : int;
  mutable dead_letters : int;
  mutable closed : bool;
}

(* Frame layout on one connection: "<dst-bytes>\n<payload-bytes>\n" as
   decimal lengths, then the two byte strings. Unchanged from the
   per-message transport, so old and new processes interoperate; a
   connection now just carries any number of frames back to back. *)
let add_frame buf ~dst payload =
  Buffer.add_string buf
    (Printf.sprintf "%d\n%d\n" (String.length dst) (String.length payload));
  Buffer.add_string buf dst;
  Buffer.add_string buf payload

let write_all fd s =
  let rec loop off =
    if off < String.length s then
      let n = Unix.write_substring fd s off (String.length s - off) in
      loop (off + n)
  in
  loop 0

(* Blocking connect can stall for minutes on a black-holed address; do
   it non-blocking under a select deadline instead. *)
let connect_with_timeout sock addr timeout =
  Unix.set_nonblock sock;
  (try Unix.connect sock addr with
  | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
  match Unix.select [] [ sock ] [] timeout with
  | _, [ _ ], _ -> (
    match Unix.getsockopt_error sock with
    | None -> Unix.clear_nonblock sock
    | Some err -> raise (Unix.Unix_error (err, "connect", "")))
  | _, _, _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))

(* Incremental frame parser over a byte accumulation. *)
type parse = Frame of string * string * int | Need_more | Garbage

(* A frame header is two decimal lengths: anything longer than this
   without a newline cannot be one. *)
let max_header = 24

let parse_frame_at data off =
  let len = String.length data in
  match String.index_from_opt data off '\n' with
  | None -> if len - off > max_header then Garbage else Need_more
  | Some i -> (
    match String.index_from_opt data (i + 1) '\n' with
    | None -> if len - (i + 1) > max_header then Garbage else Need_more
    | Some j -> (
      match
        ( int_of_string_opt (String.sub data off (i - off)),
          int_of_string_opt (String.sub data (i + 1) (j - i - 1)) )
      with
      | Some dst_len, Some payload_len when dst_len >= 0 && payload_len >= 0 ->
        let body = j + 1 in
        if len >= body + dst_len + payload_len then
          Frame
            ( String.sub data body dst_len,
              String.sub data (body + dst_len) payload_len,
              body + dst_len + payload_len )
        else Need_more
      | _, _ -> Garbage))

let queue ctl name =
  match Hashtbl.find_opt ctl.queues name with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace ctl.queues name q;
    q

let parked_sends ctl = Pheap.size ctl.parked
let dead_letters ctl = ctl.dead_letters
let conns_opened ctl = ctl.conns_opened
let conns_reused ctl = ctl.conns_reused

let ep_key ep = ep.host ^ ":" ^ string_of_int ep.port

let fresh_conn ctl ep =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     connect_with_timeout sock
       (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port))
       ctl.connect_timeout
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  ctl.conns_opened <- ctl.conns_opened + 1;
  sock

let drop_conn ctl key sock =
  Hashtbl.remove ctl.conns key;
  try Unix.close sock with Unix.Unix_error _ -> ()

(* Put [data] on the wire towards [ep]. With [reuse] (the default) the
   connection persists across calls; a cached connection that turns out
   stale (peer restarted) gets one retry on a fresh socket before the
   failure surfaces. Without [reuse] this is the historical
   connect-per-frame discipline, kept as the benchmark ablation. *)
let write_conn ctl ep data =
  if not ctl.reuse then begin
    let sock = fresh_conn ctl ep in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        write_all sock data;
        Unix.shutdown sock Unix.SHUTDOWN_SEND)
  end
  else
    let key = ep_key ep in
    match Hashtbl.find_opt ctl.conns key with
    | None ->
      let sock = fresh_conn ctl ep in
      Hashtbl.replace ctl.conns key sock;
      (try write_all sock data with e -> drop_conn ctl key sock; raise e)
    | Some sock -> (
      match write_all sock data with
      | () -> ctl.conns_reused <- ctl.conns_reused + 1
      | exception _ ->
        drop_conn ctl key sock;
        let sock = fresh_conn ctl ep in
        Hashtbl.replace ctl.conns key sock;
        (try write_all sock data with e -> drop_conn ctl key sock; raise e))

type outcome = Delivered | Failed | No_route

(* One delivery attempt for everything queued to [dst]; never raises.
   A destination is in-process only if it has drained here ([local]) —
   an unregistered name that never drains is NOT silently queued (that
   was unbounded memory growth for a misrouted peer name); it parks,
   and becomes a dead letter when retries run out. *)
let attempt_many ctl stats ~dst payloads =
  if Hashtbl.mem ctl.local dst then begin
    let q = queue ctl dst in
    List.iter (fun p -> Queue.push p q) payloads;
    Delivered
  end
  else
    match Hashtbl.find_opt ctl.registry dst with
    | None -> No_route
    | Some ep -> (
      let buf = Buffer.create 256 in
      List.iter (fun p -> add_frame buf ~dst p) payloads;
      match write_conn ctl ep (Buffer.contents buf) with
      | () -> Delivered
      | exception Unix.Unix_error _ ->
        stats.Netstats.send_failures <- stats.Netstats.send_failures + 1;
        Failed)

let park ctl ~dst ~attempts payload =
  ctl.park_seq <- ctl.park_seq + 1;
  Pheap.push ctl.parked
    {
      p_dst = dst;
      p_payload = payload;
      p_seq = ctl.park_seq;
      p_attempts = attempts;
      p_next = Unix.gettimeofday () +. ctl.retry_delay;
    }

(* Re-attempt parked sends whose backoff deadline passed — the heap
   hands them over in deadline order. *)
let retry_parked ctl stats =
  let now = Unix.gettimeofday () in
  let rec loop () =
    match Pheap.peek ctl.parked with
    | Some p when p.p_next <= now -> (
      let p = Pheap.pop ctl.parked in
      match attempt_many ctl stats ~dst:p.p_dst [ p.p_payload ] with
      | Delivered ->
        stats.Netstats.retransmits <- stats.Netstats.retransmits + 1;
        loop ()
      | Failed | No_route ->
        p.p_attempts <- p.p_attempts + 1;
        if p.p_attempts <= ctl.max_retries then begin
          p.p_next <-
            now +. (ctl.retry_delay *. (2. ** float_of_int (min 8 p.p_attempts)));
          Pheap.push ctl.parked p
        end
        else begin
          (* Bounded patience: a destination gone (or misspelled) for
             good becomes a counted dead letter, not unbounded growth. *)
          ctl.dead_letters <- ctl.dead_letters + 1;
          stats.Netstats.send_failures <- stats.Netstats.send_failures + 1
        end;
        loop ())
    | _ -> ()
  in
  loop ()

let drop_inbound ctl ic =
  Hashtbl.remove ctl.inbound ic.fd;
  try Unix.close ic.fd with Unix.Unix_error _ -> ()

(* Cut every complete frame out of the connection's buffer; keep the
   partial tail for the next pump. A stream that cannot be a frame
   (garbage header) severs the connection. *)
let extract_frames ctl ic =
  let data = Buffer.contents ic.ibuf in
  let len = String.length data in
  let rec consume off =
    match parse_frame_at data off with
    | Frame (dst, payload, next) ->
      Queue.push payload (queue ctl dst);
      consume next
    | Need_more -> Some off
    | Garbage -> None
  in
  match consume 0 with
  | None -> drop_inbound ctl ic
  | Some off ->
    if off > 0 then begin
      let rest = String.sub data off (len - off) in
      Buffer.clear ic.ibuf;
      Buffer.add_string ic.ibuf rest
    end

(* Accept pending connections and read whatever each open one has
   ready, without ever blocking: per-connection buffers mean a stalled
   or slow writer delays only its own frames (no head-of-line
   blocking), and a writer silent mid-frame past [read_timeout] is
   dropped. *)
let pump ctl stats =
  if not ctl.closed then begin
    retry_parked ctl stats;
    let rec accept_loop () =
      match Unix.select [ ctl.server ] [] [] 0.0 with
      | [ _ ], _, _ ->
        let client, _ = Unix.accept ctl.server in
        Unix.set_nonblock client;
        Hashtbl.replace ctl.inbound client
          { fd = client; ibuf = Buffer.create 256; last = Unix.gettimeofday () };
        accept_loop ()
      | _, _, _ -> ()
    in
    accept_loop ();
    let now = Unix.gettimeofday () in
    let conns = Hashtbl.fold (fun _ ic acc -> ic :: acc) ctl.inbound [] in
    let chunk = Bytes.create 65536 in
    List.iter
      (fun ic ->
        let closed = ref false in
        let rec read_ready () =
          match Unix.read ic.fd chunk 0 (Bytes.length chunk) with
          | 0 -> closed := true
          | n ->
            Buffer.add_subbytes ic.ibuf chunk 0 n;
            ic.last <- now;
            read_ready ()
          | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
            ->
            ()
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> closed := true
        in
        read_ready ();
        extract_frames ctl ic;
        if !closed then drop_inbound ctl ic
        else if Buffer.length ic.ibuf > 0 && now -. ic.last > ctl.read_timeout
        then
          (* Mid-frame and silent past the patience bound: the partial
             frame is dropped, exactly as the bounded reader used to. *)
          drop_inbound ctl ic)
      conns
  end

let create ?(sizer = String.length) ?(port = 0) ?(reuse = true)
    ?(connect_timeout = 5.0) ?(read_timeout = 5.0) ?(retry_delay = 0.05)
    ?(max_retries = 24) () =
  (* A write to a peer that vanished must surface as EPIPE, not kill
     the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let server = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt server Unix.SO_REUSEADDR true;
  Unix.bind server (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen server 64;
  let actual_port =
    match Unix.getsockname server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let ctl =
    {
      server;
      actual_port;
      registry = Hashtbl.create 8;
      queues = Hashtbl.create 8;
      local = Hashtbl.create 8;
      conns = Hashtbl.create 8;
      inbound = Hashtbl.create 8;
      reuse;
      connect_timeout;
      read_timeout;
      retry_delay;
      max_retries;
      parked = Pheap.create ();
      park_seq = 0;
      conns_opened = 0;
      conns_reused = 0;
      dead_letters = 0;
      closed = false;
    }
  in
  let stats = Netstats.create () in
  Netstats.register ~transport:"tcp" stats;
  let counter name help read =
    Wdl_obs.Obs.on_collect ~help
      ~labels:[ ("transport", "tcp") ]
      ~kind:`Counter name
      (fun () -> float_of_int (read ()))
  in
  counter "wdl_net_conns_opened_total" "TCP connections opened" (fun () ->
      ctl.conns_opened);
  counter "wdl_net_conns_reused_total"
    "Sends that rode an already-open connection" (fun () -> ctl.conns_reused);
  counter "wdl_net_dead_letters_total"
    "Parked sends dropped after max_retries" (fun () -> ctl.dead_letters);
  let send_hist =
    Wdl_obs.Obs.histogram
      ~labels:[ ("transport", "tcp") ]
      ~help:"Wall time of one transport send (connect + write)"
      ~buckets:Wdl_obs.Obs.latency_buckets "wdl_net_send_duration_microseconds"
  in
  let drain_hist =
    Wdl_obs.Obs.histogram
      ~labels:[ ("transport", "tcp") ]
      ~help:"Wall time of one transport drain (accept + read)"
      ~buckets:Wdl_obs.Obs.latency_buckets "wdl_net_drain_duration_microseconds"
  in
  let batch_size = Netstats.batch_hist ~transport:"tcp" () in
  let dispatch ~dst payloads =
    match attempt_many ctl stats ~dst payloads with
    | Delivered -> ()
    | Failed ->
      (* Connect/write failures (ECONNREFUSED, EHOSTUNREACH, timeouts)
         must not escape into the caller's round loop. *)
      List.iter (park ctl ~dst ~attempts:1) payloads
    | No_route -> List.iter (park ctl ~dst ~attempts:0) payloads
  in
  let send ~src:_ ~dst payload =
    Wdl_obs.Obs.time send_hist @@ fun () ->
    stats.Netstats.sent <- stats.Netstats.sent + 1;
    stats.Netstats.bytes <- stats.Netstats.bytes + sizer payload;
    dispatch ~dst [ payload ]
  in
  let send_many ~dst items =
    if items <> [] then begin
      Wdl_obs.Obs.time send_hist @@ fun () ->
      stats.Netstats.batches <- stats.Netstats.batches + 1;
      Wdl_obs.Obs.observe batch_size (float_of_int (List.length items));
      let payloads = List.map snd items in
      List.iter
        (fun p ->
          stats.Netstats.sent <- stats.Netstats.sent + 1;
          stats.Netstats.bytes <- stats.Netstats.bytes + sizer p)
        payloads;
      dispatch ~dst payloads
    end
  in
  let drain name =
    Wdl_obs.Obs.time drain_hist @@ fun () ->
    if not (Hashtbl.mem ctl.local name) then begin
      Hashtbl.replace ctl.local name ();
      (* First drain reveals the peer is in-process: flush anything
         parked for it, in arrival order, without waiting for backoff. *)
      List.iter
        (fun p -> Queue.push p.p_payload (queue ctl name))
        (Pheap.take_dst ctl.parked name)
    end;
    pump ctl stats;
    let q = queue ctl name in
    let msgs = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    stats.Netstats.delivered <- stats.Netstats.delivered + List.length msgs;
    msgs
  in
  let pending () =
    pump ctl stats;
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) ctl.queues 0
    + Pheap.size ctl.parked
  in
  Netstats.register_pending ~transport:"tcp" pending;
  let transport =
    {
      Transport.send;
      send_many;
      drain;
      pending;
      advance = (fun _ -> ());
      now = (fun () -> 0.);
      stats = (fun () -> stats);
    }
  in
  (transport, ctl)

let port ctl = ctl.actual_port
let register ctl ~peer ep = Hashtbl.replace ctl.registry peer ep

let close ctl =
  if not ctl.closed then begin
    ctl.closed <- true;
    Pheap.clear ctl.parked;
    Hashtbl.iter
      (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      ctl.conns;
    Hashtbl.reset ctl.conns;
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      ctl.inbound;
    Hashtbl.reset ctl.inbound;
    Unix.close ctl.server
  end
