type endpoint = { host : string; port : int }

(* A send that failed at connect/write time, parked for retry with
   exponential backoff (wall-clock driven: real sockets, real time). *)
type parked = {
  p_dst : string;
  p_payload : string;
  mutable p_attempts : int;
  mutable p_next : float;
}

type control = {
  server : Unix.file_descr;
  actual_port : int;
  registry : (string, endpoint) Hashtbl.t;
  queues : (string, string Queue.t) Hashtbl.t;
  local : (string, unit) Hashtbl.t;  (* peers that drained here at least once *)
  connect_timeout : float;
  read_timeout : float;
  retry_delay : float;
  max_retries : int;
  mutable parked : parked list;  (* failed sends awaiting retry, oldest first *)
  mutable closed : bool;
}

(* Frame layout on one connection: "<dst-bytes>\n<payload-bytes>\n" as
   decimal lengths, then the two byte strings. *)
let write_frame fd ~dst payload =
  let header = Printf.sprintf "%d\n%d\n" (String.length dst) (String.length payload) in
  let all = header ^ dst ^ payload in
  let rec loop off =
    if off < String.length all then
      let n = Unix.write_substring fd all off (String.length all - off) in
      loop (off + n)
  in
  loop 0

(* Reads until the sender shuts down its write side, but never hangs on
   one that doesn't: each read is bounded by [timeout], and on expiry
   whatever partial frame accumulated is returned as-is (parse_frame
   then rejects it — the frame is dropped, not the process). *)
let read_all ?(timeout = 5.0) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Unix.select [ fd ] [] [] timeout with
    | [ _ ], _, _ ->
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
      end
    | _, _, _ -> ()  (* stalled writer: give up on the frame *)
  in
  (try loop () with Unix.Unix_error (Unix.ECONNRESET, _, _) -> ());
  Buffer.contents buf

(* Blocking connect can stall for minutes on a black-holed address; do
   it non-blocking under a select deadline instead. *)
let connect_with_timeout sock addr timeout =
  Unix.set_nonblock sock;
  (try Unix.connect sock addr with
  | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
  match Unix.select [] [ sock ] [] timeout with
  | _, [ _ ], _ -> (
    match Unix.getsockopt_error sock with
    | None -> Unix.clear_nonblock sock
    | Some err -> raise (Unix.Unix_error (err, "connect", "")))
  | _, _, _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))

let parse_frame data =
  match String.index_opt data '\n' with
  | None -> None
  | Some i -> (
    let rest_off = i + 1 in
    match String.index_from_opt data rest_off '\n' with
    | None -> None
    | Some j -> (
      match
        ( int_of_string_opt (String.sub data 0 i),
          int_of_string_opt (String.sub data rest_off (j - rest_off)) )
      with
      | Some dst_len, Some payload_len ->
        let body_off = j + 1 in
        if String.length data >= body_off + dst_len + payload_len then
          Some
            ( String.sub data body_off dst_len,
              String.sub data (body_off + dst_len) payload_len )
        else None
      | _, _ -> None))

let queue ctl name =
  match Hashtbl.find_opt ctl.queues name with
  | Some q -> q
  | None ->
    let q = Queue.create ()  in
    Hashtbl.replace ctl.queues name q;
    q

let parked_sends ctl = List.length ctl.parked

let connect_and_write ctl ep ~dst payload =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close sock)
    (fun () ->
      connect_with_timeout sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string ep.host, ep.port))
        ctl.connect_timeout;
      write_frame sock ~dst payload;
      Unix.shutdown sock Unix.SHUTDOWN_SEND)

(* One delivery attempt; never raises. *)
let try_send ctl stats ~dst payload =
  match Hashtbl.find_opt ctl.registry dst with
  | None ->
    (* No remote location: the peer lives in this process. *)
    Queue.push payload (queue ctl dst);
    true
  | Some ep -> (
    match connect_and_write ctl ep ~dst payload with
    | () -> true
    | exception Unix.Unix_error _ ->
      stats.Netstats.send_failures <- stats.Netstats.send_failures + 1;
      false)

(* Re-attempt parked sends whose backoff deadline passed. *)
let retry_parked ctl stats =
  if ctl.parked <> [] then begin
    let now = Unix.gettimeofday () in
    let keep =
      List.filter
        (fun p ->
          if p.p_next > now then true
          else if try_send ctl stats ~dst:p.p_dst p.p_payload then begin
            stats.Netstats.retransmits <- stats.Netstats.retransmits + 1;
            false
          end
          else begin
            p.p_attempts <- p.p_attempts + 1;
            p.p_next <-
              now
              +. (ctl.retry_delay *. (2. ** float_of_int (min 8 p.p_attempts)));
            (* Bounded patience: a peer gone for good must not grow an
               unbounded queue in its senders. *)
            p.p_attempts <= ctl.max_retries
          end)
        ctl.parked
    in
    ctl.parked <- keep
  end

(* Accept every connection already pending and enqueue its frame. *)
let pump ctl stats =
  if not ctl.closed then begin
    retry_parked ctl stats;
    let rec loop () =
      match Unix.select [ ctl.server ] [] [] 0.0 with
      | [ _ ], _, _ ->
        let client, _ = Unix.accept ctl.server in
        let data = read_all ~timeout:ctl.read_timeout client in
        Unix.close client;
        (match parse_frame data with
        | Some (dst, payload) -> Queue.push payload (queue ctl dst)
        | None -> ());
        loop ()
      | _, _, _ -> ()
    in
    loop ()
  end

let create ?(sizer = String.length) ?(port = 0) ?(connect_timeout = 5.0)
    ?(read_timeout = 5.0) ?(retry_delay = 0.05) ?(max_retries = 24) () =
  let server = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt server Unix.SO_REUSEADDR true;
  Unix.bind server (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen server 64;
  let actual_port =
    match Unix.getsockname server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let ctl =
    {
      server;
      actual_port;
      registry = Hashtbl.create 8;
      queues = Hashtbl.create 8;
      local = Hashtbl.create 8;
      connect_timeout;
      read_timeout;
      retry_delay;
      max_retries;
      parked = [];
      closed = false;
    }
  in
  let stats = Netstats.create () in
  Netstats.register ~transport:"tcp" stats;
  let send_hist =
    Wdl_obs.Obs.histogram
      ~labels:[ ("transport", "tcp") ]
      ~help:"Wall time of one transport send (connect + write)"
      ~buckets:Wdl_obs.Obs.latency_buckets "wdl_net_send_duration_microseconds"
  in
  let drain_hist =
    Wdl_obs.Obs.histogram
      ~labels:[ ("transport", "tcp") ]
      ~help:"Wall time of one transport drain (accept + read)"
      ~buckets:Wdl_obs.Obs.latency_buckets "wdl_net_drain_duration_microseconds"
  in
  let send ~src:_ ~dst payload =
    Wdl_obs.Obs.time send_hist @@ fun () ->
    stats.Netstats.sent <- stats.Netstats.sent + 1;
    stats.Netstats.bytes <- stats.Netstats.bytes + sizer payload;
    if not (try_send ctl stats ~dst payload) then
      (* Park it: connect/write failures (ECONNREFUSED, EHOSTUNREACH,
         timeouts) must not escape into the caller's round loop. *)
      ctl.parked <-
        ctl.parked
        @ [
            {
              p_dst = dst;
              p_payload = payload;
              p_attempts = 1;
              p_next = Unix.gettimeofday () +. ctl.retry_delay;
            };
          ]
  in
  let drain name =
    Wdl_obs.Obs.time drain_hist @@ fun () ->
    Hashtbl.replace ctl.local name ();
    pump ctl stats;
    let q = queue ctl name in
    let msgs = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    stats.Netstats.delivered <- stats.Netstats.delivered + List.length msgs;
    msgs
  in
  let pending () =
    pump ctl stats;
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) ctl.queues 0
    + List.length ctl.parked
  in
  Netstats.register_pending ~transport:"tcp" pending;
  let transport =
    {
      Transport.send;
      drain;
      pending;
      advance = (fun _ -> ());
      now = (fun () -> 0.);
      stats = (fun () -> stats);
    }
  in
  (transport, ctl)

let port ctl = ctl.actual_port
let register ctl ~peer ep = Hashtbl.replace ctl.registry peer ep

let close ctl =
  if not ctl.closed then begin
    ctl.closed <- true;
    ctl.parked <- [];
    Unix.close ctl.server
  end
