(** TCP transport: frames of bytes between processes over real sockets
    (the paper's deployment runs peers on two laptops and a cloud
    host; this transport is what {!Inmem}/{!Simnet} simulate).

    One {!create} per process: it listens on a local port and serves
    every peer hosted by the process. Remote peers are located through
    {!register}. A connection to each registered endpoint is opened
    once and reused for every subsequent frame ([reuse], the default) —
    no connect-per-send, no shutdown-per-frame — and a [send_many]
    batch rides the wire as one write. [drain] never blocks: it
    accepts pending connections and reads whatever bytes each open
    connection has ready into per-connection buffers, so a stalled
    writer delays only its own frames (no head-of-line blocking).

    Failure handling: a connect or write that fails (ECONNREFUSED,
    EHOSTUNREACH, timeout) never escapes as an exception — the send is
    counted in [Netstats.send_failures] and parked in a
    deadline-ordered heap for retry with exponential backoff,
    re-attempted on every [drain]/[pending] until it succeeds (counted
    as a retransmit) or [max_retries] is exhausted, at which point it
    is dropped and counted in {!dead_letters}. A destination that is
    neither registered nor known to live in this process (it has never
    drained here) parks the same way rather than silently accumulating
    in a queue nobody reads. Connects are bounded by
    [connect_timeout]; a sender silent mid-frame for longer than
    [read_timeout] loses the partial frame and its connection.
    At-least/at-most-once gaps left by this best-effort discipline are
    what {!Reliable} (over {!Webdamlog.Wire.envelope_transport})
    closes.

    The payload is an opaque string — the engine's message codec is
    {!Webdamlog.Wire}. *)

type endpoint = { host : string; port : int }

type control

val create :
  ?sizer:(string -> int) ->
  ?port:int ->
  ?reuse:bool ->
  ?connect_timeout:float ->
  ?read_timeout:float ->
  ?retry_delay:float ->
  ?max_retries:int ->
  unit ->
  string Transport.t * control
(** Listens on [127.0.0.1:port] (default [0]: ephemeral). Defaults:
    [reuse = true] (set [false] for the historical connect-per-frame
    behaviour — the benchmark ablation), [connect_timeout = 5.0] s,
    [read_timeout = 5.0] s, [retry_delay = 0.05] s (doubling per
    attempt, capped), [max_retries = 24]. *)

val port : control -> int

val register : control -> peer:string -> endpoint -> unit
(** Where to connect for [peer]. A peer served by this same process
    needs no registration: frames to it short-circuit locally once it
    has drained (before its first drain they sit parked, flushed the
    moment it does). *)

val parked_sends : control -> int
(** Sends currently awaiting a backoff retry. *)

val dead_letters : control -> int
(** Parked sends dropped after [max_retries] — misrouted or
    permanently unreachable destinations. *)

val conns_opened : control -> int
(** Outbound connections opened since [create]. *)

val conns_reused : control -> int
(** Sends that rode an already-open connection. *)

val close : control -> unit
