type 'a t = {
  send : src:string -> dst:string -> 'a -> unit;
  send_many : dst:string -> (string * 'a) list -> unit;
  drain : string -> 'a list;
  pending : unit -> int;
  advance : float -> unit;
  now : unit -> float;
  stats : unit -> Netstats.t;
}

let send t = t.send
let send_many t = t.send_many
let drain t = t.drain

(* Fallback for transports without native batching: one plain send per
   message, in order. *)
let send_many_via send ~dst items =
  List.iter (fun (src, payload) -> send ~src ~dst payload) items
