(** Transports: how peer-to-peer messages travel.

    A transport is a first-class record, generic in the payload type;
    the WebdamLog engine instantiates it with its message type. Two
    in-process implementations are provided ({!Inmem}, {!Simnet});
    {!Tcp} carries length-prefixed strings across real sockets.

    Delivery is per-link FIFO in {!Inmem}; {!Simnet} can delay and
    reorder across links, which is what a real WAN does to autonomous
    peers (§4 runs peers on two laptops and a cloud host). *)

type 'a t = {
  send : src:string -> dst:string -> 'a -> unit;
  send_many : dst:string -> (string * 'a) list -> unit;
      (** Deliver every [(src, payload)] of one round destined to one
          peer as a single wire unit (one envelope / one connection
          write), preserving list order. Semantically equivalent to
          [send]-ing each element; transports exploit the coalescing
          for throughput ({!Tcp} persistent connections, one {!Simnet}
          latency draw, batched {!Reliable} retransmits). *)
  drain : string -> 'a list;
      (** Messages currently deliverable to a peer, oldest first;
          removes them from the transport. *)
  pending : unit -> int;
      (** Messages accepted but not yet drained (in flight + queued). *)
  advance : float -> unit;
      (** Advances simulated time (no-op for non-simulated transports). *)
  now : unit -> float;
  stats : unit -> Netstats.t;
}

val send : 'a t -> src:string -> dst:string -> 'a -> unit
val send_many : 'a t -> dst:string -> (string * 'a) list -> unit
val drain : 'a t -> string -> 'a list

val send_many_via :
  (src:string -> dst:string -> 'a -> unit) ->
  dst:string ->
  (string * 'a) list ->
  unit
(** [send_many_via send] is the trivial batching implementation: one
    plain [send] per element, in order — for wrappers that add no
    batching of their own. *)
