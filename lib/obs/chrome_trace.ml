type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float;
  pid : int;
  tid : int;
  args : (string * string) list;
}

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_event b e =
  Buffer.add_string b
    (Printf.sprintf
       {|{"name":"%s","cat":"%s","ph":"%s","ts":%.1f,"pid":%d,"tid":%d|}
       (escape e.name) (escape e.cat) (escape e.ph) e.ts e.pid e.tid);
  if e.ph = "i" then Buffer.add_string b {|,"s":"t"|};
  if e.args <> [] then begin
    Buffer.add_string b {|,"args":{|};
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf {|"%s":"%s"|} (escape k) (escape v)))
      e.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}'

let to_json events =
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"traceEvents":[|};
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      render_event b e)
    events;
  Buffer.add_string b "]}";
  Buffer.contents b
