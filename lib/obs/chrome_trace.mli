(** Chrome trace-event JSON (load in [chrome://tracing] or Perfetto). *)

type event = {
  name : string;
  cat : string;
  ph : string;  (** "B"/"E" duration pair, "i" instant, ... *)
  ts : float;  (** microseconds *)
  pid : int;
  tid : int;
  args : (string * string) list;
}

val to_json : event list -> string
(** [{"traceEvents":[...]}]; instant events get ["s":"t"] (thread
    scope) as the viewer requires. *)

val escape : string -> string
(** JSON string-body escaping. *)
