(* Metrics registry.  One hashtable of families keyed by name; each
   family holds its series (distinct label sets) in a list — label
   cardinality here is small (peers, transports), so a list scan at
   get-or-create time is fine and keeps the increment path to a single
   mutable store. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (* ascending upper bounds *)
  counts : int array;    (* length = Array.length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable total : int;
}

type instrument =
  | Counter_i of counter
  | Gauge_i of gauge
  | Histogram_i of histogram
  | Callback_i of (unit -> float)

type series = { labels : (string * string) list; mutable instrument : instrument }

type kind = K_counter | K_gauge | K_histogram

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  mutable f_series : series list;
}

type t = { families : (string, family) Hashtbl.t }

let create () = { families = Hashtbl.create 32 }
let default = create ()
let clear t = Hashtbl.reset t.families

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let normalize labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let family registry ~help ~kind name =
  if not (valid_name name) then invalid_arg ("Obs: invalid metric name " ^ name);
  match Hashtbl.find_opt registry.families name with
  | Some f ->
    if f.f_kind <> kind then
      invalid_arg ("Obs: metric " ^ name ^ " already registered with another kind");
    f
  | None ->
    let f = { f_name = name; f_help = help; f_kind = kind; f_series = [] } in
    Hashtbl.replace registry.families name f;
    f

let find_series f labels =
  List.find_opt (fun s -> s.labels = labels) f.f_series

let add_series f s = f.f_series <- f.f_series @ [ s ]

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  let labels = normalize labels in
  let f = family registry ~help ~kind:K_counter name in
  match find_series f labels with
  | Some { instrument = Counter_i c; _ } -> c
  | Some _ -> invalid_arg ("Obs: series of " ^ name ^ " is not a plain counter")
  | None ->
    let c = { c = 0 } in
    add_series f { labels; instrument = Counter_i c };
    c

let inc ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  let labels = normalize labels in
  let f = family registry ~help ~kind:K_gauge name in
  match find_series f labels with
  | Some { instrument = Gauge_i g; _ } -> g
  | Some _ -> invalid_arg ("Obs: series of " ^ name ^ " is not a plain gauge")
  | None ->
    let g = { g = 0. } in
    add_series f { labels; instrument = Gauge_i g };
    g

let set g v = g.g <- v
let add g v = g.g <- g.g +. v
let gauge_value g = g.g

let latency_buckets =
  [| 1.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1_000.; 2_500.; 5_000.;
     10_000.; 25_000.; 50_000.; 100_000.; 250_000.; 500_000.; 1_000_000. |]

let size_buckets =
  [| 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1_000.; 2_500.; 5_000.;
     10_000. |]

let iteration_buckets = [| 1.; 2.; 3.; 4.; 5.; 8.; 12.; 16.; 24.; 32.; 64. |]

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(buckets = latency_buckets) name =
  let labels = normalize labels in
  let f = family registry ~help ~kind:K_histogram name in
  match find_series f labels with
  | Some { instrument = Histogram_i h; _ } -> h
  | Some _ -> invalid_arg ("Obs: series of " ^ name ^ " is not a histogram")
  | None ->
    if Array.length buckets = 0 then invalid_arg "Obs: empty bucket array";
    Array.iteri
      (fun i b -> if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs: bucket bounds must be strictly ascending")
      buckets;
    let h =
      { bounds = buckets; counts = Array.make (Array.length buckets + 1) 0;
        sum = 0.; total = 0 }
    in
    add_series f { labels; instrument = Histogram_i h };
    h

let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do incr i done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1

let histogram_count h = h.total
let histogram_sum h = h.sum

let on_collect ?(registry = default) ?(help = "") ?(labels = []) ~kind name fn =
  let labels = normalize labels in
  let kind = match kind with `Counter -> K_counter | `Gauge -> K_gauge in
  let f = family registry ~help ~kind name in
  match find_series f labels with
  | Some s -> s.instrument <- Callback_i fn
  | None -> add_series f { labels; instrument = Callback_i fn }

(* Timing *)

let now_us () = Unix.gettimeofday () *. 1e6

let time h f =
  let t0 = now_us () in
  Fun.protect ~finally:(fun () -> observe h (now_us () -. t0)) f

let time_span ?registry ?labels name f =
  time (histogram ?registry ?labels ~buckets:latency_buckets name) f

(* Collection *)

type sample = {
  s_name : string;
  s_help : string;
  s_kind : [ `Counter | `Gauge | `Histogram ];
  s_labels : (string * string) list;
  s_value :
    [ `Value of float | `Histogram of (float * int) array * float * int ];
}

let sample_of_series f s =
  let kind =
    match f.f_kind with
    | K_counter -> `Counter
    | K_gauge -> `Gauge
    | K_histogram -> `Histogram
  in
  let value =
    match s.instrument with
    | Counter_i c -> `Value (float_of_int c.c)
    | Gauge_i g -> `Value g.g
    | Callback_i fn -> `Value (try fn () with _ -> nan)
    | Histogram_i h ->
      let n = Array.length h.bounds in
      let cum = Array.make (n + 1) (infinity, 0) in
      let running = ref 0 in
      for i = 0 to n - 1 do
        running := !running + h.counts.(i);
        cum.(i) <- (h.bounds.(i), !running)
      done;
      cum.(n) <- (infinity, !running + h.counts.(n));
      `Histogram (cum, h.sum, h.total)
  in
  { s_name = f.f_name; s_help = f.f_help; s_kind = kind;
    s_labels = s.labels; s_value = value }

let compare_labels a b = compare a b

let collect ?(registry = default) () =
  let families =
    Hashtbl.fold (fun _ f acc -> f :: acc) registry.families []
    |> List.sort (fun a b -> String.compare a.f_name b.f_name)
  in
  List.concat_map
    (fun f ->
      f.f_series
      |> List.sort (fun a b -> compare_labels a.labels b.labels)
      |> List.map (sample_of_series f))
    families

let read ?(registry = default) ?(labels = []) name =
  let labels = normalize labels in
  match Hashtbl.find_opt registry.families name with
  | None -> None
  | Some f ->
    (match find_series f labels with
    | None -> None
    | Some s ->
      (match s.instrument with
      | Counter_i c -> Some (float_of_int c.c)
      | Gauge_i g -> Some g.g
      | Callback_i fn -> (try Some (fn ()) with _ -> None)
      | Histogram_i h -> Some (float_of_int h.total)))

let read_one ?registry ?labels name =
  match read ?registry ?labels name with Some v -> v | None -> 0.

(* Dump: stable, cram-safe.  Histograms show only their observation
   count; durations and sums vary run to run. *)

let pp_labels ppf = function
  | [] -> ()
  | labels ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf (k, v) -> Format.fprintf ppf "%s=%S" k v))
      labels

let pp_number ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%g" v

let dump ?registry ppf () =
  List.iter
    (fun s ->
      match s.s_value with
      | `Value v ->
        Format.fprintf ppf "%s%a %a@." s.s_name pp_labels s.s_labels
          pp_number v
      | `Histogram (_, _, total) ->
        Format.fprintf ppf "%s%a count=%d@." s.s_name pp_labels s.s_labels
          total)
    (collect ?registry ())

let dump_string ?registry () =
  Format.asprintf "%a" (fun ppf () -> dump ?registry ppf ()) ()
