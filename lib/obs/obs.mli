(** Metrics registry: counters, gauges and fixed-bucket histograms.

    Designed to sit on hot paths: an increment is one mutable field
    update, an observation is a linear scan over a short bucket array —
    no allocation either way.  Instruments are obtained by
    get-or-create ([counter], [gauge], [histogram]); repeated lookups
    with the same name and labels return the same instrument, so call
    sites may resolve their instrument once and keep it, or resolve per
    call when lifetimes are awkward.

    A fourth instrument kind, registered with [on_collect], is a
    callback sampled at scrape time — the zero-cost way to re-export a
    counter that already exists as a mutable field elsewhere (e.g.
    [Netstats]).  Registering a callback under an existing name+labels
    replaces the previous one.

    Metric names follow Prometheus conventions
    ([[a-zA-Z_:][a-zA-Z0-9_:]*]); a bad name or a kind clash on an
    existing family raises [Invalid_argument]. *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry every instrument lands in unless
    [?registry] says otherwise. *)

val clear : t -> unit
(** Drop every family.  Instruments created before [clear] keep
    working but are no longer collected; engine code re-resolves via
    get-or-create so its families reappear on next use. *)

(** {1 Instruments} *)

type counter
type gauge
type histogram

val counter :
  ?registry:t -> ?help:string -> ?labels:(string * string) list ->
  string -> counter
(** Get or create a monotone counter series. *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge :
  ?registry:t -> ?help:string -> ?labels:(string * string) list ->
  string -> gauge

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  ?registry:t -> ?help:string -> ?labels:(string * string) list ->
  ?buckets:float array -> string -> histogram
(** Fixed upper bounds, ascending; an observation [v] lands in the
    first bucket with [v <= bound], else the overflow bucket.
    [buckets] only matters on first creation of the series. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val on_collect :
  ?registry:t -> ?help:string -> ?labels:(string * string) list ->
  kind:[ `Counter | `Gauge ] -> string -> (unit -> float) -> unit
(** Register a callback sampled at collection time.  Same name+labels
    replaces the previous callback (last registration wins). *)

(** {1 Timing} *)

val now_us : unit -> float
(** Wall-clock microseconds ([Unix.gettimeofday *. 1e6]). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run [f], observe the elapsed microseconds (also on exception). *)

val time_span :
  ?registry:t -> ?labels:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [time] against a get-or-create histogram named [name] with
    {!latency_buckets}. *)

(** {1 Bucket presets} *)

val latency_buckets : float array
(** Microseconds, 1 µs … 1 s. *)

val size_buckets : float array
(** Batch/delta sizes, 1 … 10_000. *)

val iteration_buckets : float array
(** Semi-naive iteration counts, 1 … 64. *)

(** {1 Collection} *)

type sample = {
  s_name : string;
  s_help : string;
  s_kind : [ `Counter | `Gauge | `Histogram ];
  s_labels : (string * string) list;  (** sorted by key *)
  s_value :
    [ `Value of float
    | `Histogram of (float * int) array * float * int
      (** cumulative (bound, count) pairs ending with [infinity];
          then sum; then total count *) ];
}

val collect : ?registry:t -> unit -> sample list
(** Samples sorted by family name then labels; callbacks are invoked
    here (a raising callback yields [nan]). *)

val read : ?registry:t -> ?labels:(string * string) list -> string ->
  float option
(** Current value of one counter/gauge/callback series, if present. *)

val read_one : ?registry:t -> ?labels:(string * string) list -> string ->
  float
(** [read] defaulting to [0.]. *)

val dump : ?registry:t -> Format.formatter -> unit -> unit
(** Human-readable snapshot, one line per series.  Histograms print
    only their observation count — durations are unstable, so this
    output is safe to diff in cram tests. *)

val dump_string : ?registry:t -> unit -> string
