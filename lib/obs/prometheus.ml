(* Prometheus text format 0.0.4.  Reference:
   https://prometheus.io/docs/instrumenting/exposition_formats/ *)

let content_type = "text/plain; version=0.0.4"

let escape ~quote s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s = escape ~quote:true s
let escape_help s = escape ~quote:false s

let render_number v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render_labels b labels =
  match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_label_value v);
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}'

let sample_line b name labels value =
  Buffer.add_string b name;
  render_labels b labels;
  Buffer.add_char b ' ';
  Buffer.add_string b (render_number value);
  Buffer.add_char b '\n'

let expose ?registry () =
  let samples = Obs.collect ?registry () in
  let b = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if s.Obs.s_name <> !last_family then begin
        last_family := s.Obs.s_name;
        if s.Obs.s_help <> "" then begin
          Buffer.add_string b "# HELP ";
          Buffer.add_string b s.Obs.s_name;
          Buffer.add_char b ' ';
          Buffer.add_string b (escape_help s.Obs.s_help);
          Buffer.add_char b '\n'
        end;
        Buffer.add_string b "# TYPE ";
        Buffer.add_string b s.Obs.s_name;
        Buffer.add_string b
          (match s.Obs.s_kind with
          | `Counter -> " counter\n"
          | `Gauge -> " gauge\n"
          | `Histogram -> " histogram\n")
      end;
      match s.Obs.s_value with
      | `Value v -> sample_line b s.Obs.s_name s.Obs.s_labels v
      | `Histogram (cum, sum, total) ->
        Array.iter
          (fun (bound, count) ->
            let le =
              if bound = infinity then "+Inf" else render_number bound
            in
            sample_line b (s.Obs.s_name ^ "_bucket")
              (s.Obs.s_labels @ [ ("le", le) ])
              (float_of_int count))
          cum;
        sample_line b (s.Obs.s_name ^ "_sum") s.Obs.s_labels sum;
        sample_line b (s.Obs.s_name ^ "_count") s.Obs.s_labels
          (float_of_int total))
    samples;
  Buffer.contents b
