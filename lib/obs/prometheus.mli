(** Prometheus text exposition (format 0.0.4) over an {!Obs} registry. *)

val content_type : string
(** ["text/plain; version=0.0.4"]. *)

val expose : ?registry:Obs.t -> unit -> string
(** Render every family: [# HELP] / [# TYPE] lines, then one sample
    line per series; histograms expand to cumulative
    [_bucket{le="..."}] samples plus [_sum] and [_count]. *)

(** Exposed for tests. *)

val escape_label_value : string -> string
(** Backslash-escape backslash, double quote and newlines. *)

val escape_help : string -> string
(** Backslash-escape backslash and newlines. *)
