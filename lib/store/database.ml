open Wdl_syntax

type info = {
  name : string;
  kind : Decl.kind;
  arity : int;
  cols : string list;
  data : Relation.t;
}

type t = {
  indexing : bool;
  pool : Intern.t;  (* shared by every relation of this database *)
  rels : (string, info) Hashtbl.t;
}

type error =
  | Arity_mismatch of { rel : string; expected : int; got : int }
  | Kind_mismatch of { rel : string; declared : Decl.kind }

let pp_error ppf = function
  | Arity_mismatch { rel; expected; got } ->
    Format.fprintf ppf "relation %s has arity %d but got %d" rel expected got
  | Kind_mismatch { rel; declared } ->
    Format.fprintf ppf "relation %s is already declared %a" rel Decl.pp_kind
      declared

let create ?(indexing = true) () =
  { indexing; pool = Intern.create (); rels = Hashtbl.create 16 }

let pool t = t.pool

let make_info t ~name ~kind ~arity ~cols =
  let info =
    { name; kind; arity; cols;
      data = Relation.create ~pool:t.pool ~indexing:t.indexing ~arity () }
  in
  Hashtbl.replace t.rels name info;
  info

let declare t (d : Decl.t) =
  match Hashtbl.find_opt t.rels d.rel with
  | None -> Ok (make_info t ~name:d.rel ~kind:d.kind ~arity:(Decl.arity d) ~cols:d.cols)
  | Some info ->
    if info.kind <> d.kind then
      Error (Kind_mismatch { rel = d.rel; declared = info.kind })
    else if info.arity <> Decl.arity d then
      Error (Arity_mismatch { rel = d.rel; expected = info.arity; got = Decl.arity d })
    else Ok info

let ensure t ~rel ~arity =
  match Hashtbl.find_opt t.rels rel with
  | None -> Ok (make_info t ~name:rel ~kind:Decl.Extensional ~arity ~cols:[])
  | Some info ->
    if info.arity <> arity then
      Error (Arity_mismatch { rel; expected = info.arity; got = arity })
    else Ok info

let find t name = Hashtbl.find_opt t.rels name
let kind t name = Option.map (fun i -> i.kind) (find t name)

let insert t ~rel tuple =
  Result.map
    (fun info -> Relation.insert info.data tuple)
    (ensure t ~rel ~arity:(Tuple.arity tuple))

let delete t ~rel tuple =
  Result.map
    (fun info -> Relation.delete info.data tuple)
    (ensure t ~rel ~arity:(Tuple.arity tuple))

let mem t ~rel tuple =
  match Hashtbl.find_opt t.rels rel with
  | None -> false
  | Some info ->
    info.arity = Tuple.arity tuple && Relation.mem info.data tuple

let relations t =
  Hashtbl.fold (fun _ info acc -> info :: acc) t.rels []
  |> List.sort (fun a b -> String.compare a.name b.name)

let fold f t acc = Hashtbl.fold (fun _ info acc -> f info acc) t.rels acc

let clear_intensional t =
  Hashtbl.iter
    (fun _ info ->
      match info.kind with
      | Decl.Intensional -> Relation.clear info.data
      | Decl.Extensional -> ())
    t.rels

let interned_count t = Intern.size t.pool

let memory_bytes t =
  Hashtbl.fold
    (fun _ info acc -> acc + Relation.memory_bytes info.data)
    t.rels
    (Intern.memory_bytes t.pool)

let copy t =
  (* The pool is shared with the copy: interning is append-only, so
     the copy's inserts can only extend it, never corrupt ids. *)
  let fresh =
    { indexing = t.indexing; pool = t.pool;
      rels = Hashtbl.create (Hashtbl.length t.rels) }
  in
  Hashtbl.iter
    (fun name info ->
      Hashtbl.replace fresh.rels name { info with data = Relation.copy info.data })
    t.rels;
  fresh

let pp ~peer ppf t =
  let facts =
    List.concat_map
      (fun info ->
        List.map
          (fun tuple -> Fact.make ~rel:info.name ~peer (Tuple.to_list tuple))
          (Relation.to_sorted_list info.data))
      (relations t)
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    (fun ppf f -> Format.fprintf ppf "%a;" Fact.pp f)
    ppf facts
