(** A peer-local database: the relations owned by one peer, keyed by
    relation name.

    Relations carry their {!Wdl_syntax.Decl.kind}: extensional
    relations persist across stages and receive updates; intensional
    relations are views recomputed at every stage. Receiving a fact for
    an unknown relation creates it (extensional, arity taken from the
    fact) — this is the paper's run-time discovery of new relations. *)

open Wdl_syntax

type info = {
  name : string;
  kind : Decl.kind;
  arity : int;
  cols : string list;  (** may be empty for auto-created relations *)
  data : Relation.t;
}

type t

type error =
  | Arity_mismatch of { rel : string; expected : int; got : int }
  | Kind_mismatch of { rel : string; declared : Decl.kind }

val pp_error : Format.formatter -> error -> unit

val create : ?indexing:bool -> unit -> t

val pool : t -> Intern.t
(** The intern pool shared by every relation of this database (and by
    per-run delta relations and copies — see {!copy}). *)

val interned_count : t -> int
(** Distinct values interned by this database's pool. *)

val memory_bytes : t -> int
(** Approximate heap footprint: every relation's storage plus the
    shared pool. Feeds the [wdl_store_memory_bytes] gauge. *)

val declare : t -> Decl.t -> (info, error) result
(** Idempotent when the declaration matches the existing one. *)

val ensure : t -> rel:string -> arity:int -> (info, error) result
(** Finds the relation, auto-creating it as extensional if unknown. *)

val find : t -> string -> info option
val kind : t -> string -> Decl.kind option

val insert : t -> rel:string -> Tuple.t -> (bool, error) result
(** Auto-creates unknown relations. [Ok true] iff the tuple is new. *)

val delete : t -> rel:string -> Tuple.t -> (bool, error) result

val mem : t -> rel:string -> Tuple.t -> bool
(** Whether the tuple is currently stored (false for unknown relations
    and arity mismatches). *)

val relations : t -> info list
(** All relations, sorted by name — the range of relation variables. *)

val fold : (info -> 'a -> 'a) -> t -> 'a -> 'a
val clear_intensional : t -> unit
(** Empties every intensional relation (start of a stage). *)

val copy : t -> t
(** Deep copy: relations, kinds and contents. Used to evaluate ad-hoc
    queries without touching live state. *)

val pp : peer:string -> Format.formatter -> t -> unit
(** Dump as re-parseable facts, sorted. *)
