module Value = Wdl_syntax.Value

module Value_tbl = Hashtbl.Make (struct
  type t = Value.t

  (* Physical equality first: the same boxed value is re-interned many
     times (every insert of a tuple whose values are already pooled). *)
  let equal a b = a == b || Value.equal a b

  (* Not [Value.hash]: that hashes a freshly boxed [(tag, payload)]
     pair, an allocation per probe, and the pool probes once per value
     per insert.  Hashing the payload directly and folding the tag in
     allocates nothing; the table is private to the pool, so the hash
     only has to agree with [equal] here. *)
  let hash = function
    | Value.Int x -> 0x2545 lxor Hashtbl.hash x
    | Value.Float f -> 0x9d1c lxor Hashtbl.hash f
    | Value.String s -> 0x27d4 lxor Hashtbl.hash s
    | Value.Bool b -> 0xeb35 lxor Hashtbl.hash b
end)

type t = {
  fwd : int Value_tbl.t;
  mutable rev : Value.t array;
  mutable next : int;
  mutable value_bytes : int;
}

let create () =
  {
    fwd = Value_tbl.create 256;
    rev = Array.make 256 (Value.Int 0);
    next = 0;
    value_bytes = 0;
  }

(* Approximate heap words of one value, in bytes. *)
let bytes_of = function
  | Value.String s -> 24 + String.length s
  | Value.Int _ | Value.Bool _ -> 8
  | Value.Float _ -> 16

let intern t v =
  (* Exception-based find: the hit path (every duplicate re-insert)
     allocates nothing, where [find_opt] boxed an option per probe. *)
  match Value_tbl.find t.fwd v with
  | id -> id
  | exception Not_found ->
    let id = t.next in
    if id >= Array.length t.rev then begin
      let bigger = Array.make (2 * Array.length t.rev) (Value.Int 0) in
      Array.blit t.rev 0 bigger 0 id;
      t.rev <- bigger
    end;
    t.rev.(id) <- v;
    Value_tbl.add t.fwd v id;
    t.next <- id + 1;
    t.value_bytes <- t.value_bytes + bytes_of v;
    id

let find t v = Value_tbl.find_opt t.fwd v

let value t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Intern.value: unknown id %d" id)
  else t.rev.(id)

let size t = t.next

let memory_bytes t =
  (* rev array + one forward-table entry (bucket + key + int) per value
     + the pooled values. *)
  (8 * Array.length t.rev) + (32 * t.next) + t.value_bytes
