(** A value intern pool: a bijection between {!Wdl_syntax.Value.t} and
    dense small ints, shared by every relation of one database.

    Interning turns tuple storage and comparison into flat int-array
    work: two interned values are equal iff their ids are equal, a row
    hash is a few integer multiplies, and an index key is an [int
    array] projection — no boxed traversal on any hot path.

    The pool is append-only: ids are never reused, so a pool may be
    shared freely across relations, database copies and per-iteration
    delta relations (sharing is what makes cross-relation joins pure
    int comparisons). A pool lives as long as its database family;
    dropping every relation drops the pool with it. *)

type t

val create : unit -> t

val intern : t -> Wdl_syntax.Value.t -> int
(** Get the id for a value, assigning the next dense id on first
    sight. O(1) amortised. *)

val find : t -> Wdl_syntax.Value.t -> int option
(** The id if the value was ever interned — never grows the pool. A
    [None] answer proves the value is absent from {e every} relation
    sharing this pool (negative probes stay allocation-free). *)

val value : t -> int -> Wdl_syntax.Value.t
(** Inverse mapping. Raises [Invalid_argument] on an id never handed
    out. *)

val size : t -> int
(** Distinct values interned so far. *)

val memory_bytes : t -> int
(** Approximate heap footprint: forward table, reverse array, and the
    pooled values themselves (strings dominate). *)
