open Wdl_syntax

type entry =
  | Insert of Fact.t
  | Delete of Fact.t
  | Declare of Decl.t

type t = {
  file : string;
  mutable oc : out_channel;
  append_hist : Wdl_obs.Obs.histogram;
  appended : Wdl_obs.Obs.counter;
}

let open_ file =
  {
    file;
    oc = open_out_gen [ Open_append; Open_creat ] 0o644 file;
    append_hist =
      Wdl_obs.Obs.histogram
        ~help:"Wall time of one journal append (render + flush)"
        ~buckets:Wdl_obs.Obs.latency_buckets
        "wdl_journal_append_duration_microseconds";
    appended =
      Wdl_obs.Obs.counter ~help:"Journal entries written or replayed"
        ~labels:[ ("op", "append") ]
        "wdl_journal_entries_total";
  }

let one_line = Pp_util.one_line

let render = function
  | Insert f -> "+ " ^ one_line Fact.pp f ^ ";"
  | Delete f -> "- " ^ one_line Fact.pp f ^ ";"
  | Declare d -> "d " ^ one_line Decl.pp d ^ ";"

let append t entry =
  Wdl_obs.Obs.time t.append_hist @@ fun () ->
  output_string t.oc (render entry);
  output_char t.oc '\n';
  flush t.oc;
  Wdl_obs.Obs.inc t.appended

let close t = close_out_noerr t.oc
let path t = t.file

let truncate t =
  close_out_noerr t.oc;
  t.oc <- open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 t.file

let parse_line line =
  if String.length line < 2 then Error "journal line too short"
  else
    let body = String.sub line 2 (String.length line - 2) in
    match line.[0], line.[1] with
    | '+', ' ' -> Result.map (fun f -> Insert f) (Parser.fact body)
    | '-', ' ' -> Result.map (fun f -> Delete f) (Parser.fact body)
    | 'd', ' ' -> (
      match Parser.program body with
      | Ok [ Program.Decl d ] -> Ok (Declare d)
      | Ok _ -> Error "journal declaration line is not a declaration"
      | Error e -> Error e)
    | _, _ -> Error ("unknown journal tag: " ^ String.make 1 line.[0])

(* Reads a journal, tolerating the crash artifact at its tail: a torn
   final line, possibly followed by nothing but blank lines (a crash
   mid-append can leave both). Returns the entries plus — when a torn
   tail was tolerated — the byte offset where the last complete entry
   ends, so {!repair} can cut the file there. *)
let replay_status file =
  if not (Sys.file_exists file) then Ok ([], None)
  else begin
    let replay_hist =
      Wdl_obs.Obs.histogram ~help:"Wall time of one journal replay"
        ~buckets:Wdl_obs.Obs.latency_buckets
        "wdl_journal_replay_duration_microseconds"
    in
    let replayed =
      Wdl_obs.Obs.counter ~help:"Journal entries written or replayed"
        ~labels:[ ("op", "replay") ]
        "wdl_journal_entries_total"
    in
    Wdl_obs.Obs.time replay_hist @@ fun () ->
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc lineno good_end =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc, None)
          | "" -> go acc (lineno + 1) (pos_in ic)
          | line -> (
            match parse_line line with
            | Ok entry ->
              Wdl_obs.Obs.inc replayed;
              go (entry :: acc) (lineno + 1) (pos_in ic)
            | Error msg ->
              (* A torn final line is the normal crash artifact — and
                 only blank lines may follow it; a parse failure with
                 real entries after it is corruption. *)
              let rec only_blanks () =
                match input_line ic with
                | exception End_of_file -> true
                | l -> String.trim l = "" && only_blanks ()
              in
              if only_blanks () then Ok (List.rev acc, Some good_end)
              else Error (Printf.sprintf "journal line %d: %s" lineno msg))
        in
        go [] 1 0)
  end

let replay file = Result.map fst (replay_status file)

let repair file =
  match replay_status file with
  | Error _ as e -> e
  | Ok (entries, torn) -> (
    match torn with
    | None -> Ok entries
    | Some good_end -> (
      (* Cut the torn tail off so the next append starts on a fresh
         line; appending onto the partial line would corrupt both the
         old and the new entry. *)
      match Unix.truncate file good_end with
      | () -> Ok entries
      | exception Unix.Unix_error (e, _, _) ->
        Error ("journal repair: cannot truncate: " ^ Unix.error_message e)))

let replay_iter file ~f =
  match replay file with
  | Error _ as e -> e
  | Ok entries ->
    List.iter f entries;
    Ok (List.length entries)

let entry_equal a b =
  match a, b with
  | Insert x, Insert y | Delete x, Delete y -> Fact.equal x y
  | Declare x, Declare y -> Decl.equal x y
  | (Insert _ | Delete _ | Declare _), _ -> false

let pp_entry ppf e = Format.pp_print_string ppf (render e)
