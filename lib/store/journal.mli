(** Append-only journal of base-data changes (a write-ahead log).

    {!Wdl_syntax} snapshots capture a peer's full state; the journal
    records the extensional updates made {e since} the last snapshot so
    that a crash loses nothing between checkpoints. Entries are
    line-oriented text — a one-character tag and a statement in the
    language's own syntax:

    {v
    d ext pictures@Jules(id, name, owner, data);
    + pictures@Jules(7, "hall.jpg", "Jules", "110...");
    - pictures@Jules(7, "hall.jpg", "Jules", "110...");
    v}

    Appends flush to the OS on every entry; {!replay} tolerates a torn
    final line (the usual crash artifact) and reports any other
    corruption. *)

open Wdl_syntax

type entry =
  | Insert of Fact.t
  | Delete of Fact.t
  | Declare of Decl.t

type t

val open_ : string -> t
(** Opens for appending, creating the file if needed. *)

val append : t -> entry -> unit
val close : t -> unit
val path : t -> string

val truncate : t -> unit
(** Empties the journal (after a checkpoint). *)

val replay : string -> (entry list, string) result
(** Reads a journal file; a missing file is an empty journal. A torn
    last line is ignored, even when trailing blank lines follow it (a
    crash mid-append can leave both); malformed lines with real
    entries after them are errors. *)

val repair : string -> (entry list, string) result
(** {!replay}, and when a torn tail was tolerated the file is
    truncated back to the end of the last complete entry — so a later
    append starts a fresh line instead of concatenating onto the torn
    one, which would lose both entries at the next replay. Recovery
    ({!Webdamlog.Persist.recover}) uses this before re-attaching. *)

val replay_iter : string -> f:(entry -> unit) -> (int, string) result
(** Replay hook: reads the journal and feeds each entry to [f] in
    order, returning how many were replayed. Crash-recovery plumbing
    ({!Webdamlog.Persist.recover}) threads its observer through this,
    so operators can count/log what a restart replayed. *)

val entry_equal : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit
