module Value = Wdl_syntax.Value

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* Index keys are the projections of tuples on the index positions. *)
module Key_tbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type index = {
  positions : int array;  (** sorted *)
  buckets : Tuple.t Tuple_tbl.t Key_tbl.t;
}

type t = {
  arity : int;
  indexing : bool;
  tuples : unit Tuple_tbl.t;
  mutable indexes : index list;
}

(* Below this size a scan is cheaper than building an index. *)
let index_threshold = 16

let create ?(indexing = true) ~arity () =
  { arity; indexing; tuples = Tuple_tbl.create 64; indexes = [] }

let arity r = r.arity
let cardinal r = Tuple_tbl.length r.tuples
let is_empty r = cardinal r = 0

let project positions (t : Tuple.t) = Array.map (fun i -> t.(i)) positions

let index_add idx t =
  let key = project idx.positions t in
  let bucket =
    match Key_tbl.find_opt idx.buckets key with
    | Some b -> b
    | None ->
      let b = Tuple_tbl.create 4 in
      Key_tbl.add idx.buckets key b;
      b
  in
  Tuple_tbl.replace bucket t t

let index_remove idx t =
  let key = project idx.positions t in
  match Key_tbl.find_opt idx.buckets key with
  | None -> ()
  | Some b ->
    Tuple_tbl.remove b t;
    if Tuple_tbl.length b = 0 then Key_tbl.remove idx.buckets key

let insert r t =
  if Array.length t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.insert: arity mismatch (expected %d, got %d)"
         r.arity (Array.length t));
  if Tuple_tbl.mem r.tuples t then false
  else begin
    Tuple_tbl.replace r.tuples t ();
    List.iter (fun idx -> index_add idx t) r.indexes;
    true
  end

let delete r t =
  if Tuple_tbl.mem r.tuples t then begin
    Tuple_tbl.remove r.tuples t;
    List.iter (fun idx -> index_remove idx t) r.indexes;
    true
  end
  else false

let mem r t = Tuple_tbl.mem r.tuples t
let iter f r = Tuple_tbl.iter (fun t () -> f t) r.tuples
let fold f r acc = Tuple_tbl.fold (fun t () acc -> f t acc) r.tuples acc
let to_list r = fold List.cons r []
let to_sorted_list r = List.sort Tuple.compare (to_list r)

let find_index r positions =
  List.find_opt (fun idx -> idx.positions = positions) r.indexes

let build_index r positions =
  let idx = { positions; buckets = Key_tbl.create 64 } in
  iter (fun t -> index_add idx t) r;
  r.indexes <- idx :: r.indexes;
  idx

let scan r bound f =
  iter
    (fun t ->
      if List.for_all (fun (i, v) -> Value.equal t.(i) v) bound then f t)
    r

let lookup r bound f =
  match bound with
  | [] -> iter f r
  | bound ->
    (* One sort of the bindings gives both the index signature and the
       probe key, position-aligned — no per-position association scans. *)
    let sorted =
      List.sort (fun (i, _) (j, _) -> Int.compare i j) bound
    in
    let n = List.length sorted in
    let positions = Array.make n 0 in
    let key = Array.make n (Value.Int 0) in
    List.iteri
      (fun k (i, v) ->
        positions.(k) <- i;
        key.(k) <- v)
      sorted;
    let usable =
      match find_index r positions with
      | Some idx -> Some idx
      | None ->
        if r.indexing && cardinal r >= index_threshold then
          Some (build_index r positions)
        else None
    in
    (match usable with
    | None -> scan r bound f
    | Some idx ->
      (match Key_tbl.find_opt idx.buckets key with
      | None -> ()
      | Some bucket -> Tuple_tbl.iter (fun t _ -> f t) bucket))

let clear r =
  Tuple_tbl.reset r.tuples;
  r.indexes <- []

let copy r =
  let fresh = create ~indexing:r.indexing ~arity:r.arity () in
  iter (fun t -> ignore (insert fresh t)) r;
  fresh

let index_count r = List.length r.indexes
