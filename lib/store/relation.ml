module Value = Wdl_syntax.Value

(* Interned columnar storage.

   A relation stores each tuple twice, on purpose:

   - [rows]: the interned image, a flat [int array] with [arity]
     consecutive ids per slot — index keys and bound scans work on
     ints with no boxed traversal;
   - [boxed]: the caller's [Tuple.t] for that slot — iteration and
     lookup hand tuples back with zero decode cost and the same
     aliasing the previous hashtable store had.

   Slots are recycled through a free list; [live] marks which slots
   hold a tuple. Set-semantics dedup is an open-addressing table of
   slot ids hashed over the *interned row*: insert interns each value
   exactly once (find-or-add) and every subsequent compare is int
   work — one array, no per-entry allocation, no second traversal of
   the boxed tuple. *)

(* Growable int vector (index buckets, free list). *)
module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push v x =
    if v.n >= Array.length v.a then begin
      let bigger = Array.make (max 4 (2 * v.n)) 0 in
      Array.blit v.a 0 bigger 0 v.n;
      v.a <- bigger
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let pop v =
    v.n <- v.n - 1;
    v.a.(v.n)

  (* Swap-remove the first occurrence of [x]; no-op if absent. *)
  let remove v x =
    let rec go i =
      if i < v.n then
        if v.a.(i) = x then begin
          v.n <- v.n - 1;
          v.a.(i) <- v.a.(v.n)
        end
        else go (i + 1)
    in
    go 0

  let copy v = { a = Array.copy v.a; n = v.n }
end

(* Int-array keys (index projections, position signatures). *)
module Ikey = struct
  type t = int array

  let equal a b =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  (* FNV-1a over the ids. *)
  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor a.(i)) * 0x01000193
    done;
    !h land max_int
end

module Ikey_tbl = Hashtbl.Make (Ikey)

type index = {
  positions : int array;  (** sorted *)
  buckets : Ivec.t Ikey_tbl.t;  (** projection key -> slots *)
  mutable pinned : bool;  (** planner-requested: never evicted *)
  mutable uses : int;
}

type t = {
  arity : int;
  indexing : bool;
  pool : Intern.t;
  scratch : int array;  (** arity-sized intern buffer for [insert] *)
  mutable rows : int array;  (** capacity * arity interned ids *)
  mutable boxed : Tuple.t array;  (** slot -> stored tuple *)
  mutable live : Bytes.t;  (** '\001' iff the slot holds a tuple *)
  mutable limit : int;  (** slots ever allocated (high-water mark) *)
  mutable n : int;  (** live tuples *)
  free : Ivec.t;  (** recycled slots *)
  mutable table : int array;  (** dedup: slot, -1 empty, -2 tombstone *)
  mutable entries : int;  (** live + tombstone dedup entries *)
  mutable indexes : index list;
  probes : int ref Ikey_tbl.t;  (** ad-hoc signature -> probe count *)
}

(* Below this size a scan is cheaper than building an index. *)
let index_threshold = 16

(* Unhinted lookups build an index only from the Nth probe of a
   signature on — a one-off probe scans instead of materialising a
   structure nobody will reuse. *)
let adhoc_probe_threshold = 2

(* Materialised indexes per relation; crossing it evicts the
   least-used unpinned index. *)
let max_indexes = 8

let dummy_tuple : Tuple.t = [||]

let create ?pool ?(indexing = true) ~arity () =
  let pool = match pool with Some p -> p | None -> Intern.create () in
  {
    arity;
    indexing;
    pool;
    scratch = Array.make arity 0;
    rows = Array.make (16 * arity) 0;
    boxed = Array.make 16 dummy_tuple;
    live = Bytes.make 16 '\000';
    limit = 0;
    n = 0;
    free = Ivec.create ();
    table = Array.make 32 (-1);
    entries = 0;
    indexes = [];
    probes = Ikey_tbl.create 4;
  }

let arity r = r.arity
let pool r = r.pool
let cardinal r = r.n
let is_empty r = r.n = 0

(* {2 Dedup table}

   Keyed on the *interned row*: insert resolves each value through the
   pool exactly once (find-or-add — a duplicate's values are already
   pooled, so duplicates never grow it) and dedup probes then compare
   flat ints with no boxed traversal. [mem]/[delete] resolve ids with
   the read-only [Intern.find]: a value foreign to the pool cannot be
   stored here, so the answer is immediate and the pool never grows on
   the query path. *)

(* FNV-1a over [arity] ids starting at [off]. *)
let row_hash rows off arity =
  let h = ref 0x811c9dc5 in
  for i = 0 to arity - 1 do
    h := (!h lxor Array.unsafe_get rows (off + i)) * 0x01000193
  done;
  !h land max_int

let row_equal r slot (ids : int array) =
  let off = slot * r.arity in
  let rec go i =
    i >= r.arity || (Array.unsafe_get r.rows (off + i) = ids.(i) && go (i + 1))
  in
  go 0

(* Table position holding the row equal to [ids] (hash [h]), or -1. *)
let find_pos_ids r (ids : int array) h =
  let mask = Array.length r.table - 1 in
  let rec go i =
    match r.table.(i) with
    | -1 -> -1
    | s when s >= 0 && row_equal r s ids -> i
    | _ -> go ((i + 1) land mask)
  in
  go (h land mask)

(* Interned image of [t] without growing the pool; [None] when some
   value is foreign (hence [t] cannot be stored here). *)
let resolve_row r (t : Tuple.t) =
  if Array.length t <> r.arity then None
  else
    let ids = Array.make r.arity 0 in
    let rec go i =
      if i >= r.arity then true
      else
        match Intern.find r.pool t.(i) with
        | None -> false
        | Some id ->
          ids.(i) <- id;
          go (i + 1)
    in
    if go 0 then Some ids else None

(* Insert [slot] (known absent); true iff a fresh cell was consumed. *)
let table_put table mask hash slot =
  let rec go i =
    if table.(i) < 0 then begin
      let fresh = table.(i) = -1 in
      table.(i) <- slot;
      fresh
    end
    else go ((i + 1) land mask)
  in
  go (hash land mask)

(* Rebuild the dedup table at [size] cells (sweeps tombstones). *)
let rehash_to r size =
  let fresh = Array.make size (-1) in
  let mask = size - 1 in
  for s = 0 to r.limit - 1 do
    if Bytes.unsafe_get r.live s <> '\000' then
      ignore (table_put fresh mask (row_hash r.rows (s * r.arity) r.arity) s)
  done;
  r.table <- fresh;
  r.entries <- r.n

(* Grow (or just sweep tombstones from) the dedup table. *)
let rehash r =
  let cap = Array.length r.table in
  rehash_to r (if 3 * r.n >= cap then 2 * cap else cap)

(* {2 Indexes} *)

let index_key r positions slot =
  let off = slot * r.arity in
  Array.map (fun p -> r.rows.(off + p)) positions

let index_add r idx slot =
  let key = index_key r idx.positions slot in
  let bucket =
    match Ikey_tbl.find_opt idx.buckets key with
    | Some b -> b
    | None ->
      let b = Ivec.create () in
      Ikey_tbl.add idx.buckets key b;
      b
  in
  Ivec.push bucket slot

let index_remove r idx slot =
  let key = index_key r idx.positions slot in
  match Ikey_tbl.find_opt idx.buckets key with
  | None -> ()
  | Some b ->
    Ivec.remove b slot;
    if b.Ivec.n = 0 then Ikey_tbl.remove idx.buckets key

let find_index r positions =
  List.find_opt (fun idx -> Ikey.equal idx.positions positions) r.indexes

let builds_total = ref 0
let evictions_total = ref 0

(* Metrics are process-global monotone counts; resolving the
   instrument per build is fine — builds are rare by design. *)
let count_build () =
  incr builds_total;
  Wdl_obs.Obs.inc
    (Wdl_obs.Obs.counter
       ~help:"Relation binding-pattern indexes materialised"
       "wdl_store_index_builds_total")

let count_eviction () =
  incr evictions_total;
  Wdl_obs.Obs.inc
    (Wdl_obs.Obs.counter
       ~help:"Relation indexes evicted by the per-relation cap (least-used first)"
       "wdl_store_index_evictions_total")

let build_index r ~pinned positions =
  count_build ();
  let idx = { positions; buckets = Ikey_tbl.create 64; pinned; uses = 0 } in
  for s = 0 to r.limit - 1 do
    if Bytes.unsafe_get r.live s <> '\000' then index_add r idx s
  done;
  r.indexes <- idx :: r.indexes;
  (if List.length r.indexes > max_indexes then
     (* Evict the least-used unpinned index (not the one just built). *)
     let victim =
       List.fold_left
         (fun acc i ->
           if i == idx || i.pinned then acc
           else
             match acc with
             | Some v when v.uses <= i.uses -> acc
             | _ -> Some i)
         None r.indexes
     in
     match victim with
     | None -> ()
     | Some v ->
       count_eviction ();
       r.indexes <- List.filter (fun i -> i != v) r.indexes);
  idx

(* {2 Updates} *)

let grow_slots_to r want =
  let cap = Array.length r.boxed in
  let cap' = ref (max 16 cap) in
  while !cap' < want do
    cap' := 2 * !cap'
  done;
  let cap' = !cap' in
  if cap' > cap then begin
    let rows = Array.make (cap' * r.arity) 0 in
    Array.blit r.rows 0 rows 0 (cap * r.arity);
    r.rows <- rows;
    let boxed = Array.make cap' dummy_tuple in
    Array.blit r.boxed 0 boxed 0 cap;
    r.boxed <- boxed;
    let live = Bytes.make cap' '\000' in
    Bytes.blit r.live 0 live 0 cap;
    r.live <- live
  end

let grow_slots r = grow_slots_to r (Array.length r.boxed + 1)

let reserve r extra =
  let want = r.n + extra in
  grow_slots_to r want;
  let tcap = Array.length r.table in
  if 2 * want >= tcap then begin
    let size = ref tcap in
    while 2 * want >= !size do
      size := 2 * !size
    done;
    rehash_to r !size
  end

let insert r t =
  if Array.length t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.insert: arity mismatch (expected %d, got %d)"
         r.arity (Array.length t));
  (* One pool probe per value: find-or-add up front, then every dedup
     compare is on the ids (duplicates re-find existing pool entries,
     so the pool still only ever holds stored values). *)
  let ids = r.scratch in
  for i = 0 to r.arity - 1 do
    ids.(i) <- Intern.intern r.pool t.(i)
  done;
  let h = Ikey.hash ids in
  if find_pos_ids r ids h >= 0 then false
  else begin
    if 2 * (r.entries + 1) >= Array.length r.table then rehash r;
    let slot =
      if r.free.Ivec.n > 0 then Ivec.pop r.free
      else begin
        if r.limit >= Array.length r.boxed then grow_slots r;
        let s = r.limit in
        r.limit <- r.limit + 1;
        s
      end
    in
    Array.blit ids 0 r.rows (slot * r.arity) r.arity;
    r.boxed.(slot) <- t;
    Bytes.unsafe_set r.live slot '\001';
    if table_put r.table (Array.length r.table - 1) h slot then
      r.entries <- r.entries + 1;
    r.n <- r.n + 1;
    List.iter (fun idx -> index_add r idx slot) r.indexes;
    true
  end

let delete r t =
  match resolve_row r t with
  | None -> false
  | Some ids -> (
    match find_pos_ids r ids (Ikey.hash ids) with
    | -1 -> false
    | pos ->
      let slot = r.table.(pos) in
      List.iter (fun idx -> index_remove r idx slot) r.indexes;
      r.table.(pos) <- -2;
      Bytes.unsafe_set r.live slot '\000';
      r.boxed.(slot) <- dummy_tuple;
      Ivec.push r.free slot;
      r.n <- r.n - 1;
      true)

let mem r t =
  match resolve_row r t with
  | None -> false
  | Some ids -> find_pos_ids r ids (Ikey.hash ids) >= 0

(* {2 Reads} *)

let iter f r =
  for s = 0 to r.limit - 1 do
    if Bytes.unsafe_get r.live s <> '\000' then f (Array.unsafe_get r.boxed s)
  done

let fold f r acc =
  let acc = ref acc in
  iter (fun t -> acc := f t !acc) r;
  !acc

let to_list r = fold List.cons r []
let to_sorted_list r = List.sort Tuple.compare (to_list r)

(* Tuples together with the interned id of their first column — the
   shard key for the parallel engine. Arity-0 tuples hand id 0. *)
let iter_first_id f r =
  for s = 0 to r.limit - 1 do
    if Bytes.unsafe_get r.live s <> '\000' then
      let id = if r.arity = 0 then 0 else Array.unsafe_get r.rows (s * r.arity) in
      f (Array.unsafe_get r.boxed s) id
  done

(* Scan live rows on interned ids — no boxed compares. *)
let scan_ids r (positions : int array) (key : int array) f =
  let np = Array.length positions in
  for s = 0 to r.limit - 1 do
    if Bytes.unsafe_get r.live s <> '\000' then begin
      let off = s * r.arity in
      let rec matches k =
        k >= np || (r.rows.(off + positions.(k)) = key.(k) && matches (k + 1))
      in
      if matches 0 then f (Array.unsafe_get r.boxed s)
    end
  done

let probe_bucket r idx (key : int array) f =
  idx.uses <- idx.uses + 1;
  match Ikey_tbl.find_opt idx.buckets key with
  | None -> ()
  | Some b ->
    for k = 0 to b.Ivec.n - 1 do
      f r.boxed.(b.Ivec.a.(k))
    done

(* Hinted lookup: the caller (a compiled plan) knows its bound
   positions statically and will probe the same signature for every
   candidate binding, so the index is built eagerly (once the relation
   is big enough) and pinned against eviction. *)
let lookup_key r (positions : int array) (vkey : Value.t array) f =
  if Array.length positions = 0 then iter f r
  else
    let np = Array.length positions in
    let key = Array.make np 0 in
    let rec ids k =
      if k >= np then true
      else
        match Intern.find r.pool vkey.(k) with
        | None -> false
        | Some id ->
          key.(k) <- id;
          ids (k + 1)
    in
    if ids 0 then
      match find_index r positions with
      | Some idx -> probe_bucket r idx key f
      | None ->
        if r.indexing && r.n >= index_threshold then
          probe_bucket r (build_index r ~pinned:true positions) key f
        else scan_ids r positions key f

let ensure_index r positions =
  if r.indexing && find_index r positions = None then
    ignore (build_index r ~pinned:true positions : index)

(* Read-only variant for concurrent readers (parallel fixpoint
   workers): never materialises an index, never bumps use counters —
   no store mutation whatsoever. Callers pre-build hot indexes with
   {!ensure_index} before fanning out. *)
let lookup_key_ro r (positions : int array) (vkey : Value.t array) f =
  if Array.length positions = 0 then iter f r
  else
    let np = Array.length positions in
    let key = Array.make np 0 in
    let rec ids k =
      if k >= np then true
      else
        match Intern.find r.pool vkey.(k) with
        | None -> false
        | Some id ->
          key.(k) <- id;
          ids (k + 1)
    in
    if ids 0 then
      match find_index r positions with
      | Some idx -> (
        match Ikey_tbl.find_opt idx.buckets key with
        | None -> ()
        | Some b ->
          for k = 0 to b.Ivec.n - 1 do
            f r.boxed.(b.Ivec.a.(k))
          done)
      | None -> scan_ids r positions key f

let lookup r bound f =
  match bound with
  | [] -> iter f r
  | bound ->
    (* One sort of the bindings gives both the index signature and the
       probe key, position-aligned. *)
    let sorted = List.sort (fun (i, _) (j, _) -> Int.compare i j) bound in
    let np = List.length sorted in
    let positions = Array.make np 0 in
    let key = Array.make np 0 in
    let rec ids k = function
      | [] -> true
      | (i, v) :: rest -> (
        positions.(k) <- i;
        match Intern.find r.pool v with
        | None -> false
        | Some id ->
          key.(k) <- id;
          ids (k + 1) rest)
    in
    if ids 0 sorted then (
      match find_index r positions with
      | Some idx -> probe_bucket r idx key f
      | None ->
        let hot =
          r.indexing
          && r.n >= index_threshold
          &&
          let count =
            match Ikey_tbl.find_opt r.probes positions with
            | Some c ->
              incr c;
              !c
            | None ->
              Ikey_tbl.add r.probes (Array.copy positions) (ref 1);
              1
          in
          count >= adhoc_probe_threshold
        in
        if hot then probe_bucket r (build_index r ~pinned:false positions) key f
        else scan_ids r positions key f)

(* {2 Lifecycle} *)

let clear r =
  r.limit <- 0;
  r.n <- 0;
  r.free.Ivec.n <- 0;
  Array.fill r.table 0 (Array.length r.table) (-1);
  r.entries <- 0;
  Bytes.fill r.live 0 (Bytes.length r.live) '\000';
  Array.fill r.boxed 0 (Array.length r.boxed) dummy_tuple;
  (* Keep index skeletons: a planner hint survives the per-stage clear
     of intensional relations, so refills re-index incrementally. *)
  List.iter (fun idx -> Ikey_tbl.reset idx.buckets) r.indexes;
  Ikey_tbl.reset r.probes

let copy_index idx =
  let buckets = Ikey_tbl.create (Ikey_tbl.length idx.buckets) in
  Ikey_tbl.iter (fun k v -> Ikey_tbl.add buckets k (Ivec.copy v)) idx.buckets;
  { idx with buckets }

let copy r =
  {
    r with
    (* The pool is shared: ids stay valid across copies, and interning
       is append-only, so a copy can never corrupt the original. *)
    scratch = Array.copy r.scratch;
    rows = Array.copy r.rows;
    boxed = Array.copy r.boxed;
    live = Bytes.copy r.live;
    free = Ivec.copy r.free;
    table = Array.copy r.table;
    indexes = List.map copy_index r.indexes;
    probes =
      (let p = Ikey_tbl.create 4 in
       Ikey_tbl.iter (fun k c -> Ikey_tbl.add p k (ref !c)) r.probes;
       p);
  }

let index_count r = List.length r.indexes

let index_uses r =
  List.map (fun idx -> (Array.to_list idx.positions, idx.uses)) r.indexes

let memory_bytes r =
  let base =
    8 * (Array.length r.rows + Array.length r.boxed + Array.length r.table)
    + Bytes.length r.live
    (* Boxed tuple spines (their values live in the pool). *)
    + (r.n * (r.arity + 1) * 8)
  in
  List.fold_left
    (fun acc idx ->
      Ikey_tbl.fold
        (fun k v acc -> acc + (8 * (Array.length k + Array.length v.Ivec.a)) + 48)
        idx.buckets acc)
    base r.indexes
