(** A relation instance: a set of same-arity tuples stored columnar
    over an intern pool.

    Internally every tuple is a flat run of interned ids in one [int
    array] (plus the caller's boxed tuple for zero-cost hand-back), so
    dedup, index keys and bound scans are pure int work. Binding
    pattern indexes on positions [{i1 < … < ik}] map the interned
    projection to the matching slots:

    - {!lookup_key} (the compiled-plan path) and {!ensure_index} build
      indexes eagerly and {e pin} them — the planner asked, so reuse
      is certain;
    - {!lookup} (the ad-hoc path) builds an index only from the second
      probe of a signature on — one-off probes scan;
    - at most a fixed number of indexes live per relation; crossing the
      cap evicts the least-used unpinned one (both counted by
      [wdl_store_index_builds_total] / [wdl_store_index_evictions_total]).

    [~indexing:false] disables index creation (used for one-iteration
    delta relations and the T4 ablation benchmark). *)

type t

val create : ?pool:Intern.t -> ?indexing:bool -> arity:int -> unit -> t
(** [pool] (default: a private fresh pool) is the intern table backing
    this relation; relations of one database share one pool so joins
    compare ids, not values. *)

val arity : t -> int
val pool : t -> Intern.t
val cardinal : t -> int
val is_empty : t -> bool

val insert : t -> Tuple.t -> bool
(** [true] iff the tuple was not already present. Each value costs
    exactly one pool probe (find-or-add); dedup compares interned
    rows. Raises [Invalid_argument] on arity mismatch. *)

val reserve : t -> int -> unit
(** [reserve r extra] pre-sizes slot storage and the dedup table for
    [extra] further inserts, so a batch load pays one growth instead
    of O(log n) doubling rehashes. *)

val delete : t -> Tuple.t -> bool
(** [true] iff the tuple was present. Never grows the pool. *)

val mem : t -> Tuple.t -> bool
val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list
(** In unspecified order. *)

val to_sorted_list : t -> Tuple.t list

val lookup : t -> (int * Wdl_syntax.Value.t) list -> (Tuple.t -> unit) -> unit
(** [lookup rel bound f] calls [f] on every tuple agreeing with the
    [(position, value)] constraints. [bound] may be empty (full
    scan). Ad-hoc path: indexes materialise only for repeated
    signatures. *)

val lookup_key :
  t -> int array -> Wdl_syntax.Value.t array -> (Tuple.t -> unit) -> unit
(** [lookup_key rel positions key f]: the compiled-plan fast path.
    [positions] must be sorted ascending and [key] aligned with it.
    Builds (and pins) the index for [positions] once the relation
    crosses the index threshold. A key value foreign to the pool
    answers instantly: nothing can match. *)

val lookup_key_ro :
  t -> int array -> Wdl_syntax.Value.t array -> (Tuple.t -> unit) -> unit
(** Like {!lookup_key} but strictly read-only: never materialises an
    index and never touches use counters, so concurrent readers (the
    parallel fixpoint's worker domains) can probe one relation safely.
    Falls back to a scan when no index exists — pre-build hot ones
    with {!ensure_index}. *)

val iter_first_id : (Tuple.t -> int -> unit) -> t -> unit
(** Iterate tuples with the interned id of their first column — the
    shard key for the parallel engine. Arity-0 tuples hand id 0. *)

val ensure_index : t -> int array -> unit
(** Materialise (and pin) the index on the given sorted positions now
    — explicit planner-driven index selection. No-op when present or
    when indexing is disabled. *)

val clear : t -> unit
val copy : t -> t
(** Deep copy sharing the pool. Indexes are copied, not dropped — a
    snapshot answers its first lookup at full speed. *)

val index_count : t -> int
(** Number of materialised indexes (observability for tests/bench). *)

val index_uses : t -> (int list * int) list
(** [(positions, use count)] per index. *)

val memory_bytes : t -> int
(** Approximate heap footprint of rows, dedup table, boxed spines and
    index structures (pool excluded — it is shared). *)

val builds_total : int ref
(** Process-wide index builds (mirrors [wdl_store_index_builds_total]). *)

val evictions_total : int ref
