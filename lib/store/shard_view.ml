(* A shard-restricted read view over a relation.

   The parallel fixpoint partitions work by the interned id of each
   tuple's first column (the "dynamic data exchange" scheme: the first
   key owns the tuple). A view carries no storage of its own — it is a
   filter over the backing relation's live slots, so building one is
   O(1) and iterating costs one hash per live tuple. *)

(* Fibonacci-style mixer over the interned id. Ids are small dense
   ints (pool insertion order), so raw [id mod shards] would correlate
   shards with insertion order; the multiply spreads them. *)
let owner ~shards id =
  if shards <= 1 then 0
  else
    let h = id * 0x2545f4914f6cdd1d land max_int in
    (h lsr 12) mod shards

type t = { rel : Relation.t; shards : int; shard : int }

let make rel ~shards ~shard =
  if shards <= 0 then invalid_arg "Shard_view.make: shards must be positive";
  if shard < 0 || shard >= shards then
    invalid_arg "Shard_view.make: shard out of range";
  { rel; shards; shard }

let relation v = v.rel
let shard v = v.shard
let shards v = v.shards

let iter f v =
  if v.shards <= 1 then Relation.iter f v.rel
  else
    Relation.iter_first_id
      (fun t id -> if owner ~shards:v.shards id = v.shard then f t)
      v.rel

let fold f v acc =
  let acc = ref acc in
  iter (fun t -> acc := f t !acc) v;
  !acc

let cardinal v = fold (fun _ n -> n + 1) v 0
let is_empty v =
  let exception Found in
  try
    iter (fun _ -> raise Found) v;
    true
  with Found -> false
