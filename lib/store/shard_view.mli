(** Shard-restricted read views over relations.

    The parallel fixpoint partitions each delta by the interned id of
    the tuple's first column; a view is a zero-copy filter of one
    relation down to one shard. Views never mutate the backing
    relation, so any number may be iterated concurrently. *)

type t

val owner : shards:int -> int -> int
(** [owner ~shards id] is the shard (in [0 .. shards-1]) owning the
    interned first-column id [id]. Deterministic; [0] when
    [shards <= 1]. *)

val make : Relation.t -> shards:int -> shard:int -> t
(** Raises [Invalid_argument] unless [0 <= shard < shards]. *)

val relation : t -> Relation.t
val shard : t -> int
val shards : t -> int

val iter : (Tuple.t -> unit) -> t -> unit
(** Iterate the backing relation's tuples owned by this view's shard,
    in the backing relation's slot order. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val cardinal : t -> int
val is_empty : t -> bool
