type kind = Extensional | Intensional

type builtin = {
  bkind : string;
  params : (string * Value.t) list;
}

type t = {
  kind : kind;
  rel : string;
  peer : string;
  cols : string list;
  builtin : builtin option;
}

let make ?builtin ~kind ~rel ~peer cols =
  if rel = "" then invalid_arg "Decl.make: empty relation name";
  if peer = "" then invalid_arg "Decl.make: empty peer name";
  { kind; rel; peer; cols; builtin }

let arity d = List.length d.cols
let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp_kind ppf = function
  | Extensional -> Format.pp_print_string ppf "ext"
  | Intensional -> Format.pp_print_string ppf "int"

let pp_cols =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    Format.pp_print_string

let pp ppf d =
  match d.builtin with
  | None ->
    Format.fprintf ppf "@[<hov 2>%a %a@%a(%a)@]" pp_kind d.kind
      Fact.pp_bare_name d.rel Fact.pp_bare_name d.peer pp_cols d.cols
  | Some b ->
    Format.fprintf ppf "@[<hov 2>builtin %s %a@%a(%a)" b.bkind
      Fact.pp_bare_name d.rel Fact.pp_bare_name d.peer pp_cols d.cols;
    (match b.params with
    | [] -> ()
    | params ->
      Format.fprintf ppf " with %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k Value.pp v))
        params);
    Format.fprintf ppf "@]"
