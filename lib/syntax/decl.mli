(** Relation declarations.

    WebdamLog distinguishes extensional relations (persistent, updated
    by insertions/deletions, the targets of inductive rules) from
    intensional relations (views, recomputed at every stage).
    Concrete syntax:
    {v ext pictures@Jules(id, name, owner, data)
       int attendeePictures@Jules(id, name, owner, data) v}

    A third declaration form attaches a builtin relation module — a
    relation whose storage and update semantics are provided by the
    runtime (wall-clock time, sliding windows, TTL'd facts, sketches)
    rather than by plain set semantics:
    {v builtin window recent@p(item) with size=8
       builtin time now@p(stage, seconds) v}
    Builtin relations behave as extensional relations to the evaluator
    (rules read them like any relation; rule heads write them
    inductively), so [kind] is always [Extensional] when [builtin] is
    [Some _]. The [bkind] string and parameter list are interpreted by
    the [Wdl_builtin] library at registration time. *)

type kind = Extensional | Intensional

type builtin = {
  bkind : string;  (** module kind: ["time"], ["window"], ["topk"], … *)
  params : (string * Value.t) list;  (** declaration-order [key=value] config *)
}

type t = {
  kind : kind;
  rel : string;
  peer : string;
  cols : string list;  (** column names; the arity is their number *)
  builtin : builtin option;
}

val make :
  ?builtin:builtin -> kind:kind -> rel:string -> peer:string -> string list -> t

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints the [builtin …] form when a module config is attached; the
    output re-parses to an equal declaration. *)

val pp_kind : Format.formatter -> kind -> unit
