type t = {
  rel : string;
  peer : string;
  args : Value.t list;
}

let make ~rel ~peer args =
  if rel = "" then invalid_arg "Fact.make: empty relation name";
  if peer = "" then invalid_arg "Fact.make: empty peer name";
  { rel; peer; args }

let arity f = List.length f.args

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> (
    match String.compare a.peer b.peer with
    | 0 -> List.compare Value.compare a.args b.args
    | c -> c)
  | c -> c

let equal a b = compare a b = 0
let hash f = Hashtbl.hash (f.rel, f.peer, List.map Value.hash f.args)

let pp_bare_name ppf s =
  if Term.is_ident s then Format.pp_print_string ppf s
  else Value.pp ppf (Value.String s)

let pp ppf f =
  Format.fprintf ppf "@[<hov 2>%a@%a(%a)@]" pp_bare_name f.rel pp_bare_name
    f.peer
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    f.args

(* The one-line rendering — what the wire writes, and what
   [Message.fact_size] mirrors arithmetically. *)
let to_string f = Pp_util.one_line pp f
