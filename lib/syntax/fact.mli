(** Ground facts: [rel@peer(v1, …, vn)]. *)

type t = private {
  rel : string;
  peer : string;
  args : Value.t list;
}

val make : rel:string -> peer:string -> Value.t list -> t
(** Raises [Invalid_argument] if [rel] or [peer] is empty. *)

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** The one-line rendering of {!pp} (no line breaks at any width) —
    exactly what the wire encoding writes for a fact, and the string
    whose byte length [Message.fact_size] computes arithmetically. *)

val pp_bare_name : Format.formatter -> string -> unit
(** Prints a relation/peer name bare when identifier-like, quoted
    otherwise. *)
