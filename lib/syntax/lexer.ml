type token =
  | IDENT of string
  | VAR of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | BOOL of bool
  | KW_EXT
  | KW_INT
  | KW_NOT
  | LPAREN | RPAREN | COMMA | AT | SEMI
  | COLONDASH
  | ASSIGN
  | EQ2 | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | EOF

type pos = { line : int; col : int }

exception Error of string * pos

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let pos st = { line = st.line; col = st.col }
let error st msg = raise (Error (msg, pos st))

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 0x80

let is_ident_char c = is_ident_start c || is_digit c || c = '\''

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '#' ->
    skip_line st;
    skip_ws st
  | Some '/' -> (
    match peek2 st with
    | Some '/' ->
      skip_line st;
      skip_ws st
    | Some '*' ->
      advance st;
      advance st;
      skip_block st;
      skip_ws st
    | Some _ | None -> ())
  | Some _ | None -> ()

and skip_line st =
  match peek st with
  | Some '\n' -> advance st
  | Some _ ->
    advance st;
    skip_line st
  | None -> ()

and skip_block st =
  match peek st with
  | Some '*' when peek2 st = Some '/' ->
    advance st;
    advance st
  | Some _ ->
    advance st;
    skip_block st
  | None -> error st "unterminated block comment"

let lex_while st pred =
  let start = st.off in
  let rec go () =
    match peek st with
    | Some c when pred c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.off - start)

let lex_number st =
  let intpart = lex_while st is_digit in
  let is_float = ref false in
  let frac =
    match peek st with
    | Some '.' ->
      is_float := true;
      advance st;
      "." ^ lex_while st is_digit
    | Some _ | None -> ""
  in
  let exp =
    match peek st with
    | Some ('e' | 'E') -> (
      match peek2 st with
      | Some c when is_digit c || c = '+' || c = '-' ->
        is_float := true;
        advance st;
        let sign =
          match peek st with
          | Some (('+' | '-') as s) ->
            advance st;
            String.make 1 s
          | Some _ | None -> ""
        in
        "e" ^ sign ^ lex_while st is_digit
      | Some _ | None -> "")
    | Some _ | None -> ""
  in
  let text = intpart ^ frac ^ exp in
  if !is_float then FLOAT (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> INT n
    | None -> FLOAT (float_of_string text)

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance st; go ()
      | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
      | Some c -> error st (Printf.sprintf "invalid escape '\\%c'" c)
      | None -> error st "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let keyword = function
  | "ext" -> KW_EXT
  | "int" -> KW_INT
  | "not" -> KW_NOT
  | "true" -> BOOL true
  | "false" -> BOOL false
  | s -> IDENT s

let next_token_sp st =
  skip_ws st;
  let p = pos st in
  let tok =
    match peek st with
    | None -> EOF
    | Some '(' -> advance st; LPAREN
    | Some ')' -> advance st; RPAREN
    | Some ',' -> advance st; COMMA
    | Some '@' -> advance st; AT
    | Some ';' -> advance st; SEMI
    | Some '+' -> advance st; PLUS
    | Some '-' -> advance st; MINUS
    | Some '*' -> advance st; STAR
    | Some '/' -> advance st; SLASH
    | Some ':' -> (
      advance st;
      match peek st with
      | Some '-' -> advance st; COLONDASH
      | Some '=' -> advance st; ASSIGN
      | Some _ | None -> error st "expected ':-' or ':='")
    | Some '=' -> (
      advance st;
      match peek st with
      | Some '=' -> advance st; EQ2
      | Some _ | None -> EQ2 (* accept a single '=' as equality too *))
    | Some '!' -> (
      advance st;
      match peek st with
      | Some '=' -> advance st; NEQ
      | Some _ | None -> error st "expected '!='")
    | Some '<' -> (
      advance st;
      match peek st with
      | Some '=' -> advance st; LE
      | Some _ | None -> LT)
    | Some '>' -> (
      advance st;
      match peek st with
      | Some '=' -> advance st; GE
      | Some _ | None -> GT)
    | Some '$' -> (
      advance st;
      let name = lex_while st is_ident_char in
      if name = "" then error st "expected a variable name after '$'"
      else VAR name)
    | Some '"' -> lex_string st
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> keyword (lex_while st is_ident_char)
    | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  in
  (tok, p, pos st)

let next_token st =
  let tok, p, _ = next_token_sp st in
  (tok, p)

let init src = { src; off = 0; line = 1; col = 1 }

let tokenize src =
  let st = init src in
  let rec go acc =
    let ((tok, _) as t) = next_token st in
    match tok with EOF -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | VAR s -> Format.fprintf ppf "$%s" s
  | INT n -> Format.pp_print_int ppf n
  | FLOAT f -> Format.pp_print_float ppf f
  | STRING s -> Format.fprintf ppf "%S" s
  | BOOL b -> Format.pp_print_bool ppf b
  | KW_EXT -> Format.pp_print_string ppf "ext"
  | KW_INT -> Format.pp_print_string ppf "int"
  | KW_NOT -> Format.pp_print_string ppf "not"
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | AT -> Format.pp_print_string ppf "@"
  | SEMI -> Format.pp_print_string ppf ";"
  | COLONDASH -> Format.pp_print_string ppf ":-"
  | ASSIGN -> Format.pp_print_string ppf ":="
  | EQ2 -> Format.pp_print_string ppf "=="
  | NEQ -> Format.pp_print_string ppf "!="
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | STAR -> Format.pp_print_string ppf "*"
  | SLASH -> Format.pp_print_string ppf "/"
  | EOF -> Format.pp_print_string ppf "end of input"
