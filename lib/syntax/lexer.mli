(** Hand-written lexer for WebdamLog concrete syntax.

    Identifiers may contain non-ASCII bytes (the paper's peers are
    named [Émilien]); comments are [// …], [# …] and [/* … */]. *)

type token =
  | IDENT of string       (** bare name: relation, peer, or symbol *)
  | VAR of string         (** [$x], payload without the [$] *)
  | INT of int
  | FLOAT of float
  | STRING of string      (** unescaped payload *)
  | BOOL of bool
  | KW_EXT                (** [ext] *)
  | KW_INT                (** [int] *)
  | KW_NOT                (** [not] *)
  | LPAREN | RPAREN | COMMA | AT | SEMI
  | COLONDASH             (** [:-] *)
  | ASSIGN                (** [:=] *)
  | EQ2 | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | EOF

type pos = { line : int; col : int }

exception Error of string * pos

type state
(** Incremental lexing state over one source string. *)

val init : string -> state

val next_token : state -> token * pos
(** Raises {!Error} on malformed input; returns [EOF] (repeatedly) at
    the end of input. The parser pulls tokens on demand instead of
    materialising a list: on large inputs (batch frames, journals) a
    full token list outlives minor GC cycles and the whole of it gets
    promoted, which made parsing superlinear in input size. *)

val next_token_sp : state -> token * pos * pos
(** Like {!next_token} but additionally returns the position just past
    the token — the raw material for source {!Span}s. *)

val tokenize : string -> (token * pos) list
(** Raises {!Error} on malformed input; the resulting list always ends
    with [EOF]. Convenience for tests — parsing goes through
    {!next_token}. *)

val pp_token : Format.formatter -> token -> unit
