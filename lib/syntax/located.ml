type 'a loc = { node : 'a; span : Span.t }

type rule = {
  rule : Rule.t;
  span : Span.t;
  head_span : Span.t;
  lit_spans : Span.t list;
}

type statement =
  | Decl of Decl.t loc
  | Fact of Fact.t loc
  | Rule of rule

type program = statement list

let statement_span = function
  | Decl { span; _ } | Fact { span; _ } -> span
  | Rule { span; _ } -> span

let strip_statement = function
  | Decl { node; _ } -> Program.Decl node
  | Fact { node; _ } -> Program.Fact node
  | Rule { rule; _ } -> Program.Rule rule

let strip p = List.map strip_statement p

let lit_span (r : rule) i =
  List.nth_opt r.lit_spans i |> Option.value ~default:r.span
