(** Parsed statements with their source {!Span}s attached.

    The plain AST ({!Program}, {!Rule}, {!Atom}, …) stays span-free —
    it circulates through evaluation, wire messages and snapshots where
    positions are meaningless — so the parser produces this parallel
    located form instead, and {!strip} recovers the plain program. *)

type 'a loc = { node : 'a; span : Span.t }

type rule = {
  rule : Rule.t;
  span : Span.t;          (** the whole statement *)
  head_span : Span.t;     (** the head atom *)
  lit_spans : Span.t list;(** one span per body literal, in order *)
}

type statement =
  | Decl of Decl.t loc
  | Fact of Fact.t loc
  | Rule of rule

type program = statement list

val statement_span : statement -> Span.t
val strip_statement : statement -> Program.statement
val strip : program -> Program.t

val lit_span : rule -> int -> Span.t
(** Span of body literal [i]; falls back to the rule's span when the
    index is out of range (e.g. on a rewritten rule). *)
