exception Error of string * Lexer.pos

(* Tokens are pulled from the lexer on demand (one token of lookahead,
   materialised lazily for [peek2]) — building the whole token list up
   front made parsing superlinear on large inputs: the list survives
   minor collections mid-lex and every cell gets promoted. *)
type state = {
  lex : Lexer.state;
  file : string;
  mutable cur : Lexer.token * Lexer.pos * Lexer.pos;
  mutable ahead : (Lexer.token * Lexer.pos * Lexer.pos) option;
  mutable last_stop : Lexer.pos;
      (* position just past the last consumed token: the end of the
         span of whatever construct just finished parsing *)
}

let tok3 (t, _, _) = t
let peek st = tok3 st.cur

let peek2 st =
  match st.ahead with
  | Some (tok, _, _) -> tok
  | None ->
    if tok3 st.cur = Lexer.EOF then Lexer.EOF
    else begin
      let t = Lexer.next_token_sp st.lex in
      st.ahead <- Some t;
      tok3 t
    end

let cur_pos st = match st.cur with _, p, _ -> p

let advance st =
  (match st.cur with _, _, stop -> st.last_stop <- stop);
  match st.ahead with
  | Some t ->
    st.cur <- t;
    st.ahead <- None
  | None ->
    if tok3 st.cur <> Lexer.EOF then st.cur <- Lexer.next_token_sp st.lex

(* Span of a construct that started at token position [start] and whose
   last token has just been consumed. *)
let span_from st (start : Lexer.pos) =
  Span.make ~file:st.file ~start_line:start.Lexer.line
    ~start_col:start.Lexer.col ~end_line:st.last_stop.Lexer.line
    ~end_col:st.last_stop.Lexer.col

let fail st msg = raise (Error (msg, cur_pos st))

let expect st tok what =
  if peek st = tok then advance st
  else
    fail st
      (Format.asprintf "expected %s but found %a" what Lexer.pp_token (peek st))

(* A name term: relation or peer position. *)
let name_term st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    Term.str s
  | Lexer.STRING s ->
    advance st;
    if s = "" then fail st "empty string cannot be a relation or peer name";
    Term.str s
  | Lexer.VAR x ->
    advance st;
    Term.Var x
  | tok ->
    fail st
      (Format.asprintf "expected a relation or peer name but found %a"
         Lexer.pp_token tok)

(* A term in argument position. Bare identifiers denote string values. *)
let term st =
  match peek st with
  | Lexer.INT n -> advance st; Term.Const (Value.Int n)
  | Lexer.FLOAT f -> advance st; Term.Const (Value.Float f)
  | Lexer.STRING s -> advance st; Term.Const (Value.String s)
  | Lexer.BOOL b -> advance st; Term.Const (Value.Bool b)
  | Lexer.IDENT s -> advance st; Term.Const (Value.String s)
  | Lexer.VAR x -> advance st; Term.Var x
  | Lexer.MINUS -> (
    advance st;
    match peek st with
    | Lexer.INT n -> advance st; Term.Const (Value.Int (-n))
    | Lexer.FLOAT f -> advance st; Term.Const (Value.Float (-.f))
    | tok ->
      fail st
        (Format.asprintf "expected a number after '-' but found %a"
           Lexer.pp_token tok))
  | tok -> fail st (Format.asprintf "expected a term but found %a" Lexer.pp_token tok)

let comma_list st elem =
  if peek st = Lexer.RPAREN then []
  else
    let rec go acc =
      let x = elem st in
      if peek st = Lexer.COMMA then begin
        advance st;
        go (x :: acc)
      end
      else List.rev (x :: acc)
    in
    go []

let atom st =
  let rel = name_term st in
  expect st Lexer.AT "'@'";
  let peer = name_term st in
  expect st Lexer.LPAREN "'('";
  let args = comma_list st term in
  expect st Lexer.RPAREN "')'";
  Atom.make ~rel ~peer args

(* Rule heads additionally allow aggregate arguments: count($x), sum($x),
   min($x), max($x), avg($x). *)
type head_arg =
  | Plain of Term.t
  | Agg of Aggregate.spec

let head_arg st =
  match peek st, peek2 st with
  | Lexer.IDENT s, Lexer.LPAREN when Aggregate.op_of_name s <> None ->
    let op = Option.get (Aggregate.op_of_name s) in
    advance st;
    advance st;
    (match peek st with
    | Lexer.VAR v ->
      advance st;
      expect st Lexer.RPAREN "')'";
      Agg { Aggregate.op; var = v }
    | tok ->
      fail st
        (Format.asprintf "expected a variable inside %s(...) but found %a" s
           Lexer.pp_token tok))
  | _, _ -> Plain (term st)

let head_atom st =
  let rel = name_term st in
  expect st Lexer.AT "'@'";
  let peer = name_term st in
  expect st Lexer.LPAREN "'('";
  let args = comma_list st head_arg in
  expect st Lexer.RPAREN "')'";
  let terms =
    List.map
      (function Plain t -> t | Agg spec -> Term.Var spec.Aggregate.var)
      args
  in
  let aggs =
    List.concat
      (List.mapi
         (fun i -> function Agg spec -> [ (i, spec) ] | Plain _ -> [])
         args)
  in
  (Atom.make ~rel ~peer terms, aggs)

(* Expressions (for builtins): + - * / with usual precedence. *)
let rec expr st =
  let lhs = expr_term st in
  expr_rest st lhs

and expr_rest st lhs =
  match peek st with
  | Lexer.PLUS ->
    advance st;
    expr_rest st (Expr.Add (lhs, expr_term st))
  | Lexer.MINUS ->
    advance st;
    expr_rest st (Expr.Sub (lhs, expr_term st))
  | _ -> lhs

and expr_term st =
  let lhs = expr_factor st in
  expr_term_rest st lhs

and expr_term_rest st lhs =
  match peek st with
  | Lexer.STAR ->
    advance st;
    expr_term_rest st (Expr.Mul (lhs, expr_factor st))
  | Lexer.SLASH ->
    advance st;
    expr_term_rest st (Expr.Div (lhs, expr_factor st))
  | _ -> lhs

and expr_factor st =
  match peek st with
  | Lexer.INT n -> advance st; Expr.Const (Value.Int n)
  | Lexer.FLOAT f -> advance st; Expr.Const (Value.Float f)
  | Lexer.STRING s -> advance st; Expr.Const (Value.String s)
  | Lexer.BOOL b -> advance st; Expr.Const (Value.Bool b)
  | Lexer.VAR x -> advance st; Expr.Var x
  | Lexer.MINUS -> (
    advance st;
    (* Fold unary minus on numeric literals into the constant. *)
    match peek st with
    | Lexer.INT n ->
      advance st;
      Expr.Const (Value.Int (-n))
    | Lexer.FLOAT f ->
      advance st;
      Expr.Const (Value.Float (-.f))
    | _ -> Expr.Sub (Expr.Const (Value.Int 0), expr_factor st))
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN "')'";
    e
  | tok ->
    fail st (Format.asprintf "expected an expression but found %a" Lexer.pp_token tok)

let cmpop st =
  match peek st with
  | Lexer.EQ2 -> advance st; Some Literal.Eq
  | Lexer.NEQ -> advance st; Some Literal.Neq
  | Lexer.LT -> advance st; Some Literal.Lt
  | Lexer.LE -> advance st; Some Literal.Le
  | Lexer.GT -> advance st; Some Literal.Gt
  | Lexer.GE -> advance st; Some Literal.Ge
  | _ -> None

(* An atom starts with a name term followed by '@'. *)
let starts_atom st =
  match peek st, peek2 st with
  | (Lexer.IDENT _ | Lexer.STRING _ | Lexer.VAR _), Lexer.AT -> true
  | _, _ -> false

let literal st =
  match peek st with
  | Lexer.KW_NOT ->
    advance st;
    Literal.Neg (atom st)
  | Lexer.VAR x when peek2 st = Lexer.ASSIGN ->
    advance st;
    advance st;
    Literal.Assign (x, expr st)
  | _ ->
    if starts_atom st then Literal.Pos (atom st)
    else
      let e1 = expr st in
      (match cmpop st with
      | Some op -> Literal.Cmp (op, e1, expr st)
      | None ->
        fail st
          (Format.asprintf "expected a comparison operator but found %a"
             Lexer.pp_token (peek st)))

let ident st what =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | Lexer.STRING s when s <> "" -> advance st; s
  | tok -> fail st (Format.asprintf "expected %s but found %a" what Lexer.pp_token tok)

let decl st kind =
  advance st (* ext / int *);
  let rel = ident st "a relation name" in
  expect st Lexer.AT "'@'";
  let peer = ident st "a peer name" in
  expect st Lexer.LPAREN "'('";
  let cols = comma_list st (fun st -> ident st "a column name") in
  expect st Lexer.RPAREN "')'";
  Decl.make ~kind ~rel ~peer cols

(* Builtin-module parameter values: ground constants only. *)
let param_value st =
  match peek st with
  | Lexer.INT n -> advance st; Value.Int n
  | Lexer.FLOAT f -> advance st; Value.Float f
  | Lexer.STRING s -> advance st; Value.String s
  | Lexer.BOOL b -> advance st; Value.Bool b
  | Lexer.IDENT s -> advance st; Value.String s
  | Lexer.MINUS -> (
    advance st;
    match peek st with
    | Lexer.INT n -> advance st; Value.Int (-n)
    | Lexer.FLOAT f -> advance st; Value.Float (-.f)
    | tok ->
      fail st
        (Format.asprintf "expected a number after '-' but found %a"
           Lexer.pp_token tok))
  | tok ->
    fail st
      (Format.asprintf "expected a parameter value but found %a" Lexer.pp_token
         tok)

(* [builtin <kind> rel@peer(cols) with k=v, …] — "builtin" and "with"
   are contextual (not reserved words): a statement starting with the
   identifier [builtin] is only a declaration when the next token is
   not '@', so facts and rules over a relation named builtin parse as
   before. *)
let builtin_decl st =
  advance st (* builtin *);
  let bkind = ident st "a builtin module kind" in
  let rel = ident st "a relation name" in
  expect st Lexer.AT "'@'";
  let peer = ident st "a peer name" in
  expect st Lexer.LPAREN "'('";
  let cols = comma_list st (fun st -> ident st "a column name") in
  expect st Lexer.RPAREN "')'";
  let params =
    match peek st with
    | Lexer.IDENT "with" ->
      advance st;
      let rec go acc =
        let k = ident st "a parameter name" in
        expect st Lexer.EQ2 "'='";
        let v = param_value st in
        if peek st = Lexer.COMMA then begin
          advance st;
          go ((k, v) :: acc)
        end
        else List.rev ((k, v) :: acc)
      in
      go []
    | _ -> []
  in
  Decl.make
    ~builtin:{ Decl.bkind; params }
    ~kind:Decl.Extensional ~rel ~peer cols

let fact_of_atom st a =
  match Atom.to_fact a with
  | Some f -> f
  | None -> fail st "a fact must be ground (no variables)"

(* Body with one span per literal. *)
let body_sp st =
  let rec go acc =
    let start = cur_pos st in
    let l = literal st in
    let sp = span_from st start in
    if peek st = Lexer.COMMA then begin
      advance st;
      go ((l, sp) :: acc)
    end
    else List.rev ((l, sp) :: acc)
  in
  go []

let rule_tail st ~start ~head_span head aggs =
  let lits = body_sp st in
  let body = List.map fst lits and lit_spans = List.map snd lits in
  {
    Located.rule = Rule.make_agg ~aggs ~head ~body;
    span = span_from st start;
    head_span;
    lit_spans;
  }

let statement_sp st =
  let start = cur_pos st in
  match peek st with
  | Lexer.KW_EXT ->
    let d = decl st Decl.Extensional in
    Located.Decl { Located.node = d; span = span_from st start }
  | Lexer.KW_INT ->
    let d = decl st Decl.Intensional in
    Located.Decl { Located.node = d; span = span_from st start }
  | Lexer.IDENT "builtin" when peek2 st <> Lexer.AT ->
    let d = builtin_decl st in
    Located.Decl { Located.node = d; span = span_from st start }
  | _ ->
    let head, aggs = head_atom st in
    let head_span = span_from st start in
    if peek st = Lexer.COLONDASH then begin
      advance st;
      Located.Rule (rule_tail st ~start ~head_span head aggs)
    end
    else if aggs <> [] then fail st "a fact cannot contain aggregates"
    else
      Located.Fact
        { Located.node = fact_of_atom st head; span = span_from st start }

let program_toks st =
  let rec go acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | Lexer.SEMI ->
      advance st;
      go acc
    | _ ->
      let s = statement_sp st in
      (match peek st with
      | Lexer.SEMI -> advance st
      | Lexer.EOF -> ()
      | tok ->
        fail st
          (Format.asprintf "expected ';' or end of input but found %a"
             Lexer.pp_token tok));
      go (s :: acc)
  in
  go []

let with_state ?(file = "<string>") src f =
  (* Lexer errors can now surface at any pull, not just up front. *)
  try
    let lex = Lexer.init src in
    let start = { Lexer.line = 1; col = 1 } in
    let st =
      { lex; file; cur = Lexer.next_token_sp lex; ahead = None;
        last_stop = start }
    in
    let x = f st in
    (match peek st with
    | Lexer.EOF -> ()
    | tok ->
      fail st
        (Format.asprintf "trailing input starting at %a" Lexer.pp_token tok));
    x
  with Lexer.Error (msg, p) -> raise (Error (msg, p))

let parse_program_located ?file src = with_state ?file src program_toks
let parse_program src = Located.strip (parse_program_located src)

let parse_rule_located ?file src =
  with_state ?file src (fun st ->
      let start = cur_pos st in
      let head, aggs = head_atom st in
      let head_span = span_from st start in
      expect st Lexer.COLONDASH "':-'";
      let r = rule_tail st ~start ~head_span head aggs in
      if peek st = Lexer.SEMI then advance st;
      r)

let parse_rule src = (parse_rule_located src).Located.rule

let parse_fact src =
  with_state src (fun st ->
      let a = atom st in
      if peek st = Lexer.SEMI then advance st;
      fact_of_atom st a)

let parse_atom src = with_state src atom
let parse_literal src = with_state src literal

let wrap f src =
  match f src with
  | x -> Ok x
  | exception Error (msg, p) ->
    Result.Error (Printf.sprintf "line %d, col %d: %s" p.Lexer.line p.Lexer.col msg)

let program src = wrap parse_program src
let rule src = wrap parse_rule src
let fact src = wrap parse_fact src

let program_located ?file src =
  match parse_program_located ?file src with
  | p -> Ok p
  | exception Error (msg, p) -> Result.Error (msg, p)
